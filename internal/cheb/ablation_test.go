package cheb

import (
	"math"
	"testing"
)

// directBoxFactors is the naive implementation of Lemma 4's factors: one
// math.Sin call per degree instead of the angle-addition recurrence. Kept
// here as the ablation baseline for the update-cost optimization.
func directBoxFactors(a []float64, z1, z2 float64) {
	th1 := math.Acos(z1)
	th2 := math.Acos(z2)
	a[0] = th1 - th2
	for i := 1; i < len(a); i++ {
		a[i] = (math.Sin(float64(i)*th1) - math.Sin(float64(i)*th2)) / float64(i)
	}
}

func TestBoxFactorsMatchDirect(t *testing.T) {
	for _, k := range []int{1, 3, 5, 8} {
		for _, z := range [][2]float64{{-0.9, -0.2}, {-0.5, 0.5}, {0.1, 0.99}, {-1, 1}} {
			fast := make([]float64, k+1)
			slow := make([]float64, k+1)
			boxFactors(fast, z[0], z[1])
			directBoxFactors(slow, z[0], z[1])
			for i := range fast {
				if math.Abs(fast[i]-slow[i]) > 1e-12 {
					t.Fatalf("k=%d z=%v: factor %d: recurrence %g vs direct %g", k, z, i, fast[i], slow[i])
				}
			}
		}
	}
}

// BenchmarkBoxFactorsRecurrence and BenchmarkBoxFactorsDirect are the
// "sin-recurrence vs direct trig" ablation from DESIGN.md: the recurrence
// replaces O(k) Sin calls per dimension with O(k) multiplies.
func BenchmarkBoxFactorsRecurrence(b *testing.B) {
	a := make([]float64, 6)
	for i := 0; i < b.N; i++ {
		boxFactors(a, -0.4, 0.7)
	}
}

func BenchmarkBoxFactorsDirect(b *testing.B) {
	a := make([]float64, 6)
	for i := 0; i < b.N; i++ {
		directBoxFactors(a, -0.4, 0.7)
	}
}
