package cheb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTKnownPolynomials(t *testing.T) {
	xs := []float64{-1, -0.7, -0.3, 0, 0.25, 0.5, 0.9, 1}
	for _, x := range xs {
		if got := T(0, x); got != 1 {
			t.Errorf("T0(%g) = %g", x, got)
		}
		if got := T(1, x); got != x {
			t.Errorf("T1(%g) = %g", x, got)
		}
		if got, want := T(2, x), 2*x*x-1; math.Abs(got-want) > 1e-12 {
			t.Errorf("T2(%g) = %g, want %g", x, got, want)
		}
		if got, want := T(3, x), 4*x*x*x-3*x; math.Abs(got-want) > 1e-12 {
			t.Errorf("T3(%g) = %g, want %g", x, got, want)
		}
		if got, want := T(5, x), math.Cos(5*math.Acos(x)); math.Abs(got-want) > 1e-9 {
			t.Errorf("T5(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestBoundKnownCases(t *testing.T) {
	// T1 over [a, b] is just [a, b].
	lo, hi := Bound(1, -0.5, 0.25)
	if lo != -0.5 || hi != 0.25 {
		t.Errorf("Bound(1) = [%g, %g], want [-0.5, 0.25]", lo, hi)
	}
	// T2 over [-1, 1] hits both extremes.
	lo, hi = Bound(2, -1, 1)
	if lo != -1 || hi != 1 {
		t.Errorf("Bound(2, full) = [%g, %g], want [-1, 1]", lo, hi)
	}
	// T0 is constant 1.
	lo, hi = Bound(0, -0.9, 0.9)
	if lo != 1 || hi != 1 {
		t.Errorf("Bound(0) = [%g, %g], want [1, 1]", lo, hi)
	}
	// Reversed interval is normalized.
	lo1, hi1 := Bound(3, 0.8, -0.2)
	lo2, hi2 := Bound(3, -0.2, 0.8)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("Bound must normalize reversed intervals")
	}
}

func TestQuickBoundSoundAndTight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i := rng.Intn(8)
		z1 := rng.Float64()*2 - 1
		z2 := z1 + rng.Float64()*(1-z1)
		lo, hi := Bound(i, z1, z2)
		worstLo, worstHi := math.Inf(1), math.Inf(-1)
		for k := 0; k <= 400; k++ {
			x := z1 + (z2-z1)*float64(k)/400
			v := T(i, x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false // unsound
			}
			worstLo = math.Min(worstLo, v)
			worstHi = math.Max(worstHi, v)
		}
		// Tightness: the bound interval should not exceed the sampled range
		// by more than the sampling resolution allows (coarse check).
		return lo >= worstLo-0.1 && hi <= worstHi+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeriesIndexPacking(t *testing.T) {
	s, err := NewSeries2D(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.A) != NumCoeffs(5) || NumCoeffs(5) != 21 {
		t.Fatalf("NumCoeffs(5) = %d, len(A) = %d, want 21", NumCoeffs(5), len(s.A))
	}
	seen := map[int]bool{}
	for i := 0; i <= 5; i++ {
		for j := 0; j <= 5-i; j++ {
			idx := s.Index(i, j)
			if idx < 0 || idx >= len(s.A) {
				t.Fatalf("Index(%d,%d) = %d out of range", i, j, idx)
			}
			if seen[idx] {
				t.Fatalf("Index(%d,%d) = %d collides", i, j, idx)
			}
			seen[idx] = true
		}
	}
	if _, err := NewSeries2D(-1); err == nil {
		t.Error("negative degree must be rejected")
	}
}

func TestSeriesEvalMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, _ := NewSeries2D(4)
	for i := range s.A {
		s.A[i] = rng.NormFloat64()
	}
	for trial := 0; trial < 200; trial++ {
		x := rng.Float64()*2 - 1
		y := rng.Float64()*2 - 1
		var want float64
		for i := 0; i <= 4; i++ {
			for j := 0; j <= 4-i; j++ {
				want += s.At(i, j) * T(i, x) * T(j, y)
			}
		}
		if got := s.Eval(x, y); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Eval(%g,%g) = %g, want %g", x, y, got, want)
		}
	}
}

// quadratureBoxCoeff computes the (i, j) Chebyshev coefficient of the box
// indicator by Gauss-Chebyshev quadrature — an oracle independent of the
// closed form in AddBoxDelta.
func quadratureBoxCoeff(i, j int, x1, y1, x2, y2 float64, m int) float64 {
	ci := 2.0
	if i == 0 {
		ci = 1
	}
	cj := 2.0
	if j == 0 {
		cj = 1
	}
	var sx, sy float64
	for p := 0; p < m; p++ {
		th := (float64(p) + 0.5) * math.Pi / float64(m)
		x := math.Cos(th)
		if x >= x1 && x <= x2 {
			sx += math.Cos(float64(i) * th)
		}
		if x >= y1 && x <= y2 {
			sy += math.Cos(float64(j) * th)
		}
	}
	// Gauss-Chebyshev: integral = (pi/m) * sum; coefficient carries c/pi^2.
	return ci * cj / (math.Pi * math.Pi) * (math.Pi / float64(m) * sx) * (math.Pi / float64(m) * sy)
}

func TestAddBoxDeltaMatchesQuadrature(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		x1 := rng.Float64()*1.6 - 0.9
		x2 := x1 + 0.05 + rng.Float64()*(0.9-x1)
		y1 := rng.Float64()*1.6 - 0.9
		y2 := y1 + 0.05 + rng.Float64()*(0.9-y1)
		s, _ := NewSeries2D(5)
		s.AddBoxDelta(x1, y1, x2, y2, 1)
		for i := 0; i <= 5; i++ {
			for j := 0; j <= 5-i; j++ {
				want := quadratureBoxCoeff(i, j, x1, y1, x2, y2, 200000)
				if got := s.At(i, j); math.Abs(got-want) > 1e-3 {
					t.Fatalf("trial %d: coeff(%d,%d) = %g, quadrature %g (box [%g,%g]x[%g,%g])",
						trial, i, j, got, want, x1, x2, y1, y2)
				}
			}
		}
	}
}

func TestAddBoxDeltaLinearity(t *testing.T) {
	a, _ := NewSeries2D(3)
	b, _ := NewSeries2D(3)
	a.AddBoxDelta(-0.5, -0.5, 0.5, 0.5, 2)
	b.AddBoxDelta(-0.5, -0.5, 0.5, 0.5, 1)
	b.AddBoxDelta(-0.5, -0.5, 0.5, 0.5, 1)
	for i := range a.A {
		if math.Abs(a.A[i]-b.A[i]) > 1e-12 {
			t.Fatalf("coefficient %d: %g != %g", i, a.A[i], b.A[i])
		}
	}
}

func TestInsertDeleteCancelsExactly(t *testing.T) {
	// A delete recomputes the identical increment and subtracts it; the
	// coefficients must return to zero bit-for-bit.
	s, _ := NewSeries2D(5)
	s.AddBoxDelta(-0.3, 0.1, 0.4, 0.9, 1.0/900)
	s.AddBoxDelta(-0.3, 0.1, 0.4, 0.9, -1.0/900)
	for i, v := range s.A {
		if v != 0 {
			t.Fatalf("coefficient %d = %g after insert+delete, want exact 0", i, v)
		}
	}
}

func TestAddBoxDeltaDegenerate(t *testing.T) {
	s, _ := NewSeries2D(4)
	s.AddBoxDelta(0.5, 0.5, 0.5, 0.9, 1) // zero width
	s.AddBoxDelta(2, 2, 3, 3, 1)         // fully outside, clipped to empty
	s.AddBoxDelta(-0.5, -0.5, 0.5, 0.5, 0)
	for i, v := range s.A {
		if v != 0 {
			t.Fatalf("degenerate boxes must be no-ops; coeff %d = %g", i, v)
		}
	}
}

func TestQuickSeriesBoundsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := NewSeries2D(4)
		for i := range s.A {
			s.A[i] = rng.NormFloat64()
		}
		x1 := rng.Float64()*2 - 1
		x2 := x1 + rng.Float64()*(1-x1)
		y1 := rng.Float64()*2 - 1
		y2 := y1 + rng.Float64()*(1-y1)
		lo, hi := s.Bounds(x1, y1, x2, y2)
		for k := 0; k < 200; k++ {
			x := x1 + rng.Float64()*(x2-x1)
			y := y1 + rng.Float64()*(y2-y1)
			v := s.Eval(x, y)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestAddScaledAndReset(t *testing.T) {
	a, _ := NewSeries2D(2)
	b, _ := NewSeries2D(2)
	b.AddBoxDelta(-0.5, -0.5, 0.5, 0.5, 1)
	a.AddScaled(b, 2)
	for i := range a.A {
		if math.Abs(a.A[i]-2*b.A[i]) > 1e-15 {
			t.Fatalf("AddScaled mismatch at %d", i)
		}
	}
	a.Reset()
	for i, v := range a.A {
		if v != 0 {
			t.Fatalf("Reset left coeff %d = %g", i, v)
		}
	}
}

func BenchmarkAddBoxDelta(b *testing.B) {
	s, _ := NewSeries2D(5)
	for i := 0; i < b.N; i++ {
		s.AddBoxDelta(-0.4, -0.3, 0.2, 0.5, 1e-4)
	}
}

func BenchmarkSeriesEval(b *testing.B) {
	s, _ := NewSeries2D(5)
	s.AddBoxDelta(-0.4, -0.3, 0.2, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eval(0.1, -0.2)
	}
}

// TestKernelsAllocationFree pins the hot kernels at zero steady-state
// allocations: after the scratch pool is warm, Eval, Bounds, and AddBoxDelta
// must not touch the heap (the zero-allocation contract documented in
// docs/PERFORMANCE.md).
func TestKernelsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	s, err := NewSeries2D(5)
	if err != nil {
		t.Fatal(err)
	}
	s.AddBoxDelta(-0.4, -0.3, 0.2, 0.5, 1)
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		sink += s.Eval(0.1, -0.2)
	}); n != 0 {
		t.Errorf("Eval allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		lo, hi := s.Bounds(-0.5, -0.25, 0.5, 0.25)
		sink += lo + hi
	}); n != 0 {
		t.Errorf("Bounds allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		s.AddBoxDelta(-0.2, -0.2, 0.2, 0.2, 1)
		s.AddBoxDelta(-0.2, -0.2, 0.2, 0.2, -1)
	}); n != 0 {
		t.Errorf("AddBoxDelta allocates %v per run, want 0", n)
	}
	_ = sink
}
