// Package cheb provides the Chebyshev-polynomial machinery behind the PDR
// paper's approximation method (Sec. 6): evaluation of Chebyshev polynomials
// of the first kind, sound lower/upper bounds of T_i over subintervals of
// [-1, 1], and truncated two-dimensional Chebyshev series of bounded total
// degree with the closed-form coefficient increments of the paper's Lemma 4.
package cheb

import (
	"fmt"
	"math"
	"sync"
)

// T evaluates the Chebyshev polynomial of the first kind T_k at x using the
// three-term recurrence (stable for |x| <= 1 and exact for the small degrees
// used here).
func T(k int, x float64) float64 {
	switch k {
	case 0:
		return 1
	case 1:
		return x
	}
	tm, t := 1.0, x
	for i := 2; i <= k; i++ {
		tm, t = t, 2*x*t-tm
	}
	return t
}

// Bound returns sound lower and upper bounds of T_i over [z1, z2] (a
// subinterval of [-1, 1]). T_i(x) = cos(i*arccos x); its extrema inside the
// interval are the points where i*arccos(x) crosses a multiple of pi: odd
// multiples give -1, even multiples give +1. Otherwise the extremes are at
// the endpoints.
func Bound(i int, z1, z2 float64) (lo, hi float64) {
	if i == 0 {
		return 1, 1
	}
	if z1 > z2 {
		z1, z2 = z2, z1
	}
	z1 = clamp(z1, -1, 1)
	z2 = clamp(z2, -1, 1)
	// Endpoint values via the recurrence so they agree exactly with Eval
	// (cos(acos(z)) round-trips with epsilon error and would make a bound
	// minutely unsound).
	v1, v2 := T(i, z1), T(i, z2)
	lo = math.Min(v1, v2)
	hi = math.Max(v1, v2)
	// arccos is decreasing: theta runs over [th2, th1]; interior extrema of
	// cos(i*theta) are the multiples of pi inside [i*th2, i*th1]. The range
	// is widened by a hair so rounding can only add extrema (wider bounds
	// stay sound).
	th1 := math.Acos(z1)
	th2 := math.Acos(z2)
	u1 := float64(i) * th2 // low end of i*theta
	u2 := float64(i) * th1
	kLo := int(math.Ceil(u1/math.Pi - 1e-12))
	kHi := int(math.Floor(u2/math.Pi + 1e-12))
	for k := kLo; k <= kHi; k++ {
		if k%2 == 0 {
			hi = 1
		} else {
			lo = -1
		}
	}
	return lo, hi
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Series2D is a truncated two-dimensional Chebyshev series
//
//	f(x, y) ~ sum_{i+j <= K} A[i,j] T_i(x) T_j(y),  x, y in [-1, 1],
//
// with coefficients packed row-major over the triangular index set.
type Series2D struct {
	K int
	A []float64
}

// NumCoeffs returns the number of coefficients of a total-degree-K series:
// (K+1)(K+2)/2 (the paper's storage formula).
func NumCoeffs(k int) int { return (k + 1) * (k + 2) / 2 }

// interval is a closed interval [lo, hi] of Chebyshev-polynomial values.
type interval struct{ lo, hi float64 }

// evalScratch holds the per-call working buffers of the evaluation kernels
// (T_i value vectors, Lemma-4 factors, per-degree bounds). The hot kernels
// run once per branch-and-bound probe and once per movement update, so the
// scratch lives in a sync.Pool rather than being made fresh each call. It
// cannot live on Series2D itself: any number of readers evaluate the same
// series concurrently under the engine's read lock.
type evalScratch struct {
	tx, ty []float64  // Eval: T_i(x), T_j(y)
	ax, ay []float64  // AddBoxDelta: Lemma-4 one-dimensional factors
	bx, by []interval // Bounds: per-degree interval bounds
}

// scratches pools evaluation scratch across goroutines; buffers grow to the
// largest degree evaluated and are reused across calls.
var scratches = sync.Pool{New: func() any { return new(evalScratch) }}

// growF64 returns buf resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growIv is growF64 for interval scratch.
func growIv(buf []interval, n int) []interval {
	if cap(buf) < n {
		return make([]interval, n)
	}
	return buf[:n]
}

// NewSeries2D returns the zero series of total degree k.
func NewSeries2D(k int) (*Series2D, error) {
	if k < 0 {
		return nil, fmt.Errorf("cheb: negative degree %d", k)
	}
	return &Series2D{K: k, A: make([]float64, NumCoeffs(k))}, nil
}

// Index returns the packed position of coefficient (i, j); i+j must be <= K.
func (s *Series2D) Index(i, j int) int {
	// Row i starts after rows 0..i-1, which hold (K+1) + K + ... +
	// (K+2-i) = i*(K+1) - i*(i-1)/2 coefficients.
	return i*(s.K+1) - i*(i-1)/2 + j
}

// At returns coefficient (i, j).
func (s *Series2D) At(i, j int) float64 { return s.A[s.Index(i, j)] }

// Eval evaluates the series at (x, y) in [-1, 1]^2.
//
// pdr:hot — PA evaluation root for the hotpath analyzer family
// (docs/LINT.md); called per branch-and-bound probe.
func (s *Series2D) Eval(x, y float64) float64 {
	k := s.K
	sc := scratches.Get().(*evalScratch)
	sc.tx = growF64(sc.tx, k+1)
	sc.ty = growF64(sc.ty, k+1)
	tx, ty := sc.tx, sc.ty
	chebVals(tx, x)
	chebVals(ty, y)
	var sum float64
	idx := 0
	for i := 0; i <= k; i++ {
		var row float64
		for j := 0; j <= k-i; j++ {
			row += s.A[idx] * ty[j]
			idx++
		}
		sum += row * tx[i]
	}
	scratches.Put(sc)
	return sum
}

// chebVals fills t with T_0(x)..T_len-1(x).
func chebVals(t []float64, x float64) {
	t[0] = 1
	if len(t) > 1 {
		t[1] = x
	}
	for i := 2; i < len(t); i++ {
		t[i] = 2*x*t[i-1] - t[i-2]
	}
}

// AddScaled adds w times o to s (both must have the same degree).
func (s *Series2D) AddScaled(o *Series2D, w float64) {
	for i := range s.A {
		s.A[i] += w * o.A[i]
	}
}

// Reset zeroes all coefficients.
func (s *Series2D) Reset() {
	for i := range s.A {
		s.A[i] = 0
	}
}

// AddBoxDelta adds to the series the Chebyshev approximation of
// value * indicator([x1,x2] x [y1,y2]) using the closed form of the paper's
// Lemma 4:
//
//	a_ij += c_ij/pi^2 * value * Ax_i * Ay_j
//	Ax_0 = arccos(x1) - arccos(x2)
//	Ax_i = (sin(i*arccos(x1)) - sin(i*arccos(x2))) / i        (i > 0)
//
// with c_ij = 4, or 2 when exactly one of i, j is zero, or 1 when both are.
// Deletions pass a negative value. The box is clipped to [-1, 1]^2; an empty
// clipped box is a no-op.
//
// pdr:hot — Lemma-4 update root for the hotpath analyzer family
// (docs/LINT.md); runs once per movement update.
func (s *Series2D) AddBoxDelta(x1, y1, x2, y2, value float64) {
	x1, x2 = clamp(x1, -1, 1), clamp(x2, -1, 1)
	y1, y2 = clamp(y1, -1, 1), clamp(y2, -1, 1)
	if x2 <= x1 || y2 <= y1 || value == 0 {
		return
	}
	k := s.K
	sc := scratches.Get().(*evalScratch)
	sc.ax = growF64(sc.ax, k+1)
	sc.ay = growF64(sc.ay, k+1)
	ax, ay := sc.ax, sc.ay
	boxFactors(ax, x1, x2)
	boxFactors(ay, y1, y2)
	scale := value / (math.Pi * math.Pi)
	idx := 0
	for i := 0; i <= k; i++ {
		ci := 2.0
		if i == 0 {
			ci = 1
		}
		for j := 0; j <= k-i; j++ {
			cj := 2.0
			if j == 0 {
				cj = 1
			}
			s.A[idx] += scale * ci * cj * ax[i] * ay[j]
			idx++
		}
	}
	scratches.Put(sc)
}

// boxFactors fills a with the one-dimensional factors Ax_i of Lemma 4 for
// the interval [z1, z2], computing sin(i*theta) by the angle-addition
// recurrence so the cost is two arccos/sincos calls plus O(K) multiplies.
func boxFactors(a []float64, z1, z2 float64) {
	th1 := math.Acos(z1)
	th2 := math.Acos(z2)
	a[0] = th1 - th2
	if len(a) == 1 {
		return
	}
	s1, c1 := math.Sincos(th1)
	s2, c2 := math.Sincos(th2)
	si1, ci1 := s1, c1 // sin(i*th1), cos(i*th1)
	si2, ci2 := s2, c2
	for i := 1; i < len(a); i++ {
		a[i] = (si1 - si2) / float64(i)
		si1, ci1 = si1*c1+ci1*s1, ci1*c1-si1*s1
		si2, ci2 = si2*c2+ci2*s2, ci2*c2-si2*s2
	}
}

// Bounds returns sound lower and upper bounds of the series over the box
// [x1, x2] x [y1, y2] (within [-1, 1]^2), obtained by interval arithmetic
// over per-term Chebyshev bounds (paper Sec. 6.3).
//
// pdr:hot — PA bound root for the hotpath analyzer family (docs/LINT.md);
// called per branch-and-bound box.
func (s *Series2D) Bounds(x1, y1, x2, y2 float64) (lo, hi float64) {
	k := s.K
	sc := scratches.Get().(*evalScratch)
	sc.bx = growIv(sc.bx, k+1)
	sc.by = growIv(sc.by, k+1)
	bx, by := sc.bx, sc.by
	for i := 0; i <= k; i++ {
		l, h := Bound(i, x1, x2)
		bx[i] = interval{l, h}
		l, h = Bound(i, y1, y2)
		by[i] = interval{l, h}
	}
	idx := 0
	for i := 0; i <= k; i++ {
		for j := 0; j <= k-i; j++ {
			a := s.A[idx]
			idx++
			if a == 0 {
				continue
			}
			// Interval product bx[i] * by[j], then scaled by a.
			p1 := bx[i].lo * by[j].lo
			p2 := bx[i].lo * by[j].hi
			p3 := bx[i].hi * by[j].lo
			p4 := bx[i].hi * by[j].hi
			tl := math.Min(math.Min(p1, p2), math.Min(p3, p4))
			th := math.Max(math.Max(p1, p2), math.Max(p3, p4))
			if a > 0 {
				lo += a * tl
				hi += a * th
			} else {
				lo += a * th
				hi += a * tl
			}
		}
	}
	scratches.Put(sc)
	return lo, hi
}
