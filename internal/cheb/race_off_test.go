//go:build !race

package cheb

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
