package cfg

import "go/ast"

// Analysis is a forward dataflow problem over a Graph. F is the fact type
// attached to block entry points; the framework iterates transfer functions
// to a fixed point using a worklist, joining facts where paths merge.
//
// The lattice contract is the usual one: Join must be commutative,
// associative, and idempotent, and Transfer must be monotone with respect to
// the order Join induces — otherwise the worklist may not terminate.
type Analysis[F any] struct {
	// Entry is the fact at the function's entry block.
	Entry F
	// Join merges facts from two predecessors at a control-flow merge.
	Join func(a, b F) F
	// Equal reports whether two facts are indistinguishable; it bounds the
	// fixed-point iteration.
	Equal func(a, b F) bool
	// Transfer produces a block's exit fact from its entry fact by walking
	// the block's nodes. It must not mutate in (copy first if F aliases).
	Transfer func(b *Block, in F) F
	// EdgeRefine, when non-nil, filters the fact flowing along one edge
	// before it joins into the successor. Combined with Graph.Conds this
	// gives limited path sensitivity: an analysis can drop facts that the
	// branch condition contradicts ("this pooled value is nil on the
	// err != nil edge"). It must not mutate out (copy first if F aliases)
	// and must be monotone like Transfer, or the worklist may not converge.
	EdgeRefine func(from, to *Block, out F) F
}

// Result holds the converged entry facts of a forward analysis.
type Result[F any] struct {
	g *Graph
	a *Analysis[F]
	// In maps block index to the block's converged entry fact. Blocks never
	// reached from Entry are absent.
	In map[int]F
}

// Run iterates a to a fixed point over g and returns the entry facts.
func Run[F any](g *Graph, a *Analysis[F]) *Result[F] {
	res := &Result[F]{g: g, a: a, In: map[int]F{g.Entry.Index: a.Entry}}
	work := []*Block{g.Entry}
	onWork := map[int]bool{g.Entry.Index: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b.Index] = false
		out := a.Transfer(b, res.In[b.Index])
		for _, s := range b.Succs {
			cur, seen := res.In[s.Index]
			next := out
			if a.EdgeRefine != nil {
				next = a.EdgeRefine(b, s, next)
			}
			if seen {
				next = a.Join(cur, next)
				if a.Equal(cur, next) {
					continue
				}
			}
			res.In[s.Index] = next
			if !onWork[s.Index] {
				onWork[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// Reached reports whether b gained an entry fact, i.e. is reachable from
// Entry. Dead blocks (code after return/break) are not analyzed.
func (r *Result[F]) Reached(b *Block) bool {
	_, ok := r.In[b.Index]
	return ok
}

// WalkReached replays the transfer function over every reached block,
// invoking visit(node, fact) for each node with the fact holding *before*
// that node executes. step advances the fact across one node; it is the
// per-node piece of the analysis' Transfer (the caller guarantees Transfer
// is equivalent to folding step over b.Nodes).
//
// This is how analyzers report: Run converges the facts, WalkReached
// re-walks each block from its converged entry fact and lets the analyzer
// inspect the state at every program point.
func (r *Result[F]) WalkReached(step func(n ast.Node, in F) F, visit func(n ast.Node, before F)) {
	for _, b := range r.g.Blocks {
		in, ok := r.In[b.Index]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			visit(n, in)
			in = step(n, in)
		}
	}
}

// ExitFacts returns the converged facts at the synthetic Exit block (normal
// termination), or ok=false if no path reaches it.
func (r *Result[F]) ExitFacts() (F, bool) {
	f, ok := r.In[r.g.Exit.Index]
	return f, ok
}
