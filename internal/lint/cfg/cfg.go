// Package cfg builds intra-procedural control-flow graphs over Go function
// bodies and runs forward dataflow analyses over them. It is the engine
// underneath pdrvet's flow-aware concurrency analyzers (locked, deferunlock,
// atomicmix, noleak): where the first-generation analyzers compared token
// positions ("a Lock call textually before the first access"), the CFG makes
// path-sensitive questions answerable — "is the lock held on *every* path
// reaching this access?", "does *some* path exit without unlocking?".
//
// The graph is deliberately statement-grained. Basic blocks hold ast.Nodes in
// execution order; composite statements (if/for/range/switch/select) are
// decomposed so that a block contains only their control expressions — the
// condition of an if, the tag of a switch, the range operand — while the
// bodies live in successor blocks. Walking a block's node list therefore
// never re-visits a nested statement, and an analyzer's transfer function
// sees every executable node exactly once per path.
//
// Function literals are opaque: their bodies are never part of the enclosing
// graph (a closure runs at call time, not where it is written). Analyzers
// that care about closure bodies build a separate graph per literal, seeding
// it with whatever entry fact the occurrence point implies.
//
// Only the standard library is used (go/ast, go/token), matching the loader's
// offline, dependency-free contract.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: nodes executed in order, then a transfer to one
// of Succs. The synthetic Exit and Panic blocks have no nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, construction
	// order; useful for deterministic iteration and debugging).
	Index int
	// Nodes are the statements and control expressions executed by this
	// block, in order. Composite statements contribute only their control
	// expressions here; their bodies are separate blocks.
	Nodes []ast.Node
	// Succs are the possible control transfers out of this block.
	Succs []*Block
}

// CondEdge records which successors of an if-head block are its true and
// false branches. The worklist engine itself is branch-insensitive (one out
// fact flows to every successor); analyses that want path refinement — "on
// the err != nil edge this value is invalid" — combine CondEdge with
// Analysis.EdgeRefine to filter facts per edge.
type CondEdge struct {
	// Cond is the if condition; it is also the last node of the head block,
	// so the refined fact has already flowed across it.
	Cond ast.Expr
	// Then and Else are block indices: Then is entered when Cond is true,
	// Else when it is false (the else branch, or the join block when the if
	// has none).
	Then, Else int
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters on call.
	Entry *Block
	// Exit is the synthetic normal-termination block: every return statement
	// and the fall-off end of the body lead here. Deferred calls run on the
	// way to Exit (and to Panic), after the facts of the returning block.
	Exit *Block
	// Panic is the synthetic abnormal-termination block: panic(...) calls
	// and recognized process terminators (os.Exit, log.Fatal*) lead here.
	Panic *Block
	// Blocks lists every block, Entry first; Exit and Panic are included.
	Blocks []*Block
	// Conds maps an if-head block's index to its branch targets. A block
	// heads at most one if statement (construction moves to the join block
	// before the next statement), so the map is single-valued.
	Conds map[int]CondEdge
}

// New builds the control-flow graph of body. A nil body (declared-only
// function) yields a graph whose Entry connects straight to Exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{Conds: make(map[int]CondEdge)}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.Panic = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmt(body)
	}
	b.edge(b.cur, g.Exit) // fall off the end
	return g
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label      string // the construct's label, "" if none
	breakTo    *Block
	continueTo *Block // nil for switch/select (continue passes through)
}

type builder struct {
	g   *Graph
	cur *Block
	// frames is the stack of enclosing loops/switches/selects.
	frames []frame
	// labels maps label names to their target blocks (created on first
	// reference, so forward gotos resolve).
	labels map[string]*Block
	// pendingLabel carries a label through to the loop/switch it annotates.
	pendingLabel string
	// fallTo is the next case body during switch construction.
	fallTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target and makes target
// current.
func (b *builder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = target
}

// terminate ends the current block with an edge to target and continues in a
// fresh, unreachable block (the code after a return/break/goto).
func (b *builder) terminate(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame resolves a break/continue target: the innermost matching frame,
// or the one carrying the label.
func (b *builder) findFrame(label string, needContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// isTerminatorCall reports whether call never returns: the builtin panic or
// a recognized process terminator (os.Exit, log.Fatal/Fatalf/Fatalln). The
// check is syntactic — pdrvet analyzes a tree where shadowing those names
// would itself be a review failure.
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		// nothing

	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatorCall(call) {
			b.terminate(b.g.Panic)
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.Exit)

	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(labelName(s.Label), false); f != nil {
				b.terminate(f.breakTo)
			}
		case token.CONTINUE:
			if f := b.findFrame(labelName(s.Label), true); f != nil {
				b.terminate(f.continueTo)
			}
		case token.GOTO:
			if s.Label != nil {
				b.terminate(b.labelBlock(s.Label.Name))
			}
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.terminate(b.fallTo)
			}
		}

	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		head := b.cur
		done := b.newBlock()
		then := b.newBlock()
		b.edge(head, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, done)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, done)
			b.g.Conds[head.Index] = CondEdge{Cond: s.Cond, Then: then.Index, Else: els.Index}
		} else {
			b.edge(head, done)
			b.g.Conds[head.Index] = CondEdge{Cond: s.Cond, Then: then.Index, Else: done.Index}
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		b.jump(head)
		b.add(s.Cond)
		body := b.newBlock()
		post := b.newBlock()
		done := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, done)
		}
		b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: post})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.jump(head)
		b.add(s.X)
		body := b.newBlock()
		done := b.newBlock()
		b.edge(head, body)
		b.edge(head, done)
		b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.add(s.Tag)
		b.switchClauses(label, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		done := b.newBlock()
		b.frames = append(b.frames, frame{label: label, breakTo: done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmt(cc.Comm)
			for _, t := range cc.Body {
				b.stmt(t)
			}
			b.edge(b.cur, done)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no normal successor.
			b.edge(head, b.g.Panic)
		}
		b.cur = done

	default:
		// Unknown statement kinds flow straight through.
		b.add(s)
	}
}

// switchClauses wires the case bodies of a switch or type switch: the head
// (current block) branches to every clause, fallthrough chains to the next
// clause, and a missing default adds the no-match edge to done.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, allowFallthrough bool) {
	head := b.cur
	done := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if len(c.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: done})
	savedFall := b.fallTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if allowFallthrough && i+1 < len(clauses) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.edge(b.cur, done)
	}
	b.fallTo = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}
