package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body (the text between the braces) and
// returns its BlockStmt.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the set of blocks reachable from g.Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// nodeStrings renders every node in reachable blocks, in block order, as a
// coarse fingerprint for structural assertions.
func nodeStrings(g *Graph) []string {
	seen := reachable(g)
	var out []string
	for _, b := range g.Blocks {
		if !seen[b] {
			continue
		}
		for _, n := range b.Nodes {
			out = append(out, fmt.Sprintf("%T", n))
		}
	}
	return out
}

func TestStraightLine(t *testing.T) {
	g := New(parseBody(t, "x := 1\nx++\n_ = x"))
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should flow straight to exit, got %v", g.Entry.Succs)
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body: entry should flow to exit")
	}
}

func TestIfElseMerges(t *testing.T) {
	g := New(parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`))
	// Entry: x:=0, cond. Two succ branches that both merge before _ = x.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head should have 2 successors, got %d", len(g.Entry.Succs))
	}
	a, b := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Fatalf("then/else must merge at one block")
	}
	merge := a.Succs[0]
	if len(merge.Nodes) != 1 {
		t.Fatalf("merge block should hold the trailing statement, got %d nodes", len(merge.Nodes))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := New(parseBody(t, "x := 0\nif x > 0 {\n\tx = 1\n}\n_ = x"))
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head should branch to then and done, got %d succs", len(g.Entry.Succs))
	}
}

func TestNoDoubleVisit(t *testing.T) {
	// The statements inside composite constructs must appear exactly once
	// across all blocks — the builder must not add both the composite node
	// and its children.
	g := New(parseBody(t, `
for i := 0; i < 3; i++ {
	if i == 1 {
		continue
	}
	_ = i
}`))
	counts := map[string]int{}
	for _, s := range nodeStrings(g) {
		counts[s]++
	}
	// One init assign, one continue-skipped blank assign; IncDecStmt once
	// (the post statement); the loop cond and if cond are BinaryExprs.
	if counts["*ast.IncDecStmt"] != 1 {
		t.Fatalf("post statement should appear exactly once, got %d", counts["*ast.IncDecStmt"])
	}
	if counts["*ast.ForStmt"] != 0 || counts["*ast.IfStmt"] != 0 {
		t.Fatalf("composite statements must not appear as block nodes: %v", counts)
	}
}

func TestForLoopEdges(t *testing.T) {
	g := New(parseBody(t, "for i := 0; i < 3; i++ {\n\t_ = i\n}\n_ = 1"))
	// Find the head: the reachable block holding the BinaryExpr condition.
	var head *Block
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.BinaryExpr); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("no block holds the loop condition")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("loop head should branch to body and done, got %d", len(head.Succs))
	}
}

func TestInfiniteForHasNoExitEdge(t *testing.T) {
	g := New(parseBody(t, "for {\n\t_ = 1\n}"))
	if _, ok := Run(g, boolAnalysis()).ExitFacts(); ok {
		t.Fatalf("for{} must not reach Exit")
	}
}

func TestInfiniteForWithBreakReachesExit(t *testing.T) {
	g := New(parseBody(t, "for {\n\tbreak\n}"))
	if _, ok := Run(g, boolAnalysis()).ExitFacts(); !ok {
		t.Fatalf("for{break} must reach Exit")
	}
}

func TestRangeEdges(t *testing.T) {
	g := New(parseBody(t, "xs := []int{1}\nfor _, x := range xs {\n\t_ = x\n}"))
	var head *Block
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if id, ok := n.(*ast.Ident); ok && id.Name == "xs" {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("no block holds the range operand")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head should branch to body and done, got %d", len(head.Succs))
	}
}

func TestSwitchDefaultRemovesFallEdge(t *testing.T) {
	// With a default clause every path goes through some clause.
	withDefault := New(parseBody(t, `
x := 0
switch x {
case 1:
	_ = 1
default:
	_ = 2
}`))
	without := New(parseBody(t, `
x := 0
switch x {
case 1:
	_ = 1
}`))
	// Head is Entry in both; count successors.
	if n := len(withDefault.Entry.Succs); n != 2 {
		t.Fatalf("switch with default: head succs = %d, want 2 (both clauses)", n)
	}
	if n := len(without.Entry.Succs); n != 2 {
		t.Fatalf("switch without default: head succs = %d, want 2 (clause + done)", n)
	}
}

func TestFallthroughChains(t *testing.T) {
	g := New(parseBody(t, `
x := 0
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
}
_ = x`))
	// The case-1 clause must have an edge into the case-2 clause: find the
	// block assigning 10 and check one successor assigns 20.
	var from *Block
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "10" {
					from = b
				}
			}
		}
	}
	if from == nil {
		t.Fatalf("case-1 body block not found")
	}
	found := false
	for _, s := range from.Succs {
		for _, n := range s.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "20" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestSelectClauses(t *testing.T) {
	g := New(parseBody(t, `
ch := make(chan int)
select {
case v := <-ch:
	_ = v
case ch <- 1:
}`))
	// Entry ends at the select head; it must branch to both comm clauses.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("select head succs = %d, want 2", n)
	}
}

func TestEmptySelectNeverReturns(t *testing.T) {
	g := New(parseBody(t, "select {}"))
	if _, ok := Run(g, boolAnalysis()).ExitFacts(); ok {
		t.Fatalf("select{} must not reach Exit")
	}
}

func TestReturnLeadsToExitAndDeadCode(t *testing.T) {
	g := New(parseBody(t, "return\n_ = 1"))
	res := Run(g, boolAnalysis())
	if _, ok := res.ExitFacts(); !ok {
		t.Fatalf("return must reach Exit")
	}
	// The statement after return lives in an unreached block.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.AssignStmt); ok && res.Reached(b) {
				t.Fatalf("code after return must be unreachable")
			}
		}
	}
}

func TestPanicLeadsToPanicBlock(t *testing.T) {
	g := New(parseBody(t, `panic("boom")`))
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Panic {
		t.Fatalf("panic must flow to the Panic block, got %v", g.Entry.Succs)
	}
	if _, ok := Run(g, boolAnalysis()).ExitFacts(); ok {
		t.Fatalf("unconditional panic must not reach Exit")
	}
}

func TestOsExitIsTerminator(t *testing.T) {
	g := New(parseBody(t, "os.Exit(1)"))
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Panic {
		t.Fatalf("os.Exit must flow to the Panic block")
	}
}

func TestGotoForward(t *testing.T) {
	g := New(parseBody(t, "x := 0\ngoto done\ndone:\n_ = x"))
	res := Run(g, boolAnalysis())
	if _, ok := res.ExitFacts(); !ok {
		t.Fatalf("goto to label must reach Exit")
	}
}

func TestGotoBackwardLoops(t *testing.T) {
	g := New(parseBody(t, "x := 0\nagain:\nx++\nif x < 3 {\n\tgoto again\n}"))
	// The analysis must converge (worklist with join); success is just not
	// hanging and reaching Exit.
	if _, ok := Run(g, boolAnalysis()).ExitFacts(); !ok {
		t.Fatalf("backward goto loop must converge and reach Exit")
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g := New(parseBody(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		if j == 2 {
			break outer
		}
	}
}
_ = 1`))
	if _, ok := Run(g, boolAnalysis()).ExitFacts(); !ok {
		t.Fatalf("labeled break must reach the statement after the loop")
	}
}

func TestFuncLitBodyIsOpaque(t *testing.T) {
	g := New(parseBody(t, "f := func() {\n\treturn\n}\nf()"))
	// The literal's return must NOT create an edge to the outer Exit from
	// the entry block; entry holds the assign + call and flows to Exit once.
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("func literal body leaked into enclosing graph: %v", g.Entry.Succs)
	}
	joined := strings.Join(nodeStrings(g), " ")
	if !strings.Contains(joined, "AssignStmt") {
		t.Fatalf("assign of literal missing from graph: %s", joined)
	}
}

// boolAnalysis is a trivial lattice (any path reaches here) used to probe
// reachability in the tests above.
func boolAnalysis() *Analysis[bool] {
	return &Analysis[bool]{
		Entry:    true,
		Join:     func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
		Transfer: func(b *Block, in bool) bool { return in },
	}
}

// TestDataflowJoin runs a real forward analysis: track an integer "lock
// level" set by assignments lock=1 / lock=2 / lock=0, joined with min, and
// assert the converged fact at Exit for a diamond.
func TestDataflowJoin(t *testing.T) {
	g := New(parseBody(t, `
lock := 0
if cond {
	lock = 2
} else {
	lock = 1
}
_ = lock`))
	level := func(n ast.Node, in int) int {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return in
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name != "lock" {
			return in
		}
		if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
			switch lit.Value {
			case "0":
				return 0
			case "1":
				return 1
			case "2":
				return 2
			}
		}
		return in
	}
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	a := &Analysis[int]{
		Entry: -1, // unanalyzed sentinel; Entry block's first assign sets 0
		Join:  min,
		Equal: func(a, b int) bool { return a == b },
		Transfer: func(b *Block, in int) int {
			for _, n := range b.Nodes {
				in = level(n, in)
			}
			return in
		},
	}
	res := Run(g, a)
	exit, ok := res.ExitFacts()
	if !ok {
		t.Fatalf("diamond must reach Exit")
	}
	if exit != 1 {
		t.Fatalf("join of {2,1} should be 1 at exit, got %d", exit)
	}
	// WalkReached must report the pre-node fact: the final blank assign
	// sees the joined value 1.
	sawMerge := false
	res.WalkReached(level, func(n ast.Node, before int) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				sawMerge = true
				if before != 1 {
					t.Fatalf("fact before merge use = %d, want 1", before)
				}
			}
		}
	})
	if !sawMerge {
		t.Fatalf("merge-point use not visited")
	}
}

// The corner cases below pin statement shapes the interprocedural call
// graph leans on: the CFG must surface them as ordinary nodes in the
// enclosing function's blocks (so analyzers walking Block.Nodes see the
// calls), without leaking literal bodies or distorting control flow.

func TestMethodValueAssignmentIsOrdinaryNode(t *testing.T) {
	g := New(parseBody(t, "f := s.Run\nf()\n_ = f"))
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("method-value assignment distorted flow: %v", g.Entry.Succs)
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3 (assign, call, use)", len(g.Entry.Nodes))
	}
	// The assignment node must carry the selector so a walker can resolve
	// the method value.
	sawMethodValue := false
	ast.Inspect(g.Entry.Nodes[0], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Run" {
			sawMethodValue = true
		}
		return true
	})
	if !sawMethodValue {
		t.Fatalf("assign node lost the s.Run selector: %T", g.Entry.Nodes[0])
	}
}

func TestDeferAndGoArgumentsStayInBlock(t *testing.T) {
	// Calls in defer/go *arguments* run now, at the statement, even though
	// the deferred/spawned call runs later: the statement must be a node of
	// the current block with its argument calls intact.
	g := New(parseBody(t, "defer release(acquire())\ngo worker(setup())\ndone()"))
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3 (defer, go, call)", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("defer/go distorted flow: %v", g.Entry.Succs)
	}
	for i, wantInner := range []string{"acquire", "setup"} {
		found := false
		ast.Inspect(g.Entry.Nodes[i], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == wantInner {
				found = true
			}
			return true
		})
		if !found {
			t.Errorf("node %d lost its argument call %q", i, wantInner)
		}
	}
}

func TestDeferredFuncLitBodyIsOpaque(t *testing.T) {
	// A return inside a deferred literal must not create an edge to the
	// enclosing Exit; only the defer statement itself is in the block.
	g := New(parseBody(t, "defer func() {\n\treturn\n}()\nx := 1\n_ = x"))
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("deferred literal body leaked into enclosing graph: %v", g.Entry.Succs)
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
}

func TestVariadicCallSites(t *testing.T) {
	// Variadic calls — both element form and slice-spread — are ordinary
	// nodes; the spread's ellipsis must not be mistaken for control flow.
	g := New(parseBody(t, "xs := []int{1, 2}\nsink(1, 2, 3)\nsink(xs...)"))
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("variadic calls distorted flow: %v", g.Entry.Succs)
	}
	spread := g.Entry.Nodes[2]
	found := false
	ast.Inspect(spread, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Ellipsis.IsValid() {
			found = true
		}
		return true
	})
	if !found {
		t.Fatalf("spread call site lost its ellipsis: %T", spread)
	}
}

func TestVariadicCallInLoopCondition(t *testing.T) {
	// A variadic call in a loop condition sits in the loop-head block and
	// is re-evaluated per iteration: the head must have the back edge.
	g := New(parseBody(t, "for check(1, 2) {\n\tstep()\n}\nrest()"))
	heads := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if e, ok := n.(ast.Expr); ok {
				if call, ok := e.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "check" {
						heads++
						if len(b.Succs) != 2 {
							t.Fatalf("loop head should branch (body, after), got %d succs", len(b.Succs))
						}
					}
				}
			}
		}
	}
	if heads != 1 {
		t.Fatalf("loop-head condition appeared %d times, want 1", heads)
	}
}

// TestCondEdges pins the branch-target records the path-sensitive analyzers
// (poollife's err/nil refinement) rely on: every if head appears in Conds,
// Then is the true branch, and Else is the else block — or the join block
// when the if has no else.
func TestCondEdges(t *testing.T) {
	t.Run("if with else", func(t *testing.T) {
		g := New(parseBody(t, "if cond {\n\ta()\n} else {\n\tb()\n}\nafter()"))
		if len(g.Conds) != 1 {
			t.Fatalf("got %d cond edges, want 1", len(g.Conds))
		}
		for head, ce := range g.Conds {
			if ce.Cond == nil {
				t.Fatal("cond edge lost its condition expression")
			}
			hb := g.Blocks[head]
			if len(hb.Succs) != 2 {
				t.Fatalf("if head has %d successors, want 2", len(hb.Succs))
			}
			if !blockCalls(g.Blocks[ce.Then], "a") {
				t.Errorf("Then branch does not reach a()")
			}
			if !blockCalls(g.Blocks[ce.Else], "b") {
				t.Errorf("Else branch does not reach b()")
			}
		}
	})
	t.Run("if without else targets the join", func(t *testing.T) {
		g := New(parseBody(t, "if cond {\n\ta()\n}\nafter()"))
		if len(g.Conds) != 1 {
			t.Fatalf("got %d cond edges, want 1", len(g.Conds))
		}
		for _, ce := range g.Conds {
			if !blockCalls(g.Blocks[ce.Then], "a") {
				t.Errorf("Then branch does not reach a()")
			}
			if !blockCalls(g.Blocks[ce.Else], "after") {
				t.Errorf("no-else Else edge should land on the join block")
			}
		}
	})
}

// blockCalls reports whether b contains a call to the named function.
func blockCalls(b *Block, name string) bool {
	for _, n := range b.Nodes {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// TestEdgeRefine pins the path-refinement contract: the refined fact flows
// only along its edge, and refinements are re-joined at the merge point.
func TestEdgeRefine(t *testing.T) {
	// Facts are sets of strings; the condition "cond" kills the fact "x"
	// on the true edge only.
	type fact = map[string]bool
	join := func(a, b fact) fact {
		out := fact{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b fact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	g := New(parseBody(t, "if cond {\n\ta()\n} else {\n\tb()\n}\nafter()"))
	refined := 0
	res := Run(g, &Analysis[fact]{
		Entry: fact{"x": true},
		Join:  join,
		Equal: equal,
		Transfer: func(b *Block, in fact) fact {
			return in
		},
		EdgeRefine: func(from, to *Block, out fact) fact {
			ce, ok := g.Conds[from.Index]
			if !ok || to.Index != ce.Then {
				return out
			}
			refined++
			next := fact{}
			for k := range out {
				if k != "x" {
					next[k] = true
				}
			}
			return next
		},
	})
	if refined == 0 {
		t.Fatal("EdgeRefine was never invoked on the branch edge")
	}
	sawThen, sawElse := false, false
	for _, b := range g.Blocks {
		in, ok := res.In[b.Index]
		if !ok {
			continue
		}
		switch {
		case blockCalls(b, "a"):
			sawThen = true
			if in["x"] {
				t.Error("fact x survived into the refined Then branch")
			}
		case blockCalls(b, "b"):
			sawElse = true
			if !in["x"] {
				t.Error("fact x should persist on the unrefined Else branch")
			}
		case blockCalls(b, "after"):
			if !in["x"] {
				t.Error("join block should regain x from the Else path")
			}
		}
	}
	if !sawThen || !sawElse {
		t.Fatalf("branch blocks not found (then=%v else=%v)", sawThen, sawElse)
	}
}
