package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pdr/internal/lint/cfg"
)

// AnalyzerAtomicMix enforces single-discipline access to atomic state, the
// cache/telemetry/storage stats idiom: once a struct field is updated
// through sync/atomic, every other access must be atomic too (or hold the
// owning struct's mu) — a plain load can observe a torn or stale value and
// a plain store can lose a concurrent atomic increment.
//
// Two field families are tracked per package:
//
//   - plain-typed fields (int64, uint32, ...) that some call site passes by
//     address to a sync/atomic function: a non-atomic read elsewhere needs
//     at least the owner's read lock on every path (write lock for writes),
//     and if the owner has no mu at all the mix is unconditionally flagged;
//   - fields of the atomic.Int64 family (named types from sync/atomic):
//     these must only be touched through their methods — copying one reads
//     its guts non-atomically (and go vet's copylocks misses several
//     shapes); taking the address to call a method is fine.
//
// Constructor-owned values (s := &T{...}) are exempt like in locked, and so
// are *Locked methods (their caller holds mu by convention).
var AnalyzerAtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain access to fields that are elsewhere accessed via sync/atomic",
	Run:  runAtomicMix,
}

// atomicFieldSets is the per-package inventory phase-1 collects.
type atomicFieldSets struct {
	// plain[T][f]: field f of struct T is passed to sync/atomic functions.
	plain map[string]map[string]bool
	// typed[T][f] = atomic type name: field f of struct T has an
	// atomic.Int64-family type.
	typed map[string]map[string]string
	// hasMu[T]: struct T owns a mu mutex field.
	hasMu map[string]bool
}

func runAtomicMix(p *Pass) {
	sets := collectAtomicFields(p)
	if len(sets.plain) == 0 && len(sets.typed) == 0 {
		return
	}
	tracked := make(map[string]map[string]bool)
	for t, fs := range sets.plain {
		for f := range fs {
			if tracked[t] == nil {
				tracked[t] = make(map[string]bool)
			}
			tracked[t][f] = true
		}
	}
	for t, fs := range sets.typed {
		for f := range fs {
			if tracked[t] == nil {
				tracked[t] = make(map[string]bool)
			}
			tracked[t][f] = true
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkAtomicBody(p, sets, tracked, funcContext(fd), fd.Body, lockState{})
		}
	}
}

// collectAtomicFields walks the package once for the two field families.
func collectAtomicFields(p *Pass) atomicFieldSets {
	sets := atomicFieldSets{
		plain: make(map[string]map[string]bool),
		typed: make(map[string]map[string]string),
		hasMu: make(map[string]bool),
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					ft := p.TypeOf(field.Type)
					for _, name := range field.Names {
						if name.Name == "mu" && isMutex(ft) {
							sets.hasMu[n.Name.Name] = true
						}
						if an, ok := atomicTypeName(ft); ok {
							if sets.typed[n.Name.Name] == nil {
								sets.typed[n.Name.Name] = make(map[string]string)
							}
							sets.typed[n.Name.Name][name.Name] = an
						}
					}
				}
			case *ast.CallExpr:
				if !isAtomicPkgCall(p, n) {
					return true
				}
				for _, a := range n.Args {
					if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
						a = u.X
					}
					sel, ok := a.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					owner, field, ok := fieldOwner(p, sel)
					if !ok {
						continue
					}
					if sets.plain[owner] == nil {
						sets.plain[owner] = make(map[string]bool)
					}
					sets.plain[owner][field] = true
				}
			}
			return true
		})
	}
	return sets
}

// isAtomicPkgCall reports whether call invokes a sync/atomic package-level
// function (atomic.AddInt64, atomic.LoadUint32, ...).
func isAtomicPkgCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pn := p.PkgNameOf(sel.X)
	return pn != nil && pn.Imported().Path() == "sync/atomic"
}

// atomicTypeName reports whether t is a named type from sync/atomic
// (Int64, Uint32, Bool, Value, Pointer[T], ...).
func atomicTypeName(t types.Type) (string, bool) {
	named, ok := types.Unalias(derefType(t)).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return obj.Name(), true
}

// fieldOwner resolves sel to (struct type name, field name) for field
// selections on structs declared in this package.
func fieldOwner(p *Pass, sel *ast.SelectorExpr) (string, string, bool) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", "", false
	}
	named, ok := types.Unalias(derefType(s.Recv())).(*types.Named)
	if !ok || named.Obj().Pkg() != p.Pkg {
		return "", "", false
	}
	return named.Obj().Name(), sel.Sel.Name, true
}

// checkAtomicBody runs the lock-state dataflow over one body and reports
// plain accesses to tracked fields. Function literals inherit the lock
// state of their occurrence point, like in locked.
func checkAtomicBody(p *Pass, sets atomicFieldSets, tracked map[string]map[string]bool, ctx string, body *ast.BlockStmt, entry lockState) {
	owned := ownedIdents(p, tracked, body)
	g := cfg.New(body)
	res := lockFlow(p, g, entry)
	step := func(n ast.Node, in lockState) lockState { return stepLockState(p, n, in) }
	res.WalkReached(step, func(n ast.Node, before lockState) {
		checkNodeAtomicAccesses(p, sets, tracked, owned, ctx, n, before)
		for _, fl := range topFuncLits(n) {
			checkAtomicBody(p, sets, tracked, ctx+".func", fl.Body, before.clone())
		}
	})
}

func checkNodeAtomicAccesses(p *Pass, sets atomicFieldSets, tracked map[string]map[string]bool, owned map[string]bool, ctx string, n ast.Node, before lockState) {
	uses := atomicUses(p, n)
	writes := writeSelectors(n)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner, field, ok := fieldOwner(p, sel)
		if !ok || !tracked[owner][field] || uses[ast.Expr(sel)] {
			return true
		}
		base := exprKey(sel.X)
		if base == "" || owned[rootIdent(sel.X)] {
			return true
		}
		access := base + "." + field
		if an, ok := sets.typed[owner][field]; ok {
			p.Reportf(sel.Pos(), "%s accesses %s (atomic.%s) plainly; use its Load/Store/Add methods", ctx, access, an)
			return false
		}
		level := before[base+".mu"]
		switch {
		case !sets.hasMu[owner]:
			p.Reportf(sel.Pos(), "%s accesses %s plainly but the field is updated via sync/atomic elsewhere and %s has no mu; use atomic ops for every access", ctx, access, owner)
			return false
		case writes[ast.Expr(sel)] && level < 2:
			p.Reportf(sel.Pos(), "%s writes %s plainly without holding %s.mu.Lock(); the field is updated via sync/atomic elsewhere — use atomic ops or take the write lock", ctx, access, base)
			return false
		case !writes[ast.Expr(sel)] && level < 1:
			p.Reportf(sel.Pos(), "%s reads %s plainly without holding %s.mu; the field is updated via sync/atomic elsewhere — use atomic ops or take the lock", ctx, access, base)
			return false
		}
		return true
	})
}

// atomicUses marks the selector occurrences inside n that ARE legitimate
// atomic accesses: &x.f arguments of sync/atomic calls, method-call
// receivers (x.f.Load()), and address-taking of typed atomics (to pass the
// pointer to a helper that uses the methods).
func atomicUses(p *Pass, n ast.Node) map[ast.Expr]bool {
	uses := make(map[ast.Expr]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if !isAtomicPkgCall(p, x) {
				return true
			}
			for _, a := range x.Args {
				if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
					a = u.X
				}
				if s, ok := a.(*ast.SelectorExpr); ok {
					uses[s] = true
				}
			}
		case *ast.SelectorExpr:
			if s, ok := p.Info.Selections[x]; ok && s.Kind() == types.MethodVal {
				if inner, ok := x.X.(*ast.SelectorExpr); ok {
					uses[inner] = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return true
			}
			if s, ok := x.X.(*ast.SelectorExpr); ok {
				if _, ok := atomicTypeName(p.TypeOf(s)); ok {
					uses[s] = true
				}
			}
		}
		return true
	})
	return uses
}
