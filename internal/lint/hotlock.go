package lint

import (
	"go/ast"
)

// AnalyzerHotLock reports mutex acquisitions inside loops of hot-reachable
// functions when the acquisition is hoistable: it runs unconditionally on
// every iteration and the mutex expression does not depend on any
// loop-bound variable, so one acquisition around the loop buys the same
// exclusion for a fraction of the lock traffic. Conditional acquisitions
// and per-element locks (shard[i].mu) are left alone — those are the
// patterns fine-grained locking exists for.
var AnalyzerHotLock = &Analyzer{
	Name:          "hotlock",
	Doc:           "reports hoistable mutex Lock/RLock acquired on every iteration of a hot-path loop",
	Run:           runHotLock,
	UsesCallGraph: true,
}

func runHotLock(p *Pass) {
	forEachHotFunc(p, func(fd *ast.FuncDecl) {
		hotWalk(fd.Body, func(n ast.Node, loops []ast.Stmt, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(loops) == 0 {
				return true
			}
			op, ok := mutexOpOf(p, call)
			if !ok || (op.name != "Lock" && op.name != "RLock") {
				return true
			}
			if !unconditionalInLoop(stack, loops) {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr) // shape guaranteed by mutexOpOf
			if dependsOnVars(p, sel.X, loopBoundVars(p, loops)) {
				return true
			}
			p.Reportf(call.Pos(), "%s.%s on every iteration of a hot loop; the mutex is loop-invariant — acquire it once around the loop", op.key, op.name)
			return true
		})
	})
}
