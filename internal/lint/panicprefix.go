package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// panicPrefixPackages are the index substrates whose corruption panics
// must identify their origin uniformly: "<pkg>: <detail>". Operators grep
// crash logs by that prefix, and core wraps index panics on that
// assumption.
var panicPrefixPackages = map[string]bool{
	"pdr/internal/tprtree":   true,
	"pdr/internal/gridindex": true,
	"pdr/internal/bptree":    true,
	"pdr/internal/bxtree":    true,
}

// AnalyzerPanicPrefix checks that every panic message in an index package
// starts with the package name and ": ".
var AnalyzerPanicPrefix = &Analyzer{
	Name: "panicprefix",
	Doc:  "index-corruption panics must read \"<pkg>: ...\"",
	Run:  runPanicPrefix,
}

func runPanicPrefix(p *Pass) {
	if !panicPrefixPackages[p.Path] {
		return
	}
	want := p.Pkg.Name() + ": "
	p.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
			return true
		}
		lit, found := leadingStringLit(call.Args[0])
		if !found {
			// Message not statically determinable (error value, variable);
			// leave it to the humans.
			return true
		}
		if !strings.HasPrefix(lit, want) {
			p.Reportf(call.Pos(), "panic message %q must start with %q (uniform index-corruption prefix)", lit, want)
		}
		return true
	})
}

// leadingStringLit digs out the leftmost string literal of a panic
// argument: a plain literal, the left spine of a + concatenation, or the
// format string of a fmt.Sprintf call.
func leadingStringLit(e ast.Expr) (string, bool) {
	for {
		switch v := e.(type) {
		case *ast.BasicLit:
			s, err := strconv.Unquote(v.Value)
			if err != nil {
				return "", false
			}
			return s, true
		case *ast.BinaryExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" && len(v.Args) > 0 {
				e = v.Args[0]
				continue
			}
			return "", false
		default:
			return "", false
		}
	}
}
