package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerLocked enforces the single-writer engine discipline: in any
// struct that owns a `mu` sync.Mutex/RWMutex, fields whose declaration
// comment says "guarded by mu" may only be touched by methods that call
// mu.Lock/RLock earlier in the same body. Methods whose name ends in
// "Locked" are exempt — by convention their caller already holds mu.
//
// The check is intra-procedural and position-based (a Lock call textually
// before the first guarded access), which is exactly the shape every
// handler in internal/service follows: lock at the top, defer unlock, then
// use srv/mon.
var AnalyzerLocked = &Analyzer{
	Name: "locked",
	Doc:  "flags methods touching \"guarded by mu\" fields without locking mu first",
	Run:  runLocked,
}

const guardMarker = "guarded by mu"

// guardedFields maps struct type name -> set of guarded field names for
// structs that have a mu mutex field.
func guardedFields(p *Pass) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			hasMu := false
			guarded := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if name.Name == "mu" && isMutex(p.TypeOf(field.Type)) {
						hasMu = true
					}
					if fieldCommentHas(field, guardMarker) {
						guarded[name.Name] = true
					}
				}
			}
			if hasMu && len(guarded) > 0 {
				out[ts.Name.Name] = guarded
			}
			return true
		})
	}
	return out
}

func fieldCommentHas(field *ast.Field, marker string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(strings.ToLower(cg.Text()), marker) {
			return true
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func runLocked(p *Pass) {
	guarded := guardedFields(p)
	if len(guarded) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			recvName, typeName := receiver(fd)
			fields, ok := guarded[typeName]
			if !ok || recvName == "" {
				continue
			}
			checkLockDiscipline(p, fd, recvName, fields)
		}
	}
}

// receiver returns the receiver variable name and its (dereferenced) type
// name, e.g. ("s", "Service") for func (s *Service).
func receiver(fd *ast.FuncDecl) (recvName, typeName string) {
	if len(fd.Recv.List) != 1 {
		return "", ""
	}
	r := fd.Recv.List[0]
	if len(r.Names) == 1 {
		recvName = r.Names[0].Name
	}
	t := r.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName
}

func checkLockDiscipline(p *Pass, fd *ast.FuncDecl, recvName string, fields map[string]bool) {
	lockPos := token.Pos(-1)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "mu" {
			return true
		}
		if id, ok := inner.X.(*ast.Ident); ok && id.Name == recvName {
			if lockPos == token.Pos(-1) || call.Pos() < lockPos {
				lockPos = call.Pos()
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !fields[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName {
			return true
		}
		if lockPos == token.Pos(-1) || sel.Pos() < lockPos {
			p.Reportf(sel.Pos(), "%s.%s accesses %s.%s (guarded by mu) without holding mu; lock first, rename the method *Locked if the caller locks, or lint:ignore with a reason", receiverTypeName(fd), fd.Name.Name, recvName, sel.Sel.Name)
			return false // one report per access chain
		}
		return true
	})
}

func receiverTypeName(fd *ast.FuncDecl) string {
	_, t := receiver(fd)
	return t
}
