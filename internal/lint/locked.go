package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"pdr/internal/lint/cfg"
)

// AnalyzerLocked enforces the engine's reader/writer discipline over every
// struct that owns a `mu` sync.Mutex/RWMutex with "guarded by mu" fields.
// Since v2 it is path-sensitive and RW-aware, built on the internal/lint/cfg
// dataflow engine:
//
//   - reading a guarded field requires at least the read lock (RLock or
//     Lock) held on *every* path reaching the access;
//   - writing a guarded field — assignment, ++/--, delete, taking its
//     address — requires the write lock; a write on a path where only RLock
//     is held is exactly the torn-state race the PR 3 migration invited and
//     is reported even though v1's positional check accepted it.
//
// Accesses are matched to mutexes textually ("sh.entries" needs "sh.mu"),
// so locking a shard through a local variable is in scope. Function
// literals inherit the lock state of their occurrence point: a worker
// closure spawned between RLock and RUnlock may read guarded state, one
// spawned with no lock held may not. Methods whose name ends in "Locked"
// are exempt — by convention their caller already holds mu — and a
// constructor that builds the struct itself (s := &T{...}) owns the value
// until it escapes.
var AnalyzerLocked = &Analyzer{
	Name: "locked",
	Doc:  "flags guarded-field reads without any lock and writes without the write lock on some path",
	Run:  runLocked,
}

const guardMarker = "guarded by mu"

// guardedFields maps struct type name -> set of guarded field names for
// structs that have a mu mutex field.
func guardedFields(p *Pass) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			hasMu := false
			guarded := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if name.Name == "mu" && isMutex(p.TypeOf(field.Type)) {
						hasMu = true
					}
					if fieldCommentHas(field, guardMarker) {
						guarded[name.Name] = true
					}
				}
			}
			if hasMu && len(guarded) > 0 {
				out[ts.Name.Name] = guarded
			}
			return true
		})
	}
	return out
}

func fieldCommentHas(field *ast.Field, marker string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(strings.ToLower(cg.Text()), marker) {
			return true
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func runLocked(p *Pass) {
	guarded := guardedFields(p)
	if len(guarded) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkLockedBody(p, guarded, funcContext(fd), fd.Body, lockState{})
		}
	}
}

// funcContext names a function for diagnostics: "Service.Watch" for
// methods, "New" for plain functions.
func funcContext(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		if _, t := receiver(fd); t != "" {
			return t + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// receiver returns the receiver variable name and its (dereferenced) type
// name, e.g. ("s", "Service") for func (s *Service).
func receiver(fd *ast.FuncDecl) (recvName, typeName string) {
	if len(fd.Recv.List) != 1 {
		return "", ""
	}
	r := fd.Recv.List[0]
	if len(r.Names) == 1 {
		recvName = r.Names[0].Name
	}
	t := r.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName
}

// checkLockedBody converges the lock-state dataflow over body and reports
// every guarded access whose required level is not held on all paths
// reaching it. Function literals recurse with the state of their occurrence
// point as entry.
func checkLockedBody(p *Pass, guarded map[string]map[string]bool, ctx string, body *ast.BlockStmt, entry lockState) {
	owned := ownedIdents(p, guarded, body)
	g := cfg.New(body)
	res := lockFlow(p, g, entry)
	step := func(n ast.Node, in lockState) lockState { return stepLockState(p, n, in) }
	res.WalkReached(step, func(n ast.Node, before lockState) {
		checkNodeAccesses(p, guarded, owned, ctx, n, before)
		for _, fl := range topFuncLits(n) {
			checkLockedBody(p, guarded, ctx+".func", fl.Body, before.clone())
		}
	})
}

// checkNodeAccesses reports the guarded-field accesses directly inside one
// CFG node (function literals excluded) against the lock state before it.
func checkNodeAccesses(p *Pass, guarded map[string]map[string]bool, owned map[string]bool, ctx string, n ast.Node, before lockState) {
	writes := writeSelectors(n)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner, ok := guardedFieldSel(p, guarded, sel)
		if !ok {
			return true
		}
		base := exprKey(sel.X)
		if base == "" || owned[rootIdent(sel.X)] {
			return true
		}
		level := before[base+".mu"]
		access := base + "." + sel.Sel.Name
		switch {
		case writes[ast.Expr(sel)] && level < 2:
			if level == 1 {
				p.Reportf(sel.Pos(), "%s writes %s (guarded by %s.mu) while holding only the read lock; writes need %s.mu.Lock()", ctx, access, owner, base)
			} else {
				p.Reportf(sel.Pos(), "%s writes %s (guarded by %s.mu) on a path where %s.mu is not held; lock first, rename the function *Locked if the caller locks, or lint:ignore with a reason", ctx, access, owner, base)
			}
			return false // one report per access chain
		case !writes[ast.Expr(sel)] && level < 1:
			p.Reportf(sel.Pos(), "%s accesses %s (guarded by %s.mu) on a path where %s.mu is not held; lock first, rename the function *Locked if the caller locks, or lint:ignore with a reason", ctx, access, owner, base)
			return false
		}
		return true
	})
}
