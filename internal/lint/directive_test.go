package lint

import (
	"strings"
	"testing"
)

// The staleness check lives in applyIgnores; these tests pin when a
// suppression that matched nothing is reported and when it must stay quiet.
func TestStaleIgnoreReportedUnderFullSuite(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

func f(a, b int) bool {
	return a == b // lint:ignore floateq ints are exact, nothing to suppress
}
`, All()...)
	wantFindings(t, diags, "directive", 1)
	if !strings.Contains(diags[0].Message, "stale lint:ignore") {
		t.Errorf("message = %q, want stale-ignore wording", diags[0].Message)
	}
}

func TestStaleIgnoreDeletedWhenFindingReturns(t *testing.T) {
	// Same directive, but now it actually suppresses a finding: no stale
	// report, no floateq report.
	diags := analyze(t, "pdr/internal/x", `package x

func f(a, b float64) bool {
	return a == b // lint:ignore floateq fixture
}
`, All()...)
	wantFindings(t, diags, "", 0)
}

func TestStaleIgnoreSilentWhenAnalyzerNotRun(t *testing.T) {
	// The directive names wallclock, but only floateq ran: whether it is
	// stale is undecidable, so it must not be reported.
	diags := analyze(t, "pdr/internal/x", `package x

func f(a, b int) bool {
	return a == b // lint:ignore wallclock partial-run fixture
}
`, AnalyzerFloatEq)
	wantFindings(t, diags, "", 0)
}

func TestStaleIgnoreSilentUnderOnlyWithoutDirective(t *testing.T) {
	// `-only floateq`: the named analyzer ran and matched nothing, but the
	// directive analyzer itself is not in the running set, so no finding may
	// carry its name — a partial run must never fail on directive hygiene
	// the user did not ask it to check.
	diags := analyze(t, "pdr/internal/x", `package x

func f(a, b int) bool {
	return a == b // lint:ignore floateq ints are exact, nothing to suppress
}
`, AnalyzerFloatEq)
	wantFindings(t, diags, "", 0)
}

func TestStaleIgnoreReportedUnderOnlyWithDirective(t *testing.T) {
	// `-only floateq,directive`: every analyzer the directive names ran and
	// the directive analyzer is in the set — staleness is decidable without
	// the full suite.
	diags := analyze(t, "pdr/internal/x", `package x

func f(a, b int) bool {
	return a == b // lint:ignore floateq ints are exact, nothing to suppress
}
`, AnalyzerFloatEq, AnalyzerDirective)
	wantFindings(t, diags, "directive", 1)
}

func TestStaleAllIgnoreNeedsFullSuite(t *testing.T) {
	src := `package x

func f(a, b int) bool {
	return a == b // lint:ignore all blanket fixture
}
`
	// Partial run: "all" is undecidable.
	wantFindings(t, analyze(t, "pdr/internal/x", src, AnalyzerFloatEq), "", 0)
	// Full suite: the blanket directive suppressed nothing and is stale.
	wantFindings(t, analyze(t, "pdr/internal/x", src, All()...), "directive", 1)
}

func TestIgnoreNamingDirectiveNeverStale(t *testing.T) {
	// A directive that names "directive" exists to silence the staleness
	// check itself; reporting it would be self-defeating.
	diags := analyze(t, "pdr/internal/x", `package x

// lint:ignore directive kept intentionally for doc examples
var V = 1
`, All()...)
	wantFindings(t, diags, "", 0)
}

func TestDirectiveAnalyzerRegistered(t *testing.T) {
	// -list must advertise the directive analyzer even though its findings
	// are synthesized by applyIgnores rather than a Run pass.
	for _, n := range Names() {
		if n == "directive" {
			return
		}
	}
	t.Fatal(`"directive" missing from the analyzer inventory`)
}
