package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"pdr/internal/lint/callgraph"
	"pdr/internal/lint/cfg"
)

// AnalyzerPoolLife verifies the ownership discipline of sync.Pool-backed
// scratch, the invariant the zero-allocation query kernels rest on. Per
// function it tracks every value the function becomes responsible for —
// a direct `x := pool.Get().(*T)` or a call to a provider such as
// Histogram.Filter — through the CFG and reports:
//
//   - a pooled value not released on every panic-free path out of the
//     function (must-reach, like deferunlock): Put/Release it before each
//     return or defer the release;
//   - use after release: any mention of the value once every path reaching
//     the point has returned it to its pool;
//   - double release: a Put/Release every reaching path has already done,
//     and a deferred release that re-runs after an explicit one;
//   - pointer-bearing fields not cleared before Put: the pool would pin the
//     last query's data live (mechanical fix: insert the `x.f = nil` /
//     `clear(x.f)` lines before the Put);
//   - a pooled-scratch alias of a caller slice (`out := s[:0]` + append)
//     returned without a cap-clip, letting the caller's appends clobber
//     retained scratch (mechanical fix: return `out[:len(out):len(out)]`).
//
// Release knowledge is interprocedural: Prepare builds module-wide releaser
// and provider summaries (poolflow.go), so core releasing a dh value by
// calling its dh method is understood across the package boundary. Ownership
// transfers end tracking: returning the value, storing it into a field,
// composite literal, or channel, capturing it in a function literal or
// goroutine, or passing it to a non-releasing callee all hand the obligation
// to someone this function can no longer see. Error-path correlation uses
// edge refinement: on the `err != nil` edge of `x, err := provider(...)`
// the pooled result is invalid and carries no obligation.
var AnalyzerPoolLife = &Analyzer{
	Name: "poollife",
	Doc:  "tracks sync.Pool scratch lifetimes: leaked or double releases, use-after-Put, un-cleared pointer fields, un-clipped pooled returns",
	Run:  runPoolLife,
	Prepare: func(pkgs []*Package, _ *callgraph.Graph) any {
		return buildPoolSummary(pkgs)
	},
}

// poolFact is one reachable configuration of one tracked pooled value.
// Values are comparable, so a set of them is a map key set.
type poolFact struct {
	// live is true while the release obligation is pending; false once this
	// path returned the value to its pool.
	live   bool
	acqPos token.Pos
	relPos token.Pos
	// deferRel marks a pending deferred release (defer pool.Put(x) or
	// defer x.Release()).
	deferRel bool
	deferPos token.Pos
	// errKey names the error assigned alongside a provider's result; until
	// an err-nil check splits the paths, the obligation is conditional.
	errKey string
	// src says what produced the value ("e.scratches.Get", "Filter").
	src    string
	viaGet bool
}

// poolState maps tracked identifier -> set of reachable configurations.
type poolState map[string]map[poolFact]bool

func (s poolState) clone() poolState {
	out := make(poolState, len(s))
	for k, set := range s {
		cp := make(map[poolFact]bool, len(set))
		for f := range set {
			cp[f] = true
		}
		out[k] = cp
	}
	return out
}

func joinPoolStates(a, b poolState) poolState {
	out := a.clone()
	for k, set := range b {
		if out[k] == nil {
			out[k] = make(map[poolFact]bool, len(set))
		}
		for f := range set {
			out[k][f] = true
		}
	}
	return out
}

func equalPoolStates(a, b poolState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, as := range a {
		bs, ok := b[k]
		if !ok || len(as) != len(bs) {
			return false
		}
		for f := range as {
			if !bs[f] {
				return false
			}
		}
	}
	return true
}

// allReleasedSet reports whether every reachable configuration has released
// the value — the precondition for "use after release" and "double release".
func allReleasedSet(set map[poolFact]bool) bool {
	if len(set) == 0 {
		return false
	}
	for f := range set {
		if f.live {
			return false
		}
	}
	return true
}

type poolReporter func(pos token.Pos, format string, args ...any)

func runPoolLife(p *Pass) {
	sum, _ := p.Shared.(*poolSummary)
	if sum == nil {
		sum = buildPoolSummary(nil)
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolLife(p, sum, fd.Body)
			checkNilBeforePut(p, fd)
			checkCapClip(p, fd)
		}
	}
}

// checkPoolLife runs the lifetime dataflow over one function body and,
// recursively, every function literal inside it (a literal acquires and
// releases on its own behalf).
func checkPoolLife(p *Pass, sum *poolSummary, body *ast.BlockStmt) {
	for _, fl := range allFuncLits(body) {
		checkPoolLife(p, sum, fl.Body)
	}
	g := cfg.New(body)
	reported := make(map[string]bool)
	report := func(pos token.Pos, format string, args ...any) {
		key := p.Fset.Position(pos).String() + format
		if reported[key] {
			return
		}
		reported[key] = true
		p.Reportf(pos, format, args...)
	}
	step := func(n ast.Node, in poolState) poolState { return stepPoolState(p, sum, n, in, nil) }
	res := cfg.Run(g, &cfg.Analysis[poolState]{
		Entry: poolState{},
		Join:  joinPoolStates,
		Equal: equalPoolStates,
		Transfer: func(b *cfg.Block, in poolState) poolState {
			for _, n := range b.Nodes {
				in = stepPoolState(p, sum, n, in, nil)
			}
			return in
		},
		EdgeRefine: func(from, to *cfg.Block, out poolState) poolState {
			return refinePoolEdge(g, from, to, out)
		},
	})
	// Replay with reporting enabled: use-after-release and double release
	// are judged against the converged state before each node.
	res.WalkReached(step, func(n ast.Node, before poolState) {
		stepPoolState(p, sum, n, before, report)
	})
	// Leak check at normal exit. Panic paths are exempt, matching the
	// tree's convention that index corruption abandons the process.
	exit, ok := res.ExitFacts()
	if !ok {
		return
	}
	for key, set := range exit {
		for f := range set {
			switch {
			case f.live && !f.deferRel && f.viaGet:
				report(f.acqPos, "%s (from %s) is not returned to its pool on every path; Put it before each return or defer the Put", key, f.src)
			case f.live && !f.deferRel:
				report(f.acqPos, "%s (pooled result of %s) is not released on every path; call its release before each return or defer it", key, f.src)
			case !f.live && f.deferRel:
				report(f.deferPos, "deferred release of %s runs after a path already released it (double release at return)", key)
			}
		}
	}
}

// refinePoolEdge filters the fact flowing along one if-branch edge: on the
// `x == nil` edge a tracked x carries no obligation, and on the `err != nil`
// edge of a provider acquisition the pooled result is invalid by the
// provider contract (valid-or-error, never both).
func refinePoolEdge(g *cfg.Graph, from, to *cfg.Block, out poolState) poolState {
	ce, ok := g.Conds[from.Index]
	if !ok {
		return out
	}
	name, nilOnTrue, ok := nilCheckOf(ce.Cond)
	if !ok {
		return out
	}
	var isNil bool
	switch to.Index {
	case ce.Then:
		isNil = nilOnTrue
	case ce.Else:
		isNil = !nilOnTrue
	default:
		return out
	}
	refined := out.clone()
	if isNil {
		// The tracked value itself is nil on this edge: no obligation.
		delete(refined, name)
	}
	for k, set := range refined {
		touched := false
		next := make(map[poolFact]bool, len(set))
		for f := range set {
			if f.errKey == name {
				touched = true
				if !isNil {
					continue // err != nil: the pooled result is invalid
				}
				f.errKey = "" // err == nil: the obligation is unconditional
			}
			next[f] = true
		}
		if !touched {
			continue
		}
		if len(next) == 0 {
			delete(refined, k)
		} else {
			refined[k] = next
		}
	}
	return refined
}

// nilCheckOf recognizes `x == nil` / `x != nil` (either operand order) over
// a bare identifier, returning the identifier and whether the condition
// being true means x is nil.
func nilCheckOf(cond ast.Expr) (name string, nilOnTrue bool, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	other := x
	if id, isID := y.(*ast.Ident); isID && id.Name == "nil" {
		other = x
	} else if id, isID := x.(*ast.Ident); isID && id.Name == "nil" {
		other = y
	} else {
		return "", false, false
	}
	id, isID := other.(*ast.Ident)
	if !isID {
		return "", false, false
	}
	return id.Name, be.Op == token.EQL, true
}

// stepPoolState advances the pool state across one CFG node. When report is
// non-nil, use-after-release and double release are reported (the replay
// pass); the fixed-point pass passes nil.
func stepPoolState(p *Pass, sum *poolSummary, n ast.Node, in poolState, report poolReporter) poolState {
	out := in.clone()
	switch s := n.(type) {
	case *ast.AssignStmt:
		stepPoolAssign(p, sum, s, out, report)
	case *ast.DeferStmt:
		stepPoolDefer(p, sum, s, out, report)
	case *ast.GoStmt:
		// The goroutine outlives this frame: anything it mentions escapes.
		walkPoolExpr(p, sum, s.Call, out, report, nil)
		dropMentionedKeys(s.Call, out)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			walkPoolExpr(p, sum, r, out, report, nil)
		}
		for _, r := range s.Results {
			// Returning the value transfers ownership to the caller (the
			// provider shape); the obligation is no longer this function's.
			if name := rootOfValue(r); name != "" {
				delete(out, name)
			}
		}
	case *ast.SendStmt:
		walkPoolExpr(p, sum, s.Chan, out, report, nil)
		walkPoolExpr(p, sum, s.Value, out, report, nil)
		if name := rootOfValue(s.Value); name != "" {
			escapePoolValue(out, name, s.Value.Pos(), report)
		}
	default:
		walkPoolExpr(p, sum, n, out, report, nil)
	}
	return out
}

// stepPoolAssign handles acquisitions, rebinds, and stores. Evaluation
// order: RHS uses/escapes, LHS base uses (x.f = v dereferences x), bare-LHS
// rebinds kill tracking, then new acquisitions begin it.
func stepPoolAssign(p *Pass, sum *poolSummary, as *ast.AssignStmt, st poolState, report poolReporter) {
	acqs := poolAcquisitions(p.Info, as, sum)
	sanct := make(map[token.Pos]bool)
	for _, r := range as.Rhs {
		walkPoolExpr(p, sum, r, st, report, sanct)
	}
	// A bare tracked value stored anywhere but a local rebind escapes:
	// res.field = x, arr[i] = x.
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Rhs {
			if _, isIdent := ast.Unparen(as.Lhs[i]).(*ast.Ident); isIdent {
				continue
			}
			if name := rootOfValue(as.Rhs[i]); name != "" {
				escapePoolValue(st, name, as.Rhs[i].Pos(), report)
			}
		}
	}
	for _, l := range as.Lhs {
		if _, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
			continue
		}
		walkPoolExpr(p, sum, l, st, report, sanct)
	}
	for _, l := range as.Lhs {
		if id, isID := ast.Unparen(l).(*ast.Ident); isID {
			delete(st, id.Name)
		}
	}
	for _, acq := range acqs {
		pos := as.Pos()
		for _, l := range as.Lhs {
			if id, isID := l.(*ast.Ident); isID && id.Name == acq.key {
				pos = id.Pos()
			}
		}
		st[acq.key] = map[poolFact]bool{{
			live:   true,
			acqPos: pos,
			errKey: acq.errKey,
			src:    acq.src,
			viaGet: acq.viaGet,
		}: true}
	}
}

// stepPoolDefer registers deferred releases (defer pool.Put(x), defer
// x.Release(), a deferred closure that releases) and conservatively drops
// tracked values a deferred call captures without releasing.
func stepPoolDefer(p *Pass, sum *poolSummary, d *ast.DeferStmt, st poolState, report poolReporter) {
	call := d.Call
	released := make(map[string]bool)
	if _, name, isPool := poolCallOf(p.Info, call); isPool {
		if name == "Put" && len(call.Args) == 1 {
			if root := rootOfValue(call.Args[0]); root != "" {
				released[root] = true
			}
		}
	} else if fl, isLit := call.Fun.(*ast.FuncLit); isLit {
		collectClosureReleases(p, sum, fl.Body, released)
		for key := range st {
			if !released[key] && mentionsName(fl, key) {
				delete(st, key)
			}
		}
	} else {
		callee := staticCallee(p.Info, call)
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if root := rootOfValue(sel.X); root != "" && isReleaseMethod(sum, callee, sel.Sel.Name) {
				released[root] = true
			}
		}
		for ai, arg := range call.Args {
			if root := rootOfValue(arg); root != "" && callee != nil && sum.releases(callee, calleeParamIndex(callee, ai)) {
				released[root] = true
			}
		}
		for key := range st {
			if !released[key] && mentionsName(call, key) {
				delete(st, key)
			}
		}
	}
	for key := range released {
		set, tracked := st[key]
		if !tracked {
			continue
		}
		next := make(map[poolFact]bool, len(set))
		for f := range set {
			f.deferRel = true
			f.deferPos = d.Pos()
			next[f] = true
		}
		st[key] = next
	}
}

// collectClosureReleases gathers the tracked-looking roots a closure body
// releases (pool.Put, releaser calls, Release/Close methods).
func collectClosureReleases(p *Pass, sum *poolSummary, body *ast.BlockStmt, released map[string]bool) {
	ast.Inspect(body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		call, isCall := x.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if _, name, isPool := poolCallOf(p.Info, call); isPool {
			if name == "Put" && len(call.Args) == 1 {
				if root := rootOfValue(call.Args[0]); root != "" {
					released[root] = true
				}
			}
			return true
		}
		callee := staticCallee(p.Info, call)
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if root := rootOfValue(sel.X); root != "" && isReleaseMethod(sum, callee, sel.Sel.Name) {
				released[root] = true
			}
		}
		for ai, arg := range call.Args {
			if root := rootOfValue(arg); root != "" && callee != nil && sum.releases(callee, calleeParamIndex(callee, ai)) {
				released[root] = true
			}
		}
		return true
	})
}

// isReleaseMethod reports whether calling method name on a tracked value
// releases it: the interprocedural summary says the receiver reaches a
// pool.Put, or the method follows the Release/Close naming convention (the
// only signal available for interface-typed values).
func isReleaseMethod(sum *poolSummary, callee *types.Func, name string) bool {
	if sum.releases(callee, -1) {
		return true
	}
	return name == "Release" || name == "Close"
}

// walkPoolExpr is the generic transfer walk over one expression or simple
// statement: release operations transition state, non-releasing transfers
// escape, and (on replay) any mention of an all-paths-released value is a
// use-after-release. sanctioned suppresses the use check on identifiers
// that are themselves part of a release operation.
func walkPoolExpr(p *Pass, sum *poolSummary, n ast.Node, st poolState, report poolReporter, sanctioned map[token.Pos]bool) {
	if n == nil {
		return
	}
	if sanctioned == nil {
		sanctioned = make(map[token.Pos]bool)
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// The closure may run later: captured values escape.
			dropMentionedKeys(x, st)
			return false
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, isKV := el.(*ast.KeyValueExpr); isKV {
					v = kv.Value
				}
				if name := rootOfValue(v); name != "" {
					escapePoolValue(st, name, v.Pos(), report)
				}
			}
			return true
		case *ast.CallExpr:
			stepPoolCall(p, sum, x, st, report, sanctioned)
			return true
		case *ast.Ident:
			if sanctioned[x.Pos()] {
				return true
			}
			if set, tracked := st[x.Name]; tracked && allReleasedSet(set) && report != nil {
				report(x.Pos(), "%s is used after being returned to its pool", x.Name)
			}
		}
		return true
	})
}

// stepPoolCall applies one call's effect on the pool state: pool.Put and
// releaser calls release, non-releasing callees take ownership of bare
// tracked arguments, method calls on a tracked receiver borrow.
func stepPoolCall(p *Pass, sum *poolSummary, call *ast.CallExpr, st poolState, report poolReporter, sanctioned map[token.Pos]bool) {
	if _, name, isPool := poolCallOf(p.Info, call); isPool {
		if name == "Put" && len(call.Args) == 1 {
			if root := rootOfValue(call.Args[0]); root != "" {
				if _, tracked := st[root]; tracked {
					releasePoolKey(st, root, call.Pos(), report, "Put")
					sanctionIdents(call.Args[0], sanctioned)
				}
			}
		}
		return
	}
	callee := staticCallee(p.Info, call)
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if root := rootOfValue(sel.X); root != "" {
			if _, tracked := st[root]; tracked && isReleaseMethod(sum, callee, sel.Sel.Name) {
				releasePoolKey(st, root, call.Pos(), report, sel.Sel.Name+"()")
				sanctionIdents(sel.X, sanctioned)
			}
			// Otherwise a method call on the value borrows it; the use
			// check on the receiver identifier still applies.
		}
	}
	for ai, arg := range call.Args {
		root := rootOfValue(arg)
		if root == "" {
			continue
		}
		if _, tracked := st[root]; !tracked {
			continue
		}
		if callee != nil && sum.releases(callee, calleeParamIndex(callee, ai)) {
			releasePoolKey(st, root, arg.Pos(), report, callee.Name())
			sanctionIdents(arg, sanctioned)
			continue
		}
		// A non-releasing callee receives the value itself: ownership
		// escapes beyond this function's sight.
		escapePoolValue(st, root, arg.Pos(), report)
		sanctionIdents(arg, sanctioned)
	}
}

// releasePoolKey transitions every reachable configuration of key to
// released, reporting a double release when every path already had.
func releasePoolKey(st poolState, key string, pos token.Pos, report poolReporter, op string) {
	set := st[key]
	if report != nil && allReleasedSet(set) {
		report(pos, "%s is already released on every path reaching this %s (double release)", key, op)
	}
	next := make(map[poolFact]bool, len(set))
	for f := range set {
		f.live = false
		f.relPos = pos
		next[f] = true
	}
	st[key] = next
}

// escapePoolValue ends tracking of key because its value was handed to
// something this function cannot follow; a released value escaping is still
// a use-after-release.
func escapePoolValue(st poolState, key string, pos token.Pos, report poolReporter) {
	set, tracked := st[key]
	if !tracked {
		return
	}
	if allReleasedSet(set) && report != nil {
		report(pos, "%s is used after being returned to its pool", key)
	}
	delete(st, key)
}

// sanctionIdents marks the identifiers of a release operand so the generic
// use check does not flag the release itself.
func sanctionIdents(e ast.Expr, sanctioned map[token.Pos]bool) {
	ast.Inspect(e, func(x ast.Node) bool {
		if id, isID := x.(*ast.Ident); isID {
			sanctioned[id.Pos()] = true
		}
		return true
	})
}

// dropMentionedKeys deletes every tracked key that appears anywhere in n.
func dropMentionedKeys(n ast.Node, st poolState) {
	for key := range st {
		if mentionsName(n, key) {
			delete(st, key)
		}
	}
}

// mentionsName reports whether any identifier in n is spelled name.
func mentionsName(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, isID := x.(*ast.Ident); isID && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// ---- nil-before-Put -------------------------------------------------------

// checkNilBeforePut verifies that a struct handed back to a sync.Pool has
// its pointer-bearing fields cleared first: a direct reference field must be
// nil'ed, and a slice of references must be clear()'ed (capacity reuse is
// the point of pooling, so truncation alone is fine for primitive slices
// but reference elements must be zeroed). The check is syntactic and
// per-function: clears through a single-level alias (`parts := x.parts;
// parts[i] = nil`), element stores, clear() calls, and a full `*x = T{}`
// reset all count. Findings carry a mechanical fix inserting the missing
// clear statements before the Put.
func checkNilBeforePut(p *Pass, fd *ast.FuncDecl) {
	type putSite struct {
		call    *ast.CallExpr
		poolKey string
		arg     string
		typ     *types.Struct
	}
	var puts []putSite
	nilAssigns := make(map[string]bool) // "x.f" = nil or clear(x.f)
	elemClears := make(map[string]bool) // x.f[i] = nil
	fullReset := make(map[string]bool)  // *x = T{...}
	alias := make(map[string]string)    // local := x.f

	recordClear := func(m map[string]bool, key string) {
		m[key] = true
		// Resolve one alias level: clearing `parts` clears `x.parts`.
		if dot := strings.IndexByte(key, '.'); dot < 0 {
			if target, isAlias := alias[key]; isAlias {
				m[target] = true
			}
		} else {
			root := key[:dot]
			if target, isAlias := alias[root]; isAlias {
				m[target+key[dot:]] = true
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
				for i, l := range x.Lhs {
					id, isID := l.(*ast.Ident)
					if !isID {
						continue
					}
					if key := exprKey(x.Rhs[i]); key != "" && strings.Contains(key, ".") {
						alias[id.Name] = key
					}
				}
				return true
			}
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, l := range x.Lhs {
				r := ast.Unparen(x.Rhs[i])
				isNilRHS := false
				if id, isID := r.(*ast.Ident); isID && id.Name == "nil" {
					isNilRHS = true
				}
				switch lhs := ast.Unparen(l).(type) {
				case *ast.IndexExpr:
					if isNilRHS {
						if key := exprKey(lhs.X); key != "" {
							recordClear(elemClears, key)
						}
					}
				case *ast.StarExpr:
					if _, isLit := r.(*ast.CompositeLit); isLit {
						if id, isID := ast.Unparen(lhs.X).(*ast.Ident); isID {
							fullReset[id.Name] = true
						}
					}
				default:
					if isNilRHS {
						if key := exprKey(l); key != "" {
							recordClear(nilAssigns, key)
						}
					}
				}
			}
		case *ast.CallExpr:
			if id, isID := ast.Unparen(x.Fun).(*ast.Ident); isID && id.Name == "clear" && len(x.Args) == 1 {
				if key := exprKey(x.Args[0]); key != "" {
					recordClear(nilAssigns, key)
				}
				return true
			}
			_, name, isPool := poolCallOf(p.Info, x)
			if !isPool || name != "Put" || len(x.Args) != 1 {
				return true
			}
			root := rootOfValue(x.Args[0])
			if root == "" {
				return true
			}
			st := localStructType(p, x.Args[0])
			if st == nil {
				return true
			}
			poolKey := ""
			if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel {
				poolKey = exprKey(sel.X)
			}
			puts = append(puts, putSite{call: x, poolKey: poolKey, arg: root, typ: st})
		}
		return true
	})

	for _, put := range puts {
		if fullReset[put.arg] {
			continue
		}
		var missing []string
		var fixes []string
		for i := 0; i < put.typ.NumFields(); i++ {
			f := put.typ.Field(i)
			key := put.arg + "." + f.Name()
			cleared := nilAssigns[key] || elemClears[key]
			switch clearKindOf(f.Type()) {
			case clearNil:
				if !cleared {
					missing = append(missing, f.Name())
					fixes = append(fixes, key+" = nil\n")
				}
			case clearElems:
				if !cleared {
					missing = append(missing, f.Name())
					fixes = append(fixes, "clear("+key+")\n")
				}
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		anchor := insertionStmt(fd.Body, put.call.Pos())
		msg := "%s is returned to pool %s with pointer-bearing field(s) %s still set; the pool pins their data live — clear them before Put"
		if _, isDefer := anchor.(*ast.DeferStmt); isDefer || anchor == nil {
			// Clearing before a deferred Put would run too early; report
			// without a mechanical fix.
			p.Reportf(put.call.Pos(), msg, put.arg, put.poolKey, strings.Join(missing, ", "))
			continue
		}
		p.ReportFixf(put.call.Pos(), SuggestedFix{
			Message: fmt.Sprintf("clear %s before Put", strings.Join(missing, ", ")),
			Edits:   []FixEdit{p.EditRange(anchor.Pos(), anchor.Pos(), strings.Join(fixes, ""))},
		}, msg, put.arg, put.poolKey, strings.Join(missing, ", "))
	}
}

type clearKind int

const (
	clearNone  clearKind = iota
	clearNil             // direct reference field: f = nil
	clearElems           // slice of references: clear(f) zeroes elements, keeps capacity
)

// clearKindOf classifies a pooled struct field by what Put-hygiene it
// needs. Primitive fields and primitive-element slices/maps need nothing —
// retaining their backing storage is the point of pooling.
func clearKindOf(t types.Type) clearKind {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return clearNil
	case *types.Map:
		if refBearing(u.Key()) || refBearing(u.Elem()) {
			return clearNil
		}
	case *types.Slice:
		if refBearing(u.Elem()) {
			return clearElems
		}
	}
	return clearNone
}

// refBearing reports whether values of t keep heap objects reachable
// (beyond their own storage): pointers, interfaces, slices, maps, chans,
// funcs, strings, and aggregates containing them.
func refBearing(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.String
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refBearing(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return refBearing(u.Elem())
	}
	return false
}

// localStructType resolves e to the struct a pointer argument points at,
// provided the struct is named in the pass's own package (so field
// semantics are this package's business).
func localStructType(p *Pass, e ast.Expr) *types.Struct {
	t := p.TypeOf(e)
	if t == nil {
		return nil
	}
	ptr, isPtr := t.Underlying().(*types.Pointer)
	if !isPtr {
		return nil
	}
	named, isNamed := types.Unalias(ptr.Elem()).(*types.Named)
	if !isNamed || named.Obj().Pkg() != p.Pkg {
		return nil
	}
	st, isStruct := named.Underlying().(*types.Struct)
	if !isStruct {
		return nil
	}
	return st
}

// insertionStmt finds the deepest non-block statement containing pos — the
// anchor a fix inserts new statements before.
func insertionStmt(body *ast.BlockStmt, pos token.Pos) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		s, isStmt := n.(ast.Stmt)
		if !isStmt || s.Pos() > pos || pos >= s.End() {
			return n == body || !isStmt
		}
		if _, isBlock := s.(*ast.BlockStmt); !isBlock {
			found = s
		}
		return true
	})
	return found
}

// ---- cap-clip on pooled returns ------------------------------------------

// checkCapClip flags the shape where a function builds its result in the
// caller's (pooled) scratch — `out := s[:0]` over a slice parameter plus
// appends — and returns it without clipping capacity. The caller of such a
// provider can then append to the result and silently clobber the retained
// scratch. The fix rewrites the return to out[:len(out):len(out)], forcing
// those appends to reallocate.
func checkCapClip(p *Pass, fd *ast.FuncDecl) {
	params := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, isSlice := derefType(p.TypeOf(field.Type)).Underlying().(*types.Slice); !isSlice {
				continue
			}
			for _, n := range field.Names {
				params[n.Name] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}
	aliases := make(map[string]string) // out -> parameter it aliases
	appended := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, isID := l.(*ast.Ident)
			if !isID {
				continue
			}
			r := ast.Unparen(as.Rhs[i])
			if as.Tok == token.DEFINE {
				if se, isSlice := r.(*ast.SliceExpr); isSlice && !se.Slice3 && isZeroHigh(se) {
					if base, baseID := ast.Unparen(se.X).(*ast.Ident); baseID && params[base.Name] {
						aliases[id.Name] = base.Name
					}
				}
				continue
			}
			if call, isCall := r.(*ast.CallExpr); isCall {
				if fun, funID := ast.Unparen(call.Fun).(*ast.Ident); funID && fun.Name == "append" && len(call.Args) > 0 {
					if first, firstID := ast.Unparen(call.Args[0]).(*ast.Ident); firstID && first.Name == id.Name {
						appended[id.Name] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		for _, res := range ret.Results {
			id, isID := ast.Unparen(res).(*ast.Ident)
			if !isID {
				continue
			}
			param, isAlias := aliases[id.Name]
			if !isAlias || !appended[id.Name] {
				continue
			}
			clip := fmt.Sprintf("%s[:len(%s):len(%s)]", id.Name, id.Name, id.Name)
			p.ReportFixf(res.Pos(), SuggestedFix{
				Message: "clip the returned slice's capacity",
				Edits:   []FixEdit{p.EditRange(res.Pos(), res.End(), clip)},
			}, "%s aliases pooled scratch %s and is returned with spare capacity; return %s so caller appends reallocate instead of clobbering the scratch", id.Name, param, clip)
		}
		return true
	})
}

// isZeroHigh reports whether a slice expression truncates to length zero:
// s[:0] or s[0:0].
func isZeroHigh(se *ast.SliceExpr) bool {
	lit, isLit := ast.Unparen(se.High).(*ast.BasicLit)
	return isLit && lit.Kind == token.INT && lit.Value == "0"
}
