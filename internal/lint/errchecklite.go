package lint

import (
	"go/ast"
	"go/types"
)

// errCheckPackages are the serialization boundaries where a silently
// dropped write error turns into a truncated HTTP response or a corrupt
// workload file.
var errCheckPackages = map[string]bool{
	"pdr/internal/service":     true,
	"pdr/internal/wire":        true,
	"pdr/internal/experiments": true,
}

// errCheckMethods are the writer-shaped methods whose error result must
// not be dropped (when the callee's last result is an error).
var errCheckMethods = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true,
	"WriteByte": true, "WriteRune": true, "Flush": true,
	"WriteAll": true, // encoding/csv
}

// AnalyzerErrCheckLite flags expression statements that drop the error
// from encoder/writer calls in the serialization packages. Assigning to
// blank (`_ = w.Write(b)`) is an explicit acknowledgment and is allowed.
var AnalyzerErrCheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "flags dropped errors from Encode/Write/Fprint calls in service, wire and experiments",
	Run:  runErrCheckLite,
}

func runErrCheckLite(p *Pass) {
	if !errCheckPackages[p.Path] {
		return
	}
	p.Inspect(func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok || !returnsError(p, call) {
			return true
		}
		name, qualified := calleeName(p, call)
		if !errCheckMethods[name] && !fprintFuncs[qualified] {
			return true
		}
		what := name
		if qualified != "" {
			what = qualified
		}
		p.Reportf(call.Pos(), "dropped error from %s; handle it or acknowledge with `_ =`", what)
		return true
	})
}

var fprintFuncs = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// returnsError reports whether the call's only or last result is error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	switch t := t.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return t != nil && isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// calleeName returns the bare selector/function name and, when the callee
// is a package-level function of an imported package, its "pkg.Func" form.
func calleeName(p *Pass, call *ast.CallExpr) (name, qualified string) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if pn := p.PkgNameOf(fun.X); pn != nil {
			qualified = pn.Imported().Name() + "." + name
		}
	case *ast.Ident:
		name = fun.Name
	}
	return name, qualified
}
