package lint

import (
	"go/ast"
)

// AnalyzerHotClock reports clock reads inside loops of hot-reachable
// functions: time.Now (and the rest of the wallclock family) and
// stopwatch.Start cost a vDSO call per element when read per iteration —
// meter once per call, not once per element. This complements the
// wallclock analyzer: wallclock bans machine time outright in
// simulation-time packages; hotclock polices the *rate* of clock reads in
// packages where the clock is allowed but the loop is hot.
var AnalyzerHotClock = &Analyzer{
	Name:          "hotclock",
	Doc:           "reports per-element clock reads (time.Now, stopwatch.Start) inside hot-path loops",
	Run:           runHotClock,
	UsesCallGraph: true,
}

func runHotClock(p *Pass) {
	forEachHotFunc(p, func(fd *ast.FuncDecl) {
		hotWalk(fd.Body, func(n ast.Node, loops []ast.Stmt, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || len(loops) == 0 {
				return true
			}
			pn := p.PkgNameOf(sel.X)
			if pn == nil {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "time.%s inside a hot loop reads the clock per element; read it once outside the loop", sel.Sel.Name)
				}
			case "pdr/internal/stopwatch":
				if sel.Sel.Name == "Start" {
					p.Reportf(sel.Pos(), "stopwatch.Start inside a hot loop meters per element; start one stopwatch around the loop")
				}
			}
			return true
		})
	})
}
