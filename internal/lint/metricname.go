package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// metricRegistrars are the Registry methods whose first argument is a metric
// name destined for the /metrics exposition.
var metricRegistrars = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

// metricNameRE mirrors the runtime check in internal/telemetry: snake_case
// words under the project-wide "pdr" prefix. Enforcing it statically turns a
// first-scrape panic into a pdrvet finding.
var metricNameRE = regexp.MustCompile(`^pdr(_[a-z0-9]+)+$`)

// AnalyzerMetricName requires metric names passed to telemetry.Registry
// registration methods to be snake_case with the "pdr_" prefix. One shared
// prefix keeps every dashboard query anchored to the project namespace, and
// catching violations at vet time beats the registry's runtime panic.
var AnalyzerMetricName = &Analyzer{
	Name: "metricname",
	Doc:  "requires telemetry metric names to match ^pdr(_[a-z0-9]+)+$",
	Run:  runMetricName,
}

func runMetricName(p *Pass) {
	p.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !metricRegistrars[sel.Sel.Name] {
			return true
		}
		recv := p.TypeOf(sel.X)
		if recv == nil || !isTelemetryRegistry(recv) {
			return true
		}
		tv, ok := p.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			// A non-constant name cannot be vetted here; the registry's own
			// validation still guards it at runtime.
			return true
		}
		name := constant.StringVal(tv.Value)
		if !metricNameRE.MatchString(name) {
			p.Reportf(call.Args[0].Pos(), "metric name %q must be snake_case with the pdr_ prefix (want ^pdr(_[a-z0-9]+)+$)", name)
		}
		return true
	})
}

// isTelemetryRegistry reports whether t is telemetry.Registry or a pointer
// to it.
func isTelemetryRegistry(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == "pdr/internal/telemetry"
}
