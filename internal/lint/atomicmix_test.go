package lint

import "testing"

func TestAtomicMix(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		// The core mix: one site updates atomically, another reads plainly
		// with no lock anywhere — nothing can make the plain read safe.
		{"plain read of atomically-updated field flagged", `package x
import "sync/atomic"
type stats struct {
	hits int64
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func (s *stats) Get() int64 { return s.hits }
`, 1},
		{"all-atomic access clean", `package x
import "sync/atomic"
type stats struct {
	hits int64
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func (s *stats) Get() int64 { return atomic.LoadInt64(&s.hits) }
`, 0},
		// Mixed mode is tolerated under the owner's lock (write lock for
		// writes): the telemetry snapshot idiom.
		{"plain read under lock clean", `package x
import (
	"sync"
	"sync/atomic"
)
type stats struct {
	mu   sync.Mutex
	hits int64
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func (s *stats) Get() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}
`, 0},
		{"plain write under RLock flagged", `package x
import (
	"sync"
	"sync/atomic"
)
type stats struct {
	mu   sync.RWMutex
	hits int64
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func (s *stats) Reset() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hits = 0
}
`, 1},
		{"plain write under write lock clean", `package x
import (
	"sync"
	"sync/atomic"
)
type stats struct {
	mu   sync.RWMutex
	hits int64
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func (s *stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits = 0
}
`, 0},
		// The typed-atomic family: methods are the only safe access.
		{"typed atomic via methods clean", `package x
import "sync/atomic"
type stats struct {
	hits atomic.Int64
}
func (s *stats) Hit() { s.hits.Add(1) }
func (s *stats) Get() int64 { return s.hits.Load() }
`, 0},
		{"typed atomic copied plainly flagged", `package x
import "sync/atomic"
type stats struct {
	hits atomic.Int64
}
func (s *stats) Get() atomic.Int64 { return s.hits }
`, 1},
		{"typed atomic address for method use clean", `package x
import "sync/atomic"
type stats struct {
	hits atomic.Int64
}
func bump(c *atomic.Int64) { c.Add(1) }
func (s *stats) Hit() { bump(&s.hits) }
`, 0},
		// Constructors own the value until it escapes.
		{"owned constructor clean", `package x
import "sync/atomic"
type stats struct {
	hits int64
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func New(seed int64) *stats {
	s := &stats{}
	s.hits = seed
	return s
}
`, 0},
		{"untracked field untouched", `package x
import "sync/atomic"
type stats struct {
	hits int64
	name string
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func (s *stats) Name() string { return s.name }
`, 0},
		{"ignore suppresses", `package x
import "sync/atomic"
type stats struct {
	hits int64
}
func (s *stats) Hit() { atomic.AddInt64(&s.hits, 1) }
func (s *stats) Get() int64 {
	return s.hits // lint:ignore atomicmix test fixture
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerAtomicMix), "atomicmix", tc.want)
		})
	}
}
