package lint

import (
	"encoding/json"
	"io"
)

// JSONDiagnostic is the machine-readable shape of one finding, emitted by
// pdrvet -json as one object per line (JSON Lines): stable field names for
// CI annotators, independent of the human format's punctuation.
type JSONDiagnostic struct {
	Pkg      string `json:"pkg,omitempty"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Fixes carries the machine-applicable suggested fixes, byte-offset
	// edits included, so CI tooling can apply or display them without
	// re-running the analyzers.
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

// toJSON converts a Diagnostic to its wire shape.
func toJSON(d Diagnostic) JSONDiagnostic {
	return JSONDiagnostic{
		Pkg:      d.Pkg,
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
		Fixes:    d.Fixes,
	}
}

// WriteJSON emits diags as JSON Lines: one object per diagnostic, each on
// its own line, in the input order (Run already sorted by position).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(toJSON(d)); err != nil {
			return err
		}
	}
	return nil
}

// JSONTiming is the machine-readable shape of one analyzer's wall time,
// appended to the -json stream by pdrvet -timing. The analyzer field keeps
// diagnostic lines and timing lines distinguishable: timing lines have
// timingMicros and no file.
type JSONTiming struct {
	Analyzer     string `json:"analyzer"`
	TimingMicros int64  `json:"timingMicros"`
}

// WriteJSONTimings emits one JSONTiming line per analyzer in the input
// (registration) order.
func WriteJSONTimings(w io.Writer, timings []AnalyzerTiming) error {
	enc := json.NewEncoder(w)
	for _, t := range timings {
		if err := enc.Encode(JSONTiming{Analyzer: t.Name, TimingMicros: t.Duration.Microseconds()}); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSON parses JSON Lines produced by WriteJSON back into wire
// diagnostics — the round-trip contract -json consumers rely on.
func ReadJSON(r io.Reader) ([]JSONDiagnostic, error) {
	dec := json.NewDecoder(r)
	var out []JSONDiagnostic
	for dec.More() {
		var d JSONDiagnostic
		if err := dec.Decode(&d); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
