package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdr/internal/lint/cfg"
)

// AnalyzerNoLeak requires every goroutine launched in production code to be
// joined — the worker-pool, singleflight, and service layers must never
// orphan a goroutine, because a leaked worker holds its pool slot (and its
// captured engine snapshot) forever.
//
// For each `go func(){...}()` statement the closure body is classified:
//
//   - WaitGroup-joined: the body calls wg.Done(). Then Done must be
//     reachable on every CFG path out of the closure (a deferred Done, or
//     an explicit call on each path); wg.Add must NOT be called inside the
//     goroutine (Add racing Wait is the classic countdown bug); and when wg
//     is a local of the spawning function, an Add call must exist outside
//     the goroutine.
//   - channel-joined: the body sends on a channel. The channel must be
//     buffered at its make site or received from by the spawning function
//     outside the goroutine — otherwise an abandoned receiver leaks the
//     sender forever.
//   - receiver goroutines (the body receives, ranges over a channel, closes
//     one, or waits on a WaitGroup) are accepted: their lifetime is bounded
//     by the channel they drain.
//   - anything else is reported: a fire-and-forget goroutine needs an
//     explicit, documented lint:ignore (e.g. a process-lifetime daemon).
//
// `go method()` statements (no literal) are skipped — the body is not
// visible intra-procedurally; the named function is analyzed on its own.
var AnalyzerNoLeak = &Analyzer{
	Name: "noleak",
	Doc:  "flags goroutines that are not joined via WaitGroup.Done on all paths or a drained channel",
	Run:  runNoLeak,
}

func runNoLeak(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			noLeakScanBody(p, fd.Body)
		}
	}
}

// noLeakScanBody checks the go statements spawned directly by body, then
// recurses into nested function literals (each is the spawning function of
// its own go statements).
func noLeakScanBody(p *Pass, body *ast.BlockStmt) {
	var gos []*ast.GoStmt
	var lits []*ast.FuncLit
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			gos = append(gos, x)
			return true // the literal inside is collected below
		case *ast.FuncLit:
			lits = append(lits, x)
			return false
		}
		return true
	})
	for _, g := range gos {
		if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
			checkGoroutine(p, body, g, fl)
		}
	}
	for _, fl := range lits {
		noLeakScanBody(p, fl.Body)
	}
}

func checkGoroutine(p *Pass, enclosing *ast.BlockStmt, g *ast.GoStmt, fl *ast.FuncLit) {
	doneKeys := waitGroupCalls(p, fl.Body, "Done")
	if len(doneKeys) > 0 {
		addsInside := waitGroupCalls(p, fl.Body, "Add")
		for key, pos := range addsInside {
			p.Reportf(pos, "%s.Add called inside the goroutine; Add must happen before the goroutine starts or Wait can return early", key)
		}
		for key, pos := range doneKeys {
			if !doneOnEveryPath(p, fl.Body, key) {
				p.Reportf(pos, "%s.Done() is not reached on every path out of the goroutine; defer it at the top", key)
			}
			if _, misplaced := addsInside[key]; misplaced {
				continue // already reported; the Add exists, just in the wrong place
			}
			if obj := localWaitGroup(p, enclosing, fl.Body, key); obj != nil {
				if !hasAddOutsideGoroutines(p, enclosing, key) {
					p.Reportf(g.Pos(), "goroutine calls %s.Done() but the spawning function never calls %s.Add", key, key)
				}
			}
		}
		return
	}
	sends := channelSends(p, fl.Body)
	if len(sends) > 0 {
		for key, pos := range sends {
			if chanBufferedAtMake(p, enclosing, key) || receivedOutsideGoroutines(p, enclosing, key) {
				continue
			}
			p.Reportf(pos, "goroutine sends on %s but the channel is unbuffered and the spawning function never receives from it; an abandoned receiver leaks this goroutine", key)
		}
		return
	}
	if isReceiverGoroutine(p, fl.Body) {
		return
	}
	p.Reportf(g.Pos(), "goroutine is not joined: no WaitGroup.Done, no channel send, no receive; add a join or lint:ignore noleak with the lifetime rationale")
}

// waitGroupCalls returns {wg key -> first position} of method calls on
// sync.WaitGroup values inside body, excluding nested literals except
// deferred closures (defer func(){ wg.Done() }() is the joining idiom).
func waitGroupCalls(p *Pass, body *ast.BlockStmt, method string) map[string]token.Pos {
	out := make(map[string]token.Pos)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
					walk(fl.Body)
					return false
				}
			case *ast.CallExpr:
				if key, ok := wgMethodCall(p, x, method); ok {
					if _, seen := out[key]; !seen {
						out[key] = x.Pos()
					}
				}
			}
			return true
		})
	}
	walk(body)
	return out
}

// wgMethodCall recognizes wg.<method>() on a sync.WaitGroup receiver with a
// trackable key.
func wgMethodCall(p *Pass, call *ast.CallExpr, method string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	named, ok := types.Unalias(derefType(p.TypeOf(sel.X))).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "WaitGroup" {
		return "", false
	}
	key := exprKey(sel.X)
	return key, key != ""
}

// doneOnEveryPath runs a must-analysis over the closure CFG: true iff
// wg.Done() for key has executed. A deferred Done (direct or inside a
// deferred closure) satisfies every path by construction.
func doneOnEveryPath(p *Pass, body *ast.BlockStmt, key string) bool {
	deferred := false
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		d, ok := x.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if k, ok := wgMethodCall(p, d.Call, "Done"); ok && k == key {
			deferred = true
		}
		if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(y ast.Node) bool {
				if _, ok := y.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := y.(*ast.CallExpr); ok {
					if k, ok := wgMethodCall(p, call, "Done"); ok && k == key {
						deferred = true
					}
				}
				return true
			})
		}
		return false
	})
	if deferred {
		return true
	}
	g := cfg.New(body)
	step := func(n ast.Node, in bool) bool {
		if in {
			return true
		}
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if k, ok := wgMethodCall(p, x, "Done"); ok && k == key {
					found = true
				}
			}
			return !found
		})
		return found
	}
	res := cfg.Run(g, &cfg.Analysis[bool]{
		Entry: false,
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(b *cfg.Block, in bool) bool {
			for _, n := range b.Nodes {
				in = step(n, in)
			}
			return in
		},
	})
	done, ok := res.ExitFacts()
	// A closure that never reaches normal exit (infinite loop) cannot be
	// said to call Done on every path.
	return ok && done
}

// localWaitGroup returns the object behind key's root identifier when it is
// declared inside the enclosing body (a function-local WaitGroup, whose Add
// discipline is fully visible) and outside the goroutine body; nil for
// fields, parameters, and captured outer variables.
func localWaitGroup(p *Pass, enclosing, goroutine *ast.BlockStmt, key string) types.Object {
	root := key
	for i := 0; i < len(root); i++ {
		if root[i] == '.' || root[i] == '[' {
			root = root[:i]
			break
		}
	}
	var obj types.Object
	ast.Inspect(enclosing, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || id.Name != root {
			return true
		}
		if o := p.Info.Defs[id]; o != nil {
			obj = o
		}
		return true
	})
	if obj == nil {
		return nil
	}
	if obj.Pos() < enclosing.Pos() || obj.Pos() > enclosing.End() {
		return nil
	}
	if obj.Pos() >= goroutine.Pos() && obj.Pos() <= goroutine.End() {
		return nil
	}
	return obj
}

// hasAddOutsideGoroutines reports whether the enclosing body calls key.Add
// outside any go statement's literal.
func hasAddOutsideGoroutines(p *Pass, enclosing *ast.BlockStmt, key string) bool {
	found := false
	ast.Inspect(enclosing, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			if _, ok := x.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
		case *ast.CallExpr:
			if k, ok := wgMethodCall(p, x, "Add"); ok && k == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// channelSends returns {channel key -> first position} of send statements
// inside body (excluding nested literals).
func channelSends(p *Pass, body *ast.BlockStmt) map[string]token.Pos {
	out := make(map[string]token.Pos)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if key := exprKey(x.Chan); key != "" {
				if _, seen := out[key]; !seen {
					out[key] = x.Pos()
				}
			}
		}
		return true
	})
	return out
}

// chanBufferedAtMake reports whether key's make site in the enclosing body
// has a capacity argument (make(chan T, n)).
func chanBufferedAtMake(p *Pass, enclosing *ast.BlockStmt, key string) bool {
	buffered := false
	ast.Inspect(enclosing, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			if exprKey(l) != key || i >= len(as.Rhs) {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 2 {
				buffered = true
			}
		}
		return true
	})
	return buffered
}

// receivedOutsideGoroutines reports whether the enclosing body receives
// from (or ranges over) key outside any goroutine literal.
func receivedOutsideGoroutines(p *Pass, enclosing *ast.BlockStmt, key string) bool {
	found := false
	ast.Inspect(enclosing, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			if _, ok := x.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && exprKey(x.X) == key {
				found = true
			}
		case *ast.RangeStmt:
			if exprKey(x.X) == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// isReceiverGoroutine reports whether the closure body's role is to drain:
// it receives from or ranges over a channel, closes one, or waits on a
// WaitGroup — its lifetime is bounded by its input.
func isReceiverGoroutine(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(x.X); t != nil {
				if _, ok := types.Unalias(t.Underlying()).(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
			if _, ok := wgMethodCall(p, x, "Wait"); ok {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}
