package lint

import "testing"

// TestLockedV2 pins the flow-aware behaviors that v1's positional check
// could not express: the RLock-write rule, path sensitivity across
// branches, manual unlock, and the owned-constructor exemption.
func TestLockedV2(t *testing.T) {
	const rwDecl = `package x
import "sync"
type S struct {
	mu sync.RWMutex
	n  int // guarded by mu
}
`
	cases := []struct {
		name string
		src  string
		want int
	}{
		// The race class this PR exists for: writing guarded state while
		// holding only the read lock. v1 accepted this (RLock is "a lock");
		// v2 must flag it. internal/lint/raceproof_test.go proves the same
		// shape races under -race.
		{"write under RLock flagged", rwDecl + `
func (s *S) Bump() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.n++
}
`, 1},
		{"write under Lock allowed", rwDecl + `
func (s *S) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}
`, 0},
		{"read under RLock still allowed", rwDecl + `
func (s *S) Get() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}
`, 0},
		// Path sensitivity: locking on only one branch does not protect an
		// access after the merge. v1's "any Lock textually earlier" check
		// accepted exactly this shape.
		{"lock on one branch only flagged", rwDecl + `
func (s *S) Flaky(cond bool) int {
	if cond {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.n
}
`, 1},
		{"lock on both branches allowed", rwDecl + `
func (s *S) Both(cond bool) int {
	if cond {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	return s.n
}
`, 0},
		// A manual unlock ends the protected region: v1 only looked for the
		// position of the Lock call.
		{"access after manual unlock flagged", rwDecl + `
func (s *S) Torn() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n + s.n
}
`, 1},
		// The early-return shape every cache path uses: lock, hit-path
		// returns after unlock, miss-path continues under the lock.
		{"early return with per-path unlock allowed", rwDecl + `
func (s *S) Hit(cond bool) int {
	s.mu.Lock()
	if cond {
		n := s.n
		s.mu.Unlock()
		return n
	}
	s.n++
	s.mu.Unlock()
	return 0
}
`, 0},
		// Constructors own the value they build until it escapes; requiring
		// a lock there would outlaw `s := &S{}; s.n = 1; return s`.
		{"owned constructor exempt", rwDecl + `
func New() *S {
	s := &S{}
	s.n = 1
	return s
}
`, 0},
		// A closure spawned with the write lock held inherits it; the same
		// closure with only RLock held must not write.
		{"closure write under inherited RLock flagged", rwDecl + `
func (s *S) Fan() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	done := make(chan struct{})
	go func() {
		s.n++
		close(done)
	}()
	<-done
}
`, 1},
		// Writing through a local alias of a guarded struct requires the
		// alias's own mu key — the sharded-cache idiom, now in scope.
		{"local shard write under its lock allowed", `package x
import "sync"
type shard struct {
	mu      sync.Mutex
	entries map[int]int // guarded by mu
}
type sharded struct {
	shards [4]*shard
}
func (c *sharded) put(k, v int) {
	sh := c.shards[k%4]
	sh.mu.Lock()
	sh.entries[k] = v
	sh.mu.Unlock()
}
`, 0},
		{"local shard write without lock flagged", `package x
import "sync"
type shard struct {
	mu      sync.Mutex
	entries map[int]int // guarded by mu
}
type sharded struct {
	shards [4]*shard
}
func (c *sharded) put(k, v int) {
	sh := c.shards[k%4]
	sh.entries[k] = v
}
`, 1},
		// delete() mutates its map argument.
		{"delete under RLock flagged", `package x
import "sync"
type S struct {
	mu sync.RWMutex
	m  map[int]int // guarded by mu
}
func (s *S) Evict(k int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	delete(s.m, k)
}
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerLocked), "locked", tc.want)
		})
	}
}
