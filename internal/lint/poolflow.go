package lint

// Shared sync.Pool machinery for the pooled-lifetime analyzer (poollife):
// recognizing Get/Put operations, and the module-wide interprocedural
// summaries that say which functions release a pooled argument back to a
// pool ("releasers" — releaseIntervalScratch, FilterResult.Release) and
// which functions hand a pool-obtained value to their caller ("providers" —
// Histogram.Filter, FilterMerged). The summaries are computed once per Run
// over every loaded package (Analyzer.Prepare), so obligations follow
// values across package boundaries: core acquiring from a dh provider is
// released by calling a dh method.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isSyncPool reports whether t (after one deref) is sync.Pool.
func isSyncPool(t types.Type) bool {
	named, ok := types.Unalias(derefType(t)).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// poolCallOf recognizes call as pool.Get() or pool.Put(x) on a trackable
// sync.Pool expression, returning the pool's key and the method name.
func poolCallOf(info *types.Info, call *ast.CallExpr) (poolKey, name string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Get", "Put":
	default:
		return "", "", false
	}
	if !isSyncPool(info.TypeOf(sel.X)) {
		return "", "", false
	}
	key := exprKey(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, sel.Sel.Name, true
}

// poolGetExpr unwraps e to a pool.Get() call, looking through a type
// assertion (`pool.Get().(*T)` is the acquisition idiom), and returns the
// pool's key.
func poolGetExpr(info *types.Info, e ast.Expr) (poolKey string, ok bool) {
	if ta, isTA := e.(*ast.TypeAssertExpr); isTA {
		e = ta.X
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	key, name, isPool := poolCallOf(info, call)
	if !isPool || name != "Get" {
		return "", false
	}
	return key, true
}

// staticCallee resolves a call to the *types.Func it invokes: package-level
// functions, methods on concrete receivers, and interface methods (the
// caller distinguishes the latter via types.Func.Type().(*types.Signature)
// receivers or isInterfaceRecv). Calls through func-typed values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface type, so
// its concrete body (and pool behavior) is unknowable statically.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// poolSummary is the module-wide interprocedural pool knowledge.
type poolSummary struct {
	// releasers maps a function to the parameter indices it (transitively)
	// returns to a sync.Pool; index -1 is the method receiver.
	releasers map[*types.Func]map[int]bool
	// providers maps a function to the result indices that carry a
	// pool-obtained value the caller becomes responsible for.
	providers map[*types.Func]map[int]bool
}

func (s *poolSummary) releases(fn *types.Func, idx int) bool {
	return fn != nil && s.releasers[fn][idx]
}

// summaryDecl is one function body with the package context to resolve it.
type summaryDecl struct {
	fd   *ast.FuncDecl
	obj  *types.Func
	info *types.Info
}

// buildPoolSummary computes releaser and provider sets to a fixed point
// over every loaded package: a releaser may delegate to another releaser
// (Release -> pool.Put), a provider may return another provider's result
// (Filter -> filterCounts -> pool.Get).
func buildPoolSummary(pkgs []*Package) *poolSummary {
	sum := &poolSummary{
		releasers: make(map[*types.Func]map[int]bool),
		providers: make(map[*types.Func]map[int]bool),
	}
	var decls []summaryDecl
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				decls = append(decls, summaryDecl{fd: fd, obj: obj, info: pkg.Info})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if summarizeReleaser(d, sum) {
				changed = true
			}
			if summarizeProvider(d, sum) {
				changed = true
			}
		}
	}
	return sum
}

// paramIndices maps parameter (and receiver) names to their index in the
// releaser convention: receiver -1, parameters 0..n-1 in declaration order.
func paramIndices(fd *ast.FuncDecl) map[string]int {
	idx := make(map[string]int)
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		for _, n := range fd.Recv.List[0].Names {
			idx[n.Name] = -1
		}
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, n := range field.Names {
				idx[n.Name] = i
				i++
			}
		}
	}
	return idx
}

// summarizeReleaser scans one body for "parameter handed back to a pool"
// shapes: pool.Put(p), a call to a known releaser with p at a releasing
// position, or a releaser method invoked on p. Reports whether the summary
// grew. Closure bodies are included: a deferred closure that Puts a
// parameter still releases it on the function's behalf.
func summarizeReleaser(d summaryDecl, sum *poolSummary) bool {
	params := paramIndices(d.fd)
	if len(params) == 0 {
		return false
	}
	grew := false
	record := func(idx int) {
		set := sum.releasers[d.obj]
		if set == nil {
			set = make(map[int]bool)
			sum.releasers[d.obj] = set
		}
		if !set[idx] {
			set[idx] = true
			grew = true
		}
	}
	ast.Inspect(d.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name, isPool := poolCallOf(d.info, call); isPool && name == "Put" && len(call.Args) == 1 {
			if idx, isParam := params[rootOfValue(call.Args[0])]; isParam {
				record(idx)
			}
			return true
		}
		callee := staticCallee(d.info, call)
		if callee == nil || callee == d.obj {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sum.releases(callee, -1) {
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
				if idx, isParam := params[id.Name]; isParam {
					record(idx)
				}
			}
		}
		for ai, arg := range call.Args {
			id, isID := ast.Unparen(arg).(*ast.Ident)
			if !isID {
				continue
			}
			idx, isParam := params[id.Name]
			if !isParam {
				continue
			}
			if sum.releases(callee, calleeParamIndex(callee, ai)) {
				record(idx)
			}
		}
		return true
	})
	return grew
}

// calleeParamIndex clamps an argument position to the callee's parameter
// count, so variadic tails map onto the variadic parameter.
func calleeParamIndex(fn *types.Func, arg int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return arg
	}
	if n := sig.Params().Len(); arg >= n && n > 0 {
		return n - 1
	}
	return arg
}

// rootOfValue unwraps &x and (x) to the bare identifier name, or "".
func rootOfValue(e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// summarizeProvider scans one body for "pool-obtained value returned to the
// caller" shapes and records the pooled result indices. Locals are tracked
// flow-insensitively: x := pool.Get().(*T) or x, err := provider(...)
// makes x pooled; returning x (or a provider call directly) makes this
// function a provider at that result position.
func summarizeProvider(d summaryDecl, sum *poolSummary) bool {
	pooled := pooledLocals(d.info, d.fd.Body, sum)
	grew := false
	record := func(idx int) {
		set := sum.providers[d.obj]
		if set == nil {
			set = make(map[int]bool)
			sum.providers[d.obj] = set
		}
		if !set[idx] {
			set[idx] = true
			grew = true
		}
	}
	ast.Inspect(d.fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			if call, isCall := ast.Unparen(res).(*ast.CallExpr); isCall {
				// Pass-through: return provider(...) forwards the callee's
				// pooled result indices. A lone call may expand to several
				// results; alongside siblings it is single-valued and
				// forwards the callee's first result.
				if callee := staticCallee(d.info, call); callee != nil {
					if len(ret.Results) == 1 {
						for idx := range sum.providers[callee] {
							record(idx)
						}
					} else if sum.providers[callee][0] {
						record(i)
					}
				}
				continue
			}
			if _, isGet := poolGetExpr(d.info, ast.Unparen(res)); isGet {
				record(i)
				continue
			}
			if id, isID := ast.Unparen(res).(*ast.Ident); isID && pooled[id.Name] {
				record(i)
			}
		}
		return true
	})
	return grew
}

// pooledLocals collects, flow-insensitively, the local identifiers bound to
// a pool.Get result or a provider call's pooled result.
func pooledLocals(info *types.Info, body *ast.BlockStmt, sum *poolSummary) map[string]bool {
	pooled := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, acq := range poolAcquisitions(info, as, sum) {
			pooled[acq.key] = true
		}
		return true
	})
	return pooled
}

// poolAcquisition is one "local becomes responsible for a pooled value"
// event inside an assignment.
type poolAcquisition struct {
	key string // the acquiring identifier
	src string // what produced the value: "scratches.Get" or "Filter"
	// errKey names the error identifier assigned alongside a provider's
	// pooled result ("" when none): on the errKey != nil branch the pooled
	// value is invalid (nil) and carries no obligation.
	errKey string
	viaGet bool
}

// poolAcquisitions classifies an assignment's pool acquisitions: direct
// x := pool.Get().(*T) (per RHS position) and x, err := provider(...)
// (multi-value call).
func poolAcquisitions(info *types.Info, as *ast.AssignStmt, sum *poolSummary) []poolAcquisition {
	var out []poolAcquisition
	if len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			callee := staticCallee(info, call)
			if callee != nil && len(sum.providers[callee]) > 0 {
				errKey := ""
				for i, l := range as.Lhs {
					if sum.providers[callee][i] {
						continue
					}
					if id, isID := l.(*ast.Ident); isID && id.Name != "_" && isErrorType(info.TypeOf(l)) {
						errKey = id.Name
					}
				}
				for i, l := range as.Lhs {
					if !sum.providers[callee][i] {
						continue
					}
					id, isID := l.(*ast.Ident)
					if !isID || id.Name == "_" {
						continue
					}
					out = append(out, poolAcquisition{key: id.Name, src: callee.Name(), errKey: errKey})
				}
				return out
			}
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, r := range as.Rhs {
			poolKey, isGet := poolGetExpr(info, ast.Unparen(r))
			if !isGet {
				continue
			}
			id, isID := as.Lhs[i].(*ast.Ident)
			if !isID || id.Name == "_" {
				continue
			}
			out = append(out, poolAcquisition{key: id.Name, src: poolKey + ".Get", viaGet: true})
		}
	}
	return out
}
