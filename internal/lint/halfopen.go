package lint

import (
	"go/ast"
	"go/types"
)

const geomPath = "pdr/internal/geom"

// AnalyzerHalfOpen flags composite-literal construction of geom.Rect
// outside package geom. Every Rect is the half-open product
// [MinX, MaxX) x [MinY, MaxY); raw literals scattered across packages are
// how min/max swaps and closed-boundary assumptions creep in. Build
// rectangles with geom.NewRect, geom.RectFromCorners or
// geom.RectFromCenter, which carry the convention in one audited place.
var AnalyzerHalfOpen = &Analyzer{
	Name: "halfopen",
	Doc:  "flags geom.Rect composite literals outside package geom",
	Run:  runHalfOpen,
}

func runHalfOpen(p *Pass) {
	if p.Path == geomPath {
		return
	}
	p.Inspect(func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := p.TypeOf(cl)
		if t == nil {
			return true
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return true
		}
		obj := named.Obj()
		if obj.Name() == "Rect" && obj.Pkg() != nil && obj.Pkg().Path() == geomPath {
			p.Reportf(cl.Pos(), "geom.Rect literal outside package geom; use geom.NewRect (or RectFromCorners/RectFromCenter) to preserve half-open [min,max) semantics")
		}
		return true
	})
}
