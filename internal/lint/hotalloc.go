package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc reports per-element allocation patterns in functions
// reachable from a pdr:hot root: growing a bare-declared slice with append
// inside a loop (no preallocation), re-allocating a map or slice on every
// iteration, building strings by concatenation in a loop, fmt.Sprintf
// calls that a strconv function replaces, and unconditional per-call makes
// in hot methods whose size derives only from receiver fields. Where the
// element bound is evident (a range loop over a measurable collection),
// the append finding carries an auto-fix that preallocates with
// make([]T, 0, n).
//
// Spread appends (append(x, ys...)) are deliberately not flagged: bulk
// concatenation amortizes growth by doubling and is the idiomatic way to
// merge slices.
var AnalyzerHotAlloc = &Analyzer{
	Name:          "hotalloc",
	Doc:           "reports un-preallocated appends, per-iteration and per-call allocations, string concatenation, and Sprintf-where-strconv-suffices on hot paths",
	Run:           runHotAlloc,
	UsesCallGraph: true,
}

// bareDecl describes a slice variable declared without capacity.
type bareDecl struct {
	// stmt is the declaring statement (DeclStmt for `var x []T`, nil when
	// the form does not support the prealloc fix).
	stmt *ast.DeclStmt
	// typeExpr is the slice type for rendering the fix.
	typeExpr ast.Expr
	// inLoop records whether the declaration itself sits inside a loop
	// (then per-iteration appends to it are expected).
	inLoop bool
}

func runHotAlloc(p *Pass) {
	forEachHotFunc(p, func(fd *ast.FuncDecl) {
		decls := bareSliceDecls(p, fd.Body)
		fixed := make(map[*types.Var]bool)

		hotWalk(fd.Body, func(n ast.Node, loops []ast.Stmt, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(loops) > 0 {
					checkHotAppend(p, n, loops, decls, fixed)
					checkPerIterAlloc(p, n, loops, stack)
					checkStringConcat(p, n)
				} else {
					checkPerCallMake(p, fd, n, stack)
				}
			case *ast.CallExpr:
				checkSprintf(p, n)
			}
			return true
		})
	})
}

// bareSliceDecls indexes the function's slice variables declared with no
// capacity: `var x []T`, `x := []T{}`, `x := make([]T, 0)`.
func bareSliceDecls(p *Pass, body *ast.BlockStmt) map[*types.Var]bareDecl {
	decls := make(map[*types.Var]bareDecl)
	hotWalk(body, func(n ast.Node, loops []ast.Stmt, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR || len(gd.Specs) != 1 {
				return true
			}
			spec, ok := gd.Specs[0].(*ast.ValueSpec)
			if !ok || len(spec.Names) != 1 || len(spec.Values) != 0 {
				return true
			}
			at, ok := spec.Type.(*ast.ArrayType)
			if !ok || at.Len != nil {
				return true
			}
			if v := objOf(p, spec.Names[0]); v != nil {
				decls[v] = bareDecl{stmt: n, typeExpr: spec.Type, inLoop: len(loops) > 0}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if !isBareSliceValue(p, n.Rhs[0]) {
				return true
			}
			if v := objOf(p, id); v != nil {
				decls[v] = bareDecl{inLoop: len(loops) > 0}
			}
		}
		return true
	})
	return decls
}

// isBareSliceValue recognizes `[]T{}` and `make([]T, 0)` — a slice born
// with zero capacity.
func isBareSliceValue(p *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		if len(e.Elts) != 0 {
			return false
		}
		_, ok := types.Unalias(p.TypeOf(e)).(*types.Slice)
		return ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) != 2 {
			return false
		}
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		if _, ok := types.Unalias(p.TypeOf(e)).(*types.Slice); !ok {
			return false
		}
		lit, ok := e.Args[1].(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	return false
}

// checkHotAppend flags `x = append(x, elem)` in a loop when x was declared
// bare outside every loop: the slice regrows element by element on the hot
// path. When the loop bound is evident, the finding carries a prealloc fix.
func checkHotAppend(p *Pass, as *ast.AssignStmt, loops []ast.Stmt, decls map[*types.Var]bareDecl, fixed map[*types.Var]bool) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || call.Ellipsis != token.NoPos || len(call.Args) < 2 {
		return
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return
	}
	if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	v := objOf(p, id)
	if v == nil || objOf(p, arg0) != v {
		return
	}
	d, declared := decls[v]
	if !declared || d.inLoop {
		return
	}
	msg := "append to %s grows an unpreallocated slice inside a hot loop; preallocate with make([]%s, 0, n) or reuse scratch"
	elem := sliceElemString(p, v)
	if fix, ok := preallocFix(p, d, loops); ok && !fixed[v] {
		fixed[v] = true
		p.ReportFixf(as.Pos(), fix, msg, id.Name, elem)
		return
	}
	p.Reportf(as.Pos(), msg, id.Name, elem)
}

// preallocFix builds the `var x []T` -> `x := make([]T, 0, bound)` edit
// when the declaration has the fixable form and the outermost loop's bound
// is evident: a range over a sliceable/measurable expression (len(E)) or
// over an integer (E itself).
func preallocFix(p *Pass, d bareDecl, loops []ast.Stmt) (SuggestedFix, bool) {
	if d.stmt == nil {
		return SuggestedFix{}, false
	}
	rs, ok := loops[0].(*ast.RangeStmt)
	if !ok || rs.Pos() < d.stmt.Pos() {
		return SuggestedFix{}, false
	}
	if exprKey(rs.X) == "" {
		return SuggestedFix{}, false // calls/literals: not safely repeatable
	}
	var bound string
	switch t := types.Unalias(p.TypeOf(rs.X)).Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map, *types.Pointer:
		bound = "len(" + renderNode(p.Fset, rs.X) + ")"
	case *types.Basic:
		if t.Info()&types.IsInteger == 0 {
			return SuggestedFix{}, false
		}
		bound = renderNode(p.Fset, rs.X) // for range n
	default:
		return SuggestedFix{}, false // channels, func iterators: no bound
	}
	spec := d.stmt.Decl.(*ast.GenDecl).Specs[0].(*ast.ValueSpec)
	name := spec.Names[0].Name
	typeText := renderNode(p.Fset, d.typeExpr)
	if typeText == "" || bound == "" {
		return SuggestedFix{}, false
	}
	newText := fmt.Sprintf("%s := make(%s, 0, %s)", name, typeText, bound)
	return SuggestedFix{
		Message: fmt.Sprintf("preallocate: %s", newText),
		Edits:   []FixEdit{p.EditRange(d.stmt.Pos(), d.stmt.End(), newText)},
	}, true
}

// checkPerIterAlloc flags re-assigning a fresh map/slice allocation to a
// pre-existing variable (plain =, so it outlives the iteration) on every
// pass of a hot loop. The unconditional requirement spares amortized
// grow-on-demand patterns (`if cap(buf) < n { buf = make(...) }`).
func checkPerIterAlloc(p *Pass, as *ast.AssignStmt, loops []ast.Stmt, stack []ast.Node) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	if _, ok := as.Lhs[0].(*ast.Ident); !ok {
		return
	}
	kind := allocKind(p, as.Rhs[0])
	if kind == "" {
		return
	}
	if !unconditionalInLoop(stack, loops) {
		return
	}
	p.Reportf(as.Pos(), "%s re-allocated on every iteration of a hot loop; hoist the allocation and clear/reuse it instead", kind)
}

// checkPerCallMake flags an unguarded `make` at the top level of a hot
// method whose size expressions derive only from receiver fields: the size
// is fixed for the life of the receiver, so the buffer is allocated afresh
// on every call where receiver-owned or pooled scratch would be reused.
// Two shapes are deliberately exempt: a length-literal-0 preallocation
// (`make([]T, 0, r.n)`) builds a caller-owned result that cannot be reused,
// and any make guarded by a conditional (`if cap(buf) < n { ... }`) is the
// amortized grow-on-demand idiom this rule recommends.
func checkPerCallMake(p *Pass, fd *ast.FuncDecl, as *ast.AssignStmt, stack []ast.Node) {
	recv := receiverVar(p, fd)
	if recv == nil {
		return
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	if _, ok := as.Lhs[0].(*ast.Ident); !ok {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "make" {
		return
	}
	if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return
	}
	var kind string
	switch types.Unalias(p.TypeOf(call)).Underlying().(type) {
	case *types.Slice:
		kind = "slice"
	case *types.Map:
		kind = "map"
	default:
		return
	}
	// make([]T, 0, cap) preallocates a result the caller will own; exempt.
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
		return
	}
	if !receiverDerived(p, call.Args[1:], recv) {
		return
	}
	if !unconditionalInFunc(stack) {
		return
	}
	p.Reportf(as.Pos(), "%s sized by receiver fields is allocated on every call of a hot function; hoist it into reusable scratch (receiver-owned buffer or sync.Pool)", kind)
}

// receiverDerived reports whether the expressions mention the receiver and
// reference no other variable (fields are fine — they are reached through
// the receiver): their values are fixed by the receiver alone, so they
// cannot change between calls on the same receiver.
func receiverDerived(p *Pass, exprs []ast.Expr, recv *types.Var) bool {
	usesRecv, usesOther := false, false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := p.Info.Uses[id].(*types.Var); ok {
				switch {
				case v == recv:
					usesRecv = true
				case !v.IsField():
					usesOther = true
				}
			}
			return !usesOther
		})
	}
	return usesRecv && !usesOther
}

// unconditionalInFunc reports whether every ancestor on the path from the
// function body to the node is a plain block — the statement runs on every
// call, with no guard or loop between it and function entry.
func unconditionalInFunc(stack []ast.Node) bool {
	for _, a := range stack {
		if _, ok := a.(*ast.BlockStmt); !ok {
			return false
		}
	}
	return true
}

// receiverVar resolves fd's named receiver variable, or nil when fd is a
// plain function or its receiver is unnamed.
func receiverVar(p *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	v, _ := p.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// allocKind recognizes make(map/slice) and map/slice composite literals.
func allocKind(p *Pass, e ast.Expr) string {
	var t types.Type
	switch e := e.(type) {
	case *ast.CompositeLit:
		t = p.TypeOf(e)
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return ""
		}
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return ""
		}
		t = p.TypeOf(e)
	default:
		return ""
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return ""
}

// checkStringConcat flags building strings by concatenation in a loop.
func checkStringConcat(p *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	if t := p.TypeOf(as.Lhs[0]); t == nil || !isString(t) {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		p.Reportf(as.Pos(), "string += in a hot loop is quadratic; use strings.Builder")
	case token.ASSIGN:
		be, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || be.Op != token.ADD {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		v := objOf(p, id)
		if v == nil {
			return
		}
		if dependsOnVars(p, be, map[*types.Var]bool{v: true}) {
			p.Reportf(as.Pos(), "string self-concatenation in a hot loop is quadratic; use strings.Builder")
		}
	}
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sprintfStrconv maps a lone Sprintf verb to the strconv (or plainer)
// replacement, keyed by verb then by a coarse argument-type class.
var sprintfStrconv = map[string]map[string]string{
	"%d": {"int": "strconv.Itoa / strconv.FormatInt"},
	"%t": {"bool": "strconv.FormatBool"},
	"%f": {"float": "strconv.FormatFloat"},
	"%g": {"float": "strconv.FormatFloat"},
	"%s": {"string": "the argument itself (it is already a string)"},
	"%v": {
		"string": "the argument itself (it is already a string)",
		"int":    "strconv.Itoa / strconv.FormatInt",
		"bool":   "strconv.FormatBool",
		"float":  "strconv.FormatFloat",
	},
	"%x": {"int": "strconv.FormatInt(v, 16)"},
}

// checkSprintf flags fmt.Sprintf calls whose format is a single bare verb
// with a strconv-expressible argument — an allocation plus reflection where
// a direct conversion suffices. Applies anywhere in a hot function: Sprintf
// costs even once per call.
func checkSprintf(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" || len(call.Args) != 2 {
		return
	}
	pn := p.PkgNameOf(sel.X)
	if pn == nil || pn.Imported().Path() != "fmt" {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	verb := strings.Trim(lit.Value, "`\"")
	byClass, ok := sprintfStrconv[verb]
	if !ok {
		return
	}
	repl, ok := byClass[typeClass(p.TypeOf(call.Args[1]))]
	if !ok {
		return
	}
	p.Reportf(call.Pos(), "fmt.Sprintf(%s, ...) on the hot path; use %s", lit.Value, repl)
}

// typeClass buckets a type for the Sprintf replacement table.
func typeClass(t types.Type) string {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case b.Info()&types.IsString != 0:
		return "string"
	case b.Info()&types.IsBoolean != 0:
		return "bool"
	case b.Info()&types.IsInteger != 0:
		return "int"
	case b.Info()&types.IsFloat != 0:
		return "float"
	}
	return ""
}

// sliceElemString renders the element type of v's slice type for messages.
func sliceElemString(p *Pass, v *types.Var) string {
	if s, ok := types.Unalias(v.Type()).Underlying().(*types.Slice); ok {
		return types.TypeString(s.Elem(), types.RelativeTo(p.Pkg))
	}
	return "T"
}
