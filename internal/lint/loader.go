package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: pdrvet enforces production
// invariants; tests may deliberately construct degenerate values.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module loads and type-checks every package of one Go module using only
// the standard library: local packages are resolved against the module root
// and standard-library imports are type-checked from GOROOT source via
// go/importer's "source" compiler.
type Module struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Path is the module path from go.mod.
	Path string
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// LoadModule locates go.mod at root and prepares a loader. Packages are
// loaded lazily by import path (or all at once via LoadAll).
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Module{
		Root:    abs,
		Path:    modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// LoadAll walks the module tree and loads every directory that contains
// non-test Go files, returning the packages sorted by import path. Loading
// is tolerant: a package that fails to parse or type-check contributes an
// error instead of aborting the walk, so one broken package cannot hide
// the diagnostics of every healthy one. The returned packages are the ones
// that loaded; errs holds one error per package that did not.
func (m *Module) LoadAll() (pkgs []*Package, errs []error) {
	var paths []string
	walkErr := filepath.WalkDir(m.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if has, err := hasGoFiles(p); err != nil {
			return err
		} else if has {
			rel, err := filepath.Rel(m.Root, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, m.Path)
			} else {
				paths = append(paths, m.Path+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if walkErr != nil {
		return nil, []error{walkErr}
	}
	sort.Strings(paths)
	pkgs = make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := m.Load(p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, errs
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// Load parses and type-checks the package with the given module-local
// import path (memoized).
func (m *Module) Load(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	dir := m.Root
	if path != m.Path {
		rel, ok := strings.CutPrefix(path, m.Path+"/")
		if !ok {
			return nil, fmt.Errorf("lint: %s is outside module %s", path, m.Path)
		}
		dir = filepath.Join(m.Root, filepath.FromSlash(rel))
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := m.check(path, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	m.pkgs[path] = pkg
	return pkg, nil
}

// CheckSource type-checks an in-memory package under the given import
// path — the analyzer tests use it to run the suite over small fixtures,
// including fixtures that impersonate restricted paths like
// "pdr/internal/core". The result is not cached.
func (m *Module) CheckSource(path string, sources map[string]string) (*Package, error) {
	var files []*ast.File
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return m.check(path, files)
}

func (m *Module) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: m}
	tpkg, err := cfg.Check(path, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: m.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer: module-local paths load from the module
// tree, everything else from GOROOT source.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
