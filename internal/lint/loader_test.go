package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// LoadAll must keep going past a package that cannot be parsed or
// type-checked: the healthy packages come back alongside one error per
// casualty, so a single broken file cannot blank out the module's
// diagnostics.
func TestLoadAllToleratesBrokenPackages(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":         "module tmpmod\n\ngo 1.22\n",
		"syntax/bad.go":  "package syntax\n\nfunc oops( {\n",
		"typeerr/bad.go": "package typeerr\n\nfunc f() int { return \"not an int\" }\n",
		"healthy/ok.go":  "package healthy\n\nfunc Cmp(a, b float64) bool { return a == b }\n",
		"healthy2/ok.go": "package healthy2\n\nfunc Id(x int) int { return x }\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, errs := m.LoadAll()
	if len(errs) != 2 {
		t.Fatalf("got %d load errors, want 2 (syntax + type): %v", len(errs), errs)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	got := strings.Join(paths, " ")
	if !strings.Contains(got, "tmpmod/healthy") || !strings.Contains(got, "tmpmod/healthy2") {
		t.Fatalf("healthy packages missing from result: %v", paths)
	}
	for _, p := range paths {
		if strings.Contains(p, "syntax") || strings.Contains(p, "typeerr") {
			t.Fatalf("broken package %s returned as loaded", p)
		}
	}

	// The survivors are analyzable: the floateq bug in healthy/ surfaces.
	diags := Run(pkgs, []*Analyzer{AnalyzerFloatEq})
	if len(diags) != 1 || diags[0].Analyzer != "floateq" {
		t.Fatalf("diagnostics from healthy packages = %v, want one floateq finding", diags)
	}
}

func TestLoadAllErrorsNamePackage(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":        "module tmpmod\n\ngo 1.22\n",
		"typeerr/b.go":  "package typeerr\n\nvar V int = \"nope\"\n",
		"healthy/ok.go": "package healthy\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, errs := m.LoadAll()
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	if !strings.Contains(errs[0].Error(), "typeerr") {
		t.Errorf("error does not name the broken package: %v", errs[0])
	}
}

func TestLoadAllCleanModuleNoErrors(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() {}\n",
		"b/b.go": "package b\n\nfunc B() {}\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, errs := m.LoadAll()
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
}

// A broken dependency poisons its importers but nothing else: the importer
// fails with the dependency's error, while unrelated packages still load.
func TestBrokenDependencyOnlyPoisonsImporters(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":     "module tmpmod\n\ngo 1.22\n",
		"dep/d.go":   "package dep\n\nfunc Broken( {\n",
		"user/u.go":  "package user\n\nimport \"tmpmod/dep\"\n\nvar _ = dep.Broken\n",
		"indep/i.go": "package indep\n\nfunc Fine() {}\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, errs := m.LoadAll()
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2 (dep itself + its importer): %v", len(errs), errs)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tmpmod/indep" {
		t.Fatalf("independent package should survive alone, got %v", pkgs)
	}
}
