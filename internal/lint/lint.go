// Package lint is pdrvet's analysis framework: a stdlib-only module loader
// (go/parser + go/types) plus a pluggable set of analyzers that enforce the
// PDR engine's un-compilable invariants — half-open rectangle semantics,
// the single-writer mutex discipline, simulation-time purity, seeded
// randomness, epsilon-safe float comparison, checked encode/write errors,
// uniform index-corruption panics, and namespaced telemetry metric names.
//
// Diagnostics carry file:line:col positions. A finding can be suppressed by
// a directive comment on the same line or the line above:
//
//	// lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; an ignore directive without one is itself a
// finding. The analyzer list may be "all".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"pdr/internal/lint/callgraph"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	// Pkg is the import path of the package the finding is in; it leads the
	// sort key so output order is stable across multi-package runs.
	Pkg     string
	Pos     token.Position
	Message string
	// Fixes are optional machine-applicable suggested fixes (pdrvet -fix).
	Fixes []SuggestedFix
}

// String formats the finding as file:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one pluggable check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// UsesCallGraph requests Pass.Graph: the module call graph with pdr:hot
	// reachability, built once per Run over all loaded packages.
	UsesCallGraph bool
	// Prepare, when set, runs once per Run over every loaded package before
	// the per-package passes, and its result is handed to each of this
	// analyzer's passes via Pass.Shared. Interprocedural analyzers build
	// their cross-package summaries here (pool releaser sets, lock-rank
	// annotations) so per-package findings can see the whole module. The
	// graph argument is non-nil only when UsesCallGraph is also set.
	Prepare func(pkgs []*Package, graph *callgraph.Graph) any
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package import path (e.g. "pdr/internal/geom").
	Path string
	Fset *token.FileSet
	// Files are the package's parsed sources (tests excluded).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Graph is the module call graph; non-nil only for analyzers that set
	// UsesCallGraph. It spans every package of the run, so hot reachability
	// crosses package boundaries.
	Graph *callgraph.Graph
	// Shared is the analyzer's Prepare result (nil when Prepare is unset):
	// module-wide state computed once per Run and read by every pass.
	Shared any

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pkg:      p.Path,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFixf records a finding at pos carrying a machine-applicable
// suggested fix (applied by pdrvet -fix).
func (p *Pass) ReportFixf(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pkg:      p.Path,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// EditRange builds a FixEdit replacing the source range [start, end) with
// newText, converting the AST positions to byte offsets.
func (p *Pass) EditRange(start, end token.Pos, newText string) FixEdit {
	sp := p.Fset.Position(start)
	ep := p.Fset.Position(end)
	return FixEdit{File: sp.Filename, Start: sp.Offset, End: ep.Offset, NewText: newText}
}

// HotFunc reports whether decl is reachable from a pdr:hot root. False when
// the pass has no call graph.
func (p *Pass) HotFunc(decl *ast.FuncDecl) bool {
	if p.Graph == nil {
		return false
	}
	fn, _ := p.Info.Defs[decl.Name].(*types.Func)
	return fn != nil && p.Graph.HotFunc(fn)
}

// TypeOf returns the type of e, or nil if the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// PkgNameOf resolves e to the imported package it names, or nil. It answers
// "is this selector's base the package time/math-rand/...?" questions.
func (p *Pass) PkgNameOf(e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.Info.Uses[id].(*types.PkgName)
	return pn
}

// Inspect walks every file of the pass.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerFloatEq,
		AnalyzerHalfOpen,
		AnalyzerLocked,
		AnalyzerWallClock,
		AnalyzerRandSeed,
		AnalyzerErrCheckLite,
		AnalyzerPanicPrefix,
		AnalyzerMetricName,
		AnalyzerDeferUnlock,
		AnalyzerAtomicMix,
		AnalyzerNoLeak,
		AnalyzerPoolLife,
		AnalyzerLockOrder,
		AnalyzerHotAlloc,
		AnalyzerHotDefer,
		AnalyzerHotLock,
		AnalyzerHotIface,
		AnalyzerHotClock,
		AnalyzerDirective,
	}
}

// ByName returns the named analyzers from All, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q; available: %s", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the full analyzer inventory in registration order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// Run applies the analyzers to every package and returns the surviving
// findings in deterministic order, with lint:ignore suppression applied.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// AnalyzerTiming is the wall-clock cost of one analyzer across a whole run:
// its Prepare phase plus every per-package pass. pdrvet -timing reports it
// so suite growth stays observable.
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
}

// RunTimed is Run with per-analyzer wall time measured. Timings come back
// in registration order, one entry per analyzer of the run.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerTiming) {
	var graph *callgraph.Graph
	for _, a := range analyzers {
		if a.UsesCallGraph {
			graph = BuildGraph(pkgs)
			break
		}
	}
	elapsed := make(map[string]time.Duration, len(analyzers))
	shared := make(map[string]any)
	for _, a := range analyzers {
		if a.Prepare == nil {
			continue
		}
		start := time.Now()
		shared[a.Name] = a.Prepare(pkgs, graph)
		elapsed[a.Name] += time.Since(start)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Shared:   shared[a.Name],
				diags:    &pkgDiags,
			}
			if a.UsesCallGraph {
				pass.Graph = graph
			}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		diags = append(diags, applyIgnores(pkg, analyzers, pkgDiags)...)
	}
	sortDiags(diags)
	timings := make([]AnalyzerTiming, len(analyzers))
	for i, a := range analyzers {
		timings[i] = AnalyzerTiming{Name: a.Name, Duration: elapsed[a.Name]}
	}
	return diags, timings
}

// sortDiags orders findings by (package, file, line, col, analyzer,
// message) so repeated runs and CI diffs are byte-stable regardless of
// package load order or analyzer scheduling.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// BuildGraph constructs the module call graph over the loaded packages —
// the reachability substrate of the hot-path analyzers and `pdrvet -graph`.
func BuildGraph(pkgs []*Package) *callgraph.Graph {
	if len(pkgs) == 0 {
		return callgraph.Build(token.NewFileSet(), nil)
	}
	units := make([]callgraph.Unit, 0, len(pkgs))
	for _, pkg := range pkgs {
		units = append(units, callgraph.Unit{
			Path:  pkg.Path,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		})
	}
	return callgraph.Build(pkgs[0].Fset, units)
}

// ignoreDirective is one parsed lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil means "all"
	file      string
	line      int // line the directive appears on
	target    int // first line after the directive's comment group
	pos       token.Pos
}

// matches reports whether the directive covers analyzer a at file:l. A
// directive covers its own line (trailing-comment form) and the first line
// after its comment group (standalone form, possibly wrapped over several
// comment lines).
func (d ignoreDirective) matches(a, file string, l int) bool {
	if file != d.file || (l != d.line && l != d.target) {
		return false
	}
	return d.analyzers == nil || d.analyzers[a]
}

const ignorePrefix = "lint:ignore"

// applyIgnores drops diagnostics covered by a well-formed ignore directive.
// When the directive analyzer itself is part of the run, it additionally
// adds a finding for every malformed directive (missing reason) and — when
// every analyzer a directive names was also part of this run — reports
// directives that suppressed nothing as stale, so dead ignores cannot
// outlive the finding they excused. Under `-only` runs that exclude
// "directive", suppression still applies but no directive findings are
// synthesized: a partial run cannot decide that an ignore is dead, and its
// findings must never be labeled with an analyzer the user didn't select.
func applyIgnores(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	directiveRan := false
	for _, a := range analyzers {
		if a.Name == AnalyzerDirective.Name {
			directiveRan = true
			break
		}
	}
	var directives []ignoreDirective
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				line := pkg.Fset.Position(c.Pos()).Line
				if len(fields) < 2 {
					if directiveRan {
						malformed = append(malformed, Diagnostic{
							Analyzer: AnalyzerDirective.Name,
							Pkg:      pkg.Path,
							Pos:      pkg.Fset.Position(c.Pos()),
							Message:  "malformed lint:ignore: want \"lint:ignore <analyzer> <reason>\" with a non-empty reason",
						})
					}
					continue
				}
				d := ignoreDirective{
					file:   pkg.Fset.Position(c.Pos()).Filename,
					line:   line,
					target: pkg.Fset.Position(cg.End()).Line + 1,
					pos:    c.Pos(),
				}
				if fields[0] != "all" {
					d.analyzers = make(map[string]bool)
					for _, n := range strings.Split(fields[0], ",") {
						d.analyzers[n] = true
					}
				}
				directives = append(directives, d)
			}
		}
	}
	out := malformed
	used := make([]bool, len(directives))
	for _, diag := range diags {
		suppressed := false
		for i, d := range directives {
			if d.matches(diag.Analyzer, diag.Pos.Filename, diag.Pos.Line) {
				suppressed = true
				used[i] = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range All() {
		if !ran[a.Name] {
			fullSuite = false
			break
		}
	}
	for i, d := range directives {
		if used[i] || !directiveRan || !staleDecidable(d, ran, fullSuite) {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: AnalyzerDirective.Name,
			Pkg:      pkg.Path,
			Pos:      pkg.Fset.Position(d.pos),
			Message:  "stale lint:ignore: no finding from the named analyzers on this line; delete the directive",
		})
	}
	return out
}

// staleDecidable reports whether an unmatched directive can be called stale
// in this run: every analyzer it names must have run (a directive for "all"
// needs the full suite), and directives naming "directive" itself are never
// reported — they exist to silence this very check.
func staleDecidable(d ignoreDirective, ran map[string]bool, fullSuite bool) bool {
	if d.analyzers == nil {
		return fullSuite
	}
	for name := range d.analyzers {
		if name == "directive" || !ran[name] {
			return false
		}
	}
	return true
}
