package lint

import (
	"strings"
	"testing"
)

// The hotpath analyzers report only in functions reachable from a pdr:hot
// root; every fixture declares its own root. Cold twins of each pattern
// pin the reachability gate.

func TestHotAllocAppendInLoop(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Hot(points []float64) []float64 {
	var out []float64
	for _, p := range points {
		out = append(out, p*2)
	}
	return out
}

func Cold(points []float64) []float64 {
	var out []float64
	for _, p := range points {
		out = append(out, p*2)
	}
	return out
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "hotalloc", 1)
	if len(diags[0].Fixes) != 1 {
		t.Fatalf("append finding should carry a prealloc fix, got %d", len(diags[0].Fixes))
	}
	fix := diags[0].Fixes[0]
	if !strings.Contains(fix.Message, "make([]float64, 0, len(points))") {
		t.Errorf("fix message = %q, want make([]float64, 0, len(points))", fix.Message)
	}
	if len(fix.Edits) != 1 || fix.Edits[0].NewText != "out := make([]float64, 0, len(points))" {
		t.Errorf("fix edits = %+v", fix.Edits)
	}
}

func TestHotAllocAppendIntRangeBound(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Hot(n int) []int {
	var out []int
	for i := range n {
		out = append(out, i)
	}
	return out
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "hotalloc", 1)
	if len(diags[0].Fixes) != 1 || !strings.Contains(diags[0].Fixes[0].Message, "make([]int, 0, n)") {
		t.Errorf("want int-range bound fix, got %+v", diags[0].Fixes)
	}
}

func TestHotAllocSpreadAppendNotFlagged(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Hot(chunks [][]int) []int {
	var out []int
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "", 0)
}

func TestHotAllocPreallocatedNotFlagged(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Hot(points []float64) []float64 {
	out := make([]float64, 0, len(points))
	for _, p := range points {
		out = append(out, p*2)
	}
	return out
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "", 0)
}

func TestHotAllocPerIterationMap(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Hot(keys []string) int {
	var seen map[string]bool
	total := 0
	for _, k := range keys {
		seen = make(map[string]bool)
		seen[k] = true
		total += len(seen)
	}
	return total
}

// pdr:hot
func GrowOnDemand(sizes []int) []byte {
	var buf []byte
	n := 0
	for _, s := range sizes {
		if cap(buf) < s {
			buf = make([]byte, s)
		}
		n += len(buf[:s])
	}
	return buf[:n%8]
}
`, AnalyzerHotAlloc)
	// The conditional grow-on-demand pattern must not be flagged.
	wantFindings(t, diags, "hotalloc", 1)
	if !strings.Contains(diags[0].Message, "map re-allocated") {
		t.Errorf("message = %q, want per-iteration map wording", diags[0].Message)
	}
}

func TestHotAllocStringConcat(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Hot(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p
	}
	return s
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "hotalloc", 1)
	if !strings.Contains(diags[0].Message, "strings.Builder") {
		t.Errorf("message = %q, want strings.Builder suggestion", diags[0].Message)
	}
}

func TestHotAllocSprintfWhereStrconvSuffices(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

import "fmt"

// pdr:hot
func Hot(id int, name string) string {
	a := fmt.Sprintf("%d", id)       // strconv.Itoa
	b := fmt.Sprintf("%s", name)     // already a string
	c := fmt.Sprintf("%d/%s", id, a) // real formatting: not flagged
	return a + b + c
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "hotalloc", 2)
}

func TestHotAllocPerCallReceiverSizedMake(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

type series struct {
	k    int
	coef []float64
}

// pdr:hot
func (s *series) Eval(x float64) float64 {
	tx := make([]float64, s.k+1)
	tx[0] = 1
	total := 0.0
	for i, c := range s.coef {
		total += c * x * tx[i%(s.k+1)]
	}
	return total
}

func (s *series) ColdEval(x float64) []float64 {
	tx := make([]float64, s.k+1)
	tx[0] = x
	return tx
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "hotalloc", 1)
	if !strings.Contains(diags[0].Message, "sized by receiver fields") {
		t.Errorf("message = %q, want receiver-sized per-call make wording", diags[0].Message)
	}
}

func TestHotAllocPerCallMakeExemptions(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

type series struct {
	k    int
	coef []float64
}

// Guarded grow-on-demand is the recommended idiom, not a finding.
// pdr:hot
func (s *series) EvalGrown(buf []float64) float64 {
	if cap(buf) < s.k+1 {
		buf = make([]float64, s.k+1)
	}
	return buf[:s.k+1][0]
}

// Length-0 preallocation builds a caller-owned result; exempt.
// pdr:hot
func (s *series) Coefs() []float64 {
	out := make([]float64, 0, s.k+1)
	return append(out, s.coef...)
}

// A param-sized make is not fixed by the receiver; not this rule's shape.
// pdr:hot
func (s *series) Sample(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.coef[i%len(s.coef)] * float64(s.k)
	}
	return out
}

// Receiver-less helpers are out of scope even with an unconditional make.
// pdr:hot
func Scaled(points []float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = points[i%len(points)] * 2
	}
	return out
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "", 0)
}

func TestHotDeferInLoop(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

import "sync"

type store struct{ mu sync.Mutex }

// pdr:hot
func Hot(s *store, keys []string) {
	for range keys {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
}
`, AnalyzerHotDefer)
	wantFindings(t, diags, "hotdefer", 1)
	if len(diags[0].Fixes) != 1 {
		t.Fatalf("adjacent Lock/defer-Unlock should carry a hoist fix, got %d", len(diags[0].Fixes))
	}
	if !strings.Contains(diags[0].Fixes[0].Message, "hoist") {
		t.Errorf("fix message = %q, want hoist wording", diags[0].Fixes[0].Message)
	}
}

func TestHotDeferPerElementMutexNoFix(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

import "sync"

type shard struct{ mu sync.Mutex }

// pdr:hot
func Hot(shards []shard) {
	for i := range shards {
		shards[i].mu.Lock()
		defer shards[i].mu.Unlock()
	}
}
`, AnalyzerHotDefer)
	// Still a finding (defer stack grows per shard), but the mutex depends
	// on the loop variable: no hoist fix.
	wantFindings(t, diags, "hotdefer", 1)
	if len(diags[0].Fixes) != 0 {
		t.Errorf("loop-dependent mutex must not get a hoist fix: %+v", diags[0].Fixes)
	}
}

func TestHotLockHoistable(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

import "sync"

type reg struct {
	mu sync.RWMutex
	n  int
}

// pdr:hot
func Hot(r *reg, keys []string) int {
	total := 0
	for range keys {
		r.mu.RLock()
		total += r.n
		r.mu.RUnlock()
	}
	return total
}

// pdr:hot
func PerShard(shards []reg) int {
	total := 0
	for i := range shards {
		shards[i].mu.RLock()
		total += shards[i].n
		shards[i].mu.RUnlock()
	}
	return total
}

// pdr:hot
func Conditional(r *reg, keys []string) int {
	total := 0
	for i := range keys {
		if i%2 == 0 {
			r.mu.RLock()
			total += r.n
			r.mu.RUnlock()
		}
	}
	return total
}
`, AnalyzerHotLock)
	// Only the loop-invariant unconditional acquisition is hoistable.
	wantFindings(t, diags, "hotlock", 1)
	if !strings.Contains(diags[0].Message, "r.mu.RLock") {
		t.Errorf("message = %q, want the invariant r.mu acquisition", diags[0].Message)
	}
}

func TestHotIfaceBoxingInLoop(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

func sink(v any) {}

type pt struct{ x, y float64 }

// pdr:hot
func Hot(points []pt) {
	for _, p := range points {
		sink(p) // struct boxed per element
	}
	for i := range points {
		sink(&points[i]) // pointer: no allocation, not flagged
	}
}
`, AnalyzerHotIface)
	wantFindings(t, diags, "hotiface", 1)
	if !strings.Contains(diags[0].Message, "boxed into") {
		t.Errorf("message = %q, want boxing wording", diags[0].Message)
	}
}

func TestHotIfaceSortSlice(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

import "sort"

// pdr:hot
func Hot(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func Cold(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
`, AnalyzerHotIface)
	wantFindings(t, diags, "hotiface", 1)
	if !strings.Contains(diags[0].Message, "slices.SortFunc") {
		t.Errorf("message = %q, want slices.SortFunc suggestion", diags[0].Message)
	}
}

func TestHotClockPerElement(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

import "time"

// pdr:hot
func Hot(keys []string) time.Duration {
	var total time.Duration
	start := time.Now() // once per call: fine
	for range keys {
		total += time.Since(start) // per element: flagged
	}
	return total
}
`, AnalyzerHotClock)
	wantFindings(t, diags, "hotclock", 1)
	if !strings.Contains(diags[0].Message, "time.Since") {
		t.Errorf("message = %q, want time.Since wording", diags[0].Message)
	}
}

func TestHotReachabilityCrossesCalls(t *testing.T) {
	// The root has no loop itself; the finding is in a transitively
	// reached helper, proving analyzers consult the call graph rather
	// than the annotation alone.
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Entry(points []float64) []float64 { return transform(points) }

func transform(points []float64) []float64 {
	var out []float64
	for _, p := range points {
		out = append(out, p*2)
	}
	return out
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "hotalloc", 1)
}

func TestHotClosureInheritsHeat(t *testing.T) {
	// A closure created by a hot function is hot; loop depth restarts
	// inside it (the closure body runs per invocation, not per iteration
	// of the loop that created it).
	diags := analyze(t, "pdr/internal/x", `package x

// pdr:hot
func Entry(parts [][]float64, run func(func(int))) []float64 {
	out := make([]float64, 0, len(parts))
	run(func(i int) {
		var local []float64
		for _, v := range parts[i] {
			local = append(local, v) // hot closure, loop inside it: flagged
		}
		out = append(out, local...) // closure depth 0: not flagged
	})
	return out
}
`, AnalyzerHotAlloc)
	wantFindings(t, diags, "hotalloc", 1)
}
