package lint

import "testing"

func TestNoLeak(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		// The worker-pool shape internal/parallel uses: Add before spawn,
		// Done deferred (through a cleanup closure), Wait joins.
		{"waitgroup join clean", `package x
import "sync"
func fan(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
`, 0},
		{"done inside deferred closure clean", `package x
import "sync"
func fan(slots chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			<-slots
			wg.Done()
		}()
	}()
	wg.Wait()
}
`, 0},
		// Done reachable on only one path: Wait hangs when cond is false.
		{"done missing on a path flagged", `package x
import "sync"
func fan(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if cond {
			wg.Done()
		}
	}()
	wg.Wait()
}
`, 1},
		// Add inside the goroutine races Wait.
		{"add inside goroutine flagged", `package x
import "sync"
func fan() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		defer wg.Done()
	}()
	wg.Wait()
}
`, 1},
		{"no add at all flagged", `package x
import "sync"
func fan() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`, 1},
		// Field WaitGroups are out of local-Add scope: Add may happen in
		// another method.
		{"field waitgroup add elsewhere clean", `package x
import "sync"
type pool struct {
	wg sync.WaitGroup
}
func (p *pool) track() { p.wg.Add(1) }
func (p *pool) spawn() {
	go func() {
		defer p.wg.Done()
	}()
}
`, 0},
		// Channel-send goroutines: buffered send can always complete.
		{"buffered channel send clean", `package x
func compute() chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}
`, 0},
		{"unbuffered send with local receive clean", `package x
func compute() int {
	out := make(chan int)
	go func() {
		out <- 42
	}()
	return <-out
}
`, 0},
		{"unbuffered send never received flagged", `package x
func compute() {
	out := make(chan int)
	go func() {
		out <- 42
	}()
}
`, 1},
		// Drainer goroutines are bounded by their input channel.
		{"receiver goroutine clean", `package x
func drain(in chan int) {
	go func() {
		for range in {
		}
	}()
}
`, 0},
		// Fire-and-forget with no join primitive at all.
		{"fire and forget flagged", `package x
func leak() {
	go func() {
		for {
		}
	}()
}
`, 1},
		{"fire and forget with documented ignore clean", `package x
func daemon() {
	// lint:ignore noleak test fixture daemon rationale
	go func() {
		for {
		}
	}()
}
`, 0},
		// `go method()` has no visible body; skipped by contract.
		{"named function goroutine skipped", `package x
func helper() {}
func launch() {
	go helper()
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerNoLeak), "noleak", tc.want)
		})
	}
}
