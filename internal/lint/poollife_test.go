package lint

import (
	"strings"
	"testing"
)

// poolDecl is the shared lifetime-fixture preamble: a ref-free pooled
// scratch (no Put-hygiene findings) so the lifetime cases count only
// lifetime diagnostics.
const poolDecl = `package x

import "sync"

type scratch struct {
	buf []float64
}

var scratches = sync.Pool{New: func() any { return new(scratch) }}
`

func TestPoolLifeLifetimes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"defer Put clean", poolDecl + `
func Sum(xs []float64) float64 {
	s := scratches.Get().(*scratch)
	defer scratches.Put(s)
	s.buf = append(s.buf[:0], xs...)
	var t float64
	for _, v := range s.buf {
		t += v
	}
	return t
}
`, 0},
		{"explicit Put on every path clean", poolDecl + `
func Count(xs []float64) int {
	s := scratches.Get().(*scratch)
	if len(xs) == 0 {
		scratches.Put(s)
		return 0
	}
	s.buf = append(s.buf[:0], xs...)
	n := len(s.buf)
	scratches.Put(s)
	return n
}
`, 0},
		{"conditional Put leaks the other path", poolDecl + `
func Leak(cond bool) {
	s := scratches.Get().(*scratch)
	s.buf = append(s.buf[:0], 1)
	if cond {
		scratches.Put(s)
	}
}
`, 1},
		{"use after Put flagged", poolDecl + `
func UseAfter() float64 {
	s := scratches.Get().(*scratch)
	s.buf = append(s.buf[:0], 1)
	scratches.Put(s)
	return s.buf[0]
}
`, 1},
		{"double Put flagged", poolDecl + `
func Double() {
	s := scratches.Get().(*scratch)
	scratches.Put(s)
	scratches.Put(s)
}
`, 1},
		{"deferred Put after manual Put is a double release", poolDecl + `
func DeferredDouble() {
	s := scratches.Get().(*scratch)
	defer scratches.Put(s)
	s.buf = append(s.buf[:0], 1)
	scratches.Put(s)
}
`, 1},
		// A pooled value returned to the caller transfers ownership — the
		// provider is clean, its callers inherit the obligation.
		{"returning the pooled value is ownership transfer", poolDecl + `
func Provide() *scratch {
	s := scratches.Get().(*scratch)
	s.buf = s.buf[:0]
	return s
}
`, 0},
		// Scratch captured by a spawned goroutine escapes this function's
		// CFG; the analysis gives the value up rather than guessing.
		{"goroutine-escaping scratch is not flagged", poolDecl + `
func Spawn(done chan struct{}) {
	s := scratches.Get().(*scratch)
	go func() {
		s.buf = s.buf[:0]
		scratches.Put(s)
		done <- struct{}{}
	}()
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerPoolLife), "poollife", tc.want)
		})
	}
}

// providerDecl adds a FilterResult-shaped API: a provider returning
// (pooled, error) and a Release method, the shape the dh package exports.
const providerDecl = `package x

import (
	"errors"
	"sync"
)

type res struct {
	buf []float64
}

var results = sync.Pool{New: func() any { return new(res) }}

func (r *res) Release() { results.Put(r) }

func open(fail bool) (*res, error) {
	if fail {
		return nil, errors.New("no")
	}
	return results.Get().(*res), nil
}
`

func TestPoolLifeProviderPaths(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		// The err != nil return carries no obligation: on that edge the
		// pooled result is nil (EdgeRefine drops the fact).
		{"error-path return clean with deferred Release", providerDecl + `
func Use(fail bool) error {
	r, err := open(fail)
	if err != nil {
		return err
	}
	defer r.Release()
	r.buf = r.buf[:0]
	return nil
}
`, 0},
		{"success path without Release leaks", providerDecl + `
func Leak(fail bool) error {
	r, err := open(fail)
	if err != nil {
		return err
	}
	r.buf = r.buf[:0]
	return nil
}
`, 1},
		{"Release on every success path clean", providerDecl + `
func Twice(fail bool) (int, error) {
	r, err := open(fail)
	if err != nil {
		return 0, err
	}
	if len(r.buf) == 0 {
		r.Release()
		return 0, nil
	}
	n := len(r.buf)
	r.Release()
	return n, nil
}
`, 0},
		{"use after Release flagged", providerDecl + `
func Stale(fail bool) float64 {
	r, err := open(fail)
	if err != nil {
		return 0
	}
	r.Release()
	return r.buf[0]
}
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerPoolLife), "poollife", tc.want)
		})
	}
}

// TestPoolLifeInterfaceRelease pins the name-convention fallback: a Release
// called through an interface cannot be resolved by the summary, but the
// Release/Close naming convention still counts it as the release.
func TestPoolLifeInterfaceRelease(t *testing.T) {
	src := `package x

import "sync"

type buffer interface {
	Release()
}

type impl struct {
	buf []float64
}

func (b *impl) Release() { buffers.Put(b) }

var buffers = sync.Pool{New: func() any { return new(impl) }}

func Use() {
	b := buffers.Get().(buffer)
	b.Release()
}
`
	wantFindings(t, analyze(t, "pdr/internal/x", src, AnalyzerPoolLife), "poollife", 0)
}

func TestPoolLifeNilBeforePut(t *testing.T) {
	const decl = `package x

import "sync"

type node struct {
	buf  []float64
	next *node
}

var nodes = sync.Pool{New: func() any { return new(node) }}
`
	t.Run("uncleared pointer field flagged with fix", func(t *testing.T) {
		diags := analyze(t, "pdr/internal/x", decl+`
func Put(n *node) {
	nodes.Put(n)
}
`, AnalyzerPoolLife)
		wantFindings(t, diags, "poollife", 1)
		if !strings.Contains(diags[0].Message, "next") {
			t.Errorf("finding does not name the field: %s", diags[0].Message)
		}
		if len(diags[0].Fixes) != 1 {
			t.Fatalf("want one suggested fix, got %d", len(diags[0].Fixes))
		}
		if edits := diags[0].Fixes[0].Edits; len(edits) != 1 || !strings.Contains(edits[0].NewText, "n.next = nil") {
			t.Errorf("fix should insert n.next = nil, got %+v", edits)
		}
	})
	t.Run("nil assignment before Put clean", func(t *testing.T) {
		wantFindings(t, analyze(t, "pdr/internal/x", decl+`
func Put(n *node) {
	n.next = nil
	nodes.Put(n)
}
`, AnalyzerPoolLife), "poollife", 0)
	})
	t.Run("deferred Put reported without a mechanical fix", func(t *testing.T) {
		diags := analyze(t, "pdr/internal/x", decl+`
func Use(n *node) {
	defer nodes.Put(n)
	n.buf = append(n.buf[:0], 1)
}
`, AnalyzerPoolLife)
		wantFindings(t, diags, "poollife", 1)
		if len(diags[0].Fixes) != 0 {
			t.Errorf("clearing before a deferred Put runs too early; want no fix, got %+v", diags[0].Fixes)
		}
	})
	t.Run("slice of pointers wants clear()", func(t *testing.T) {
		diags := analyze(t, "pdr/internal/x", decl+`
type list struct {
	items []*node
}

var lists = sync.Pool{New: func() any { return new(list) }}

func PutList(l *list) {
	lists.Put(l)
}
`, AnalyzerPoolLife)
		wantFindings(t, diags, "poollife", 1)
		if len(diags[0].Fixes) != 1 || !strings.Contains(diags[0].Fixes[0].Edits[0].NewText, "clear(l.items)") {
			t.Errorf("want clear(l.items) fix, got %+v", diags[0].Fixes)
		}
	})
	t.Run("clear before Put clean", func(t *testing.T) {
		wantFindings(t, analyze(t, "pdr/internal/x", decl+`
type list struct {
	items []*node
}

var lists = sync.Pool{New: func() any { return new(list) }}

func PutList(l *list) {
	clear(l.items)
	lists.Put(l)
}
`, AnalyzerPoolLife), "poollife", 0)
	})
}

func TestPoolLifeCapClip(t *testing.T) {
	t.Run("unclipped pooled-scratch return flagged with fix", func(t *testing.T) {
		diags := analyze(t, "pdr/internal/x", `package x

func Dedup(s []float64) []float64 {
	out := s[:0]
	for _, v := range s {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}
`, AnalyzerPoolLife)
		wantFindings(t, diags, "poollife", 1)
		if len(diags[0].Fixes) != 1 {
			t.Fatalf("want one suggested fix, got %d", len(diags[0].Fixes))
		}
		if got := diags[0].Fixes[0].Edits[0].NewText; got != "out[:len(out):len(out)]" {
			t.Errorf("fix text = %q, want full-slice clip", got)
		}
	})
	t.Run("clipped return clean", func(t *testing.T) {
		wantFindings(t, analyze(t, "pdr/internal/x", `package x

func Dedup(s []float64) []float64 {
	out := s[:0]
	for _, v := range s {
		out = append(out, v)
	}
	return out[:len(out):len(out)]
}
`, AnalyzerPoolLife), "poollife", 0)
	})
	t.Run("fresh allocation needs no clip", func(t *testing.T) {
		wantFindings(t, analyze(t, "pdr/internal/x", `package x

func Copy(s []float64) []float64 {
	out := make([]float64, 0, len(s))
	out = append(out, s...)
	return out
}
`, AnalyzerPoolLife), "poollife", 0)
	})
}
