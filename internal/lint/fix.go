package lint

import (
	"fmt"
	"go/format"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FixEdit is one byte-offset splice into a source file: the half-open range
// [Start, End) is replaced by NewText. Offsets index the file's bytes as
// they were when the finding was produced.
type FixEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// SuggestedFix is one machine-applicable repair for a finding: a short
// description plus the textual edits that implement it. Edits may span
// lines but must stay within one file and must not overlap other fixes'
// edits in the same run.
type SuggestedFix struct {
	Message string    `json:"message"`
	Edits   []FixEdit `json:"edits"`
}

// FixSummary reports what ApplyFixes did.
type FixSummary struct {
	// Files lists every file rewritten (or that would be, in dry mode),
	// sorted.
	Files []string
	// Applied counts the suggested fixes applied.
	Applied int
	// Skipped counts fixes dropped because their edits overlapped an
	// already-accepted fix in the same file.
	Skipped int
}

// ApplyFixes applies every suggested fix attached to diags. Per file, edits
// are sorted by offset, overlapping fixes are skipped (first-accepted
// wins), the splices are applied back-to-front, and the result must pass
// gofmt (go/format.Source) before anything is written; a file that fails
// the re-check aborts the whole run with no partial writes. Writes are
// atomic per file (write temp + rename). In dry mode nothing is written;
// unified diffs are printed to w instead.
func ApplyFixes(diags []Diagnostic, dry bool, w io.Writer) (FixSummary, error) {
	var sum FixSummary

	// Collect fixes per file, preserving diagnostic order.
	type fileFix struct {
		fix  SuggestedFix
		diag Diagnostic
	}
	byFile := make(map[string][]fileFix)
	var files []string
	for _, d := range diags {
		for _, f := range d.Fixes {
			if len(f.Edits) == 0 {
				continue
			}
			file := f.Edits[0].File
			ok := true
			for _, e := range f.Edits[1:] {
				if e.File != file {
					ok = false // cross-file fixes are not supported
					break
				}
			}
			if !ok {
				sum.Skipped++
				continue
			}
			if _, seen := byFile[file]; !seen {
				files = append(files, file)
			}
			byFile[file] = append(byFile[file], fileFix{f, d})
		}
	}
	sort.Strings(files)

	// Phase 1: compute every rewritten file; fail before any write.
	rewritten := make(map[string][]byte)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return sum, fmt.Errorf("fix: %w", err)
		}
		var accepted []FixEdit
		for _, ff := range byFile[file] {
			if edits, ok := acceptEdits(ff.fix.Edits, accepted, len(src)); ok {
				accepted = append(accepted, edits...)
				sum.Applied++
			} else {
				sum.Skipped++
			}
		}
		if len(accepted) == 0 {
			continue
		}
		out := splice(src, accepted)
		formatted, err := format.Source(out)
		if err != nil {
			return sum, fmt.Errorf("fix: %s: result does not gofmt (fix rejected, nothing written): %w", file, err)
		}
		rewritten[file] = formatted
		sum.Files = append(sum.Files, file)
	}

	// Phase 2: emit.
	for _, file := range sum.Files {
		if dry {
			orig, err := os.ReadFile(file)
			if err != nil {
				return sum, fmt.Errorf("fix: %w", err)
			}
			fmt.Fprintf(w, "--- %s (current)\n+++ %s (fixed)\n", file, file)
			writeUnifiedDiff(w, string(orig), string(rewritten[file]))
			continue
		}
		if err := atomicWrite(file, rewritten[file]); err != nil {
			return sum, fmt.Errorf("fix: %w", err)
		}
	}
	return sum, nil
}

// acceptEdits validates one fix's edits against the file bounds and the
// already-accepted edits: in-range, internally non-overlapping, and
// disjoint from prior fixes. Returns the edits sorted by offset.
func acceptEdits(edits, accepted []FixEdit, size int) ([]FixEdit, bool) {
	sorted := make([]FixEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > size {
			return nil, false
		}
		if i > 0 && e.Start < sorted[i-1].End {
			return nil, false
		}
		for _, a := range accepted {
			if e.Start < a.End && a.Start < e.End {
				return nil, false
			}
		}
	}
	return sorted, true
}

// splice applies offset-sorted, non-overlapping edits back-to-front so
// earlier offsets stay valid.
func splice(src []byte, edits []FixEdit) []byte {
	sorted := make([]FixEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := append([]byte(nil), src...)
	for i := len(sorted) - 1; i >= 0; i-- {
		e := sorted[i]
		out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
	}
	return out
}

// atomicWrite replaces path's contents via a temp file + rename in the same
// directory, preserving the original mode.
func atomicWrite(path string, data []byte) error {
	mode := os.FileMode(0o644)
	if st, err := os.Stat(path); err == nil {
		mode = st.Mode().Perm()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pdrvet-fix-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// writeUnifiedDiff prints a minimal unified diff (3 lines of context)
// between two texts, hunk headers included. Line-based LCS; fine for the
// small per-file patches -fix produces.
func writeUnifiedDiff(w io.Writer, a, b string) {
	al := splitLines(a)
	bl := splitLines(b)
	// LCS table.
	n, m := len(al), len(bl)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	// Walk into an op list: ' ' common, '-' delete, '+' insert.
	type op struct {
		kind byte
		line string
	}
	var ops []op
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case al[i] == bl[j]:
			ops = append(ops, op{' ', al[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{'-', al[i]})
			i++
		default:
			ops = append(ops, op{'+', bl[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, op{'-', al[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, op{'+', bl[j]})
	}
	// Group into hunks with up to 3 common lines of context.
	const ctx = 3
	aLine, bLine := 1, 1
	k := 0
	for k < len(ops) {
		// Skip runs of common lines between hunks.
		if ops[k].kind == ' ' {
			run := 0
			for k+run < len(ops) && ops[k+run].kind == ' ' {
				run++
			}
			if k+run == len(ops) {
				break // trailing common tail
			}
			keep := run
			if keep > ctx {
				skip := run - ctx
				if k > 0 {
					// Interior run: keep ctx on both sides when long enough.
					if run > 2*ctx {
						skip = run - 2*ctx
					} else {
						skip = 0
					}
				}
				aLine += skip
				bLine += skip
				k += skip
				keep = run - skip
			}
			_ = keep
		}
		// Emit one hunk: from here until a common run longer than 2*ctx or EOF.
		hs := k
		he := k
		common := 0
		for he < len(ops) {
			if ops[he].kind == ' ' {
				common++
				if common > 2*ctx {
					he -= common - 1 // back to the first common line
					common = 0
					break
				}
			} else {
				common = 0
			}
			he++
		}
		// Trim trailing context beyond ctx.
		trail := 0
		for he-1-trail >= hs && ops[he-1-trail].kind == ' ' {
			trail++
		}
		if trail > ctx {
			he -= trail - ctx
		}
		aStart, bStart := aLine, bLine
		aCount, bCount := 0, 0
		for _, o := range ops[hs:he] {
			switch o.kind {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(w, "@@ -%d,%d +%d,%d @@\n", aStart, aCount, bStart, bCount)
		for _, o := range ops[hs:he] {
			fmt.Fprintf(w, "%c%s\n", o.kind, o.line)
			switch o.kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		k = he
	}
}

// splitLines splits without a phantom trailing empty line.
func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
