package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that build an
// explicitly seeded generator rather than drawing from the shared global
// source; everything else at package level is forbidden.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *rand.Rand
}

// AnalyzerRandSeed forbids the global math/rand functions in non-test
// code. The paper's filtering–refinement experiments are reproducible only
// under explicit seeds: every draw must come from a *rand.Rand built with
// rand.New(rand.NewSource(seed)) that the caller threads through.
var AnalyzerRandSeed = &Analyzer{
	Name: "randseed",
	Doc:  "forbids global math/rand top-level functions; require a seeded *rand.Rand",
	Run:  runRandSeed,
}

func runRandSeed(p *Pass) {
	p.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || randConstructors[sel.Sel.Name] {
			return true
		}
		pn := p.PkgNameOf(sel.X)
		if pn == nil {
			return true
		}
		path := pn.Imported().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		// Only functions draw from the global source; rand.Rand, rand.Source
		// and friends are type references.
		if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		p.Reportf(sel.Pos(), "global %s.%s draws from the shared unseeded source; use an explicit rand.New(rand.NewSource(seed)) for reproducible experiments", pn.Imported().Name(), sel.Sel.Name)
		return true
	})
}
