package lint

import (
	"strings"
	"testing"
)

func TestLockOrderRanks(t *testing.T) {
	const decl = `package x

import "sync"

type S struct {
	outer sync.Mutex // pdr:lockrank outer 10
	inner sync.Mutex // pdr:lockrank inner 20
}
`
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"ascending acquisition clean", decl + `
func (s *S) OK() {
	s.outer.Lock()
	s.inner.Lock()
	s.inner.Unlock()
	s.outer.Unlock()
}
`, 0},
		{"descending acquisition flagged", decl + `
func (s *S) Bad() {
	s.inner.Lock()
	s.outer.Lock()
	s.outer.Unlock()
	s.inner.Unlock()
}
`, 1},
		{"sequential non-nested acquisition clean", decl + `
func (s *S) Seq() {
	s.inner.Lock()
	s.inner.Unlock()
	s.outer.Lock()
	s.outer.Unlock()
}
`, 0},
		{"equal ranks on nested classes flagged", `package x

import "sync"

type S struct {
	a sync.Mutex // pdr:lockrank east 10
	b sync.Mutex // pdr:lockrank west 10
}

func (s *S) Bad() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
`, 1},
		{"unannotated mutexes are invisible", `package x

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *S) Any() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`, 0},
		{"malformed directive flagged", `package x

import "sync"

type S struct {
	mu sync.Mutex // pdr:lockrank shared ten
}
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerLockOrder), "lockorder", tc.want)
		})
	}
}

// TestLockOrderInterprocedural pins the reason the analyzer exists: the
// nesting is only visible across calls. An acquire-only helper leaves its
// class held in the caller; a callee that locks on its own account creates
// an edge from whatever the caller holds.
func TestLockOrderInterprocedural(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"violation through an acquire-only helper", `package x

import "sync"

type S struct {
	hi sync.Mutex // pdr:lockrank high 20
	lo sync.Mutex // pdr:lockrank low 10
}

func (s *S) lockHigh() { s.hi.Lock() }

func (s *S) Bad() {
	s.lockHigh()
	s.lo.Lock()
	s.lo.Unlock()
	s.hi.Unlock()
}
`, 1},
		{"violation inside a callee under a held lock", `package x

import "sync"

type S struct {
	hi sync.Mutex // pdr:lockrank high 20
	lo sync.Mutex // pdr:lockrank low 10
}

func (s *S) touch() {
	s.lo.Lock()
	s.lo.Unlock()
}

func (s *S) Bad() {
	s.hi.Lock()
	s.touch()
	s.hi.Unlock()
}
`, 1},
		{"helper that releases before returning carries nothing", `package x

import "sync"

type S struct {
	hi sync.Mutex // pdr:lockrank high 20
	lo sync.Mutex // pdr:lockrank low 10
}

func (s *S) withHigh() {
	s.hi.Lock()
	defer s.hi.Unlock()
}

func (s *S) OK() {
	s.withHigh()
	s.lo.Lock()
	s.lo.Unlock()
}
`, 0},
		{"ascending helper chain clean", `package x

import "sync"

type S struct {
	lo sync.Mutex // pdr:lockrank low 10
	hi sync.Mutex // pdr:lockrank high 20
}

func (s *S) lockLow() { s.lo.Lock() }

func (s *S) OK() {
	s.lockLow()
	s.hi.Lock()
	s.hi.Unlock()
	s.lo.Unlock()
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerLockOrder), "lockorder", tc.want)
		})
	}
}

// TestLockOrderCycle pins cycle detection for unranked classes: each order
// is locally consistent, together they can deadlock.
func TestLockOrderCycle(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x

import "sync"

type S struct {
	a sync.Mutex // pdr:lockrank alpha
	b sync.Mutex // pdr:lockrank beta
}

func (s *S) AB() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) BA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`, AnalyzerLockOrder)
	wantFindings(t, diags, "lockorder", 1)
	msg := diags[0].Message
	if !strings.Contains(msg, "cycle") || !strings.Contains(msg, "alpha") || !strings.Contains(msg, "beta") {
		t.Errorf("cycle finding should name both classes: %s", msg)
	}
}

// TestLockOrderShardIndexDiscipline pins the sharding protocol checks: a
// class over a mutex slice must be acquired in ascending index order.
func TestLockOrderShardIndexDiscipline(t *testing.T) {
	const decl = `package x

import "sync"

type E struct {
	smu []sync.RWMutex // pdr:lockrank shard 10
}
`
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"ascending loop acquire with descending unlock clean", decl + `
func (e *E) LockAll() {
	for i := range e.smu {
		e.smu[i].Lock()
	}
}

func (e *E) UnlockAll() {
	for i := len(e.smu) - 1; i >= 0; i-- {
		e.smu[i].Unlock()
	}
}
`, 0},
		{"descending constant-index acquire flagged", decl + `
func (e *E) Bad() {
	e.smu[1].Lock()
	e.smu[0].Lock()
	e.smu[0].Unlock()
	e.smu[1].Unlock()
}
`, 1},
		{"ascending constant-index acquire clean", decl + `
func (e *E) OK() {
	e.smu[0].Lock()
	e.smu[1].Lock()
	e.smu[1].Unlock()
	e.smu[0].Unlock()
}
`, 0},
		{"descending loop acquire flagged", decl + `
func (e *E) Bad() {
	for i := len(e.smu) - 1; i >= 0; i-- {
		e.smu[i].Lock()
	}
	for i := range e.smu {
		e.smu[i].Unlock()
	}
}
`, 1},
		{"descending loop through acquire helper flagged", decl + `
func (e *E) lockOne(i int) {
	e.smu[i].Lock()
}

func (e *E) Bad() {
	for i := len(e.smu) - 1; i >= 0; i-- {
		e.lockOne(i)
	}
}
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerLockOrder), "lockorder", tc.want)
		})
	}
}
