package lint

import "testing"

func TestDeferUnlock(t *testing.T) {
	const decl = `package x
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
`
	const rwDecl = `package x
import "sync"
type S struct {
	mu sync.RWMutex
	n  int
}
`
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"deferred unlock clean", decl + `
func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
`, 0},
		{"per-path manual unlock clean", decl + `
func (s *S) Get(cond bool) int {
	s.mu.Lock()
	if cond {
		n := s.n
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	return 0
}
`, 0},
		// The leak this analyzer exists for: the early return path exits
		// with the mutex still held.
		{"early return leaks lock", decl + `
func (s *S) Get(cond bool) int {
	s.mu.Lock()
	if cond {
		return s.n
	}
	s.mu.Unlock()
	return 0
}
`, 1},
		{"no unlock at all", decl + `
func (s *S) Touch() {
	s.mu.Lock()
	s.n++
}
`, 1},
		{"RLock leaked on a path", rwDecl + `
func (s *S) Get(cond bool) int {
	s.mu.RLock()
	if cond {
		return s.n
	}
	s.mu.RUnlock()
	return 0
}
`, 1},
		{"RLock with deferred RUnlock clean", rwDecl + `
func (s *S) Get() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}
`, 0},
		// Mismatched release method.
		{"Unlock releases read lock", rwDecl + `
func (s *S) Get() int {
	s.mu.RLock()
	n := s.n
	s.mu.Unlock()
	return n
}
`, 1},
		{"RUnlock releases write lock", rwDecl + `
func (s *S) Touch() {
	s.mu.Lock()
	s.n++
	s.mu.RUnlock()
}
`, 1},
		{"double unlock flagged", decl + `
func (s *S) Get() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	s.mu.Unlock()
	return n
}
`, 1},
		{"manual unlock plus deferred unlock flagged", decl + `
func (s *S) Get(cond bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		s.mu.Unlock()
		return 0
	}
	return s.n
}
`, 1},
		// A panic path is excused: corruption panics abandon the process.
		{"panic path exempt", decl + `
func (s *S) Get() int {
	s.mu.Lock()
	if s.n < 0 {
		panic("pdr: corrupt")
	}
	n := s.n
	s.mu.Unlock()
	return n
}
`, 0},
		// Unlock-only helpers belong to the *Locked convention: the caller
		// locked; not this analyzer's business.
		{"unlock-only helper ignored", decl + `
func (s *S) releaseLocked() {
	s.mu.Unlock()
}
`, 0},
		// Deferred closure releasing the lock counts.
		{"deferred closure unlock clean", decl + `
func (s *S) Get() int {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	return s.n
}
`, 0},
		// TryLock makes hold state a runtime condition; skip the function.
		{"TryLock function skipped", decl + `
func (s *S) Maybe() int {
	if !s.mu.TryLock() {
		return -1
	}
	defer s.mu.Unlock()
	return s.n
}
`, 0},
		// A goroutine literal is its own function with its own obligations.
		{"leak inside goroutine literal flagged", decl + `
func (s *S) Spawn(done chan struct{}) {
	go func() {
		s.mu.Lock()
		s.n++
		done <- struct{}{}
	}()
}
`, 1},
		{"conditional lock released in same branch clean", decl + `
func (s *S) Maybe(cond bool) {
	if cond {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}
`, 0},
		{"ignore suppresses", decl + `
func (s *S) Touch() {
	s.mu.Lock() // lint:ignore deferunlock test fixture
	s.n++
}
`, 0},
		// Acquire-only helpers (lock*/rlock*) return with locks held by
		// contract; the lockorder analyzer models what they leave held.
		{"acquire-only helper exempt from leak check", decl + `
func (s *S) lockAll() {
	s.mu.Lock()
}
`, 0},
		{"rlock-prefixed helper exempt too", rwDecl + `
func (s *S) rlockAll() {
	s.mu.RLock()
}
`, 0},
		{"same body without the helper name still leaks", decl + `
func (s *S) grab() {
	s.mu.Lock()
}
`, 1},
		{"acquire helper still flags double unlock", decl + `
func (s *S) lockTouch() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock()
}
`, 1},
		{"literal inside acquire helper keeps its own obligations", decl + `
func (s *S) lockVia(f func(func())) {
	f(func() {
		s.mu.Lock()
		s.n++
	})
}
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerDeferUnlock), "deferunlock", tc.want)
		})
	}
}
