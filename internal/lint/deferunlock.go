package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"pdr/internal/lint/cfg"
)

// AnalyzerDeferUnlock verifies release discipline for every mutex a function
// locks: a Lock/RLock must be released on every panic-free path out of the
// function, either by a deferred unlock or by an explicit unlock on each
// path, with the *matching* method (Unlock for Lock, RUnlock for RLock).
// It also reports definite double unlocks (an Unlock every path has already
// released) and a deferred unlock that re-releases a mutex a path already
// unlocked manually.
//
// The analysis is per-function over the CFG: the state tracks, per mutex
// key, the set of (level, lock position, pending defers) tuples reachable
// at a program point; the join is set union, so "some path leaks" is
// preserved through merges. Mutexes the function never locks are ignored —
// helpers that only unlock (their caller locked) are the *Locked
// convention's business, not this analyzer's. Symmetrically, acquire-only
// helpers — functions named lock*/rlock*, whose whole job is to leave locks
// held for the caller (lockAllWrite, rlockAll) — are exempt from the
// exit-leak check, though double and mismatched unlocks inside them are
// still reported; the lockorder analyzer models what they leave held.
// Functions using TryLock are skipped: the lock's success is a runtime
// condition the CFG cannot see. Paths ending in panic or process exit are
// exempt, matching the tree's convention that index corruption panics
// abandon the process.
var AnalyzerDeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "flags lock paths that can exit without the matching unlock, and double unlocks",
	Run:  runDeferUnlock,
}

// holdFact is one reachable configuration of one mutex: how it is held,
// where it was locked, and which deferred releases are pending. Values are
// comparable, so a set of them is a map key set.
type holdFact struct {
	// level: 2 write-locked, 1 read-locked, 0 released by this function,
	// -1 untouched-but-has-pending-defer (caller may hold it).
	level     int
	lockPos   token.Pos
	deferW    bool // a deferred Unlock is pending
	deferR    bool // a deferred RUnlock is pending
	deferWPos token.Pos
	deferRPos token.Pos
}

// holdState maps mutex key -> set of reachable hold configurations.
type holdState map[string]map[holdFact]bool

func (s holdState) clone() holdState {
	out := make(holdState, len(s))
	for k, set := range s {
		cp := make(map[holdFact]bool, len(set))
		for f := range set {
			cp[f] = true
		}
		out[k] = cp
	}
	return out
}

func joinHoldStates(a, b holdState) holdState {
	out := a.clone()
	for k, set := range b {
		if out[k] == nil {
			out[k] = make(map[holdFact]bool, len(set))
		}
		for f := range set {
			out[k][f] = true
		}
	}
	return out
}

func equalHoldStates(a, b holdState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, as := range a {
		bs, ok := b[k]
		if !ok || len(as) != len(bs) {
			return false
		}
		for f := range as {
			if !bs[f] {
				return false
			}
		}
	}
	return true
}

func runDeferUnlock(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnlockPaths(p, fd.Body, isAcquireHelperName(fd.Name.Name))
		}
	}
}

// isAcquireHelperName reports whether name follows the acquire-only helper
// convention: the function's contract is to return with locks held.
func isAcquireHelperName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "lock") || strings.HasPrefix(lower, "rlock")
}

// checkUnlockPaths analyzes one function body (and, recursively, every
// function literal inside it — each runs as its own function with its own
// release obligations). acquireHelper suppresses the exit-leak check:
// leaving locks held at return is the function's documented contract.
func checkUnlockPaths(p *Pass, body *ast.BlockStmt, acquireHelper bool) {
	for _, fl := range allFuncLits(body) {
		checkUnlockPaths(p, fl.Body, false)
	}
	if usesTryLock(p, body) {
		return
	}
	g := cfg.New(body)
	reported := make(map[string]bool)
	report := func(pos token.Pos, format string, args ...any) {
		key := p.Fset.Position(pos).String() + format
		if reported[key] {
			return
		}
		reported[key] = true
		p.Reportf(pos, format, args...)
	}
	step := func(n ast.Node, in holdState) holdState { return stepHoldState(p, n, in, nil) }
	res := cfg.Run(g, &cfg.Analysis[holdState]{
		Entry: holdState{},
		Join:  joinHoldStates,
		Equal: equalHoldStates,
		Transfer: func(b *cfg.Block, in holdState) holdState {
			for _, n := range b.Nodes {
				in = stepHoldState(p, n, in, nil)
			}
			return in
		},
	})
	// Replay with reporting enabled: double/mismatched unlocks are judged
	// against the converged state before each node.
	res.WalkReached(step, func(n ast.Node, before holdState) {
		stepHoldState(p, n, before, report)
	})
	// Leak check at normal exit: a tuple still holding the lock with no
	// matching deferred release means some path leaks it.
	exit, ok := res.ExitFacts()
	if !ok {
		return
	}
	for key, set := range exit {
		for f := range set {
			switch {
			case f.level == 2 && !f.deferW:
				if acquireHelper {
					continue
				}
				report(f.lockPos, "%s.Lock() is not released on every return path; add defer %s.Unlock() or unlock before each return", key, key)
			case f.level == 1 && !f.deferR:
				if acquireHelper {
					continue
				}
				report(f.lockPos, "%s.RLock() is not released on every return path; add defer %s.RUnlock() or unlock before each return", key, key)
			case f.level == 0 && f.deferW:
				report(f.deferWPos, "deferred %s.Unlock() runs after a path already unlocked %s (double unlock at return)", key, key)
			case f.level == 0 && f.deferR:
				report(f.deferRPos, "deferred %s.RUnlock() runs after a path already released %s (double unlock at return)", key, key)
			}
		}
	}
}

// stepHoldState advances the hold state across one CFG node. When report is
// non-nil, definite double and mismatched unlocks are reported (the replay
// pass); the fixed-point pass passes nil.
func stepHoldState(p *Pass, n ast.Node, in holdState, report func(token.Pos, string, ...any)) holdState {
	out := in
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			out = registerDefers(p, x, out.clone())
			return false
		case *ast.CallExpr:
			op, ok := mutexOpOf(p, x)
			if !ok {
				return true
			}
			out = applyHoldOp(out, op, report)
		}
		return true
	})
	return out
}

// applyHoldOp transitions every reachable tuple of the operated mutex.
func applyHoldOp(s holdState, op mutexOp, report func(token.Pos, string, ...any)) holdState {
	out := s.clone()
	set := out[op.key]
	switch op.name {
	case "Lock", "RLock":
		level := 2
		if op.name == "RLock" {
			level = 1
		}
		next := make(map[holdFact]bool)
		if len(set) == 0 {
			next[holdFact{level: level, lockPos: op.pos}] = true
		}
		for f := range set {
			f.level = level
			f.lockPos = op.pos
			next[f] = true
		}
		out[op.key] = next
	case "Unlock", "RUnlock":
		if len(set) == 0 {
			// Never locked here: the caller's hold (the *Locked
			// convention); out of scope.
			return out
		}
		if report != nil {
			allReleased, allRead, allWrite := true, true, true
			for f := range set {
				if f.level != 0 {
					allReleased = false
				}
				if f.level != 1 {
					allRead = false
				}
				if f.level != 2 {
					allWrite = false
				}
			}
			switch {
			case allReleased:
				report(op.pos, "%s is already unlocked on every path reaching this %s (double unlock)", op.key, op.name)
			case op.name == "Unlock" && allRead:
				report(op.pos, "%s.Unlock() releases a read lock; use %s.RUnlock()", op.key, op.key)
			case op.name == "RUnlock" && allWrite:
				report(op.pos, "%s.RUnlock() releases a write lock; use %s.Unlock()", op.key, op.key)
			}
		}
		next := make(map[holdFact]bool)
		for f := range set {
			if f.level > 0 || f.level == -1 {
				f.level = 0
			}
			next[f] = true
		}
		out[op.key] = next
	}
	return out
}

// registerDefers records the unlocks a defer statement schedules: a direct
// defer mu.Unlock(), or a deferred closure whose body unlocks.
func registerDefers(p *Pass, d *ast.DeferStmt, s holdState) holdState {
	mark := func(op mutexOp) {
		set := s[op.key]
		if len(set) == 0 {
			set = map[holdFact]bool{{level: -1}: true}
		}
		next := make(map[holdFact]bool)
		for f := range set {
			switch op.name {
			case "Unlock":
				f.deferW = true
				f.deferWPos = op.pos
			case "RUnlock":
				f.deferR = true
				f.deferRPos = op.pos
			}
			next[f] = true
		}
		s[op.key] = next
	}
	if op, ok := mutexOpOf(p, d.Call); ok {
		mark(op)
		return s
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(x ast.Node) bool {
			if inner, ok := x.(*ast.FuncLit); ok && inner != fl {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok {
				if op, ok := mutexOpOf(p, call); ok {
					mark(op)
				}
			}
			return true
		})
	}
	return s
}

// usesTryLock reports whether body (excluding nested literals, which are
// analyzed separately) calls TryLock/TryRLock on any mutex.
func usesTryLock(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if op, ok := mutexOpOf(p, call); ok && (op.name == "TryLock" || op.name == "TryRLock") {
				found = true
			}
		}
		return !found
	})
	return found
}

// allFuncLits collects the function literals directly inside body (not
// nested in further literals).
func allFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok {
			out = append(out, fl)
			return false
		}
		return true
	})
	return out
}
