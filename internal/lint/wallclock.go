package lint

import (
	"go/ast"
)

// wallClockRestricted are the packages where simulation time (motion.Tick)
// must flow through parameters: the engine, the movement archive, and the
// index substrates. Reading the machine clock there either leaks
// nondeterminism into query answers or masks a missing tick parameter.
// Wall-clock *metering* (CPU cost measurement) goes through
// internal/stopwatch, which is the one approved wrapper.
var wallClockRestricted = map[string]bool{
	"pdr/internal/core":      true,
	"pdr/internal/history":   true,
	"pdr/internal/tprtree":   true,
	"pdr/internal/gridindex": true,
	"pdr/internal/bptree":    true,
	"pdr/internal/bxtree":    true,
}

// wallClockFuncs are the time-package functions that read the machine
// clock (or schedule against it).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// AnalyzerWallClock forbids reading the machine clock in simulation-time
// packages.
var AnalyzerWallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now and friends in simulation-time packages (core, history, indexes)",
	Run:  runWallClock,
}

func runWallClock(p *Pass) {
	if !wallClockRestricted[p.Path] {
		return
	}
	p.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !wallClockFuncs[sel.Sel.Name] {
			return true
		}
		pn := p.PkgNameOf(sel.X)
		if pn == nil || pn.Imported().Path() != "time" {
			return true
		}
		p.Reportf(sel.Pos(), "time.%s in simulation-time package %s; simulation time must flow through motion.Tick parameters (use internal/stopwatch for cost metering)", sel.Sel.Name, p.Path)
		return true
	})
}
