package lint

// Shared traversal machinery for the hotpath analyzer family (hotalloc,
// hotdefer, hotlock, hotiface, hotclock). These analyzers report only in
// functions reachable from a `// pdr:hot` root (Pass.Graph, built by
// internal/lint/callgraph), and most of their rules key on *loop depth*:
// code that runs once per call is fine, the same code once per element is
// a finding.

import (
	"bytes"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
)

// forEachHotFunc calls fn for every declared function of the pass that is
// reachable from a pdr:hot root. No-op when the pass has no call graph.
func forEachHotFunc(p *Pass, fn func(*ast.FuncDecl)) {
	if p.Graph == nil {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && p.HotFunc(fd) {
				fn(fd)
			}
		}
	}
}

// hotWalk traverses body pre-order, reporting for every node the enclosing
// loop statements (outermost first, innermost last) and the full ancestor
// stack (root first, n excluded). Loop depth counts only loops whose *body*
// encloses the node — a range expression or for-init runs once, not per
// iteration. Function-literal bodies restart at depth zero: a closure body
// runs per invocation of the closure, not per iteration of the loop that
// created it (and the call graph already marks the literal hot through its
// encloser). visit returning false prunes the subtree.
func hotWalk(body ast.Node, visit func(n ast.Node, loops []ast.Stmt, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		loops := enclosingLoops(stack, n)
		if !visit(n, loops, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingLoops extracts from the ancestor stack the loops whose body the
// path to n runs through, stopping at the innermost function literal.
func enclosingLoops(stack []ast.Node, n ast.Node) []ast.Stmt {
	var loops []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			break
		}
		next := n
		if i+1 < len(stack) {
			next = stack[i+1]
		}
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			if next == ast.Node(s.Body) {
				loops = append([]ast.Stmt{s}, loops...)
			}
		case *ast.RangeStmt:
			if next == ast.Node(s.Body) {
				loops = append([]ast.Stmt{s}, loops...)
			}
		}
	}
	return loops
}

// loopBoundVars collects the variables bound per-iteration by the given
// loops: range key/value identifiers and for-init defined variables.
func loopBoundVars(p *Pass, loops []ast.Stmt) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	addDef := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := p.Info.Defs[id].(*types.Var); ok {
			vars[v] = true
		}
		// Range/assign forms reusing an existing variable (Uses, not Defs):
		// the variable still changes per iteration.
		if v, ok := p.Info.Uses[id].(*types.Var); ok {
			vars[v] = true
		}
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.RangeStmt:
			if l.Key != nil {
				addDef(l.Key)
			}
			if l.Value != nil {
				addDef(l.Value)
			}
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					addDef(lhs)
				}
			}
		}
	}
	return vars
}

// dependsOnVars reports whether e mentions any of the given variables.
func dependsOnVars(p *Pass, e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// unconditionalInLoop reports whether the path from the innermost enclosing
// loop to n (per the ancestor stack) crosses no conditional construct — an
// operation that runs on *every* iteration, which is what makes hoisting it
// a pure win.
func unconditionalInLoop(stack []ast.Node, loops []ast.Stmt) bool {
	if len(loops) == 0 {
		return false
	}
	inner := loops[len(loops)-1]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == ast.Node(inner) {
			return true
		}
		switch stack[i].(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
			*ast.CaseClause, *ast.CommClause, *ast.FuncLit:
			return false
		}
	}
	return false
}

// renderNode formats an AST node back to source text (for fix edits; the
// result's indentation is normalized by the post-fix gofmt pass).
func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// objOf resolves an identifier to its variable object (definition or use).
func objOf(p *Pass, id *ast.Ident) *types.Var {
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := p.Info.Uses[id].(*types.Var)
	return v
}
