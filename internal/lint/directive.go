package lint

// AnalyzerDirective polices the suppression mechanism itself. Malformed
// lint:ignore comments (no analyzer, no reason) are always findings, and a
// well-formed directive that suppresses nothing — its line produces no
// finding from any analyzer it names — is reported as stale, so dead
// ignores cannot rot in the tree after the code they excused is fixed.
//
// The work happens in the runner's suppression pass (applyIgnores), which
// is the only place that can see whether a directive matched: this Run is
// intentionally empty. Registering the analyzer still matters — it puts
// "directive" in the -list inventory and makes `-only directive` a valid
// (if quiet) invocation, and staleness is only reported when every analyzer
// a directive names actually ran, so a partial `-only` run never calls a
// directive stale for lack of its analyzer.
var AnalyzerDirective = &Analyzer{
	Name: "directive",
	Doc:  "flags malformed lint:ignore comments and stale ones that suppress nothing",
	Run:  func(*Pass) {},
}
