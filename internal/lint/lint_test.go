package lint

import (
	"go/token"
	"path/filepath"
	"sync"
	"testing"
)

// testModule loads the real module once for every fixture check: fixtures
// impersonate module-local import paths, and their imports (pdr/internal/geom,
// sync, time, ...) resolve through the same loader pdrvet uses.
var testModule = sync.OnceValues(func() (*Module, error) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		return nil, err
	}
	return LoadModule(root)
})

// analyze type-checks src as a single-file package under the given import
// path and runs the named analyzers over it (plus ignore handling).
func analyze(t *testing.T, path, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	m, err := testModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	pkg, err := m.CheckSource(path, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatalf("checking fixture: %v", err)
	}
	return Run([]*Package{pkg}, analyzers)
}

// wantFindings asserts the number of diagnostics and that each carries the
// expected analyzer name.
func wantFindings(t *testing.T, diags []Diagnostic, analyzer string, n int) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), n, diags)
	}
	for _, d := range diags {
		if d.Analyzer != analyzer {
			t.Errorf("finding %v attributed to %q, want %q", d, d.Analyzer, analyzer)
		}
	}
}

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want int
	}{
		{"flags exact comparison", "pdr/internal/x", `package x
func f(a, b float64) bool { return a == b }
`, 1},
		{"flags not-equal too", "pdr/internal/x", `package x
func f(a, b float32) bool { return a != b }
`, 1},
		{"constant sentinel allowed", "pdr/internal/x", `package x
func f(a float64) bool { return a == 0 }
`, 0},
		{"integer comparison ignored", "pdr/internal/x", `package x
func f(a, b int) bool { return a == b }
`, 0},
		{"approved epsilon helper exempt", "pdr/internal/geom", `package geom
func ApproxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return false
}
`, 0},
		{"trailing ignore suppresses", "pdr/internal/x", `package x
func f(a, b float64) bool {
	return a == b // lint:ignore floateq test fixture
}
`, 0},
		{"standalone ignore suppresses next line", "pdr/internal/x", `package x
func f(a, b float64) bool {
	// lint:ignore floateq test fixture reason
	// that wraps over two comment lines.
	return a == b
}
`, 0},
		{"ignore for another analyzer does not suppress", "pdr/internal/x", `package x
func f(a, b float64) bool {
	return a == b // lint:ignore wallclock wrong analyzer
}
`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, AnalyzerFloatEq), "floateq", tc.want)
		})
	}
}

func TestHalfOpen(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want int
	}{
		{"flags Rect literal outside geom", "pdr/internal/x", `package x
import "pdr/internal/geom"
var r = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
`, 1},
		{"constructor allowed", "pdr/internal/x", `package x
import "pdr/internal/geom"
var r = geom.NewRect(0, 0, 1, 1)
`, 0},
		{"inside geom exempt", "pdr/internal/geom", `package geom
type Rect struct{ MinX, MinY, MaxX, MaxY float64 }
var r = Rect{MinX: 0, MaxX: 1}
`, 0},
		{"ignore suppresses", "pdr/internal/x", `package x
import "pdr/internal/geom"
// lint:ignore halfopen test fixture
var r = geom.Rect{MinX: 0, MaxX: 1}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, AnalyzerHalfOpen), "halfopen", tc.want)
		})
	}
}

func TestLocked(t *testing.T) {
	const structDecl = `package x
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
`
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"flags unlocked access", structDecl + `
func (s *S) Bad() int { return s.n }
`, 1},
		{"lock before access allowed", structDecl + `
func (s *S) Good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
`, 0},
		{"RLock counts", `package x
import "sync"
type S struct {
	mu sync.RWMutex
	n  int // guarded by mu
}
func (s *S) Good() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}
`, 0},
		{"Locked suffix exempt", structDecl + `
func (s *S) ReadLocked() int { return s.n }
`, 0},
		{"unguarded field ignored", `package x
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func (s *S) Free() int { return s.n }
`, 0},
		{"ignore suppresses", structDecl + `
func (s *S) Escape() int {
	return s.n // lint:ignore locked test fixture
}
`, 0},
		// The engine's fan-out shape: take the read lock once, then spawn
		// workers whose closures read guarded state. The analyzer must
		// accept this (accesses inside the goroutine literals are textually
		// after the RLock in the same body).
		{"worker-pool fan-out under read lock allowed", `package x
import "sync"
type S struct {
	mu    sync.RWMutex
	items []int // guarded by mu
}
func (s *S) Sum() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	parts := make([]int, len(s.items))
	var wg sync.WaitGroup
	for i := range s.items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i] = s.items[i]
		}(i)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += p
	}
	return total
}
`, 0},
		// The same fan-out with the lock forgotten: the guarded access
		// inside the worker closure must still be flagged.
		{"worker-pool fan-out without lock flagged", `package x
import "sync"
type S struct {
	mu    sync.RWMutex
	items []int // guarded by mu
}
func (s *S) Broken() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.items
		}()
	}
	wg.Wait()
}
`, 1},
		// The result cache's sharded-mutex convention (internal/cache): every
		// shard owns its mu plus "guarded by mu" fields, lookups lock the
		// shard's own mu, and mutation helpers are *Locked methods invoked
		// under it. These fixtures pin that the analyzer holds shard methods
		// to the same discipline as any other receiver.
		{"sharded: shard method locking its own mu allowed", `package x
import "sync"
type shard struct {
	mu      sync.Mutex
	entries map[int]int // guarded by mu
}
func (sh *shard) get(k int) (int, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.entries[k]
	return v, ok
}
`, 0},
		{"sharded: shard method without lock flagged", `package x
import "sync"
type shard struct {
	mu      sync.Mutex
	entries map[int]int // guarded by mu
}
func (sh *shard) peek(k int) int { return sh.entries[k] }
`, 1},
		{"sharded: shard Locked helper exempt", `package x
import "sync"
type shard struct {
	mu      sync.Mutex
	entries map[int]int // guarded by mu
	bytes   int64       // guarded by mu
}
func (sh *shard) storeLocked(k, v int) {
	sh.entries[k] = v
	sh.bytes += 8
}
`, 0},
		// Accesses through a local shard variable are outside the analyzer's
		// receiver-based scope: the convention compensates by keeping every
		// guarded mutation inside the shard's own methods (checked above), so
		// the outer type only ever locks sh.mu and calls *Locked helpers.
		{"sharded: outer access via local shard out of scope", `package x
import "sync"
type shard struct {
	mu      sync.Mutex
	entries map[int]int // guarded by mu
}
type sharded struct {
	shards [4]*shard
}
func (c *sharded) get(k int) (int, bool) {
	sh := c.shards[k%4]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.entries[k]
	return v, ok
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerLocked), "locked", tc.want)
		})
	}
}

func TestWallClock(t *testing.T) {
	const clockSrc = `package core
import "time"
func f() time.Time { return time.Now() }
`
	cases := []struct {
		name string
		path string
		src  string
		want int
	}{
		{"flags time.Now in core", "pdr/internal/core", clockSrc, 1},
		{"flags time.Since in an index", "pdr/internal/bptree", `package bptree
import "time"
func f(t0 time.Time) time.Duration { return time.Since(t0) }
`, 1},
		{"unrestricted package allowed", "pdr/internal/x", clockSrc, 0},
		{"duration arithmetic allowed", "pdr/internal/core", `package core
import "time"
func f(d time.Duration) time.Duration { return 2 * d }
`, 0},
		{"ignore suppresses", "pdr/internal/core", `package core
import "time"
func f() time.Time {
	return time.Now() // lint:ignore wallclock test fixture
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, AnalyzerWallClock), "wallclock", tc.want)
		})
	}
}

func TestRandSeed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"flags global draw", `package x
import "math/rand"
func f() int { return rand.Int() }
`, 1},
		{"seeded generator allowed", `package x
import "math/rand"
func f() *rand.Rand { return rand.New(rand.NewSource(1)) }
`, 0},
		{"type reference allowed", `package x
import "math/rand"
func f(r *rand.Rand) float64 { return r.Float64() }
`, 0},
		{"ignore suppresses", `package x
import "math/rand"
func f() int {
	return rand.Int() // lint:ignore randseed test fixture
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "pdr/internal/x", tc.src, AnalyzerRandSeed), "randseed", tc.want)
		})
	}
}

func TestErrCheckLite(t *testing.T) {
	const dropSrc = `package service
import (
	"encoding/json"
	"fmt"
	"io"
)
func f(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v)
	fmt.Fprintln(w, "x")
}
`
	cases := []struct {
		name string
		path string
		src  string
		want int
	}{
		{"flags dropped Encode and Fprintln", "pdr/internal/service", dropSrc, 2},
		{"blank assignment acknowledged", "pdr/internal/service", `package service
import (
	"encoding/json"
	"io"
)
func f(w io.Writer, v any) {
	_ = json.NewEncoder(w).Encode(v)
}
`, 0},
		{"handled error allowed", "pdr/internal/wire", `package wire
import "io"
func f(w io.Writer) error {
	_, err := w.Write([]byte("x"))
	return err
}
`, 0},
		{"unrestricted package allowed", "pdr/internal/x", dropSrc, 0},
		{"ignore suppresses", "pdr/internal/experiments", `package experiments
import (
	"fmt"
	"io"
)
func f(w io.Writer) {
	fmt.Fprintln(w, "x") // lint:ignore errchecklite test fixture
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, AnalyzerErrCheckLite), "errchecklite", tc.want)
		})
	}
}

func TestPanicPrefix(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want int
	}{
		{"flags unprefixed panic", "pdr/internal/bptree", `package bptree
func f() { panic("boom") }
`, 1},
		{"prefixed literal allowed", "pdr/internal/bptree", `package bptree
func f() { panic("bptree: boom") }
`, 0},
		{"prefixed Sprintf allowed", "pdr/internal/bxtree", `package bxtree
import "fmt"
func f(n int) { panic(fmt.Sprintf("bxtree: phase %d underflow", n)) }
`, 0},
		{"wrong-package prefix flagged", "pdr/internal/gridindex", `package gridindex
func f() { panic("tprtree: boom") }
`, 1},
		{"dynamic message left to humans", "pdr/internal/bptree", `package bptree
func f(err error) { panic(err) }
`, 0},
		{"unrestricted package allowed", "pdr/internal/x", `package x
func f() { panic("boom") }
`, 0},
		{"concatenation checks left spine", "pdr/internal/tprtree", `package tprtree
func f(msg string) { panic("tprtree: " + msg) }
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, AnalyzerPanicPrefix), "panicprefix", tc.want)
		})
	}
}

func TestMetricName(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want int
	}{
		{"flags missing pdr prefix", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
func f(reg *telemetry.Registry) { reg.Counter("http_requests_total", "help") }
`, 1},
		{"flags camel case", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
func f(reg *telemetry.Registry) { reg.Gauge("pdr_poolPages", "help") }
`, 1},
		{"flags bare prefix", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
func f(reg *telemetry.Registry) { reg.Counter("pdr", "help") }
`, 1},
		{"flags trailing underscore", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
func f(reg *telemetry.Registry) { reg.Histogram("pdr_query_seconds_", "help", nil) }
`, 1},
		{"well-formed name allowed", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
func f(reg *telemetry.Registry) {
	reg.Counter("pdr_engine_queries_total", "help")
	reg.Histogram("pdr_http_request_seconds", "help", nil)
	reg.GaugeFunc("pdr_pool_hit_ratio", "help", func() float64 { return 0 })
}
`, 0},
		{"constant expression resolved", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
const prefix = "pdr_engine"
func f(reg *telemetry.Registry) { reg.Counter(prefix+"_Bad", "help") }
`, 1},
		{"dynamic name left to runtime check", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
func f(reg *telemetry.Registry, name string) { reg.Counter(name, "help") }
`, 0},
		{"unrelated Counter method ignored", "pdr/internal/x", `package x
type Registry struct{}
func (*Registry) Counter(name, help string) {}
func f(reg *Registry) { reg.Counter("whatever", "help") }
`, 0},
		{"ignore suppresses", "pdr/internal/x", `package x
import "pdr/internal/telemetry"
func f(reg *telemetry.Registry) {
	reg.Counter("bad_name", "help") // lint:ignore metricname test fixture
}
`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, AnalyzerMetricName), "metricname", tc.want)
		})
	}
}

func TestMalformedIgnoreDirective(t *testing.T) {
	diags := analyze(t, "pdr/internal/x", `package x
func f(a, b float64) bool {
	return a == b // lint:ignore floateq
}
`, AnalyzerFloatEq, AnalyzerDirective)
	// The reason-less directive does not suppress, and is itself reported.
	var directive, floateq int
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			directive++
		case "floateq":
			floateq++
		}
	}
	if directive != 1 || floateq != 1 {
		t.Fatalf("got %d directive + %d floateq findings, want 1 + 1:\n%v", directive, floateq, diags)
	}
}

func TestMalformedIgnoreSilentWithoutDirectiveAnalyzer(t *testing.T) {
	// Under `-only floateq` the directive analyzer is not in the running
	// set, so no finding may carry its name — the malformed directive still
	// fails to suppress, but is not itself reported.
	diags := analyze(t, "pdr/internal/x", `package x
func f(a, b float64) bool {
	return a == b // lint:ignore floateq
}
`, AnalyzerFloatEq)
	wantFindings(t, diags, "floateq", 1)
}

func TestIgnoreAll(t *testing.T) {
	diags := analyze(t, "pdr/internal/core", `package core
import "time"
func f(a, b float64) bool {
	return a == b && time.Now().IsZero() // lint:ignore all test fixture
}
`, AnalyzerFloatEq, AnalyzerWallClock)
	wantFindings(t, diags, "", 0)
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"floateq", "wallclock"})
	if err != nil || len(as) != 2 {
		t.Fatalf("ByName(floateq,wallclock) = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName(nosuch) did not error")
	}
}

// TestSuiteIsClean runs the full analyzer suite over the real module — the
// committed tree must stay finding-free (the same gate scripts/check.sh
// enforces via cmd/pdrvet).
func TestSuiteIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	m, err := testModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	pkgs, errs := m.LoadAll()
	if len(errs) > 0 {
		t.Fatalf("loading packages: %v", errs)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

func TestDiagnosticOrderIsDeterministic(t *testing.T) {
	// Regression: findings sort by (package, file, line, col, analyzer,
	// message) so repeated runs and CI diffs are byte-stable regardless of
	// package load order or analyzer scheduling.
	mk := func(pkg, file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pkg:      pkg,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
		}
	}
	want := []Diagnostic{
		mk("pdr/internal/a", "a.go", 1, 1, "floateq", "x"),
		mk("pdr/internal/a", "a.go", 1, 1, "locked", "x"),
		mk("pdr/internal/a", "a.go", 1, 2, "floateq", "x"),
		mk("pdr/internal/a", "a.go", 2, 1, "floateq", "x"),
		mk("pdr/internal/a", "b.go", 1, 1, "floateq", "x"),
		mk("pdr/internal/b", "a.go", 1, 1, "floateq", "x"),
		mk("pdr/internal/b", "a.go", 1, 1, "floateq", "y"),
	}
	got := make([]Diagnostic, len(want))
	for i, j := range []int{6, 3, 0, 5, 2, 4, 1} {
		got[i] = want[j]
	}
	sortDiags(got)
	for i := range want {
		if got[i].String() != want[i].String() || got[i].Pkg != want[i].Pkg || got[i].Message != want[i].Message {
			t.Fatalf("position %d: got %s (pkg %s, msg %s), want %s (pkg %s, msg %s)",
				i, got[i], got[i].Pkg, got[i].Message, want[i], want[i].Pkg, want[i].Message)
		}
	}
}
