package lint

import (
	"os"
	"sync"
	"testing"
)

// TestRaceReproRLockWrite proves the locked analyzer's central claim with
// the runtime race detector instead of static reasoning: a write to a
// guarded field while holding only the read lock is a real data race, not
// a style nit. The body is exactly the shape locked v2 flags (see the
// "write under RLock flagged" fixture in locked_v2_test.go).
//
// The test is gated on PDR_RACE_REPRO=1 because its success criterion is
// inverted: under `go test -race` it MUST fail with a race report.
// scripts/check.sh runs it that way and treats a passing run as the error.
// Test files are not analyzed by pdrvet, so the deliberate race cannot
// trip TestSuiteIsClean.
func TestRaceReproRLockWrite(t *testing.T) {
	if os.Getenv("PDR_RACE_REPRO") != "1" {
		t.Skip("deliberate data race; set PDR_RACE_REPRO=1 and run with -race to reproduce")
	}
	var s struct {
		mu sync.RWMutex
		n  int // guarded by mu
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.mu.RLock()
				s.n++ // write under the read lock: concurrent writers race
				s.mu.RUnlock()
			}
		}()
	}
	wg.Wait()
	if s.n == -1 {
		t.Fatal("unreachable; keeps s.n live")
	}
}
