package lint

// Shared lock-state machinery for the flow-aware concurrency analyzers
// (locked, deferunlock, atomicmix). Mutexes are identified by the textual
// key of the expression they are locked through ("s.mu", "sh.mu",
// "c.shards[i].mu"): intra-procedural, purely syntactic aliasing, which is
// exactly the discipline the tree follows — a shard is picked once into a
// local and locked through that local.

import (
	"go/ast"
	"go/token"
	"go/types"

	"pdr/internal/lint/cfg"
)

// lockState maps a mutex key to the lock level held on *every* path
// reaching a program point: 1 read-locked, 2 write-locked. Absent means not
// (provably) held. The join of two states is the pointwise minimum, so a
// lock held on only one branch is not held after the merge.
type lockState map[string]int

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinLockStates(a, b lockState) lockState {
	out := make(lockState)
	for k, av := range a {
		if bv, ok := b[k]; ok {
			if bv < av {
				out[k] = bv
			} else {
				out[k] = av
			}
		}
	}
	return out
}

func equalLockStates(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || bv != av {
			return false
		}
	}
	return true
}

// mutexOp is one Lock/Unlock-family call on a trackable mutex expression.
type mutexOp struct {
	key  string // exprKey of the mutex expression, e.g. "s.mu"
	name string // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
	pos  token.Pos
}

// mutexOpOf recognizes call as a mutex operation: a Lock/RLock/Unlock/
// RUnlock/TryLock/TryRLock method call whose receiver is a sync.Mutex or
// sync.RWMutex reachable through a trackable expression chain.
func mutexOpOf(p *Pass, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return mutexOp{}, false
	}
	if !isMutex(derefType(p.TypeOf(sel.X))) {
		return mutexOp{}, false
	}
	key := exprKey(sel.X)
	if key == "" {
		return mutexOp{}, false
	}
	return mutexOp{key: key, name: sel.Sel.Name, pos: call.Pos()}, true
}

// derefType unwraps one level of pointer (fields may hold *sync.Mutex).
func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// exprKey renders a trackable expression chain as a stable string:
// identifiers, field selections, parens, derefs, and constant-or-trackable
// index expressions. Untrackable shapes (call results, literals) yield "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	case *ast.IndexExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		var idx string
		if lit, ok := e.Index.(*ast.BasicLit); ok {
			idx = lit.Value
		} else {
			idx = exprKey(e.Index)
		}
		if idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	}
	return ""
}

// rootIdent returns the base identifier of a selector/index/deref chain, or
// "" when the chain does not bottom out in a plain identifier.
func rootIdent(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t.Name
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return ""
			}
			e = t.X
		default:
			return ""
		}
	}
}

// apply advances the state across one mutex operation. The receiver is not
// mutated (predecessor facts are shared); a copy is returned.
func (s lockState) apply(op mutexOp) lockState {
	out := s.clone()
	switch op.name {
	case "Lock":
		out[op.key] = 2
	case "RLock":
		if out[op.key] < 1 {
			out[op.key] = 1
		}
	case "Unlock":
		delete(out, op.key)
	case "RUnlock":
		// Dropping a read hold; a write hold (mismatched RUnlock, which
		// deferunlock reports) is conservatively kept.
		if out[op.key] == 1 {
			delete(out, op.key)
		}
	}
	// TryLock/TryRLock succeed only conditionally; they never strengthen
	// the must-hold state.
	return out
}

// stepLockState advances the lock state across one CFG node. Function
// literal bodies are opaque (they run elsewhere) and deferred statements do
// not change mid-body state (a deferred unlock runs on the way out, after
// every node of the body).
func stepLockState(p *Pass, n ast.Node, in lockState) lockState {
	out := in
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := mutexOpOf(p, x); ok {
				out = out.apply(op)
			}
		}
		return true
	})
	return out
}

// lockFlow converges the lock-state dataflow over g starting from entry.
func lockFlow(p *Pass, g *cfg.Graph, entry lockState) *cfg.Result[lockState] {
	return cfg.Run(g, &cfg.Analysis[lockState]{
		Entry: entry,
		Join:  joinLockStates,
		Equal: equalLockStates,
		Transfer: func(b *cfg.Block, in lockState) lockState {
			for _, n := range b.Nodes {
				in = stepLockState(p, n, in)
			}
			return in
		},
	})
}

// markWriteChain marks every field selection an lvalue chain writes
// through: s.f, s.cfg.name, s.items[i], *s.ptr. Index subscripts are reads
// and are not descended into.
func markWriteChain(e ast.Expr, w map[ast.Expr]bool) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			w[t] = true
			e = t.X
		default:
			return
		}
	}
}

// writeSelectors collects the field selections written by n: assignment
// left-hand sides, ++/--, address-taking (&x.f escapes to writers), and
// delete's map argument. Function literal bodies are excluded.
func writeSelectors(n ast.Node) map[ast.Expr]bool {
	w := make(map[ast.Expr]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				for _, l := range x.Lhs {
					markWriteChain(l, w)
				}
			}
		case *ast.IncDecStmt:
			markWriteChain(x.X, w)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markWriteChain(x.X, w)
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				markWriteChain(x.Args[0], w)
			}
		}
		return true
	})
	return w
}

// topFuncLits returns the function literals occurring directly in n, not
// nested inside another literal (recursion handles those).
func topFuncLits(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(n, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok {
			out = append(out, fl)
			return false
		}
		return true
	})
	return out
}

// guardedFieldSel reports whether sel selects a "guarded by mu" field of a
// struct declared in this package, returning the owning struct's name.
func guardedFieldSel(p *Pass, guarded map[string]map[string]bool, sel *ast.SelectorExpr) (string, bool) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	named, ok := types.Unalias(derefType(s.Recv())).(*types.Named)
	if !ok || named.Obj().Pkg() != p.Pkg {
		return "", false
	}
	fields, ok := guarded[named.Obj().Name()]
	if !ok || !fields[sel.Sel.Name] {
		return "", false
	}
	return named.Obj().Name(), true
}

// ownedIdents returns the local identifiers bound to freshly constructed
// values of guarded struct types (x := T{...} / x := &T{...}): until such a
// value is shared, its owner may touch guarded fields without the lock —
// the constructor idiom (service.New wiring s.mon before returning s).
func ownedIdents(p *Pass, guarded map[string]map[string]bool, body *ast.BlockStmt) map[string]bool {
	owned := make(map[string]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			r := as.Rhs[i]
			if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.AND {
				r = u.X
			}
			cl, ok := r.(*ast.CompositeLit)
			if !ok {
				continue
			}
			named, ok := types.Unalias(derefType(p.TypeOf(cl))).(*types.Named)
			if !ok || named.Obj().Pkg() != p.Pkg {
				continue
			}
			if _, ok := guarded[named.Obj().Name()]; ok {
				owned[id.Name] = true
			}
		}
		return true
	})
	return owned
}
