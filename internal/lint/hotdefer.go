package lint

import (
	"go/ast"
)

// AnalyzerHotDefer reports defer statements inside loops of hot-reachable
// functions: each iteration pushes a new deferred call that only runs when
// the whole function returns, so a hot loop both pays the per-defer cost
// and accumulates an unbounded defer stack (a Lock/defer-Unlock pair in a
// loop additionally holds every lock until return). The adjacent
// `x.Lock(); defer x.Unlock()` shape, when the mutex does not depend on
// the loop variables, carries an auto-fix that hoists the pair above the
// loop.
var AnalyzerHotDefer = &Analyzer{
	Name:          "hotdefer",
	Doc:           "reports defer inside hot-path loops (per-iteration defer cost, unbounded defer stack)",
	Run:           runHotDefer,
	UsesCallGraph: true,
}

func runHotDefer(p *Pass) {
	forEachHotFunc(p, func(fd *ast.FuncDecl) {
		hotWalk(fd.Body, func(n ast.Node, loops []ast.Stmt, stack []ast.Node) bool {
			ds, ok := n.(*ast.DeferStmt)
			if !ok || len(loops) == 0 {
				return true
			}
			if fix, ok := deferHoistFix(p, ds, loops, stack); ok {
				p.ReportFixf(ds.Pos(), fix, "defer inside a hot loop runs only at function return; hoist the Lock/defer-Unlock pair above the loop")
				return true
			}
			p.Reportf(ds.Pos(), "defer inside a hot loop runs only at function return and costs per iteration; restructure (extract the body into a function, or release resources explicitly)")
			return true
		})
	})
}

// deferHoistFix recognizes the hoistable shape: the defer is a mutex
// Unlock/RUnlock immediately preceded by the matching Lock/RLock, both
// direct statements of the innermost loop's body, with a mutex expression
// that does not depend on any loop-bound variable. The fix deletes the
// pair from the loop body and re-inserts it before the outermost loop the
// pair is invariant in (here: the innermost loop, the conservative choice).
func deferHoistFix(p *Pass, ds *ast.DeferStmt, loops []ast.Stmt, stack []ast.Node) (SuggestedFix, bool) {
	unlockOp, ok := mutexOpOf(p, ds.Call)
	if !ok || (unlockOp.name != "Unlock" && unlockOp.name != "RUnlock") {
		return SuggestedFix{}, false
	}
	inner := loops[len(loops)-1]
	var body *ast.BlockStmt
	switch l := inner.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	// Both statements must sit directly in the loop body, adjacent, Lock
	// first.
	if len(stack) == 0 || stack[len(stack)-1] != ast.Node(body) {
		return SuggestedFix{}, false
	}
	var lockStmt *ast.ExprStmt
	for i, s := range body.List {
		if s != ast.Stmt(ds) || i == 0 {
			continue
		}
		es, ok := body.List[i-1].(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		lockOp, ok := mutexOpOf(p, call)
		if !ok || lockOp.key != unlockOp.key {
			continue
		}
		if (lockOp.name == "Lock" && unlockOp.name == "Unlock") ||
			(lockOp.name == "RLock" && unlockOp.name == "RUnlock") {
			lockStmt = es
		}
		break
	}
	if lockStmt == nil {
		return SuggestedFix{}, false
	}
	// The mutex must be loop-invariant: independent of every variable any
	// enclosing loop binds per iteration.
	sel := ds.Call.Fun.(*ast.SelectorExpr) // shape guaranteed by mutexOpOf
	if dependsOnVars(p, sel.X, loopBoundVars(p, loops)) {
		return SuggestedFix{}, false
	}
	// The pair must be the loop body's only use of this mutex — hoisting
	// next to another acquisition of the same mutex would self-deadlock.
	ops := 0
	ast.Inspect(body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if op, ok := mutexOpOf(p, call); ok && op.key == unlockOp.key {
				ops++
			}
		}
		return true
	})
	if ops != 2 {
		return SuggestedFix{}, false
	}
	lockText := renderNode(p.Fset, lockStmt)
	deferText := renderNode(p.Fset, ds)
	if lockText == "" || deferText == "" {
		return SuggestedFix{}, false
	}
	return SuggestedFix{
		Message: "hoist " + lockText + " and " + deferText + " above the loop",
		Edits: []FixEdit{
			p.EditRange(inner.Pos(), inner.Pos(), lockText+"\n"+deferText+"\n"),
			p.EditRange(lockStmt.Pos(), ds.End(), ""),
		},
	}, true
}
