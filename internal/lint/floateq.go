package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// approvedEpsilonFuncs are functions allowed to compare floats exactly:
// the epsilon helpers themselves (which need bit-exact shortcuts for
// infinities and signed zeros) and canonical-form predicates whose whole
// point is bit equality.
var approvedEpsilonFuncs = map[string]bool{
	"pdr/internal/geom.ApproxEq":     true,
	"pdr/internal/geom.ApproxEqRect": true,
}

// AnalyzerFloatEq flags == and != between non-constant floating-point
// expressions. Density thresholds and half-open rectangle boundaries are
// accumulated through repeated arithmetic, so exact equality silently
// corrupts boundary-inclusion decisions; use geom.ApproxEq or restructure.
// Comparisons where either operand is an untyped or declared constant are
// allowed: `x == 0` is the idiomatic "field unset / sentinel" test and
// changing it to an epsilon test would alter semantics.
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags exact ==/!= between non-constant float expressions",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && approvedEpsilonFuncs[p.Path+"."+fd.Name.Name] {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.TypeOf(be.X)) || !isFloat(p.TypeOf(be.Y)) {
					return true
				}
				if isConstExpr(p, be.X) || isConstExpr(p, be.Y) {
					return true
				}
				p.Reportf(be.OpPos, "exact float comparison (%s); use geom.ApproxEq or compare against a constant sentinel", be.Op)
				return true
			})
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
