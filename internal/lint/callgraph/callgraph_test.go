package callgraph_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"pdr/internal/lint/callgraph"
)

// buildFixture type-checks one synthetic package and builds its call graph.
func buildFixture(t *testing.T, src string) *callgraph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fix", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	return callgraph.Build(fset, []callgraph.Unit{{
		Path:  "fix",
		Files: []*ast.File{file},
		Pkg:   pkg,
		Info:  info,
	}})
}

// nodeByName finds a node by its printable name.
func nodeByName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %q not in graph; have %d nodes", name, len(g.Nodes))
	return nil
}

func TestHotPropagatesTransitively(t *testing.T) {
	g := buildFixture(t, `package fix

// Entry is the query entry point.
// pdr:hot
func Entry() { middle() }

func middle() { leaf() }

func leaf() {}

func unreached() { leaf() }
`)
	for name, wantHot := range map[string]bool{
		"fix.Entry":     true,
		"fix.middle":    true,
		"fix.leaf":      true,
		"fix.unreached": false,
	} {
		if got := nodeByName(t, g, name).Hot; got != wantHot {
			t.Errorf("%s: Hot = %v, want %v", name, got, wantHot)
		}
	}
	if !nodeByName(t, g, "fix.Entry").Root {
		t.Errorf("fix.Entry should be a root")
	}
	if nodeByName(t, g, "fix.middle").Root {
		t.Errorf("fix.middle must not be a root")
	}
}

func TestMethodCallResolvesViaReceiver(t *testing.T) {
	g := buildFixture(t, `package fix

type server struct{}

func (s *server) run() { s.step() }

func (s *server) step() {}

// pdr:hot
func Entry() {
	var s server
	s.run()
}
`)
	for _, name := range []string{"fix.(*server).run", "fix.(*server).step"} {
		if !nodeByName(t, g, name).Hot {
			t.Errorf("%s should be hot via resolved method calls", name)
		}
	}
}

func TestMethodValueAndFuncValueTrackedFlowInsensitively(t *testing.T) {
	g := buildFixture(t, `package fix

type server struct{}

func (s *server) work() {}

func helper() {}

func call(f func()) { f() }

// pdr:hot
func Entry(s *server) {
	f := s.work // method value: edge Entry -> (*server).work
	call(f)
	call(helper) // function value as argument: edge Entry -> helper
}
`)
	for _, name := range []string{"fix.(*server).work", "fix.helper", "fix.call"} {
		if !nodeByName(t, g, name).Hot {
			t.Errorf("%s should be hot via value-reference edges", name)
		}
	}
	// call() invokes its parameter: that is a dynamic site, not an edge.
	callNode := nodeByName(t, g, "fix.call")
	if len(callNode.Dynamic) != 1 {
		t.Errorf("fix.call: %d dynamic sites, want 1 (the f() invocation)", len(callNode.Dynamic))
	}
	if len(callNode.Calls) != 0 {
		t.Errorf("fix.call: unexpected resolved edges %v", names(callNode.Calls))
	}
}

func TestFuncLitIsOwnNodeAndInheritsHot(t *testing.T) {
	g := buildFixture(t, `package fix

func leaf() {}

// pdr:hot
func Entry() {
	f := func() { leaf() }
	f()
}

func cold() {
	g := func() { leaf() }
	g()
}
`)
	lit := nodeByName(t, g, "fix.Entry$1")
	if !lit.Hot {
		t.Errorf("literal inside hot Entry should be hot")
	}
	if !nodeByName(t, g, "fix.leaf").Hot {
		t.Errorf("leaf called from hot literal should be hot")
	}
	if nodeByName(t, g, "fix.cold$1").Hot {
		t.Errorf("literal inside cold function must stay cold")
	}
}

func TestInterfaceCallIsDynamicFallback(t *testing.T) {
	g := buildFixture(t, `package fix

type runner interface{ run() }

type impl struct{}

func (impl) run() { leaf() }

func leaf() {}

// pdr:hot
func Entry(r runner) { r.run() }
`)
	entry := nodeByName(t, g, "fix.Entry")
	if len(entry.Dynamic) != 1 {
		t.Fatalf("Entry: %d dynamic sites, want 1 (interface dispatch)", len(entry.Dynamic))
	}
	// The implementation is NOT resolved through the interface: this is the
	// documented blind spot that -graph surfaces.
	if nodeByName(t, g, "fix.(impl).run").Hot {
		t.Errorf("impl.run must not be hot: interface dispatch is unresolved")
	}
	if nodeByName(t, g, "fix.leaf").Hot {
		t.Errorf("leaf must stay cold behind the unresolved interface call")
	}
}

func TestConversionsAndBuiltinsAreNotCalls(t *testing.T) {
	g := buildFixture(t, `package fix

type id int

// pdr:hot
func Entry(xs []int) int {
	ys := make([]id, 0, len(xs))
	for _, x := range xs {
		ys = append(ys, id(x))
	}
	return len(ys)
}
`)
	entry := nodeByName(t, g, "fix.Entry")
	if len(entry.Dynamic) != 0 {
		t.Errorf("Entry: conversions/builtins misclassified as dynamic: %d sites", len(entry.Dynamic))
	}
	if len(entry.Calls) != 0 {
		t.Errorf("Entry: unexpected resolved edges %v", names(entry.Calls))
	}
}

func TestDumpIsStableAndMarked(t *testing.T) {
	src := `package fix

// pdr:hot
func Entry() { step() }

func step() {}

func lonely() {}
`
	g := buildFixture(t, src)
	var a, b strings.Builder
	if err := g.Dump(&a); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if err := buildFixture(t, src).Dump(&b); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("Dump is not deterministic:\n--- first\n%s--- second\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"root fix.Entry",
		"-> fix.step",
		"hot  fix.step",
		"1 roots, 2 hot",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fix.lonely") {
		t.Errorf("Dump should elide cold leaf nodes:\n%s", out)
	}
}

func names(ns []*callgraph.Node) []string {
	out := make([]string, 0, len(ns))
	for _, n := range ns {
		out = append(out, n.Name)
	}
	return out
}
