// Package callgraph builds a type-informed static call graph over the
// module's packages, stdlib-only, for pdrvet's hot-path analyzer family.
//
// Nodes are the module's declared functions and methods plus every function
// literal (a closure runs where it is invoked, so it is its own node).
// Edges are resolved statically:
//
//   - direct calls to package-level functions (pkg.F, local F);
//   - method calls resolved through the receiver's named type (s.Method on a
//     concrete *Server resolves to (*Server).Method);
//   - function-literal and method-value *occurrences*, tracked
//     flow-insensitively: a literal or method value that appears anywhere in
//     a function body (assigned, passed as an argument, returned) gets an
//     edge from the enclosing function, because the enclosing context may
//     cause it to run. This over-approximates reachability, which is the
//     safe direction for a lint that asks "could this execute on the hot
//     path?".
//
// Calls the graph cannot resolve — through func-typed variables and fields,
// or through interface methods — are recorded per node as dynamic call
// sites rather than silently dropped, so `pdrvet -graph` shows exactly
// where static reachability is blind.
//
// Hot roots are functions whose doc comment carries a line containing the
// `pdr:hot` directive. Reachability propagates from the roots over the
// resolved edges; Node.Hot marks the transitive closure.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// HotDirective is the doc-comment marker that declares a hot root.
const HotDirective = "pdr:hot"

// Unit is one type-checked package handed to Build.
type Unit struct {
	// Path is the package import path.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Node is one function, method, or function literal of the module.
type Node struct {
	// Obj is the declared function or method; nil for function literals.
	Obj *types.Func
	// Lit is the function literal; nil for declared functions.
	Lit *ast.FuncLit
	// Decl is the declaration carrying the body (nil for literals).
	Decl *ast.FuncDecl
	// Name is the printable identity: "pdr/internal/core.(*Server).Snapshot"
	// or "pdr/internal/sweep.DenseRects$1" for the first literal inside
	// DenseRects.
	Name string
	// Pos locates the declaration or literal.
	Pos token.Pos
	// Root marks a pdr:hot annotated function.
	Root bool
	// Hot marks functions reachable from a root (roots included).
	Hot bool
	// Calls are the resolved static out-edges, deduplicated, in first-seen
	// (source) order.
	Calls []*Node
	// Dynamic are call sites this graph could not resolve statically
	// (func-typed values, interface method calls), in source order.
	Dynamic []token.Pos
}

// Graph is the module call graph.
type Graph struct {
	Fset  *token.FileSet
	Nodes []*Node

	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// FuncNode returns the node of a declared function, or nil.
func (g *Graph) FuncNode(fn *types.Func) *Node { return g.byObj[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// HotFunc reports whether the declared function fn is hot-reachable.
func (g *Graph) HotFunc(fn *types.Func) bool {
	n := g.byObj[fn]
	return n != nil && n.Hot
}

// Build constructs the call graph over the given units. All units must share
// fset. Node order is deterministic: units in the given order, files in
// parse order, declarations in source order, literals right after their
// encloser in source order.
func Build(fset *token.FileSet, units []Unit) *Graph {
	g := &Graph{
		Fset:  fset,
		byObj: make(map[*types.Func]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}

	// Pass 1: a node per declared function/method and per function literal.
	type declBody struct {
		node *Node
		body *ast.BlockStmt
		unit *Unit
	}
	var bodies []declBody
	for i := range units {
		u := &units[i]
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := u.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &Node{
					Obj:  obj,
					Decl: fd,
					Name: funcName(u.Path, obj),
					Pos:  fd.Pos(),
					Root: hasHotDirective(fd.Doc),
				}
				g.Nodes = append(g.Nodes, n)
				g.byObj[obj] = n
				bodies = append(bodies, declBody{n, fd.Body, u})
				// Literal nodes, numbered in source order within the decl.
				seq := 0
				if fd.Body != nil {
					ast.Inspect(fd.Body, func(x ast.Node) bool {
						if fl, ok := x.(*ast.FuncLit); ok {
							seq++
							ln := &Node{
								Lit:  fl,
								Name: fmt.Sprintf("%s$%d", n.Name, seq),
								Pos:  fl.Pos(),
							}
							g.Nodes = append(g.Nodes, ln)
							g.byLit[fl] = ln
							bodies = append(bodies, declBody{ln, fl.Body, u})
						}
						return true
					})
				}
			}
		}
	}

	// Pass 2: edges. Each node walks its own body, stopping at nested
	// literal boundaries (they walk themselves).
	for _, b := range bodies {
		if b.body != nil {
			g.edgesFrom(b.node, b.body, b.unit)
		}
	}

	// Pass 3: hot propagation from the roots.
	var work []*Node
	for _, n := range g.Nodes {
		if n.Root {
			n.Hot = true
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, c := range n.Calls {
			if !c.Hot {
				c.Hot = true
				work = append(work, c)
			}
		}
	}
	return g
}

// edgesFrom records the out-edges of node from its body, excluding nested
// function literals (each literal is its own node and walks its own body).
func (g *Graph) edgesFrom(n *Node, body *ast.BlockStmt, u *Unit) {
	seen := make(map[*Node]bool)
	addEdge := func(to *Node) {
		if to != nil && to != n && !seen[to] {
			seen[to] = true
			n.Calls = append(n.Calls, to)
		}
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// A literal occurring here may run wherever it flows: edge from
			// the encloser, then let the literal walk itself.
			addEdge(g.byLit[x])
			return false
		case *ast.CallExpr:
			if target, dynamic := g.resolveCall(x, u); dynamic {
				n.Dynamic = append(n.Dynamic, x.Lparen)
			} else {
				addEdge(target)
			}
			// Arguments (and the Fun's base expression) still need the
			// value-reference walk below, so keep descending; the Fun
			// identifier resolves to the same edge and dedups.
			return true
		case *ast.Ident:
			// Flow-insensitive value references: a package function or
			// method value mentioned anywhere gets an edge (covers
			// f := s.Run, ForEach(n, worker), return handler).
			if fn, ok := u.Info.Uses[x].(*types.Func); ok && !isInterfaceMethod(fn) {
				addEdge(g.byObj[fn])
			}
		}
		return true
	})
}

// resolveCall classifies one call site: (target, false) for a statically
// resolved module-local callee or an external/builtin/conversion (target
// nil), (nil, true) for a dynamic call the graph cannot resolve.
func (g *Graph) resolveCall(call *ast.CallExpr, u *Unit) (*Node, bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) — resolve through the index.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	if tv, ok := u.Info.Types[fun]; ok && tv.IsType() {
		return nil, false // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return g.byLit[fun], false // immediately-invoked literal
	case *ast.Ident:
		switch obj := u.Info.Uses[fun].(type) {
		case *types.Func:
			return g.byObj[obj], false // external callees resolve to nil
		case *types.Builtin, nil:
			return nil, false
		default:
			return nil, true // func-typed variable: dynamic
		}
	case *ast.SelectorExpr:
		if fn, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			if isInterfaceMethod(fn) {
				return nil, true // interface dispatch: dynamic
			}
			return g.byObj[fn], false
		}
		return nil, true // func-typed field: dynamic
	default:
		return nil, true
	}
}

// isInterfaceMethod reports whether fn is declared on an interface (its
// concrete implementations cannot be resolved statically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// hasHotDirective reports whether the doc comment carries a pdr:hot line.
func hasHotDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == HotDirective || strings.HasPrefix(text, HotDirective+" ") ||
			strings.HasPrefix(text, HotDirective+":") {
			return true
		}
	}
	return false
}

// funcName renders the printable identity of a declared function.
func funcName(path string, fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		s := types.TypeString(recv, func(p *types.Package) string { return "" })
		return fmt.Sprintf("%s.(%s).%s", path, s, fn.Name())
	}
	return path + "." + fn.Name()
}

// Dump writes the graph in a stable, human-readable form: one block per
// node in name order, hot nodes marked, out-edges and dynamic call sites
// listed. Nodes with no edges, no dynamic sites, and no hot mark are
// elided with a summary count to keep the dump readable.
func (g *Graph) Dump(w io.Writer) error {
	nodes := make([]*Node, len(g.Nodes))
	copy(nodes, g.Nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	roots, hot, dynamic := 0, 0, 0
	for _, n := range nodes {
		if n.Root {
			roots++
		}
		if n.Hot {
			hot++
		}
		dynamic += len(n.Dynamic)
	}
	if _, err := fmt.Fprintf(w, "# call graph: %d nodes, %d roots, %d hot, %d dynamic call sites\n",
		len(nodes), roots, hot, dynamic); err != nil {
		return err
	}
	cold := 0
	for _, n := range nodes {
		if !n.Hot && len(n.Calls) == 0 && len(n.Dynamic) == 0 {
			cold++
			continue
		}
		mark := "    "
		switch {
		case n.Root:
			mark = "root"
		case n.Hot:
			mark = "hot "
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", mark, n.Name); err != nil {
			return err
		}
		for _, c := range n.Calls {
			if _, err := fmt.Fprintf(w, "       -> %s\n", c.Name); err != nil {
				return err
			}
		}
		for _, p := range n.Dynamic {
			pos := g.Fset.Position(p)
			if _, err := fmt.Fprintf(w, "       ?? dynamic call at %s:%d:%d\n",
				pos.Filename, pos.Line, pos.Column); err != nil {
				return err
			}
		}
	}
	if cold > 0 {
		if _, err := fmt.Fprintf(w, "# %d leaf nodes with no edges elided\n", cold); err != nil {
			return err
		}
	}
	return nil
}
