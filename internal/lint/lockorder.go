package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"pdr/internal/lint/callgraph"
	"pdr/internal/lint/cfg"
)

// AnalyzerLockOrder proves the engine's deadlock-freedom argument statically.
// Mutex fields annotated with a `// pdr:lockrank <name> [rank]` comment form
// lock classes; the analyzer extends the must-held lock-set dataflow
// (lockflow.go) across the call graph into a global acquisition-order graph
// — "while holding class A, class B is acquired" — and reports:
//
//   - rank violations: an edge from a higher to a lower (or equal) rank,
//     which is how every deadlock between ranked classes must start;
//   - acquisition cycles among unranked classes (A→B and B→A can deadlock
//     two goroutines even though each order is locally fine);
//   - shard index discipline: a class declared over a mutex slice
//     (`smu []sync.RWMutex`) must be acquired in ascending index order —
//     the PR 8 scatter-gather protocol — so holding smu[2] while locking
//     smu[1], or a descending `for i--` acquire loop, is a finding.
//
// The analysis is interprocedural: acquire-only helpers (rlockAll,
// lockMaskWrite) are summarized as "leaves these classes held", their
// release twins as "drops them", so an edge like shard→shard-registry is
// seen even though the registry bucket locks inside a callee. Unannotated
// mutexes are invisible — the analyzer checks the declared protocol, it
// does not invent one.
var AnalyzerLockOrder = &Analyzer{
	Name:          "lockorder",
	Doc:           "builds the pdr:lockrank acquisition-order graph: rank violations, cycles, shard index discipline",
	Run:           runLockOrder,
	UsesCallGraph: true,
	Prepare: func(pkgs []*Package, graph *callgraph.Graph) any {
		return prepareLockOrder(pkgs, graph)
	},
}

// LockRankDirective marks a mutex field as a named lock class.
const LockRankDirective = "pdr:lockrank"

// lockClass is one annotated mutex class. Fields sharing a directive name
// share the class (and must agree on rank).
type lockClass struct {
	name   string
	rank   int
	ranked bool
	// indexed marks a class declared over a slice/array of mutexes, whose
	// instances are ordered by index (the ascending-acquire discipline)
	// rather than by rank against each other.
	indexed bool
	pos     token.Pos
}

// lockOrderFinding is one pre-rendered diagnostic, attributed to a package.
type lockOrderFinding struct {
	pkg string
	pos token.Pos
	msg string
}

// lockOrderEdge records "while holding from, to was acquired" at the first
// site observed.
type lockOrderEdge struct {
	from, to *lockClass
	pkg      string
	pos      token.Pos
	reported bool
}

// lockOrderResult is the Prepare output: findings grouped per package.
type lockOrderResult struct {
	byPkg map[string][]lockOrderFinding
}

func runLockOrder(p *Pass) {
	res, _ := p.Shared.(*lockOrderResult)
	if res == nil {
		return
	}
	for _, f := range res.byPkg[p.Path] {
		p.Reportf(f.pos, "%s", f.msg)
	}
}

// lockNodeUnit is one function or literal body with the package context to
// resolve it.
type lockNodeUnit struct {
	node *callgraph.Node
	body *ast.BlockStmt
	pkg  *Package
	pass *Pass
}

type classSet map[*lockClass]bool

func (s classSet) addAll(o classSet) bool {
	grew := false
	for c := range o {
		if !s[c] {
			s[c] = true
			grew = true
		}
	}
	return grew
}

func prepareLockOrder(pkgs []*Package, graph *callgraph.Graph) *lockOrderResult {
	res := &lockOrderResult{byPkg: make(map[string][]lockOrderFinding)}
	if graph == nil {
		return res
	}
	report := func(pkg string, pos token.Pos, format string, args ...any) {
		res.byPkg[pkg] = append(res.byPkg[pkg], lockOrderFinding{
			pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...),
		})
	}

	classes, byName := collectLockClasses(pkgs, report)
	if len(byName) == 0 {
		return res
	}

	units := collectLockNodeUnits(pkgs, graph)

	// Interprocedural summaries to a fixed point over the call graph:
	// acqTrans — every class a function may acquire, transitively;
	// releases — every class it may drop (deferred releases included);
	// netHeld — classes still held when it returns (acquire-only helpers).
	directAcq := make(map[*callgraph.Node]classSet)
	directRel := make(map[*callgraph.Node]classSet)
	for _, u := range units {
		acq, rel := directLockEffects(u, classes)
		directAcq[u.node] = acq
		directRel[u.node] = rel
	}
	acqTrans := make(map[*callgraph.Node]classSet)
	releases := make(map[*callgraph.Node]classSet)
	for _, u := range units {
		acqTrans[u.node] = classSet{}
		releases[u.node] = classSet{}
		acqTrans[u.node].addAll(directAcq[u.node])
		releases[u.node].addAll(directRel[u.node])
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			for _, c := range u.node.Calls {
				if acqTrans[c] != nil && acqTrans[u.node].addAll(acqTrans[c]) {
					changed = true
				}
				if releases[c] != nil && releases[u.node].addAll(releases[c]) {
					changed = true
				}
			}
		}
	}
	netHeld := make(map[*callgraph.Node]classSet)
	for _, u := range units {
		netHeld[u.node] = classSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			next := classSet{}
			next.addAll(directAcq[u.node])
			for _, c := range u.node.Calls {
				next.addAll(netHeld[c])
			}
			for c := range releases[u.node] {
				delete(next, c)
			}
			if netHeld[u.node].addAll(next) {
				changed = true
			}
		}
	}

	// Per-function flow: collect acquisition-order edges and check the
	// indexed (shard) discipline.
	var edges []*lockOrderEdge
	edgeIndex := make(map[[2]*lockClass]*lockOrderEdge)
	recordEdge := func(from, to *lockClass, pkg string, pos token.Pos) {
		key := [2]*lockClass{from, to}
		if _, seen := edgeIndex[key]; seen {
			return
		}
		e := &lockOrderEdge{from: from, to: to, pkg: pkg, pos: pos}
		edgeIndex[key] = e
		edges = append(edges, e)
	}
	for _, u := range units {
		walkLockOrderFlow(u, classes, byName, acqTrans, releases, netHeld, graph, recordEdge, report)
		checkDescendingLoops(u, classes, acqTrans, graph, report)
	}

	// Rank discipline over the deduplicated edges.
	for _, e := range edges {
		switch {
		case e.from == e.to:
			if e.from.indexed {
				continue // ordered by index, checked separately
			}
			e.reported = true
			report(e.pkg, e.pos, "acquires lock class %q while already holding it; instances of a non-indexed class have no defined order", e.to.name)
		case e.from.ranked && e.to.ranked && e.to.rank < e.from.rank:
			e.reported = true
			report(e.pkg, e.pos, "lock order violation: acquires %q (rank %d) while holding %q (rank %d); pdr:lockrank ranks must ascend", e.to.name, e.to.rank, e.from.name, e.from.rank)
		case e.from.ranked && e.to.ranked && e.to.rank == e.from.rank:
			e.reported = true
			report(e.pkg, e.pos, "lock order violation: acquires %q while holding %q, both rank %d; give nested classes distinct ascending ranks", e.to.name, e.from.name, e.from.rank)
		}
	}

	reportLockCycles(edges, report)
	return res
}

// collectLockClasses parses every pdr:lockrank directive on struct fields
// into the class registry, reporting malformed and conflicting directives.
func collectLockClasses(pkgs []*Package, report func(string, token.Pos, string, ...any)) (map[*types.Var]*lockClass, map[string]*lockClass) {
	classes := make(map[*types.Var]*lockClass)
	byName := make(map[string]*lockClass)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					name, rank, ranked, pos, found, bad := parseLockRank(field.Doc, field.Comment)
					if bad != "" {
						report(pkg.Path, pos, "%s", bad)
						continue
					}
					if !found {
						continue
					}
					cls := byName[name]
					if cls == nil {
						cls = &lockClass{name: name, rank: rank, ranked: ranked, pos: pos}
						byName[name] = cls
					} else if cls.ranked != ranked || (ranked && cls.rank != rank) {
						report(pkg.Path, pos, "pdr:lockrank %s: conflicting rank with the declaration at another field; one class, one rank", name)
						continue
					}
					for _, id := range field.Names {
						v, isVar := pkg.Info.Defs[id].(*types.Var)
						if v == nil || !isVar {
							continue
						}
						classes[v] = cls
						if isIndexedMutex(v.Type()) {
							cls.indexed = true
						}
					}
				}
				return true
			})
		}
	}
	return classes, byName
}

// parseLockRank extracts one pdr:lockrank directive from the field's doc or
// trailing comment: `pdr:lockrank <name>` (unranked, cycle detection only)
// or `pdr:lockrank <name> <rank>`.
func parseLockRank(groups ...*ast.CommentGroup) (name string, rank int, ranked bool, pos token.Pos, found bool, malformed string) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, LockRankDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, LockRankDirective))
			fields := strings.Fields(rest)
			pos = c.Pos()
			switch len(fields) {
			case 1:
				return fields[0], 0, false, pos, true, ""
			case 2:
				r, err := strconv.Atoi(fields[1])
				if err != nil {
					return "", 0, false, pos, false, fmt.Sprintf("malformed pdr:lockrank: rank %q is not an integer", fields[1])
				}
				return fields[0], r, true, pos, true, ""
			default:
				return "", 0, false, pos, false, "malformed pdr:lockrank: want \"pdr:lockrank <name> [rank]\""
			}
		}
	}
	return "", 0, false, token.NoPos, false, ""
}

// isIndexedMutex reports whether t is a slice or array of mutexes.
func isIndexedMutex(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isMutex(derefType(u.Elem()))
	case *types.Array:
		return isMutex(derefType(u.Elem()))
	}
	return false
}

// collectLockNodeUnits pairs every call-graph node with its body and a
// throwaway pass for type resolution, in deterministic package/file order.
func collectLockNodeUnits(pkgs []*Package, graph *callgraph.Graph) []lockNodeUnit {
	var units []lockNodeUnit
	for _, pkg := range pkgs {
		var sink []Diagnostic
		pass := &Pass{
			Path:  pkg.Path,
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			diags: &sink,
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := graph.FuncNode(obj)
				if node == nil {
					continue
				}
				units = append(units, lockNodeUnit{node: node, body: fd.Body, pkg: pkg, pass: pass})
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					if fl, isLit := x.(*ast.FuncLit); isLit {
						if ln := graph.LitNode(fl); ln != nil {
							units = append(units, lockNodeUnit{node: ln, body: fl.Body, pkg: pkg, pass: pass})
						}
					}
					return true
				})
			}
		}
	}
	return units
}

// directLockEffects scans one body (nested literals excluded — they are
// their own nodes) for classed mutex operations: classes acquired outside
// defers, and classes released anywhere including deferred releases.
func directLockEffects(u lockNodeUnit, classes map[*types.Var]*lockClass) (acq, rel classSet) {
	acq, rel = classSet{}, classSet{}
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if n != x {
					return false
				}
			case *ast.DeferStmt:
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				op, ok := mutexOpOf(u.pass, x)
				if !ok {
					return true
				}
				cls, classed := classOfMutexExpr(u.pkg.Info, classes, x.Fun.(*ast.SelectorExpr).X)
				if !classed {
					return true
				}
				switch op.name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					if !inDefer {
						acq[cls] = true
					}
				case "Unlock", "RUnlock":
					rel[cls] = true
				}
			}
			return true
		})
	}
	if u.node.Lit != nil {
		walk(u.node.Lit.Body, false)
	} else {
		walk(u.body, false)
	}
	return acq, rel
}

// classOfMutexExpr resolves the mutex expression of a Lock/Unlock call to
// its annotated class: e.smu[i] → the smu field's class, b.mu → regBucket's.
func classOfMutexExpr(info *types.Info, classes map[*types.Var]*lockClass, e ast.Expr) (*lockClass, bool) {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return nil, false
			}
			e = t.X
		case *ast.SelectorExpr:
			if s, ok := info.Selections[t]; ok && s.Kind() == types.FieldVal {
				if v, isVar := s.Obj().(*types.Var); isVar {
					if cls, classed := classes[v]; classed {
						return cls, true
					}
				}
			}
			return nil, false
		case *ast.Ident:
			if v, ok := info.Uses[t].(*types.Var); ok {
				if cls, classed := classes[v]; classed {
					return cls, true
				}
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// syntheticLockKey is the lockState key recording "a helper left this class
// held"; the NUL prefix cannot collide with any exprKey.
func syntheticLockKey(cls *lockClass) string { return "\x00" + cls.name }

// walkLockOrderFlow runs the augmented must-held flow over one body and
// emits acquisition-order edges: at every classed acquire and every call
// into a class-acquiring callee, each held class gains an edge to the
// acquired one. The indexed-class constant-index discipline is checked at
// acquire sites from the same facts.
func walkLockOrderFlow(
	u lockNodeUnit,
	classes map[*types.Var]*lockClass,
	byName map[string]*lockClass,
	acqTrans, releases, netHeld map[*callgraph.Node]classSet,
	graph *callgraph.Graph,
	recordEdge func(from, to *lockClass, pkg string, pos token.Pos),
	report func(string, token.Pos, string, ...any),
) {
	keyClass := make(map[string]*lockClass)
	heldClasses := func(st lockState) classSet {
		out := classSet{}
		for k := range st {
			if strings.HasPrefix(k, "\x00") {
				if cls := byName[k[1:]]; cls != nil {
					out[cls] = true
				}
			} else if cls := keyClass[k]; cls != nil {
				out[cls] = true
			}
		}
		return out
	}
	calleeNode := func(call *ast.CallExpr) *callgraph.Node {
		if fl, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
			return graph.LitNode(fl)
		}
		if fn := staticCallee(u.pkg.Info, call); fn != nil {
			return graph.FuncNode(fn)
		}
		return nil
	}
	// step advances the state across one node; with emit true it also
	// records edges and index-discipline findings (the replay pass).
	step := func(n ast.Node, in lockState, emit bool) lockState {
		out := in
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.DeferStmt:
				return false // releases at exit; mid-body state unchanged
			case *ast.FuncLit:
				// The literal is its own node; its occurrence here may run
				// under the current hold set.
				if emit {
					if ln := graph.LitNode(x); ln != nil {
						for h := range heldClasses(out) {
							for a := range acqTrans[ln] {
								recordEdge(h, a, u.pkg.Path, x.Pos())
							}
						}
					}
				}
				return false
			case *ast.CallExpr:
				if op, ok := mutexOpOf(u.pass, x); ok {
					cls, classed := classOfMutexExpr(u.pkg.Info, classes, x.Fun.(*ast.SelectorExpr).X)
					if classed && (op.name == "Lock" || op.name == "RLock") {
						keyClass[op.key] = cls
						if emit {
							for h := range heldClasses(out) {
								recordEdge(h, cls, u.pkg.Path, op.pos)
							}
							checkIndexOrder(u, out, keyClass, cls, op, report)
						}
					}
					out = out.apply(op)
					return true
				}
				callee := calleeNode(x)
				if callee == nil {
					return true
				}
				if emit {
					for h := range heldClasses(out) {
						for a := range acqTrans[callee] {
							recordEdge(h, a, u.pkg.Path, x.Lparen)
						}
					}
				}
				if len(releases[callee]) > 0 || len(netHeld[callee]) > 0 {
					out = out.clone()
					for c := range releases[callee] {
						delete(out, syntheticLockKey(c))
					}
					for c := range netHeld[callee] {
						out[syntheticLockKey(c)] = 2
					}
				}
			}
			return true
		})
		return out
	}
	g := cfg.New(u.body)
	res := cfg.Run(g, &cfg.Analysis[lockState]{
		Entry: lockState{},
		Join:  joinLockStates,
		Equal: equalLockStates,
		Transfer: func(b *cfg.Block, in lockState) lockState {
			for _, n := range b.Nodes {
				in = step(n, in, false)
			}
			return in
		},
	})
	res.WalkReached(
		func(n ast.Node, in lockState) lockState { return step(n, in, false) },
		func(n ast.Node, before lockState) { step(n, before, true) },
	)
}

// checkIndexOrder enforces ascending acquisition within an indexed class:
// acquiring cls[c2] while provably holding cls[c1] with constant c1 > c2
// breaks the sharding protocol.
func checkIndexOrder(u lockNodeUnit, st lockState, keyClass map[string]*lockClass, cls *lockClass, op mutexOp, report func(string, token.Pos, string, ...any)) {
	if !cls.indexed {
		return
	}
	c2, ok := constIndexOf(op.key)
	if !ok {
		return
	}
	for k := range st {
		if keyClass[k] != cls || k == op.key {
			continue
		}
		if c1, held := constIndexOf(k); held && c1 > c2 {
			report(u.pkg.Path, op.pos, "acquires %s while holding %s: %q locks must be taken in ascending index order (the scatter-gather deadlock-freedom protocol)", op.key, k, cls.name)
		}
	}
}

// constIndexOf extracts a trailing constant index from an exprKey like
// "e.smu[3]".
func constIndexOf(key string) (int, bool) {
	if !strings.HasSuffix(key, "]") {
		return 0, false
	}
	open := strings.LastIndexByte(key, '[')
	if open < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(key[open+1 : len(key)-1])
	if err != nil {
		return 0, false
	}
	return n, true
}

// checkDescendingLoops flags the syntactic descending-acquire shape: a
// `for ... ; i--` loop that locks an indexed class at the loop variable,
// directly or through an acquire helper taking the variable.
func checkDescendingLoops(u lockNodeUnit, classes map[*types.Var]*lockClass, acqTrans map[*callgraph.Node]classSet, graph *callgraph.Graph, report func(string, token.Pos, string, ...any)) {
	body := u.body
	if u.node.Lit != nil {
		body = u.node.Lit.Body
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, isLit := n.(*ast.FuncLit); isLit && body != fl.Body {
			return false
		}
		fs, isFor := n.(*ast.ForStmt)
		if !isFor || fs.Post == nil {
			return true
		}
		post, isIncDec := fs.Post.(*ast.IncDecStmt)
		if !isIncDec || post.Tok != token.DEC {
			return true
		}
		v, isID := post.X.(*ast.Ident)
		if !isID {
			return true
		}
		ast.Inspect(fs.Body, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false
			}
			call, isCall := x.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if op, isOp := mutexOpOf(u.pass, call); isOp {
				if op.name != "Lock" && op.name != "RLock" {
					return true
				}
				cls, classed := classOfMutexExpr(u.pkg.Info, classes, call.Fun.(*ast.SelectorExpr).X)
				if classed && cls.indexed && mentionsName(call.Fun.(*ast.SelectorExpr).X, v.Name) {
					report(u.pkg.Path, op.pos, "acquires %q locks in a descending loop (%s--); the sharding protocol requires ascending index order", cls.name, v.Name)
				}
				return true
			}
			callee := (*callgraph.Node)(nil)
			if fn := staticCallee(u.pkg.Info, call); fn != nil {
				callee = graph.FuncNode(fn)
			}
			if callee == nil {
				return true
			}
			for a := range acqTrans[callee] {
				if !a.indexed {
					continue
				}
				for _, arg := range call.Args {
					if mentionsName(arg, v.Name) {
						report(u.pkg.Path, call.Lparen, "calls an acquire helper for %q in a descending loop (%s--); the sharding protocol requires ascending index order", a.name, v.Name)
						return true
					}
				}
			}
			return true
		})
		return true
	})
}

// reportLockCycles finds acquisition cycles among classes whose edges were
// not already reported as rank violations (rank checks subsume cycles among
// fully ranked classes, so this catches the unranked remainder).
func reportLockCycles(edges []*lockOrderEdge, report func(string, token.Pos, string, ...any)) {
	adj := make(map[*lockClass][]*lockOrderEdge)
	for _, e := range edges {
		if e.reported || e.from == e.to {
			continue
		}
		adj[e.from] = append(adj[e.from], e)
	}
	// Iterative DFS cycle detection with deterministic order: classes by
	// name, out-edges in insertion order. Each cycle is reported once, at
	// its first edge, naming the classes along it.
	var classNames []*lockClass
	for c := range adj {
		classNames = append(classNames, c)
	}
	sort.Slice(classNames, func(i, j int) bool { return classNames[i].name < classNames[j].name })
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make(map[*lockClass]int)
	reportedCycle := make(map[*lockClass]bool)
	var path []*lockOrderEdge
	var visit func(c *lockClass)
	visit = func(c *lockClass) {
		state[c] = onStack
		for _, e := range adj[c] {
			switch state[e.to] {
			case unvisited:
				path = append(path, e)
				visit(e.to)
				path = path[:len(path)-1]
			case onStack:
				// Found a back edge: the cycle is e plus the path suffix
				// from e.to back to c.
				cycle := []*lockOrderEdge{e}
				for i := len(path) - 1; i >= 0; i-- {
					cycle = append(cycle, path[i])
					if path[i].from == e.to {
						break
					}
				}
				if reportedCycle[e.to] {
					continue
				}
				reportedCycle[e.to] = true
				names := make([]string, 0, len(cycle))
				for _, ce := range cycle {
					names = append(names, ce.from.name)
				}
				sort.Strings(names)
				report(e.pkg, e.pos, "lock classes %s form an acquisition cycle (possible deadlock); give them pdr:lockrank ranks and acquire in ascending order", strings.Join(names, ", "))
			}
		}
		state[c] = done
	}
	for _, c := range classNames {
		if state[c] == unvisited {
			visit(c)
		}
	}
}
