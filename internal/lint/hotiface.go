package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerHotIface reports interface boxing at call boundaries inside loops
// of hot-reachable functions: passing a concrete non-pointer value where
// the callee takes an interface (including variadic ...any) converts —
// and usually heap-allocates — the value once per iteration. Pointers,
// channels, funcs and maps are exempt: their interface representation is
// the reference word itself, no allocation. It also flags sort.Slice and
// friends anywhere in a hot function, where the any-boxing plus
// closure-calling comparator loses to the generic slices.SortFunc.
var AnalyzerHotIface = &Analyzer{
	Name:          "hotiface",
	Doc:           "reports per-iteration interface boxing at hot call boundaries and reflection-based sort.Slice in hot functions",
	Run:           runHotIface,
	UsesCallGraph: true,
}

// reflectionSorts are the sort-package entry points that box the slice into
// an any / interface and compare through reflection or interface calls.
var reflectionSorts = map[string]string{
	"Slice":         "slices.SortFunc",
	"SliceStable":   "slices.SortStableFunc",
	"SliceIsSorted": "slices.IsSortedFunc",
}

func runHotIface(p *Pass) {
	forEachHotFunc(p, func(fd *ast.FuncDecl) {
		hotWalk(fd.Body, func(n ast.Node, loops []ast.Stmt, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if checkReflectionSort(p, call) {
				return true
			}
			if len(loops) > 0 {
				checkBoxedArgs(p, call)
			}
			return true
		})
	})
}

// checkReflectionSort flags sort.Slice-family calls in hot functions.
func checkReflectionSort(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	repl, ok := reflectionSorts[sel.Sel.Name]
	if !ok {
		return false
	}
	pn := p.PkgNameOf(sel.X)
	if pn == nil || pn.Imported().Path() != "sort" {
		return false
	}
	p.Reportf(call.Pos(), "sort.%s boxes the slice into any and compares through an interface; use %s on the hot path", sel.Sel.Name, repl)
	return true
}

// checkBoxedArgs flags concrete values converted to interface parameters at
// a call site inside a hot loop.
func checkBoxedArgs(p *Pass, call *ast.CallExpr) {
	sig := callSignature(p, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil || types.IsInterface(at) || !boxingAllocates(at) {
			continue
		}
		p.Reportf(arg.Pos(), "%s boxed into %s on every iteration of a hot loop; keep the callee concrete or hoist the conversion",
			types.TypeString(at, types.RelativeTo(p.Pkg)), types.TypeString(pt, types.RelativeTo(p.Pkg)))
	}
}

// callSignature resolves the signature of a non-builtin, non-conversion
// call.
func callSignature(p *Pass, call *ast.CallExpr) *types.Signature {
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return nil // conversion
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return nil
		}
	}
	t := p.TypeOf(fun)
	if t == nil {
		return nil
	}
	sig, _ := types.Unalias(t).Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the declared type of argument i, unwrapping the
// variadic tail (unless the call spreads with ...).
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		if call.Ellipsis.IsValid() {
			return nil // spread: no per-element boxing at this site
		}
		last := params.At(params.Len() - 1).Type()
		if s, ok := types.Unalias(last).Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// boxingAllocates reports whether converting a value of type t to an
// interface stores more than a pointer-sized word — the conversions that
// can heap-allocate per element. Reference types ride in the data word.
func boxingAllocates(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	}
	return true
}
