package loadgen

import (
	"math"
	"sort"
	"time"
)

// Histogram is a log-scale latency histogram: geometric bucket bounds at
// 8 buckets per octave from 1µs to ~2 minutes, plus an overflow bucket.
// Each worker owns one (no locking on the hot path) and the runner merges
// them at the end — identical bucket layouts make Merge a vector add.
// Exact min/max/sum ride alongside so the report's extremes are not
// quantized.
type Histogram struct {
	bounds []time.Duration // upper bucket edges, ascending
	counts []int64         // len(bounds)+1; last is overflow
	n      int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	histMin          = time.Microsecond
	histMax          = 2 * time.Minute
	bucketsPerOctave = 8
)

// NewHistogram builds an empty histogram with the standard layout.
func NewHistogram() *Histogram {
	ratio := math.Pow(2, 1.0/bucketsPerOctave)
	var bounds []time.Duration
	for v := float64(histMin); v < float64(histMax); v *= ratio {
		bounds = append(bounds, time.Duration(v))
	}
	bounds = append(bounds, histMax)
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[i]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds o into h; both must share the standard layout.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if o.n > 0 {
		if h.n == 0 || o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Min and Max return the exact extremes; Mean the exact average.
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the exact mean latency.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Quantile returns the latency at quantile q in [0, 1]: the upper edge of
// the bucket the quantile falls in (conservative — never under-reports),
// clamped to the exact observed extremes.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest sample index whose cumulative share
	// reaches q. With two samples, Quantile(0.99) is the slower one.
	rank := int64(math.Ceil(q*float64(h.n))) - 1
	if rank < 0 {
		rank = 0
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			var v time.Duration
			if i < len(h.bounds) {
				v = h.bounds[i]
			} else {
				v = h.max // overflow bucket: the exact max bounds it
			}
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}
