package loadgen

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/service"
	"pdr/internal/wire"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("snapshot=8,interval=1,stats=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Snapshot: 8, Interval: 1, Stats: 1}) {
		t.Fatalf("mix = %+v", m)
	}
	m, err = ParseMix("snapshot=4,tick=1,apply=2")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Snapshot: 4, Tick: 1, Apply: 2}) {
		t.Fatalf("write mix = %+v", m)
	}
	if _, err := ParseMix("snapshot=0"); err == nil {
		t.Fatal("all-zero mix should be rejected")
	}
	if _, err := ParseMix("snapshots=1"); err == nil {
		t.Fatal("unknown class should be rejected")
	}
	if _, err := ParseMix("snapshot=x"); err == nil {
		t.Fatal("non-numeric weight should be rejected")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000µs uniform: the p50 bucket edge must sit within one bucket
	// ratio (2^(1/8) ≈ 1.09) above the true percentile.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != 1000*time.Microsecond {
		t.Fatalf("extremes = %v %v", h.Min(), h.Max())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.9, 900 * time.Microsecond}, {0.99, 990 * time.Microsecond}} {
		got := h.Quantile(tc.q)
		if got < tc.want || got > tc.want*5/4 {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", tc.q, got, tc.want, tc.want*5/4)
		}
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Errorf("Quantile(1) = %v, want max %v", q, h.Max())
	}
	if q := h.Quantile(0); q != h.Min() {
		t.Errorf("Quantile(0) = %v, want min %v", q, h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, whole := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 200; i++ {
		d := time.Duration(i) * 37 * time.Microsecond
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged count/min/max = %d/%v/%v, want %d/%v/%v",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged Quantile(%v) = %v, want %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Minute) // beyond histMax: overflow bucket
	h.Observe(time.Millisecond)
	if h.Max() != 10*time.Minute {
		t.Fatalf("max = %v", h.Max())
	}
	if q := h.Quantile(0.99); q != 10*time.Minute {
		t.Fatalf("Quantile(0.99) = %v, want the exact overflow max", q)
	}
}

// startTestServer brings up an in-process pdrserve equivalent with a small
// seeded workload, matching the smoke-test regime scripts/check.sh runs.
func startTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)

	gcfg := datagen.DefaultConfig(200)
	gcfg.Seed = 7
	g, err := datagen.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	var req service.LoadRequest
	for _, s := range g.InitialStates() {
		req.States = append(req.States, wire.FromState(wire.KindState, s, 0))
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status %d", resp.StatusCode)
	}
	return ts
}

// TestLoadHarnessSmoke drives the full harness against an in-process
// server: mixed traffic, non-zero throughput, zero errors, well-formed
// BENCH JSON. scripts/check.sh runs exactly this test as its pdrload
// smoke step.
func TestLoadHarnessSmoke(t *testing.T) {
	ts := startTestServer(t)
	rep, err := Run(Config{
		BaseURL:  ts.URL,
		Workers:  2,
		Duration: 150 * time.Millisecond,
		Warmup:   30 * time.Millisecond,
		Mix:      Mix{Snapshot: 6, Interval: 1, Stats: 1, Tick: 1, Apply: 2},
		Varrho:   3,
		L:        60,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests <= 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d requests failed", rep.Errors, rep.Requests)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", rep.ThroughputRPS)
	}
	if rep.P50Nanos <= 0 || rep.P99Nanos < rep.P50Nanos || rep.MaxNanos < rep.P99Nanos {
		t.Fatalf("latency ordering broken: p50=%d p99=%d max=%d", rep.P50Nanos, rep.P99Nanos, rep.MaxNanos)
	}
	if rep.SampleTraceID == "" {
		t.Fatal("no X-Pdr-Trace-Id captured (tracing is on by default)")
	}

	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("BENCH_load.json is not valid JSON: %v", err)
	}
	if back.Kind != "load" || back.Requests != rep.Requests || back.Workers != 2 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.PerClass["snapshot"].Requests == 0 {
		t.Fatal("snapshot class saw no traffic")
	}
	if back.PerClass["apply"].Requests == 0 {
		t.Fatal("apply class saw no traffic")
	}
	if cs := back.PerClass["apply"]; cs.ThroughputRPS <= 0 {
		t.Fatalf("apply class throughput = %v", cs.ThroughputRPS)
	}
}

// TestRunRejectsBadTarget verifies the fail-fast probe.
func TestRunRejectsBadTarget(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:1", Duration: 50 * time.Millisecond}); err == nil {
		t.Fatal("expected probe failure against a closed port")
	}
}
