// Package loadgen is the engine's HTTP load harness: persistent-connection
// workers drive a configurable mix of snapshot / interval / stats reads and
// tick / apply writes against a running pdrserve and report throughput plus
// a log-scale latency distribution (p50/p90/p95/p99/max), overall and per
// class. cmd/pdrload is the CLI wrapper; the library form lets
// scripts/check.sh smoke-test the harness against an in-process httptest
// server.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pdr/internal/stopwatch"
	"pdr/internal/wire"
)

// Mix weights the request classes; a class with weight 0 is never sent.
// Snapshot, Interval, and Stats are reads. Tick advances the server clock
// through POST /v1/updates (the global write path: every shard's window
// rotates); Apply inserts and deletes a fresh object through POST /v1/apply
// (the shard-local write path). Weighting reads against Apply is how the
// harness measures write-vs-read contention on a sharded server.
type Mix struct {
	Snapshot int `json:"snapshot"`
	Interval int `json:"interval"`
	Stats    int `json:"stats"`
	Tick     int `json:"tick,omitempty"`
	Apply    int `json:"apply,omitempty"`
}

func (m Mix) total() int { return m.Snapshot + m.Interval + m.Stats + m.Tick + m.Apply }

// ParseMix parses the CLI form "snapshot=8,interval=1,stats=1,apply=4".
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	for _, part := range splitComma(s) {
		eq := -1
		for i := 0; i < len(part); i++ {
			if part[i] == '=' {
				eq = i
				break
			}
		}
		if eq < 1 {
			return Mix{}, fmt.Errorf("loadgen: bad mix component %q (want class=weight)", part)
		}
		name := part[:eq]
		w, err := strconv.Atoi(part[eq+1:])
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix component %q (want class=weight)", part)
		}
		switch name {
		case "snapshot":
			m.Snapshot = w
		case "interval":
			m.Interval = w
		case "stats":
			m.Stats = w
		case "tick":
			m.Tick = w
		case "apply":
			m.Apply = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown request class %q (want snapshot, interval, stats, tick, or apply)", name)
		}
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

func splitComma(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		out = append(out, s[:i])
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://localhost:8080".
	BaseURL string
	// Workers is the number of concurrent persistent connections.
	Workers int
	// Duration bounds the measured phase; Requests (if > 0) instead stops
	// after that many measured requests, whichever the mode, Warmup runs
	// first and is discarded.
	Duration time.Duration
	Warmup   time.Duration
	Requests int64
	// Mix weights the request classes (zero value: snapshots only).
	Mix Mix
	// Query-shape knobs for the snapshot/interval classes.
	Method        string  // fr | pa | dh-opt | dh-pess | bf
	L             float64 // neighborhood edge
	Varrho        float64 // relative density threshold
	IntervalTicks int     // interval query length (until = now+K)
	// Area bounds for the apply class: fresh objects are inserted uniformly
	// in [0, AreaMaxX) x [0, AreaMaxY). Must match the server's -area (the
	// defaults match core.DefaultConfig's 1000 x 1000 plane).
	AreaMaxX float64
	AreaMaxY float64
	// Seed makes the request sequence reproducible; worker w derives its
	// private stream from Seed+w.
	Seed    int64
	Timeout time.Duration // per-request timeout
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 8
	}
	if out.Duration <= 0 {
		out.Duration = 10 * time.Second
	}
	if out.Mix.total() <= 0 {
		out.Mix = Mix{Snapshot: 1}
	}
	if out.Method == "" {
		out.Method = "fr"
	}
	if out.L <= 0 {
		out.L = 30
	}
	if out.Varrho <= 0 {
		out.Varrho = 3
	}
	if out.IntervalTicks <= 0 {
		out.IntervalTicks = 5
	}
	if out.AreaMaxX <= 0 {
		out.AreaMaxX = 1000
	}
	if out.AreaMaxY <= 0 {
		out.AreaMaxY = 1000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Timeout <= 0 {
		out.Timeout = 30 * time.Second
	}
	return out
}

// ClassStats is the per-request-class slice of the report.
type ClassStats struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughputRps"`
	P50Nanos      int64   `json:"p50Nanos"`
	P99Nanos      int64   `json:"p99Nanos"`
	MaxNanos      int64   `json:"maxNanos"`
}

// Report is the outcome of a run; WriteJSON serializes it in the
// BENCH_*.json house style.
type Report struct {
	Kind          string                `json:"kind"`
	URL           string                `json:"url"`
	NumCPU        int                   `json:"numCPU"`
	Gomaxprocs    int                   `json:"gomaxprocs"`
	Workers       int                   `json:"workers"`
	Mix           Mix                   `json:"mix"`
	WarmupNanos   int64                 `json:"warmupNanos"`
	ElapsedNanos  int64                 `json:"elapsedNanos"`
	Requests      int64                 `json:"requests"`
	Errors        int64                 `json:"errors"`
	ThroughputRPS float64               `json:"throughputRps"`
	MinNanos      int64                 `json:"minNanos"`
	MeanNanos     int64                 `json:"meanNanos"`
	P50Nanos      int64                 `json:"p50Nanos"`
	P90Nanos      int64                 `json:"p90Nanos"`
	P95Nanos      int64                 `json:"p95Nanos"`
	P99Nanos      int64                 `json:"p99Nanos"`
	MaxNanos      int64                 `json:"maxNanos"`
	PerClass      map[string]ClassStats `json:"perClass"`
	// SampleTraceID is one X-Pdr-Trace-Id seen during the run (empty when
	// the server traces nothing): resolve it at /debug/traces/{id}.
	SampleTraceID string `json:"sampleTraceId,omitempty"`
}

// WriteJSON writes the report to path in the repo's BENCH_*.json house
// style (indented, trailing newline).
func (r *Report) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// classNames indexes the request classes; pick() returns an index into it.
var classNames = [...]string{"snapshot", "interval", "stats", "tick", "apply"}

const (
	classSnapshot = iota
	classInterval
	classStats
	classTick
	classApply
)

// writeState is the cross-worker state behind the write classes. The tick
// class advances one logical clock shared by every worker; issuance is
// serialized under mu so a later tick value can never overtake an earlier
// one on the wire (the server would reject it as time moving backwards).
// The apply class draws process-unique object IDs from nextID, offset far
// above any pdrgen workload, so concurrent inserts never collide with each
// other or with the pre-loaded population.
type writeState struct {
	mu     sync.Mutex
	tick   atomic.Int64
	nextID atomic.Uint64
}

// applyIDBase offsets harness-inserted object IDs above any realistic
// pre-loaded workload.
const applyIDBase = uint64(1) << 40

// worker is the per-goroutine state: private RNG, private histograms.
type worker struct {
	rng     *rand.Rand
	hist    *Histogram
	byClass [len(classNames)]*Histogram
	reqs    [len(classNames)]int64
	errs    [len(classNames)]int64
	traceID string
}

// pick selects a request class by mix weight.
func (w *worker) pick(m Mix) int {
	r := w.rng.Intn(m.total())
	if r < m.Snapshot {
		return classSnapshot
	}
	r -= m.Snapshot
	if r < m.Interval {
		return classInterval
	}
	r -= m.Interval
	if r < m.Stats {
		return classStats
	}
	r -= m.Stats
	if r < m.Tick {
		return classTick
	}
	return classApply
}

// buildURL renders the request for one read class.
func buildURL(cfg *Config, class int) string {
	switch class {
	case classSnapshot:
		return cfg.BaseURL + "/v1/query?method=" + url.QueryEscape(cfg.Method) +
			"&varrho=" + strconv.FormatFloat(cfg.Varrho, 'g', -1, 64) +
			"&l=" + strconv.FormatFloat(cfg.L, 'g', -1, 64)
	case classInterval:
		return cfg.BaseURL + "/v1/query?method=" + url.QueryEscape(cfg.Method) +
			"&varrho=" + strconv.FormatFloat(cfg.Varrho, 'g', -1, 64) +
			"&l=" + strconv.FormatFloat(cfg.L, 'g', -1, 64) +
			"&until=now%2B" + strconv.Itoa(cfg.IntervalTicks)
	default:
		return cfg.BaseURL + "/v1/stats"
	}
}

// tickBody renders the POST /v1/updates body for one clock advance.
func tickBody(now int64) []byte {
	body, _ := json.Marshal(struct {
		Now     int64         `json:"now"`
		Updates []wire.Record `json:"updates"`
	}{Now: now, Updates: []wire.Record{}})
	return body
}

// applyBody renders the POST /v1/apply body: one fresh object inserted and
// immediately deleted, so the run leaves the population unchanged while
// exercising the write path twice per request.
func (w *worker) applyBody(cfg *Config, ws *writeState) []byte {
	now := ws.tick.Load()
	ins := wire.Record{
		Kind: wire.KindInsert,
		Tick: now,
		ID:   applyIDBase + ws.nextID.Add(1),
		X:    w.rng.Float64() * cfg.AreaMaxX,
		Y:    w.rng.Float64() * cfg.AreaMaxY,
		VX:   (w.rng.Float64() - 0.5) * 16,
		VY:   (w.rng.Float64() - 0.5) * 16,
		Ref:  now,
	}
	del := ins
	del.Kind = wire.KindDelete
	body, _ := json.Marshal(struct {
		Updates []wire.Record `json:"updates"`
	}{Updates: []wire.Record{ins, del}})
	return body
}

// Run drives the configured load and returns the merged report. The
// transport keeps one idle connection per worker alive, so after the first
// round every request reuses its connection — the persistent-connection
// regime a production client pool creates.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	transport := &http.Transport{
		MaxIdleConns:        cfg.Workers,
		MaxIdleConnsPerHost: cfg.Workers,
		IdleConnTimeout:     90 * time.Second,
	}
	client := &http.Client{Transport: transport, Timeout: cfg.Timeout}
	defer transport.CloseIdleConnections()

	// Probe once so a wrong URL fails fast instead of as N*iters errors; the
	// probe also reads the server clock so the tick class resumes it instead
	// of rewinding (which the server would reject).
	now, err := probe(client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}
	ws := &writeState{}
	ws.tick.Store(now)

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		w := &worker{
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i))),
			hist: NewHistogram(),
		}
		for c := range w.byClass {
			w.byClass[c] = NewHistogram()
		}
		workers[i] = w
	}

	// Warmup: same traffic, discarded measurements. Fills connection
	// pools, page caches, and the engine's result cache to steady state.
	if cfg.Warmup > 0 {
		runPhase(client, &cfg, workers, ws, cfg.Warmup, 0)
		for _, w := range workers {
			w.reset()
		}
	}

	sw := stopwatch.Start()
	runPhase(client, &cfg, workers, ws, cfg.Duration, cfg.Requests)
	elapsed := sw.Elapsed()

	// Merge the per-worker shards.
	total := NewHistogram()
	perClass := make(map[string]ClassStats, len(classNames))
	var byClass [len(classNames)]*Histogram
	for c := range byClass {
		byClass[c] = NewHistogram()
	}
	rep := &Report{
		Kind: "load", URL: cfg.BaseURL,
		NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0),
		Workers: cfg.Workers, Mix: cfg.Mix,
		WarmupNanos: cfg.Warmup.Nanoseconds(), ElapsedNanos: elapsed.Nanoseconds(),
	}
	for _, w := range workers {
		total.Merge(w.hist)
		for c := range classNames {
			byClass[c].Merge(w.byClass[c])
			rep.Errors += w.errs[c]
		}
		if rep.SampleTraceID == "" {
			rep.SampleTraceID = w.traceID
		}
	}
	rep.Requests = total.Count() + rep.Errors
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.MinNanos = total.Min().Nanoseconds()
	rep.MeanNanos = total.Mean().Nanoseconds()
	rep.P50Nanos = total.Quantile(0.50).Nanoseconds()
	rep.P90Nanos = total.Quantile(0.90).Nanoseconds()
	rep.P95Nanos = total.Quantile(0.95).Nanoseconds()
	rep.P99Nanos = total.Quantile(0.99).Nanoseconds()
	rep.MaxNanos = total.Max().Nanoseconds()
	for c, name := range classNames {
		var reqs, errs int64
		for _, w := range workers {
			reqs += w.reqs[c]
			errs += w.errs[c]
		}
		if reqs == 0 {
			continue
		}
		cs := ClassStats{
			Requests: reqs, Errors: errs,
			P50Nanos: byClass[c].Quantile(0.50).Nanoseconds(),
			P99Nanos: byClass[c].Quantile(0.99).Nanoseconds(),
			MaxNanos: byClass[c].Max().Nanoseconds(),
		}
		if elapsed > 0 {
			cs.ThroughputRPS = float64(reqs+errs) / elapsed.Seconds()
		}
		perClass[name] = cs
	}
	rep.PerClass = perClass
	return rep, nil
}

func (w *worker) reset() {
	w.hist = NewHistogram()
	for c := range w.byClass {
		w.byClass[c] = NewHistogram()
	}
	w.reqs = [len(classNames)]int64{}
	w.errs = [len(classNames)]int64{}
}

// probe issues one stats request to validate the target and returns the
// server's current tick.
func probe(client *http.Client, baseURL string) (int64, error) {
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return 0, fmt.Errorf("loadgen: probe failed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain-to-reuse: a failed drain only costs this probe its
		// keep-alive slot.
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("loadgen: probe %s/v1/stats returned %d", baseURL, resp.StatusCode)
	}
	var st struct {
		Now int64 `json:"now"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, fmt.Errorf("loadgen: probe %s/v1/stats: %w", baseURL, err)
	}
	io.Copy(io.Discard, resp.Body)
	return st.Now, nil
}

// runPhase fans the workers out for one timed phase. maxReqs > 0 bounds
// the total request count across workers (used by -n mode); the deadline
// applies regardless.
func runPhase(client *http.Client, cfg *Config, workers []*worker, ws *writeState, d time.Duration, maxReqs int64) {
	deadline := time.Now().Add(d)
	var issued atomic.Int64
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if maxReqs > 0 && issued.Add(1) > maxReqs {
					return
				}
				class := w.pick(cfg.Mix)
				w.do(client, cfg, ws, class)
			}
		}(w)
	}
	wg.Wait()
}

// do issues one request and records its latency (errors are counted, not
// timed). The body is fully drained so the connection returns to the
// keep-alive pool. Tick requests hold the write-state mutex across the
// round trip: clock advance is inherently ordered, and the serialization
// the server's write lock would impose anyway happens client-side instead
// of surfacing as time-moved-backwards conflicts.
func (w *worker) do(client *http.Client, cfg *Config, ws *writeState, class int) {
	var (
		resp *http.Response
		err  error
		sw   stopwatch.Stopwatch
	)
	switch class {
	case classTick:
		ws.mu.Lock()
		body := tickBody(ws.tick.Add(1))
		sw = stopwatch.Start()
		resp, err = client.Post(cfg.BaseURL+"/v1/updates", "application/json", bytes.NewReader(body))
		ws.mu.Unlock()
	case classApply:
		body := w.applyBody(cfg, ws)
		sw = stopwatch.Start()
		resp, err = client.Post(cfg.BaseURL+"/v1/apply", "application/json", bytes.NewReader(body))
	default:
		sw = stopwatch.Start()
		resp, err = client.Get(buildURL(cfg, class))
	}
	if err != nil {
		w.errs[class]++
		return
	}
	// Drain-to-reuse: a short read only costs this worker its keep-alive
	// slot.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := sw.Elapsed()
	if resp.StatusCode != http.StatusOK {
		w.errs[class]++
		return
	}
	if w.traceID == "" {
		w.traceID = resp.Header.Get("X-Pdr-Trace-Id")
	}
	w.reqs[class]++
	w.hist.Observe(elapsed)
	w.byClass[class].Observe(elapsed)
}
