// Package datagen generates moving-object workloads in the style of the PDR
// paper's evaluation (Sec. 7): N objects moving over a metropolitan road
// network in an L x L plane, with skewed free-flow speeds and a location
// update stream in which every object reports at least once per maximum
// update interval U.
//
// The paper generated data with the method of Saltenis et al. [16] over the
// Chicago road network; this package reproduces the statistically relevant
// behaviour with the synthetic metro network of package roadnet (see
// DESIGN.md, substitutions).
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/roadnet"
)

// Config parameterizes a workload.
type Config struct {
	// N is the number of moving objects.
	N int
	// Area is the plane (the paper uses 1,000 x 1,000 miles).
	Area geom.Rect
	// U is the maximum update interval in ticks: every object reports a
	// fresh (position, velocity) within U ticks of its previous report.
	U motion.Tick
	// SpeedMin and SpeedMax bound free-flow speed in distance per tick.
	// The paper draws speeds from a skewed distribution over 25..100 mph.
	SpeedMin, SpeedMax float64
	// SpeedSkew > 1 biases toward slow objects (u^skew sampling); 1 gives
	// uniform speeds.
	SpeedSkew float64
	// Uniform, when true, skips the road network entirely: objects move
	// linearly and bounce off the area walls. This is a control workload
	// for tests; the paper's experiments use network movement.
	Uniform bool
	// ShortestPath, when true, routes travelers along precomputed
	// shortest-travel-time paths to hubs (Dijkstra) instead of greedy
	// geometric hops, concentrating traffic on freeway corridors.
	ShortestPath bool
	// Warmup is the number of ticks travelers walk before t=0 so the
	// initial snapshot already exhibits hub skew.
	Warmup int
	// Seed drives all randomness.
	Seed int64
	// Net configures the road network; zero value uses
	// roadnet.DefaultConfig(Area).
	Net roadnet.Config
}

// DefaultConfig returns the paper-scale defaults for n objects: a 1,000-mile
// square, U=60 ticks, speeds 25..100 mph at one-minute ticks (0.42..1.67
// miles/tick), skew 2.
func DefaultConfig(n int) Config {
	area := geom.NewRect(0, 0, 1000, 1000)
	return Config{
		N:         n,
		Area:      area,
		U:         60,
		SpeedMin:  25.0 / 60.0,
		SpeedMax:  100.0 / 60.0,
		SpeedSkew: 2,
		Warmup:    300,
		Seed:      1,
	}
}

// Generator produces the initial object states and the per-tick update
// stream for a workload.
type Generator struct {
	cfg Config
	net *roadnet.Network
	rng *rand.Rand
	now motion.Tick

	travelers []roadnet.Traveler // network mode
	uniform   []motion.State     // uniform mode ground truth
	reported  []motion.State     // last state reported to the server
	nextDue   []motion.Tick      // tick by which each object must report
}

// New builds a generator. The object states returned by InitialStates are
// positioned after Warmup ticks of network movement.
func New(cfg Config) (*Generator, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("datagen: N must be positive, got %d", cfg.N)
	}
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("datagen: empty area")
	}
	if cfg.U <= 0 {
		return nil, fmt.Errorf("datagen: U must be positive, got %d", cfg.U)
	}
	if cfg.SpeedMin <= 0 || cfg.SpeedMax < cfg.SpeedMin {
		return nil, fmt.Errorf("datagen: bad speed range [%g, %g]", cfg.SpeedMin, cfg.SpeedMax)
	}
	if cfg.SpeedSkew <= 0 {
		cfg.SpeedSkew = 1
	}
	g := &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		reported: make([]motion.State, cfg.N),
		nextDue:  make([]motion.Tick, cfg.N),
	}
	if !cfg.Uniform {
		netCfg := cfg.Net
		if netCfg.GridN == 0 {
			netCfg = roadnet.DefaultConfig(cfg.Area)
			netCfg.Seed = cfg.Seed
		}
		net, err := roadnet.New(netCfg)
		if err != nil {
			return nil, err
		}
		g.net = net
		g.travelers = make([]roadnet.Traveler, cfg.N)
		var router *roadnet.Router
		if cfg.ShortestPath {
			router = roadnet.NewRouter(net)
		}
		for i := range g.travelers {
			if router != nil {
				g.travelers[i] = roadnet.NewRoutedTraveler(net, router, g.rng, g.speed())
			} else {
				g.travelers[i] = roadnet.NewTraveler(net, g.rng, g.speed())
			}
		}
		for w := 0; w < cfg.Warmup; w++ {
			for i := range g.travelers {
				g.travelers[i].Step(net, g.rng)
			}
		}
	} else {
		g.uniform = make([]motion.State, cfg.N)
		for i := range g.uniform {
			angle := g.rng.Float64() * 2 * math.Pi
			sp := g.speed()
			g.uniform[i] = motion.State{
				ID: motion.ObjectID(i),
				Pos: geom.Point{
					X: cfg.Area.MinX + g.rng.Float64()*cfg.Area.Width(),
					Y: cfg.Area.MinY + g.rng.Float64()*cfg.Area.Height(),
				},
				Vel: geom.Vec{X: sp * math.Cos(angle), Y: sp * math.Sin(angle)},
				Ref: 0,
			}
		}
	}
	for i := 0; i < cfg.N; i++ {
		g.reported[i] = g.truth(i, 0)
		// Stagger initial report deadlines uniformly over (0, U] so the
		// steady-state update rate is N/U per tick from the start.
		g.nextDue[i] = motion.Tick(1 + g.rng.Intn(int(cfg.U)))
	}
	return g, nil
}

// speed samples a skewed free-flow speed.
func (g *Generator) speed() float64 {
	u := math.Pow(g.rng.Float64(), g.cfg.SpeedSkew)
	return g.cfg.SpeedMin + u*(g.cfg.SpeedMax-g.cfg.SpeedMin)
}

// truth returns the actual state of object i at time t (only valid for
// t == g.now; t is carried for the Ref field).
func (g *Generator) truth(i int, t motion.Tick) motion.State {
	if g.cfg.Uniform {
		s := g.uniform[i]
		s.Ref = t
		return s
	}
	return motion.State{
		ID:  motion.ObjectID(i),
		Pos: g.travelers[i].Pos(g.net),
		Vel: g.travelers[i].Vel(g.net),
		Ref: t,
	}
}

// Now returns the current tick.
func (g *Generator) Now() motion.Tick { return g.now }

// Area returns the workload plane.
func (g *Generator) Area() geom.Rect { return g.cfg.Area }

// N returns the number of objects.
func (g *Generator) N() int { return g.cfg.N }

// InitialStates returns the states of all objects at tick 0 — the initial
// bulk insertions.
func (g *Generator) InitialStates() []motion.State {
	out := make([]motion.State, g.cfg.N)
	copy(out, g.reported)
	return out
}

// Advance moves the world forward one tick and returns the update stream for
// the new tick: a Delete of the stale movement followed by an Insert of the
// fresh one for every object that (a) changed velocity (turned at a network
// node or bounced off a wall), or (b) hit its U-tick report deadline.
func (g *Generator) Advance() []motion.Update {
	g.now++
	var updates []motion.Update
	for i := 0; i < g.cfg.N; i++ {
		turned := g.step(i)
		if turned || g.now >= g.nextDue[i] {
			old := g.reported[i]
			fresh := g.truth(i, g.now)
			updates = append(updates,
				motion.NewDelete(old, g.now),
				motion.NewInsert(fresh),
			)
			g.reported[i] = fresh
			g.nextDue[i] = g.now + g.cfg.U
		}
	}
	return updates
}

// step advances object i by one tick, returning whether its velocity
// changed.
func (g *Generator) step(i int) bool {
	if !g.cfg.Uniform {
		return g.travelers[i].Step(g.net, g.rng)
	}
	s := &g.uniform[i]
	s.Pos = s.Pos.Add(s.Vel)
	turned := false
	if s.Pos.X < g.cfg.Area.MinX || s.Pos.X >= g.cfg.Area.MaxX {
		s.Vel.X = -s.Vel.X
		s.Pos.X = clamp(s.Pos.X, g.cfg.Area.MinX, g.cfg.Area.MaxX-1e-9)
		turned = true
	}
	if s.Pos.Y < g.cfg.Area.MinY || s.Pos.Y >= g.cfg.Area.MaxY {
		s.Vel.Y = -s.Vel.Y
		s.Pos.Y = clamp(s.Pos.Y, g.cfg.Area.MinY, g.cfg.Area.MaxY-1e-9)
		turned = true
	}
	return turned
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
