package datagen

import (
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

func smallConfig(n int, uniform bool) Config {
	cfg := DefaultConfig(n)
	cfg.Warmup = 50
	cfg.Uniform = uniform
	cfg.Net.GridN = 0 // default network
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{N: 10},
		{N: 10, Area: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}},
		{N: 10, Area: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, U: 5, SpeedMin: -1, SpeedMax: 1},
		{N: 10, Area: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, U: 5, SpeedMin: 2, SpeedMax: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestInitialStatesInArea(t *testing.T) {
	for _, uniform := range []bool{false, true} {
		g, err := New(smallConfig(200, uniform))
		if err != nil {
			t.Fatal(err)
		}
		states := g.InitialStates()
		if len(states) != 200 {
			t.Fatalf("got %d states, want 200", len(states))
		}
		seen := map[motion.ObjectID]bool{}
		for _, s := range states {
			if !g.Area().ContainsClosed(s.Pos) {
				t.Fatalf("uniform=%v: initial pos %v outside area", uniform, s.Pos)
			}
			if s.Ref != 0 {
				t.Fatalf("initial Ref = %d, want 0", s.Ref)
			}
			if seen[s.ID] {
				t.Fatalf("duplicate object ID %d", s.ID)
			}
			seen[s.ID] = true
		}
	}
}

func TestUpdatesComeInDeleteInsertPairs(t *testing.T) {
	g, err := New(smallConfig(300, false))
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 30; tick++ {
		ups := g.Advance()
		if len(ups)%2 != 0 {
			t.Fatalf("tick %d: odd number of updates %d", tick, len(ups))
		}
		for i := 0; i < len(ups); i += 2 {
			del, ins := ups[i], ups[i+1]
			if del.Kind != motion.Delete || ins.Kind != motion.Insert {
				t.Fatalf("tick %d: pair kinds = %v,%v", tick, del.Kind, ins.Kind)
			}
			if del.State.ID != ins.State.ID {
				t.Fatalf("tick %d: pair IDs differ: %d vs %d", tick, del.State.ID, ins.State.ID)
			}
			if del.At != g.Now() || ins.At != g.Now() {
				t.Fatalf("tick %d: update At %d/%d, want %d", tick, del.At, ins.At, g.Now())
			}
			if ins.State.Ref != g.Now() {
				t.Fatalf("tick %d: insert Ref = %d, want %d", tick, ins.State.Ref, g.Now())
			}
		}
	}
}

func TestEveryObjectReportsWithinU(t *testing.T) {
	cfg := smallConfig(150, true) // uniform: turns are rare, deadline drives updates
	cfg.U = 10
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastReport := map[motion.ObjectID]motion.Tick{}
	for _, s := range g.InitialStates() {
		lastReport[s.ID] = 0
	}
	for tick := 0; tick < 60; tick++ {
		for _, u := range g.Advance() {
			if u.Kind == motion.Insert {
				lastReport[u.State.ID] = u.At
			}
		}
		for id, last := range lastReport {
			if g.Now()-last > cfg.U {
				t.Fatalf("object %d silent for %d > U=%d ticks", id, g.Now()-last, cfg.U)
			}
		}
	}
}

func TestUpdateRateAtLeastOnePercent(t *testing.T) {
	// The paper: "at least 1% of the objects issued updates at each
	// timestamp". With U=60 the deadline alone forces ~1.7%/tick.
	g, err := New(smallConfig(1000, false))
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 20; tick++ {
		ups := g.Advance()
		if len(ups)/2 < 10 {
			t.Fatalf("tick %d: only %d objects updated (<1%%)", tick, len(ups)/2)
		}
	}
}

func TestReportedStatePredictsTruthUntilTurn(t *testing.T) {
	// In uniform mode with huge area (no bouncing), the reported state must
	// predict the object's true position exactly at any later tick.
	cfg := smallConfig(50, true)
	cfg.Area = geom.Rect{MinX: -1e6, MinY: -1e6, MaxX: 1e6, MaxY: 1e6}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := map[motion.ObjectID]motion.State{}
	for _, s := range g.InitialStates() {
		states[s.ID] = s
	}
	for tick := 0; tick < 25; tick++ {
		for _, u := range g.Advance() {
			if u.Kind == motion.Insert {
				states[u.State.ID] = u.State
			}
		}
		for i := 0; i < g.N(); i++ {
			truth := g.truth(i, g.Now())
			pred := states[truth.ID].PositionAt(g.Now())
			if d := truth.Pos.Sub(pred).Norm(); d > 1e-6 {
				t.Fatalf("tick %d: object %d predicted %v, truth %v", g.Now(), truth.ID, pred, truth.Pos)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []motion.Update {
		g, err := New(smallConfig(100, false))
		if err != nil {
			t.Fatal(err)
		}
		var all []motion.Update
		for tick := 0; tick < 10; tick++ {
			all = append(all, g.Advance()...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("update %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestShortestPathMode(t *testing.T) {
	cfg := smallConfig(200, false)
	cfg.ShortestPath = true
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range g.InitialStates() {
		if !g.Area().ContainsClosed(s.Pos) {
			t.Fatalf("routed initial pos %v outside area", s.Pos)
		}
	}
	for tick := 0; tick < 20; tick++ {
		for _, u := range g.Advance() {
			if !g.Area().ContainsClosed(u.State.Pos) {
				t.Fatalf("routed update pos %v outside area", u.State.Pos)
			}
		}
	}
}
