//go:build !race

package dh

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
