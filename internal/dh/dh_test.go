package dh

import (
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

func area1000() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func newHist(t *testing.T, m int, h motion.Tick) *Histogram {
	t.Helper()
	hist, err := New(Config{Area: area1000(), M: m, Horizon: h})
	if err != nil {
		t.Fatal(err)
	}
	return hist
}

func randState(rng *rand.Rand, id int, ref motion.Tick) motion.State {
	return motion.State{
		ID:  motion.ObjectID(id),
		Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		Vel: geom.Vec{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1},
		Ref: ref,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{M: 10, Horizon: 5}); err == nil {
		t.Error("empty area must be rejected")
	}
	if _, err := New(Config{Area: area1000(), M: 0, Horizon: 5}); err == nil {
		t.Error("M=0 must be rejected")
	}
	if _, err := New(Config{Area: area1000(), M: 10, Horizon: -1}); err == nil {
		t.Error("negative horizon must be rejected")
	}
}

func TestCountsMatchBruteForce(t *testing.T) {
	h := newHist(t, 50, 90)
	rng := rand.New(rand.NewSource(1))
	const n = 500
	states := make([]motion.State, n)
	h.Advance(0)
	for i := range states {
		states[i] = randState(rng, i, 0)
		h.Insert(states[i])
	}
	for _, qt := range []motion.Tick{0, 45, 90} {
		for i := 0; i < 50; i += 7 {
			for j := 0; j < 50; j += 7 {
				want := 0
				for _, s := range states {
					p := s.PositionAt(qt)
					// Objects predicted outside the area do not exist at
					// that timestamp (package contract).
					if !area1000().Contains(p) {
						continue
					}
					if ci, cj := h.cellIndex(p); ci == i && cj == j {
						want++
					}
				}
				if got := h.Count(qt, i, j); got != want {
					t.Fatalf("qt=%d cell(%d,%d): count %d, want %d", qt, i, j, got, want)
				}
			}
		}
	}
}

func TestConservation(t *testing.T) {
	h := newHist(t, 20, 60)
	rng := rand.New(rand.NewSource(2))
	const n = 300
	h.Advance(0)
	states := make([]motion.State, n)
	for i := 0; i < n; i++ {
		states[i] = randState(rng, i, 0)
		h.Insert(states[i])
	}
	for _, qt := range []motion.Tick{0, 30, 60} {
		want := 0
		for _, s := range states {
			if area1000().Contains(s.PositionAt(qt)) {
				want++
			}
		}
		if got := h.Total(qt); got != want {
			t.Fatalf("Total(%d) = %d, want %d (in-area objects)", qt, got, want)
		}
	}
}

func TestDeleteRestoresCounts(t *testing.T) {
	h := newHist(t, 30, 40)
	rng := rand.New(rand.NewSource(3))
	h.Advance(0)
	base := make([]motion.State, 100)
	for i := range base {
		base[i] = randState(rng, i, 0)
		h.Insert(base[i])
	}
	snapshot := make([]int32, 30*30)
	copy(snapshot, h.slot(20))

	extra := randState(rng, 999, 0)
	h.Insert(extra)
	h.Delete(extra, 0)
	for idx, v := range h.slot(20) {
		if v != snapshot[idx] {
			t.Fatalf("slot 20 cell %d: %d != %d after insert+delete", idx, v, snapshot[idx])
		}
	}
}

func TestAdvanceRotation(t *testing.T) {
	h := newHist(t, 10, 5)
	h.Advance(0)
	s := motion.State{ID: 1, Pos: geom.Point{X: 500, Y: 500}, Ref: 0}
	h.Insert(s)
	if got := h.Total(5); got != 1 {
		t.Fatalf("Total(5) = %d, want 1", got)
	}
	h.Advance(3)
	// Window is now [3, 8]; timestamps 3..5 keep the old contribution,
	// 6..8 are fresh slots with zero counts.
	for qt := motion.Tick(3); qt <= 5; qt++ {
		if got := h.Total(qt); got != 1 {
			t.Fatalf("after advance, Total(%d) = %d, want 1", qt, got)
		}
	}
	for qt := motion.Tick(6); qt <= 8; qt++ {
		if got := h.Total(qt); got != 0 {
			t.Fatalf("after advance, Total(%d) = %d, want 0 (fresh slot)", qt, got)
		}
	}
	// Out-of-window queries return zero.
	if h.Total(2) != 0 || h.Total(9) != 0 {
		t.Error("out-of-window totals must be zero")
	}
}

func TestAdvanceFarJumpClearsEverything(t *testing.T) {
	h := newHist(t, 10, 5)
	h.Advance(0)
	h.Insert(motion.State{ID: 1, Pos: geom.Point{X: 1, Y: 1}, Ref: 0})
	h.Advance(100)
	for qt := motion.Tick(100); qt <= 105; qt++ {
		if got := h.Total(qt); got != 0 {
			t.Fatalf("Total(%d) = %d, want 0 after far jump", qt, got)
		}
	}
}

func TestUpdateCycleMaintainsWindow(t *testing.T) {
	// Simulate the real server loop: U=4, W=2, H=6. Every object re-reports
	// within U ticks; all queryable timestamps [now, now+W] must show the
	// full population.
	const U, W = 4, 2
	h := newHist(t, 15, U+W)
	rng := rand.New(rand.NewSource(4))
	const n = 120
	cur := make([]motion.State, n)
	h.Advance(0)
	for i := range cur {
		cur[i] = randState(rng, i, 0)
		h.Insert(cur[i])
	}
	due := make([]motion.Tick, n)
	for i := range due {
		due[i] = motion.Tick(1 + rng.Intn(U))
	}
	for now := motion.Tick(1); now <= 30; now++ {
		h.Advance(now)
		for i := 0; i < n; i++ {
			if now >= due[i] {
				h.Delete(cur[i], now)
				cur[i] = randState(rng, i, now)
				h.Insert(cur[i])
				due[i] = now + U
			}
		}
		for qt := now; qt <= now+W; qt++ {
			want := 0
			for i := 0; i < n; i++ {
				if area1000().Contains(cur[i].PositionAt(qt)) {
					want++
				}
			}
			if got := h.Total(qt); got != want {
				t.Fatalf("now=%d qt=%d: Total = %d, want %d (in-area)", now, qt, got, want)
			}
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	h := newHist(t, 100, 90)
	want := 91 * 100 * 100 * 4
	if got := h.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestCellRectTiling(t *testing.T) {
	h := newHist(t, 4, 0)
	var g geom.Region
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			g.Add(h.CellRect(i, j))
		}
	}
	if got, want := g.Area(), area1000().Area(); got != want {
		t.Errorf("cells tile area %g, want %g", got, want)
	}
	// CellEdge matches the tiling.
	if got := h.CellEdge(); got != 250 {
		t.Errorf("CellEdge = %g, want 250", got)
	}
}

func TestCellIndexClamping(t *testing.T) {
	h := newHist(t, 10, 0)
	i, j := h.cellIndex(geom.Point{X: -5, Y: 2000})
	if i != 0 || j != 9 {
		t.Errorf("cellIndex clamped to (%d,%d), want (0,9)", i, j)
	}
	i, j = h.cellIndex(geom.Point{X: 1000, Y: 999.999})
	if i != 9 || j != 9 {
		t.Errorf("cellIndex(border) = (%d,%d), want (9,9)", i, j)
	}
}
