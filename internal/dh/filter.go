package dh

import (
	"fmt"
	"math"
	"sync"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Mark is the filter-step classification of a grid cell (paper Algorithm 1).
type Mark uint8

const (
	// Rejected cells are certainly nowhere dense.
	Rejected Mark = iota
	// Accepted cells are certainly everywhere dense.
	Accepted
	// Candidate cells need the refinement step.
	Candidate
)

// String implements fmt.Stringer.
func (m Mark) String() string {
	switch m {
	case Accepted:
		return "accepted"
	case Rejected:
		return "rejected"
	case Candidate:
		return "candidate"
	default:
		return "unknown"
	}
}

// CellIndex addresses a grid cell.
type CellIndex struct{ I, J int }

// FilterResult is the outcome of the filtering step. Results come from a
// pool: a caller that is done with one (and with every slice derived from
// it) may Release it so steady-state filtering reuses the mark buffer
// instead of allocating a fresh one per query.
type FilterResult struct {
	h     *Histogram
	marks []Mark
	// Mark census, filled during classification: how many cells carry each
	// mark. Candidates/region builders preallocate from these.
	nAcc, nRej, nCand int
	// EtaL and EtaH are the conservative/expansive neighborhood radii used.
	EtaL, EtaH int
}

// filterResults pools FilterResult shells and their mark buffers; see
// FilterResult.Release.
var filterResults = sync.Pool{New: func() any { return new(FilterResult) }}

// filterScratch holds filterCounts' prefix-sum grid and FilterMerged's
// summation grid — per-call working memory that never escapes a filter call.
type filterScratch struct {
	pre    []int64
	merged []int32
}

var filterScratches = sync.Pool{New: func() any { return new(filterScratch) }}

// Release returns the result's buffers to the filter pool. Callers that own
// a FilterResult and are done with it (and every slice derived from it)
// should release it so steady-state filtering allocates nothing; releasing
// is optional — an unreleased result is simply collected. Release is
// idempotent; the result must not be used afterwards.
func (r *FilterResult) Release() {
	if r.h == nil {
		return
	}
	marks := r.marks
	*r = FilterResult{marks: marks[:0]}
	filterResults.Put(r)
}

// Mark returns the classification of cell (i, j).
func (r *FilterResult) Mark(i, j int) Mark { return r.marks[i*r.h.cfg.M+j] }

// Candidates returns the candidate cells in row-major order. The returned
// slice is freshly allocated at its exact size (from the mark census) and is
// owned by the caller — it stays valid after Release.
func (r *FilterResult) Candidates() []CellIndex {
	out := make([]CellIndex, 0, r.nCand)
	m := r.h.cfg.M
	for idx, mk := range r.marks {
		if mk == Candidate {
			out = append(out, CellIndex{idx / m, idx % m})
		}
	}
	return out
}

// AcceptedRegion returns the union of all accepted cells.
func (r *FilterResult) AcceptedRegion() geom.Region {
	return r.region(Accepted, r.nAcc)
}

// OptimisticRegion returns accepted plus candidate cells — the "optimistic
// DH" baseline answer (false negatives impossible, false positives likely).
func (r *FilterResult) OptimisticRegion() geom.Region {
	g := make(geom.Region, 0, r.nAcc+r.nCand)
	m := r.h.cfg.M
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if mk := r.marks[i*m+j]; mk == Accepted || mk == Candidate {
				g.Add(r.h.CellRect(i, j))
			}
		}
	}
	return g
}

// PessimisticRegion returns accepted cells only — the "pessimistic DH"
// baseline answer (false positives impossible, false negatives likely).
func (r *FilterResult) PessimisticRegion() geom.Region {
	return r.region(Accepted, r.nAcc)
}

func (r *FilterResult) region(want Mark, n int) geom.Region {
	g := make(geom.Region, 0, n)
	m := r.h.cfg.M
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if r.marks[i*m+j] == want {
				g.Add(r.h.CellRect(i, j))
			}
		}
	}
	return g
}

// CountMarks returns how many cells carry each mark (from the census taken
// during classification).
func (r *FilterResult) CountMarks() (accepted, rejected, candidates int) {
	return r.nAcc, r.nRej, r.nCand
}

// Filter runs the paper's Algorithm 1 (FilterQuery) at timestamp qt for a
// PDR query with density threshold rho and neighborhood edge l. It requires
// l_c <= l/2 (otherwise neither neighborhood bound is valid) and qt within
// the maintained window.
//
// pdr:hot — filter-step root for the hotpath analyzer family (docs/LINT.md).
func (h *Histogram) Filter(qt motion.Tick, rho, l float64) (*FilterResult, error) {
	if err := h.validateFilter(qt, rho, l); err != nil {
		return nil, err
	}
	return h.filterCounts(h.slot(qt), rho, l), nil
}

// FilterMerged runs the filter step over the element-wise sum of several
// histograms maintained over disjoint object populations (the sharded
// engine's per-shard histograms). Counters are integers, so the summed grid
// equals the grid a single histogram over the union population would hold,
// and the resulting marks — and every region derived from them — are
// bit-identical to the unsharded filter. All histograms must share the same
// configuration and window phase (the engine advances them in lockstep).
func FilterMerged(hs []*Histogram, qt motion.Tick, rho, l float64) (*FilterResult, error) {
	if len(hs) == 0 {
		return nil, fmt.Errorf("dh: no histograms to merge")
	}
	h := hs[0]
	for _, o := range hs[1:] {
		if o.cfg != h.cfg || o.base != h.base {
			return nil, fmt.Errorf("dh: merged histograms differ in configuration or window phase")
		}
	}
	if err := h.validateFilter(qt, rho, l); err != nil {
		return nil, err
	}
	if len(hs) == 1 {
		return h.filterCounts(h.slot(qt), rho, l), nil
	}
	sc := filterScratches.Get().(*filterScratch)
	sc.merged = growI32(sc.merged, h.cfg.M*h.cfg.M)
	merged := sc.merged
	for i := range merged {
		merged[i] = 0
	}
	for _, o := range hs {
		for i, c := range o.slot(qt) {
			merged[i] += c
		}
	}
	res := h.filterCounts(merged, rho, l)
	filterScratches.Put(sc)
	return res, nil
}

func (h *Histogram) validateFilter(qt motion.Tick, rho, l float64) error {
	if l <= 0 || rho < 0 {
		return fmt.Errorf("dh: bad query parameters rho=%g l=%g", rho, l)
	}
	lc := math.Max(h.lcX, h.lcY)
	if lc > l/2+1e-9 {
		return fmt.Errorf("dh: cell edge %g exceeds l/2 = %g; use a finer grid", lc, l/2)
	}
	if qt < h.base || qt > h.base+h.cfg.Horizon {
		return fmt.Errorf("dh: timestamp %d outside window [%d, %d]", qt, h.base, h.base+h.cfg.Horizon)
	}
	return nil
}

// filterCounts classifies every cell of one timestamp grid; counts is the
// grid to filter (a resident slot, or a merged copy).
func (h *Histogram) filterCounts(counts []int32, rho, l float64) *FilterResult {
	m := h.cfg.M
	// 2-D prefix sums: pre[(i+1)*(m+1)+(j+1)] = sum of counts[0..i][0..j].
	// The buffer is pooled; the fill loop writes rows 1..m x columns 1..m,
	// so only row 0 and column 0 (read by rectSum as the empty-prefix base)
	// need explicit zeroing on reuse.
	sc := filterScratches.Get().(*filterScratch)
	sc.pre = growI64(sc.pre, (m+1)*(m+1))
	pre := sc.pre
	for j := 0; j <= m; j++ {
		pre[j] = 0
	}
	for i := 1; i <= m; i++ {
		pre[i*(m+1)] = 0
	}
	for i := 0; i < m; i++ {
		var row int64
		for j := 0; j < m; j++ {
			row += int64(counts[i*m+j])
			pre[(i+1)*(m+1)+(j+1)] = pre[i*(m+1)+(j+1)] + row
		}
	}
	// rectSum returns the object count over cells [i1..i2] x [j1..j2],
	// clamped to the grid.
	rectSum := func(i1, j1, i2, j2 int) int64 {
		if i1 < 0 {
			i1 = 0
		}
		if j1 < 0 {
			j1 = 0
		}
		if i2 >= m {
			i2 = m - 1
		}
		if j2 >= m {
			j2 = m - 1
		}
		if i1 > i2 || j1 > j2 {
			return 0
		}
		return pre[(i2+1)*(m+1)+(j2+1)] - pre[i1*(m+1)+(j2+1)] -
			pre[(i2+1)*(m+1)+j1] + pre[i1*(m+1)+j1]
	}

	// Neighborhood radii (see DESIGN.md), computed per axis so non-square
	// cells stay sound: the conservative neighborhood (cells strictly
	// within eta_l) is contained in every point's l-square when
	// eta_l*lc <= l/2; the expansive neighborhood contains every point's
	// l-square when eta_h*lc >= l/2.
	etaLx := int(math.Floor(l / (2 * h.lcX) * (1 + 1e-12)))
	etaLy := int(math.Floor(l / (2 * h.lcY) * (1 + 1e-12)))
	etaHx := int(math.Ceil(l / (2 * h.lcX) * (1 - 1e-12)))
	etaHy := int(math.Ceil(l / (2 * h.lcY) * (1 - 1e-12)))
	threshold := rho * l * l

	res := filterResults.Get().(*FilterResult)
	if cap(res.marks) < m*m {
		res.marks = make([]Mark, m*m)
	}
	// The classification switch writes every cell, so a reused mark buffer
	// needs no clearing.
	res.marks = res.marks[:m*m]
	res.h = h
	res.nAcc, res.nRej, res.nCand = 0, 0, 0
	res.EtaL, res.EtaH = etaLx, etaHx
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			nc := rectSum(i-etaLx+1, j-etaLy+1, i+etaLx-1, j+etaLy-1)
			ne := rectSum(i-etaHx, j-etaHy, i+etaHx, j+etaHy)
			switch {
			case float64(nc) >= threshold:
				res.marks[i*m+j] = Accepted
				res.nAcc++
			case float64(ne) < threshold:
				res.marks[i*m+j] = Rejected
				res.nRej++
			default:
				res.marks[i*m+j] = Candidate
				res.nCand++
			}
		}
	}
	filterScratches.Put(sc)
	return res
}

// growI64 returns buf resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growI64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

// growI32 is growI64 for int32 scratch.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}
