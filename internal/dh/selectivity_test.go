package dh

import (
	"math"
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

func TestEstimateCountBrackets(t *testing.T) {
	// The fractional estimate must lie between the count over cells fully
	// inside r and the count over all cells intersecting r.
	h := newHist(t, 40, 0) // lc = 25
	rng := rand.New(rand.NewSource(1))
	states := make([]motion.State, 2000)
	h.Advance(0)
	for i := range states {
		states[i] = randState(rng, i, 0)
		h.Insert(states[i])
	}
	for trial := 0; trial < 40; trial++ {
		r := geom.Rect{MinX: rng.Float64() * 800, MinY: rng.Float64() * 800}
		r.MaxX = r.MinX + 20 + rng.Float64()*300
		r.MaxY = r.MinY + 20 + rng.Float64()*300

		var lower, upper int
		for i := 0; i < 40; i++ {
			for j := 0; j < 40; j++ {
				c := h.Count(0, i, j)
				if c == 0 {
					continue
				}
				cell := h.CellRect(i, j)
				if r.ContainsRect(cell) {
					lower += c
				}
				if cell.Intersects(r) {
					upper += c
				}
			}
		}
		est, err := h.EstimateCount(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if est < float64(lower)-1e-9 || est > float64(upper)+1e-9 {
			t.Fatalf("trial %d: estimate %g outside [%d, %d]", trial, est, lower, upper)
		}
	}
}

func TestEstimateCountAccuracyOnUniform(t *testing.T) {
	// On near-uniform data the estimator should land close to the truth.
	h := newHist(t, 50, 0)
	rng := rand.New(rand.NewSource(2))
	states := make([]motion.State, 20000)
	h.Advance(0)
	for i := range states {
		states[i] = motion.State{
			ID:  motion.ObjectID(i),
			Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Ref: 0,
		}
		h.Insert(states[i])
	}
	r := geom.Rect{MinX: 123, MinY: 234, MaxX: 567, MaxY: 789}
	exact := 0
	for _, s := range states {
		if r.Contains(s.Pos) {
			exact++
		}
	}
	est, err := h.EstimateCount(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-float64(exact)) / float64(exact); rel > 0.05 {
		t.Errorf("uniform estimate %g vs exact %d (rel err %.3f > 5%%)", est, exact, rel)
	}
}

func TestEstimateSelectivity(t *testing.T) {
	h := newHist(t, 20, 0)
	h.Advance(0)
	for i := 0; i < 100; i++ {
		h.Insert(motion.State{ID: motion.ObjectID(i), Pos: geom.Point{X: 100, Y: 100}, Ref: 0})
	}
	// All mass in one cell: selecting the whole area yields 1.
	sel, err := h.EstimateSelectivity(0, area1000())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-1) > 1e-9 {
		t.Errorf("whole-area selectivity %g, want 1", sel)
	}
	// Far-away window yields 0.
	sel, err = h.EstimateSelectivity(0, geom.Rect{MinX: 800, MinY: 800, MaxX: 900, MaxY: 900})
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0 {
		t.Errorf("empty window selectivity %g, want 0", sel)
	}
	// Validation and degenerate cases.
	if _, err := h.EstimateCount(99, area1000()); err == nil {
		t.Error("out-of-window timestamp must be rejected")
	}
	if est, _ := h.EstimateCount(0, geom.Rect{MinX: -50, MinY: -50, MaxX: -10, MaxY: -10}); est != 0 {
		t.Errorf("outside-area window estimate %g, want 0", est)
	}
	// Empty histogram selectivity is 0 without error.
	h2 := newHist(t, 20, 0)
	h2.Advance(0)
	if sel, err := h2.EstimateSelectivity(0, area1000()); err != nil || sel != 0 {
		t.Errorf("empty histogram selectivity = %g, %v", sel, err)
	}
}
