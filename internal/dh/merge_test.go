package dh

import (
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// TestFilterMergedMatchesSingle partitions one population across several
// histograms and checks the merged filter classifies every cell exactly as a
// single histogram over the whole population does — the additivity property
// the sharded engine's bit-identical merge rests on.
func TestFilterMergedMatchesSingle(t *testing.T) {
	cfg := Config{Area: geom.NewRect(0, 0, 1000, 1000), M: 50, Horizon: 90}
	rng := rand.New(rand.NewSource(7))
	for _, parts := range []int{1, 2, 3, 8} {
		whole, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := make([]*Histogram, parts)
		for i := range hs {
			if hs[i], err = New(cfg); err != nil {
				t.Fatal(err)
			}
		}
		whole.Advance(0)
		for _, h := range hs {
			h.Advance(0)
		}
		for id := 0; id < 400; id++ {
			st := motion.State{
				ID:  motion.ObjectID(id),
				Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				Vel: geom.Vec{X: rng.Float64()*6 - 3, Y: rng.Float64()*6 - 3},
				Ref: 0,
			}
			whole.Insert(st)
			hs[id%parts].Insert(st)
		}
		for _, qt := range []motion.Tick{0, 30, 90} {
			want, err := whole.Filter(qt, 0.002, 40)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FilterMerged(hs, qt, 0.002, 40)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < cfg.M; i++ {
				for j := 0; j < cfg.M; j++ {
					if got.Mark(i, j) != want.Mark(i, j) {
						t.Fatalf("parts=%d qt=%d cell (%d,%d): merged %v, single %v",
							parts, qt, i, j, got.Mark(i, j), want.Mark(i, j))
					}
				}
			}
		}
	}
}

// TestFilterMergedRejectsPhaseSkew ensures out-of-lockstep histograms are
// refused rather than silently merged into wrong counts.
func TestFilterMergedRejectsPhaseSkew(t *testing.T) {
	cfg := Config{Area: geom.NewRect(0, 0, 100, 100), M: 10, Horizon: 10}
	a, _ := New(cfg)
	b, _ := New(cfg)
	a.Advance(0)
	b.Advance(5)
	if _, err := FilterMerged([]*Histogram{a, b}, 5, 1, 30); err == nil {
		t.Fatal("expected an error for histograms with different bases")
	}
}
