// Package dh implements the density histogram (DH) of the PDR paper
// (Sec. 5): for every timestamp t in the maintenance horizon [now, now+H], an
// m x m grid of counters records how many predicted object positions fall in
// each cell. The histogram is updated incrementally from the location-update
// stream and supports the filtering step of the exact filtering-refinement
// method — classifying each cell as accepted (certainly dense), rejected
// (certainly not dense) or candidate — as well as the optimistic/pessimistic
// DH-only baselines the paper compares against.
//
// Timing model. An insert with reference time ref contributes to timestamps
// [ref, ref+H]. Because every object re-reports within U ticks and queries
// target at most W ticks ahead (H = U + W), every live object's contribution
// covers every queryable timestamp. The histogram ring rotates as time
// advances; a delete at time now removes the stale contribution from
// [now, oldRef+H].
package dh

import (
	"fmt"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Config parameterizes a histogram.
type Config struct {
	// Area is the indexed plane.
	Area geom.Rect
	// M is the grid resolution per axis (M x M cells). The paper uses
	// 10,000..62,500 total cells.
	M int
	// Horizon is H = U + W in ticks.
	Horizon motion.Tick
}

// Histogram maintains the per-timestamp grids.
type Histogram struct {
	cfg    Config
	lcX    float64 // cell width
	lcY    float64 // cell height
	base   motion.Tick
	slots  [][]int32 // Horizon+1 slots, each M*M counters; slot for absolute t is t mod (H+1)
	filled bool      // base initialized by first Advance/Insert
}

// New creates an empty histogram.
func New(cfg Config) (*Histogram, error) {
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("dh: empty area")
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("dh: M must be >= 1, got %d", cfg.M)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("dh: negative horizon %d", cfg.Horizon)
	}
	h := &Histogram{
		cfg:   cfg,
		lcX:   cfg.Area.Width() / float64(cfg.M),
		lcY:   cfg.Area.Height() / float64(cfg.M),
		slots: make([][]int32, cfg.Horizon+1),
	}
	for i := range h.slots {
		h.slots[i] = make([]int32, cfg.M*cfg.M)
	}
	return h, nil
}

// M returns the per-axis grid resolution.
func (h *Histogram) M() int { return h.cfg.M }

// CellEdge returns the cell edge length l_c (cells are square when the area
// is; the X edge is returned).
func (h *Histogram) CellEdge() float64 { return h.lcX }

// Horizon returns H.
func (h *Histogram) Horizon() motion.Tick { return h.cfg.Horizon }

// Now returns the first maintained timestamp.
func (h *Histogram) Now() motion.Tick { return h.base }

// MemoryBytes returns the counter storage footprint, the quantity the
// paper's memory-accuracy trade-off (Fig. 8c/8d) varies.
func (h *Histogram) MemoryBytes() int {
	return len(h.slots) * h.cfg.M * h.cfg.M * 4
}

func (h *Histogram) slot(t motion.Tick) []int32 {
	n := motion.Tick(len(h.slots))
	return h.slots[((t%n)+n)%n]
}

// Advance moves the maintained window to [now, now+H], clearing slots that
// rotate in. Advance never moves backwards.
func (h *Histogram) Advance(now motion.Tick) {
	if !h.filled {
		h.base = now
		h.filled = true
		return
	}
	if now <= h.base {
		return
	}
	// Slots for (base+H, now+H] are new; clear them. If the jump exceeds
	// the ring length, every slot is cleared exactly once.
	from, to := h.base+h.cfg.Horizon+1, now+h.cfg.Horizon
	if to-from >= motion.Tick(len(h.slots)) {
		from = to - motion.Tick(len(h.slots)) + 1
	}
	for t := from; t <= to; t++ {
		s := h.slot(t)
		for i := range s {
			s[i] = 0
		}
	}
	h.base = now
}

// cellIndex returns the (i, j) cell holding p, clamped to the grid.
func (h *Histogram) cellIndex(p geom.Point) (int, int) {
	i := int((p.X - h.cfg.Area.MinX) / h.lcX)
	j := int((p.Y - h.cfg.Area.MinY) / h.lcY)
	if i < 0 {
		i = 0
	}
	if i >= h.cfg.M {
		i = h.cfg.M - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= h.cfg.M {
		j = h.cfg.M - 1
	}
	return i, j
}

// CellRect returns the half-open rectangle of cell (i, j).
func (h *Histogram) CellRect(i, j int) geom.Rect {
	return geom.NewRect(
		h.cfg.Area.MinX+float64(i)*h.lcX,
		h.cfg.Area.MinY+float64(j)*h.lcY,
		h.cfg.Area.MinX+float64(i+1)*h.lcX,
		h.cfg.Area.MinY+float64(j+1)*h.lcY,
	)
}

// Insert adds the movement's predicted trajectory to every maintained
// timestamp it covers: [max(s.Ref, now), s.Ref+H] clipped to the window.
func (h *Histogram) Insert(s motion.State) {
	h.apply(s, s.Ref, +1)
}

// Delete removes a stale movement's remaining contribution: timestamps
// [at, s.Ref+H] clipped to the window (s is the state as originally
// inserted; at is the server time of the deletion).
func (h *Histogram) Delete(s motion.State, at motion.Tick) {
	h.apply(s, at, -1)
}

// Apply dispatches an update record.
//
// pdr:hot — update-stream root for the hotpath analyzer family
// (docs/LINT.md); Insert/Delete and the Lemma-coverage loop are reached
// through it.
func (h *Histogram) Apply(u motion.Update) {
	switch u.Kind {
	case motion.Insert:
		h.Insert(u.State)
	case motion.Delete:
		h.Delete(u.State, u.At)
	}
}

func (h *Histogram) apply(s motion.State, from motion.Tick, delta int32) {
	if !h.filled {
		h.base = from
		h.filled = true
	}
	lo, hi := from, s.Ref+h.cfg.Horizon
	if lo < h.base {
		lo = h.base
	}
	if hi > h.base+h.cfg.Horizon {
		hi = h.base + h.cfg.Horizon
	}
	for t := lo; t <= hi; t++ {
		p := s.PositionAt(t)
		// An object whose predicted position leaves the monitored area does
		// not exist at that timestamp (see the package contract): skipping
		// here, in Delete's identical recomputation, and in every query
		// method keeps all methods exactly consistent.
		if !h.cfg.Area.Contains(p) {
			continue
		}
		i, j := h.cellIndex(p)
		h.slot(t)[i*h.cfg.M+j] += delta
	}
}

// Count returns the number of objects predicted in cell (i, j) at time t.
func (h *Histogram) Count(t motion.Tick, i, j int) int {
	if t < h.base || t > h.base+h.cfg.Horizon {
		return 0
	}
	return int(h.slot(t)[i*h.cfg.M+j])
}

// Total returns the total count at timestamp t across all cells (equals the
// number of live objects whose coverage includes t).
func (h *Histogram) Total(t motion.Tick) int {
	if t < h.base || t > h.base+h.cfg.Horizon {
		return 0
	}
	var sum int
	for _, c := range h.slot(t) {
		sum += int(c)
	}
	return sum
}
