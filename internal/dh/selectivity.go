package dh

import (
	"fmt"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// EstimateCount estimates the number of objects inside r at timestamp t
// from the histogram, assuming uniform density within each cell (the
// standard histogram selectivity estimator the paper's related work
// applies to predictive range queries). The estimate always lies between
// the count over fully-contained cells and the count over all intersected
// cells.
func (h *Histogram) EstimateCount(t motion.Tick, r geom.Rect) (float64, error) {
	if t < h.base || t > h.base+h.cfg.Horizon {
		return 0, fmt.Errorf("dh: timestamp %d outside window [%d, %d]", t, h.base, h.base+h.cfg.Horizon)
	}
	w := r.Intersect(h.cfg.Area)
	if w.IsEmpty() {
		return 0, nil
	}
	i1, j1 := h.cellIndex(geom.Point{X: w.MinX, Y: w.MinY})
	i2, j2 := h.cellIndex(geom.Point{X: w.MaxX - 1e-12, Y: w.MaxY - 1e-12})
	var est float64
	for i := i1; i <= i2; i++ {
		for j := j1; j <= j2; j++ {
			c := h.Count(t, i, j)
			if c == 0 {
				continue
			}
			cell := h.CellRect(i, j)
			frac := cell.Intersect(w).Area() / cell.Area()
			est += float64(c) * frac
		}
	}
	return est, nil
}

// EstimateSelectivity returns EstimateCount normalized by the timestamp's
// total population (zero when the histogram is empty at t).
func (h *Histogram) EstimateSelectivity(t motion.Tick, r geom.Rect) (float64, error) {
	total := h.Total(t)
	if total == 0 {
		return 0, nil
	}
	est, err := h.EstimateCount(t, r)
	if err != nil {
		return 0, err
	}
	return est / float64(total), nil
}
