package dh

import (
	"math/rand"
	"testing"

	"pdr/internal/motion"
)

func BenchmarkInsert(b *testing.B) {
	h, err := New(Config{Area: area1000(), M: 100, Horizon: 90})
	if err != nil {
		b.Fatal(err)
	}
	h.Advance(0)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(randState(rng, i, 0))
	}
}

func BenchmarkFilter(b *testing.B) {
	h, err := New(Config{Area: area1000(), M: 100, Horizon: 90})
	if err != nil {
		b.Fatal(err)
	}
	h.Advance(0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		h.Insert(randState(rng, i, 0))
	}
	rho := 50000.0 * 3 / 1e6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Filter(motion.Tick(i%91), rho, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdvance(b *testing.B) {
	h, err := New(Config{Area: area1000(), M: 100, Horizon: 90})
	if err != nil {
		b.Fatal(err)
	}
	h.Advance(0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		h.Insert(randState(rng, i, 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Advance(motion.Tick(i + 1))
	}
}
