package dh

import (
	"math/rand"
	"slices"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// pointDensity computes the exact paper-definition point density at p:
// objects q with px-l/2 < qx <= px+l/2 (and same in y) over l^2.
func pointDensity(states []motion.State, qt motion.Tick, p geom.Point, l float64) float64 {
	n := 0
	for _, s := range states {
		q := s.PositionAt(qt)
		if q.X > p.X-l/2 && q.X <= p.X+l/2 && q.Y > p.Y-l/2 && q.Y <= p.Y+l/2 {
			n++
		}
	}
	return float64(n) / (l * l)
}

func clusteredStates(rng *rand.Rand, n int) []motion.State {
	states := make([]motion.State, n)
	for i := range states {
		var p geom.Point
		if i < n/2 { // dense cluster near (300, 300)
			p = geom.Point{X: 280 + rng.Float64()*40, Y: 280 + rng.Float64()*40}
		} else {
			p = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		states[i] = motion.State{ID: motion.ObjectID(i), Pos: p, Ref: 0}
	}
	return states
}

func TestFilterValidation(t *testing.T) {
	h := newHist(t, 20, 10) // lc = 50
	h.Advance(0)
	if _, err := h.Filter(0, 1, -5); err == nil {
		t.Error("negative l must be rejected")
	}
	if _, err := h.Filter(0, -1, 30); err == nil {
		t.Error("negative rho must be rejected")
	}
	if _, err := h.Filter(0, 1, 60); err == nil {
		t.Error("l < 2*lc must be rejected (lc=50, l=60)")
	}
	if _, err := h.Filter(99, 1, 200); err == nil {
		t.Error("out-of-window timestamp must be rejected")
	}
	if _, err := h.Filter(0, 1, 200); err != nil {
		t.Errorf("valid filter failed: %v", err)
	}
}

func TestFilterEtas(t *testing.T) {
	h := newHist(t, 100, 0) // lc = 10
	h.Advance(0)
	res, err := h.Filter(0, 0.001, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.EtaL != 1 || res.EtaH != 2 {
		t.Errorf("l=30 lc=10: etaL=%d etaH=%d, want 1 and 2", res.EtaL, res.EtaH)
	}
	res, err = h.Filter(0, 0.001, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.EtaL != 1 || res.EtaH != 1 {
		t.Errorf("l=20 lc=10: etaL=%d etaH=%d, want 1 and 1", res.EtaL, res.EtaH)
	}
}

func TestFilterSoundness(t *testing.T) {
	// Accepted cells must be everywhere rho-dense; rejected cells must be
	// nowhere rho-dense (verified by exact point densities on a sample
	// grid within each cell).
	h := newHist(t, 100, 0) // lc = 10
	rng := rand.New(rand.NewSource(5))
	states := clusteredStates(rng, 400)
	h.Advance(0)
	for _, s := range states {
		h.Insert(s)
	}
	const l = 30.0
	rho := 200.0 / 1e6 * 3 // paper's relative threshold with varrho=3 for N=200... scaled for the cluster
	res, err := h.Filter(0, rho, l)
	if err != nil {
		t.Fatal(err)
	}
	acc, rej, cand := res.CountMarks()
	if acc == 0 {
		t.Log("warning: no accepted cells; soundness test degenerate")
	}
	t.Logf("accepted=%d rejected=%d candidates=%d", acc, rej, cand)

	samplesPerCell := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			mk := res.Mark(i, j)
			if mk == Candidate {
				continue
			}
			cell := h.CellRect(i, j)
			for _, fx := range samplesPerCell {
				for _, fy := range samplesPerCell {
					p := geom.Point{
						X: cell.MinX + fx*cell.Width(),
						Y: cell.MinY + fy*cell.Height(),
					}
					d := pointDensity(states, 0, p, l)
					if mk == Accepted && d < rho {
						t.Fatalf("accepted cell (%d,%d) has point %v with density %g < rho %g", i, j, p, d, rho)
					}
					if mk == Rejected && d >= rho {
						t.Fatalf("rejected cell (%d,%d) has point %v with density %g >= rho %g", i, j, p, d, rho)
					}
				}
			}
		}
	}
}

func TestFilterRegionsNesting(t *testing.T) {
	// Pessimistic region (accepted only) is a subset of the optimistic
	// region (accepted + candidates).
	h := newHist(t, 50, 0)
	rng := rand.New(rand.NewSource(6))
	states := clusteredStates(rng, 300)
	h.Advance(0)
	for _, s := range states {
		h.Insert(s)
	}
	res, err := h.Filter(0, 3*300.0/1e6, 60)
	if err != nil {
		t.Fatal(err)
	}
	pess := res.PessimisticRegion()
	opt := res.OptimisticRegion()
	if d := pess.DifferenceArea(opt); d > 1e-9 {
		t.Errorf("pessimistic region not inside optimistic region (diff area %g)", d)
	}
	if pess.Area() > opt.Area() {
		t.Error("pessimistic region larger than optimistic")
	}
	// AcceptedRegion must equal the pessimistic region.
	if got, want := res.AcceptedRegion().Area(), pess.Area(); got != want {
		t.Errorf("AcceptedRegion area %g != pessimistic area %g", got, want)
	}
}

func TestFilterCandidatesEnumeration(t *testing.T) {
	h := newHist(t, 40, 0)
	rng := rand.New(rand.NewSource(7))
	states := clusteredStates(rng, 200)
	h.Advance(0)
	for _, s := range states {
		h.Insert(s)
	}
	res, err := h.Filter(0, 2*200.0/1e6, 60)
	if err != nil {
		t.Fatal(err)
	}
	_, _, cand := res.CountMarks()
	cells := res.Candidates()
	if len(cells) != cand {
		t.Fatalf("Candidates() returned %d cells, CountMarks says %d", len(cells), cand)
	}
	for _, c := range cells {
		if res.Mark(c.I, c.J) != Candidate {
			t.Fatalf("cell (%d,%d) in Candidates() but marked %v", c.I, c.J, res.Mark(c.I, c.J))
		}
	}
}

func TestMarkString(t *testing.T) {
	if Accepted.String() != "accepted" || Rejected.String() != "rejected" ||
		Candidate.String() != "candidate" || Mark(9).String() != "unknown" {
		t.Error("Mark.String mismatch")
	}
}

// TestFilterAllocationFree pins the filter kernel at zero steady-state
// allocations: once the result and scratch pools are warm, a
// Filter-then-Release cycle must not touch the heap (the zero-allocation
// contract documented in docs/PERFORMANCE.md).
func TestFilterAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	h, err := New(Config{Area: geom.NewRect(0, 0, 100, 100), M: 20, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Advance(0)
	for i := 0; i < 500; i++ {
		h.Insert(motion.State{
			ID:  motion.ObjectID(i + 1),
			Pos: geom.Point{X: float64(i%100) + 0.5, Y: float64(i/5%100) + 0.5},
			Ref: 0,
		})
	}
	if n := testing.AllocsPerRun(100, func() {
		fr, err := h.Filter(3, 0.05, 12)
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}); n != 0 {
		t.Errorf("Filter+Release allocates %v per run, want 0", n)
	}
}

// TestFilterReleaseReuse checks pooled results stay correct: a released
// result's buffers may be reused by the next filter call, and the census,
// marks, and derived regions of the fresh result match a from-scratch
// evaluation.
func TestFilterReleaseReuse(t *testing.T) {
	h, err := New(Config{Area: geom.NewRect(0, 0, 100, 100), M: 20, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Advance(0)
	for i := 0; i < 800; i++ {
		h.Insert(motion.State{
			ID:  motion.ObjectID(i + 1),
			Pos: geom.Point{X: float64(i % 97), Y: float64((i * 7) % 89)},
			Ref: 0,
		})
	}
	// Reference evaluation, never released.
	ref, err := h.Filter(2, 0.08, 12)
	if err != nil {
		t.Fatal(err)
	}
	refAcc, refRej, refCand := ref.CountMarks()
	refCands := ref.Candidates()
	refRegion := ref.AcceptedRegion()
	// Churn the pool with differently-parameterized filters.
	for i := 0; i < 10; i++ {
		fr, err := h.Filter(motion.Tick(i%5), 0.01*float64(i+1), 14)
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}
	got, err := h.Filter(2, 0.08, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	acc, rej, cand := got.CountMarks()
	if acc != refAcc || rej != refRej || cand != refCand {
		t.Fatalf("census after pool churn = (%d,%d,%d), want (%d,%d,%d)", acc, rej, cand, refAcc, refRej, refCand)
	}
	if gc := got.Candidates(); !slices.Equal(gc, refCands) {
		t.Fatalf("candidates after pool churn differ: got %v want %v", gc, refCands)
	}
	if gr := got.AcceptedRegion(); !slices.Equal(gr, refRegion) {
		t.Fatalf("accepted region after pool churn differs: got %v want %v", gr, refRegion)
	}
}
