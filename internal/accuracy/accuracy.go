// Package accuracy computes the PDR paper's answer-quality metrics
// (Sec. 7.2): given the exact dense region D* and a method's answer D, the
// false-positive ratio r_fp = area(D \ D*) / area(D*) and the false-negative
// ratio r_fn = area(D* \ D) / area(D*). r_fp may exceed 1; r_fn never does.
package accuracy

import "pdr/internal/geom"

// Ratios returns (r_fp, r_fn) for answer approx against ground truth exact.
// When the exact region is empty, r_fn is 0 and r_fp is 0 if the answer is
// also empty, +Inf-free convention: a non-empty answer against an empty
// truth reports r_fp as the answer's area (a dimensionless blow-up is
// undefined; callers compare methods at fixed truth, so this keeps ordering
// meaningful).
func Ratios(exact, approx geom.Region) (rfp, rfn float64) {
	exactArea := exact.Area()
	if exactArea == 0 {
		return approx.Area(), 0
	}
	inter := approx.IntersectionArea(exact)
	fp := approx.Area() - inter
	fn := exactArea - inter
	if fp < 0 {
		fp = 0
	}
	if fn < 0 {
		fn = 0
	}
	return fp / exactArea, fn / exactArea
}
