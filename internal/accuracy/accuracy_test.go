package accuracy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pdr/internal/geom"
)

func TestRatiosPerfect(t *testing.T) {
	g := geom.Region{{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	fp, fn := Ratios(g, g)
	if fp != 0 || fn != 0 {
		t.Errorf("perfect answer: fp=%g fn=%g, want 0, 0", fp, fn)
	}
}

func TestRatiosDisjoint(t *testing.T) {
	exact := geom.Region{{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	approx := geom.Region{{MinX: 20, MinY: 20, MaxX: 30, MaxY: 30}}
	fp, fn := Ratios(exact, approx)
	if fp != 1 || fn != 1 {
		t.Errorf("disjoint equal-area: fp=%g fn=%g, want 1, 1", fp, fn)
	}
}

func TestRatiosSubset(t *testing.T) {
	exact := geom.Region{{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	approx := geom.Region{{MinX: 0, MinY: 0, MaxX: 5, MaxY: 10}} // half
	fp, fn := Ratios(exact, approx)
	if fp != 0 {
		t.Errorf("subset answer fp = %g, want 0", fp)
	}
	if math.Abs(fn-0.5) > 1e-12 {
		t.Errorf("subset answer fn = %g, want 0.5", fn)
	}
}

func TestRatiosSuperset(t *testing.T) {
	exact := geom.Region{{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	approx := geom.Region{{MinX: 0, MinY: 0, MaxX: 20, MaxY: 10}} // double
	fp, fn := Ratios(exact, approx)
	if math.Abs(fp-1) > 1e-12 {
		t.Errorf("superset answer fp = %g, want 1 (r_fp may exceed 100%%)", fp)
	}
	if fn != 0 {
		t.Errorf("superset answer fn = %g, want 0", fn)
	}
}

func TestRatiosEmptyTruth(t *testing.T) {
	fp, fn := Ratios(nil, nil)
	if fp != 0 || fn != 0 {
		t.Errorf("both empty: fp=%g fn=%g", fp, fn)
	}
	fp, fn = Ratios(nil, geom.Region{{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}})
	if fp != 4 || fn != 0 {
		t.Errorf("empty truth, 2x2 answer: fp=%g fn=%g, want 4, 0", fp, fn)
	}
}

func TestQuickRatioBoundsAndIdentities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() geom.Region {
			n := 1 + rng.Intn(5)
			g := make(geom.Region, n)
			for i := range g {
				x, y := rng.Float64()*50, rng.Float64()*50
				g[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
			}
			return g
		}
		exact, approx := mk(), mk()
		fp, fn := Ratios(exact, approx)
		if fn < -1e-12 || fn > 1+1e-12 || fp < -1e-12 {
			return false
		}
		// Identity: area(approx) = area(exact)*(fp) + intersection, and
		// intersection = area(exact)*(1-fn).
		ea := exact.Area()
		if ea == 0 {
			return true
		}
		lhs := approx.Area()
		rhs := fp*ea + (1-fn)*ea
		return math.Abs(lhs-rhs) < 1e-6*(1+lhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
