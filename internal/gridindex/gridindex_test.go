package gridindex

import (
	"math/rand"
	"sort"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
)

func newIndex(t *testing.T) *Index {
	t.Helper()
	g, err := New(Config{
		Pool: storage.NewPool(0),
		Area: geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		M:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomState(rng *rand.Rand, id int, ref motion.Tick) motion.State {
	return motion.State{
		ID:  motion.ObjectID(id),
		Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		Vel: geom.Vec{X: rng.Float64()*3 - 1.5, Y: rng.Float64()*3 - 1.5},
		Ref: ref,
	}
}

func TestNewValidation(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	if _, err := New(Config{Area: area, M: 4}); err == nil {
		t.Error("nil pool must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), M: 4}); err == nil {
		t.Error("empty area must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), Area: area, M: 0}); err == nil {
		t.Error("M=0 must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), Area: area, M: 4, PageSize: 16}); err == nil {
		t.Error("tiny page must be rejected")
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	g := newIndex(t)
	rng := rand.New(rand.NewSource(1))
	const n = 3000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, motion.Tick(rng.Intn(10)))
		g.Insert(states[i])
	}
	g.SetNow(10)
	if g.Len() != n {
		t.Fatalf("Len = %d, want %d", g.Len(), n)
	}
	for trial := 0; trial < 40; trial++ {
		qt := motion.Tick(10 + rng.Intn(90))
		r := geom.Rect{MinX: rng.Float64() * 800, MinY: rng.Float64() * 800}
		r.MaxX = r.MinX + 50 + rng.Float64()*200
		r.MaxY = r.MinY + 50 + rng.Float64()*200
		var want, got []int
		for _, s := range states {
			if r.ContainsClosed(s.PositionAt(qt)) {
				want = append(want, int(s.ID))
			}
		}
		for _, s := range g.RangeQuery(r, qt) {
			got = append(got, int(s.ID))
		}
		sort.Ints(want)
		sort.Ints(got)
		if len(want) != len(got) {
			t.Fatalf("trial %d qt=%d: got %d results, want %d", trial, qt, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: result mismatch at %d", trial, i)
			}
		}
	}
}

func TestDeleteAndEmptyCells(t *testing.T) {
	g := newIndex(t)
	rng := rand.New(rand.NewSource(2))
	const n = 1000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		g.Insert(states[i])
	}
	for _, i := range rng.Perm(n) {
		if !g.Delete(states[i]) {
			t.Fatalf("Delete(%d) failed", states[i].ID)
		}
	}
	if g.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", g.Len())
	}
	if g.pool.NumPages() != 0 {
		t.Fatalf("%d pages leaked", g.pool.NumPages())
	}
	if g.Delete(states[0]) {
		t.Error("double delete succeeded")
	}
	if got := g.All(); len(got) != 0 {
		t.Fatalf("All returned %d entries from empty index", len(got))
	}
}

func TestPageChains(t *testing.T) {
	// Cram many objects into one bucket so page chains grow and shrink.
	g := newIndex(t)
	var states []motion.State
	for i := 0; i < 500; i++ {
		s := motion.State{
			ID:  motion.ObjectID(i),
			Pos: geom.Point{X: 10 + float64(i)*0.01, Y: 10},
			Ref: 0,
		}
		states = append(states, s)
		g.Insert(s)
	}
	// All in one cell: chain length = ceil(500/perPage).
	c := g.cells[g.cellIdx(states[0].Pos)]
	wantPages := (500 + g.perPage - 1) / g.perPage
	if len(c.pages) != wantPages {
		t.Fatalf("chain has %d pages, want %d (perPage=%d)", len(c.pages), wantPages, g.perPage)
	}
	// Query finds all of them.
	got := g.RangeQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}, 0)
	if len(got) != 500 {
		t.Fatalf("query found %d, want 500", len(got))
	}
	// Deletions shrink the chain.
	for _, s := range states {
		if !g.Delete(s) {
			t.Fatalf("Delete(%d) failed", s.ID)
		}
	}
	if got := len(g.cells[g.cellIdx(states[0].Pos)].pages); got != 0 {
		t.Fatalf("chain still has %d pages after deleting all", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	g := newIndex(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		g.Insert(randomState(rng, i, 0))
	}
	visits := 0
	g.Search(geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 0, func(motion.State) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("early stop visited %d, want 5", visits)
	}
}

func TestIOAccounting(t *testing.T) {
	pool := storage.NewPool(2)
	g, err := New(Config{Pool: pool, Area: geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, M: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		g.Insert(randomState(rng, i, 0))
	}
	pool.ResetStats()
	g.RangeQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500}, 30)
	if pool.Stats().Reads == 0 {
		t.Error("query over a tiny buffer must incur physical reads")
	}
}

func TestFastMoverReachability(t *testing.T) {
	// A single very fast object must still be found far from its bucket at
	// future timestamps (the vmax expansion).
	g := newIndex(t)
	s := motion.State{ID: 1, Pos: geom.Point{X: 10, Y: 500}, Vel: geom.Vec{X: 9, Y: 0}, Ref: 0}
	g.Insert(s)
	got := g.RangeQuery(geom.Rect{MinX: 890, MinY: 490, MaxX: 920, MaxY: 510}, 100)
	if len(got) != 1 {
		t.Fatalf("fast mover not found at qt=100: got %d results", len(got))
	}
}
