// Package gridindex implements a paged uniform-grid index over predicted
// object movements — a SETI/LUGrid-style alternative to the TPR-tree for
// the refinement step's timestamp range queries.
//
// Objects are bucketed by their position at their own reference time; a
// query at future time qt conservatively expands each cell by the maximum
// observed speed times the cell's entry age before testing overlap, then
// verifies candidates exactly. Buckets are page chains drawn from the same
// buffer pool as the TPR-tree, so I/O comparisons between the two access
// methods are like for like.
package gridindex

import (
	"fmt"
	"math"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
)

const (
	headerBytes = 24
	entryBytes  = 8 + 8 + 4*8 // id + ref + position + velocity
)

// Config parameterizes the index.
type Config struct {
	// Pool backs the bucket pages. Required.
	Pool *storage.Pool
	// Area is the indexed plane.
	Area geom.Rect
	// M is the per-axis bucket count.
	M int
	// PageSize in bytes sets the bucket page capacity (default 4 KB).
	PageSize int
}

// page is one bucket page: a slice of movement states.
type page struct {
	entries []motion.State
}

// cell is one bucket: a page chain plus conservative metadata.
type cell struct {
	pages  []storage.PageID
	count  int
	minRef motion.Tick // lower bound on the reference times of entries
}

// Index is a paged uniform-grid access method. Not safe for concurrent use.
type Index struct {
	pool    *storage.Pool
	area    geom.Rect
	m       int
	cellW   float64
	cellH   float64
	perPage int
	now     motion.Tick
	size    int
	vmax    float64 // max |velocity component| ever inserted
	cells   []cell
}

// New creates an empty grid index.
func New(cfg Config) (*Index, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("gridindex: nil pool")
	}
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("gridindex: empty area")
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("gridindex: M must be >= 1, got %d", cfg.M)
	}
	ps := cfg.PageSize
	if ps == 0 {
		ps = storage.DefaultPageSize
	}
	perPage := (ps - headerBytes) / entryBytes
	if perPage < 1 {
		return nil, fmt.Errorf("gridindex: page size %d too small", ps)
	}
	g := &Index{
		pool:    cfg.Pool,
		area:    cfg.Area,
		m:       cfg.M,
		cellW:   cfg.Area.Width() / float64(cfg.M),
		cellH:   cfg.Area.Height() / float64(cfg.M),
		perPage: perPage,
		cells:   make([]cell, cfg.M*cfg.M),
	}
	for i := range g.cells {
		g.cells[i].minRef = math.MaxInt64
	}
	return g, nil
}

// Len returns the number of indexed movements.
func (g *Index) Len() int { return g.size }

// Now returns the index's current time anchor.
func (g *Index) Now() motion.Tick { return g.now }

// SetNow advances the index's notion of current time (monotone).
func (g *Index) SetNow(now motion.Tick) {
	if now > g.now {
		g.now = now
	}
}

func (g *Index) cellIdx(p geom.Point) int {
	i := int((p.X - g.area.MinX) / g.cellW)
	j := int((p.Y - g.area.MinY) / g.cellH)
	if i < 0 {
		i = 0
	}
	if i >= g.m {
		i = g.m - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g.m {
		j = g.m - 1
	}
	return i*g.m + j
}

func (g *Index) cellRect(idx int) geom.Rect {
	i, j := idx/g.m, idx%g.m
	return geom.NewRect(
		g.area.MinX+float64(i)*g.cellW,
		g.area.MinY+float64(j)*g.cellH,
		g.area.MinX+float64(i+1)*g.cellW,
		g.area.MinY+float64(j+1)*g.cellH,
	)
}

func (g *Index) readPage(id storage.PageID) *page {
	v, err := g.pool.Read(id)
	if err != nil {
		panic("gridindex: " + err.Error()) // structural corruption
	}
	return v.(*page)
}

func (g *Index) writePage(id storage.PageID, p *page) {
	if err := g.pool.Write(id, p); err != nil {
		panic("gridindex: " + err.Error())
	}
}

// Insert indexes the movement s in the bucket of its reference position.
func (g *Index) Insert(s motion.State) {
	c := &g.cells[g.cellIdx(s.Pos)]
	if v := math.Max(math.Abs(s.Vel.X), math.Abs(s.Vel.Y)); v > g.vmax {
		g.vmax = v
	}
	if s.Ref < c.minRef {
		c.minRef = s.Ref
	}
	// Append to the last page with space, else start a new page.
	if n := len(c.pages); n > 0 {
		last := c.pages[n-1]
		pg := g.readPage(last)
		if len(pg.entries) < g.perPage {
			pg.entries = append(pg.entries, s)
			g.writePage(last, pg)
			c.count++
			g.size++
			return
		}
	}
	id := g.pool.Alloc()
	g.writePage(id, &page{entries: []motion.State{s}})
	c.pages = append(c.pages, id)
	c.count++
	g.size++
}

// Delete removes the movement s (matched exactly as inserted), reporting
// whether it was found.
func (g *Index) Delete(s motion.State) bool {
	c := &g.cells[g.cellIdx(s.Pos)]
	for pi, id := range c.pages {
		pg := g.readPage(id)
		for ei, e := range pg.entries {
			if e.ID != s.ID || e != s {
				continue
			}
			pg.entries = append(pg.entries[:ei], pg.entries[ei+1:]...)
			c.count--
			g.size--
			if len(pg.entries) == 0 {
				g.pool.Free(id)
				c.pages = append(c.pages[:pi], c.pages[pi+1:]...)
			} else {
				g.writePage(id, pg)
			}
			if c.count == 0 {
				c.minRef = math.MaxInt64 // reset the age bound
			}
			return true
		}
	}
	return false
}

// Search visits every movement whose predicted position at qt lies in r
// (closed containment), mirroring the TPR-tree's Search contract. fn
// returning false stops the search.
func (g *Index) Search(r geom.Rect, qt motion.Tick, fn func(motion.State) bool) {
	for idx := range g.cells {
		c := &g.cells[idx]
		if c.count == 0 {
			continue
		}
		// Conservative reach: an entry anchored at ref can have moved at
		// most vmax*(qt-ref) from its bucket position by qt.
		age := qt - c.minRef
		if age < 0 {
			age = 0
		}
		reach := g.vmax * float64(age)
		if !overlapsClosed(g.cellRect(idx).Grow(reach), r) {
			continue
		}
		for _, id := range c.pages {
			pg := g.readPage(id)
			for _, e := range pg.entries {
				if r.ContainsClosed(e.PositionAt(qt)) {
					if !fn(e) {
						return
					}
				}
			}
		}
	}
}

// overlapsClosed tests rectangle overlap treating both as closed sets.
func overlapsClosed(a, b geom.Rect) bool {
	return a.MinX <= b.MaxX && a.MaxX >= b.MinX && a.MinY <= b.MaxY && a.MaxY >= b.MinY
}

// RangeQuery collects Search results.
func (g *Index) RangeQuery(r geom.Rect, qt motion.Tick) []motion.State {
	var out []motion.State
	g.Search(r, qt, func(s motion.State) bool {
		out = append(out, s)
		return true
	})
	return out
}

// All returns every indexed movement.
func (g *Index) All() []motion.State {
	out := make([]motion.State, 0, g.size)
	for idx := range g.cells {
		for _, id := range g.cells[idx].pages {
			out = append(out, g.readPage(id).entries...)
		}
	}
	return out
}
