package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestRuntimeStatsGauges(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeStats(reg)
	if got := rs.Goroutines(); got <= 0 {
		t.Errorf("Goroutines() = %d, want > 0", got)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		"pdr_go_goroutines", "pdr_go_heap_alloc_bytes", "pdr_go_heap_sys_bytes",
		"pdr_go_heap_objects", "pdr_go_gc_cycles", "pdr_go_gc_pause_seconds_total",
		"pdr_go_sched_latency_p50_seconds", "pdr_go_sched_latency_p99_seconds",
		"pdr_build_info",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition is missing %s", name)
		}
	}
	if !strings.Contains(text, `pdr_build_info{goversion="go`) {
		t.Error("pdr_build_info is missing the goversion label")
	}
	if !strings.Contains(text, "pdr_build_info{") || !strings.Contains(text, "} 1") {
		t.Error("pdr_build_info value is not 1")
	}
	// The cached sample refreshes lazily; a second read must not race or
	// re-register (GaugeFunc re-registration panics on signature reuse).
	if rs.Goroutines() <= 0 {
		t.Error("second sample read failed")
	}
}
