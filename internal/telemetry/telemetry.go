// Package telemetry is the engine's observability substrate: an
// atomic-based metrics registry (counters, gauges, fixed-bucket latency
// histograms) with Prometheus text exposition, plus a lightweight per-query
// trace that records phase spans through internal/stopwatch.
//
// The registry is the concurrency boundary between the single-writer engine
// and the HTTP scrape path: instruments are updated with atomic operations,
// so GET /metrics never needs the service mutex and a slow scrape can never
// pin a handler. Registration takes a mutex and is idempotent — asking for
// an already-registered instrument with the same name, labels, and kind
// returns the existing one, which lets request middleware materialize
// status-code labels lazily.
//
// Metric names must be snake_case with the pdr_ prefix (enforced here at
// registration and statically by pdrvet's metricname analyzer; see
// docs/OBSERVABILITY.md for the full inventory).
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the registration contract: snake_case with the pdr_ prefix.
// pdrvet's metricname analyzer enforces the same pattern statically on
// literal registration names.
var nameRE = regexp.MustCompile(`^pdr(_[a-z0-9]+)+$`)

// labelKeyRE validates label keys (Prometheus label-name subset).
var labelKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// DefaultLatencyBuckets are the histogram bounds used for every latency
// instrument, in seconds: sub-millisecond resolution for the approximate
// methods (PA answers in 1.4–107 ms) through tens of seconds for exact FR
// at 100K objects (paper Fig. 10).
var DefaultLatencyBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// instrument kinds, used for exposition TYPE lines and collision checks.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds a process's metric instruments. The zero value is not
// usable; create one with NewRegistry. All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family groups every instrument sharing one metric name.
type family struct {
	name, help, kind string
	order            []string // label signatures in registration order
	instruments      map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register resolves (name, kind, labels) to the instrument built by mk,
// reusing an existing instrument when one matches. Name, kind, or label-key
// violations panic: a malformed registration is a programming error that
// would silently corrupt the exposition otherwise.
func (r *Registry) register(name, help, kind string, labels []Label, mk func(sig string) any) any {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q is not snake_case with the pdr_ prefix", name))
	}
	for _, l := range labels {
		if !labelKeyRE.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: bad label key %q on metric %s", l.Key, name))
		}
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, instruments: make(map[string]any)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, kind, fam.kind))
	}
	if inst, ok := fam.instruments[sig]; ok {
		return inst
	}
	inst := mk(sig)
	fam.instruments[sig] = inst
	fam.order = append(fam.order, sig)
	return inst
}

// labelSignature renders labels into the exposition form {k="v",...}, with
// keys sorted so identical label sets dedupe regardless of argument order.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes quotes, backslashes, and newlines exactly as the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter registers (or retrieves) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	inst := r.register(name, help, kindCounter, labels, func(sig string) any {
		return &Counter{}
	})
	c, ok := inst.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %s is not a counter", name))
	}
	return c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	inst := r.register(name, help, kindGauge, labels, func(sig string) any {
		return &Gauge{}
	})
	g, ok := inst.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %s is not a gauge", name))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time.
// fn must be safe to call concurrently with everything else in the process
// (read atomics, not mutable structures).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func(sig string) any {
		return gaugeFunc(fn)
	})
}

// Histogram registers (or retrieves) a fixed-bucket histogram. Bounds are
// upper bucket edges in ascending order; an implicit +Inf bucket catches
// the overflow. A nil bounds slice uses DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending at %g", name, bounds[i]))
		}
	}
	inst := r.register(name, help, kindHistogram, labels, func(sig string) any {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	})
	h, ok := inst.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %s is not a histogram", name))
	}
	// A freshly built histogram stores the requested bounds, so a mismatch
	// here means a re-registration with different bounds — panic like the
	// kind-collision check instead of silently keeping the old buckets.
	if !equalBounds(h.bounds, bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with bounds %v (was %v)", name, bounds, h.bounds))
	}
	return h
}

// equalBounds reports whether two bucket-bound slices are element-wise
// identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// lint:ignore floateq registration-collision check: bounds are
		// caller-supplied literals and must match bit for bit.
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing count. The zero value is ready to
// use but only counters obtained from a Registry are exposed.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("telemetry: counter decrement by %d", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// gaugeFunc is a scrape-time computed gauge.
type gaugeFunc func() float64

// Histogram is a fixed-bucket distribution: per-bucket atomic counts plus
// an atomic sum. Buckets follow Prometheus le semantics — an observation v
// lands in the first bucket with v <= bound.
type Histogram struct {
	bounds []float64      // upper edges, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-updated
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le bucket
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCounts returns the cumulative per-bucket counts (Prometheus le
// semantics), one entry per bound plus the trailing +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}
