package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format produced by WriteText.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// textWriter accumulates the first write error so the exposition loop does
// not have to check every Fprintf (the same sticky-error shape as the
// experiments report writer).
type textWriter struct {
	w   io.Writer
	err error
}

func (t *textWriter) printf(format string, args ...any) {
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, format, args...)
	}
}

// sample pairs one label signature with its instrument for exposition.
type sample struct {
	sig  string
	inst any
}

// famSnapshot is an immutable copy of one family's metadata and sample
// list, taken under the registry mutex so exposition never reads the live
// order slice or instruments map while register() mutates them.
type famSnapshot struct {
	name, help, kind string
	samples          []sample
}

// WriteText renders every registered metric in the Prometheus text format:
// families sorted by name, one HELP/TYPE header each, samples in
// registration order. Family structure is snapshotted under the registry
// mutex (lazy registration may run concurrently) and instrument values are
// read atomically, so WriteText is safe to call while the engine is
// registering and updating metrics.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := famSnapshot{
			name: f.name, help: f.help, kind: f.kind,
			samples: make([]sample, 0, len(f.order)),
		}
		for _, sig := range f.order {
			fs.samples = append(fs.samples, sample{sig: sig, inst: f.instruments[sig]})
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	tw := &textWriter{w: w}
	for _, f := range fams {
		if f.help != "" {
			tw.printf("# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		tw.printf("# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			switch inst := s.inst.(type) {
			case *Counter:
				tw.printf("%s%s %d\n", f.name, s.sig, inst.Value())
			case *Gauge:
				tw.printf("%s%s %s\n", f.name, s.sig, formatFloat(inst.Value()))
			case gaugeFunc:
				tw.printf("%s%s %s\n", f.name, s.sig, formatFloat(inst()))
			case *Histogram:
				writeHistogram(tw, f.name, s.sig, inst)
			}
		}
	}
	return tw.err
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count for one histogram instrument.
func writeHistogram(tw *textWriter, name, sig string, h *Histogram) {
	cum := h.BucketCounts()
	for i, bound := range h.bounds {
		tw.printf("%s_bucket%s %d\n", name, withLabel(sig, "le", formatFloat(bound)), cum[i])
	}
	tw.printf("%s_bucket%s %d\n", name, withLabel(sig, "le", "+Inf"), cum[len(cum)-1])
	tw.printf("%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	tw.printf("%s_count%s %d\n", name, sig, h.Count())
}

// withLabel splices one more label into an existing {..} signature.
func withLabel(sig, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the text-format HELP escapes (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
