package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format produced by WriteText.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// textWriter accumulates the first write error so the exposition loop does
// not have to check every Fprintf (the same sticky-error shape as the
// experiments report writer).
type textWriter struct {
	w   io.Writer
	err error
}

func (t *textWriter) printf(format string, args ...any) {
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, format, args...)
	}
}

// WriteText renders every registered metric in the Prometheus text format:
// families sorted by name, one HELP/TYPE header each, samples in
// registration order. Instrument values are read atomically, so WriteText
// is safe to call while the engine is updating metrics.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	tw := &textWriter{w: w}
	for _, f := range fams {
		if f.help != "" {
			tw.printf("# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		tw.printf("# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range f.order {
			switch inst := f.instruments[sig].(type) {
			case *Counter:
				tw.printf("%s%s %d\n", f.name, sig, inst.Value())
			case *Gauge:
				tw.printf("%s%s %s\n", f.name, sig, formatFloat(inst.Value()))
			case gaugeFunc:
				tw.printf("%s%s %s\n", f.name, sig, formatFloat(inst()))
			case *Histogram:
				writeHistogram(tw, f.name, sig, inst)
			}
		}
	}
	return tw.err
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count for one histogram instrument.
func writeHistogram(tw *textWriter, name, sig string, h *Histogram) {
	cum := h.BucketCounts()
	for i, bound := range h.bounds {
		tw.printf("%s_bucket%s %d\n", name, withLabel(sig, "le", formatFloat(bound)), cum[i])
	}
	tw.printf("%s_bucket%s %d\n", name, withLabel(sig, "le", "+Inf"), cum[len(cum)-1])
	tw.printf("%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	tw.printf("%s_count%s %d\n", name, sig, h.Count())
}

// withLabel splices one more label into an existing {..} signature.
func withLabel(sig, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the text-format HELP escapes (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
