package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"pdr/internal/stopwatch"
)

// PhaseSpan is one flat, named slice of query time — the summary form the
// engine reports in Result.Phases and the slow-query log renders. The full
// hierarchical form is Span; PhaseSummary folds a span's children down to
// this shape.
type PhaseSpan struct {
	Name     string
	Duration time.Duration
}

// MergeSpans folds src into dst by phase name, summing durations — the
// aggregation an interval query uses to combine its per-snapshot traces.
// Phase order follows first appearance.
func MergeSpans(dst, src []PhaseSpan) []PhaseSpan {
	for _, s := range src {
		found := false
		for i := range dst {
			if dst[i].Name == s.Name {
				dst[i].Duration += s.Duration
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, s)
		}
	}
	return dst
}

// TraceID identifies one traced request, unique within the process. The
// zero value means "no trace".
type TraceID uint64

// traceSeq generates process-unique trace IDs. It is seeded from
// crypto/rand at init so IDs from different process runs almost never
// collide (restarted servers keep old log lines resolvable as "not ours"),
// then incremented atomically — allocation is one atomic add, no locking.
var traceSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		traceSeq.Store(binary.LittleEndian.Uint64(b[:]))
	}
}

func newTraceID() TraceID {
	id := TraceID(traceSeq.Add(1))
	for id == 0 { // zero is reserved for "no trace"
		id = TraceID(traceSeq.Add(1))
	}
	return id
}

// String renders the ID as 16 lowercase hex digits.
func (id TraceID) String() string {
	const digits = "0123456789abcdef"
	var b [16]byte
	v := uint64(id)
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses the 16-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("telemetry: trace id %q is not 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: trace id %q is not 16 hex digits", s)
	}
	return TraceID(v), nil
}

// Attr is one key/value annotation on a span (cache outcome, fan-out
// width, candidate counts, ...). Values are pre-rendered strings so
// rendering a stored trace does no per-type dispatch.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// DefaultSpanBudget bounds the number of spans one trace may allocate.
// A pathological query (an interval fanning out into thousands of
// refinement windows) degrades to a truncated tree instead of an
// unbounded allocation; the budget is shared across the whole tree.
const DefaultSpanBudget = 8192

// spanShared is the per-trace state every span of one tree shares: the
// trace identity, the common time base offsets are measured against, and
// the remaining span allocation budget.
type spanShared struct {
	id     TraceID
	base   stopwatch.Stopwatch
	budget atomic.Int64
}

// Span is one timed node of a trace tree. A span belongs to one request;
// the tree is built single-threaded except for Fork slots, which parallel
// workers fill one-per-worker (each worker touches only its own slot, and
// the pool's join gives the parent a happens-before edge over all of
// them). Every method is a no-op on a nil receiver, so call sites need no
// guards when tracing is off — disabled tracing allocates nothing.
type Span struct {
	Name string
	// Start is the span's opening instant as an offset from the trace
	// start; Duration is its extent. Offsets keep the tree free of
	// absolute timestamps (the store adds one wall-clock anchor per
	// trace).
	Start    time.Duration
	Duration time.Duration
	Attrs    []Attr
	Children []*Span

	shared *spanShared
	open   bool
}

// Trace is one request's span tree: a process-unique ID plus the root
// span. A nil *Trace is a no-op on every method.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span is named name and already open.
func NewTrace(name string) *Trace {
	return NewTraceWithBudget(name, DefaultSpanBudget)
}

// NewTraceWithBudget starts a trace with an explicit span budget
// (NewTrace uses DefaultSpanBudget). maxSpans counts every span in the
// tree including the root; maxSpans <= 0 yields a root-only trace.
func NewTraceWithBudget(name string, maxSpans int) *Trace {
	sh := &spanShared{id: newTraceID(), base: stopwatch.Start()}
	sh.budget.Store(int64(maxSpans) - 1) // the root consumes one
	return &Trace{root: &Span{Name: name, shared: sh, open: true}}
}

// ID returns the trace's process-unique identity (zero for a nil trace).
func (t *Trace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.root.shared.id
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End closes the root span; idempotent.
func (t *Trace) End() { t.Root().End() }

// Duration returns the root span's recorded duration.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return t.root.Duration
}

// TraceID returns the identity of the trace this span belongs to.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.shared.id
}

// newSpan allocates a child-to-be against the shared budget; nil when the
// budget is exhausted (the tree silently truncates).
func (s *Span) newSpan(name string) *Span {
	if s.shared.budget.Add(-1) < 0 {
		return nil
	}
	return &Span{Name: name, shared: s.shared}
}

// Child opens a new child span now and returns it. The caller closes it
// with End before opening the next sibling (sequential use; for parallel
// fan-outs use Fork).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.newSpan(name)
	if c == nil {
		return nil
	}
	c.Begin()
	s.Children = append(s.Children, c)
	return c
}

// Begin marks the span's opening instant. Child calls it implicitly; Fork
// slots are created unopened so each worker stamps its own start.
func (s *Span) Begin() {
	if s == nil {
		return
	}
	s.Start = s.shared.base.Elapsed()
	s.open = true
}

// End closes the span; idempotent, and a no-op on a never-begun span.
func (s *Span) End() {
	if s == nil || !s.open {
		return
	}
	s.Duration = s.shared.base.Elapsed() - s.Start
	s.open = false
}

// SetAttr annotates the span. Attribute keys repeat freely; renderers see
// them in insertion order.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value. The rendering
// happens after the nil check, so untraced calls do no formatting work.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatInt(v, 10)})
}

// SetAttrBool annotates the span with a boolean value.
func (s *Span) SetAttrBool(key string, v bool) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatBool(v)})
}

// SetAttrFloat annotates the span with a float value ('g', shortest).
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)})
}

// Spans is a fixed fan-out of sibling spans, indexed by worker item. A nil
// Spans hands every worker a nil span, so the fan-out sites need no
// tracing guards.
type Spans []*Span

// At returns slot i, nil when out of range (or on a nil Spans).
func (ss Spans) At(i int) *Span {
	if i < 0 || i >= len(ss) {
		return nil
	}
	return ss[i]
}

// Fork pre-allocates n child slots, all named name, appended to the tree
// in index order before any worker runs — so the child order is
// deterministic no matter how the workers interleave. Slots are created
// unopened; each worker brackets its slot with Begin/End (or uses
// parallel.Pool.ForEachSpan, which does it for them). If the span budget
// runs out mid-fork the remaining slots are nil and those workers go
// untraced.
func (s *Span) Fork(name string, n int) Spans {
	if s == nil || n <= 0 {
		return nil
	}
	slots := make(Spans, n)
	created := 0
	for i := range slots {
		c := s.newSpan(name)
		if c == nil {
			break
		}
		slots[i] = c
		created++
	}
	s.Children = append(s.Children, slots[:created]...)
	return slots
}

// PhaseSummary folds the span's direct children into the flat PhaseSpan
// form by name (first-appearance order, durations summed) — the bridge
// from the span tree to Result.Phases and the slow-query log.
func (s *Span) PhaseSummary() []PhaseSpan {
	if s == nil || len(s.Children) == 0 {
		return nil
	}
	out := make([]PhaseSpan, 0, len(s.Children))
	for _, c := range s.Children {
		found := false
		for i := range out {
			if out[i].Name == c.Name {
				out[i].Duration += c.Duration
				found = true
				break
			}
		}
		if !found {
			out = append(out, PhaseSpan{Name: c.Name, Duration: c.Duration})
		}
	}
	return out
}

// CountSpans returns the number of spans in the subtree rooted at s.
func (s *Span) CountSpans() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += c.CountSpans()
	}
	return n
}
