package telemetry

import (
	"time"

	"pdr/internal/stopwatch"
)

// PhaseSpan is one timed phase of a query trace.
type PhaseSpan struct {
	Name     string
	Duration time.Duration
}

// Trace records the phase breakdown of a single query (parse -> filter ->
// refine/pa-eval -> union). It meters wall time through internal/stopwatch
// — the one approved clock wrapper in simulation-time packages — so the
// engine can trace its phases without tripping pdrvet's wallclock rule.
// A Trace belongs to one query evaluation and is not safe for concurrent
// use; a nil *Trace is a no-op on every method, so call sites need no
// guards when tracing is off.
type Trace struct {
	spans []PhaseSpan
	cur   string
	sw    stopwatch.Stopwatch
	open  bool
}

// NewTrace starts an empty trace; the first span opens at the first Phase
// call.
func NewTrace() *Trace { return &Trace{} }

// Phase closes the current span (if any) and opens a new one named name.
func (t *Trace) Phase(name string) {
	if t == nil {
		return
	}
	t.closeSpan()
	t.cur = name
	t.sw = stopwatch.Start()
	t.open = true
}

// End closes the current span. Further Phase calls may reopen the trace
// (Interval queries append spans snapshot by snapshot).
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.closeSpan()
}

func (t *Trace) closeSpan() {
	if !t.open {
		return
	}
	t.spans = append(t.spans, PhaseSpan{Name: t.cur, Duration: t.sw.Elapsed()})
	t.open = false
}

// Spans returns the recorded phase spans in order. The returned slice is
// the trace's own storage; callers must not mutate it.
func (t *Trace) Spans() []PhaseSpan {
	if t == nil {
		return nil
	}
	return t.spans
}

// MergeSpans folds src into dst by phase name, summing durations — the
// aggregation an interval query uses to combine its per-snapshot traces.
// Phase order follows first appearance.
func MergeSpans(dst, src []PhaseSpan) []PhaseSpan {
	for _, s := range src {
		found := false
		for i := range dst {
			if dst[i].Name == s.Name {
				dst[i].Duration += s.Duration
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, s)
		}
	}
	return dst
}
