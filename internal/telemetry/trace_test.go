package telemetry

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("/v1/query")
	root := tr.Root()
	if root == nil || root.Name != "/v1/query" {
		t.Fatalf("root = %+v, want open span named /v1/query", root)
	}
	filter := root.Child("filter")
	filter.SetAttrInt("accepted", 12)
	time.Sleep(time.Millisecond)
	filter.End()
	refine := root.Child("refine")
	refine.SetAttrBool("cached", false)
	refine.End()
	tr.End()
	tr.End() // idempotent

	if tr.ID() == 0 {
		t.Error("trace has zero ID")
	}
	if root.TraceID() != tr.ID() {
		t.Errorf("span trace id %v != trace id %v", root.TraceID(), tr.ID())
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	if got := root.Children[0].Name + "," + root.Children[1].Name; got != "filter,refine" {
		t.Errorf("children = %s, want filter,refine", got)
	}
	if filter.Duration < time.Millisecond {
		t.Errorf("filter duration %v, want >= 1ms", filter.Duration)
	}
	if tr.Duration() < filter.Duration {
		t.Errorf("root duration %v < filter duration %v", tr.Duration(), filter.Duration)
	}
	if refine.Start < filter.Start+filter.Duration {
		t.Errorf("refine starts at %v, before filter ended at %v",
			refine.Start, filter.Start+filter.Duration)
	}
	if got := len(filter.Attrs); got != 1 || filter.Attrs[0] != (Attr{"accepted", "12"}) {
		t.Errorf("filter attrs = %+v, want [{accepted 12}]", filter.Attrs)
	}
	if root.CountSpans() != 3 {
		t.Errorf("CountSpans = %d, want 3", root.CountSpans())
	}
}

func TestNilTraceAndSpanAreNoops(t *testing.T) {
	var tr *Trace
	tr.End()
	if tr.ID() != 0 || tr.Root() != nil || tr.Duration() != 0 {
		t.Error("nil trace leaked state")
	}
	var sp *Span
	sp.Begin()
	sp.SetAttr("k", "v")
	sp.SetAttrInt("k", 1)
	sp.SetAttrBool("k", true)
	sp.SetAttrFloat("k", 1.5)
	sp.End()
	if sp.Child("x") != nil {
		t.Error("nil span produced a child")
	}
	if sp.Fork("x", 4) != nil {
		t.Error("nil span produced fork slots")
	}
	if sp.PhaseSummary() != nil || sp.CountSpans() != 0 || sp.TraceID() != 0 {
		t.Error("nil span leaked state")
	}
	var ss Spans
	if ss.At(0) != nil || ss.At(-1) != nil {
		t.Error("nil Spans returned a span")
	}
}

// TestNilSpanZeroAllocs is the satellite's hot-path guarantee: with
// tracing disabled (nil spans everywhere) the instrumented query path
// must allocate nothing for tracing.
func TestNilSpanZeroAllocs(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(100, func() {
		c := sp.Child("filter")
		c.SetAttrInt("accepted", 12)
		c.End()
		slots := sp.Fork("window", 8)
		s := slots.At(3)
		s.Begin()
		s.SetAttrInt("retrieved", 7)
		s.End()
		_ = sp.PhaseSummary()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocated %.1f times per run, want 0", allocs)
	}
}

func TestTraceIDStringRoundTrip(t *testing.T) {
	for _, id := range []TraceID{1, 0xdeadbeef, ^TraceID(0)} {
		s := id.String()
		if len(s) != 16 || strings.ToLower(s) != s {
			t.Errorf("String(%d) = %q, want 16 lowercase hex digits", id, s)
		}
		got, err := ParseTraceID(s)
		if err != nil || got != id {
			t.Errorf("ParseTraceID(%q) = %v, %v, want %v", s, got, err, id)
		}
	}
	for _, bad := range []string{"", "xyz", "123", strings.Repeat("g", 16), strings.Repeat("0", 17)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestTraceIDsAreUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewTrace("t").ID()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero trace id %v at iteration %d", id, i)
		}
		seen[id] = true
	}
}

func TestForkDeterministicOrder(t *testing.T) {
	const n = 17
	tr := NewTrace("fanout")
	slots := tr.Root().Fork("window", n)
	if len(slots) != n {
		t.Fatalf("fork returned %d slots, want %d", len(slots), n)
	}
	// Workers fill their slots in arbitrary interleaving; the child order
	// must stay the pre-allocated index order.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := slots.At(i)
			sp.Begin()
			sp.SetAttrInt("i", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.End()
	kids := tr.Root().Children
	if len(kids) != n {
		t.Fatalf("root has %d children, want %d", len(kids), n)
	}
	for i, c := range kids {
		if c != slots[i] {
			t.Fatalf("child %d is not slot %d", i, i)
		}
		if got := c.Attrs[0].Value; got != strconv.Itoa(i) {
			t.Errorf("child %d carries attr i=%s", i, got)
		}
	}
}

func TestSpanBudgetTruncates(t *testing.T) {
	tr := NewTraceWithBudget("small", 4) // root + 3 children
	root := tr.Root()
	if c := root.Child("a"); c == nil {
		t.Fatal("first child denied under budget 4")
	}
	slots := root.Fork("w", 5)
	if len(slots) != 5 {
		t.Fatalf("fork returned %d slots, want 5 (nil-padded)", len(slots))
	}
	created := 0
	for _, s := range slots {
		if s != nil {
			created++
		}
	}
	if created != 2 {
		t.Errorf("budget allowed %d fork slots, want 2", created)
	}
	if root.Child("z") != nil {
		t.Error("child allocated past the budget")
	}
	if got := root.CountSpans(); got != 4 {
		t.Errorf("tree holds %d spans, want 4", got)
	}
	// Nil tail slots stay safe to use.
	s := slots.At(4)
	s.Begin()
	s.End()
}

func TestPhaseSummary(t *testing.T) {
	tr := NewTrace("q")
	root := tr.Root()
	for _, name := range []string{"filter", "refine", "refine", "union"} {
		c := root.Child(name)
		// Leaf grandchildren must not leak into the summary.
		g := c.Child("inner")
		g.End()
		c.End()
	}
	tr.End()
	sum := root.PhaseSummary()
	names := make([]string, len(sum))
	for i, p := range sum {
		names[i] = p.Name
	}
	if got := strings.Join(names, ","); got != "filter,refine,union" {
		t.Errorf("summary = %s, want filter,refine,union", got)
	}
}
