package telemetry

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pdr_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("pdr_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
}

func TestRegistrationDedupes(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pdr_dedupe_total", "h", L("method", "FR"))
	b := r.Counter("pdr_dedupe_total", "h", L("method", "FR"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	other := r.Counter("pdr_dedupe_total", "h", L("method", "PA"))
	if a == other {
		t.Error("distinct labels returned the same counter")
	}
}

func TestBadRegistrationsPanic(t *testing.T) {
	cases := map[string]func(r *Registry){
		"uppercase name":  func(r *Registry) { r.Counter("pdr_BadName", "h") },
		"missing prefix":  func(r *Registry) { r.Counter("queries_total", "h") },
		"double underbar": func(r *Registry) { r.Counter("pdr__x", "h") },
		"bare prefix":     func(r *Registry) { r.Counter("pdr_", "h") },
		"bad label key":   func(r *Registry) { r.Counter("pdr_ok_total", "h", L("Bad-Key", "v")) },
		"kind collision": func(r *Registry) {
			r.Counter("pdr_kind_total", "h")
			r.Gauge("pdr_kind_total", "h")
		},
		"negative counter add": func(r *Registry) { r.Counter("pdr_neg_total", "h").Add(-1) },
		"unordered buckets":    func(r *Registry) { r.Histogram("pdr_h_seconds", "h", []float64{1, 1}) },
		"bounds collision": func(r *Registry) {
			r.Histogram("pdr_b_seconds", "h", []float64{1, 2})
			r.Histogram("pdr_b_seconds", "h", []float64{1, 3})
		},
		"default-bounds collision": func(r *Registry) {
			r.Histogram("pdr_d_seconds", "h", nil)
			r.Histogram("pdr_d_seconds", "h", []float64{1, 2})
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation equal
// to a bound lands in that bound's bucket, and the cumulative counts roll
// up into +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pdr_bounds_seconds", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	want := []int64{2, 4, 6, 7} // le=1: {0.5,1}; le=2: +{1.5,2}; le=4: +{3,4}; +Inf: +{5}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 17 {
		t.Errorf("sum = %g, want 17", h.Sum())
	}
}

// TestWriteTextGolden pins the exposition format byte for byte.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdr_queries_total", "Queries served.", L("method", "FR")).Add(3)
	r.Counter("pdr_queries_total", "Queries served.", L("method", "PA")).Inc()
	r.Gauge("pdr_pool_pages", "Allocated pages.").Set(12)
	r.GaugeFunc("pdr_pool_hit_ratio", "Buffer hit ratio.", func() float64 { return 0.75 })
	h := r.Histogram("pdr_query_seconds", "Latency.", []float64{0.1, 1}, L("method", "FR"))
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pdr_pool_hit_ratio Buffer hit ratio.
# TYPE pdr_pool_hit_ratio gauge
pdr_pool_hit_ratio 0.75
# HELP pdr_pool_pages Allocated pages.
# TYPE pdr_pool_pages gauge
pdr_pool_pages 12
# HELP pdr_queries_total Queries served.
# TYPE pdr_queries_total counter
pdr_queries_total{method="FR"} 3
pdr_queries_total{method="PA"} 1
# HELP pdr_query_seconds Latency.
# TYPE pdr_query_seconds histogram
pdr_query_seconds_bucket{method="FR",le="0.1"} 1
pdr_query_seconds_bucket{method="FR",le="1"} 2
pdr_query_seconds_bucket{method="FR",le="+Inf"} 2
pdr_query_seconds_sum{method="FR"} 0.55
pdr_query_seconds_count{method="FR"} 2
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdr_esc_total", "", L("route", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `route="a\"b\\c\n"`) {
		t.Errorf("label not escaped: %s", b.String())
	}
}

// TestRegistryConcurrency exercises every instrument from many goroutines
// while scraping; run under -race by scripts/check.sh.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pdr_conc_total", "h")
	g := r.Gauge("pdr_conc_gauge", "h")
	h := r.Histogram("pdr_conc_seconds", "h", nil)
	r.GaugeFunc("pdr_conc_ratio", "h", func() float64 { return float64(c.Value()) })

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.001)
				// Concurrent re-registration must dedupe, not race.
				r.Counter("pdr_conc_total", "h").Add(0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.WriteText(&strings.Builder{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %g, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
}

// TestScrapeDuringLazyRegistration races WriteText against registrations
// that add brand-new label signatures (the service middleware materializes
// status-code labels lazily, so first-seen statuses mutate a family's order
// slice and instruments map mid-flight). Run under -race by
// scripts/check.sh; before exposition snapshotted families under the
// registry mutex this was a concurrent map read/write panic.
func TestScrapeDuringLazyRegistration(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("pdr_lazy_total", "h",
					L("worker", strconv.Itoa(w)), L("status", strconv.Itoa(i))).Inc()
				r.Histogram("pdr_lazy_seconds", "h", nil, L("worker", strconv.Itoa(w)),
					L("status", strconv.Itoa(i))).Observe(0.001)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := r.WriteText(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "pdr_lazy_total{"); got != workers*iters {
		t.Errorf("exposed %d pdr_lazy_total samples, want %d", got, workers*iters)
	}
}

func TestMergeSpans(t *testing.T) {
	a := []PhaseSpan{{"filter", 2}, {"refine", 3}}
	b := []PhaseSpan{{"refine", 5}, {"union", 7}}
	got := MergeSpans(a, b)
	want := []PhaseSpan{{"filter", 2}, {"refine", 8}, {"union", 7}}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
