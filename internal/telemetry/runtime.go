package telemetry

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeStats publishes Go runtime health as pdr_go_* gauges: heap size,
// GC activity, goroutine count, and a scheduler-latency proxy (how long
// runnable goroutines wait for a thread — the first thing to climb when
// the worker pool oversubscribes the host). There is no background
// goroutine: the gauges are GaugeFuncs over one cached runtime sample
// refreshed lazily, at most once per refreshInterval, on whichever path
// reads first (a /metrics scrape or /v1/stats). ReadMemStats stops the
// world briefly, so the refresh cap also bounds the collector's own cost.
type RuntimeStats struct {
	mu   sync.Mutex
	last time.Time // zero value forces the first refresh

	goroutines   int
	heapAlloc    uint64
	heapSys      uint64
	heapObjects  uint64
	gcCycles     uint32
	gcPauseTotal time.Duration
	schedP50     float64
	schedP99     float64
}

const runtimeRefreshInterval = time.Second

// NewRuntimeStats registers the runtime gauges plus pdr_build_info on reg
// and returns the collector (also the backing store for /v1/stats, so the
// two surfaces read the same sample).
func NewRuntimeStats(reg *Registry) *RuntimeStats {
	rs := &RuntimeStats{}
	reg.GaugeFunc("pdr_go_goroutines", "Live goroutines.",
		func() float64 { return float64(rs.Goroutines()) })
	reg.GaugeFunc("pdr_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { rs.refresh(); return float64(rs.heapAlloc) })
	reg.GaugeFunc("pdr_go_heap_sys_bytes", "Bytes of heap obtained from the OS.",
		func() float64 { rs.refresh(); return float64(rs.heapSys) })
	reg.GaugeFunc("pdr_go_heap_objects", "Live heap objects.",
		func() float64 { rs.refresh(); return float64(rs.heapObjects) })
	reg.GaugeFunc("pdr_go_gc_cycles", "Completed GC cycles.",
		func() float64 { rs.refresh(); return float64(rs.gcCycles) })
	reg.GaugeFunc("pdr_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { rs.refresh(); return rs.gcPauseTotal.Seconds() })
	reg.GaugeFunc("pdr_go_sched_latency_p50_seconds",
		"Median time runnable goroutines waited for a thread (scheduler pressure proxy).",
		func() float64 { rs.refresh(); return rs.schedP50 })
	reg.GaugeFunc("pdr_go_sched_latency_p99_seconds",
		"p99 time runnable goroutines waited for a thread (scheduler pressure proxy).",
		func() float64 { rs.refresh(); return rs.schedP99 })
	reg.Gauge("pdr_build_info", "Build metadata; the value is always 1.",
		L("goversion", runtime.Version()),
		L("revision", buildRevision())).Set(1)
	return rs
}

// Goroutines returns the live goroutine count from the cached sample.
func (rs *RuntimeStats) Goroutines() int {
	rs.refresh()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.goroutines
}

// refresh re-samples the runtime if the cached sample is stale.
func (rs *RuntimeStats) refresh() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.last.IsZero() && time.Since(rs.last) < runtimeRefreshInterval {
		return
	}
	rs.last = time.Now()
	rs.goroutines = runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs.heapAlloc = ms.HeapAlloc
	rs.heapSys = ms.HeapSys
	rs.heapObjects = ms.HeapObjects
	rs.gcCycles = ms.NumGC
	rs.gcPauseTotal = time.Duration(ms.PauseTotalNs)
	samples := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[0].Value.Float64Histogram()
		rs.schedP50 = histQuantile(h, 0.50)
		rs.schedP99 = histQuantile(h, 0.99)
	}
}

// histQuantile reads quantile q off a runtime/metrics histogram, returning
// the upper bound of the bucket the quantile falls in (conservative). The
// runtime's first/last bucket boundaries can be ±Inf; those collapse to
// the nearest finite neighbor so the gauges stay plottable.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 0) || math.IsNaN(hi) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// buildRevision extracts the VCS revision stamped into the binary, or
// "unknown" for builds outside a checkout (go test, stripped builds).
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "unknown"
}
