// Package viz renders query results as standalone SVG documents: dense
// region rectangles, rectilinear outline rings, iso-density contour
// segments, and object positions. The output is what the paper's Fig. 7
// plots — dense regions of arbitrary shape and size over the object
// snapshot.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"pdr/internal/geom"
)

// Segment is one contour line segment.
type Segment struct {
	A, B geom.Point
}

// Scene collects the layers to render.
type Scene struct {
	// Area is the world rectangle mapped onto the canvas.
	Area geom.Rect
	// Width and Height are the canvas size in pixels (Height 0 derives
	// from the area's aspect ratio).
	Width, Height int
	// Title is emitted as the SVG title element.
	Title string
	// Points are object positions (small dots).
	Points []geom.Point
	// Region is the dense region (filled rectangles).
	Region geom.Region
	// Rings are outline boundaries (stroked paths).
	Rings []geom.Ring
	// Contours are iso-density segments (stroked lines).
	Contours []Segment
}

// WriteSVG renders the scene.
func (s *Scene) WriteSVG(w io.Writer) error {
	if s.Area.IsEmpty() {
		return fmt.Errorf("viz: empty area")
	}
	width := s.Width
	if width <= 0 {
		width = 800
	}
	height := s.Height
	if height <= 0 {
		height = int(float64(width) * s.Area.Height() / s.Area.Width())
	}
	bw := bufio.NewWriter(w)
	sx := float64(width) / s.Area.Width()
	sy := float64(height) / s.Area.Height()
	// World -> canvas, flipping Y so north is up.
	tx := func(x float64) float64 { return (x - s.Area.MinX) * sx }
	ty := func(y float64) float64 { return float64(height) - (y-s.Area.MinY)*sy }

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	if s.Title != "" {
		fmt.Fprintf(bw, "<title>%s</title>\n", xmlEscape(s.Title))
	}
	fmt.Fprintf(bw, `<rect x="0" y="0" width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)

	if len(s.Region) > 0 {
		fmt.Fprintln(bw, `<g fill="#e4572e" fill-opacity="0.45" stroke="none">`)
		for _, r := range s.Region {
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f"/>`+"\n",
				tx(r.MinX), ty(r.MaxY), r.Width()*sx, r.Height()*sy)
		}
		fmt.Fprintln(bw, "</g>")
	}
	if len(s.Points) > 0 {
		fmt.Fprintln(bw, `<g fill="#17395c" fill-opacity="0.6">`)
		for _, p := range s.Points {
			fmt.Fprintf(bw, `<circle cx="%.2f" cy="%.2f" r="1.2"/>`+"\n", tx(p.X), ty(p.Y))
		}
		fmt.Fprintln(bw, "</g>")
	}
	if len(s.Rings) > 0 {
		fmt.Fprintln(bw, `<g fill="none" stroke="#a23b18" stroke-width="1.5">`)
		for _, ring := range s.Rings {
			if len(ring) == 0 {
				continue
			}
			fmt.Fprintf(bw, `<path d="M %.2f %.2f`, tx(ring[0].X), ty(ring[0].Y))
			for _, p := range ring[1:] {
				fmt.Fprintf(bw, " L %.2f %.2f", tx(p.X), ty(p.Y))
			}
			fmt.Fprintln(bw, ` Z"/>`)
		}
		fmt.Fprintln(bw, "</g>")
	}
	if len(s.Contours) > 0 {
		fmt.Fprintln(bw, `<g stroke="#2a7f62" stroke-width="1">`)
		for _, c := range s.Contours {
			fmt.Fprintf(bw, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f"/>`+"\n",
				tx(c.A.X), ty(c.A.Y), tx(c.B.X), ty(c.B.Y))
		}
		fmt.Fprintln(bw, "</g>")
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// xmlEscape escapes the five XML special characters for text content.
func xmlEscape(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '\'':
			out = append(out, "&apos;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
