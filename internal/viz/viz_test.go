package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"pdr/internal/geom"
)

func renderScene(t *testing.T, s *Scene) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// validateXML walks the document with the XML decoder to guarantee
// well-formedness.
func validateXML(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, doc)
		}
	}
}

func TestWriteSVGAllLayers(t *testing.T) {
	s := &Scene{
		Area:  geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 50},
		Width: 400,
		Title: `dense <regions> & "contours"`,
		Points: []geom.Point{
			{X: 10, Y: 10}, {X: 20, Y: 30},
		},
		Region: geom.Region{{MinX: 5, MinY: 5, MaxX: 25, MaxY: 20}},
		Rings: []geom.Ring{
			{{X: 5, Y: 5}, {X: 25, Y: 5}, {X: 25, Y: 20}, {X: 5, Y: 20}},
		},
		Contours: []Segment{{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 50, Y: 25}}},
	}
	doc := renderScene(t, s)
	validateXML(t, doc)
	for _, want := range []string{"<svg", "<rect", "<circle", "<path", "<line", "&lt;regions&gt;"} {
		if !strings.Contains(doc, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Aspect: height derived when zero -> 400 * 50/100 = 200.
	if !strings.Contains(doc, `height="200"`) {
		t.Error("derived height missing")
	}
}

func TestWriteSVGYFlip(t *testing.T) {
	// A point at the area's top must render near canvas y=0.
	s := &Scene{
		Area:   geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		Width:  100,
		Height: 100,
		Points: []geom.Point{{X: 50, Y: 100}},
	}
	doc := renderScene(t, s)
	if !strings.Contains(doc, `cy="0.00"`) {
		t.Errorf("top-of-world point must map to canvas top:\n%s", doc)
	}
}

func TestWriteSVGEmptyArea(t *testing.T) {
	s := &Scene{}
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf); err == nil {
		t.Error("empty area must be rejected")
	}
}

func TestWriteSVGMinimal(t *testing.T) {
	s := &Scene{Area: geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	doc := renderScene(t, s)
	validateXML(t, doc)
	if strings.Contains(doc, "<circle") || strings.Contains(doc, "<path") {
		t.Error("empty layers must not be emitted")
	}
}
