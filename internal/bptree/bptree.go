// Package bptree implements a paged B+-tree over uint64 keys with
// moving-object states as values — the ordered-index substrate of the
// B^x-tree. Leaves are linked for range scans, and the iterator supports
// arbitrary re-seeks so a Z-curve scan can jump with BIGMIN.
//
// Duplicate keys are allowed (many objects can share a curve cell).
// Deletion is lazy: entries are removed in place without rebalancing, the
// common trade-off for high-churn moving-object workloads where every
// object reinserts within the update interval anyway.
package bptree

import (
	"fmt"

	"pdr/internal/motion"
	"pdr/internal/storage"
)

const (
	headerBytes        = 24
	leafEntryBytes     = 8 + 8 + 4*8 // key + id + position + velocity
	internalEntryBytes = 8 + 8       // separator + child
)

// node is one page: a leaf holds (key, state) entries plus a right-sibling
// link; an internal node holds children and separator keys with
// keys[i] = smallest key reachable under children[i+1].
type node struct {
	leaf     bool
	keys     []uint64
	vals     []motion.State   // leaves only
	children []storage.PageID // internal only
	next     storage.PageID   // leaves only: right sibling
}

// Tree is a paged B+-tree. Not safe for concurrent use.
type Tree struct {
	pool    *storage.Pool
	root    storage.PageID
	height  int
	size    int
	fanLeaf int
	fanInt  int
}

// Config parameterizes construction.
type Config struct {
	// Pool backs the pages. Required.
	Pool *storage.Pool
	// PageSize in bytes (default 4 KB).
	PageSize int
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("bptree: nil pool")
	}
	ps := cfg.PageSize
	if ps == 0 {
		ps = storage.DefaultPageSize
	}
	fanLeaf := (ps - headerBytes) / leafEntryBytes
	fanInt := (ps - headerBytes) / internalEntryBytes
	if fanLeaf < 4 || fanInt < 4 {
		return nil, fmt.Errorf("bptree: page size %d too small", ps)
	}
	t := &Tree{pool: cfg.Pool, height: 1, fanLeaf: fanLeaf, fanInt: fanInt}
	t.root = t.newNode(&node{leaf: true})
	return t, nil
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

func (t *Tree) newNode(n *node) storage.PageID {
	id := t.pool.Alloc()
	t.write(id, n)
	return id
}

func (t *Tree) read(id storage.PageID) *node {
	v, err := t.pool.Read(id)
	if err != nil {
		panic("bptree: " + err.Error())
	}
	return v.(*node)
}

func (t *Tree) write(id storage.PageID, n *node) {
	if err := t.pool.Write(id, n); err != nil {
		panic("bptree: " + err.Error())
	}
}

// lowerBound returns the first index i with keys[i] >= key.
func lowerBound(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// seekChildIndex returns the leftmost child that can contain entries with
// keys >= key. On separator equality it descends LEFT: a split of duplicate
// keys leaves entries equal to the separator in the left child too.
func seekChildIndex(keys []uint64, key uint64) int {
	return lowerBound(keys, key)
}

// childIndex returns the child to descend for key: the separator keys[i]
// is the minimum key of children[i+1].
func childIndex(keys []uint64, key uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, val).
func (t *Tree) Insert(key uint64, val motion.State) {
	sepKey, newChild := t.insertAt(t.root, key, val)
	if newChild != 0 {
		newRoot := &node{
			keys:     []uint64{sepKey},
			children: []storage.PageID{t.root, newChild},
		}
		t.root = t.newNode(newRoot)
		t.height++
	}
	t.size++
}

// insertAt descends to a leaf; on split it returns the separator key and
// the new right sibling's page.
func (t *Tree) insertAt(pid storage.PageID, key uint64, val motion.State) (uint64, storage.PageID) {
	n := t.read(pid)
	if n.leaf {
		i := lowerBound(n.keys, key)
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, motion.State{})
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) <= t.fanLeaf {
			t.write(pid, n)
			return 0, 0
		}
		// Split the leaf.
		mid := len(n.keys) / 2
		right := &node{
			leaf: true,
			keys: append([]uint64(nil), n.keys[mid:]...),
			vals: append([]motion.State(nil), n.vals[mid:]...),
			next: n.next,
		}
		rid := t.newNode(right)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rid
		t.write(pid, n)
		return right.keys[0], rid
	}
	ci := childIndex(n.keys, key)
	sep, newChild := t.insertAt(n.children[ci], key, val)
	if newChild == 0 {
		return 0, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.children) <= t.fanInt {
		t.write(pid, n)
		return 0, 0
	}
	// Split the internal node: the middle key moves up.
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	right := &node{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]storage.PageID(nil), n.children[mid+1:]...),
	}
	rid := t.newNode(right)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	t.write(pid, n)
	return upKey, rid
}

// Delete removes one entry with the given key whose state matches match,
// reporting whether one was found. Removal is in place (lazy deletion).
func (t *Tree) Delete(key uint64, match func(motion.State) bool) bool {
	pid := t.root
	for {
		n := t.read(pid)
		if n.leaf {
			break
		}
		pid = n.children[seekChildIndex(n.keys, key)]
	}
	// Duplicates of key may spill into right siblings; walk until the key
	// range is exhausted.
	for pid != 0 {
		n := t.read(pid)
		i := lowerBound(n.keys, key)
		for ; i < len(n.keys) && n.keys[i] == key; i++ {
			if match(n.vals[i]) {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				t.write(pid, n)
				t.size--
				return true
			}
		}
		if i < len(n.keys) {
			return false // passed the key range
		}
		pid = n.next
	}
	return false
}

// Iterator walks leaf entries in key order.
type Iterator struct {
	t    *Tree
	page storage.PageID
	n    *node
	idx  int
}

// Seek returns an iterator positioned at the first entry with key >= key.
func (t *Tree) Seek(key uint64) *Iterator {
	pid := t.root
	for {
		n := t.read(pid)
		if n.leaf {
			break
		}
		pid = n.children[seekChildIndex(n.keys, key)]
	}
	it := &Iterator{t: t, page: pid}
	it.n = t.read(pid)
	it.idx = lowerBound(it.n.keys, key)
	it.skipExhausted()
	return it
}

// SeekTo repositions the iterator at the first entry with key >= key
// (used for BIGMIN jumps).
func (it *Iterator) SeekTo(key uint64) {
	*it = *it.t.Seek(key)
}

// Valid reports whether the iterator is on an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key (Valid must hold).
func (it *Iterator) Key() uint64 { return it.n.keys[it.idx] }

// Value returns the current state (Valid must hold).
func (it *Iterator) Value() motion.State { return it.n.vals[it.idx] }

// Next advances to the following entry.
func (it *Iterator) Next() {
	it.idx++
	it.skipExhausted()
}

// skipExhausted follows sibling links past empty/finished leaves.
func (it *Iterator) skipExhausted() {
	for it.n != nil && it.idx >= len(it.n.keys) {
		if it.n.next == 0 {
			it.n = nil
			return
		}
		it.page = it.n.next
		it.n = it.t.read(it.page)
		it.idx = 0
	}
}

// Scan visits entries with lo <= key <= hi in order; fn returning false
// stops early.
func (t *Tree) Scan(lo, hi uint64, fn func(uint64, motion.State) bool) {
	for it := t.Seek(lo); it.Valid() && it.Key() <= hi; it.Next() {
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}
