package bptree

import (
	"math/rand"
	"sort"
	"testing"

	"pdr/internal/motion"
	"pdr/internal/storage"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(Config{Pool: storage.NewPool(0)})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func stateFor(id int) motion.State {
	return motion.State{ID: motion.ObjectID(id)}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil pool must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), PageSize: 32}); err == nil {
		t.Error("tiny page must be rejected")
	}
}

func TestInsertScanSorted(t *testing.T) {
	tr := newTree(t)
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() >> 16
		tr.Insert(keys[i], stateFor(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 2 {
		t.Fatalf("expected multi-level tree, height %d", tr.Height())
	}
	var got []uint64
	tr.Scan(0, ^uint64(0), func(k uint64, _ motion.State) bool {
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("full scan returned %d, want %d", len(got), n)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("scan order broken at %d: %d vs %d", i, got[i], keys[i])
		}
	}
}

func TestRangeScanBounds(t *testing.T) {
	tr := newTree(t)
	for k := uint64(0); k < 1000; k++ {
		tr.Insert(k*10, stateFor(int(k)))
	}
	var got []uint64
	tr.Scan(150, 305, func(k uint64, _ motion.State) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300}
	if len(got) != len(want) {
		t.Fatalf("scan returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTree(t)
	for k := 0; k < 500; k++ {
		tr.Insert(uint64(k), stateFor(k))
	}
	count := 0
	tr.Scan(0, ^uint64(0), func(uint64, motion.State) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop visited %d, want 7", count)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTree(t)
	const dups = 300 // force duplicates across leaf splits
	for i := 0; i < dups; i++ {
		tr.Insert(42, stateFor(i))
	}
	tr.Insert(41, stateFor(9001))
	tr.Insert(43, stateFor(9002))
	seen := map[motion.ObjectID]bool{}
	tr.Scan(42, 42, func(k uint64, v motion.State) bool {
		if k != 42 {
			t.Fatalf("scan leaked key %d", k)
		}
		seen[v.ID] = true
		return true
	})
	if len(seen) != dups {
		t.Fatalf("found %d duplicates, want %d", len(seen), dups)
	}
	// Delete a specific duplicate, including ones past leaf boundaries.
	for i := 0; i < dups; i++ {
		id := motion.ObjectID(i)
		if !tr.Delete(42, func(s motion.State) bool { return s.ID == id }) {
			t.Fatalf("Delete dup %d failed", i)
		}
	}
	if tr.Delete(42, func(motion.State) bool { return true }) {
		t.Error("all dups deleted, another Delete succeeded")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newTree(t)
	tr.Insert(5, stateFor(1))
	if tr.Delete(6, func(motion.State) bool { return true }) {
		t.Error("deleting an absent key succeeded")
	}
	if tr.Delete(5, func(motion.State) bool { return false }) {
		t.Error("deleting with a never-matching predicate succeeded")
	}
}

func TestChurn(t *testing.T) {
	tr := newTree(t)
	rng := rand.New(rand.NewSource(2))
	live := map[int]uint64{}
	nextID := 0
	for round := 0; round < 20000; round++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			k := rng.Uint64() >> 20
			tr.Insert(k, stateFor(nextID))
			live[nextID] = k
			nextID++
		} else {
			// Delete a random live entry.
			for id, k := range live {
				idc := motion.ObjectID(id)
				if !tr.Delete(k, func(s motion.State) bool { return s.ID == idc }) {
					t.Fatalf("churn delete of %d (key %d) failed", id, k)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	// Every live entry must be findable at its key.
	for id, k := range live {
		found := false
		tr.Scan(k, k, func(_ uint64, v motion.State) bool {
			if v.ID == motion.ObjectID(id) {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("live entry %d (key %d) missing after churn", id, k)
		}
	}
}

func TestIteratorSeekTo(t *testing.T) {
	tr := newTree(t)
	for k := 0; k < 2000; k += 2 { // even keys only
		tr.Insert(uint64(k), stateFor(k))
	}
	it := tr.Seek(0)
	if !it.Valid() || it.Key() != 0 {
		t.Fatalf("Seek(0): key %d", it.Key())
	}
	it.SeekTo(1001) // odd: lands on 1002
	if !it.Valid() || it.Key() != 1002 {
		t.Fatalf("SeekTo(1001): key %d", it.Key())
	}
	it.SeekTo(5000) // past the end
	if it.Valid() {
		t.Fatal("SeekTo past the end must invalidate")
	}
}

func BenchmarkInsert(b *testing.B) {
	tr, err := New(Config{Pool: storage.NewPool(0)})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64(), stateFor(i))
	}
}

func BenchmarkScan1000(b *testing.B) {
	tr, err := New(Config{Pool: storage.NewPool(0)})
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 100000; k++ {
		tr.Insert(uint64(k), stateFor(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Scan(50000, 51000, func(uint64, motion.State) bool {
			count++
			return true
		})
	}
}

func TestScanAcrossEmptiedLeaves(t *testing.T) {
	// Delete every entry of a middle key range (emptying interior leaves);
	// the iterator must skip the empty leaves via sibling links.
	tr := newTree(t)
	const n = 5000
	for k := 0; k < n; k++ {
		tr.Insert(uint64(k), stateFor(k))
	}
	for k := 1000; k < 4000; k++ {
		kk := uint64(k)
		if !tr.Delete(kk, func(motion.State) bool { return true }) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	var got []uint64
	tr.Scan(500, 4500, func(k uint64, _ motion.State) bool {
		got = append(got, k)
		return true
	})
	want := 500 + 501 // 500..999 and 4000..4500
	if len(got) != want {
		t.Fatalf("scan returned %d keys, want %d", len(got), want)
	}
	if got[0] != 500 || got[len(got)-1] != 4500 {
		t.Fatalf("scan bounds: first %d last %d", got[0], got[len(got)-1])
	}
	// The gap must be absent.
	for _, k := range got {
		if k >= 1000 && k < 4000 {
			t.Fatalf("deleted key %d reappeared", k)
		}
	}
}
