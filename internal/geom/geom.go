// Package geom provides the planar geometry primitives used throughout the
// PDR (pointwise-dense region) system: points, vectors, axis-aligned
// rectangles with half-open semantics, and measure computations on unions of
// rectangles.
//
// Half-open convention. The paper defines the l-square neighborhood of a
// point to include its right and top edges and exclude its left and bottom
// edges. Dually, every rectangle in this package is interpreted as the
// half-open product [MinX, MaxX) x [MinY, MaxY): closed on the left/bottom,
// open on the right/top. Under this convention a set of rectangles tiling a
// region covers each point exactly once, and areas of unions, intersections
// and differences are exact rather than approximate along shared edges.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the XY-plane.
type Point struct {
	X, Y float64
}

// Vec is a velocity or displacement vector in the XY-plane.
type Vec struct {
	X, Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the displacement from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Add returns the vector sum v+w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, interpreted as the half-open region
// [MinX, MaxX) x [MinY, MaxY). A Rect with MaxX <= MinX or MaxY <= MinY is
// empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromCenter returns the square of edge length l centered at p.
// Per the half-open convention this is the dual influence rectangle of the
// paper's l-square neighborhood: it is closed on the left/bottom edges and
// open on the right/top edges.
func RectFromCenter(p Point, l float64) Rect {
	h := l / 2
	return Rect{p.X - h, p.Y - h, p.X + h, p.Y + h}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Width returns max(0, MaxX-MinX).
func (r Rect) Width() float64 {
	if r.MaxX <= r.MinX {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns max(0, MaxY-MinY).
func (r Rect) Height() float64 {
	if r.MaxY <= r.MinY {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r (zero if empty).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies in the half-open region of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies in the closure of r. The l-square
// neighborhood S_l(p) of the paper contains object q exactly when the dual
// influence rectangle of q contains p half-openly; ContainsClosed is provided
// for MBR-style containment checks where boundary inclusion is conservative.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s is entirely inside r (as point sets; empty s
// is contained in everything).
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point (half-open
// semantics: touching edges do not intersect).
func (r Rect) Intersects(s Rect) bool {
	return !r.Intersect(s).IsEmpty()
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s. Empty inputs
// are ignored; the union of two empty rectangles is the empty Rect{}.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Grow returns r expanded by d on every side (shrunk if d is negative).
func (r Rect) Grow(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Translate returns r shifted by v.
func (r Rect) Translate(v Vec) Rect {
	return Rect{r.MinX + v.X, r.MinY + v.Y, r.MaxX + v.X, r.MaxY + v.Y}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g, %g) x [%g, %g)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Region is a set of points represented as a union of half-open rectangles.
// The rectangles may overlap; all measure operations account for overlap
// exactly.
type Region []Rect

// Add appends r to the region if it is non-empty.
func (g *Region) Add(r Rect) {
	if !r.IsEmpty() {
		*g = append(*g, r)
	}
}

// Bounds returns the bounding rectangle of the region.
func (g Region) Bounds() Rect {
	var b Rect
	for _, r := range g {
		b = b.Union(r)
	}
	return b
}

// Contains reports whether p lies in at least one rectangle of the region.
func (g Region) Contains(p Point) bool {
	for _, r := range g {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Area returns the exact area of the union of the region's rectangles.
func (g Region) Area() float64 { return UnionArea(g) }

// IntersectRegion returns a region covering exactly the points common to g
// and h, built from pairwise rectangle intersections. This materializes up
// to len(g)*len(h) rectangles; for areas alone use IntersectionArea, which
// runs in near-linear time.
func (g Region) IntersectRegion(h Region) Region {
	var out Region
	for _, a := range g {
		for _, b := range h {
			out.Add(a.Intersect(b))
		}
	}
	return out
}

// IntersectionArea returns area(g intersect h), via inclusion-exclusion
// over three sweep-line union measures: |A ^ B| = |A| + |B| - |A u B|.
func (g Region) IntersectionArea(h Region) float64 {
	combined := make([]Rect, 0, len(g)+len(h))
	combined = append(combined, g...)
	combined = append(combined, h...)
	v := g.Area() + h.Area() - UnionArea(combined)
	if v < 0 {
		return 0 // floating-point round-off guard
	}
	return v
}

// DifferenceArea returns area(g \ h) = area(g u h) - area(h).
func (g Region) DifferenceArea(h Region) float64 {
	combined := make([]Rect, 0, len(g)+len(h))
	combined = append(combined, g...)
	combined = append(combined, h...)
	d := UnionArea(combined) - h.Area()
	if d < 0 {
		return 0 // guard against floating-point round-off
	}
	return d
}

// Clip returns the sub-region of g inside w.
func (g Region) Clip(w Rect) Region {
	var out Region
	for _, r := range g {
		out.Add(r.Intersect(w))
	}
	return out
}
