package geom

// SubtractRect returns r \ s as up to four disjoint rectangles.
func SubtractRect(r, s Rect) Region {
	if r.IsEmpty() {
		return nil
	}
	ov := r.Intersect(s)
	if ov.IsEmpty() {
		return Region{r}
	}
	if ov == r {
		return nil
	}
	var out Region
	// Bottom band.
	out.Add(Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: ov.MinY})
	// Top band.
	out.Add(Rect{MinX: r.MinX, MinY: ov.MaxY, MaxX: r.MaxX, MaxY: r.MaxY})
	// Left and right slivers of the middle band.
	out.Add(Rect{MinX: r.MinX, MinY: ov.MinY, MaxX: ov.MinX, MaxY: ov.MaxY})
	out.Add(Rect{MinX: ov.MaxX, MinY: ov.MinY, MaxX: r.MaxX, MaxY: ov.MaxY})
	return out
}

// Subtract returns a region covering exactly the points of g not covered by
// h. The result is built by iterated rectangle subtraction and compacted
// with Coalesce; it is exact under the half-open convention.
func Subtract(g, h Region) Region {
	pieces := make(Region, 0, len(g))
	for _, r := range g {
		if !r.IsEmpty() {
			pieces = append(pieces, r)
		}
	}
	for _, b := range h {
		if b.IsEmpty() || len(pieces) == 0 {
			continue
		}
		next := make(Region, 0, len(pieces))
		for _, p := range pieces {
			next = append(next, SubtractRect(p, b)...)
		}
		pieces = next
	}
	return Coalesce(pieces)
}
