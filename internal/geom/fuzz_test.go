package geom

import (
	"math"
	"testing"
)

// FuzzOutlineAreaIdentity derives a rectangle set from fuzz bytes and checks
// the outline invariants: net signed ring area equals the union area, and
// every ring edge is axis-parallel and non-degenerate.
func FuzzOutlineAreaIdentity(f *testing.F) {
	f.Add([]byte{0, 0, 2, 2, 1, 1, 3, 3})
	f.Add([]byte{0, 0, 1, 1, 1, 1, 2, 2})       // corner pinch
	f.Add([]byte{5, 5, 9, 9, 0, 0, 4, 4, 2, 2}) // disjoint + leftover byte
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Region
		for i := 0; i+3 < len(data) && len(g) < 24; i += 4 {
			x := float64(data[i] % 16)
			y := float64(data[i+1] % 16)
			w := float64(data[i+2]%7) + 0
			h := float64(data[i+3]%7) + 0
			g.Add(Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
		}
		rings := g.Outline()
		var signed float64
		for _, ring := range rings {
			signed += RingArea(ring)
			for i := range ring {
				a, b := ring[i], ring[(i+1)%len(ring)]
				if a == b {
					t.Fatalf("degenerate edge in ring %v", ring)
				}
				if a.X != b.X && a.Y != b.Y {
					t.Fatalf("diagonal edge %v -> %v", a, b)
				}
			}
		}
		if want := g.Area(); math.Abs(signed-want) > 1e-6*(1+want) {
			t.Fatalf("signed ring area %g != union area %g (%d rects)", signed, want, len(g))
		}
		// Subtract identity on the same data: g \ g is empty.
		if d := Subtract(g, g); d.Area() != 0 {
			t.Fatalf("g \\ g has area %g", d.Area())
		}
	})
}
