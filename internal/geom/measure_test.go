package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionAreaBasic(t *testing.T) {
	cases := []struct {
		name  string
		rects []Rect
		want  float64
	}{
		{"empty", nil, 0},
		{"single", []Rect{{0, 0, 2, 3}}, 6},
		{"disjoint", []Rect{{0, 0, 1, 1}, {2, 2, 3, 3}}, 2},
		{"identical", []Rect{{0, 0, 2, 2}, {0, 0, 2, 2}}, 4},
		{"nested", []Rect{{0, 0, 10, 10}, {2, 2, 4, 4}}, 100},
		{"overlap", []Rect{{0, 0, 2, 2}, {1, 1, 3, 3}}, 7},
		{"touching", []Rect{{0, 0, 1, 1}, {1, 0, 2, 1}}, 2},
		{"degenerate", []Rect{{0, 0, 0, 5}, {1, 1, 1, 1}}, 0},
		{"cross", []Rect{{-1, -3, 1, 3}, {-3, -1, 3, 1}}, 12 + 12 - 4},
	}
	for _, c := range cases {
		if got := UnionArea(c.rects); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: UnionArea = %g, want %g", c.name, got, c.want)
		}
	}
}

// naiveUnionArea computes union area by coordinate compression over all
// elementary cells — an O(n^3)-ish oracle for small inputs.
func naiveUnionArea(rects []Rect) float64 {
	var xs, ys []float64
	for _, r := range rects {
		if r.IsEmpty() {
			continue
		}
		xs = append(xs, r.MinX, r.MaxX)
		ys = append(ys, r.MinY, r.MaxY)
	}
	if len(xs) == 0 {
		return 0
	}
	sortFloats := func(s []float64) []float64 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return dedupFloat64s(s)
	}
	xs, ys = sortFloats(xs), sortFloats(ys)
	var area float64
	for i := 0; i+1 < len(xs); i++ {
		for j := 0; j+1 < len(ys); j++ {
			cx, cy := (xs[i]+xs[i+1])/2, (ys[j]+ys[j+1])/2
			for _, r := range rects {
				if r.Contains(Point{cx, cy}) {
					area += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
					break
				}
			}
		}
	}
	return area
}

func TestQuickUnionAreaMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = quickRect(rng)
		}
		fast, slow := UnionArea(rects), naiveUnionArea(rects)
		return math.Abs(fast-slow) < 1e-6*(1+slow)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionAreaMonotone(t *testing.T) {
	// Adding a rectangle never decreases union area, and increases it by at
	// most the rectangle's own area.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = quickRect(rng)
		}
		extra := quickRect(rng)
		before := UnionArea(rects)
		after := UnionArea(append(rects, extra))
		return after >= before-1e-9 && after <= before+extra.Area()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRegionSetOps(t *testing.T) {
	a := Region{{0, 0, 4, 4}}
	b := Region{{2, 0, 6, 4}}
	if got := a.IntersectionArea(b); math.Abs(got-8) > 1e-9 {
		t.Errorf("IntersectionArea = %g, want 8", got)
	}
	if got := a.DifferenceArea(b); math.Abs(got-8) > 1e-9 {
		t.Errorf("DifferenceArea = %g, want 8", got)
	}
	if got := b.DifferenceArea(a); math.Abs(got-8) > 1e-9 {
		t.Errorf("DifferenceArea = %g, want 8", got)
	}
	// Difference with self is zero.
	if got := a.DifferenceArea(a); got != 0 {
		t.Errorf("DifferenceArea(a,a) = %g, want 0", got)
	}
}

func TestQuickRegionInclusionExclusion(t *testing.T) {
	// area(A) = area(A \ B) + area(A intersect B) for rect-union regions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Region {
			n := 1 + rng.Intn(6)
			g := make(Region, n)
			for i := range g {
				g[i] = quickRect(rng)
			}
			return g
		}
		a, b := mk(), mk()
		lhs := a.Area()
		rhs := a.DifferenceArea(b) + a.IntersectionArea(b)
		return math.Abs(lhs-rhs) < 1e-6*(1+lhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionArea1000(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	rects := make([]Rect, 1000)
	for i := range rects {
		rects[i] = quickRect(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionArea(rects)
	}
}
