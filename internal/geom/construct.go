package geom

import "math"

// NewRect returns the half-open rectangle [minX, maxX) x [minY, maxY).
// It is the canonical constructor outside this package (enforced by
// pdrvet's halfopen analyzer): building rectangles in one audited place
// keeps the closed-left/open-right convention from silently flipping in
// density counts. Inverted extents yield an empty rectangle, as
// documented on Rect.
func NewRect(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// RectFromCorners returns the half-open rectangle spanned by two opposite
// corners, normalizing their order so the result is non-empty whenever the
// corners differ in both coordinates.
func RectFromCorners(p, q Point) Rect {
	return Rect{
		MinX: math.Min(p.X, q.X),
		MinY: math.Min(p.Y, q.Y),
		MaxX: math.Max(p.X, q.X),
		MaxY: math.Max(p.Y, q.Y),
	}
}

// Eps is the relative tolerance of ApproxEq: coarse enough to absorb the
// round-off of the handful of arithmetic steps that produce any coordinate
// in this module, fine enough to keep distinct histogram-cell boundaries
// (>= 1e-3 apart at the paper's scales) separate.
const Eps = 1e-9

// ApproxEq reports whether a and b are equal within Eps, relative to their
// magnitude (absolute near zero). It is the approved way to compare
// computed float values; exact ==/!= on floats is rejected by pdrvet's
// floateq analyzer.
func ApproxEq(a, b float64) bool {
	if a == b {
		return true // fast path; also covers infinities
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= Eps*scale
}

// ApproxEqRect reports whether every extent of a and b is ApproxEq.
func ApproxEqRect(a, b Rect) bool {
	return ApproxEq(a.MinX, b.MinX) && ApproxEq(a.MinY, b.MinY) &&
		ApproxEq(a.MaxX, b.MaxX) && ApproxEq(a.MaxY, b.MaxY)
}
