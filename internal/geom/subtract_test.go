package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubtractRectCases(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	cases := []struct {
		name     string
		s        Rect
		wantArea float64
	}{
		{"disjoint", Rect{MinX: 10, MinY: 10, MaxX: 12, MaxY: 12}, 16},
		{"covering", Rect{MinX: -1, MinY: -1, MaxX: 5, MaxY: 5}, 0},
		{"center hole", Rect{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}, 12},
		{"left half", Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 4}, 8},
		{"corner", Rect{MinX: 3, MinY: 3, MaxX: 5, MaxY: 5}, 15},
		{"identical", r, 0},
	}
	for _, c := range cases {
		got := SubtractRect(r, c.s)
		if a := got.Area(); math.Abs(a-c.wantArea) > 1e-9 {
			t.Errorf("%s: area %g, want %g", c.name, a, c.wantArea)
		}
		// Pieces must be disjoint: union area equals summed areas.
		var sum float64
		for _, p := range got {
			sum += p.Area()
		}
		if math.Abs(sum-got.Area()) > 1e-9 {
			t.Errorf("%s: pieces overlap (sum %g, union %g)", c.name, sum, got.Area())
		}
	}
}

func TestSubtractRegions(t *testing.T) {
	g := Region{{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	h := Region{
		{MinX: 0, MinY: 0, MaxX: 5, MaxY: 10},
		{MinX: 5, MinY: 0, MaxX: 10, MaxY: 5},
	}
	got := Subtract(g, h)
	want := Rect{MinX: 5, MinY: 5, MaxX: 10, MaxY: 10}
	if len(got) != 1 || got[0] != want {
		t.Errorf("Subtract = %v, want [%v]", got, want)
	}
	if len(Subtract(nil, h)) != 0 {
		t.Error("empty minuend must stay empty")
	}
	if got := Subtract(g, nil); math.Abs(got.Area()-100) > 1e-9 {
		t.Error("empty subtrahend must keep g")
	}
}

func TestQuickSubtractSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) Region {
			g := make(Region, n)
			for i := range g {
				x, y := rng.Float64()*20, rng.Float64()*20
				g[i] = Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*8, MaxY: y + rng.Float64()*8}
			}
			return g
		}
		g, h := mk(1+rng.Intn(5)), mk(1+rng.Intn(5))
		d := Subtract(g, h)
		// Area identity.
		if math.Abs(d.Area()-g.DifferenceArea(h)) > 1e-6 {
			return false
		}
		// Point-level semantics on samples.
		for k := 0; k < 150; k++ {
			p := Point{X: rng.Float64() * 28, Y: rng.Float64() * 28}
			want := g.Contains(p) && !h.Contains(p)
			if d.Contains(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
