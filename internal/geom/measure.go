package geom

import "sort"

// UnionArea computes the exact area of the union of a set of half-open
// rectangles (Klee's measure problem in two dimensions). It runs a vertical
// sweep over the x-extents of the rectangles and maintains the total covered
// y-length in a segment tree over the compressed y-coordinates, giving
// O(n log n) time.
func UnionArea(rects []Rect) float64 {
	// Collect non-empty rectangles and compressed y-coordinates.
	type event struct {
		x      float64
		y1, y2 int // compressed y index range [y1, y2)
		delta  int // +1 open, -1 close
	}
	ys := make([]float64, 0, 2*len(rects))
	n := 0
	for _, r := range rects {
		if r.IsEmpty() {
			continue
		}
		ys = append(ys, r.MinY, r.MaxY)
		n++
	}
	if n == 0 {
		return 0
	}
	sort.Float64s(ys)
	ys = dedupFloat64s(ys)

	yIndex := func(v float64) int {
		return sort.SearchFloat64s(ys, v)
	}

	events := make([]event, 0, 2*n)
	for _, r := range rects {
		if r.IsEmpty() {
			continue
		}
		y1, y2 := yIndex(r.MinY), yIndex(r.MaxY)
		events = append(events,
			event{r.MinX, y1, y2, +1},
			event{r.MaxX, y1, y2, -1},
		)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].x < events[j].x })

	st := newCoverTree(ys)
	var area float64
	prevX := events[0].x
	for _, e := range events {
		if e.x > prevX {
			area += (e.x - prevX) * st.coveredLength()
			prevX = e.x
		}
		st.update(e.y1, e.y2, e.delta)
	}
	return area
}

func dedupFloat64s(s []float64) []float64 {
	out := s[:0]
	for i, v := range s {
		// lint:ignore floateq dedup of sorted coordinates removes only
		// bit-identical neighbors; epsilon would merge distinct cell edges.
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out[:len(out):len(out)]
}

// coverTree is a segment tree over the elementary intervals between
// consecutive sorted y-coordinates. Each node tracks how many active
// rectangles fully cover its interval (cover) and the total length of its
// interval that is covered at least once (length). Because rectangles are
// inserted and removed in balanced pairs, cover counts never go negative.
type coverTree struct {
	ys    []float64
	cover []int
	len   []float64
}

func newCoverTree(ys []float64) *coverTree {
	m := len(ys) - 1 // number of elementary intervals
	if m < 1 {
		m = 1
	}
	return &coverTree{
		ys:    ys,
		cover: make([]int, 4*m),
		len:   make([]float64, 4*m),
	}
}

// update adds delta to the cover count of elementary intervals [l, r).
func (t *coverTree) update(l, r, delta int) {
	if l >= r {
		return
	}
	t.updateNode(1, 0, len(t.ys)-1, l, r, delta)
}

func (t *coverTree) updateNode(node, nodeL, nodeR, l, r, delta int) {
	if r <= nodeL || nodeR <= l {
		return
	}
	if l <= nodeL && nodeR <= r {
		t.cover[node] += delta
	} else {
		mid := (nodeL + nodeR) / 2
		t.updateNode(2*node, nodeL, mid, l, r, delta)
		t.updateNode(2*node+1, mid, nodeR, l, r, delta)
	}
	// Recompute covered length of this node.
	switch {
	case t.cover[node] > 0:
		t.len[node] = t.ys[nodeR] - t.ys[nodeL]
	case nodeR-nodeL == 1:
		t.len[node] = 0
	default:
		t.len[node] = t.len[2*node] + t.len[2*node+1]
	}
}

func (t *coverTree) coveredLength() float64 {
	return t.len[1]
}
