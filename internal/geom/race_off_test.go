//go:build !race

package geom

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
