package geom

import "sort"

// Ring is a closed rectilinear polygon boundary: consecutive vertices are
// joined by axis-parallel segments, and the last vertex connects back to the
// first. Outer boundaries are counter-clockwise; holes are clockwise.
type Ring []Point

// Outline converts the region into its rectilinear boundary rings — the
// actual "arbitrary shape" dense regions the PDR paper advertises, rather
// than a bag of rectangles. Overlapping and adjacent rectangles merge; the
// result contains one outer ring per connected component plus one ring per
// hole.
//
// The algorithm rasterizes the region onto the compressed coordinate grid
// (every rectangle edge coordinate becomes a grid line), collects the
// elementary boundary edges (cell sides where coverage flips), and stitches
// them into rings, preferring straight continuation so collinear segments
// merge.
func (g Region) Outline() []Ring {
	rects := make([]Rect, 0, len(g))
	for _, r := range g {
		if !r.IsEmpty() {
			rects = append(rects, r)
		}
	}
	if len(rects) == 0 {
		return nil
	}
	xs := make([]float64, 0, 2*len(rects))
	ys := make([]float64, 0, 2*len(rects))
	for _, r := range rects {
		xs = append(xs, r.MinX, r.MaxX)
		ys = append(ys, r.MinY, r.MaxY)
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	xs = dedupFloat64s(xs)
	ys = dedupFloat64s(ys)
	nx, ny := len(xs)-1, len(ys)-1 // elementary cells

	xi := func(v float64) int { return sort.SearchFloat64s(xs, v) }
	yi := func(v float64) int { return sort.SearchFloat64s(ys, v) }

	covered := make([]bool, nx*ny)
	for _, r := range rects {
		x1, x2 := xi(r.MinX), xi(r.MaxX)
		y1, y2 := yi(r.MinY), yi(r.MaxY)
		for x := x1; x < x2; x++ {
			for y := y1; y < y2; y++ {
				covered[x*ny+y] = true
			}
		}
	}
	at := func(x, y int) bool {
		if x < 0 || x >= nx || y < 0 || y >= ny {
			return false
		}
		return covered[x*ny+y]
	}

	// Directed boundary edges on grid vertices, oriented so the covered
	// side is on the left (outer rings come out counter-clockwise).
	// out[v] lists edges leaving v.
	out := make(map[gridVertex][]gridVertex)
	addEdge := func(a, b gridVertex) {
		out[a] = append(out[a], b)
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if !at(x, y) {
				continue
			}
			if !at(x, y-1) { // bottom edge, rightward
				addEdge(gridVertex{x, y}, gridVertex{x + 1, y})
			}
			if !at(x, y+1) { // top edge, leftward
				addEdge(gridVertex{x + 1, y + 1}, gridVertex{x, y + 1})
			}
			if !at(x-1, y) { // left edge, downward
				addEdge(gridVertex{x, y + 1}, gridVertex{x, y})
			}
			if !at(x+1, y) { // right edge, upward
				addEdge(gridVertex{x + 1, y}, gridVertex{x + 1, y + 1})
			}
		}
	}

	// Stitch edges into rings. At degree-2 vertices continuation is
	// unambiguous; at pinch vertices (two diagonal cells meeting) prefer
	// the leftmost turn so rings stay simple.
	var rings []Ring
	// Deterministic iteration: collect and sort starting vertices.
	starts := make([]gridVertex, 0, len(out))
	for v := range out {
		starts = append(starts, v)
	}
	sort.Slice(starts, func(i, j int) bool {
		if starts[i].x != starts[j].x {
			return starts[i].x < starts[j].x
		}
		return starts[i].y < starts[j].y
	})
	popEdge := func(from gridVertex, prefer func(gridVertex) int) (gridVertex, bool) {
		cands := out[from]
		if len(cands) == 0 {
			return gridVertex{}, false
		}
		best := 0
		if len(cands) > 1 && prefer != nil {
			bestScore := prefer(cands[0])
			for i := 1; i < len(cands); i++ {
				if s := prefer(cands[i]); s < bestScore {
					best, bestScore = i, s
				}
			}
		}
		to := cands[best]
		cands[best] = cands[len(cands)-1]
		out[from] = cands[:len(cands)-1]
		if len(out[from]) == 0 {
			delete(out, from)
		}
		return to, true
	}
	for _, start := range starts {
		for len(out[start]) > 0 {
			var ring []gridVertex
			cur := start
			var dirX, dirY int
			for {
				next, ok := popEdge(cur, func(c gridVertex) int {
					// Prefer a left turn relative to the incoming
					// direction, then straight, then right — the standard
					// way to keep pinched rings simple.
					tdx, tdy := c.x-cur.x, c.y-cur.y
					cross := dirX*tdy - dirY*tdx
					switch {
					case cross > 0:
						return 0 // left
					case cross == 0 && (tdx != -dirX || tdy != -dirY):
						return 1 // straight
					default:
						return 2
					}
				})
				if !ok {
					break
				}
				ring = append(ring, cur)
				dirX, dirY = next.x-cur.x, next.y-cur.y
				cur = next
				if cur == ring[0] {
					break
				}
			}
			if len(ring) < 4 {
				continue
			}
			rings = append(rings, simplifyRing(ring, xs, ys))
		}
	}
	return rings
}

// gridVertex is a vertex of the compressed coordinate grid used by Outline.
type gridVertex struct{ x, y int }

// simplifyRing converts grid vertices to world points, dropping collinear
// intermediate vertices.
func simplifyRing(vs []gridVertex, xs, ys []float64) Ring {
	n := len(vs)
	var ring Ring
	for i := 0; i < n; i++ {
		prev := vs[(i-1+n)%n]
		cur := vs[i]
		next := vs[(i+1)%n]
		// Keep cur only if direction changes there.
		d1x, d1y := sign(cur.x-prev.x), sign(cur.y-prev.y)
		d2x, d2y := sign(next.x-cur.x), sign(next.y-cur.y)
		if d1x != d2x || d1y != d2y {
			ring = append(ring, Point{X: xs[cur.x], Y: ys[cur.y]})
		}
	}
	return ring
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// RingArea returns the signed area of the ring (positive for
// counter-clockwise orientation) via the shoelace formula.
func RingArea(r Ring) float64 {
	var sum float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return sum / 2
}
