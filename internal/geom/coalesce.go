package geom

import (
	"cmp"
	"slices"
)

// Coalesce returns a compacted region covering exactly the same point set:
// rectangles that abut horizontally with identical Y extents are merged into
// runs, and runs that abut vertically with identical X extents are stacked.
// Query answers produced cell-by-cell (the FR refinement, the PA
// branch-and-bound) shrink dramatically — often by an order of magnitude —
// which speeds up every downstream area computation.
//
// Coalesce assumes the input rectangles are non-overlapping or exactly
// aligned (true for all query outputs in this module); overlapping inputs
// are still covered correctly but may not reach the minimal form.
func Coalesce(g Region) Region {
	if len(g) < 2 {
		return g
	}
	work := make(Region, 0, len(g))
	for _, r := range g {
		if !r.IsEmpty() {
			work = append(work, r)
		}
	}
	return coalesceWork(work)
}

// CoalesceInPlace is Coalesce for a caller that owns g's backing array: the
// working set is compacted, sorted, and merged inside g itself, so steady-
// state coalescing allocates nothing. The input is consumed — its contents
// are unspecified afterwards and the result aliases it. Regions built
// per-call (the FR refinement union, the PA branch-and-bound output, the
// interval merge) qualify; shared or cached regions must use Coalesce.
func CoalesceInPlace(g Region) Region {
	if len(g) < 2 {
		return g
	}
	work := g[:0]
	for _, r := range g {
		if !r.IsEmpty() {
			work = append(work, r)
		}
	}
	return coalesceWork(work)
}

// coalesceWork runs the two merge passes over the (owned) working slice.
func coalesceWork(work Region) Region {
	if len(work) < 2 {
		return work
	}

	// Pass 1: merge horizontal runs within (MinY, MaxY) bands.
	slices.SortFunc(work, func(a, b Rect) int {
		if c := cmp.Compare(a.MinY, b.MinY); c != 0 {
			return c
		}
		if c := cmp.Compare(a.MaxY, b.MaxY); c != 0 {
			return c
		}
		return cmp.Compare(a.MinX, b.MinX)
	})
	merged := work[:1]
	for _, r := range work[1:] {
		last := &merged[len(merged)-1]
		// lint:ignore floateq runs may merge only when their band edges are
		// bit-identical; an epsilon would grow the covered point set.
		if r.MinY == last.MinY && r.MaxY == last.MaxY && r.MinX <= last.MaxX {
			if r.MaxX > last.MaxX {
				last.MaxX = r.MaxX
			}
		} else {
			merged = append(merged, r)
		}
	}

	// Pass 2: stack vertical runs with identical X extents.
	slices.SortFunc(merged, func(a, b Rect) int {
		if c := cmp.Compare(a.MinX, b.MinX); c != 0 {
			return c
		}
		if c := cmp.Compare(a.MaxX, b.MaxX); c != 0 {
			return c
		}
		return cmp.Compare(a.MinY, b.MinY)
	})
	out := merged[:1]
	for _, r := range merged[1:] {
		last := &out[len(out)-1]
		// lint:ignore floateq runs may stack only when their X extents are
		// bit-identical; an epsilon would grow the covered point set.
		if r.MinX == last.MinX && r.MaxX == last.MaxX && r.MinY <= last.MaxY {
			if r.MaxY > last.MaxY {
				last.MaxY = r.MaxY
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
