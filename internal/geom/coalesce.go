package geom

import "sort"

// Coalesce returns a compacted region covering exactly the same point set:
// rectangles that abut horizontally with identical Y extents are merged into
// runs, and runs that abut vertically with identical X extents are stacked.
// Query answers produced cell-by-cell (the FR refinement, the PA
// branch-and-bound) shrink dramatically — often by an order of magnitude —
// which speeds up every downstream area computation.
//
// Coalesce assumes the input rectangles are non-overlapping or exactly
// aligned (true for all query outputs in this module); overlapping inputs
// are still covered correctly but may not reach the minimal form.
func Coalesce(g Region) Region {
	if len(g) < 2 {
		return g
	}
	work := make(Region, 0, len(g))
	for _, r := range g {
		if !r.IsEmpty() {
			work = append(work, r)
		}
	}
	if len(work) < 2 {
		return work
	}

	// Pass 1: merge horizontal runs within (MinY, MaxY) bands.
	sort.Slice(work, func(i, j int) bool {
		a, b := work[i], work[j]
		if a.MinY < b.MinY {
			return true
		}
		if a.MinY > b.MinY {
			return false
		}
		if a.MaxY < b.MaxY {
			return true
		}
		if a.MaxY > b.MaxY {
			return false
		}
		return a.MinX < b.MinX
	})
	merged := work[:1]
	for _, r := range work[1:] {
		last := &merged[len(merged)-1]
		// lint:ignore floateq runs may merge only when their band edges are
		// bit-identical; an epsilon would grow the covered point set.
		if r.MinY == last.MinY && r.MaxY == last.MaxY && r.MinX <= last.MaxX {
			if r.MaxX > last.MaxX {
				last.MaxX = r.MaxX
			}
		} else {
			merged = append(merged, r)
		}
	}

	// Pass 2: stack vertical runs with identical X extents.
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.MinX < b.MinX {
			return true
		}
		if a.MinX > b.MinX {
			return false
		}
		if a.MaxX < b.MaxX {
			return true
		}
		if a.MaxX > b.MaxX {
			return false
		}
		return a.MinY < b.MinY
	})
	out := merged[:1]
	for _, r := range merged[1:] {
		last := &out[len(out)-1]
		// lint:ignore floateq runs may stack only when their X extents are
		// bit-identical; an epsilon would grow the covered point set.
		if r.MinX == last.MinX && r.MaxX == last.MaxX && r.MinY <= last.MaxY {
			if r.MaxY > last.MaxY {
				last.MaxY = r.MaxY
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
