package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectEmpty(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, false},
		{Rect{0, 0, 0, 1}, true},
		{Rect{0, 0, 1, 0}, true},
		{Rect{1, 1, 0, 0}, true},
		{Rect{}, true},
		{Rect{-1, -1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.r.IsEmpty(); got != c.want {
			t.Errorf("IsEmpty(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectAreaWidthHeight(t *testing.T) {
	r := Rect{1, 2, 4, 7}
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %g, want 3", got)
	}
	if got := r.Height(); got != 5 {
		t.Errorf("Height = %g, want 5", got)
	}
	if got := r.Area(); got != 15 {
		t.Errorf("Area = %g, want 15", got)
	}
	if got := (Rect{3, 3, 1, 9}).Area(); got != 0 {
		t.Errorf("empty Area = %g, want 0", got)
	}
}

func TestHalfOpenContains(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if !r.Contains(Point{0, 0}) {
		t.Error("left-bottom corner must be contained (closed edges)")
	}
	if r.Contains(Point{2, 1}) {
		t.Error("right edge must be excluded (open edge)")
	}
	if r.Contains(Point{1, 2}) {
		t.Error("top edge must be excluded (open edge)")
	}
	if !r.Contains(Point{1.999999, 1.999999}) {
		t.Error("interior point near top-right must be contained")
	}
	if !r.ContainsClosed(Point{2, 2}) {
		t.Error("ContainsClosed must include the top-right corner")
	}
}

func TestRectFromCenterHalfOpenDuality(t *testing.T) {
	// The influence rectangle of object q contains center p exactly when q
	// lies in the (right/top-closed) l-square neighborhood of p.
	l := 2.0
	q := Point{5, 5}
	infl := RectFromCenter(q, l)

	inNeighborhood := func(p Point) bool {
		return q.X > p.X-l/2 && q.X <= p.X+l/2 && q.Y > p.Y-l/2 && q.Y <= p.Y+l/2
	}
	pts := []Point{
		{5, 5}, {4, 4}, {6, 6}, {3.999, 5}, {6.001, 5}, {4, 6}, {6, 4},
		{5.9999, 5.9999}, {4.0001, 4.0001},
	}
	for _, p := range pts {
		if got, want := infl.Contains(p), inNeighborhood(p); got != want {
			t.Errorf("duality broken at p=%v: influence contains=%v, neighborhood=%v", p, got, want)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got := a.Intersect(b)
	want := Rect{2, 2, 4, 4}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	// Touching edges produce an empty intersection under half-open semantics.
	c := Rect{4, 0, 8, 4}
	if a.Intersects(c) {
		t.Error("edge-touching rectangles must not intersect")
	}
}

func TestUnionBounding(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{5, -2, 6, 3}
	got := a.Union(b)
	want := Rect{0, -2, 6, 3}
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
}

func TestGrowTranslateCenter(t *testing.T) {
	r := Rect{0, 0, 2, 4}
	if got, want := r.Grow(1), (Rect{-1, -1, 3, 5}); got != want {
		t.Errorf("Grow = %v, want %v", got, want)
	}
	if got, want := r.Translate(Vec{1, -1}), (Rect{1, -1, 3, 3}); got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
	if got, want := r.Center(), (Point{1, 2}); got != want {
		t.Errorf("Center = %v, want %v", got, want)
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("inner rect must be contained")
	}
	if !outer.ContainsRect(outer) {
		t.Error("rect must contain itself")
	}
	if outer.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("overhanging rect must not be contained")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Error("empty rect is contained in everything")
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got, want := v.Scale(2), (Vec{6, 8}); got != want {
		t.Errorf("Scale = %v, want %v", got, want)
	}
	if got, want := v.Add(Vec{-3, -4}), (Vec{0, 0}); got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
	p := Point{1, 1}
	if got, want := p.Add(v), (Point{4, 5}); got != want {
		t.Errorf("Point.Add = %v, want %v", got, want)
	}
	if got, want := (Point{4, 5}).Sub(p), v; got != want {
		t.Errorf("Point.Sub = %v, want %v", got, want)
	}
}

func TestRegionContainsAndBounds(t *testing.T) {
	var g Region
	g.Add(Rect{0, 0, 1, 1})
	g.Add(Rect{2, 2, 3, 3})
	g.Add(Rect{5, 5, 5, 9}) // empty, must be dropped
	if len(g) != 2 {
		t.Fatalf("Add kept %d rects, want 2", len(g))
	}
	if !g.Contains(Point{0.5, 0.5}) || !g.Contains(Point{2, 2}) {
		t.Error("Region must contain points of its member rects")
	}
	if g.Contains(Point{1.5, 1.5}) {
		t.Error("Region must not contain points outside all members")
	}
	if got, want := g.Bounds(), (Rect{0, 0, 3, 3}); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
}

// quickRect generates a bounded random rectangle (possibly degenerate).
func quickRect(rng *rand.Rand) Rect {
	x1, y1 := rng.Float64()*100, rng.Float64()*100
	w, h := rng.Float64()*30, rng.Float64()*30
	return Rect{x1, y1, x1 + w, y1 + h}
}

func TestQuickIntersectCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := quickRect(rng), quickRect(rng)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		return i1 == i2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionWithinBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := quickRect(rng), quickRect(rng)
		i := a.Intersect(b)
		if i.IsEmpty() {
			return true
		}
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := quickRect(rng), quickRect(rng)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAreaInclusionExclusion(t *testing.T) {
	// area(a) + area(b) = area(a union b as region) + area(a intersect b).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := quickRect(rng), quickRect(rng)
		lhs := a.Area() + b.Area()
		rhs := UnionArea([]Rect{a, b}) + a.Intersect(b).Area()
		return math.Abs(lhs-rhs) < 1e-6*(1+lhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionClip(t *testing.T) {
	g := Region{{0, 0, 10, 10}, {20, 20, 30, 30}}
	c := g.Clip(Rect{5, 5, 25, 25})
	wantArea := 25.0 + 25.0 // 5x5 from each member
	if got := c.Area(); math.Abs(got-wantArea) > 1e-9 {
		t.Errorf("Clip area = %g, want %g", got, wantArea)
	}
}
