//go:build race

package geom

// raceEnabled reports that this test binary was built with -race. The race
// detector instruments sync.Pool (and randomly drops pooled items), so
// allocation-count pins are meaningless under it and skip themselves.
const raceEnabled = true
