package geom

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestCoalesceRows(t *testing.T) {
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 1, MinY: 0, MaxX: 2, MaxY: 1},
		{MinX: 2, MinY: 0, MaxX: 3, MaxY: 1},
	}
	c := Coalesce(g)
	if len(c) != 1 {
		t.Fatalf("coalesced to %d rects, want 1", len(c))
	}
	if c[0] != (Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 1}) {
		t.Errorf("coalesced rect %v", c[0])
	}
}

func TestCoalesceColumns(t *testing.T) {
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1},
		{MinX: 0, MinY: 1, MaxX: 2, MaxY: 2},
		{MinX: 0, MinY: 2, MaxX: 2, MaxY: 3},
	}
	c := Coalesce(g)
	if len(c) != 1 {
		t.Fatalf("coalesced to %d rects, want 1", len(c))
	}
	if got := c.Area(); got != 6 {
		t.Errorf("area %g, want 6", got)
	}
}

func TestCoalesceGrid(t *testing.T) {
	// A full 4x4 grid of unit cells collapses to one rect.
	var g Region
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			g.Add(Rect{MinX: float64(i), MinY: float64(j), MaxX: float64(i + 1), MaxY: float64(j + 1)})
		}
	}
	c := Coalesce(g)
	if len(c) != 1 {
		t.Fatalf("grid coalesced to %d rects, want 1", len(c))
	}
	if got := c.Area(); got != 16 {
		t.Errorf("area %g, want 16", got)
	}
}

func TestCoalesceKeepsDisjoint(t *testing.T) {
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6},
	}
	if c := Coalesce(g); len(c) != 2 {
		t.Fatalf("disjoint rects merged: %v", c)
	}
}

func TestCoalesceDropsEmpty(t *testing.T) {
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 3, MinY: 3, MaxX: 3, MaxY: 9},
	}
	c := Coalesce(g)
	if len(c) != 1 {
		t.Fatalf("got %d rects, want 1", len(c))
	}
	if len(Coalesce(nil)) != 0 {
		t.Error("nil region must coalesce to empty")
	}
}

func TestQuickCoalescePreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a region from random cells of a grid (guaranteed
		// non-overlapping, heavily mergeable).
		var g Region
		for i := 0; i < 10; i++ {
			for j := 0; j < 10; j++ {
				if rng.Intn(2) == 0 {
					g.Add(Rect{MinX: float64(i), MinY: float64(j), MaxX: float64(i + 1), MaxY: float64(j + 1)})
				}
			}
		}
		c := Coalesce(g)
		if len(c) > len(g) {
			return false
		}
		if math.Abs(c.Area()-g.Area()) > 1e-9 {
			return false
		}
		// Point-level equality on a sample.
		for k := 0; k < 200; k++ {
			p := Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			if g.Contains(p) != c.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCoalesce5000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var g Region
	for i := 0; i < 5000; i++ {
		x, y := float64(rng.Intn(100)), float64(rng.Intn(100))
		g.Add(Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Coalesce(append(Region(nil), g...))
	}
}

func TestCoalesceOverlappingStillCovers(t *testing.T) {
	// Overlapping inputs: Coalesce may not reach minimal form but coverage
	// must be preserved.
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3},
		{MinX: 1, MinY: 1, MaxX: 4, MaxY: 4},
		{MinX: 2, MinY: 0, MaxX: 5, MaxY: 3},
	}
	c := Coalesce(append(Region(nil), g...))
	if math.Abs(c.Area()-g.Area()) > 1e-9 {
		t.Fatalf("area changed: %g vs %g", c.Area(), g.Area())
	}
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 500; k++ {
		p := Point{X: rng.Float64() * 6, Y: rng.Float64() * 5}
		if g.Contains(p) != c.Contains(p) {
			t.Fatalf("coverage changed at %v", p)
		}
	}
}

// TestCoalesceInPlaceMatchesCoalesce checks the allocation-free variant is
// bit-identical to Coalesce and reuses the input's backing array.
func TestCoalesceInPlaceMatchesCoalesce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		g := make(Region, 0, n)
		for i := 0; i < n; i++ {
			x := float64(rng.Intn(10))
			y := float64(rng.Intn(10))
			w := float64(rng.Intn(3)) // empties included on purpose
			h := float64(rng.Intn(3))
			g = append(g, NewRect(x, y, x+w, y+h))
		}
		clone := append(Region(nil), g...)
		want := Coalesce(clone)
		got := CoalesceInPlace(g)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: CoalesceInPlace = %v, want %v", trial, got, want)
		}
		if len(g) > 0 && len(got) > 0 && &got[0] != &g[0] {
			t.Fatalf("trial %d: CoalesceInPlace reallocated instead of reusing the input", trial)
		}
	}
}

// TestCoalesceInPlaceAllocationFree pins the in-place variant at zero
// allocations.
func TestCoalesceInPlaceAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	g := make(Region, 0, 64)
	fill := func() {
		g = g[:0]
		for i := 0; i < 16; i++ {
			x := float64(i % 4)
			g = append(g, NewRect(x, float64(i/4), x+1, float64(i/4)+1))
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		fill()
		g = CoalesceInPlace(g)
	}); n != 0 {
		t.Errorf("CoalesceInPlace allocates %v per run, want 0", n)
	}
}
