package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func totalSignedArea(rings []Ring) float64 {
	var sum float64
	for _, r := range rings {
		sum += RingArea(r)
	}
	return sum
}

func TestOutlineSingleRect(t *testing.T) {
	g := Region{{MinX: 1, MinY: 2, MaxX: 4, MaxY: 6}}
	rings := g.Outline()
	if len(rings) != 1 {
		t.Fatalf("got %d rings, want 1", len(rings))
	}
	if len(rings[0]) != 4 {
		t.Fatalf("rectangle outline has %d vertices, want 4: %v", len(rings[0]), rings[0])
	}
	if got, want := RingArea(rings[0]), 12.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("ring area %g, want %g (counter-clockwise outer ring)", got, want)
	}
}

func TestOutlineMergesAdjacent(t *testing.T) {
	// Two abutting rectangles become one hexagon-free rectangle ring.
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2},
		{MinX: 2, MinY: 0, MaxX: 4, MaxY: 2},
	}
	rings := g.Outline()
	if len(rings) != 1 {
		t.Fatalf("got %d rings, want 1 merged", len(rings))
	}
	if len(rings[0]) != 4 {
		t.Errorf("merged outline has %d vertices, want 4 (collinear dropped)", len(rings[0]))
	}
	if got := RingArea(rings[0]); math.Abs(got-8) > 1e-9 {
		t.Errorf("merged area %g, want 8", got)
	}
}

func TestOutlineLShape(t *testing.T) {
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 3, MaxY: 1},
		{MinX: 0, MinY: 1, MaxX: 1, MaxY: 3},
	}
	rings := g.Outline()
	if len(rings) != 1 {
		t.Fatalf("got %d rings, want 1", len(rings))
	}
	if len(rings[0]) != 6 {
		t.Errorf("L-shape outline has %d vertices, want 6: %v", len(rings[0]), rings[0])
	}
	if got := RingArea(rings[0]); math.Abs(got-5) > 1e-9 {
		t.Errorf("L-shape area %g, want 5", got)
	}
}

func TestOutlineDisjointComponents(t *testing.T) {
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 5, MinY: 5, MaxX: 7, MaxY: 6},
	}
	rings := g.Outline()
	if len(rings) != 2 {
		t.Fatalf("got %d rings, want 2", len(rings))
	}
	if got := totalSignedArea(rings); math.Abs(got-3) > 1e-9 {
		t.Errorf("total signed area %g, want 3", got)
	}
}

func TestOutlineHole(t *testing.T) {
	// A square frame: outer ring CCW, hole ring CW (negative area).
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 5, MaxY: 1},
		{MinX: 0, MinY: 4, MaxX: 5, MaxY: 5},
		{MinX: 0, MinY: 1, MaxX: 1, MaxY: 4},
		{MinX: 4, MinY: 1, MaxX: 5, MaxY: 4},
	}
	rings := g.Outline()
	if len(rings) != 2 {
		t.Fatalf("got %d rings, want outer + hole", len(rings))
	}
	var pos, neg float64
	for _, r := range rings {
		a := RingArea(r)
		if a > 0 {
			pos += a
		} else {
			neg += a
		}
	}
	if math.Abs(pos-25) > 1e-9 {
		t.Errorf("outer ring area %g, want 25", pos)
	}
	if math.Abs(neg+9) > 1e-9 {
		t.Errorf("hole ring area %g, want -9", neg)
	}
	// Net signed area equals the region area.
	if got, want := pos+neg, g.Area(); math.Abs(got-want) > 1e-9 {
		t.Errorf("net outline area %g, want %g", got, want)
	}
}

func TestOutlineOverlappingRects(t *testing.T) {
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3},
		{MinX: 2, MinY: 2, MaxX: 5, MaxY: 5},
	}
	rings := g.Outline()
	if len(rings) != 1 {
		t.Fatalf("got %d rings, want 1", len(rings))
	}
	if got, want := RingArea(rings[0]), g.Area(); math.Abs(got-want) > 1e-9 {
		t.Errorf("outline area %g, want %g", got, want)
	}
}

func TestOutlineEmpty(t *testing.T) {
	if got := (Region{}).Outline(); got != nil {
		t.Errorf("empty region outline = %v", got)
	}
	if got := (Region{{MinX: 1, MinY: 1, MaxX: 1, MaxY: 5}}).Outline(); got != nil {
		t.Errorf("degenerate region outline = %v", got)
	}
}

func TestQuickOutlineAreaMatchesRegionArea(t *testing.T) {
	// Property: the net signed area of all rings equals the union area.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		g := make(Region, n)
		for i := range g {
			// Integer-ish coordinates provoke adjacency and pinches.
			x := float64(rng.Intn(12))
			y := float64(rng.Intn(12))
			g[i] = Rect{MinX: x, MinY: y, MaxX: x + float64(1+rng.Intn(5)), MaxY: y + float64(1+rng.Intn(5))}
		}
		got := totalSignedArea(g.Outline())
		want := g.Area()
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickOutlineEdgesAxisParallel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		g := make(Region, n)
		for i := range g {
			x := rng.Float64() * 20
			y := rng.Float64() * 20
			g[i] = Rect{MinX: x, MinY: y, MaxX: x + 1 + rng.Float64()*6, MaxY: y + 1 + rng.Float64()*6}
		}
		for _, ring := range g.Outline() {
			for i := range ring {
				a, b := ring[i], ring[(i+1)%len(ring)]
				if a.X != b.X && a.Y != b.Y {
					return false // diagonal segment
				}
				if a == b {
					return false // degenerate segment
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOutlineCornerPinch(t *testing.T) {
	// Two rectangles touching at exactly one corner: the left-turn
	// preference must produce two simple rings, not one figure-eight.
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2},
	}
	rings := g.Outline()
	if len(rings) != 2 {
		t.Fatalf("corner pinch produced %d rings, want 2: %v", len(rings), rings)
	}
	if got, want := totalSignedArea(rings), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("pinch net area %g, want %g", got, want)
	}
	for _, r := range rings {
		if len(r) != 4 {
			t.Errorf("pinch ring has %d vertices, want 4: %v", len(r), r)
		}
	}
}

func TestOutlineCheckerboard(t *testing.T) {
	// A 2x2 checkerboard: two cells touching only at the center. Stress
	// for the pinch-vertex handling.
	g := Region{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2},
		{MinX: 4, MinY: 0, MaxX: 5, MaxY: 1}, // separate component
	}
	rings := g.Outline()
	if len(rings) != 3 {
		t.Fatalf("got %d rings, want 3", len(rings))
	}
	if got := totalSignedArea(rings); math.Abs(got-3) > 1e-9 {
		t.Errorf("net area %g, want 3", got)
	}
}
