// Package cache is the engine's epoch-versioned snapshot result cache: a
// sharded, memory-bounded LRU keyed by (epoch, timestamp, rho, l, method)
// with a singleflight layer that collapses concurrent identical evaluations
// into one.
//
// The design exploits the predictive model's immutability window: between
// two mutations of the summary structures (Tick/Apply/Load), the answer to
// a snapshot PDR query is a pure function of its key. The engine stamps
// every key with a monotonically increasing epoch that each mutation bumps,
// so invalidation is O(1) — superseded entries simply stop matching and age
// out of the LRU. No mutex is ever taken on the engine's write path.
//
// Concurrency: each shard owns a short-critical-section mutex over its map,
// recency list, and in-flight table; byte/entry accounting and the
// hit/miss/eviction statistics are process-global atomics, so Stats and the
// telemetry mirror never take a shard lock. Concurrent callers of the same
// key collapse: the first computes while the rest block on its flight and
// share the stored result. Entries are deep-immutable — the cache stores
// and returns private copies, so neither the winner's caller nor any reader
// can corrupt a cached region.
package cache

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pdr/internal/geom"
)

// Key identifies one snapshot evaluation. Two keys are equal exactly when
// the engine would produce bit-identical answers for them: same mutation
// epoch, same query timestamp, same density threshold and neighborhood
// edge, same evaluation method.
type Key struct {
	Epoch  uint64
	At     int64
	Rho, L float64
	Method uint8
}

// Entry is the memoized portion of a snapshot result: the answer region and
// the filter/refinement counters, plus the original evaluation cost (what a
// hit avoids). I/O is deliberately absent — a cached hit performs no page
// accesses and charges zero.
type Entry struct {
	Region                         geom.Region
	CPU                            time.Duration
	Accepted, Rejected, Candidates int
	ObjectsRetrieved               int
	// TraceID records the trace (if any) of the evaluation that computed
	// the entry, so cache hits can annotate their span with the source
	// trace — the one that actually did the work. Zero when the computing
	// query was untraced.
	TraceID uint64
}

// Per-entry accounting constants: a Rect is four float64s; the fixed
// overhead approximates the key, list node, map bucket share, and counters.
const (
	rectBytes       = 32
	entryFixedBytes = 160
)

// ApproxBytes is the entry's budget charge — approximate by design (Go
// gives no exact retained-size accounting), but monotone in the dominant
// term, the answer's rectangle count.
func (e *Entry) ApproxBytes() int64 {
	return entryFixedBytes + rectBytes*int64(len(e.Region))
}

// clone returns a deep copy of e. Rects are plain values, so copying the
// slice copies the geometry.
func (e *Entry) clone() *Entry {
	c := *e
	c.Region = append(geom.Region(nil), e.Region...)
	return &c
}

// Outcome classifies how Do resolved a lookup.
type Outcome int

const (
	// Computed: this caller evaluated (a cache miss, or the cache is nil).
	Computed Outcome = iota
	// Hit: the answer was resident in the LRU.
	Hit
	// Shared: another caller was already evaluating the same key; this
	// caller blocked on that flight and shares its result.
	Shared
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// flight is one in-progress evaluation; losers block on done. ent points at
// the cache-private copy, set before done closes, so sharers clone from
// storage the winner's caller can never mutate.
type flight struct {
	done chan struct{}
	ent  *Entry
	err  error
}

// node is one LRU element payload.
type node struct {
	key   Key
	ent   *Entry
	bytes int64
}

// shard is one lock domain of the cache.
type shard struct {
	budget int64 // byte budget for this shard; immutable

	mu sync.Mutex
	// entries maps keys to their recency-list element; guarded by mu.
	entries map[Key]*list.Element
	// lru orders resident entries most-recently-used first; guarded by mu.
	lru *list.List
	// flights holds in-progress evaluations by key; guarded by mu.
	flights map[Key]*flight
	// bytes is the shard's resident accounting; guarded by mu.
	bytes int64
}

// numShards spreads lock contention across concurrent readers. Must be a
// power of two (the shard picker masks the key hash).
const numShards = 16

// Cache is the sharded LRU plus singleflight table. A nil *Cache is valid
// and disabled: Do computes every time and Stats returns zeros, so call
// sites need no guards when caching is off.
type Cache struct {
	shards [numShards]*shard

	// Process-global accounting: atomic, lock-free for readers (see Stats).
	hits, misses, shared, evictions atomic.Int64
	bytes, entries                  atomic.Int64

	// waiting counts callers blocked on another caller's flight right now
	// (test and introspection hook for the singleflight layer).
	waiting atomic.Int64

	// met mirrors the accounting into telemetry; atomic so attachment
	// needs no lock.
	met atomic.Pointer[Metrics]
}

// New builds a cache bounded by budgetBytes of approximate entry
// accounting, split evenly across the shards. A budget <= 0 disables
// caching entirely: New returns nil, and every method of a nil *Cache is a
// cheap pass-through.
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		return nil
	}
	return newShards(budgetBytes, numShards)
}

// newShards builds the cache with the first n shards active — tests use
// n=1 for a deterministic global LRU order. n must divide the shard picker
// space; exported New always passes numShards.
func newShards(budgetBytes int64, n int) *Cache {
	c := &Cache{}
	per := budgetBytes / int64(n)
	if per <= 0 {
		per = 1
	}
	for i := 0; i < n; i++ {
		c.shards[i] = &shard{
			budget:  per,
			entries: make(map[Key]*list.Element),
			lru:     list.New(),
			flights: make(map[Key]*flight),
		}
	}
	// Unused shards (tests only) alias shard 0 so the picker needs no
	// bounds logic.
	for i := n; i < numShards; i++ {
		c.shards[i] = c.shards[0]
	}
	return c
}

// pick routes a key to its shard by an FNV-1a hash over the key's bits.
func (c *Cache) pick(k Key) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(k.Epoch)
	mix(uint64(k.At))
	mix(math.Float64bits(k.Rho))
	mix(math.Float64bits(k.L))
	h ^= uint64(k.Method)
	h *= prime64
	return c.shards[h&(numShards-1)]
}

// Do resolves key k: a resident entry is returned immediately (Hit); an
// entry already being evaluated by another caller is waited for (Shared); a
// cold key runs compute on the calling goroutine, stores the result, and
// wakes any waiters (Computed). The returned entry is always a private copy
// except on the Computed path, where it is compute's own return value.
//
// Errors are never cached: a failed compute is handed to this caller and to
// every waiter of the flight, and the next Do for the key evaluates afresh.
// On a nil cache, Do simply runs compute.
func (c *Cache) Do(k Key, compute func() (*Entry, error)) (*Entry, Outcome, error) {
	if c == nil {
		ent, err := compute()
		return ent, Computed, err
	}
	sh := c.pick(k)
	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		ent := el.Value.(*node).ent.clone()
		sh.mu.Unlock()
		c.hits.Add(1)
		if m := c.met.Load(); m != nil {
			m.hits.Inc()
		}
		return ent, Hit, nil
	}
	if f, ok := sh.flights[k]; ok {
		sh.mu.Unlock()
		c.waiting.Add(1)
		<-f.done
		c.waiting.Add(-1)
		c.shared.Add(1)
		if m := c.met.Load(); m != nil {
			m.shared.Inc()
		}
		if f.err != nil {
			return nil, Shared, f.err
		}
		return f.ent.clone(), Shared, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()

	c.misses.Add(1)
	if m := c.met.Load(); m != nil {
		m.misses.Inc()
	}
	settled := false
	// A panicking compute must still settle the flight, or every waiter
	// would block forever; the panic then propagates to this caller.
	defer func() {
		if !settled {
			f.err = fmt.Errorf("cache: evaluation panicked")
			c.settle(sh, k, f, nil)
		}
	}()
	ent, err := compute()
	settled = true
	if err != nil {
		f.err = err
		c.settle(sh, k, f, nil)
		return nil, Computed, err
	}
	c.settle(sh, k, f, ent.clone())
	return ent, Computed, nil
}

// settle removes the flight, stores the (already cloned) entry when the
// evaluation succeeded and fits the budget, and wakes the waiters.
func (c *Cache) settle(sh *shard, k Key, f *flight, stored *Entry) {
	sh.mu.Lock()
	delete(sh.flights, k)
	if stored != nil {
		f.ent = stored
		sh.storeLocked(k, stored, c)
	}
	sh.mu.Unlock()
	close(f.done)
}

// storeLocked inserts the entry at the front of the recency list and evicts
// from the tail until the shard fits its budget again. An entry that alone
// exceeds the shard budget is not cached (evicting everything else would
// still not make it fit). The caller holds sh.mu.
func (sh *shard) storeLocked(k Key, ent *Entry, c *Cache) {
	b := ent.ApproxBytes()
	if b > sh.budget {
		return
	}
	if el, ok := sh.entries[k]; ok {
		// Defensive: flights are exclusive per key, so a store racing a
		// resident entry should be unreachable; refresh rather than
		// double-account if it ever happens.
		sh.lru.MoveToFront(el)
		return
	}
	el := sh.lru.PushFront(&node{key: k, ent: ent, bytes: b})
	sh.entries[k] = el
	sh.bytes += b
	c.bytes.Add(b)
	c.entries.Add(1)
	for sh.bytes > sh.budget {
		sh.evictOldestLocked(c)
	}
	if m := c.met.Load(); m != nil {
		m.bytes.Set(float64(c.bytes.Load()))
		m.entries.Set(float64(c.entries.Load()))
	}
}

// evictOldestLocked drops the least-recently-used entry. The caller holds
// sh.mu and has ensured the list is non-empty (bytes > budget implies at
// least one resident entry).
func (sh *shard) evictOldestLocked(c *Cache) {
	el := sh.lru.Back()
	if el == nil {
		return
	}
	n := el.Value.(*node)
	sh.lru.Remove(el)
	delete(sh.entries, n.key)
	sh.bytes -= n.bytes
	c.bytes.Add(-n.bytes)
	c.entries.Add(-1)
	c.evictions.Add(1)
	if m := c.met.Load(); m != nil {
		m.evictions.Inc()
	}
}

// Stats is a point-in-time snapshot of the cache accounting.
type Stats struct {
	// Hits served from the LRU; Misses evaluated by the caller; Shared
	// collapsed onto another caller's in-flight evaluation.
	Hits, Misses, Shared int64
	// Evictions counts entries dropped by the byte budget.
	Evictions int64
	// Bytes and Entries describe the resident set (approximate accounting).
	Bytes, Entries int64
	// Waiting is the number of callers blocked on an in-flight evaluation
	// at the instant of the snapshot — transient by nature; useful for
	// debugging singleflight behaviour and for deterministic tests.
	Waiting int64
}

// HitRatio is the fraction of lookups served without an evaluation — LRU
// hits plus singleflight sharers over all lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Shared
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// Stats reads the counters (atomics; never takes a shard lock). A nil cache
// reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Shared:    c.shared.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
		Entries:   c.entries.Load(),
		Waiting:   c.waiting.Load(),
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}

// waiters returns how many callers are currently blocked on another
// caller's flight (test hook for the singleflight layer).
func (c *Cache) waiters() int64 { return c.waiting.Load() }
