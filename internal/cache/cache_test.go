package cache

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"pdr/internal/geom"
	"pdr/internal/telemetry"
)

// entryWithRects builds an entry whose budget charge is deterministic:
// entryFixedBytes + rects*rectBytes.
func entryWithRects(rects int) *Entry {
	e := &Entry{CPU: time.Millisecond}
	for i := 0; i < rects; i++ {
		e.Region = append(e.Region, geom.NewRect(float64(i), 0, float64(i)+1, 1))
	}
	return e
}

func key(epoch uint64, at int64) Key {
	return Key{Epoch: epoch, At: at, Rho: 0.5, L: 60, Method: 0}
}

// mustCompute asserts one Do resolves by evaluation.
func mustCompute(t *testing.T, c *Cache, k Key, ent *Entry) {
	t.Helper()
	got, outcome, err := c.Do(k, func() (*Entry, error) { return ent, nil })
	if err != nil || outcome != Computed || got != ent {
		t.Fatalf("Do(%v) = (%p, %v, %v), want computed %p", k, got, outcome, err, ent)
	}
}

// lookup resolves k with a compute that fails the test if it runs.
func lookup(t *testing.T, c *Cache, k Key) (*Entry, Outcome) {
	t.Helper()
	ent, outcome, err := c.Do(k, func() (*Entry, error) {
		return entryWithRects(1), nil
	})
	if err != nil {
		t.Fatalf("Do(%v): %v", k, err)
	}
	return ent, outcome
}

func TestZeroBudgetDisablesCache(t *testing.T) {
	if c := New(0); c != nil {
		t.Fatalf("New(0) = %v, want nil", c)
	}
	if c := New(-5); c != nil {
		t.Fatalf("New(-5) = %v, want nil", c)
	}
	var c *Cache
	calls := 0
	for i := 0; i < 3; i++ {
		ent, outcome, err := c.Do(key(1, 0), func() (*Entry, error) {
			calls++
			return entryWithRects(1), nil
		})
		if err != nil || outcome != Computed || ent == nil {
			t.Fatalf("nil cache Do = (%v, %v, %v)", ent, outcome, err)
		}
	}
	if calls != 3 {
		t.Errorf("nil cache memoized: %d computes for 3 lookups", calls)
	}
	if got := c.Stats(); got != (Stats{}) {
		t.Errorf("nil cache stats = %+v, want zeros", got)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
	c.SetMetrics(nil) // must not panic
}

func TestHitReturnsEqualRegion(t *testing.T) {
	c := New(1 << 20)
	want := entryWithRects(3)
	want.Accepted, want.Rejected, want.Candidates, want.ObjectsRetrieved = 1, 2, 3, 4
	mustCompute(t, c, key(1, 0), want)
	got, outcome := lookup(t, c, key(1, 0))
	if outcome != Hit {
		t.Fatalf("second lookup outcome = %v, want hit", outcome)
	}
	if len(got.Region) != len(want.Region) {
		t.Fatalf("hit region has %d rects, want %d", len(got.Region), len(want.Region))
	}
	for i := range got.Region {
		if got.Region[i] != want.Region[i] {
			t.Errorf("rect %d differs: %v vs %v", i, got.Region[i], want.Region[i])
		}
	}
	if got.Accepted != 1 || got.Rejected != 2 || got.Candidates != 3 || got.ObjectsRetrieved != 4 {
		t.Errorf("hit counters = %+v, want the stored ones", got)
	}
	if got.CPU != want.CPU {
		t.Errorf("hit CPU = %v, want the original evaluation cost %v", got.CPU, want.CPU)
	}
}

// TestDeepImmutability: mutating any returned region must not corrupt the
// resident entry — the cache stores and serves private copies.
func TestDeepImmutability(t *testing.T) {
	c := New(1 << 20)
	orig := entryWithRects(2)
	mustCompute(t, c, key(1, 0), orig)
	// Corrupt the winner's own entry after the fact.
	orig.Region[0] = geom.NewRect(-99, -99, -98, -98)

	first, _ := lookup(t, c, key(1, 0))
	first.Region[1] = geom.NewRect(-77, -77, -76, -76)

	second, outcome := lookup(t, c, key(1, 0))
	if outcome != Hit {
		t.Fatalf("outcome = %v, want hit", outcome)
	}
	clean := entryWithRects(2)
	for i := range second.Region {
		if second.Region[i] != clean.Region[i] {
			t.Errorf("resident entry corrupted at rect %d: %v", i, second.Region[i])
		}
	}
}

// TestLRUEvictionOrder pins the eviction policy on a single shard: the
// least-recently-used key goes first, so entries of a superseded epoch age
// out as soon as the budget needs the room.
func TestLRUEvictionOrder(t *testing.T) {
	per := entryWithRects(1).ApproxBytes()
	c := newShards(2*per, 1) // room for exactly two entries
	old1, old2 := key(1, 0), key(1, 1)
	mustCompute(t, c, old1, entryWithRects(1))
	mustCompute(t, c, old2, entryWithRects(1))

	// Touch old1 so old2 is the LRU tail, then insert a new-epoch entry.
	if _, outcome := lookup(t, c, old1); outcome != Hit {
		t.Fatal("old1 should be resident")
	}
	mustCompute(t, c, key(2, 0), entryWithRects(1))

	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after third insert = %+v, want 1 eviction, 2 entries", st)
	}
	if _, outcome := lookup(t, c, old2); outcome != Computed {
		t.Errorf("old2 (the LRU tail) should have been evicted")
	}
	// old2's re-insert (epoch 1 key) just evicted the next tail: old1.
	if _, outcome := lookup(t, c, key(2, 0)); outcome != Hit {
		t.Errorf("the newest entry must survive the evictions")
	}
}

func TestBytesAccounting(t *testing.T) {
	per := entryWithRects(4).ApproxBytes()
	c := newShards(3*per, 1)
	for i := int64(0); i < 3; i++ {
		mustCompute(t, c, key(1, i), entryWithRects(4))
	}
	st := c.Stats()
	if st.Bytes != 3*per || st.Entries != 3 {
		t.Fatalf("resident = %d bytes / %d entries, want %d / 3", st.Bytes, st.Entries, 3*per)
	}
	// A fourth entry displaces exactly one.
	mustCompute(t, c, key(1, 99), entryWithRects(4))
	st = c.Stats()
	if st.Bytes != 3*per || st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("after displacement: %+v", st)
	}
}

func TestOversizeEntryNotCached(t *testing.T) {
	c := newShards(entryFixedBytes+2*rectBytes, 1)
	huge := entryWithRects(1000)
	mustCompute(t, c, key(1, 0), huge)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize entry was cached: %+v", st)
	}
	if _, outcome := lookup(t, c, key(1, 0)); outcome != Computed {
		t.Error("oversize entry must re-evaluate")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	_, outcome, err := c.Do(key(1, 0), func() (*Entry, error) { return nil, boom })
	if !errors.Is(err, boom) || outcome != Computed {
		t.Fatalf("Do = (%v, %v), want the compute error", outcome, err)
	}
	if _, outcome := lookup(t, c, key(1, 0)); outcome != Computed {
		t.Error("a failed evaluation must not leave a resident entry")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 misses", st)
	}
}

// TestSingleflightCollapses pins the collapse deterministically: the winner
// blocks inside compute until the losers are provably waiting on its
// flight, so exactly one evaluation serves every concurrent caller.
func TestSingleflightCollapses(t *testing.T) {
	c := New(1 << 20)
	const losers = 4
	started := make(chan struct{})
	release := make(chan struct{})
	want := entryWithRects(2)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, outcome, err := c.Do(key(1, 0), func() (*Entry, error) {
			close(started)
			<-release
			return want, nil
		})
		if err != nil || outcome != Computed {
			t.Errorf("winner: (%v, %v)", outcome, err)
		}
	}()
	<-started

	outcomes := make(chan Outcome, losers)
	for i := 0; i < losers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ent, outcome, err := c.Do(key(1, 0), func() (*Entry, error) {
				t.Error("loser evaluated; singleflight failed to collapse")
				return entryWithRects(2), nil
			})
			if err != nil || len(ent.Region) != len(want.Region) {
				t.Errorf("loser: (%v, %v)", ent, err)
			}
			outcomes <- outcome
		}()
	}
	// Release only once every loser is parked on the winner's flight.
	for c.waiters() < losers {
		time.Sleep(50 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	close(outcomes)

	sharedN := 0
	for o := range outcomes {
		if o == Shared {
			sharedN++
		}
	}
	if sharedN != losers {
		t.Errorf("%d of %d losers shared the flight", sharedN, losers)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != int64(losers) {
		t.Errorf("stats = %+v, want 1 miss and %d shared", st, losers)
	}
}

// TestSingleflightSharesErrors: waiters of a failed flight receive the
// winner's error instead of silently recomputing under the flight.
func TestSingleflightSharesErrors(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(key(1, 0), func() (*Entry, error) {
			close(started)
			<-release
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("winner error = %v", err)
		}
	}()
	<-started

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, outcome, err := c.Do(key(1, 0), func() (*Entry, error) {
			t.Error("loser evaluated under an in-flight key")
			return nil, nil
		})
		if !errors.Is(err, boom) || outcome != Shared {
			t.Errorf("loser = (%v, %v), want the shared error", outcome, err)
		}
	}()
	for c.waiters() < 1 {
		time.Sleep(50 * time.Microsecond)
	}
	close(release)
	wg.Wait()
}

// TestConcurrentMixedKeys is the race-detector workload: many goroutines
// hammer a small key space through hits, misses, shared flights, and
// evictions at once.
func TestConcurrentMixedKeys(t *testing.T) {
	per := entryWithRects(2).ApproxBytes()
	c := New(numShards * 2 * per) // tight: evictions guaranteed
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(uint64(i%5), int64((g+i)%7))
				ent, _, err := c.Do(k, func() (*Entry, error) {
					return entryWithRects(2), nil
				})
				if err != nil || len(ent.Region) != 2 {
					t.Errorf("Do(%v): (%v, %v)", k, ent, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Shared != 8*200 {
		t.Errorf("lookup accounting leaks: %+v", st)
	}
	if st.Bytes > numShards*2*per {
		t.Errorf("resident bytes %d exceed the budget", st.Bytes)
	}
}

func TestMetricsMirror(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(1 << 20)
	c.SetMetrics(NewMetrics(reg))
	mustCompute(t, c, key(1, 0), entryWithRects(1))
	if _, outcome := lookup(t, c, key(1, 0)); outcome != Hit {
		t.Fatal("expected a hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %g, want 0.5", r)
	}
}

// TestHitRatioFreshProcess pins the zero-denominator guard: before the
// first lookup the ratio must be 0, not NaN — NaN in the pdr_cache_hit_ratio
// gauge breaks a Prometheus scrape of a fresh process.
func TestHitRatioFreshProcess(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 || math.IsNaN(r) {
		t.Fatalf("fresh HitRatio = %v, want 0", r)
	}
	reg := telemetry.NewRegistry()
	NewMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if strings.Contains(body, "NaN") {
		t.Fatalf("fresh exposition contains NaN:\n%s", body)
	}
	if !strings.Contains(body, "pdr_cache_hit_ratio 0") {
		t.Fatalf("fresh exposition missing zero hit ratio:\n%s", body)
	}
}
