package cache

import "pdr/internal/telemetry"

// Metrics mirrors the cache accounting into a telemetry registry: the
// counters become atomic instruments a concurrent /metrics scrape can read
// without touching a shard lock, and the hit ratio is derived from them at
// scrape time.
type Metrics struct {
	hits, misses, evictions, shared *telemetry.Counter
	bytes, entries                  *telemetry.Gauge
}

// NewMetrics registers the cache instruments on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		hits: reg.Counter("pdr_cache_hits_total",
			"Snapshot lookups served from the result cache."),
		misses: reg.Counter("pdr_cache_misses_total",
			"Snapshot lookups that evaluated (cold key or superseded epoch)."),
		evictions: reg.Counter("pdr_cache_evictions_total",
			"Cached snapshot results dropped by the byte budget (LRU tail)."),
		shared: reg.Counter("pdr_cache_singleflight_shared_total",
			"Lookups collapsed onto another caller's in-flight evaluation."),
		bytes: reg.Gauge("pdr_cache_bytes",
			"Approximate resident bytes of the snapshot result cache."),
		entries: reg.Gauge("pdr_cache_entries",
			"Resident entries of the snapshot result cache."),
	}
	reg.GaugeFunc("pdr_cache_hit_ratio",
		"Fraction of lookups served without an evaluation (hits plus shared flights).",
		func() float64 {
			return Stats{
				Hits:   m.hits.Value(),
				Misses: m.misses.Value(),
				Shared: m.shared.Value(),
			}.HitRatio()
		})
	return m
}

// SetMetrics attaches telemetry instruments; every accounting change from
// here on is mirrored into them. The resident gauges are seeded with the
// current state so late attachment stays accurate. Nil-safe on a disabled
// cache.
func (c *Cache) SetMetrics(m *Metrics) {
	if c == nil {
		return
	}
	c.met.Store(m)
	if m != nil {
		m.bytes.Set(float64(c.bytes.Load()))
		m.entries.Set(float64(c.entries.Load()))
	}
}
