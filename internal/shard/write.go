package shard

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"pdr/internal/motion"
	"pdr/internal/stopwatch"
)

// owners records where one live object is registered: its primary shard
// (which holds the object in every structure) plus a bitmask of replica
// shards (index-only registrations for boundary straddlers; never includes
// the primary bit).
type owners struct {
	primary  int
	replicas uint64
}

// mask returns the full lock set: primary plus replicas.
func (o owners) mask() uint64 { return o.replicas | 1<<uint(o.primary) }

const regBuckets = 64

// registry is the engine-global object directory: it routes deletes to the
// shards that hold the object and detects duplicate inserts before they
// could register an object under two primaries (which would double-count it
// in every summary). Buckets shard the map so concurrent writers to
// different objects rarely contend.
type registry struct {
	count      atomic.Int64
	straddlers atomic.Int64
	buckets    [regBuckets]regBucket
}

type regBucket struct {
	mu sync.Mutex // pdr:lockrank shard-registry 40
	m  map[motion.ObjectID]owners
}

func (r *registry) bucket(id motion.ObjectID) *regBucket {
	return &r.buckets[uint64(id)%regBuckets]
}

// insert registers a live object; errors if the ID is already live.
func (r *registry) insert(id motion.ObjectID, ow owners) error {
	b := r.bucket(id)
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.m[id]; ok {
		return fmt.Errorf("shard: insert of live object %d (delete the stale movement first)", id)
	}
	if b.m == nil {
		b.m = make(map[motion.ObjectID]owners)
	}
	b.m[id] = ow
	r.count.Add(1)
	if ow.replicas != 0 {
		r.straddlers.Add(1)
	}
	return nil
}

// lookup returns the registration for id.
func (r *registry) lookup(id motion.ObjectID) (owners, bool) {
	b := r.bucket(id)
	b.mu.Lock()
	defer b.mu.Unlock()
	ow, ok := b.m[id]
	return ow, ok
}

// remove drops the registration for id (no-op if absent).
func (r *registry) remove(id motion.ObjectID) {
	b := r.bucket(id)
	b.mu.Lock()
	defer b.mu.Unlock()
	ow, ok := b.m[id]
	if !ok {
		return
	}
	delete(b.m, id)
	r.count.Add(-1)
	if ow.replicas != 0 {
		r.straddlers.Add(-1)
	}
}

// lockAllWrite acquires every shard's write lock in ascending order.
func (e *Engine) lockAllWrite() {
	for i := 0; i < e.n; i++ {
		e.lockShardWrite(i)
	}
}

func (e *Engine) unlockAllWrite() {
	for i := e.n - 1; i >= 0; i-- {
		e.smu[i].Unlock()
	}
}

// lockMaskWrite acquires the write locks in mask in ascending shard order —
// the fixed order is what makes concurrent multi-shard writers deadlock-free.
func (e *Engine) lockMaskWrite(mask uint64) {
	for i := 0; i < e.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			e.lockShardWrite(i)
		}
	}
}

func (e *Engine) unlockMaskWrite(mask uint64) {
	for i := e.n - 1; i >= 0; i-- {
		if mask&(1<<uint(i)) != 0 {
			e.smu[i].Unlock()
		}
	}
}

func (e *Engine) lockShardWrite(i int) {
	if m := e.smet; m != nil {
		sw := stopwatch.Start()
		e.smu[i].Lock()
		m.lockWait[i].Observe(sw.Elapsed().Seconds())
		return
	}
	e.smu[i].Lock()
}

// noteRegistered maintains the per-shard replica counters for one insert.
func (e *Engine) noteRegistered(replicas uint64) {
	for m := replicas; m != 0; m &= m - 1 {
		e.replicaCount[bits.TrailingZeros64(m)].Add(1)
	}
}

// noteUnregistered reverses noteRegistered for one delete.
func (e *Engine) noteUnregistered(replicas uint64) {
	for m := replicas; m != 0; m &= m - 1 {
		e.replicaCount[bits.TrailingZeros64(m)].Add(-1)
	}
}

// primeLocked aligns every shard's histogram window at base before the first
// data arrives. dh.FilterMerged requires equal window phases, and an
// unsharded histogram fixes its phase lazily at the first insert's reference
// time — so the engine replays that decision onto all shards at once. The
// caller holds every shard write lock.
func (e *Engine) primeLocked(base motion.Tick) {
	if e.histPrimed.Load() {
		return
	}
	for _, s := range e.shards {
		s.PrimeHistogram(base)
	}
	e.histPrimed.Store(true)
}

// Load bulk-inserts the initial object states, partitioned across shards by
// the router. Mirrors core.Server.Load, including the lazy histogram-phase
// choice (states[0].Ref).
func (e *Engine) Load(states []motion.State) error {
	e.lockAllWrite()
	defer e.unlockAllWrite()
	e.epoch.Add(1)
	if e.smet != nil {
		e.smet.writeFan.Observe(float64(e.n))
	}
	if len(states) == 0 {
		return nil
	}
	e.primeLocked(states[0].Ref)
	now := motion.Tick(e.now.Load())
	own := make([][]motion.State, e.n)
	reps := make([][]motion.State, e.n)
	for _, st := range states {
		primary, replicas := e.router.OwnersOf(st, now)
		if err := e.reg.insert(st.ID, owners{primary: primary, replicas: replicas}); err != nil {
			return fmt.Errorf("shard: duplicate object %d in bulk load", st.ID)
		}
		e.noteRegistered(replicas)
		own[primary] = append(own[primary], st)
		for m := replicas; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			reps[i] = append(reps[i], st)
		}
	}
	if e.surf != nil {
		// The global surface sees the full stream in arrival order — the
		// bit-identity requirement for float coefficient sums.
		e.surfMu.Lock()
		for _, st := range states {
			e.surf.Insert(st)
		}
		e.surfMu.Unlock()
	}
	errs := make([]error, e.n)
	e.par.ForEach(e.n, func(i int) {
		errs[i] = e.shards[i].LoadShard(own[i], reps[i])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// op is one routed update for a single shard.
type op struct {
	u       motion.Update
	replica bool
}

// planUpdate routes one update onto the per-shard op lists, maintaining the
// registry. Must run in stream order (registry mutations are sequential);
// the resulting per-shard lists then apply in parallel because each shard's
// list preserves the stream's relative order for the objects it holds.
func (e *Engine) planUpdate(u motion.Update, now motion.Tick, plan [][]op) error {
	switch u.Kind {
	case motion.Insert:
		primary, replicas := e.router.OwnersOf(u.State, now)
		if err := e.reg.insert(u.State.ID, owners{primary: primary, replicas: replicas}); err != nil {
			return err
		}
		e.noteRegistered(replicas)
		plan[primary] = append(plan[primary], op{u: u})
		for m := replicas; m != 0; m &= m - 1 {
			plan[bits.TrailingZeros64(m)] = append(plan[bits.TrailingZeros64(m)], op{u: u, replica: true})
		}
		return nil
	case motion.Delete:
		ow, ok := e.reg.lookup(u.State.ID)
		if !ok {
			return fmt.Errorf("shard: delete of unknown object %d", u.State.ID)
		}
		e.reg.remove(u.State.ID)
		e.noteUnregistered(ow.replicas)
		plan[ow.primary] = append(plan[ow.primary], op{u: u})
		for m := ow.replicas; m != 0; m &= m - 1 {
			plan[bits.TrailingZeros64(m)] = append(plan[bits.TrailingZeros64(m)], op{u: u, replica: true})
		}
		return nil
	default:
		return fmt.Errorf("shard: unknown update kind %d", u.Kind)
	}
}

// Tick advances engine time to now and applies the tick's update stream. A
// tick touches every shard (all clocks and histogram windows advance in
// lockstep), so it write-locks the whole engine; the update stream is then
// routed and the per-shard lists apply in parallel.
//
// Error semantics mirror core.Server.Tick: an invalid update stops
// processing and the tick is partially applied (updates on other shards from
// the valid prefix still land). The epoch is bumped regardless, so cached
// answers never survive a partial tick.
func (e *Engine) Tick(now motion.Tick, updates []motion.Update) error {
	e.lockAllWrite()
	defer e.unlockAllWrite()
	e.epoch.Add(1)
	if e.smet != nil {
		e.smet.writeFan.Observe(float64(e.n))
	}
	if cur := motion.Tick(e.now.Load()); now < cur {
		return fmt.Errorf("shard: time moved backwards: %d < %d", now, cur)
	}
	e.now.Store(int64(now))
	e.histPrimed.Store(true) // every histogram window advances to now below
	plan := make([][]op, e.n)
	var planErr error
	applied := updates
	for idx, u := range updates {
		if err := e.planUpdate(u, now, plan); err != nil {
			planErr = err
			applied = updates[:idx]
			break
		}
	}
	if e.surf != nil {
		e.surfMu.Lock()
		e.surf.Advance(now)
		for _, u := range applied {
			e.surf.Apply(u)
		}
		e.surfMu.Unlock()
	}
	errs := make([]error, e.n)
	e.par.ForEach(e.n, func(i int) {
		if err := e.shards[i].Tick(now, nil); err != nil {
			errs[i] = err
			return
		}
		for _, o := range plan[i] {
			var err error
			if o.replica {
				err = e.shards[i].ApplyReplica(o.u)
			} else {
				err = e.shards[i].Apply(o.u)
			}
			if err != nil {
				errs[i] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return planErr
}

// Apply processes a single update record, write-locking only the shards that
// hold the object — the sharded engine's write-scaling lever: updates to
// objects in different territories run concurrently instead of serializing
// on one engine lock.
func (e *Engine) Apply(u motion.Update) error {
	switch u.Kind {
	case motion.Insert:
		return e.applyInsert(u)
	case motion.Delete:
		return e.applyDelete(u)
	default:
		return fmt.Errorf("shard: unknown update kind %d", u.Kind)
	}
}

func (e *Engine) applyInsert(u motion.Update) error {
	if !e.histPrimed.Load() {
		// First-ever data: fix every histogram's window phase at this
		// insert's reference time, exactly like an unsharded histogram
		// would. Needs all locks; re-checked under them.
		e.lockAllWrite()
		e.primeLocked(u.State.Ref)
		e.unlockAllWrite()
	}
	primary, replicas := e.router.OwnersOf(u.State, motion.Tick(e.now.Load()))
	ow := owners{primary: primary, replicas: replicas}
	mask := ow.mask()
	e.lockMaskWrite(mask)
	defer e.unlockMaskWrite(mask)
	e.epoch.Add(1)
	if e.smet != nil {
		e.smet.writeFan.Observe(float64(bits.OnesCount64(mask)))
	}
	if err := e.reg.insert(u.State.ID, ow); err != nil {
		return err
	}
	e.noteRegistered(replicas)
	if err := e.shards[primary].Apply(u); err != nil {
		// The primary shard vetoed the insert (it cannot be a duplicate —
		// the registry already screened that — but keep the registry
		// consistent on any failure).
		e.reg.remove(u.State.ID)
		e.noteUnregistered(replicas)
		return err
	}
	for m := replicas; m != 0; m &= m - 1 {
		if err := e.shards[bits.TrailingZeros64(m)].ApplyReplica(u); err != nil {
			return err
		}
	}
	if e.surf != nil {
		e.surfMu.Lock()
		e.surf.Apply(u)
		e.surfMu.Unlock()
	}
	return nil
}

func (e *Engine) applyDelete(u motion.Update) error {
	// The lock set comes from the registry, and the registration can change
	// (or vanish) between the unlocked lookup and the lock acquisition, so
	// verify under the locks and retry on a race.
	for {
		ow, ok := e.reg.lookup(u.State.ID)
		if !ok {
			return fmt.Errorf("shard: delete of unknown object %d", u.State.ID)
		}
		mask := ow.mask()
		e.lockMaskWrite(mask)
		if cur, ok := e.reg.lookup(u.State.ID); !ok || cur != ow {
			e.unlockMaskWrite(mask)
			continue
		}
		err := e.finishDeleteLocked(u, ow)
		e.unlockMaskWrite(mask)
		return err
	}
}

// finishDeleteLocked completes a delete whose owner set is locked and
// verified. The primary validates the delete (state match, archival) before
// the registry forgets the object, so a mismatched delete leaves everything
// intact.
func (e *Engine) finishDeleteLocked(u motion.Update, ow owners) error {
	e.epoch.Add(1)
	if e.smet != nil {
		e.smet.writeFan.Observe(float64(bits.OnesCount64(ow.mask())))
	}
	if err := e.shards[ow.primary].Apply(u); err != nil {
		return err
	}
	for m := ow.replicas; m != 0; m &= m - 1 {
		if err := e.shards[bits.TrailingZeros64(m)].ApplyReplica(u); err != nil {
			return err
		}
	}
	e.reg.remove(u.State.ID)
	e.noteUnregistered(ow.replicas)
	if e.surf != nil {
		e.surfMu.Lock()
		e.surf.Delete(u.State, u.At)
		e.surfMu.Unlock()
	}
	return nil
}
