package shard

import (
	"fmt"
	"math"
	"sort"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/zcurve"
)

// gridBits fixes the partition grid at 2^gridBits cells per axis (64 x 64 =
// 4096 cells), fine enough that contiguous Morton ranges balance well for
// any shard count up to MaxShards while keeping the per-query shard test a
// couple of BIGMIN walks.
const gridBits = 6

// MaxShards bounds the shard count so owner sets fit a uint64 bitmask.
const MaxShards = 64

// Router maps the monitored plane onto N shards: the area is cut into a
// 2^gridBits x 2^gridBits grid, cells are linearized by the Z-order curve
// (internal/zcurve), and each shard owns one contiguous range of Morton
// codes. Contiguity on the curve keeps each shard's territory spatially
// clustered, so a query window usually touches few shards.
type Router struct {
	area         geom.Rect
	n            int
	cells        uint32 // per-axis cell count (2^gridBits)
	cellW, cellH float64
	// starts[i] is the first Morton code shard i owns; shard i's range is
	// [starts[i], starts[i+1]). The grid is a full power-of-two square, so
	// every code in [0, cells^2) addresses a real cell.
	starts []uint64
}

// NewRouter partitions area across n shards (1 <= n <= MaxShards).
func NewRouter(area geom.Rect, n int) (*Router, error) {
	if area.IsEmpty() {
		return nil, fmt.Errorf("shard: empty area")
	}
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d outside [1, %d]", n, MaxShards)
	}
	cells := uint32(1) << gridBits
	total := uint64(cells) * uint64(cells)
	r := &Router{
		area:  area,
		n:     n,
		cells: cells,
		cellW: area.Width() / float64(cells),
		cellH: area.Height() / float64(cells),
	}
	r.starts = make([]uint64, n+1)
	for i := 0; i <= n; i++ {
		r.starts[i] = uint64(i) * total / uint64(n)
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// cellOf returns the grid cell holding p, clamped to the grid so every
// point — even one outside the area — routes deterministically.
func (r *Router) cellOf(p geom.Point) (uint32, uint32) {
	cx := int((p.X - r.area.MinX) / r.cellW)
	cy := int((p.Y - r.area.MinY) / r.cellH)
	return clampCell(cx, r.cells), clampCell(cy, r.cells)
}

func clampCell(c int, cells uint32) uint32 {
	if c < 0 {
		return 0
	}
	if c >= int(cells) {
		return cells - 1
	}
	return uint32(c)
}

// shardOfCode returns the shard owning the Morton code.
func (r *Router) shardOfCode(code uint64) int {
	// The first start beyond code ends the owning range.
	return sort.Search(r.n, func(i int) bool { return r.starts[i+1] > code })
}

// Owner returns the shard that owns point p (primary ownership is by the
// object's reported position).
func (r *Router) Owner(p geom.Point) int {
	cx, cy := r.cellOf(p)
	return r.shardOfCode(zcurve.Interleave(cx, cy))
}

// Intersecting returns the bitmask of shards whose territory intersects w.
// The cell range is computed conservatively (closed bounds, clamped), so the
// mask can include a shard that only touches w's boundary — never exclude
// one that overlaps it, which is what scatter correctness needs.
func (r *Router) Intersecting(w geom.Rect) uint64 {
	return r.intersectingBox(w.MinX, w.MinY, w.MaxX, w.MaxY)
}

// intersectingBox is Intersecting over raw closed coordinates, accepting
// degenerate (zero-extent) boxes such as a stationary object's coverage.
func (r *Router) intersectingBox(minX, minY, maxX, maxY float64) uint64 {
	if minX > r.area.MaxX || maxX < r.area.MinX || minY > r.area.MaxY || maxY < r.area.MinY {
		return 0
	}
	x1 := clampCell(int(math.Floor((minX-r.area.MinX)/r.cellW)), r.cells)
	y1 := clampCell(int(math.Floor((minY-r.area.MinY)/r.cellH)), r.cells)
	x2 := clampCell(int(math.Floor((maxX-r.area.MinX)/r.cellW)), r.cells)
	y2 := clampCell(int(math.Floor((maxY-r.area.MinY)/r.cellH)), r.cells)
	var mask uint64
	for i := 0; i < r.n; i++ {
		lo, hi := r.starts[i], r.starts[i+1]
		// Does [lo, hi) contain a code inside the window? Either the range's
		// first code is in it, or the smallest in-window code above lo
		// (BIGMIN) still precedes hi.
		if zcurve.InWindow(lo, x1, y1, x2, y2) {
			mask |= 1 << uint(i)
			continue
		}
		if b, ok := zcurve.BigMin(lo, x1, y1, x2, y2); ok && b < hi {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// OwnersOf computes an object's shard registration at engine time now: the
// primary owner (by reported position) and the replica mask — every other
// shard whose territory the object's predicted in-area trajectory can reach
// at any queryable timestamp (qt >= now, extrapolating backward when the
// state's reference time lies ahead of the clock). Replicas make the scatter
// exact for boundary-straddling objects; the merge dedups them by object ID.
func (r *Router) OwnersOf(st motion.State, now motion.Tick) (primary int, replicas uint64) {
	primary = r.Owner(st.Pos)
	s0 := 0.0
	if d := float64(now) - float64(st.Ref); d < 0 {
		s0 = d // queries can predate Ref until the clock catches up
	}
	minX, minY, maxX, maxY, ok := coverage(r.area, st, s0)
	if !ok {
		return primary, 0
	}
	// The index retrieves by grown query windows and positions are exact, so
	// the trajectory bbox itself bounds every position the object can occupy
	// in-area — no epsilon growth needed.
	replicas = r.intersectingBox(minX, minY, maxX, maxY) &^ (1 << uint(primary))
	return primary, replicas
}

// coverage returns the closed bounding box of the object's predicted
// positions within the area over its queryable lifetime: the ray
// p(s) = Pos + s*Vel, s >= s0, clipped to the (closed) area. ok is false when
// the ray never enters the area — the object then exists nowhere under the
// population contract and needs no replicas.
func coverage(area geom.Rect, st motion.State, s0 float64) (minX, minY, maxX, maxY float64, ok bool) {
	lo, hi := s0, math.Inf(1)
	clip := func(pos, vel, min, max float64) bool {
		if vel == 0 {
			return pos >= min && pos <= max
		}
		s1, s2 := (min-pos)/vel, (max-pos)/vel
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		if s1 > lo {
			lo = s1
		}
		if s2 < hi {
			hi = s2
		}
		return true
	}
	if !clip(st.Pos.X, st.Vel.X, area.MinX, area.MaxX) ||
		!clip(st.Pos.Y, st.Vel.Y, area.MinY, area.MaxY) || hi < lo {
		return 0, 0, 0, 0, false
	}
	if math.IsInf(hi, 1) {
		hi = lo // both velocity components zero: the coverage is one point
	}
	x1, y1 := st.Pos.X+lo*st.Vel.X, st.Pos.Y+lo*st.Vel.Y
	x2, y2 := st.Pos.X+hi*st.Vel.X, st.Pos.Y+hi*st.Vel.Y
	return math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2), true
}
