package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pdr/internal/core"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// engineAPI is the surface shared by core.Server and Engine that the
// equivalence harness replays streams and queries through.
type engineAPI interface {
	Load([]motion.State) error
	Tick(motion.Tick, []motion.Update) error
	Apply(motion.Update) error
	Snapshot(core.Query, core.Method) (*core.Result, error)
	Interval(core.Query, motion.Tick, core.Method) (*core.Result, error)
	PastSnapshot(core.Query) (*core.Result, error)
	Now() motion.Tick
	NumObjects() int
}

var (
	_ engineAPI = (*core.Server)(nil)
	_ engineAPI = (*Engine)(nil)
)

func testConfig(workers int) core.Config {
	return core.Config{
		Area:        geom.NewRect(0, 0, 1000, 1000),
		U:           60,
		W:           30,
		HistM:       20, // cell edge 50; FR accepts l >= 100
		PAGrid:      4,
		PADegree:    3,
		PAMD:        64,
		L:           100,
		IOCharge:    time.Millisecond,
		KeepHistory: true,
		Workers:     workers,
	}
}

// stream is a recorded update workload replayable onto any engine.
type stream struct {
	load  []motion.State
	ticks []tickBatch
}

type tickBatch struct {
	now     motion.Tick
	updates []motion.Update
	// applies land through Apply after the tick (the between-ticks path).
	applies []motion.Update
}

// makeStream builds a deterministic workload of 300 loaded objects plus ten
// ticks of movement updates, fresh inserts, permanent deletes, and
// between-tick Apply traffic. Velocities up to 8 units/tick over a 90-tick
// horizon give trajectories spanning most of the plane, so many objects
// straddle shard boundaries; a few are handcrafted to sit exactly on the
// center partition lines.
func makeStream() *stream {
	rng := rand.New(rand.NewSource(42))
	s := &stream{}
	live := make(map[motion.ObjectID]motion.State)
	next := motion.ObjectID(1)
	randState := func(ref motion.Tick) motion.State {
		st := motion.State{
			ID:  next,
			Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Vel: geom.Vec{X: (rng.Float64() - 0.5) * 16, Y: (rng.Float64() - 0.5) * 16},
			Ref: ref,
		}
		next++
		return st
	}
	for i := 0; i < 300; i++ {
		st := randState(0)
		s.load = append(s.load, st)
		live[st.ID] = st
	}
	// Boundary straddlers: on the center lines, crossing them, and parked
	// exactly at the area corner.
	for _, st := range []motion.State{
		{ID: next, Pos: geom.Point{X: 500, Y: 500}, Vel: geom.Vec{X: 3, Y: -3}, Ref: 0},
		{ID: next + 1, Pos: geom.Point{X: 499.999, Y: 250}, Vel: geom.Vec{X: 0.001, Y: 0}, Ref: 0},
		{ID: next + 2, Pos: geom.Point{X: 250, Y: 500}, Vel: geom.Vec{X: 0, Y: 0}, Ref: 0},
		{ID: next + 3, Pos: geom.Point{X: 1000, Y: 1000}, Vel: geom.Vec{X: -5, Y: -5}, Ref: 0},
		{ID: next + 4, Pos: geom.Point{X: 0, Y: 999.5}, Vel: geom.Vec{X: 8, Y: 0}, Ref: 0},
	} {
		s.load = append(s.load, st)
		live[st.ID] = st
		next = st.ID + 1
	}
	liveIDs := func() []motion.ObjectID {
		ids := make([]motion.ObjectID, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		// map order is random; sort for determinism
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		return ids
	}
	for t := motion.Tick(1); t <= 10; t++ {
		b := tickBatch{now: t}
		ids := liveIDs()
		// 15 movement updates: delete the stale movement, insert the new.
		for i := 0; i < 15; i++ {
			id := ids[rng.Intn(len(ids))]
			cur, ok := live[id]
			if !ok {
				continue
			}
			b.updates = append(b.updates, motion.NewDelete(cur, t))
			st := randState(t)
			st.ID = id
			b.updates = append(b.updates, motion.NewInsert(st))
			live[id] = st
		}
		// 5 fresh inserts, 3 permanent deletes.
		for i := 0; i < 5; i++ {
			st := randState(t)
			b.updates = append(b.updates, motion.NewInsert(st))
			live[st.ID] = st
		}
		ids = liveIDs()
		for i := 0; i < 3; i++ {
			id := ids[rng.Intn(len(ids))]
			cur, ok := live[id]
			if !ok {
				continue
			}
			b.updates = append(b.updates, motion.NewDelete(cur, t))
			delete(live, id)
		}
		// Between-tick Apply traffic: 4 single-record updates.
		for i := 0; i < 2; i++ {
			st := randState(t)
			b.applies = append(b.applies, motion.NewInsert(st))
			live[st.ID] = st
		}
		ids = liveIDs()
		for i := 0; i < 2; i++ {
			id := ids[rng.Intn(len(ids))]
			cur, ok := live[id]
			if !ok {
				continue
			}
			b.applies = append(b.applies, motion.NewDelete(cur, t))
			delete(live, id)
		}
		s.ticks = append(s.ticks, b)
	}
	return s
}

func (s *stream) replay(t *testing.T, e engineAPI) {
	t.Helper()
	if err := e.Load(s.load); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, b := range s.ticks {
		if err := e.Tick(b.now, b.updates); err != nil {
			t.Fatalf("Tick(%d): %v", b.now, err)
		}
		for _, u := range b.applies {
			if err := e.Apply(u); err != nil {
				t.Fatalf("Apply(%v %d): %v", u.Kind, u.State.ID, err)
			}
		}
	}
}

// sameAnswer asserts the sharded result is bit-identical to the reference in
// every stream-determined field (timings and I/O charges are measurements
// and legitimately differ).
func sameAnswer(t *testing.T, label string, ref, got *core.Result) {
	t.Helper()
	if got.Method != ref.Method {
		t.Fatalf("%s: method %v != %v", label, got.Method, ref.Method)
	}
	if !reflect.DeepEqual(got.Region, ref.Region) {
		t.Fatalf("%s: region mismatch:\n ref %d rects %v\n got %d rects %v",
			label, len(ref.Region), ref.Region, len(got.Region), got.Region)
	}
	if got.Accepted != ref.Accepted || got.Rejected != ref.Rejected || got.Candidates != ref.Candidates {
		t.Fatalf("%s: filter marks (a,r,c) = (%d,%d,%d) != (%d,%d,%d)", label,
			got.Accepted, got.Rejected, got.Candidates, ref.Accepted, ref.Rejected, ref.Candidates)
	}
	if got.ObjectsRetrieved != ref.ObjectsRetrieved {
		t.Fatalf("%s: retrieved %d != %d", label, got.ObjectsRetrieved, ref.ObjectsRetrieved)
	}
}

var allMethods = []core.Method{core.FR, core.PA, core.DHOptimistic, core.DHPessimistic, core.BruteForce}

// TestEngineMatchesServer is the exactness contract: every method, snapshot
// and interval and past, bit-identical to the unsharded server at shard
// counts {1, 2, 3, 8} x worker counts {1, 2, 17}, over a stream with
// boundary-straddling objects.
func TestEngineMatchesServer(t *testing.T) {
	st := makeStream()
	ref, err := core.NewServer(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st.replay(t, ref)
	now := ref.Now()

	queries := []core.Query{
		{Rho: 0.0001, L: 100, At: now},
		{Rho: 0.0003, L: 100, At: now + 7},
		{Rho: 0.0001, L: 100, At: now + 90},
	}
	type refKey struct {
		qi int
		m  core.Method
	}
	refSnap := make(map[refKey]*core.Result)
	refIval := make(map[core.Method]*core.Result)
	for qi, q := range queries {
		for _, m := range allMethods {
			r, err := ref.Snapshot(q, m)
			if err != nil {
				t.Fatalf("ref snapshot %d %v: %v", qi, m, err)
			}
			refSnap[refKey{qi, m}] = r
		}
	}
	for _, m := range allMethods {
		r, err := ref.Interval(core.Query{Rho: 0.0001, L: 100, At: now}, now+5, m)
		if err != nil {
			t.Fatalf("ref interval %v: %v", m, err)
		}
		refIval[m] = r
	}
	refPast, err := ref.PastSnapshot(core.Query{Rho: 0.0001, L: 100, At: 4})
	if err != nil {
		t.Fatalf("ref past: %v", err)
	}

	for _, shards := range []int{1, 2, 3, 8} {
		for _, workers := range []int{1, 2, 17} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				eng, err := New(testConfig(workers), shards)
				if err != nil {
					t.Fatal(err)
				}
				st.replay(t, eng)
				if eng.Now() != now {
					t.Fatalf("engine now %d != %d", eng.Now(), now)
				}
				if eng.NumObjects() != ref.NumObjects() {
					t.Fatalf("engine objects %d != %d", eng.NumObjects(), ref.NumObjects())
				}
				for qi, q := range queries {
					for _, m := range allMethods {
						got, err := eng.Snapshot(q, m)
						if err != nil {
							t.Fatalf("snapshot %d %v: %v", qi, m, err)
						}
						sameAnswer(t, fmt.Sprintf("snapshot %d %v", qi, m), refSnap[refKey{qi, m}], got)
					}
				}
				for _, m := range allMethods {
					got, err := eng.Interval(core.Query{Rho: 0.0001, L: 100, At: now}, now+5, m)
					if err != nil {
						t.Fatalf("interval %v: %v", m, err)
					}
					sameAnswer(t, fmt.Sprintf("interval %v", m), refIval[m], got)
				}
				got, err := eng.PastSnapshot(core.Query{Rho: 0.0001, L: 100, At: 4})
				if err != nil {
					t.Fatalf("past: %v", err)
				}
				sameAnswer(t, "past", refPast, got)
			})
		}
	}
}

// TestEngineCachedAnswers verifies the engine-level result cache returns the
// same answer it computed and marks reuse, and that mutations invalidate it.
func TestEngineCachedAnswers(t *testing.T) {
	st := makeStream()
	cfg := testConfig(2)
	cfg.CacheBytes = 1 << 20
	eng, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.replay(t, eng)
	ref, err := core.NewServer(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	st.replay(t, ref)
	q := core.Query{Rho: 0.0001, L: 100, At: eng.Now() + 3}
	want, err := ref.Snapshot(q, core.FR)
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Snapshot(q, core.FR)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first answer claims to be cached")
	}
	sameAnswer(t, "first", want, first)
	second, err := eng.Snapshot(q, core.FR)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical query was not served from the cache")
	}
	sameAnswer(t, "second", want, second)
	if hits := eng.CacheStats().Hits; hits == 0 {
		t.Fatal("cache recorded no hits")
	}
	// A mutation bumps the epoch and must invalidate the cached answer.
	fresh := motion.State{ID: 999999, Pos: geom.Point{X: 700, Y: 700}, Ref: eng.Now()}
	if err := eng.Apply(motion.NewInsert(fresh)); err != nil {
		t.Fatal(err)
	}
	third, err := eng.Snapshot(q, core.FR)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("answer survived a mutation epoch bump")
	}
}

// TestEngineStats sanity-checks the distribution snapshot: populations sum
// to the total, and the straddler stream actually produced replicas.
func TestEngineStats(t *testing.T) {
	st := makeStream()
	eng, err := New(testConfig(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	st.replay(t, eng)
	s := eng.Stats()
	if s.Shards != 8 {
		t.Fatalf("shards %d", s.Shards)
	}
	sum := 0
	for _, n := range s.ObjectsPerShard {
		sum += n
	}
	if sum != s.Objects || sum != eng.NumObjects() {
		t.Fatalf("per-shard populations sum to %d, want %d", sum, s.Objects)
	}
	if s.Straddlers == 0 {
		t.Fatal("stream with fast movers produced no straddlers")
	}
	var reps int64
	for _, n := range s.ReplicasPerShard {
		reps += n
	}
	if reps == 0 {
		t.Fatal("no replica registrations")
	}
}

// TestEngineErrorPaths mirrors the server's update validation errors.
func TestEngineErrorPaths(t *testing.T) {
	eng, err := New(testConfig(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := motion.State{ID: 7, Pos: geom.Point{X: 100, Y: 100}, Vel: geom.Vec{X: 1}, Ref: 0}
	if err := eng.Apply(motion.NewInsert(st)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(motion.NewInsert(st)); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	stale := st
	stale.Pos = geom.Point{X: 101, Y: 100}
	if err := eng.Apply(motion.NewDelete(stale, 1)); err == nil {
		t.Fatal("mismatched delete accepted")
	}
	if err := eng.Apply(motion.NewDelete(motion.State{ID: 8}, 1)); err == nil {
		t.Fatal("unknown delete accepted")
	}
	if err := eng.Apply(motion.NewDelete(st, 1)); err != nil {
		t.Fatalf("valid delete rejected: %v", err)
	}
	if err := eng.Tick(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Tick(4, nil); err == nil {
		t.Fatal("time moved backwards")
	}
	if _, err := eng.Snapshot(core.Query{Rho: 0.0001, L: 100, At: 2}, core.FR); err == nil {
		t.Fatal("query before now accepted")
	}
	if _, err := eng.Snapshot(core.Query{Rho: -1, L: 100, At: 5}, core.FR); err == nil {
		t.Fatal("negative rho accepted")
	}
	if _, err := eng.Snapshot(core.Query{Rho: 0.0001, L: 50, At: 5}, core.PA); err == nil {
		t.Fatal("PA with mismatched l accepted")
	}
}
