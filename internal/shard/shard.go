// Package shard scales the PDR engine across space-partitioned shards: the
// monitored plane is cut along the Z-order curve (internal/zcurve) into N
// contiguous territories, each owned by an independent core.Server with its
// own density histogram, index, and buffer pool. Mutations lock only the
// shard(s) that own the object, so concurrent writers to different regions
// of the plane no longer serialize; queries scatter to the owning shards and
// gather through a deterministic, index-slotted merge.
//
// Exactness contract: the sharded engine returns answers bit-identical to an
// unsharded core.Server over the same stream, at any shard count and worker
// count. The argument, per method (details in docs/PERFORMANCE.md,
// "Sharding"):
//
//   - FR / DH: the per-shard histograms count disjoint primary populations,
//     and their int32 counters are exactly additive, so dh.FilterMerged
//     reproduces the single histogram's marks. Refinement windows scatter to
//     every shard the grown window intersects; index searches are exact
//     (closed containment of the predicted position), replica registrations
//     of boundary-straddling objects are deduped by ID, and the plane sweep
//     depends only on the resulting point multiset — which equals the
//     unsharded one.
//   - PA: Chebyshev coefficient accumulation is floating-point and therefore
//     order-sensitive, so the engine keeps ONE global surface fed the full
//     update stream in arrival order (per-shard servers set
//     Config.DisablePA). Identical stream order => identical coefficients.
//   - BruteForce / PastSnapshot: live sets and archives are primary-only and
//     disjoint; concatenating per-shard gathers yields the same points.
package shard

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"pdr/internal/cache"
	"pdr/internal/core"
	"pdr/internal/dh"
	"pdr/internal/motion"
	"pdr/internal/pa"
	"pdr/internal/parallel"
	"pdr/internal/storage"
	"pdr/internal/telemetry"
)

// Engine is a sharded PDR engine. It satisfies the same query/mutation
// surface as core.Server (see internal/service.Engine) and is safe for
// concurrent use.
//
// Locking protocol: the engine serializes each shard with its own RWMutex in
// e.smu — queries read-lock every shard for their whole evaluation (so a
// scatter observes one consistent cut of the stream), while mutations
// write-lock only the shards they touch, always in ascending index order
// (Tick locks all; Apply locks the owner set). surfMu nests inside the shard
// locks. The per-server internal locks are then uncontended and exist only
// to keep core.Server independently safe.
type Engine struct {
	cfg    core.Config // effective config, as an unsharded server would report
	n      int
	router *Router
	shards []*core.Server
	hists  []*dh.Histogram // shards[i].Histogram(), cached for FilterMerged
	par    *parallel.Pool
	qcache *cache.Cache // engine-level result cache (per-shard caches are off)
	met    *core.Metrics
	smet   *metrics

	smu []sync.RWMutex // pdr:lockrank shard 20

	surfMu sync.RWMutex // pdr:lockrank surface 30
	surf   *pa.Surface  // engine-global Chebyshev surface; nil when DisablePA

	reg          registry
	replicaCount []atomic.Int64 // replica registrations per shard

	epoch      atomic.Uint64
	now        atomic.Int64
	histPrimed atomic.Bool
}

// New builds an empty sharded engine: shards independent core.Servers over
// cfg, each owning a contiguous Z-order range of the area. shards must be in
// [1, MaxShards]. The per-shard servers disable PA surfaces and result
// caching; the engine owns one global surface and one epoch-keyed cache.
func New(cfg core.Config, shards int) (*Engine, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d outside [1, %d]", shards, MaxShards)
	}
	scfg := cfg
	scfg.DisablePA = true
	scfg.CacheBytes = 0
	e := &Engine{
		n:            shards,
		shards:       make([]*core.Server, shards),
		hists:        make([]*dh.Histogram, shards),
		smu:          make([]sync.RWMutex, shards),
		replicaCount: make([]atomic.Int64, shards),
	}
	for i := range e.shards {
		srv, err := core.NewServer(scfg)
		if err != nil {
			return nil, err
		}
		e.shards[i] = srv
		e.hists[i] = srv.Histogram()
	}
	// The effective config is what an unsharded server over cfg would report
	// (defaults resolved), with the engine-level PA and cache settings
	// restored.
	eff := e.shards[0].Config()
	eff.DisablePA = cfg.DisablePA
	eff.CacheBytes = cfg.CacheBytes
	e.cfg = eff
	router, err := NewRouter(eff.Area, shards)
	if err != nil {
		return nil, err
	}
	e.router = router
	if !eff.DisablePA {
		surf, err := pa.New(pa.Config{
			Area: eff.Area, G: eff.PAGrid, Degree: eff.PADegree,
			Horizon: eff.U + eff.W, L: eff.L, MD: eff.PAMD,
		})
		if err != nil {
			return nil, err
		}
		e.surf = surf
	}
	e.par = parallel.New(eff.Workers)
	e.qcache = cache.New(eff.CacheBytes)
	return e, nil
}

// Config returns the engine's effective configuration (what the equivalent
// unsharded server would report).
func (e *Engine) Config() core.Config { return e.cfg }

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.n }

// Horizon returns H = U + W.
func (e *Engine) Horizon() motion.Tick { return e.cfg.U + e.cfg.W }

// Now returns the current engine time.
func (e *Engine) Now() motion.Tick { return motion.Tick(e.now.Load()) }

// NumObjects returns the live object count across all shards (replica
// registrations are not live and are not counted).
func (e *Engine) NumObjects() int { return int(e.reg.count.Load()) }

// Workers returns the effective query worker-pool size.
func (e *Engine) Workers() int { return e.par.Workers() }

// Epoch returns the engine mutation counter cached answers are keyed by.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// Cache exposes the engine-level snapshot result cache (nil when
// Config.CacheBytes is 0).
func (e *Engine) Cache() *cache.Cache { return e.qcache }

// CacheStats returns the engine-level result cache counters.
func (e *Engine) CacheStats() cache.Stats { return e.qcache.Stats() }

// PoolStats sums the per-shard buffer-pool I/O counters.
func (e *Engine) PoolStats() storage.Stats {
	var total storage.Stats
	for _, s := range e.shards {
		st := s.PoolStats()
		total.Reads += st.Reads
		total.Writes += st.Writes
		total.Hits += st.Hits
	}
	return total
}

// PoolPages sums the pages managed across the per-shard buffer pools.
func (e *Engine) PoolPages() int {
	total := 0
	for _, s := range e.shards {
		total += s.PoolPages()
	}
	return total
}

// HistogramBytes sums the per-shard density-histogram footprints.
func (e *Engine) HistogramBytes() int {
	total := 0
	for _, s := range e.shards {
		total += s.HistogramBytes()
	}
	return total
}

// SurfaceBytes returns the engine-global Chebyshev coefficient footprint.
func (e *Engine) SurfaceBytes() int {
	if e.surf == nil {
		return 0
	}
	return e.surf.MemoryBytes()
}

// Contours extracts iso-density contour segments from the engine-global
// Chebyshev surface (errors when Config.DisablePA).
func (e *Engine) Contours(at motion.Tick, level float64, res int) ([]pa.ContourSegment, error) {
	if e.surf == nil {
		return nil, fmt.Errorf("shard: PA surfaces are disabled (Config.DisablePA)")
	}
	e.surfMu.RLock()
	defer e.surfMu.RUnlock()
	return e.surf.Contours(at, level, res)
}

// Stats is a point-in-time distribution snapshot for diagnostics.
type Stats struct {
	// Shards is the shard count.
	Shards int `json:"shards"`
	// Objects is the total live population.
	Objects int `json:"objects"`
	// Straddlers counts objects registered with more than one shard.
	Straddlers int `json:"straddlers"`
	// ObjectsPerShard is the primary live population per shard.
	ObjectsPerShard []int `json:"objectsPerShard"`
	// ReplicasPerShard is the replica registrations per shard.
	ReplicasPerShard []int64 `json:"replicasPerShard"`
}

// Stats snapshots the object distribution across shards.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:           e.n,
		Objects:          int(e.reg.count.Load()),
		Straddlers:       int(e.reg.straddlers.Load()),
		ObjectsPerShard:  make([]int, e.n),
		ReplicasPerShard: make([]int64, e.n),
	}
	for i, s := range e.shards {
		st.ObjectsPerShard[i] = s.NumObjects()
		st.ReplicasPerShard[i] = e.replicaCount[i].Load()
	}
	return st
}

// SetMetrics attaches the engine instrument bundle (shared with the
// unsharded server, so dashboards read the same series either way). Call
// before serving traffic, like core.Server.SetMetrics.
func (e *Engine) SetMetrics(m *core.Metrics) {
	e.met = m
	if m != nil {
		m.BindWorkerPool(e.par)
	} else {
		e.par.SetBusyGauge(nil)
	}
}

// AttachTelemetry registers the engine's substrate instruments on reg: one
// shared pool-metrics bundle aggregated across the per-shard buffer pools,
// the engine-level result cache, and the pdr_shard_* family (distribution
// gauges, scatter widths, merge time, write-lock waits). Call before serving
// traffic.
func (e *Engine) AttachTelemetry(reg *telemetry.Registry) {
	pm := storage.NewPoolMetrics(reg)
	for _, s := range e.shards {
		s.Pool().SetMetrics(pm)
	}
	if e.qcache != nil {
		e.qcache.SetMetrics(cache.NewMetrics(reg))
	}
	e.smet = newMetrics(reg, e)
}

// shardWidthBounds buckets shard fan-out widths (1..MaxShards).
var shardWidthBounds = []float64{1, 2, 4, 8, 16, 32, 64}

// metrics is the pdr_shard_* instrument bundle.
type metrics struct {
	// scatter is the shards queried per refinement window.
	scatter *telemetry.Histogram
	// merge is the time spent concatenating and coalescing partial answers.
	merge *telemetry.Histogram
	// writeFan is the shards write-locked per mutation.
	writeFan *telemetry.Histogram
	// lockWait[i] is the time writers waited for shard i's write lock.
	lockWait []*telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry, e *Engine) *metrics {
	reg.Gauge("pdr_shard_count",
		"Spatial shards the engine scatters over.").Set(float64(e.n))
	reg.GaugeFunc("pdr_shard_straddlers",
		"Live objects registered with more than one shard (trajectory straddles a shard boundary).",
		func() float64 { return float64(e.reg.straddlers.Load()) })
	for i := range e.shards {
		i := i
		lbl := telemetry.L("shard", strconv.Itoa(i))
		reg.GaugeFunc("pdr_shard_objects",
			"Primary live objects owned by each shard.",
			func() float64 { return float64(e.shards[i].NumObjects()) }, lbl)
		reg.GaugeFunc("pdr_shard_replicas",
			"Replica (index-only) registrations held by each shard for boundary straddlers.",
			func() float64 { return float64(e.replicaCount[i].Load()) }, lbl)
	}
	m := &metrics{
		scatter: reg.Histogram("pdr_shard_scatter_width",
			"Shards queried per refinement window (scatter fan-out).",
			shardWidthBounds),
		merge: reg.Histogram("pdr_shard_merge_seconds",
			"Time merging (concatenating and coalescing) partial answers per query.",
			nil),
		writeFan: reg.Histogram("pdr_shard_write_fanout_shards",
			"Shards write-locked per mutation (1 unless the object straddles a boundary; ticks lock every shard).",
			shardWidthBounds),
		lockWait: make([]*telemetry.Histogram, e.n),
	}
	for i := range m.lockWait {
		m.lockWait[i] = reg.Histogram("pdr_shard_write_lock_wait_seconds",
			"Time writers waited to acquire each shard's write lock.",
			nil, telemetry.L("shard", strconv.Itoa(i)))
	}
	return m
}
