package shard

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"pdr/internal/cache"
	"pdr/internal/core"
	"pdr/internal/dh"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/stopwatch"
	"pdr/internal/storage"
	"pdr/internal/sweep"
	"pdr/internal/telemetry"
)

// frScratch holds one FR snapshot's scatter/gather slices (per-window region
// and retrieval-count slots), pooled across queries like core.Server's;
// region slots are nil-ed during the merge so the pool never pins a query's
// answer.
type frScratch struct {
	parts     []geom.Region
	retrieved []int
}

var frScratches = sync.Pool{New: func() any { return new(frScratch) }}

// intervalScratch is frScratch for the interval fan-out: per-timestamp
// sub-result and error slots.
type intervalScratch struct {
	subs []*core.Result
	errs []error
}

var intervalScratches = sync.Pool{New: func() any { return new(intervalScratch) }}

// pointBufs pools the per-window point-gather buffers of the refinement
// workers (sweep.DenseRects reads the points and retains nothing).
var pointBufs = sync.Pool{New: func() any { return new([]geom.Point) }}

// seenSets pools the replica-dedup sets of multi-shard windows; sets are
// cleared before reuse. A map is pointer-shaped, so pooling it directly
// costs no boxing allocation.
var seenSets = sync.Pool{New: func() any { return make(map[motion.ObjectID]struct{}) }}

// growRegions returns buf resized to n nil slots, reallocating only when the
// capacity is insufficient.
func growRegions(buf []geom.Region, n int) []geom.Region {
	if cap(buf) < n {
		return make([]geom.Region, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = nil
	}
	return buf
}

// growInts is growRegions for int slots.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growResults is growRegions for sub-result slots.
func growResults(buf []*core.Result, n int) []*core.Result {
	if cap(buf) < n {
		return make([]*core.Result, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = nil
	}
	return buf
}

// growErrors is growRegions for error slots.
func growErrors(buf []error, n int) []error {
	if cap(buf) < n {
		return make([]error, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = nil
	}
	return buf
}

// releaseIntervalScratch clears the slot pointers (so the pool never pins
// sub-results or errors) and returns the scratch.
func releaseIntervalScratch(sc *intervalScratch) {
	for i := range sc.subs {
		sc.subs[i] = nil
	}
	for i := range sc.errs {
		sc.errs[i] = nil
	}
	intervalScratches.Put(sc)
}

// rlockAll read-locks every shard (ascending, matching the writer order) so
// a query evaluates against one consistent cut of the stream: no mutation
// can land between the scatter touching shard 0 and shard N-1.
func (e *Engine) rlockAll() {
	for i := range e.smu {
		e.smu[i].RLock()
	}
}

func (e *Engine) runlockAll() {
	for i := len(e.smu) - 1; i >= 0; i-- {
		e.smu[i].RUnlock()
	}
}

func (e *Engine) validateRLocked(q core.Query) error {
	now := motion.Tick(e.now.Load())
	if q.Rho < 0 {
		return fmt.Errorf("shard: negative density threshold %g", q.Rho)
	}
	if q.L <= 0 {
		return fmt.Errorf("shard: non-positive neighborhood edge %g", q.L)
	}
	if q.At < now || q.At > now+e.Horizon() {
		return fmt.Errorf("shard: query time %d outside [%d, %d]", q.At, now, now+e.Horizon())
	}
	return nil
}

// Snapshot answers the snapshot PDR query q with the given method. Any
// number of Snapshot/Interval calls may run concurrently; they serialize
// only against mutations of the shards involved.
func (e *Engine) Snapshot(q core.Query, m core.Method) (*core.Result, error) {
	return e.SnapshotTraced(q, m, nil)
}

// SnapshotTraced is Snapshot recording its evaluation as a child span of sp,
// with the scatter fan-out as per-shard child spans. A nil sp traces
// nothing.
func (e *Engine) SnapshotTraced(q core.Query, m core.Method, sp *telemetry.Span) (*core.Result, error) {
	e.rlockAll()
	defer e.runlockAll()
	esp := sp.Child("snapshot")
	esp.SetAttr("method", m.String())
	esp.SetAttrInt("at", int64(q.At))
	esp.SetAttrInt("shards", int64(e.n))
	res, err := e.snapshotRLocked(q, m, true, esp)
	esp.End()
	if err != nil {
		return nil, err
	}
	if e.met != nil {
		e.met.Observe(res)
	}
	return res, nil
}

// snapshotRLocked answers one snapshot query under the all-shards read lock,
// serving from the engine-level result cache when one is configured —
// core.Server.snapshotLocked's twin, keyed by the engine epoch.
func (e *Engine) snapshotRLocked(q core.Query, m core.Method, trackIO bool, sp *telemetry.Span) (*core.Result, error) {
	if err := e.validateRLocked(q); err != nil {
		if e.met != nil {
			e.met.IncError()
		}
		return nil, err
	}
	if e.qcache == nil {
		return e.evaluateRLocked(q, m, trackIO, sp)
	}
	k := cache.Key{Epoch: e.epoch.Load(), At: int64(q.At), Rho: q.Rho, L: q.L, Method: uint8(m)}
	sw := stopwatch.Start()
	var computed *core.Result // set only when this call wins the flight
	ent, outcome, err := e.qcache.Do(k, func() (*cache.Entry, error) {
		res, err := e.evaluateRLocked(q, m, trackIO, sp)
		if err != nil {
			return nil, err
		}
		computed = res
		return &cache.Entry{
			Region:           res.Region,
			CPU:              res.CPU,
			Accepted:         res.Accepted,
			Rejected:         res.Rejected,
			Candidates:       res.Candidates,
			ObjectsRetrieved: res.ObjectsRetrieved,
			TraceID:          uint64(sp.TraceID()),
		}, nil
	})
	if err != nil {
		if outcome != cache.Computed && e.met != nil {
			e.met.IncError()
		}
		return nil, err
	}
	if outcome == cache.Computed {
		return computed, nil
	}
	elapsed := sw.Elapsed()
	csp := sp.Child("cache")
	csp.SetAttr("outcome", outcome.String())
	if csp != nil && ent.TraceID != 0 {
		csp.SetAttr("sourceTrace", telemetry.TraceID(ent.TraceID).String())
	}
	csp.End()
	return &core.Result{
		Method:           m,
		Region:           ent.Region,
		CPU:              elapsed,
		Wall:             elapsed,
		Cached:           true,
		CachedCPU:        ent.CPU,
		Accepted:         ent.Accepted,
		Rejected:         ent.Rejected,
		Candidates:       ent.Candidates,
		ObjectsRetrieved: ent.ObjectsRetrieved,
		Phases:           []telemetry.PhaseSpan{{Name: "cache", Duration: elapsed}},
	}, nil
}

// evaluateRLocked runs one snapshot evaluation under the all-shards read
// lock, charging I/O from the summed per-shard pool deltas when trackIO is
// set (interval fan-outs pass false and charge once at the interval level).
func (e *Engine) evaluateRLocked(q core.Query, m core.Method, trackIO bool, sp *telemetry.Span) (*core.Result, error) {
	res := &core.Result{Method: m}
	var ioBefore storage.Stats
	if trackIO {
		ioBefore = e.PoolStats()
	}
	sw := stopwatch.Start()
	var err error
	switch m {
	case core.FR:
		err = e.snapshotFRRLocked(q, res, sp)
	case core.PA:
		err = e.snapshotPARLocked(q, res, sp)
	case core.DHOptimistic, core.DHPessimistic:
		err = e.snapshotDHRLocked(q, m, res, sp)
	case core.BruteForce:
		e.snapshotBFRLocked(q, res, sp)
	default:
		err = fmt.Errorf("shard: unknown method %d", m)
	}
	if err != nil {
		if e.met != nil {
			e.met.IncError()
		}
		return nil, err
	}
	res.CPU = sw.Elapsed()
	res.Wall = res.CPU
	if trackIO {
		res.IOs = e.PoolStats().Sub(ioBefore).RandomIOs()
		res.IOTime = time.Duration(res.IOs) * e.cfg.IOCharge
	}
	sp.SetAttrInt("ios", res.IOs)
	res.Phases = sp.PhaseSummary()
	return res, nil
}

// snapshotFRRLocked is the sharded FR evaluation: filter over the merged
// per-shard histograms (bit-identical to one histogram — int32 counters over
// disjoint primary populations are exactly additive), then scatter each
// candidate window to the shards its grown rectangle intersects, dedup
// replica registrations by object ID, and sweep. Partial regions land in
// per-window slots and merge in window order, so the output is
// byte-identical to the unsharded engine at any shard and worker count.
func (e *Engine) snapshotFRRLocked(q core.Query, res *core.Result, sp *telemetry.Span) error {
	ph := sp.Child("filter")
	fr, err := dh.FilterMerged(e.hists, q.At, q.Rho, q.L)
	if err != nil {
		return err
	}
	res.Accepted, res.Rejected, res.Candidates = fr.CountMarks()
	region := fr.AcceptedRegion()

	cands := fr.Candidates()
	fr.Release()
	windows := make(geom.Region, 0, len(cands))
	for _, c := range cands {
		windows.Add(e.hists[0].CellRect(c.I, c.J))
	}
	if e.cfg.MergeCandidates {
		windows = geom.CoalesceInPlace(windows)
	}
	ph.SetAttrInt("accepted", int64(res.Accepted))
	ph.SetAttrInt("rejected", int64(res.Rejected))
	ph.SetAttrInt("candidates", int64(res.Candidates))
	ph.End()
	ph = sp.Child("refine")
	ph.SetAttrInt("windows", int64(len(windows)))
	if e.met != nil {
		e.met.ObserveRefineFanout(len(windows))
	}
	slots := ph.Fork("window", len(windows))
	sc := frScratches.Get().(*frScratch)
	sc.parts = growRegions(sc.parts, len(windows))
	sc.retrieved = growInts(sc.retrieved, len(windows))
	parts, retrieved := sc.parts, sc.retrieved
	e.par.ForEachSpan(len(windows), slots, func(wi int, wsp *telemetry.Span) {
		cell := windows[wi]
		grown := cell.Grow(q.L / 2)
		parts[wi], retrieved[wi] = e.refineWindow(q, cell, grown, wsp)
	})
	var msw stopwatch.Stopwatch
	if e.smet != nil {
		msw = stopwatch.Start()
	}
	for wi := range parts {
		res.ObjectsRetrieved += retrieved[wi]
		region = append(region, parts[wi]...)
		parts[wi] = nil // do not pin this window's region in the pool
	}
	frScratches.Put(sc)
	ph.End()
	ph = sp.Child("union")
	// region is appended fresh above (AcceptedRegion allocates per call), so
	// the union coalesces in place.
	res.Region = geom.CoalesceInPlace(region)
	ph.End()
	if e.smet != nil {
		e.smet.merge.Observe(msw.Elapsed().Seconds())
	}
	return nil
}

// refineWindow gathers one candidate window's objects from every shard the
// grown rectangle intersects and sweeps them. Shards are visited in index
// order and boundary straddlers (present in several shards' indexes as
// replicas) are deduped by object ID on first sight, so the gathered point
// multiset — and therefore the sweep — is identical to the unsharded one.
func (e *Engine) refineWindow(q core.Query, cell, grown geom.Rect, wsp *telemetry.Span) (geom.Region, int) {
	mask := e.router.Intersecting(grown)
	width := bits.OnesCount64(mask)
	wsp.SetAttrInt("shards", int64(width))
	if e.smet != nil {
		e.smet.scatter.Observe(float64(width))
	}
	pb := pointBufs.Get().(*[]geom.Point)
	points := (*pb)[:0]
	var seen map[motion.ObjectID]struct{}
	if width > 1 {
		seen = seenSets.Get().(map[motion.ObjectID]struct{})
		clear(seen)
	}
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		ssp := wsp.Child("shard")
		ssp.SetAttrInt("shard", int64(i))
		before := len(points)
		e.shards[i].SearchWindow(grown, q.At, func(st motion.State) bool {
			if seen != nil {
				if _, dup := seen[st.ID]; dup {
					return true
				}
				seen[st.ID] = struct{}{}
			}
			p := st.PositionAt(q.At)
			if e.cfg.Area.Contains(p) {
				points = append(points, p)
			}
			return true
		})
		ssp.SetAttrInt("retrieved", int64(len(points)-before))
		ssp.End()
	}
	wsp.SetAttrInt("retrieved", int64(len(points)))
	out := sweep.DenseRects(points, cell, q.Rho, q.L)
	n := len(points)
	*pb = points
	pointBufs.Put(pb)
	if seen != nil {
		seenSets.Put(seen)
	}
	return out, n
}

func (e *Engine) snapshotPARLocked(q core.Query, res *core.Result, sp *telemetry.Span) error {
	if e.surf == nil {
		return fmt.Errorf("shard: PA surfaces are disabled (Config.DisablePA)")
	}
	// lint:ignore floateq config identity: the surfaces answer only the
	// exact l they were built for; a nearly-equal l must be rejected too.
	if q.L != e.surf.L() {
		return fmt.Errorf("shard: PA surfaces are built for l=%g, query asked l=%g (the approximation method fixes l in advance; use FR for other edges)",
			e.surf.L(), q.L)
	}
	ph := sp.Child("pa-eval")
	e.surfMu.RLock()
	region, err := e.surf.DenseRegion(q.At, q.Rho)
	e.surfMu.RUnlock()
	if err != nil {
		return err
	}
	res.Region = region
	ph.End()
	return nil
}

func (e *Engine) snapshotDHRLocked(q core.Query, m core.Method, res *core.Result, sp *telemetry.Span) error {
	ph := sp.Child("filter")
	fr, err := dh.FilterMerged(e.hists, q.At, q.Rho, q.L)
	if err != nil {
		return err
	}
	res.Accepted, res.Rejected, res.Candidates = fr.CountMarks()
	ph.SetAttrInt("accepted", int64(res.Accepted))
	ph.SetAttrInt("rejected", int64(res.Rejected))
	ph.SetAttrInt("candidates", int64(res.Candidates))
	ph.End()
	ph = sp.Child("union")
	if m == core.DHOptimistic {
		res.Region = fr.OptimisticRegion()
	} else {
		res.Region = fr.PessimisticRegion()
	}
	fr.Release()
	ph.End()
	return nil
}

// snapshotBFRLocked concatenates the per-shard live gathers (primary-only
// and disjoint, so no dedup) in shard order and sweeps the whole area.
func (e *Engine) snapshotBFRLocked(q core.Query, res *core.Result, sp *telemetry.Span) {
	ph := sp.Child("refine")
	pb := pointBufs.Get().(*[]geom.Point)
	points := (*pb)[:0]
	for _, s := range e.shards {
		points = s.AppendLivePoints(points, q.At)
	}
	res.ObjectsRetrieved = len(points)
	ph.SetAttrInt("retrieved", int64(res.ObjectsRetrieved))
	ph.End()
	ph = sp.Child("union")
	res.Region = geom.CoalesceInPlace(sweep.DenseRects(points, e.cfg.Area, q.Rho, q.L))
	*pb = points
	pointBufs.Put(pb)
	ph.End()
}

// PastSnapshot answers the snapshot PDR query q for a timestamp in the past
// from the per-shard movement archives (primary-only and disjoint). Requires
// Config.KeepHistory.
func (e *Engine) PastSnapshot(q core.Query) (*core.Result, error) {
	return e.PastSnapshotTraced(q, nil)
}

// PastSnapshotTraced is PastSnapshot recording its evaluation as a child
// span of sp (nil traces nothing).
func (e *Engine) PastSnapshotTraced(q core.Query, sp *telemetry.Span) (*core.Result, error) {
	e.rlockAll()
	defer e.runlockAll()
	if !e.cfg.KeepHistory {
		return nil, fmt.Errorf("shard: history is disabled (set Config.KeepHistory)")
	}
	now := motion.Tick(e.now.Load())
	if q.At >= now {
		return nil, fmt.Errorf("shard: PastSnapshot is for t < now (%d); use Snapshot", now)
	}
	if q.Rho < 0 || q.L <= 0 {
		return nil, fmt.Errorf("shard: bad query parameters rho=%g l=%g", q.Rho, q.L)
	}
	res := &core.Result{Method: core.BruteForce}
	esp := sp.Child("past")
	esp.SetAttrInt("at", int64(q.At))
	esp.SetAttrInt("shards", int64(e.n))
	sw := stopwatch.Start()
	ph := esp.Child("refine")
	var points []geom.Point
	for _, s := range e.shards {
		var err error
		points, err = s.AppendPastPoints(points, q.At)
		if err != nil {
			ph.End()
			esp.End()
			return nil, err
		}
	}
	res.ObjectsRetrieved = len(points)
	ph.SetAttrInt("retrieved", int64(res.ObjectsRetrieved))
	ph.End()
	ph = esp.Child("union")
	res.Region = geom.CoalesceInPlace(sweep.DenseRects(points, e.cfg.Area, q.Rho, q.L))
	ph.End()
	res.CPU = sw.Elapsed()
	res.Wall = res.CPU
	res.Phases = esp.PhaseSummary()
	esp.End()
	return res, nil
}

// Interval answers the interval PDR query (rho, l, [q.At, until]) — the
// union of the snapshot answers over the range — with per-timestamp
// snapshots fanned out over the worker pool exactly like core.Server does,
// each one scatter-gathering over the shards.
func (e *Engine) Interval(q core.Query, until motion.Tick, m core.Method) (*core.Result, error) {
	return e.IntervalTraced(q, until, m, nil)
}

// IntervalTraced is Interval recording the fan-out as a span subtree of sp
// (nil traces nothing).
func (e *Engine) IntervalTraced(q core.Query, until motion.Tick, m core.Method, sp *telemetry.Span) (*core.Result, error) {
	if until < q.At {
		return nil, fmt.Errorf("shard: empty interval [%d, %d]", q.At, until)
	}
	e.rlockAll()
	defer e.runlockAll()
	sw := stopwatch.Start()
	n := int(until-q.At) + 1
	isp := sp.Child("interval")
	isp.SetAttr("method", m.String())
	isp.SetAttrInt("snapshots", int64(n))
	isp.SetAttrInt("shards", int64(e.n))
	ioBefore := e.PoolStats()
	sc := intervalScratches.Get().(*intervalScratch)
	subs := growResults(sc.subs, n)
	errs := growErrors(sc.errs, n)
	sc.subs, sc.errs = subs, errs
	slots := isp.Fork("snapshot", n)
	e.par.ForEachSpan(n, slots, func(i int, ssp *telemetry.Span) {
		sub := q
		sub.At = q.At + motion.Tick(i)
		ssp.SetAttrInt("at", int64(sub.At))
		subs[i], errs[i] = e.snapshotRLocked(sub, m, false, ssp)
	})
	for _, err := range errs {
		if err != nil {
			isp.End()
			releaseIntervalScratch(sc)
			return nil, err
		}
	}
	out := &core.Result{Method: m, Cached: true}
	var region geom.Region
	for _, r := range subs {
		// The sub-result regions are copied by value into the fresh union
		// buffer, so coalescing it in place cannot touch a cached answer.
		region = append(region, r.Region...)
		out.CPU += r.CPU
		out.Cached = out.Cached && r.Cached
		out.CachedCPU += r.CachedCPU
		out.Accepted += r.Accepted
		out.Rejected += r.Rejected
		out.Candidates += r.Candidates
		out.ObjectsRetrieved += r.ObjectsRetrieved
		out.Phases = telemetry.MergeSpans(out.Phases, r.Phases)
	}
	releaseIntervalScratch(sc)
	out.IOs = e.PoolStats().Sub(ioBefore).RandomIOs()
	out.IOTime = time.Duration(out.IOs) * e.cfg.IOCharge
	usp := isp.Child("union")
	out.Region = geom.CoalesceInPlace(region)
	usp.End()
	isp.SetAttrInt("ios", out.IOs)
	isp.End()
	out.Wall = sw.Elapsed()
	if e.met != nil {
		e.met.ObserveInterval(int64(n), out.Wall)
	}
	return out, nil
}
