package shard

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pdr/internal/core"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// singleShardState finds a stationary state owned by exactly the given
// shard (zero velocity => point coverage => no replicas).
func singleShardState(t *testing.T, e *Engine, shard int, id motion.ObjectID) motion.State {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(shard) + 1))
	for i := 0; i < 100000; i++ {
		st := motion.State{
			ID:  id,
			Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		}
		primary, replicas := e.router.OwnersOf(st, 0)
		if primary == shard && replicas == 0 {
			return st
		}
	}
	t.Fatalf("no single-shard state found for shard %d", shard)
	return motion.State{}
}

// TestApplyLocksOnlyOwningShard is the write-scaling claim, demonstrated
// against the lock structure itself: with one shard's write lock held by the
// test, an update routed to a different shard completes, while an update
// routed to the held shard blocks until release.
func TestApplyLocksOnlyOwningShard(t *testing.T) {
	eng, err := New(testConfig(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the histograms first: the first-ever insert otherwise takes
	// every shard lock to fix the window phase.
	if err := eng.Tick(0, nil); err != nil {
		t.Fatal(err)
	}
	other := singleShardState(t, eng, 2, 1)
	held := singleShardState(t, eng, 0, 2)

	eng.smu[0].Lock()
	done := make(chan error, 1)
	go func() { done <- eng.Apply(motion.NewInsert(other)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("apply to unheld shard: %v", err)
		}
	case <-time.After(5 * time.Second):
		eng.smu[0].Unlock()
		t.Fatal("apply to shard 2 blocked while only shard 0's lock was held")
	}

	blocked := make(chan error, 1)
	go func() { blocked <- eng.Apply(motion.NewInsert(held)) }()
	select {
	case err := <-blocked:
		eng.smu[0].Unlock()
		t.Fatalf("apply to held shard 0 completed while its write lock was held (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// Still blocked, as it must be.
	}
	eng.smu[0].Unlock()
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("apply to shard 0 after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("apply to shard 0 never completed after release")
	}
}

// TestWriteFanoutMasks pins the lock-set width: a stationary interior object
// locks exactly one shard; a fast boundary-crosser locks several.
func TestWriteFanoutMasks(t *testing.T) {
	eng, err := New(testConfig(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	interior := singleShardState(t, eng, 3, 10)
	_, replicas := eng.router.OwnersOf(interior, 0)
	if got := bits.OnesCount64(replicas | 1); got != 1 {
		t.Fatalf("stationary interior object registered with %d shards, want 1", got)
	}
	crosser := motion.State{ID: 11, Pos: geom.Point{X: 10, Y: 500}, Vel: geom.Vec{X: 11, Y: 0}, Ref: 0}
	primary, reps := eng.router.OwnersOf(crosser, 0)
	if reps == 0 {
		t.Fatalf("cross-plane trajectory registered only with shard %d", primary)
	}
}

// TestConcurrentWritesAndQueries is the race stress: writers hammer disjoint
// object ranges through Apply while readers run snapshots, intervals, and
// past queries, and a ticker advances time. Run under -race via check.sh.
func TestConcurrentWritesAndQueries(t *testing.T) {
	cfg := testConfig(4)
	cfg.CacheBytes = 1 << 18
	eng, err := New(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := makeStream()
	st.replay(t, eng)
	base := eng.Now()

	const writers = 4
	const perWriter = 60
	var wg sync.WaitGroup
	errc := make(chan error, writers+3)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 97))
			for i := 0; i < perWriter; i++ {
				id := motion.ObjectID(100000 + w*1000 + i)
				s := motion.State{
					ID:  id,
					Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
					Vel: geom.Vec{X: (rng.Float64() - 0.5) * 16, Y: (rng.Float64() - 0.5) * 16},
					Ref: base,
				}
				if err := eng.Apply(motion.NewInsert(s)); err != nil {
					errc <- fmt.Errorf("writer %d insert %d: %w", w, id, err)
					return
				}
				if i%2 == 0 {
					if err := eng.Apply(motion.NewDelete(s, base)); err != nil {
						errc <- fmt.Errorf("writer %d delete %d: %w", w, id, err)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := core.Query{Rho: 0.0001, L: 100, At: eng.Now() + motion.Tick(i%5)}
				if _, err := eng.Snapshot(q, allMethods[i%len(allMethods)]); err != nil {
					errc <- fmt.Errorf("snapshot: %w", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := eng.PastSnapshot(core.Query{Rho: 0.0001, L: 100, At: 4}); err != nil {
				errc <- fmt.Errorf("past: %w", err)
				return
			}
			if _, err := eng.Interval(core.Query{Rho: 0.0001, L: 100, At: eng.Now()}, eng.Now()+3, core.FR); err != nil {
				errc <- fmt.Errorf("interval: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Every surviving write is visible: the registry count must match a
	// brute-force gather.
	got, err := eng.Snapshot(core.Query{Rho: 0.0001, L: 100, At: eng.Now()}, core.BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if got.ObjectsRetrieved > eng.NumObjects() {
		t.Fatalf("gathered %d points from %d live objects", got.ObjectsRetrieved, eng.NumObjects())
	}
}
