package shard

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pdr/internal/core"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// TestPoolReuseBitIdentical is the sharded twin of the core pool-churn
// stress: scatter/gather slices, per-window point buffers, dedup sets, and
// the per-shard filter/sweep pools are all recycled across concurrent
// queries, and every answer must stay bit-identical to the single-threaded
// reference. Run under -race via check.sh.
func TestPoolReuseBitIdentical(t *testing.T) {
	eng, err := New(testConfig(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := makeStream()
	st.replay(t, eng)
	now := eng.Now()

	type job struct {
		q      core.Query
		method core.Method
		until  motion.Tick // interval query when > q.At
		past   bool
	}
	var jobs []job
	for _, m := range allMethods {
		for dt := 0; dt < 2; dt++ {
			jobs = append(jobs, job{q: core.Query{Rho: 0.0003, L: 100, At: now + motion.Tick(dt)}, method: m})
		}
	}
	jobs = append(jobs,
		job{q: core.Query{Rho: 0.0003, L: 100, At: now}, method: core.FR, until: now + 3},
		job{q: core.Query{Rho: 0.0003, L: 100, At: 4}, past: true},
	)

	run := func(j job) (*core.Result, error) {
		switch {
		case j.past:
			return eng.PastSnapshot(j.q)
		case j.until > j.q.At:
			return eng.Interval(j.q, j.until, j.method)
		default:
			return eng.Snapshot(j.q, j.method)
		}
	}
	want := make([]geom.Region, len(jobs))
	for i, j := range jobs {
		res, err := run(j)
		if err != nil {
			t.Fatalf("reference job %d: %v", i, err)
		}
		want[i] = res.Region
	}

	const goroutines = 6
	const rounds = 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for off := range jobs {
					i := (off + g) % len(jobs) // stagger so pools cross-pollinate
					res, err := run(jobs[i])
					if err != nil {
						errc <- fmt.Errorf("goroutine %d job %d: %w", g, i, err)
						return
					}
					if !reflect.DeepEqual(res.Region, want[i]) {
						errc <- fmt.Errorf("goroutine %d job %d (%v at t=%d): region diverged from single-threaded reference",
							g, i, jobs[i].method, jobs[i].q.At)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
