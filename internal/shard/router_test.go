package shard

import (
	"math/bits"
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

func TestRouterPartitionCoversArea(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	for _, n := range []int{1, 2, 3, 7, 8, 64} {
		r, err := NewRouter(area, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.starts[0] != 0 || r.starts[n] != 4096 {
			t.Fatalf("n=%d: range [%d, %d) does not cover the grid", n, r.starts[0], r.starts[n])
		}
		counts := make([]int, n)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			s := r.Owner(p)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: owner %d out of range", n, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			// Contiguous Morton ranges of a uniform grid under uniform load:
			// every shard must see a meaningful share.
			if c == 0 {
				t.Fatalf("n=%d: shard %d owns no samples", n, s)
			}
		}
		if got := r.Intersecting(area); got != allMask(n) {
			t.Fatalf("n=%d: full-area scatter mask %b, want %b", n, got, allMask(n))
		}
	}
}

func allMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// TestRouterIntersectingExact cross-checks the BIGMIN-based shard-window
// test against a brute-force scan of the grid cells.
func TestRouterIntersectingExact(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 8, 13} {
		r, err := NewRouter(area, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			x := rng.Float64()*1200 - 100
			y := rng.Float64()*1200 - 100
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*400, MaxY: y + rng.Float64()*400}
			got := r.Intersecting(w)
			// Brute force: a shard is needed iff one of its half-open cells
			// [min, min+edge) intersects the closed window — half-open to
			// match cellOf's point-ownership convention.
			var want uint64
			for cx := uint32(0); cx < r.cells; cx++ {
				for cy := uint32(0); cy < r.cells; cy++ {
					minX := area.MinX + float64(cx)*r.cellW
					minY := area.MinY + float64(cy)*r.cellH
					if minX > w.MaxX || minX+r.cellW <= w.MinX || minY > w.MaxY || minY+r.cellH <= w.MinY {
						continue
					}
					want |= 1 << uint(r.shardOfCode(interleaveCell(cx, cy)))
				}
			}
			// The router may be conservative at cell boundaries (closed
			// bounds both ways here, so they should be identical) but must
			// never miss a shard the brute force needs.
			if got&want != want {
				t.Fatalf("n=%d window %v: mask %b misses shards in %b", n, w, got, want)
			}
			if got != want {
				t.Fatalf("n=%d window %v: mask %b != brute force %b", n, w, got, want)
			}
		}
	}
}

func interleaveCell(x, y uint32) uint64 {
	var code uint64
	for b := 0; b < 32; b++ {
		code |= uint64(x>>uint(b)&1) << uint(2*b)
		code |= uint64(y>>uint(b)&1) << uint(2*b+1)
	}
	return code
}

// TestOwnersOfCoverInvariant is the replica-coverage safety property behind
// scatter exactness: for any state and any queryable timestamp, if the
// predicted position is inside the area, the shard owning that position is
// in the registration mask (primary or replica).
func TestOwnersOfCoverInvariant(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{2, 3, 8, 64} {
		r, err := NewRouter(area, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			st := motion.State{
				ID:  motion.ObjectID(i),
				Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				Vel: geom.Vec{X: (rng.Float64() - 0.5) * 30, Y: (rng.Float64() - 0.5) * 30},
				Ref: motion.Tick(rng.Intn(20)),
			}
			now := motion.Tick(rng.Intn(15)) // sometimes before Ref
			primary, replicas := r.OwnersOf(st, now)
			mask := replicas | 1<<uint(primary)
			for qt := now; qt <= now+200; qt++ {
				p := st.PositionAt(qt)
				if !area.Contains(p) {
					continue
				}
				owner := r.Owner(p)
				if mask&(1<<uint(owner)) == 0 {
					t.Fatalf("n=%d state %+v now=%d: position %v at t=%d owned by shard %d outside mask %b",
						n, st, now, p, qt, owner, mask)
				}
			}
			if n > 1 && replicas != 0 && bits.OnesCount64(mask) > n {
				t.Fatalf("mask %b wider than shard count", mask)
			}
		}
	}
}

func TestRouterRejectsBadConfig(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	if _, err := NewRouter(area, 0); err == nil {
		t.Fatal("accepted 0 shards")
	}
	if _, err := NewRouter(area, 65); err == nil {
		t.Fatal("accepted 65 shards")
	}
	if _, err := NewRouter(geom.Rect{}, 2); err == nil {
		t.Fatal("accepted empty area")
	}
	if _, err := New(testConfig(1), 0); err == nil {
		t.Fatal("engine accepted 0 shards")
	}
	if _, err := New(testConfig(1), 65); err == nil {
		t.Fatal("engine accepted 65 shards")
	}
}
