package parallel

import (
	"sync"
	"sync/atomic"
	"testing"

	"pdr/internal/telemetry"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 17} {
		for _, n := range []int{0, 1, 2, 5, 64} {
			p := New(workers)
			seen := make([]atomic.Int64, n)
			p.ForEach(n, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestNewDefaultsToHardwareParallelism(t *testing.T) {
	if got := New(0).Workers(); got < 1 {
		t.Fatalf("New(0).Workers() = %d, want >= 1", got)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Fatalf("New(-3).Workers() = %d, want >= 1", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d, want 5", got)
	}
}

// TestNestedForEach exercises the caller-runs guarantee: fan-outs inside
// fan-outs must complete even when every helper slot is taken.
func TestNestedForEach(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.ForEach(8, func(i int) {
		p.ForEach(8, func(j int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested ForEach ran %d inner items, want 64", got)
	}
}

// TestConcurrentForEach runs more simultaneous fan-outs than the pool has
// slots; all must finish (the extras degrade to sequential).
func TestConcurrentForEach(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ForEach(100, func(i int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 800 {
		t.Fatalf("concurrent ForEach ran %d items, want 800", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	p := New(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.ForEach(32, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

func TestBusyGaugeReturnsToZero(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("pdr_parallel_workers_busy", "test")
	p := New(4)
	p.SetBusyGauge(g)
	p.ForEach(64, func(int) {})
	if v := g.Value(); v != 0 {
		t.Fatalf("busy gauge = %g after ForEach, want 0", v)
	}
}
