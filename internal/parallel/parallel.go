// Package parallel provides the bounded worker pool underneath the PDR
// engine's fan-out points: the per-timestamp snapshots of an interval query
// and the per-window plane sweeps of the refinement step. Both are
// embarrassingly parallel (paper Sec. 5.3 refines each candidate cell with an
// independent sweep; Definition 5 unions independent snapshots), so the only
// engineering problems are bounding the goroutine count and staying
// deadlock-free when fan-outs nest.
//
// The pool is a semaphore over helper goroutines with a caller-runs
// guarantee: ForEach always makes progress on the calling goroutine, and
// helpers are acquired non-blockingly. A nested ForEach that finds the pool
// saturated simply runs its items inline, so interval queries that fan out
// into refinement fan-outs can never deadlock, and the process-wide number
// of extra goroutines stays bounded by the pool size regardless of how many
// queries run concurrently.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pdr/internal/telemetry"
)

// Pool is a bounded supply of helper goroutines shared by every fan-out of
// one engine. The zero value is unusable; use New. All methods are safe for
// concurrent use.
type Pool struct {
	workers int
	// slots bounds the helper goroutines alive across all concurrent
	// ForEach calls; each helper holds one slot for its lifetime.
	slots chan struct{}
	// busy mirrors the number of running helpers into telemetry (nil until
	// SetBusyGauge; stored atomically so attachment needs no lock).
	busy atomic.Pointer[telemetry.Gauge]
}

// New builds a pool that runs at most workers items concurrently per
// ForEach (the caller's goroutine plus workers-1 helpers). workers <= 0
// selects GOMAXPROCS, the hardware parallelism available to the process;
// workers == 1 makes every ForEach run sequentially on the caller.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, slots: make(chan struct{}, workers-1)}
}

// Workers returns the configured parallelism.
func (p *Pool) Workers() int { return p.workers }

// SetBusyGauge mirrors the live helper count into g (pass nil to detach).
func (p *Pool) SetBusyGauge(g *telemetry.Gauge) { p.busy.Store(g) }

// ForEach runs fn(i) for every i in [0, n), using up to Workers()
// goroutines, and returns when all calls have finished. Work is distributed
// dynamically (an atomic cursor), so uneven item costs balance themselves.
// The caller's goroutine always participates: if the pool is saturated by
// other ForEach calls, the loop degrades to sequential execution instead of
// blocking, which keeps nested fan-outs deadlock-free. A panic in any fn is
// re-raised on the caller after the remaining workers drain.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var cursor atomic.Int64
	var panicked atomic.Pointer[recovered]
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				// First panic wins; later items are abandoned by the
				// cursor check below.
				panicked.CompareAndSwap(nil, &recovered{value: r})
				cursor.Store(int64(n))
			}
		}()
		for {
			i := cursor.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}

	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
spawn:
	for k := 0; k < helpers; k++ {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.slots
					wg.Done()
				}()
				if g := p.busy.Load(); g != nil {
					g.Add(1)
					defer g.Add(-1)
				}
				run()
			}()
		default:
			// Saturated: the caller-runs loop below covers everything.
			break spawn
		}
	}
	run()
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r.value)
	}
}

// ForEachSpan is ForEach with per-item tracing: item i runs bracketed by
// Begin/End on spans.At(i), so every fan-out records one child span per
// item with its own start offset and duration. Span slots come from the
// parent's Fork, pre-appended in index order — the tree shape is
// deterministic at any worker count, only the timings differ. A nil
// spans traces nothing and costs nothing (nil-receiver no-ops), so call
// sites need no "is tracing on" branches.
func (p *Pool) ForEachSpan(n int, spans telemetry.Spans, fn func(i int, sp *telemetry.Span)) {
	p.ForEach(n, func(i int) {
		sp := spans.At(i)
		sp.Begin()
		fn(i, sp)
		sp.End()
	})
}

// recovered boxes a recovered panic value for atomic hand-off.
type recovered struct{ value any }
