package core

import (
	"sync"
	"testing"

	"pdr/internal/motion"
)

// cachedConfig is testConfig with the result cache enabled at a size no
// equivalence workload can overflow.
func cachedConfig() Config {
	cfg := testConfig()
	cfg.CacheBytes = 16 << 20
	return cfg
}

// TestCachedEquivalenceAcrossWorkersAndTick is the acceptance matrix:
// workers 1/2/17 × cache on/off × every method, re-checked across an
// invalidating Tick. The cached server must answer bit-identically to the
// uncached one, cold and warm, and the warm hit must charge zero IOs.
func TestCachedEquivalenceAcrossWorkersAndTick(t *testing.T) {
	const n, seed = 1500, 7
	for _, w := range []int{1, 2, 17} {
		cfgU := testConfig()
		cfgU.Workers = w
		sU, gU := loadServer(t, cfgU, n, seed)
		cfgC := cachedConfig()
		cfgC.Workers = w
		sC, gC := loadServer(t, cfgC, n, seed)

		for phase := 0; phase < 2; phase++ { // before and after a Tick
			for _, m := range []Method{FR, PA, DHOptimistic, DHPessimistic, BruteForce} {
				q := Query{Rho: RelRhoTest(n, 3), L: 60, At: sU.Now() + 5}
				base, err := sU.Snapshot(q, m)
				if err != nil {
					t.Fatalf("workers=%d %v phase=%d uncached: %v", w, m, phase, err)
				}
				cold, err := sC.Snapshot(q, m)
				if err != nil {
					t.Fatalf("workers=%d %v phase=%d cold: %v", w, m, phase, err)
				}
				warm, err := sC.Snapshot(q, m)
				if err != nil {
					t.Fatalf("workers=%d %v phase=%d warm: %v", w, m, phase, err)
				}
				if cold.Cached {
					t.Errorf("workers=%d %v phase=%d: cold answer claims Cached", w, m, phase)
				}
				if !warm.Cached {
					t.Errorf("workers=%d %v phase=%d: warm answer not Cached", w, m, phase)
				}
				if warm.IOs != 0 || warm.IOTime != 0 {
					t.Errorf("workers=%d %v phase=%d: warm hit charged %d IOs", w, m, phase, warm.IOs)
				}
				for name, got := range map[string]*Result{"cold": cold, "warm": warm} {
					if !regionsEqual(base.Region, got.Region) {
						t.Errorf("workers=%d %v phase=%d: %s region differs from uncached", w, m, phase, name)
					}
					if got.Accepted != base.Accepted || got.Rejected != base.Rejected ||
						got.Candidates != base.Candidates || got.ObjectsRetrieved != base.ObjectsRetrieved {
						t.Errorf("workers=%d %v phase=%d: %s counters differ from uncached", w, m, phase, name)
					}
				}
			}
			if err := sU.Tick(gU.Now()+1, gU.Advance()); err != nil {
				t.Fatal(err)
			}
			if err := sC.Tick(gC.Now()+1, gC.Advance()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCacheInvalidationOnMutations pins the epoch contract: every Tick,
// Apply, and Load bumps the epoch — even a failing Apply, since a partial
// application may already have mutated the summaries — and a bumped epoch
// turns the next identical query into a miss.
func TestCacheInvalidationOnMutations(t *testing.T) {
	s, g := loadServer(t, cachedConfig(), 800, 13)
	q := Query{Rho: RelRhoTest(800, 2), L: 60, At: 5}

	missesAfter := func(step string, wantEpoch uint64) int64 {
		t.Helper()
		if got := s.Epoch(); got != wantEpoch {
			t.Fatalf("%s: epoch = %d, want %d", step, got, wantEpoch)
		}
		if _, err := s.Snapshot(q, FR); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		return s.CacheStats().Misses
	}

	e0 := s.Epoch() // Load in loadServer already bumped once
	if e0 != 1 {
		t.Fatalf("epoch after initial Load = %d, want 1", e0)
	}
	m0 := missesAfter("cold", e0)
	if m1 := missesAfter("warm", e0); m1 != m0 {
		t.Fatalf("repeat under one epoch evaluated again (misses %d -> %d)", m0, m1)
	}

	if err := s.Tick(s.Now()+1, g.Advance()); err != nil {
		t.Fatal(err)
	}
	m2 := missesAfter("after tick", e0+1)
	if m2 != m0+1 {
		t.Fatalf("tick did not invalidate: misses %d, want %d", m2, m0+1)
	}

	if err := s.Load(nil); err != nil { // empty load: mutation with no updates
		t.Fatal(err)
	}
	m3 := missesAfter("after load", e0+2)
	if m3 != m2+1 {
		t.Fatalf("load did not invalidate: misses %d, want %d", m3, m2+1)
	}

	if err := s.Apply(motion.Update{Kind: motion.UpdateKind(99)}); err == nil {
		t.Fatal("bogus update kind must be rejected")
	}
	m4 := missesAfter("after failed apply", e0+3)
	if m4 != m3+1 {
		t.Fatalf("failed apply did not invalidate: misses %d, want %d", m4, m3+1)
	}
}

// TestCacheDisabledByDefault: CacheBytes=0 keeps the pre-cache behavior —
// no Cache handle, zero stats, and no answer ever claims Cached.
func TestCacheDisabledByDefault(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 800, 13)
	if s.Cache() != nil {
		t.Fatal("CacheBytes=0 must not build a cache")
	}
	q := Query{Rho: RelRhoTest(800, 2), L: 60, At: 5}
	for i := 0; i < 2; i++ {
		res, err := s.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached || res.CachedCPU != 0 {
			t.Fatalf("query %d on a cacheless server claims Cached", i)
		}
	}
	if st := s.CacheStats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("cacheless stats = %+v, want zeros", st)
	}
}

// TestCacheSingleflightStress fires N goroutines at the same cold query
// under -race: exactly one evaluation must happen per cold key — everyone
// else hits the resident entry or shares the winner's flight — and all N
// answers must be identical. Rounds repeat on fresh keys until at least one
// flight was actually shared, so singleflight_shared_total is exercised, not
// just the hit path.
func TestCacheSingleflightStress(t *testing.T) {
	cfg := cachedConfig()
	cfg.Workers = 4
	s, _ := loadServer(t, cfg, 1500, 3)

	const goroutines = 8
	const maxRounds = 20
	for round := 0; round < maxRounds; round++ {
		q := Query{Rho: RelRhoTest(1500, 3), L: 60, At: motion.Tick(round % 10)}
		before := s.CacheStats()
		results := make([]*Result, goroutines)
		errs := make([]error, goroutines)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				results[i], errs[i] = s.Snapshot(q, FR)
			}(i)
		}
		close(start)
		wg.Wait()

		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d goroutine %d: %v", round, i, err)
			}
		}
		for i := 1; i < goroutines; i++ {
			if !regionsEqual(results[0].Region, results[i].Region) {
				t.Fatalf("round %d: goroutine %d answered differently", round, i)
			}
		}
		after := s.CacheStats()
		// Keys repeat across rounds (At cycles mod 10), so only assert the
		// per-round deltas: at most one evaluation, everything else reused.
		if d := after.Misses - before.Misses; d > 1 {
			t.Fatalf("round %d: %d evaluations for one key", round, d)
		}
		if served := after.Misses + after.Hits + after.Shared -
			(before.Misses + before.Hits + before.Shared); served != goroutines {
			t.Fatalf("round %d: cache accounted %d lookups, want %d", round, served, goroutines)
		}
		if after.Shared > 0 {
			return // a flight was provably shared; the stress did its job
		}
	}
	t.Fatalf("no flight shared across %d rounds of %d concurrent identical queries", maxRounds, goroutines)
}

// TestCacheSlidingWindowInterval pins the tentpole's interval reuse: the
// window [t+1, hi+1] right after [t, hi] recomputes only the one new
// timestamp, and a fully warm re-run is served entirely from cache.
func TestCacheSlidingWindowInterval(t *testing.T) {
	cfg := cachedConfig()
	cfg.Workers = 4
	s, _ := loadServer(t, cfg, 1500, 11)
	sU, _ := loadServer(t, testConfig(), 1500, 11) // uncached twin

	q := Query{Rho: RelRhoTest(1500, 3), L: 60, At: 5}
	const hi = 15 // 11 timestamps
	iv1, err := s.Interval(q, hi, FR)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s.CacheStats()
	if st1.Misses != hi-5+1 {
		t.Fatalf("cold interval evaluated %d timestamps, want %d", st1.Misses, hi-5+1)
	}
	if iv1.Cached {
		t.Error("cold interval claims Cached")
	}

	// Slide the window by one: only t=16 is new.
	q2 := q
	q2.At = 6
	iv2, err := s.Interval(q2, hi+1, FR)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s.CacheStats()
	if d := st2.Misses - st1.Misses; d != 1 {
		t.Errorf("sliding window evaluated %d timestamps, want 1", d)
	}
	if reused := st2.Hits + st2.Shared - st1.Hits - st1.Shared; reused != hi-6+1 {
		t.Errorf("sliding window reused %d timestamps, want %d", reused, hi-6+1)
	}
	base2, err := sU.Interval(q2, hi+1, FR)
	if err != nil {
		t.Fatal(err)
	}
	if !regionsEqual(base2.Region, iv2.Region) {
		t.Error("slid cached interval differs from the uncached answer")
	}

	// A fully warm re-run is served from cache end to end.
	iv3, err := s.Interval(q2, hi+1, FR)
	if err != nil {
		t.Fatal(err)
	}
	if !iv3.Cached || iv3.CachedCPU == 0 {
		t.Errorf("warm interval: Cached=%v CachedCPU=%v, want fully cached", iv3.Cached, iv3.CachedCPU)
	}
	if iv3.IOs != 0 {
		t.Errorf("warm interval charged %d IOs", iv3.IOs)
	}
	if !regionsEqual(base2.Region, iv3.Region) {
		t.Error("warm cached interval differs from the uncached answer")
	}
	if iv3.Wall == 0 || iv1.Wall == 0 {
		t.Error("interval Wall must be recorded")
	}
}

// TestSnapshotWallEqualsCPU: a sequential snapshot's Wall is its CPU; an
// interval's Wall is its own stopwatch, not the summed sub-snapshot CPU.
func TestSnapshotWallEqualsCPU(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 800, 13)
	q := Query{Rho: RelRhoTest(800, 2), L: 60, At: 5}
	res, err := s.Snapshot(q, FR)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall != res.CPU {
		t.Errorf("snapshot Wall %v != CPU %v", res.Wall, res.CPU)
	}
	iv, err := s.Interval(q, 10, FR)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Wall == 0 {
		t.Error("interval Wall not recorded")
	}
}
