package core

import (
	"strings"
	"sync"
	"testing"

	"pdr/internal/motion"
)

// TestConcurrentQueryTickStress fires a mix of Snapshot, Interval, and
// Recommend readers concurrently with a writer advancing the clock. It
// asserts nothing about answers — its job is to give the race detector a
// workload where the engine lock, the pool's LRU, the sweep scratch pool,
// and the worker pool all contend at once. Readers tolerate engine
// rejections (the writer moves the clock under them, so a stale q.At can
// fall outside the horizon) but not unexpected failures or panics.
func TestConcurrentQueryTickStress(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 4
	s, g := loadServer(t, cfg, 1500, 3)

	const (
		readers    = 6
		iterations = 8
		ticks      = 6
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				at := s.Now() // may be stale by the time the query runs; that's the point
				q := Query{Rho: RelRhoTest(1500, 3), L: 60, At: at + motion.Tick(r%3)}
				switch r % 3 {
				case 0:
					if _, err := s.Snapshot(q, FR); err != nil && !isEngineReject(err) {
						t.Errorf("reader %d: snapshot: %v", r, err)
					}
				case 1:
					if _, err := s.Interval(q, q.At+3, DHOptimistic); err != nil && !isEngineReject(err) {
						t.Errorf("reader %d: interval: %v", r, err)
					}
				case 2:
					if _, err := s.Recommend(q, true); err != nil && !isEngineReject(err) {
						t.Errorf("reader %d: recommend: %v", r, err)
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			if err := s.Tick(s.Now()+1, g.Advance()); err != nil {
				t.Errorf("tick: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// isEngineReject reports whether err is an orderly engine rejection (all of
// which carry the "core:" prefix) as opposed to a crash surfaced as an error.
func isEngineReject(err error) bool {
	return strings.HasPrefix(err.Error(), "core:")
}
