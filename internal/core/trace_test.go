package core

import (
	"strings"
	"testing"

	"pdr/internal/telemetry"
)

// skeleton renders the span tree's shape — names and nesting, no timings —
// so trees from different runs can be compared for structural equality.
func skeleton(sp *telemetry.Span, depth int, b *strings.Builder) {
	b.WriteString(strings.Repeat(" ", depth))
	b.WriteString(sp.Name)
	b.WriteByte('\n')
	for _, c := range sp.Children {
		skeleton(c, depth+1, b)
	}
}

func treeShape(tr *telemetry.Trace) string {
	var b strings.Builder
	skeleton(tr.Root(), 0, &b)
	return b.String()
}

// TestTracedSnapshotDeterministicTree: the span tree produced by a traced
// snapshot must have the same shape at any worker-pool size — Fork
// pre-allocates child slots in index order, so only timings may differ —
// and the answer must be bit-identical to the untraced run.
func TestTracedSnapshotDeterministicTree(t *testing.T) {
	servers := loadWorkers(t, 2500, 11, 1, 2, 17)
	q := Query{Rho: RelRhoTest(2500, 3), L: 60, At: 10}
	for _, m := range []Method{FR, BruteForce, DHOptimistic, PA} {
		var wantShape string
		var wantRegion *Result
		for i, s := range servers {
			untraced, err := s.Snapshot(q, m)
			if err != nil {
				t.Fatalf("%v untraced: %v", m, err)
			}
			tr := telemetry.NewTrace("test")
			traced, err := s.SnapshotTraced(q, m, tr.Root())
			tr.End()
			if err != nil {
				t.Fatalf("%v traced: %v", m, err)
			}
			if !regionsEqual(traced.Region, untraced.Region) {
				t.Fatalf("%v: traced answer differs from untraced", m)
			}
			shape := treeShape(tr)
			if i == 0 {
				wantShape, wantRegion = shape, traced
				continue
			}
			if shape != wantShape {
				t.Errorf("%v: tree shape differs between worker counts:\n--- workers=1\n%s--- this run\n%s", m, wantShape, shape)
			}
			if !regionsEqual(traced.Region, wantRegion.Region) {
				t.Errorf("%v: answer differs between worker counts", m)
			}
		}
		if strings.Count(wantShape, "\n") < 2 {
			t.Errorf("%v: trace has no engine spans:\n%s", m, wantShape)
		}
	}
}

// TestTracedIntervalDeterministicTree: the interval fan-out forks one child
// slot per snapshot timestamp; the tree shape and the answer must be
// independent of the worker count.
func TestTracedIntervalDeterministicTree(t *testing.T) {
	servers := loadWorkers(t, 2500, 11, 1, 2, 17)
	q := Query{Rho: RelRhoTest(2500, 3), L: 60, At: 5}
	var wantShape string
	var want *Result
	for i, s := range servers {
		untraced, err := s.Interval(q, 12, FR)
		if err != nil {
			t.Fatal(err)
		}
		// The full interval tree (8 snapshots x ~1k windows) exceeds the
		// default span budget; truncation order is timing-dependent by
		// design, so shape comparison needs headroom.
		tr := telemetry.NewTraceWithBudget("test", 1<<20)
		traced, err := s.IntervalTraced(q, 12, FR, tr.Root())
		tr.End()
		if err != nil {
			t.Fatal(err)
		}
		if !regionsEqual(traced.Region, untraced.Region) {
			t.Fatal("traced interval answer differs from untraced")
		}
		shape := treeShape(tr)
		if i == 0 {
			wantShape, want = shape, traced
			continue
		}
		if shape != wantShape {
			t.Errorf("interval tree shape differs between worker counts:\n--- workers=1\n%s--- this run\n%s", wantShape, shape)
		}
		if !regionsEqual(traced.Region, want.Region) {
			t.Errorf("interval answer differs between worker counts")
		}
	}
	// One "snapshot" fork slot per timestamp in [5, 12].
	if got := strings.Count(wantShape, " snapshot\n"); got != 8 {
		t.Errorf("interval trace has %d snapshot slots, want 8:\n%s", got, wantShape)
	}
}

// TestTracedBudgetTruncationKeepsAnswer: even when the span budget
// truncates the tree mid-query, the answer is unchanged — spans are
// observability, never control flow.
func TestTracedBudgetTruncationKeepsAnswer(t *testing.T) {
	servers := loadWorkers(t, 2500, 11, 4)
	s := servers[0]
	q := Query{Rho: RelRhoTest(2500, 3), L: 60, At: 10}
	want, err := s.Snapshot(q, FR)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTraceWithBudget("test", 3) // root + 2 spans only
	got, err := s.SnapshotTraced(q, FR, tr.Root())
	tr.End()
	if err != nil {
		t.Fatal(err)
	}
	if !regionsEqual(got.Region, want.Region) {
		t.Fatal("budget-truncated traced answer differs from untraced")
	}
	if n := tr.Root().CountSpans(); n > 3 {
		t.Fatalf("budget 3 produced %d spans", n)
	}
}
