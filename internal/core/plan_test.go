package core

import (
	"strings"
	"testing"
)

func TestRecommendExactAlwaysFR(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 500, 51)
	p, err := s.Recommend(Query{Rho: RelRhoTest(500, 2), L: 60, At: 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != FR {
		t.Errorf("exact mode recommended %v", p.Method)
	}
}

func TestRecommendMismatchedLFallsBackToFR(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 500, 52)
	p, err := s.Recommend(Query{Rho: RelRhoTest(500, 2), L: 100, At: 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != FR {
		t.Errorf("mismatched l recommended %v", p.Method)
	}
	if !strings.Contains(p.Reason, "l=") {
		t.Errorf("reason should explain the l mismatch: %q", p.Reason)
	}
}

func TestRecommendEmptyServerFR(t *testing.T) {
	s, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Recommend(Query{Rho: 0.001, L: 60, At: 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != FR || p.Candidates != 0 {
		t.Errorf("empty server plan: %+v", p)
	}
}

func TestRecommendHeavyWorkloadPA(t *testing.T) {
	// A large clustered workload at a threshold with many candidates: the
	// estimated refinement volume must push the planner to PA.
	s, _ := loadServer(t, testConfig(), 30000, 53)
	q := Query{Rho: RelRhoTest(30000, 1), L: 60, At: 0}
	p, err := s.Recommend(q, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != PA {
		t.Errorf("heavy workload recommended %v (refine=%.0f budget=%.0f, %d candidates)",
			p.Method, p.RefineObjects, p.PABudget, p.Candidates)
	}
	if p.RefineObjects <= p.PABudget {
		t.Errorf("expected refine estimate above budget: %+v", p)
	}
	// The recommendation must actually be executable.
	if _, err := s.Snapshot(q, p.Method); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendValidation(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 100, 54)
	if _, err := s.Recommend(Query{Rho: -1, L: 60, At: 0}, true); err == nil {
		t.Error("invalid query must be rejected")
	}
}
