package core

import (
	"fmt"
	"sync"
	"time"

	"pdr/internal/cache"
	"pdr/internal/dh"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/stopwatch"
	"pdr/internal/storage"
	"pdr/internal/sweep"
	"pdr/internal/telemetry"
)

// frScratch holds one FR snapshot's scatter/gather slices: the per-window
// result slots the refinement fan-out writes and the merge loop drains. The
// slices are request-scoped (no Result retains them), so they pool across
// queries; region slots are nil-ed during the merge so a pooled buffer never
// pins another query's answer.
type frScratch struct {
	parts     []geom.Region
	retrieved []int
}

var frScratches = sync.Pool{New: func() any { return new(frScratch) }}

// intervalScratch is frScratch for the interval fan-out: per-timestamp
// sub-result and error slots.
type intervalScratch struct {
	subs []*Result
	errs []error
}

var intervalScratches = sync.Pool{New: func() any { return new(intervalScratch) }}

// pointBufs pools the per-window point-gather buffers of the refinement
// workers (sweep.DenseRects reads the points and retains nothing).
var pointBufs = sync.Pool{New: func() any { return new([]geom.Point) }}

// growRegions returns buf resized to n nil slots, reallocating only when the
// capacity is insufficient.
func growRegions(buf []geom.Region, n int) []geom.Region {
	if cap(buf) < n {
		return make([]geom.Region, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = nil
	}
	return buf
}

// growInts is growRegions for int slots.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growResults is growRegions for sub-result slots.
func growResults(buf []*Result, n int) []*Result {
	if cap(buf) < n {
		return make([]*Result, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = nil
	}
	return buf
}

// growErrors is growRegions for error slots.
func growErrors(buf []error, n int) []error {
	if cap(buf) < n {
		return make([]error, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = nil
	}
	return buf
}

// releaseIntervalScratch clears the slot pointers (so the pool never pins
// sub-results or errors) and returns the scratch.
func releaseIntervalScratch(sc *intervalScratch) {
	for i := range sc.subs {
		sc.subs[i] = nil
	}
	for i := range sc.errs {
		sc.errs[i] = nil
	}
	intervalScratches.Put(sc)
}

// Method selects the query evaluation strategy.
type Method int

const (
	// FR is the exact filtering-refinement method (paper Sec. 5).
	FR Method = iota
	// PA is the Chebyshev polynomial approximation (paper Sec. 6).
	PA
	// DHOptimistic answers with accepted plus candidate histogram cells
	// (no false negatives; paper Sec. 7.2).
	DHOptimistic
	// DHPessimistic answers with accepted cells only (no false positives).
	DHPessimistic
	// BruteForce sweeps all live objects over the whole area — the exact
	// ground truth, independent of the histogram and the index.
	BruteForce
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case FR:
		return "FR"
	case PA:
		return "PA"
	case DHOptimistic:
		return "DH-opt"
	case DHPessimistic:
		return "DH-pess"
	case BruteForce:
		return "BF"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Query is a snapshot PDR query (rho, l, qt): all regions every point of
// which has at least rho*l^2 objects in its l-square neighborhood at
// timestamp qt.
type Query struct {
	Rho float64
	L   float64
	At  motion.Tick
}

// Result carries a query answer and its measured costs.
type Result struct {
	Method Method
	Region geom.Region
	// CPU is the measured computation time — for interval queries the
	// *summed* work across per-timestamp snapshots, which exceeds elapsed
	// time when snapshots run on the worker pool.
	CPU time.Duration
	// Wall is the elapsed wall-clock time of the call: equal to CPU for a
	// sequential snapshot, below the summed CPU for a parallel interval.
	// Speedups read directly off this field.
	Wall time.Duration
	// Cached reports the answer was served from the result cache (for an
	// interval: every per-timestamp snapshot was). CachedCPU accumulates the
	// evaluation cost recorded when the reused entries were first computed —
	// the work the cache saved. Cached answers charge zero IOs.
	Cached    bool
	CachedCPU time.Duration
	// IOs is the number of physical page accesses the query incurred
	// (only FR touches the index); IOTime charges them at the configured
	// per-access cost; Total = CPU + IOTime, the paper's total query cost.
	IOs    int64
	IOTime time.Duration
	// Filter-step diagnostics (FR and the DH baselines).
	Accepted, Rejected, Candidates int
	// ObjectsRetrieved counts index results fetched during refinement.
	ObjectsRetrieved int
	// Phases is the trace breakdown of the evaluation (filter, refine,
	// pa-eval, union); interval queries merge per-snapshot spans by name.
	Phases []telemetry.PhaseSpan
}

// Total returns CPU + IOTime.
func (r *Result) Total() time.Duration { return r.CPU + r.IOTime }

func (s *Server) validateLocked(q Query) error {
	if q.Rho < 0 {
		return fmt.Errorf("core: negative density threshold %g", q.Rho)
	}
	if q.L <= 0 {
		return fmt.Errorf("core: non-positive neighborhood edge %g", q.L)
	}
	if q.At < s.now || q.At > s.now+s.Horizon() {
		return fmt.Errorf("core: query time %d outside [%d, %d]", q.At, s.now, s.now+s.Horizon())
	}
	return nil
}

// Snapshot answers the snapshot PDR query q with the given method. Any
// number of Snapshot/Interval calls may run concurrently; they serialize
// only against mutations (Tick, Apply, Load).
func (s *Server) Snapshot(q Query, m Method) (*Result, error) {
	return s.SnapshotTraced(q, m, nil)
}

// SnapshotTraced is Snapshot recording its evaluation as a child span of
// sp: the phase breakdown, the per-window refinement fan-out, and cache
// outcomes all land in the span tree. A nil sp traces nothing and
// allocates nothing — Snapshot simply passes nil.
//
// pdr:hot — query-path root for the hotpath analyzer family (docs/LINT.md).
func (s *Server) SnapshotTraced(q Query, m Method, sp *telemetry.Span) (*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	esp := sp.Child("snapshot")
	esp.SetAttr("method", m.String())
	esp.SetAttrInt("at", int64(q.At))
	res, err := s.snapshotLocked(q, m, true, esp)
	esp.End()
	if err != nil {
		return nil, err
	}
	if s.met != nil {
		s.met.observe(res)
	}
	return res, nil
}

// snapshotLocked answers one snapshot query under the (read) lock, serving
// from the result cache when one is configured. Between mutations the answer
// for (rho, l, qt, method) is immutable, so it is memoized under the current
// epoch: a hit returns the stored region and filter counters with zero IOs
// (no page is touched) and CachedCPU recording the evaluation the cache
// saved, while concurrent identical queries collapse onto one evaluation via
// the cache's singleflight layer. Cached and computed answers are
// bit-identical — the cache stores deep copies, so neither side can mutate
// the other's region.
func (s *Server) snapshotLocked(q Query, m Method, trackIO bool, sp *telemetry.Span) (*Result, error) {
	if err := s.validateLocked(q); err != nil {
		if s.met != nil {
			s.met.errors.Inc()
		}
		return nil, err
	}
	if s.qcache == nil {
		return s.evaluateLocked(q, m, trackIO, sp)
	}
	k := cache.Key{Epoch: s.epoch, At: int64(q.At), Rho: q.Rho, L: q.L, Method: uint8(m)}
	sw := stopwatch.Start()
	var computed *Result // set only when this call wins the flight
	ent, outcome, err := s.qcache.Do(k, func() (*cache.Entry, error) {
		res, err := s.evaluateLocked(q, m, trackIO, sp)
		if err != nil {
			return nil, err
		}
		computed = res
		return &cache.Entry{
			Region:           res.Region,
			CPU:              res.CPU,
			Accepted:         res.Accepted,
			Rejected:         res.Rejected,
			Candidates:       res.Candidates,
			ObjectsRetrieved: res.ObjectsRetrieved,
			TraceID:          uint64(sp.TraceID()),
		}, nil
	})
	if err != nil {
		// A shared error still failed this caller's query; evaluation
		// errors are counted once per failed call, winner and waiters alike.
		if outcome != cache.Computed && s.met != nil {
			s.met.errors.Inc()
		}
		return nil, err
	}
	if outcome == cache.Computed {
		return computed, nil
	}
	elapsed := sw.Elapsed()
	// The answer came from the cache (or a shared flight): the span tree
	// records the outcome plus the trace that originally paid for the
	// evaluation, so a fast cached query links to the slow one that built
	// its answer.
	csp := sp.Child("cache")
	csp.SetAttr("outcome", outcome.String())
	if csp != nil && ent.TraceID != 0 {
		csp.SetAttr("sourceTrace", telemetry.TraceID(ent.TraceID).String())
	}
	csp.End()
	return &Result{
		Method:           m,
		Region:           ent.Region,
		CPU:              elapsed,
		Wall:             elapsed,
		Cached:           true,
		CachedCPU:        ent.CPU,
		Accepted:         ent.Accepted,
		Rejected:         ent.Rejected,
		Candidates:       ent.Candidates,
		ObjectsRetrieved: ent.ObjectsRetrieved,
		Phases:           []telemetry.PhaseSpan{{Name: "cache", Duration: elapsed}},
	}, nil
}

// evaluateLocked runs one snapshot evaluation under the (read) lock. With
// trackIO it charges the query the pool's physical-I/O delta across its
// evaluation — exact in isolation, approximate attribution when other
// queries overlap (the pool counters are engine-global). Interval fan-outs
// pass trackIO=false and charge I/O once at the interval level instead, so
// concurrent sub-snapshots never double-count each other's page accesses.
func (s *Server) evaluateLocked(q Query, m Method, trackIO bool, sp *telemetry.Span) (*Result, error) {
	res := &Result{Method: m}
	var ioBefore storage.Stats
	if trackIO {
		ioBefore = s.pool.Stats()
	}
	sw := stopwatch.Start()
	var err error
	switch m {
	case FR:
		err = s.snapshotFRLocked(q, res, sp)
	case PA:
		err = s.snapshotPALocked(q, res, sp)
	case DHOptimistic, DHPessimistic:
		err = s.snapshotDHLocked(q, m, res, sp)
	case BruteForce:
		s.snapshotBFLocked(q, res, sp)
	default:
		err = fmt.Errorf("core: unknown method %d", m)
	}
	if err != nil {
		if s.met != nil {
			s.met.errors.Inc()
		}
		return nil, err
	}
	res.CPU = sw.Elapsed()
	res.Wall = res.CPU // a snapshot evaluation is one sequential stopwatch
	if trackIO {
		res.IOs = s.pool.Stats().Sub(ioBefore).RandomIOs()
		res.IOTime = time.Duration(res.IOs) * s.cfg.IOCharge
	}
	sp.SetAttrInt("ios", res.IOs)
	// The flat phase breakdown is the span tree's first level, folded by
	// name; untraced evaluations (nil sp) report no phases.
	res.Phases = sp.PhaseSummary()
	return res, nil
}

// snapshotFRLocked runs filtering over the histogram and plane-sweep
// refinement over index range results for every candidate window. The paper
// refines cell by cell; with Config.MergeCandidates adjacent candidate cells
// are coalesced into maximal windows first, saving duplicate index
// retrievals where candidates cluster (the grown squares of neighboring
// cells overlap heavily). Both modes return identical regions.
//
// Refinement is the method's hot loop and each window is independent
// (Sec. 5.3's per-cell sweeps share nothing), so the windows fan out over
// the worker pool: every worker retrieves its window's objects from the
// index and runs the plane sweep with pooled scratch. Results land in a
// per-window slot and are merged in window order, so the output is
// byte-identical to the sequential path at any worker count.
func (s *Server) snapshotFRLocked(q Query, res *Result, sp *telemetry.Span) error {
	ph := sp.Child("filter")
	fr, err := s.hist.Filter(q.At, q.Rho, q.L)
	if err != nil {
		return err
	}
	res.Accepted, res.Rejected, res.Candidates = fr.CountMarks()
	region := fr.AcceptedRegion()

	cands := fr.Candidates()
	fr.Release()
	windows := make(geom.Region, 0, len(cands))
	for _, c := range cands {
		windows.Add(s.hist.CellRect(c.I, c.J))
	}
	if s.cfg.MergeCandidates {
		windows = geom.CoalesceInPlace(windows)
	}
	ph.SetAttrInt("accepted", int64(res.Accepted))
	ph.SetAttrInt("rejected", int64(res.Rejected))
	ph.SetAttrInt("candidates", int64(res.Candidates))
	ph.End()
	ph = sp.Child("refine")
	ph.SetAttrInt("windows", int64(len(windows)))
	if s.met != nil {
		s.met.refineFanout.Observe(float64(len(windows)))
	}
	// One child span per window, pre-allocated in window order so the tree
	// shape is identical at any worker count; each worker fills only its
	// own slot. The slots themselves come from the scatter/gather pool.
	slots := ph.Fork("window", len(windows))
	sc := frScratches.Get().(*frScratch)
	sc.parts = growRegions(sc.parts, len(windows))
	sc.retrieved = growInts(sc.retrieved, len(windows))
	parts, retrieved := sc.parts, sc.retrieved
	s.par.ForEachSpan(len(windows), slots, func(wi int, wsp *telemetry.Span) {
		cell := windows[wi]
		grown := cell.Grow(q.L / 2)
		pb := pointBufs.Get().(*[]geom.Point)
		points := (*pb)[:0]
		s.index.Search(grown, q.At, func(st motion.State) bool {
			p := st.PositionAt(q.At)
			if s.cfg.Area.Contains(p) {
				points = append(points, p)
			}
			return true
		})
		retrieved[wi] = len(points)
		wsp.SetAttrInt("retrieved", int64(len(points)))
		parts[wi] = sweep.DenseRects(points, cell, q.Rho, q.L)
		*pb = points
		pointBufs.Put(pb)
	})
	for wi := range parts {
		res.ObjectsRetrieved += retrieved[wi]
		region = append(region, parts[wi]...)
		parts[wi] = nil // do not pin this window's region in the pool
	}
	frScratches.Put(sc)
	ph.End()
	ph = sp.Child("union")
	// region is appended fresh above (AcceptedRegion allocates per call), so
	// the union coalesces in place.
	res.Region = geom.CoalesceInPlace(region)
	ph.End()
	return nil
}

func (s *Server) snapshotPALocked(q Query, res *Result, sp *telemetry.Span) error {
	if s.surf == nil {
		return fmt.Errorf("core: PA surfaces are disabled on this server (Config.DisablePA)")
	}
	// lint:ignore floateq config identity: the surfaces answer only the
	// exact l they were built for; a nearly-equal l must be rejected too.
	if q.L != s.surf.L() {
		return fmt.Errorf("core: PA surfaces are built for l=%g, query asked l=%g (the approximation method fixes l in advance; use FR for other edges)",
			s.surf.L(), q.L)
	}
	ph := sp.Child("pa-eval")
	region, err := s.surf.DenseRegion(q.At, q.Rho)
	if err != nil {
		return err
	}
	res.Region = region
	ph.End()
	return nil
}

func (s *Server) snapshotDHLocked(q Query, m Method, res *Result, sp *telemetry.Span) error {
	ph := sp.Child("filter")
	fr, err := s.hist.Filter(q.At, q.Rho, q.L)
	if err != nil {
		return err
	}
	res.Accepted, res.Rejected, res.Candidates = fr.CountMarks()
	ph.SetAttrInt("accepted", int64(res.Accepted))
	ph.SetAttrInt("rejected", int64(res.Rejected))
	ph.SetAttrInt("candidates", int64(res.Candidates))
	ph.End()
	ph = sp.Child("union")
	if m == DHOptimistic {
		res.Region = fr.OptimisticRegion()
	} else {
		res.Region = fr.PessimisticRegion()
	}
	fr.Release()
	ph.End()
	return nil
}

func (s *Server) snapshotBFLocked(q Query, res *Result, sp *telemetry.Span) {
	ph := sp.Child("refine")
	pb := pointBufs.Get().(*[]geom.Point)
	points := (*pb)[:0]
	for _, st := range s.live {
		p := st.PositionAt(q.At)
		if s.cfg.Area.Contains(p) {
			points = append(points, p)
		}
	}
	res.ObjectsRetrieved = len(points)
	ph.SetAttrInt("retrieved", int64(res.ObjectsRetrieved))
	ph.End()
	ph = sp.Child("union")
	res.Region = geom.CoalesceInPlace(sweep.DenseRects(points, s.cfg.Area, q.Rho, q.L))
	*pb = points
	pointBufs.Put(pb)
	ph.End()
}

// PastSnapshot answers the snapshot PDR query q for a timestamp in the
// past, exactly, from the movement archive plus the still-active movements
// that were already current at q.At. Requires Config.KeepHistory; q.At must
// precede the server clock (use Snapshot for now and the future).
func (s *Server) PastSnapshot(q Query) (*Result, error) {
	return s.PastSnapshotTraced(q, nil)
}

// PastSnapshotTraced is PastSnapshot recording its evaluation as a child
// span of sp (nil traces nothing).
func (s *Server) PastSnapshotTraced(q Query, sp *telemetry.Span) (*Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.hst == nil {
		return nil, fmt.Errorf("core: history is disabled (set Config.KeepHistory)")
	}
	if q.At >= s.now {
		return nil, fmt.Errorf("core: PastSnapshot is for t < now (%d); use Snapshot", s.now)
	}
	if q.Rho < 0 || q.L <= 0 {
		return nil, fmt.Errorf("core: bad query parameters rho=%g l=%g", q.Rho, q.L)
	}
	res := &Result{Method: BruteForce}
	esp := sp.Child("past")
	esp.SetAttrInt("at", int64(q.At))
	sw := stopwatch.Start()
	ph := esp.Child("refine")
	points := s.hst.PointsAt(q.At)
	for _, st := range s.live {
		if st.Ref > q.At {
			continue // this movement did not exist yet at q.At
		}
		p := st.PositionAt(q.At)
		if s.cfg.Area.Contains(p) {
			points = append(points, p)
		}
	}
	res.ObjectsRetrieved = len(points)
	ph.SetAttrInt("retrieved", int64(res.ObjectsRetrieved))
	ph.End()
	ph = esp.Child("union")
	res.Region = geom.CoalesceInPlace(sweep.DenseRects(points, s.cfg.Area, q.Rho, q.L))
	ph.End()
	res.CPU = sw.Elapsed()
	res.Wall = res.CPU
	res.Phases = esp.PhaseSummary()
	esp.End()
	return res, nil
}

// Interval answers the interval PDR query (rho, l, [q.At, until]) — the
// union of the snapshot answers over every timestamp in the range
// (Definition 5) — accumulating costs across snapshots.
//
// The per-timestamp snapshots are independent (each reads a different
// histogram slot and projects the same index to a different time), so they
// fan out over the worker pool and their results merge deterministically:
// sub-results land in per-timestamp slots, are concatenated in timestamp
// order, and the union is coalesced — identical output at any worker count.
// Costs aggregate as before: CPU is the summed computation across snapshots
// (total work, not wall time), and I/O is charged once from the pool delta
// across the whole fan-out so overlapping sub-snapshots never double-count
// a page access.
func (s *Server) Interval(q Query, until motion.Tick, m Method) (*Result, error) {
	return s.IntervalTraced(q, until, m, nil)
}

// IntervalTraced is Interval recording the fan-out as a span subtree of
// sp: one "snapshot" child per timestamp, pre-allocated in timestamp
// order so the tree shape is deterministic at any worker count. A nil sp
// traces nothing and allocates nothing.
//
// pdr:hot — query-path root for the hotpath analyzer family (docs/LINT.md).
func (s *Server) IntervalTraced(q Query, until motion.Tick, m Method, sp *telemetry.Span) (*Result, error) {
	if until < q.At {
		return nil, fmt.Errorf("core: empty interval [%d, %d]", q.At, until)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sw := stopwatch.Start()
	n := int(until-q.At) + 1
	isp := sp.Child("interval")
	isp.SetAttr("method", m.String())
	isp.SetAttrInt("snapshots", int64(n))
	ioBefore := s.pool.Stats()
	sc := intervalScratches.Get().(*intervalScratch)
	subs := growResults(sc.subs, n)
	errs := growErrors(sc.errs, n)
	sc.subs, sc.errs = subs, errs
	slots := isp.Fork("snapshot", n)
	s.par.ForEachSpan(n, slots, func(i int, ssp *telemetry.Span) {
		sub := q
		sub.At = q.At + motion.Tick(i)
		ssp.SetAttrInt("at", int64(sub.At))
		subs[i], errs[i] = s.snapshotLocked(sub, m, false, ssp)
	})
	for _, err := range errs {
		if err != nil {
			isp.End()
			releaseIntervalScratch(sc)
			return nil, err
		}
	}
	out := &Result{Method: m, Cached: true}
	var region geom.Region
	for _, r := range subs {
		// The sub-result regions are copied by value into the fresh union
		// buffer, so coalescing it in place cannot touch a cached answer.
		region = append(region, r.Region...)
		out.CPU += r.CPU
		out.Cached = out.Cached && r.Cached
		out.CachedCPU += r.CachedCPU
		out.Accepted += r.Accepted
		out.Rejected += r.Rejected
		out.Candidates += r.Candidates
		out.ObjectsRetrieved += r.ObjectsRetrieved
		out.Phases = telemetry.MergeSpans(out.Phases, r.Phases)
	}
	releaseIntervalScratch(sc)
	out.IOs = s.pool.Stats().Sub(ioBefore).RandomIOs()
	out.IOTime = time.Duration(out.IOs) * s.cfg.IOCharge
	// Snapshots of adjacent timestamps overlap heavily; coalescing the
	// union keeps the answer free of redundant rectangles, exactly like the
	// per-snapshot answers.
	usp := isp.Child("union")
	out.Region = geom.CoalesceInPlace(region)
	usp.End()
	isp.SetAttrInt("ios", out.IOs)
	isp.End()
	out.Wall = sw.Elapsed()
	if s.met != nil {
		s.met.observeInterval(int64(n), out.Wall)
	}
	return out, nil
}

// FilterMarks exposes the raw filter classification for a query — used by
// the experiment harness and example programs to visualize the filter step.
// The caller owns the result; releasing it (dh.FilterResult.Release) when
// done is optional but lets the filter pool reuse its buffers.
func (s *Server) FilterMarks(q Query) (*dh.FilterResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.validateLocked(q); err != nil {
		return nil, err
	}
	return s.hist.Filter(q.At, q.Rho, q.L)
}
