package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	s, g := loadServer(t, testConfig(), 1200, 31)
	for tick := 0; tick < 8; tick++ {
		ups := g.Advance()
		if err := s.Tick(g.Now(), ups); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Now() != s.Now() {
		t.Fatalf("restored Now = %d, want %d", restored.Now(), s.Now())
	}
	if restored.NumObjects() != s.NumObjects() {
		t.Fatalf("restored %d objects, want %d", restored.NumObjects(), s.NumObjects())
	}

	// Every method answers identically on both servers.
	for _, m := range []Method{FR, PA, DHOptimistic, DHPessimistic, BruteForce} {
		for _, qt := range []motion.Tick{s.Now(), s.Now() + 15, s.Now() + 30} {
			q := Query{Rho: RelRhoTest(1200, 2), L: 60, At: qt}
			a, err := s.Snapshot(q, m)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Snapshot(q, m)
			if err != nil {
				t.Fatal(err)
			}
			if d := a.Region.DifferenceArea(b.Region) + b.Region.DifferenceArea(a.Region); d > 1e-9 {
				t.Fatalf("%v at qt=%d: original and restored answers differ by %g", m, qt, d)
			}
		}
	}

	// The restored server keeps working: apply more updates and query.
	for tick := 0; tick < 3; tick++ {
		ups := g.Advance()
		if err := restored.Tick(g.Now(), ups); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := restored.Snapshot(Query{Rho: 0.001, L: 60, At: restored.Now()}, FR); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(strings.NewReader("not a checkpoint")); err == nil {
		t.Error("garbage input must be rejected")
	}
	if _, err := Restore(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must be rejected")
	}
}

func TestSaveDeterministic(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 300, 32)
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two saves of the same server differ")
	}
}

func TestPastSnapshotMatchesLiveAnswers(t *testing.T) {
	cfg := testConfig()
	cfg.KeepHistory = true
	s, g := loadServer(t, cfg, 1000, 41)
	q := Query{Rho: RelRhoTest(1000, 2), L: 60}

	// Capture the exact answer at each tick while live.
	captured := map[motion.Tick]float64{}
	regions := map[motion.Tick]geom.Region{}
	for tick := 0; tick < 12; tick++ {
		ups := g.Advance()
		if err := s.Tick(g.Now(), ups); err != nil {
			t.Fatal(err)
		}
		sub := q
		sub.At = s.Now()
		r, err := s.Snapshot(sub, BruteForce)
		if err != nil {
			t.Fatal(err)
		}
		captured[s.Now()] = r.Region.Area()
		regions[s.Now()] = r.Region
	}
	// Replay the past from the archive.
	for qt, wantArea := range captured {
		if qt >= s.Now() {
			continue
		}
		sub := q
		sub.At = qt
		r, err := s.PastSnapshot(sub)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Region.Area()-wantArea) > 1e-6 {
			t.Fatalf("t=%d: past area %g, live area %g", qt, r.Region.Area(), wantArea)
		}
		if d := r.Region.DifferenceArea(regions[qt]) + regions[qt].DifferenceArea(r.Region); d > 1e-6 {
			t.Fatalf("t=%d: past and live regions differ by %g", qt, d)
		}
	}
}

func TestPastSnapshotValidation(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 50, 42) // history disabled
	if _, err := s.PastSnapshot(Query{Rho: 1, L: 60, At: 0}); err == nil {
		t.Error("history-disabled PastSnapshot must fail")
	}
	cfg := testConfig()
	cfg.KeepHistory = true
	s2, g := loadServer(t, cfg, 50, 43)
	for i := 0; i < 3; i++ {
		if err := s2.Tick(g.Now()+motion.Tick(i)+1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s2.PastSnapshot(Query{Rho: 1, L: 60, At: s2.Now()}); err == nil {
		t.Error("PastSnapshot at now must fail (use Snapshot)")
	}
	if _, err := s2.PastSnapshot(Query{Rho: -1, L: 60, At: 0}); err == nil {
		t.Error("negative rho must fail")
	}
	if _, err := s2.PastSnapshot(Query{Rho: 1, L: 60, At: 1}); err != nil {
		t.Errorf("valid past query failed: %v", err)
	}
}
