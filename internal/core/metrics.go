package core

import (
	"time"

	"pdr/internal/parallel"
	"pdr/internal/telemetry"
)

// metricMethods enumerates the instrumented query methods in display order.
var metricMethods = []Method{FR, PA, DHOptimistic, DHPessimistic, BruteForce}

// filter-mark label values for pdr_engine_filter_cells_total.
var filterMarks = []string{"accepted", "rejected", "candidate"}

// fanoutBounds buckets fan-out sizes (snapshots per interval query, windows
// per refinement) — small powers of two up to paper-scale candidate counts.
var fanoutBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Metrics is the engine's instrument bundle: per-method query counts and
// latency distributions, the filter step's cell classification (the paper's
// Sec. 5 cost drivers), refinement fan-in, interval-query fan-out, and the
// parallel execution layer (worker-pool occupancy, per-query fan-out
// distributions, wall-clock interval latency — the series where added
// workers show up as left-shifted buckets). All instruments are atomic, so
// a /metrics scrape never needs the engine lock.
type Metrics struct {
	queries      map[Method]*telemetry.Counter
	latency      map[Method]*telemetry.Histogram
	errors       *telemetry.Counter
	filter       map[string]*telemetry.Counter
	retrieved    *telemetry.Counter
	intervals    *telemetry.Counter
	fanout       *telemetry.Counter
	fanoutHist   *telemetry.Histogram
	intervalWall *telemetry.Histogram
	refineFanout *telemetry.Histogram
	workers      *telemetry.Gauge
	busy         *telemetry.Gauge
}

// NewMetrics registers the engine instruments on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		queries: make(map[Method]*telemetry.Counter, len(metricMethods)),
		latency: make(map[Method]*telemetry.Histogram, len(metricMethods)),
		filter:  make(map[string]*telemetry.Counter, len(filterMarks)),
		errors: reg.Counter("pdr_engine_query_errors_total",
			"Queries rejected by validation or failed during evaluation."),
		retrieved: reg.Counter("pdr_engine_objects_retrieved_total",
			"Index results fetched during refinement."),
		intervals: reg.Counter("pdr_engine_interval_queries_total",
			"Interval PDR queries answered."),
		fanout: reg.Counter("pdr_engine_interval_snapshots_total",
			"Snapshot evaluations fanned out by interval queries."),
		fanoutHist: reg.Histogram("pdr_engine_interval_fanout_snapshots",
			"Per-interval-query fan-out (snapshots dispatched to the worker pool).",
			fanoutBounds),
		intervalWall: reg.Histogram("pdr_engine_interval_wall_seconds",
			"Wall-clock interval query latency (drops as workers are added; compare against summed per-snapshot cost).",
			nil),
		refineFanout: reg.Histogram("pdr_engine_refine_fanout_windows",
			"Per-FR-query refinement fan-out (candidate windows dispatched to the worker pool).",
			fanoutBounds),
		workers: reg.Gauge("pdr_parallel_workers",
			"Configured query worker-pool size (core.Config.Workers, 0 resolved to GOMAXPROCS)."),
		busy: reg.Gauge("pdr_parallel_workers_busy",
			"Worker-pool helper goroutines currently running fan-out items."),
	}
	for _, mm := range metricMethods {
		m.queries[mm] = reg.Counter("pdr_engine_queries_total",
			"Snapshot PDR queries answered, by method.",
			telemetry.L("method", mm.String()))
		m.latency[mm] = reg.Histogram("pdr_engine_query_seconds",
			"Total per-query cost (measured CPU plus charged I/O), by method.",
			nil, telemetry.L("method", mm.String()))
	}
	for _, mark := range filterMarks {
		m.filter[mark] = reg.Counter("pdr_engine_filter_cells_total",
			"Histogram cells classified by the filter step, by mark.",
			telemetry.L("mark", mark))
	}
	return m
}

// observe records one completed snapshot result.
func (m *Metrics) observe(res *Result) {
	m.queries[res.Method].Inc()
	m.latency[res.Method].Observe(res.Total().Seconds())
	m.filter["accepted"].Add(int64(res.Accepted))
	m.filter["rejected"].Add(int64(res.Rejected))
	m.filter["candidate"].Add(int64(res.Candidates))
	m.retrieved.Add(int64(res.ObjectsRetrieved))
}

// observeInterval records an interval query's snapshot fan-out and its
// wall-clock latency (the client-visible duration of the parallel union,
// as opposed to the summed per-snapshot CPU in Result.CPU).
func (m *Metrics) observeInterval(snapshots int64, wall time.Duration) {
	m.intervals.Inc()
	m.fanout.Add(snapshots)
	m.fanoutHist.Observe(float64(snapshots))
	m.intervalWall.Observe(wall.Seconds())
}

// Observe records one completed snapshot result — the exported entry point
// for embedding engines (internal/shard) that share the instrument bundle.
func (m *Metrics) Observe(res *Result) { m.observe(res) }

// ObserveInterval records an interval query's fan-out and wall latency (see
// observeInterval); exported for embedding engines.
func (m *Metrics) ObserveInterval(snapshots int64, wall time.Duration) {
	m.observeInterval(snapshots, wall)
}

// ObserveRefineFanout records one FR refinement fan-out width; exported for
// embedding engines.
func (m *Metrics) ObserveRefineFanout(windows int) {
	m.refineFanout.Observe(float64(windows))
}

// IncError counts one rejected or failed query; exported for embedding
// engines.
func (m *Metrics) IncError() { m.errors.Inc() }

// BindWorkerPool points the worker-pool gauges at p — what SetMetrics does
// for the server's own pool; exported for embedding engines with their own
// fan-out pool.
func (m *Metrics) BindWorkerPool(p *parallel.Pool) {
	m.workers.Set(float64(p.Workers()))
	p.SetBusyGauge(m.busy)
}

// QueriesServed returns the per-method query counts — the shared source of
// truth behind both /metrics and /v1/stats.
func (m *Metrics) QueriesServed() map[string]int64 {
	out := make(map[string]int64, len(m.queries))
	for mm, c := range m.queries {
		out[mm.String()] = c.Value()
	}
	return out
}

// SetMetrics attaches an instrument bundle to the server; a nil bundle
// disables engine metrics (the default for offline/experiment servers).
// Call before serving traffic: attachment is not synchronized with
// in-flight queries.
func (s *Server) SetMetrics(m *Metrics) {
	s.met = m
	if m != nil {
		m.workers.Set(float64(s.par.Workers()))
		s.par.SetBusyGauge(m.busy)
	} else {
		s.par.SetBusyGauge(nil)
	}
}
