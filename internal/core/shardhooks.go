package core

import (
	"fmt"

	"pdr/internal/cache"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/pa"
	"pdr/internal/storage"
	"pdr/internal/telemetry"
)

// This file is the server surface the sharded engine (internal/shard) builds
// on: gather primitives for scatter-gather queries, replica maintenance for
// boundary-straddling objects, and flat adapters over the substrates so the
// HTTP service can run against either a single server or a shard.Engine
// through one interface. Each method takes the server's own lock; cross-call
// consistency is the engine's job (it serializes its shards against queries
// with its own per-shard locks).

// SearchWindow retrieves every indexed movement whose predicted position at
// qt lies in r (closed containment), streaming states to fn until it returns
// false. On a sharded server the results include replica registrations, so a
// cross-shard gather must dedup by object ID.
func (s *Server) SearchWindow(r geom.Rect, qt motion.Tick, fn func(motion.State) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.index.Search(r, qt, fn)
}

// AppendLivePoints appends the predicted position at qt of every live object
// that is inside the monitored area then (the population contract) and
// returns the extended slice. Replica registrations are not live here, so
// concatenating across shards needs no dedup.
func (s *Server) AppendLivePoints(points []geom.Point, qt motion.Tick) []geom.Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, st := range s.live {
		p := st.PositionAt(qt)
		if s.cfg.Area.Contains(p) {
			points = append(points, p)
		}
	}
	return points
}

// AppendPastPoints appends every archived and still-live position valid at
// the past timestamp qt — the same gather PastSnapshot performs — and
// returns the extended slice. Requires Config.KeepHistory.
func (s *Server) AppendPastPoints(points []geom.Point, qt motion.Tick) ([]geom.Point, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.hst == nil {
		return points, fmt.Errorf("core: history is disabled (set Config.KeepHistory)")
	}
	points = append(points, s.hst.PointsAt(qt)...)
	for _, st := range s.live {
		if st.Ref > qt {
			continue // this movement did not exist yet at qt
		}
		p := st.PositionAt(qt)
		if s.cfg.Area.Contains(p) {
			points = append(points, p)
		}
	}
	return points, nil
}

// ApplyReplica registers or removes a boundary-straddling object's replica:
// only the index learns the movement, never the live set, the histogram, the
// surfaces, or the archive, so the per-shard summaries stay exactly additive
// over disjoint primary populations.
func (s *Server) ApplyReplica(u motion.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	switch u.Kind {
	case motion.Insert:
		s.index.Insert(u.State)
		return nil
	case motion.Delete:
		if !s.index.Delete(u.State) {
			return fmt.Errorf("core: replica of object %d missing from the index", u.State.ID)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown update kind %d", u.Kind)
	}
}

// LoadShard bulk-loads one shard's slice of the initial population: own
// states enter every structure (live set, histogram, surfaces, index),
// replica states enter the index only. The index portion uses packed bulk
// loading when available, like Load.
func (s *Server) LoadShard(own, replicas []motion.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	bl, bulk := s.index.(bulkLoader)
	if !bulk || s.index.Len() > 0 {
		for _, st := range own {
			if err := s.applyInsertLocked(st); err != nil {
				return err
			}
		}
		for _, st := range replicas {
			s.index.Insert(st)
		}
		return nil
	}
	for _, st := range own {
		if _, ok := s.live[st.ID]; ok {
			return fmt.Errorf("core: duplicate object %d in bulk load", st.ID)
		}
		s.live[st.ID] = st
		s.hist.Insert(st)
		if s.surf != nil {
			s.surf.Insert(st)
		}
	}
	all := make([]motion.State, 0, len(own)+len(replicas))
	all = append(append(all, own...), replicas...)
	return bl.BulkLoad(all)
}

// PrimeHistogram initializes the histogram window at base without advancing
// the server clock. The sharded engine primes every shard with the same base
// before the first data arrives, so per-shard histogram windows stay in
// lockstep (dh.FilterMerged requires equal phases) even when the shards
// first see objects with different reference times.
func (s *Server) PrimeHistogram(base motion.Tick) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	s.hist.Advance(base)
}

// Contours extracts iso-density contour segments from the Chebyshev
// surfaces (errors when Config.DisablePA).
func (s *Server) Contours(at motion.Tick, level float64, res int) ([]pa.ContourSegment, error) {
	if s.surf == nil {
		return nil, fmt.Errorf("core: PA surfaces are disabled on this server (Config.DisablePA)")
	}
	return s.surf.Contours(at, level, res)
}

// PoolStats returns the buffer pool's I/O counters.
func (s *Server) PoolStats() storage.Stats { return s.pool.Stats() }

// PoolPages returns the number of pages the buffer pool manages.
func (s *Server) PoolPages() int { return s.pool.NumPages() }

// HistogramBytes returns the density histogram's counter footprint.
func (s *Server) HistogramBytes() int { return s.hist.MemoryBytes() }

// SurfaceBytes returns the Chebyshev coefficient footprint (0 when PA is
// disabled).
func (s *Server) SurfaceBytes() int {
	if s.surf == nil {
		return 0
	}
	return s.surf.MemoryBytes()
}

// AttachTelemetry registers the server's substrate instruments (buffer pool,
// result cache) on reg. Call before serving traffic, like SetMetrics.
func (s *Server) AttachTelemetry(reg *telemetry.Registry) {
	s.pool.SetMetrics(storage.NewPoolMetrics(reg))
	if s.qcache != nil {
		s.qcache.SetMetrics(cache.NewMetrics(reg))
	}
}
