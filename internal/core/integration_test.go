package core

import (
	"bytes"
	"math"
	"testing"

	"pdr/internal/datagen"
	"pdr/internal/motion"
)

// TestEndToEndPipeline is the repository's widest integration test: a
// 10K-object road-network workload streamed through a history-keeping
// server, with every query method cross-checked, a checkpoint round trip in
// the middle, and past-snapshot reconstruction at the end. Skipped under
// -short.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	cfg := testConfig()
	cfg.KeepHistory = true
	cfg.BufferPages = 256

	gcfg := datagen.DefaultConfig(10000)
	gcfg.Seed = 99
	gen, err := datagen.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Load(gen.InitialStates()); err != nil {
		t.Fatal(err)
	}

	var earlyRegionArea float64
	var earlyTick motion.Tick
	for tick := 0; tick < 15; tick++ {
		ups := gen.Advance()
		if err := srv.Tick(gen.Now(), ups); err != nil {
			t.Fatal(err)
		}
		if tick == 4 {
			earlyTick = srv.Now()
			r, err := srv.Snapshot(Query{Rho: RelRhoTest(10000, 2), L: 60, At: earlyTick}, BruteForce)
			if err != nil {
				t.Fatal(err)
			}
			earlyRegionArea = r.Region.Area()
		}
		if tick == 8 {
			// Checkpoint round trip mid-stream: the restored server must
			// answer identically, then both continue consuming updates.
			var buf bytes.Buffer
			if err := srv.Save(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(&buf)
			if err != nil {
				t.Fatal(err)
			}
			q := Query{Rho: RelRhoTest(10000, 3), L: 60, At: srv.Now() + 10}
			a, err := srv.Snapshot(q, FR)
			if err != nil {
				t.Fatal(err)
			}
			b, err := restored.Snapshot(q, FR)
			if err != nil {
				t.Fatal(err)
			}
			if d := a.Region.DifferenceArea(b.Region) + b.Region.DifferenceArea(a.Region); d > 1e-6 {
				t.Fatalf("restored server diverges by area %g", d)
			}
		}
	}

	// All methods at a future timestamp: exactness and bracketing.
	q := Query{Rho: RelRhoTest(10000, 2), L: 60, At: srv.Now() + 20}
	results := map[Method]*Result{}
	for _, m := range []Method{FR, PA, DHOptimistic, DHPessimistic, BruteForce} {
		r, err := srv.Snapshot(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		results[m] = r
	}
	exact := results[BruteForce].Region
	if d := results[FR].Region.DifferenceArea(exact) + exact.DifferenceArea(results[FR].Region); d > 1e-6 {
		t.Fatalf("FR != BF by area %g", d)
	}
	if d := results[DHPessimistic].Region.DifferenceArea(exact); d > 1e-6 {
		t.Errorf("pessimistic DH exceeds exact by %g", d)
	}
	if d := exact.DifferenceArea(results[DHOptimistic].Region); d > 1e-6 {
		t.Errorf("optimistic DH misses exact by %g", d)
	}
	ea := exact.Area()
	if ea > 0 {
		fp := results[PA].Region.DifferenceArea(exact) / ea
		fn := exact.DifferenceArea(results[PA].Region) / ea
		t.Logf("integration PA accuracy: r_fp=%.3f r_fn=%.3f", fp, fn)
		if fp > 1.5 || fn > 0.9 {
			t.Errorf("PA wildly off: fp=%g fn=%g", fp, fn)
		}
	}

	// The planner's recommendation must execute.
	plan, err := srv.Recommend(q, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Snapshot(q, plan.Method); err != nil {
		t.Fatalf("recommended method %v failed: %v", plan.Method, err)
	}

	// Historical reconstruction at the early tick matches what was measured
	// live.
	past, err := srv.PastSnapshot(Query{Rho: RelRhoTest(10000, 2), L: 60, At: earlyTick})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(past.Region.Area()-earlyRegionArea) > 1e-6 {
		t.Fatalf("past reconstruction area %g, live was %g", past.Region.Area(), earlyRegionArea)
	}
}
