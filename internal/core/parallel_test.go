package core

import (
	"testing"

	"pdr/internal/datagen"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// loadWorkers builds identical servers that differ only in worker-pool
// size, loaded with the same seeded workload.
func loadWorkers(t *testing.T, n int, seed int64, workers ...int) []*Server {
	t.Helper()
	gcfg := datagen.DefaultConfig(n)
	gcfg.Seed = seed
	gcfg.Warmup = 100
	out := make([]*Server, len(workers))
	for i, w := range workers {
		cfg := testConfig()
		cfg.Workers = w
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := datagen.New(gcfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Load(g.InitialStates()); err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func regionsEqual(a, b geom.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelSnapshotEquivalence: the FR refinement fan-out must return
// exactly the sequential answer at any worker count, including more workers
// than candidate windows (17).
func TestParallelSnapshotEquivalence(t *testing.T) {
	servers := loadWorkers(t, 2500, 11, 1, 2, 17)
	for _, varrho := range []float64{1, 3, 5} {
		q := Query{Rho: RelRhoTest(2500, varrho), L: 60, At: 10}
		for _, m := range []Method{FR, BruteForce, DHOptimistic} {
			base, err := servers[0].Snapshot(q, m)
			if err != nil {
				t.Fatalf("workers=1 %v varrho=%g: %v", m, varrho, err)
			}
			for i, s := range servers[1:] {
				got, err := s.Snapshot(q, m)
				if err != nil {
					t.Fatalf("workers=%d %v varrho=%g: %v", s.Workers(), m, varrho, err)
				}
				if !regionsEqual(base.Region, got.Region) {
					t.Errorf("%v varrho=%g: workers=%d region differs from sequential (%d vs %d rects, areas %g vs %g)",
						m, varrho, servers[i+1].Workers(), len(got.Region), len(base.Region),
						got.Region.Area(), base.Region.Area())
				}
				if base.ObjectsRetrieved != got.ObjectsRetrieved {
					t.Errorf("%v varrho=%g: workers=%d retrieved %d objects, sequential %d",
						m, varrho, servers[i+1].Workers(), got.ObjectsRetrieved, base.ObjectsRetrieved)
				}
			}
		}
	}
}

// TestParallelIntervalEquivalence: the interval fan-out must merge to
// exactly the sequential union at any worker count, including the
// single-timestamp edge case and more workers than timestamps.
func TestParallelIntervalEquivalence(t *testing.T) {
	servers := loadWorkers(t, 2000, 7, 1, 2, 17)
	q := Query{Rho: RelRhoTest(2000, 3), L: 60, At: 5}
	for _, width := range []motion.Tick{0, 1, 4, 9} {
		until := q.At + width
		for _, m := range []Method{FR, DHOptimistic} {
			base, err := servers[0].Interval(q, until, m)
			if err != nil {
				t.Fatalf("workers=1 %v width=%d: %v", m, width, err)
			}
			for i, s := range servers[1:] {
				got, err := s.Interval(q, until, m)
				if err != nil {
					t.Fatalf("workers=%d %v width=%d: %v", s.Workers(), m, width, err)
				}
				if !regionsEqual(base.Region, got.Region) {
					t.Errorf("%v width=%d: workers=%d interval region differs from sequential (%d vs %d rects)",
						m, width, servers[i+1].Workers(), len(got.Region), len(base.Region))
				}
				if base.Candidates != got.Candidates || base.ObjectsRetrieved != got.ObjectsRetrieved {
					t.Errorf("%v width=%d: workers=%d cost counters differ: candidates %d vs %d, retrieved %d vs %d",
						m, width, servers[i+1].Workers(), got.Candidates, base.Candidates,
						got.ObjectsRetrieved, base.ObjectsRetrieved)
				}
			}
		}
	}
}

// TestIntervalSingleTimestampMatchesSnapshot: Interval over [t, t] is by
// Definition 5 exactly the snapshot at t.
func TestIntervalSingleTimestampMatchesSnapshot(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 2000, 7)
	q := Query{Rho: RelRhoTest(2000, 3), L: 60, At: 5}
	snap, err := s.Snapshot(q, FR)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := s.Interval(q, q.At, FR)
	if err != nil {
		t.Fatal(err)
	}
	if !regionsEqual(snap.Region, iv.Region) {
		t.Errorf("single-timestamp interval differs from snapshot: %d vs %d rects, areas %g vs %g",
			len(iv.Region), len(snap.Region), iv.Region.Area(), snap.Region.Area())
	}
}

// TestIntervalAnswerIsCoalesced is the regression test for the interval
// union: snapshots of adjacent timestamps overlap heavily, and the interval
// answer must not carry those redundant rectangles (it must cover exactly
// the same point set as the raw union, in coalesced form).
func TestIntervalAnswerIsCoalesced(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 2000, 7)
	q := Query{Rho: RelRhoTest(2000, 3), L: 60, At: 5}
	until := q.At + 8
	iv, err := s.Interval(q, until, FR)
	if err != nil {
		t.Fatal(err)
	}
	if len(iv.Region) == 0 {
		t.Skip("empty interval answer; pick a denser workload")
	}
	// The answer is in coalesced form: re-coalescing must be a no-op.
	if re := geom.Coalesce(append(geom.Region(nil), iv.Region...)); len(re) != len(iv.Region) {
		t.Errorf("interval answer not coalesced: %d rects re-coalesce to %d", len(iv.Region), len(re))
	}
	// And it covers exactly the union of the per-timestamp snapshots.
	var raw geom.Region
	for at := q.At; at <= until; at++ {
		sub := q
		sub.At = at
		r, err := s.Snapshot(sub, FR)
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, r.Region...)
	}
	if rawArea, ivArea := raw.Area(), iv.Region.Area(); !approxEqArea(rawArea, ivArea) {
		t.Errorf("interval answer area %g differs from raw union area %g", ivArea, rawArea)
	}
	if len(iv.Region) > len(raw) {
		t.Errorf("interval answer (%d rects) larger than the raw union (%d rects)", len(iv.Region), len(raw))
	}
}

func approxEqArea(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > a {
		scale = b
	}
	return d <= 1e-9*scale
}
