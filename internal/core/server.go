// Package core is the PDR query engine — the paper's primary contribution
// assembled over the substrates: a Server ingests the location-update stream
// and maintains, for every timestamp in the horizon [now, now+H],
//
//   - a TPR-tree over the predicted trajectories (for the refinement step),
//   - a density histogram (for the filtering step and the DH baselines), and
//   - a grid of Chebyshev density surfaces (for the approximation method),
//
// and answers snapshot and interval pointwise-dense-region queries by any of
// the paper's methods: FR (exact filtering-refinement), PA (Chebyshev
// approximation), optimistic/pessimistic DH, or a brute-force global sweep
// used as ground truth.
//
// Population contract: an object whose predicted position lies outside the
// monitored area at timestamp t does not exist at t. All methods apply the
// same rule, so FR and the brute force return identical regions.
package core

import (
	"fmt"
	"sync"
	"time"

	"pdr/internal/bxtree"
	"pdr/internal/cache"
	"pdr/internal/dh"
	"pdr/internal/geom"
	"pdr/internal/gridindex"
	"pdr/internal/history"
	"pdr/internal/motion"
	"pdr/internal/pa"
	"pdr/internal/parallel"
	"pdr/internal/storage"
	"pdr/internal/tprtree"
)

// Index is the access method the refinement step queries: any structure
// that indexes predicted movements and answers timestamp range queries.
// Both the TPR-tree (the paper's choice) and the uniform grid index satisfy
// it over the same buffer pool, making their I/O directly comparable.
type Index interface {
	Insert(motion.State)
	Delete(motion.State) bool
	SetNow(motion.Tick)
	Search(r geom.Rect, qt motion.Tick, fn func(motion.State) bool)
	All() []motion.State
	Len() int
}

// IndexKind selects the refinement access method.
type IndexKind string

const (
	// IndexTPR is the TPR-tree (default; the paper's substrate).
	IndexTPR IndexKind = "tpr"
	// IndexGrid is the paged uniform grid (SETI-style ablation baseline).
	IndexGrid IndexKind = "grid"
	// IndexBx is the B^x-tree (B+-tree over Z-order keys with time
	// phases), the alternative the paper's related work cites.
	IndexBx IndexKind = "bx"
)

// Config parameterizes a Server. Zero fields fall back to the paper's
// defaults where one exists.
type Config struct {
	// Area is the monitored plane (the paper: 1,000 x 1,000 miles).
	Area geom.Rect
	// U is the maximum update interval; W the prediction window. The
	// maintenance horizon is H = U + W (paper defaults: 60 and 30).
	U, W motion.Tick
	// HistM is the density histogram resolution per axis (HistM^2 cells;
	// paper default 10,000 total -> 100).
	HistM int
	// PAGrid is the per-axis local polynomial count (paper default 100
	// polynomials -> 10); PADegree the Chebyshev total degree (default 5);
	// PAMD the evaluation resolution floor (default 256).
	PAGrid, PADegree, PAMD int
	// L is the fixed neighborhood edge the PA surfaces are built for
	// (paper: 30 or 60). FR accepts any l >= 2*Area/HistM at query time.
	L float64
	// BufferPages caps the TPR-tree buffer pool (0 = unlimited; the paper
	// sizes it at 10% of the dataset).
	BufferPages int
	// PageSize is the tree page size in bytes (default 4 KB).
	PageSize int
	// IOCharge is the modelled cost per physical page access (default the
	// paper's 10 ms).
	IOCharge time.Duration
	// Index selects the refinement access method (default IndexTPR).
	Index IndexKind
	// GridM is the per-axis bucket count when Index is IndexGrid (default
	// 32).
	GridM int
	// KeepHistory archives superseded movements so PastSnapshot can answer
	// PDR queries for past timestamps (memory grows with the update
	// volume).
	KeepHistory bool
	// MergeCandidates coalesces adjacent candidate cells into maximal
	// windows before refinement, reducing duplicate index retrievals where
	// candidates cluster. Answers are identical with or without it; the
	// paper's per-cell refinement is the default.
	MergeCandidates bool
	// Workers bounds the query worker pool used at the engine's fan-out
	// points (per-timestamp snapshots of an interval query, per-window
	// refinement sweeps). 0 selects GOMAXPROCS; 1 runs every query
	// sequentially. Answers are identical at every setting (see
	// docs/PERFORMANCE.md for the determinism argument).
	Workers int
	// CacheBytes bounds the epoch-versioned snapshot result cache
	// (approximate resident bytes). 0 (the default) disables caching and
	// keeps the pre-cache behavior; when set, repeated snapshot queries,
	// interval fan-outs, and monitor re-evaluations reuse per-timestamp
	// answers until the next mutation supersedes them (see
	// docs/PERFORMANCE.md, "Result cache").
	CacheBytes int64
	// DisablePA skips building and maintaining the Chebyshev surfaces: PA
	// queries are rejected and Surface returns nil. The sharded engine sets
	// it on its per-shard servers, which answer PA from one engine-global
	// surface instead (per-shard float accumulation would not merge
	// bit-identically; see docs/PERFORMANCE.md, "Sharding").
	DisablePA bool
}

// DefaultConfig returns the paper's default experimental setup (Table 1,
// with OCR-lost digits reconstructed as documented in DESIGN.md).
func DefaultConfig() Config {
	return Config{
		Area:     geom.NewRect(0, 0, 1000, 1000),
		U:        60,
		W:        30,
		HistM:    100,
		PAGrid:   10,
		PADegree: 5,
		PAMD:     256,
		L:        30,
		IOCharge: storage.DefaultRandomIO,
	}
}

// Server maintains all query structures over the update stream.
//
// Concurrency: the server is a single-writer/many-reader engine. Mutations
// (Tick, Apply, Load) take the write lock; queries (Snapshot, Interval,
// PastSnapshot, FilterMarks, Recommend) take the read lock, so any number
// of queries run simultaneously and only writers serialize. The summary
// structures (histogram, surfaces, index) are read-only during queries, the
// buffer pool locks internally, and all telemetry is atomic, so concurrent
// readers never contend on engine state. Methods named *Locked assume the
// caller holds mu (the pdrvet locked analyzer enforces the discipline).
type Server struct {
	cfg    Config
	hist   *dh.Histogram
	surf   *pa.Surface
	pool   *storage.Pool
	index  Index
	hst    *history.Store // nil unless cfg.KeepHistory
	met    *Metrics       // nil unless SetMetrics was called (pre-traffic)
	par    *parallel.Pool // bounded fan-out workers (cfg.Workers)
	qcache *cache.Cache   // snapshot result cache; nil when CacheBytes is 0

	mu sync.RWMutex
	// now is the server clock; guarded by mu.
	now motion.Tick
	// epoch counts mutations (Tick/Apply/Load); guarded by mu. Cached
	// snapshot answers are keyed by it, so bumping the epoch invalidates
	// every prior answer in O(1) without touching the cache itself.
	epoch uint64
	// live maps object IDs to their current movement; guarded by mu.
	live map[motion.ObjectID]motion.State
}

// NewServer builds an empty server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("core: empty area")
	}
	if cfg.U <= 0 || cfg.W < 0 {
		return nil, fmt.Errorf("core: bad intervals U=%d W=%d", cfg.U, cfg.W)
	}
	if cfg.HistM <= 0 {
		cfg.HistM = 100
	}
	if cfg.PAGrid <= 0 {
		cfg.PAGrid = 10
	}
	if cfg.PADegree <= 0 {
		cfg.PADegree = 5
	}
	if cfg.PAMD <= 0 {
		cfg.PAMD = 256
	}
	if cfg.L <= 0 {
		cfg.L = 30
	}
	if cfg.IOCharge == 0 {
		cfg.IOCharge = storage.DefaultRandomIO
	}
	horizon := cfg.U + cfg.W

	hist, err := dh.New(dh.Config{Area: cfg.Area, M: cfg.HistM, Horizon: horizon})
	if err != nil {
		return nil, err
	}
	var surf *pa.Surface
	if !cfg.DisablePA {
		surf, err = pa.New(pa.Config{
			Area: cfg.Area, G: cfg.PAGrid, Degree: cfg.PADegree,
			Horizon: horizon, L: cfg.L, MD: cfg.PAMD,
		})
		if err != nil {
			return nil, err
		}
	}
	pool := storage.NewPool(cfg.BufferPages)
	var index Index
	switch cfg.Index {
	case "", IndexTPR:
		cfg.Index = IndexTPR
		index, err = tprtree.New(tprtree.Config{Pool: pool, Horizon: horizon, PageSize: cfg.PageSize})
	case IndexGrid:
		if cfg.GridM <= 0 {
			cfg.GridM = 32
		}
		index, err = gridindex.New(gridindex.Config{Pool: pool, Area: cfg.Area, M: cfg.GridM, PageSize: cfg.PageSize})
	case IndexBx:
		phase := cfg.U / 2
		if phase <= 0 {
			phase = 1
		}
		index, err = bxtree.New(bxtree.Config{Pool: pool, Area: cfg.Area, PhaseLen: phase, PageSize: cfg.PageSize})
	default:
		err = fmt.Errorf("core: unknown index kind %q", cfg.Index)
	}
	if err != nil {
		return nil, err
	}
	var hst *history.Store
	if cfg.KeepHistory {
		hst, err = history.New(history.Config{Area: cfg.Area, BucketTicks: cfg.U})
		if err != nil {
			return nil, err
		}
	}
	return &Server{
		cfg:    cfg,
		hist:   hist,
		surf:   surf,
		pool:   pool,
		index:  index,
		live:   make(map[motion.ObjectID]motion.State),
		hst:    hst,
		par:    parallel.New(cfg.Workers),
		qcache: cache.New(cfg.CacheBytes),
	}, nil
}

// Config returns the server's effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Horizon returns H = U + W.
func (s *Server) Horizon() motion.Tick { return s.cfg.U + s.cfg.W }

// Now returns the current server time.
func (s *Server) Now() motion.Tick {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// NumObjects returns the live object count.
func (s *Server) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.live)
}

// Workers returns the effective query worker-pool size.
func (s *Server) Workers() int { return s.par.Workers() }

// Pool exposes the TPR-tree buffer pool (for I/O statistics).
func (s *Server) Pool() *storage.Pool { return s.pool }

// Histogram exposes the density histogram (read-only use).
func (s *Server) Histogram() *dh.Histogram { return s.hist }

// Surface exposes the Chebyshev density surface (read-only use).
func (s *Server) Surface() *pa.Surface { return s.surf }

// Index exposes the refinement access method (read-only use).
func (s *Server) Index() Index { return s.index }

// bulkLoader is implemented by access methods that support packed initial
// loading (the TPR-tree's STR bulk load).
type bulkLoader interface {
	BulkLoad([]motion.State) error
}

// Load bulk-inserts the initial object states; their reference times set
// the server clock if it has not advanced yet. When the index is empty and
// supports it, the index portion uses packed bulk loading, which is roughly
// an order of magnitude faster than one-at-a-time insertion.
func (s *Server) Load(states []motion.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	bl, bulk := s.index.(bulkLoader)
	if !bulk || s.index.Len() > 0 {
		for _, st := range states {
			if err := s.applyInsertLocked(st); err != nil {
				return err
			}
		}
		return nil
	}
	for _, st := range states {
		if _, ok := s.live[st.ID]; ok {
			return fmt.Errorf("core: duplicate object %d in bulk load", st.ID)
		}
		s.live[st.ID] = st
		s.hist.Insert(st)
		if s.surf != nil {
			s.surf.Insert(st)
		}
	}
	return bl.BulkLoad(states)
}

// Tick advances server time to now and applies the tick's update stream.
func (s *Server) Tick(now motion.Tick, updates []motion.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Bump before touching anything: even a partially applied tick mutates
	// the summaries, and over-invalidating the cache is harmless while a
	// missed invalidation would serve stale answers.
	s.epoch++
	if now < s.now {
		return fmt.Errorf("core: time moved backwards: %d < %d", now, s.now)
	}
	s.now = now
	s.hist.Advance(now)
	if s.surf != nil {
		s.surf.Advance(now)
	}
	s.index.SetNow(now)
	for _, u := range updates {
		if err := s.applyLocked(u); err != nil {
			return err
		}
	}
	return nil
}

// Apply processes a single update record.
func (s *Server) Apply(u motion.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.applyLocked(u)
}

func (s *Server) applyLocked(u motion.Update) error {
	switch u.Kind {
	case motion.Insert:
		return s.applyInsertLocked(u.State)
	case motion.Delete:
		return s.applyDeleteLocked(u.State, u.At)
	default:
		return fmt.Errorf("core: unknown update kind %d", u.Kind)
	}
}

func (s *Server) applyInsertLocked(st motion.State) error {
	if _, ok := s.live[st.ID]; ok {
		return fmt.Errorf("core: insert of live object %d (delete the stale movement first)", st.ID)
	}
	s.live[st.ID] = st
	s.hist.Insert(st)
	if s.surf != nil {
		s.surf.Insert(st)
	}
	s.index.Insert(st)
	return nil
}

func (s *Server) applyDeleteLocked(st motion.State, at motion.Tick) error {
	cur, ok := s.live[st.ID]
	if !ok {
		return fmt.Errorf("core: delete of unknown object %d", st.ID)
	}
	if cur != st {
		return fmt.Errorf("core: delete state mismatch for object %d", st.ID)
	}
	delete(s.live, st.ID)
	s.hist.Delete(st, at)
	if s.surf != nil {
		s.surf.Delete(st, at)
	}
	if !s.index.Delete(st) {
		return fmt.Errorf("core: object %d missing from the index", st.ID)
	}
	if s.hst != nil && at > st.Ref {
		if err := s.hst.Record(history.Segment{State: st, From: st.Ref, To: at}); err != nil {
			return err
		}
	}
	return nil
}

// History exposes the archive (nil unless Config.KeepHistory).
func (s *Server) History() *history.Store { return s.hst }

// Epoch returns the mutation counter cached answers are keyed by. It
// increments on every Tick, Apply, and Load.
func (s *Server) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Cache exposes the snapshot result cache (nil when Config.CacheBytes is 0),
// so embedders can attach telemetry via cache.NewMetrics.
func (s *Server) Cache() *cache.Cache { return s.qcache }

// CacheStats returns the result cache counters (zeros when caching is off).
func (s *Server) CacheStats() cache.Stats { return s.qcache.Stats() }
