package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// TestPoolReuseBitIdentical is the pool-churn race stress: the query path
// shares sync.Pools (Chebyshev evaluation scratch, DH filter results and
// prefix sums, sweep buffers, scatter/gather slices), so concurrent queries
// continuously recycle each other's buffers. Every answer must still be
// bit-identical to the single-threaded reference — a stale or under-cleared
// pooled buffer shows up here as a diverging region. Run under -race via
// check.sh.
func TestPoolReuseBitIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 3
	cfg.CacheBytes = 0 // repeats must recompute, not replay a cached region
	s, _ := loadServer(t, cfg, 1500, 7)

	type job struct {
		q      Query
		method Method
		until  motion.Tick // interval query when > q.At
	}
	rho := relRho(1500, 3)
	var jobs []job
	for _, m := range []Method{FR, PA, DHOptimistic, DHPessimistic, BruteForce} {
		for tick := 0; tick < 2; tick++ {
			jobs = append(jobs, job{q: Query{Rho: rho, L: 60, At: motion.Tick(tick)}, method: m})
		}
	}
	jobs = append(jobs,
		job{q: Query{Rho: rho, L: 60, At: 0}, method: FR, until: 3},
		job{q: Query{Rho: rho, L: 60, At: 1}, method: BruteForce, until: 4},
	)

	run := func(j job) (*Result, error) {
		if j.until > j.q.At {
			return s.Interval(j.q, j.until, j.method)
		}
		return s.Snapshot(j.q, j.method)
	}
	want := make([]geom.Region, len(jobs))
	for i, j := range jobs {
		res, err := run(j)
		if err != nil {
			t.Fatalf("reference job %d: %v", i, err)
		}
		want[i] = res.Region
	}

	const goroutines = 6
	const rounds = 2
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for off := range jobs {
					i := (off + g) % len(jobs) // stagger so pools cross-pollinate
					res, err := run(jobs[i])
					if err != nil {
						errc <- fmt.Errorf("goroutine %d job %d: %w", g, i, err)
						return
					}
					if !reflect.DeepEqual(res.Region, want[i]) {
						errc <- fmt.Errorf("goroutine %d job %d (%v at t=%d): region diverged from single-threaded reference",
							g, i, jobs[i].method, jobs[i].q.At)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
