package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"pdr/internal/motion"
)

// snapshotMagic identifies and versions the checkpoint format.
const snapshotMagic = "pdr-checkpoint-v1"

// snapshot is the persisted server state. The summary structures (density
// histogram, Chebyshev surfaces, index) are not serialized: every live
// movement's remaining contribution over the window [now, now+H] is a pure
// function of (state, now), so replaying the live set reconstructs them
// exactly (bit-for-bit for the histogram and coefficients).
type snapshot struct {
	Magic  string
	Config Config
	Now    motion.Tick
	States []motion.State
}

// Save writes a checkpoint of the server to w. The checkpoint captures the
// configuration, the clock, and every live movement; Restore rebuilds an
// equivalent server from it.
func (s *Server) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	states := make([]motion.State, 0, len(s.live))
	for _, st := range s.live {
		states = append(states, st)
	}
	// Deterministic output: order by ID.
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	return gob.NewEncoder(w).Encode(snapshot{
		Magic:  snapshotMagic,
		Config: s.cfg,
		Now:    s.now,
		States: states,
	})
}

// Restore rebuilds a server from a checkpoint written by Save. The restored
// server answers every query identically to the original at its checkpoint
// time.
func Restore(r io.Reader) (*Server, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return nil, fmt.Errorf("core: not a pdr checkpoint (magic %q)", snap.Magic)
	}
	s, err := NewServer(snap.Config)
	if err != nil {
		return nil, fmt.Errorf("core: restoring config: %w", err)
	}
	if err := s.Tick(snap.Now, nil); err != nil {
		return nil, err
	}
	if err := s.Load(snap.States); err != nil {
		return nil, fmt.Errorf("core: replaying checkpoint states: %w", err)
	}
	return s, nil
}
