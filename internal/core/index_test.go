package core

import (
	"testing"
)

func TestGridIndexServerEquivalence(t *testing.T) {
	// FR over the grid index must return exactly the same regions as FR
	// over the TPR-tree (the access method only changes cost, not answers).
	cfgTPR := testConfig()
	cfgGrid := testConfig()
	cfgGrid.Index = IndexGrid
	sTPR, gen := loadServer(t, cfgTPR, 1500, 21)
	sGrid, err := NewServer(cfgGrid)
	if err != nil {
		t.Fatal(err)
	}
	if err := sGrid.Load(gen.InitialStates()); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 10; tick++ {
		ups := gen.Advance()
		if err := sTPR.Tick(gen.Now(), ups); err != nil {
			t.Fatal(err)
		}
		if err := sGrid.Tick(gen.Now(), ups); err != nil {
			t.Fatal(err)
		}
	}
	for _, varrho := range []float64{1, 3} {
		q := Query{Rho: RelRhoTest(1500, varrho), L: 60, At: sTPR.Now() + 10}
		a, err := sTPR.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sGrid.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		if d := a.Region.DifferenceArea(b.Region) + b.Region.DifferenceArea(a.Region); d > 1e-6 {
			t.Fatalf("varrho=%g: TPR and grid FR answers differ by area %g", varrho, d)
		}
	}
}

func TestUnknownIndexKindRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Index = "btree"
	if _, err := NewServer(cfg); err == nil {
		t.Error("unknown index kind must be rejected")
	}
}

func TestGridIndexDefaulting(t *testing.T) {
	cfg := testConfig()
	cfg.Index = IndexGrid
	cfg.GridM = 0
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().GridM != 32 {
		t.Errorf("GridM defaulted to %d, want 32", s.Config().GridM)
	}
	if s.Config().Index != IndexGrid {
		t.Errorf("Index = %q", s.Config().Index)
	}
}

func TestBxIndexServerEquivalence(t *testing.T) {
	// FR over the B^x-tree must return exactly the same regions as FR over
	// the TPR-tree.
	cfgTPR := testConfig()
	cfgBx := testConfig()
	cfgBx.Index = IndexBx
	sTPR, gen := loadServer(t, cfgTPR, 1500, 22)
	sBx, err := NewServer(cfgBx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sBx.Load(gen.InitialStates()); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 10; tick++ {
		ups := gen.Advance()
		if err := sTPR.Tick(gen.Now(), ups); err != nil {
			t.Fatal(err)
		}
		if err := sBx.Tick(gen.Now(), ups); err != nil {
			t.Fatal(err)
		}
	}
	for _, varrho := range []float64{1, 3} {
		q := Query{Rho: RelRhoTest(1500, varrho), L: 60, At: sTPR.Now() + 10}
		a, err := sTPR.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sBx.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		if d := a.Region.DifferenceArea(b.Region) + b.Region.DifferenceArea(a.Region); d > 1e-6 {
			t.Fatalf("varrho=%g: TPR and Bx FR answers differ by area %g", varrho, d)
		}
	}
}
