package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pdr/internal/datagen"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

func TestZeroThresholdWholeAreaDense(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 50, 10)
	q := Query{Rho: 0, L: 60, At: 0}
	for _, m := range []Method{FR, BruteForce} {
		r, err := s.Snapshot(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		want := s.Config().Area.Area()
		if got := r.Region.Area(); math.Abs(got-want) > 1e-6 {
			t.Errorf("%v: rho=0 area = %g, want whole area %g", m, got, want)
		}
	}
}

func TestImpossibleThresholdEmpty(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 50, 11)
	// More objects required than exist.
	q := Query{Rho: 1, L: 60, At: 0} // threshold = 3600 objects
	for _, m := range []Method{FR, PA, BruteForce, DHOptimistic, DHPessimistic} {
		r, err := s.Snapshot(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if a := r.Region.Area(); a != 0 {
			t.Errorf("%v: impossible threshold returned area %g", m, a)
		}
	}
}

func TestEmptyServerQueries(t *testing.T) {
	s, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Rho: 0.001, L: 60, At: 0}
	for _, m := range []Method{FR, PA, BruteForce} {
		r, err := s.Snapshot(q, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(r.Region) != 0 {
			t.Errorf("%v: empty server returned %d rects", m, len(r.Region))
		}
	}
}

func TestLargeLCoversWholeArea(t *testing.T) {
	// With l as large as the plane, every point's neighborhood holds most
	// objects: FR must still match BF (stress for clipped neighborhoods).
	s, _ := loadServer(t, testConfig(), 500, 12)
	q := Query{Rho: 100.0 / (1000 * 1000), L: 900, At: 0}
	fr, err := s.Snapshot(q, FR)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := s.Snapshot(q, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if d := fr.Region.DifferenceArea(bf.Region) + bf.Region.DifferenceArea(fr.Region); d > 1e-6 {
		t.Fatalf("l=900: FR and BF differ by %g", d)
	}
}

func TestQuickFRMatchesBruteForceSmallWorlds(t *testing.T) {
	// Property: on arbitrary small uniform worlds, the exact methods agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		s, err := NewServer(cfg)
		if err != nil {
			return false
		}
		gcfg := datagen.DefaultConfig(200 + rng.Intn(400))
		gcfg.Seed = seed
		gcfg.Uniform = true
		g, err := datagen.New(gcfg)
		if err != nil {
			return false
		}
		if err := s.Load(g.InitialStates()); err != nil {
			return false
		}
		varrho := 0.5 + 4*rng.Float64()
		q := Query{
			Rho: RelRhoTest(s.NumObjects(), varrho),
			L:   40 + rng.Float64()*200,
			At:  motion.Tick(rng.Intn(90)),
		}
		fr, err := s.Snapshot(q, FR)
		if err != nil {
			return false
		}
		bf, err := s.Snapshot(q, BruteForce)
		if err != nil {
			return false
		}
		return fr.Region.DifferenceArea(bf.Region)+bf.Region.DifferenceArea(fr.Region) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// RelRhoTest mirrors the paper's relative threshold for the default area.
func RelRhoTest(n int, varrho float64) float64 {
	return float64(n) * varrho / 1e6
}

func TestIntervalPA(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 800, 13)
	q := Query{Rho: RelRhoTest(800, 2), L: 60, At: 0}
	iv, err := s.Interval(q, 3, PA)
	if err != nil {
		t.Fatal(err)
	}
	// The interval union contains each snapshot.
	for qt := motion.Tick(0); qt <= 3; qt++ {
		sub := q
		sub.At = qt
		r, err := s.Snapshot(sub, PA)
		if err != nil {
			t.Fatal(err)
		}
		if d := r.Region.DifferenceArea(iv.Region); d > 1e-6 {
			t.Fatalf("snapshot at %d not inside interval union (excess %g)", qt, d)
		}
	}
}

func TestObjectsLeavingAreaConsistency(t *testing.T) {
	// Objects whose predictions exit the plane must be handled identically
	// by FR and BF (the area-existence contract).
	s, err := NewServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var states []motion.State
	for i := 0; i < 200; i++ {
		// A block near the right border, all racing out of the plane.
		states = append(states, motion.State{
			ID:  motion.ObjectID(i),
			Pos: geom.Point{X: 950 + float64(i%10), Y: 480 + float64(i/10)},
			Vel: geom.Vec{X: 2, Y: 0},
			Ref: 0,
		})
	}
	if err := s.Load(states); err != nil {
		t.Fatal(err)
	}
	for _, qt := range []motion.Tick{0, 10, 30, 60} {
		q := Query{Rho: 100.0 / 1e6, L: 60, At: qt}
		fr, err := s.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := s.Snapshot(q, BruteForce)
		if err != nil {
			t.Fatal(err)
		}
		if d := fr.Region.DifferenceArea(bf.Region) + bf.Region.DifferenceArea(fr.Region); d > 1e-6 {
			t.Fatalf("qt=%d: FR and BF differ by %g with border-exiting objects", qt, d)
		}
	}
	// At qt=60 all objects have left: the region must be empty.
	q := Query{Rho: 1.0 / 1e6, L: 60, At: 60}
	r, err := s.Snapshot(q, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Region) != 0 {
		t.Errorf("objects left the plane but region non-empty: %v", r.Region[:1])
	}
}

func TestFilterMarksAccessor(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 1000, 14)
	fm, err := s.FilterMarks(Query{Rho: RelRhoTest(1000, 2), L: 60, At: 0})
	if err != nil {
		t.Fatal(err)
	}
	a, rj, c := fm.CountMarks()
	if a+rj+c != 50*50 {
		t.Errorf("marks cover %d cells, want %d", a+rj+c, 2500)
	}
	if _, err := s.FilterMarks(Query{Rho: -1, L: 60, At: 0}); err == nil {
		t.Error("invalid query must be rejected")
	}
}

func TestMergeCandidatesEquivalence(t *testing.T) {
	// With and without candidate-window merging, FR answers are identical;
	// merging must not retrieve more object records.
	cfgPlain := testConfig()
	cfgMerged := testConfig()
	cfgMerged.MergeCandidates = true
	sPlain, gen := loadServer(t, cfgPlain, 4000, 61)
	sMerged, err := NewServer(cfgMerged)
	if err != nil {
		t.Fatal(err)
	}
	if err := sMerged.Load(gen.InitialStates()); err != nil {
		t.Fatal(err)
	}
	for _, varrho := range []float64{1, 2, 3} {
		q := Query{Rho: RelRhoTest(4000, varrho), L: 60, At: 10}
		a, err := sPlain.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sMerged.Snapshot(q, FR)
		if err != nil {
			t.Fatal(err)
		}
		if d := a.Region.DifferenceArea(b.Region) + b.Region.DifferenceArea(a.Region); d > 1e-6 {
			t.Fatalf("varrho=%g: merged and per-cell FR differ by area %g", varrho, d)
		}
		if b.ObjectsRetrieved > a.ObjectsRetrieved {
			t.Errorf("varrho=%g: merging retrieved MORE objects (%d > %d)",
				varrho, b.ObjectsRetrieved, a.ObjectsRetrieved)
		}
		t.Logf("varrho=%g: per-cell retrieved %d, merged %d (%.1fx less)",
			varrho, a.ObjectsRetrieved, b.ObjectsRetrieved,
			float64(a.ObjectsRetrieved)/float64(max(b.ObjectsRetrieved, 1)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
