package core

import (
	"math"
	"testing"
	"time"

	"pdr/internal/datagen"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// testConfig is a scaled-down default: coarser structures, same shapes.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.HistM = 50 // lc = 20, supports l >= 40
	cfg.L = 60
	cfg.PAMD = 128
	return cfg
}

func loadServer(t *testing.T, cfg Config, n int, seed int64) (*Server, *datagen.Generator) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := datagen.DefaultConfig(n)
	gcfg.Seed = seed
	gcfg.Warmup = 100
	g, err := datagen.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(g.InitialStates()); err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty config must be rejected")
	}
	cfg := DefaultConfig()
	cfg.U = 0
	if _, err := NewServer(cfg); err == nil {
		t.Error("U=0 must be rejected")
	}
}

func TestQueryValidation(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 100, 1)
	if _, err := s.Snapshot(Query{Rho: -1, L: 60, At: 0}, FR); err == nil {
		t.Error("negative rho must be rejected")
	}
	if _, err := s.Snapshot(Query{Rho: 1, L: 0, At: 0}, FR); err == nil {
		t.Error("l=0 must be rejected")
	}
	if _, err := s.Snapshot(Query{Rho: 1, L: 60, At: 1000}, FR); err == nil {
		t.Error("far-future query time must be rejected")
	}
	if _, err := s.Snapshot(Query{Rho: 1, L: 60, At: 0}, Method(99)); err == nil {
		t.Error("unknown method must be rejected")
	}
	// PA with mismatched l is rejected with guidance.
	if _, err := s.Snapshot(Query{Rho: 1, L: 45, At: 0}, PA); err == nil {
		t.Error("PA with l != configured L must be rejected")
	}
}

func relRho(n int, varrho float64) float64 {
	// The paper's relative threshold: rho = N * varrho / 10^6 for the
	// 1000x1000 area.
	return float64(n) * varrho / 1e6
}

func TestFREqualsBruteForce(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 2000, 2)
	for _, varrho := range []float64{1, 2, 3} {
		for _, qt := range []motion.Tick{0, 30, 90} {
			q := Query{Rho: relRho(2000, varrho), L: 60, At: qt}
			fr, err := s.Snapshot(q, FR)
			if err != nil {
				t.Fatal(err)
			}
			bf, err := s.Snapshot(q, BruteForce)
			if err != nil {
				t.Fatal(err)
			}
			fa, ba := fr.Region.Area(), bf.Region.Area()
			if math.Abs(fa-ba) > 1e-6*(1+ba) {
				t.Fatalf("varrho=%g qt=%d: FR area %g != BF area %g", varrho, qt, fa, ba)
			}
			if d := fr.Region.DifferenceArea(bf.Region); d > 1e-6 {
				t.Fatalf("varrho=%g qt=%d: FR \\ BF area %g", varrho, qt, d)
			}
			if d := bf.Region.DifferenceArea(fr.Region); d > 1e-6 {
				t.Fatalf("varrho=%g qt=%d: BF \\ FR area %g", varrho, qt, d)
			}
		}
	}
}

func TestFREqualsBruteForceAfterUpdates(t *testing.T) {
	s, g := loadServer(t, testConfig(), 1500, 3)
	for tick := 0; tick < 20; tick++ {
		ups := g.Advance()
		if err := s.Tick(g.Now(), ups); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Rho: relRho(1500, 2), L: 60, At: s.Now() + 15}
	fr, err := s.Snapshot(q, FR)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := s.Snapshot(q, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if d := fr.Region.DifferenceArea(bf.Region) + bf.Region.DifferenceArea(fr.Region); d > 1e-6 {
		t.Fatalf("after updates: FR and BF differ by area %g", d)
	}
}

func TestDHBracketsExact(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 2000, 4)
	q := Query{Rho: relRho(2000, 2), L: 60, At: 10}
	exact, err := s.Snapshot(q, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := s.Snapshot(q, DHOptimistic)
	if err != nil {
		t.Fatal(err)
	}
	pess, err := s.Snapshot(q, DHPessimistic)
	if err != nil {
		t.Fatal(err)
	}
	// pessimistic subset of exact subset of optimistic.
	if d := pess.Region.DifferenceArea(exact.Region); d > 1e-6 {
		t.Errorf("pessimistic DH not inside exact region (excess %g)", d)
	}
	if d := exact.Region.DifferenceArea(opt.Region); d > 1e-6 {
		t.Errorf("exact region not inside optimistic DH (excess %g)", d)
	}
}

func TestPAApproximatesExact(t *testing.T) {
	cfg := testConfig()
	cfg.PAGrid = 20 // finer surfaces for a tight approximation
	s, _ := loadServer(t, cfg, 3000, 5)
	q := Query{Rho: relRho(3000, 2), L: 60, At: 5}
	exact, err := s.Snapshot(q, BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := s.Snapshot(q, PA)
	if err != nil {
		t.Fatal(err)
	}
	ea := exact.Region.Area()
	if ea == 0 {
		t.Skip("degenerate: no dense region at this threshold")
	}
	fp := approx.Region.DifferenceArea(exact.Region) / ea
	fn := exact.Region.DifferenceArea(approx.Region) / ea
	t.Logf("PA accuracy: r_fp=%.3f r_fn=%.3f (exact area %.0f)", fp, fn, ea)
	if fp > 1.0 || fn > 0.8 {
		t.Errorf("PA wildly inaccurate: r_fp=%g r_fn=%g", fp, fn)
	}
}

func TestIntervalQueryIsUnionOfSnapshots(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 1000, 6)
	q := Query{Rho: relRho(1000, 1.5), L: 60, At: 0}
	iv, err := s.Interval(q, 5, FR)
	if err != nil {
		t.Fatal(err)
	}
	var union geom.Region
	for qt := motion.Tick(0); qt <= 5; qt++ {
		sub := q
		sub.At = qt
		r, err := s.Snapshot(sub, FR)
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, r.Region...)
	}
	if d := math.Abs(iv.Region.Area() - union.Area()); d > 1e-6 {
		t.Errorf("interval area %g != union of snapshots %g", iv.Region.Area(), union.Area())
	}
	if _, err := s.Interval(q, -1, FR); err == nil {
		t.Error("empty interval must be rejected")
	}
}

func TestUpdateErrors(t *testing.T) {
	s, _ := loadServer(t, testConfig(), 10, 7)
	st := motion.State{ID: 3, Pos: geom.Point{X: 1, Y: 1}, Ref: 0}
	// Deleting a state that does not match the live one fails.
	if err := s.Apply(motion.NewDelete(st, 0)); err == nil {
		t.Error("mismatched delete must fail")
	}
	// Deleting an unknown object fails.
	unknown := motion.State{ID: 9999, Pos: geom.Point{X: 1, Y: 1}, Ref: 0}
	if err := s.Apply(motion.NewDelete(unknown, 0)); err == nil {
		t.Error("unknown delete must fail")
	}
	// Double insert fails.
	fresh := motion.State{ID: 5000, Pos: geom.Point{X: 2, Y: 2}, Ref: 0}
	if err := s.Apply(motion.NewInsert(fresh)); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(motion.NewInsert(fresh)); err == nil {
		t.Error("double insert must fail")
	}
	// Time cannot move backwards.
	if err := s.Tick(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(3, nil); err == nil {
		t.Error("backwards tick must fail")
	}
}

func TestCostAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.BufferPages = 2 // force misses
	cfg.IOCharge = 10 * time.Millisecond
	s, _ := loadServer(t, cfg, 3000, 8)
	q := Query{Rho: relRho(3000, 1), L: 60, At: 0}
	r, err := s.Snapshot(q, FR)
	if err != nil {
		t.Fatal(err)
	}
	if r.Candidates > 0 && r.IOs == 0 {
		t.Error("FR with candidates over a tiny buffer must incur I/O")
	}
	if r.IOTime != time.Duration(r.IOs)*cfg.IOCharge {
		t.Errorf("IOTime %v inconsistent with IOs %d", r.IOTime, r.IOs)
	}
	if r.Total() != r.CPU+r.IOTime {
		t.Error("Total must be CPU + IOTime")
	}
	// PA touches no pages.
	p, err := s.Snapshot(q, PA)
	if err != nil {
		t.Fatal(err)
	}
	if p.IOs != 0 {
		t.Errorf("PA incurred %d I/Os, want 0", p.IOs)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		FR: "FR", PA: "PA", DHOptimistic: "DH-opt", DHPessimistic: "DH-pess",
		BruteForce: "BF", Method(42): "Method(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Method(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestFRSupportsMultipleEdgeLengths(t *testing.T) {
	// Unlike PA, FR answers queries for any l >= 2*lc at query time.
	s, _ := loadServer(t, testConfig(), 1500, 9)
	for _, l := range []float64{40, 60, 100, 250} {
		q := Query{Rho: relRho(1500, 2), L: l, At: 0}
		fr, err := s.Snapshot(q, FR)
		if err != nil {
			t.Fatalf("l=%g: %v", l, err)
		}
		bf, err := s.Snapshot(q, BruteForce)
		if err != nil {
			t.Fatal(err)
		}
		if d := fr.Region.DifferenceArea(bf.Region) + bf.Region.DifferenceArea(fr.Region); d > 1e-6 {
			t.Fatalf("l=%g: FR and BF differ by %g", l, d)
		}
	}
}
