package core

import "fmt"

// Plan is a method recommendation for a query, produced from a cheap
// filter-step probe without touching the object index.
type Plan struct {
	// Method is the recommended evaluation strategy.
	Method Method
	// Candidates is the number of cells the FR refinement would resolve.
	Candidates int
	// RefineObjects estimates the object records FR would retrieve,
	// computed from histogram selectivity over the grown candidate cells.
	RefineObjects float64
	// PABudget is the fixed work estimate of a PA extraction (in the same
	// arbitrary units as RefineObjects).
	PABudget float64
	// Reason states the decision in one sentence.
	Reason string
}

// Recommend picks an evaluation method for q. With allowApprox false the
// answer is always FR (the only complete exact method with index support).
// With allowApprox true, the planner probes the filter step and recommends
// the Chebyshev approximation when (a) the surfaces were built for q.L and
// (b) the estimated refinement volume exceeds the roughly-constant cost of
// a branch-and-bound extraction; otherwise exact FR is cheap enough to
// prefer.
func (s *Server) Recommend(q Query, allowApprox bool) (*Plan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.validateLocked(q); err != nil {
		return nil, err
	}
	if !allowApprox {
		return &Plan{Method: FR, Reason: "exact answer required"}, nil
	}
	if s.surf == nil {
		return &Plan{Method: FR, Reason: "approximation surfaces are disabled"}, nil
	}
	// lint:ignore floateq config identity: the surfaces answer only the
	// exact l they were built for, so the planner must match it exactly.
	if q.L != s.surf.L() {
		return &Plan{Method: FR, Reason: fmt.Sprintf(
			"approximation surfaces are built for l=%g, query uses l=%g", s.surf.L(), q.L)}, nil
	}
	fr, err := s.hist.Filter(q.At, q.Rho, q.L)
	if err != nil {
		return nil, err
	}
	cands := fr.Candidates()
	fr.Release()
	plan := &Plan{
		// A branch-and-bound extraction evaluates on the order of the md^2
		// floor cells in the worst case; the constant per evaluation is
		// comparable to one sweep event per retrieved object.
		PABudget: float64(s.cfg.PAMD) * float64(s.cfg.PAMD) / 8,
	}
	for _, c := range cands {
		plan.Candidates++
		grown := s.hist.CellRect(c.I, c.J).Grow(q.L / 2)
		est, err := s.hist.EstimateCount(q.At, grown)
		if err != nil {
			return nil, err
		}
		plan.RefineObjects += est
	}
	if plan.RefineObjects > plan.PABudget {
		plan.Method = PA
		plan.Reason = fmt.Sprintf(
			"estimated refinement volume %.0f objects exceeds the approximation budget %.0f",
			plan.RefineObjects, plan.PABudget)
	} else {
		plan.Method = FR
		plan.Reason = fmt.Sprintf(
			"refinement is cheap (%d candidate cells, ~%.0f objects); exact answer costs little",
			plan.Candidates, plan.RefineObjects)
	}
	return plan, nil
}
