package core

import (
	"testing"

	"pdr/internal/datagen"
)

// BenchmarkServerTick measures end-to-end update ingestion: one tick of a
// realistic stream applied to histogram + surfaces + index, reported per
// update record.
func BenchmarkServerTick(b *testing.B) {
	cfg := testConfig()
	s, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := datagen.DefaultConfig(20000)
	gcfg.Seed = 1
	g, err := datagen.New(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Load(g.InitialStates()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	records := 0
	for i := 0; i < b.N; i++ {
		ups := g.Advance()
		if err := s.Tick(g.Now(), ups); err != nil {
			b.Fatal(err)
		}
		records += len(ups)
	}
	if records > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(records), "ns/update")
	}
}

// BenchmarkSnapshotFR and BenchmarkSnapshotPA measure steady-state query
// latency at a fixed scale.
func BenchmarkSnapshotFR(b *testing.B) {
	benchSnapshot(b, FR)
}

func BenchmarkSnapshotPA(b *testing.B) {
	benchSnapshot(b, PA)
}

func benchSnapshot(b *testing.B, m Method) {
	b.Helper()
	cfg := testConfig()
	s, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := datagen.DefaultConfig(20000)
	gcfg.Seed = 2
	g, err := datagen.New(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Load(g.InitialStates()); err != nil {
		b.Fatal(err)
	}
	q := Query{Rho: RelRhoTest(20000, 3), L: 60, At: 15}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Snapshot(q, m); err != nil {
			b.Fatal(err)
		}
	}
}
