package bxtree

import (
	"math/rand"
	"sort"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
)

func area1000() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func newIndex(t *testing.T) *Index {
	t.Helper()
	x, err := New(Config{Pool: storage.NewPool(0), Area: area1000(), PhaseLen: 30})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func randomState(rng *rand.Rand, id int, ref motion.Tick) motion.State {
	return motion.State{
		ID:  motion.ObjectID(id),
		Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		Vel: geom.Vec{X: rng.Float64()*3 - 1.5, Y: rng.Float64()*3 - 1.5},
		Ref: ref,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Area: area1000(), PhaseLen: 30}); err == nil {
		t.Error("nil pool must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), PhaseLen: 30}); err == nil {
		t.Error("empty area must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), Area: area1000()}); err == nil {
		t.Error("zero phase length must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), Area: area1000(), PhaseLen: 30, Bits: 32}); err == nil {
		t.Error("oversized Bits must be rejected")
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	x := newIndex(t)
	rng := rand.New(rand.NewSource(1))
	const n = 4000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, motion.Tick(rng.Intn(60)))
		x.Insert(states[i])
	}
	x.SetNow(60)
	if x.Len() != n {
		t.Fatalf("Len = %d, want %d", x.Len(), n)
	}
	for trial := 0; trial < 50; trial++ {
		qt := motion.Tick(60 + rng.Intn(90))
		r := geom.Rect{MinX: rng.Float64() * 800, MinY: rng.Float64() * 800}
		r.MaxX = r.MinX + 40 + rng.Float64()*200
		r.MaxY = r.MinY + 40 + rng.Float64()*200
		var want, got []int
		for _, s := range states {
			if r.ContainsClosed(s.PositionAt(qt)) {
				want = append(want, int(s.ID))
			}
		}
		for _, s := range x.RangeQuery(r, qt) {
			got = append(got, int(s.ID))
		}
		sort.Ints(want)
		sort.Ints(got)
		if len(want) != len(got) {
			t.Fatalf("trial %d qt=%d: got %d results, want %d", trial, qt, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestDeleteAll(t *testing.T) {
	x := newIndex(t)
	rng := rand.New(rand.NewSource(2))
	const n = 1500
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, motion.Tick(rng.Intn(90)))
		x.Insert(states[i])
	}
	for _, i := range rng.Perm(n) {
		if !x.Delete(states[i]) {
			t.Fatalf("Delete(%d) failed", states[i].ID)
		}
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", x.Len())
	}
	if x.Delete(states[0]) {
		t.Error("double delete succeeded")
	}
	if got := x.RangeQuery(area1000(), 0); len(got) != 0 {
		t.Fatalf("empty index returned %d results", len(got))
	}
	if len(x.phases) != 0 {
		t.Errorf("phase bookkeeping leaked: %v", x.phases)
	}
}

func TestOutliersStillFound(t *testing.T) {
	x := newIndex(t)
	// A rocket: projected label position way outside the domain margin.
	s := motion.State{
		ID:  motion.ObjectID(1),
		Pos: geom.Point{X: 990, Y: 500},
		Vel: geom.Vec{X: 100, Y: 0}, // 100/tick; label up to 30 ticks away
		Ref: 1,
	}
	x.Insert(s)
	if x.Outliers() != 1 {
		t.Fatalf("Outliers = %d, want 1 (label projection leaves the domain)", x.Outliers())
	}
	// Still findable at qt=1 (inside the area).
	got := x.RangeQuery(geom.Rect{MinX: 980, MinY: 490, MaxX: 1000, MaxY: 510}, 1)
	if len(got) != 1 {
		t.Fatalf("outlier not found: %d results", len(got))
	}
	if !x.Delete(s) {
		t.Fatal("outlier delete failed")
	}
	if x.Len() != 0 {
		t.Fatal("outlier delete did not decrement size")
	}
}

func TestAllReturnsEverything(t *testing.T) {
	x := newIndex(t)
	rng := rand.New(rand.NewSource(3))
	ids := map[motion.ObjectID]bool{}
	for i := 0; i < 500; i++ {
		s := randomState(rng, i, motion.Tick(rng.Intn(40)))
		x.Insert(s)
		ids[s.ID] = true
	}
	all := x.All()
	if len(all) != 500 {
		t.Fatalf("All returned %d, want 500", len(all))
	}
	for _, s := range all {
		if !ids[s.ID] {
			t.Fatalf("All returned unknown id %d", s.ID)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	x := newIndex(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		x.Insert(randomState(rng, i, 0))
	}
	visits := 0
	x.Search(area1000(), 0, func(motion.State) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("early stop visited %d, want 5", visits)
	}
}

func TestUpdateChurn(t *testing.T) {
	x := newIndex(t)
	rng := rand.New(rand.NewSource(5))
	const n = 800
	cur := make([]motion.State, n)
	for i := range cur {
		cur[i] = randomState(rng, i, 0)
		x.Insert(cur[i])
	}
	for now := motion.Tick(1); now <= 60; now++ {
		x.SetNow(now)
		for k := 0; k < 40; k++ {
			i := rng.Intn(n)
			if !x.Delete(cur[i]) {
				t.Fatalf("now=%d: Delete(%d) failed", now, cur[i].ID)
			}
			cur[i] = randomState(rng, i, now)
			x.Insert(cur[i])
		}
	}
	// Full-coverage correctness check after heavy churn.
	qt := motion.Tick(80)
	r := geom.Rect{MinX: 250, MinY: 250, MaxX: 700, MaxY: 700}
	want := 0
	for _, s := range cur {
		if r.ContainsClosed(s.PositionAt(qt)) {
			want++
		}
	}
	if got := len(x.RangeQuery(r, qt)); got != want {
		t.Fatalf("after churn: got %d, want %d", got, want)
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	x, err := New(Config{Pool: storage.NewPool(0), Area: area1000(), PhaseLen: 30})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		x.Insert(randomState(rng, i, motion.Tick(rng.Intn(60))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := geom.Rect{MinX: rng.Float64() * 900, MinY: rng.Float64() * 900}
		r.MaxX = r.MinX + 80
		r.MaxY = r.MinY + 80
		x.RangeQuery(r, motion.Tick(60+rng.Intn(60)))
	}
}
