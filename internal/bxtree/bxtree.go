// Package bxtree implements a B^x-tree (Jensen, Lin & Ooi, VLDB 2004) — the
// B+-tree-based moving-object index the PDR paper cites as an alternative
// substrate for predicted trajectories.
//
// Each movement is assigned to the time phase of its reference time and its
// position is forward-projected to the phase's label timestamp (the phase
// end); the projected position's grid cell is linearized with the Z-order
// curve, and (phase, zvalue) becomes a B+-tree key. A timestamp range query
// expands the window per active phase by vmax * |qt - label| plus one cell
// diagonal, scans the phase's curve interval with BIGMIN jumps, and filters
// candidates exactly. Movements whose projected position falls outside the
// indexable domain are kept in a small exactly-scanned outlier set, so
// answers are always complete.
package bxtree

import (
	"fmt"
	"math"

	"pdr/internal/bptree"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
	"pdr/internal/zcurve"
)

// Config parameterizes the index.
type Config struct {
	// Pool backs the B+-tree pages. Required.
	Pool *storage.Pool
	// Area is the monitored plane; the indexable domain is Area grown by
	// Margin on every side (projected label positions can overshoot).
	Area geom.Rect
	// Margin extends the grid domain beyond the area (default: half the
	// area width).
	Margin float64
	// Bits is the per-axis grid resolution exponent (2^Bits cells per
	// axis; default 10 -> 1024 x 1024).
	Bits int
	// PhaseLen is the time-phase width (default U/2 is the classic pick;
	// callers pass it directly).
	PhaseLen motion.Tick
	// PageSize in bytes (default 4 KB).
	PageSize int
}

// Index is a B^x-tree. Not safe for concurrent use.
type Index struct {
	cfg    Config
	domain geom.Rect
	cellW  float64
	cellH  float64
	maxXY  uint32
	tree   *bptree.Tree
	now    motion.Tick
	size   int
	vmax   float64
	// phases tracks live entry counts per absolute phase number.
	phases map[int64]int
	// outliers hold movements whose label projection leaves the domain.
	outliers map[motion.ObjectID]motion.State
}

// New creates an empty index.
func New(cfg Config) (*Index, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("bxtree: nil pool")
	}
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("bxtree: empty area")
	}
	if cfg.PhaseLen <= 0 {
		return nil, fmt.Errorf("bxtree: phase length must be positive, got %d", cfg.PhaseLen)
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 10
	}
	if cfg.Bits > 20 {
		return nil, fmt.Errorf("bxtree: Bits %d too large (max 20)", cfg.Bits)
	}
	if cfg.Margin <= 0 {
		cfg.Margin = cfg.Area.Width() / 2
	}
	tree, err := bptree.New(bptree.Config{Pool: cfg.Pool, PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	domain := cfg.Area.Grow(cfg.Margin)
	n := 1 << uint(cfg.Bits)
	return &Index{
		cfg:      cfg,
		domain:   domain,
		cellW:    domain.Width() / float64(n),
		cellH:    domain.Height() / float64(n),
		maxXY:    uint32(n - 1),
		tree:     tree,
		phases:   make(map[int64]int),
		outliers: make(map[motion.ObjectID]motion.State),
	}, nil
}

// Len returns the number of indexed movements.
func (x *Index) Len() int { return x.size }

// Now returns the current time anchor.
func (x *Index) Now() motion.Tick { return x.now }

// SetNow advances the current time (monotone).
func (x *Index) SetNow(now motion.Tick) {
	if now > x.now {
		x.now = now
	}
}

// Outliers returns the number of movements kept outside the curve index.
func (x *Index) Outliers() int { return len(x.outliers) }

func (x *Index) phaseOf(ref motion.Tick) int64 {
	p := int64(ref) / int64(x.cfg.PhaseLen)
	if ref < 0 && int64(ref)%int64(x.cfg.PhaseLen) != 0 {
		p--
	}
	return p
}

// label returns the label timestamp of phase p: the phase end.
func (x *Index) label(p int64) motion.Tick {
	return motion.Tick((p + 1) * int64(x.cfg.PhaseLen))
}

// cellOf maps an in-domain point to grid coordinates.
func (x *Index) cellOf(p geom.Point) (uint32, uint32) {
	cx := uint32((p.X - x.domain.MinX) / x.cellW)
	cy := uint32((p.Y - x.domain.MinY) / x.cellH)
	if cx > x.maxXY {
		cx = x.maxXY
	}
	if cy > x.maxXY {
		cy = x.maxXY
	}
	return cx, cy
}

// key builds the B+-tree key for phase p and curve value z.
func key(p int64, z uint64) uint64 {
	return uint64(p)<<42 | z
}

// keyFor returns the key of movement s and whether it is indexable (false:
// outlier).
func (x *Index) keyFor(s motion.State) (uint64, bool) {
	p := x.phaseOf(s.Ref)
	if p < 0 || p >= 1<<21 {
		return 0, false
	}
	pos := s.PositionAt(x.label(p))
	if !x.domain.Contains(pos) {
		return 0, false
	}
	cx, cy := x.cellOf(pos)
	return key(p, zcurve.Interleave(cx, cy)), true
}

// Insert indexes the movement s.
func (x *Index) Insert(s motion.State) {
	if v := math.Max(math.Abs(s.Vel.X), math.Abs(s.Vel.Y)); v > x.vmax {
		x.vmax = v
	}
	if k, ok := x.keyFor(s); ok {
		x.tree.Insert(k, s)
		x.phases[x.phaseOf(s.Ref)]++
	} else {
		x.outliers[s.ID] = s
	}
	x.size++
}

// Delete removes the movement s (matched exactly as inserted), reporting
// whether it was found.
func (x *Index) Delete(s motion.State) bool {
	if k, ok := x.keyFor(s); ok {
		removed := x.tree.Delete(k, func(v motion.State) bool { return v == s })
		if removed {
			p := x.phaseOf(s.Ref)
			x.phases[p]--
			if x.phases[p] < 0 {
				panic(fmt.Sprintf("bxtree: phase %d entry count underflow", p)) // structural corruption; unrecoverable
			}
			if x.phases[p] == 0 {
				delete(x.phases, p)
			}
			x.size--
		}
		return removed
	}
	if v, ok := x.outliers[s.ID]; ok && v == s {
		delete(x.outliers, s.ID)
		x.size--
		return true
	}
	return false
}

// Search visits every movement whose predicted position at qt lies in r
// (closed containment). fn returning false stops the search.
func (x *Index) Search(r geom.Rect, qt motion.Tick, fn func(motion.State) bool) {
	visit := func(s motion.State) bool {
		if r.ContainsClosed(s.PositionAt(qt)) {
			return fn(s)
		}
		return true
	}
	for _, s := range x.outliers {
		if !visit(s) {
			return
		}
	}
	for p := range x.phases {
		if !x.searchPhase(p, r, qt, visit) {
			return
		}
	}
}

// searchPhase scans one phase's curve interval; visit returning false stops
// the scan and propagates false.
func (x *Index) searchPhase(p int64, r geom.Rect, qt motion.Tick, visit func(motion.State) bool) bool {
	dt := float64(qt - x.label(p))
	if dt < 0 {
		dt = -dt
	}
	// One extra cell absorbs the projected position's in-cell offset.
	grow := x.vmax*dt + math.Max(x.cellW, x.cellH)
	w := r.Grow(grow).Intersect(x.domain)
	if w.IsEmpty() {
		return true
	}
	x1, y1 := x.cellOf(geom.Point{X: w.MinX, Y: w.MinY})
	x2, y2 := x.cellOf(geom.Point{X: w.MaxX, Y: w.MaxY})
	lo := key(p, zcurve.Interleave(x1, y1))
	hi := key(p, zcurve.Interleave(x2, y2))

	it := x.tree.Seek(lo)
	for it.Valid() && it.Key() <= hi {
		z := it.Key() & (1<<42 - 1)
		if zcurve.InWindow(z, x1, y1, x2, y2) {
			if !visit(it.Value()) {
				return false
			}
			it.Next()
			continue
		}
		// Jump the gap with BIGMIN.
		bm, ok := zcurve.BigMin(z, x1, y1, x2, y2)
		if !ok {
			break
		}
		it.SeekTo(key(p, bm))
	}
	return true
}

// RangeQuery collects Search results.
func (x *Index) RangeQuery(r geom.Rect, qt motion.Tick) []motion.State {
	var out []motion.State
	x.Search(r, qt, func(s motion.State) bool {
		out = append(out, s)
		return true
	})
	return out
}

// All returns every indexed movement.
func (x *Index) All() []motion.State {
	out := make([]motion.State, 0, x.size)
	for _, s := range x.outliers {
		out = append(out, s)
	}
	x.tree.Scan(0, ^uint64(0), func(_ uint64, s motion.State) bool {
		out = append(out, s)
		return true
	})
	return out
}
