package roadnet

import (
	"math/rand"
	"testing"

	"pdr/internal/geom"
)

func testArea() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func testNet(t *testing.T) *Network {
	t.Helper()
	net, err := New(DefaultConfig(testArea()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return net
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Area: testArea(), GridN: 2}); err == nil {
		t.Error("GridN=2 must be rejected")
	}
	if _, err := New(Config{Area: geom.Rect{}, GridN: 8}); err == nil {
		t.Error("empty area must be rejected")
	}
}

func TestNetworkStructure(t *testing.T) {
	net := testNet(t)
	if got, want := net.NumNodes(), 32*32; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	area := net.Area()
	for v := 0; v < net.NumNodes(); v++ {
		p := net.NodePos(NodeID(v))
		if !area.ContainsClosed(p) {
			t.Fatalf("node %d at %v outside area %v", v, p, area)
		}
		if net.Degree(NodeID(v)) == 0 {
			t.Fatalf("node %d has no edges", v)
		}
	}
}

func TestAdjacencySymmetry(t *testing.T) {
	net := testNet(t)
	for a := 0; a < net.NumNodes(); a++ {
		for _, he := range net.adj[a] {
			found := false
			for _, back := range net.adj[he.to] {
				if back.to == NodeID(a) && back.class == he.class {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d (%v) has no symmetric counterpart", a, he.to, he.class)
			}
		}
	}
}

func TestNetworkHasAllClasses(t *testing.T) {
	net := testNet(t)
	seen := map[Class]bool{}
	for a := 0; a < net.NumNodes(); a++ {
		for _, he := range net.adj[a] {
			seen[he.class] = true
		}
	}
	for _, c := range []Class{Street, Avenue, Freeway} {
		if !seen[c] {
			t.Errorf("network has no %v edges", c)
		}
	}
}

func TestSpeedFactorsOrdered(t *testing.T) {
	if !(Freeway.SpeedFactor() > Avenue.SpeedFactor() && Avenue.SpeedFactor() > Street.SpeedFactor()) {
		t.Error("speed factors must be ordered Freeway > Avenue > Street")
	}
	if Street.String() != "street" || Avenue.String() != "avenue" || Freeway.String() != "freeway" {
		t.Error("Class.String mismatch")
	}
}

func TestSampleHubSkew(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(7))
	counts := map[NodeID]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[net.SampleHub(rng)]++
	}
	if len(counts) != len(net.hubs) {
		t.Fatalf("sampled %d distinct hubs, want %d", len(counts), len(net.hubs))
	}
	// The first hub (weight 1) must dominate the last (weight 1/k).
	first, last := counts[net.hubs[0]], counts[net.hubs[len(net.hubs)-1]]
	if first <= last {
		t.Errorf("hub skew missing: first=%d last=%d", first, last)
	}
}

func TestTravelerStaysOnNetworkAndInArea(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(11))
	tr := NewTraveler(net, rng, 1.2)
	for step := 0; step < 2000; step++ {
		p := tr.Pos(net)
		if !net.Area().ContainsClosed(p) {
			t.Fatalf("step %d: traveler at %v left the area", step, p)
		}
		tr.Step(net, rng)
	}
}

func TestTravelerVelocityConsistentWithMotion(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(13))
	tr := NewTraveler(net, rng, 0.9)
	consistent := 0
	const steps = 500
	for i := 0; i < steps; i++ {
		p0 := tr.Pos(net)
		v := tr.Vel(net)
		turned := tr.Step(net, rng)
		p1 := tr.Pos(net)
		if !turned {
			// Linear prediction must match exactly when no turn happened.
			pred := p0.Add(v)
			if d := p1.Sub(pred).Norm(); d > 1e-6 {
				t.Fatalf("step %d: predicted %v, got %v (err %g)", i, pred, p1, d)
			}
			consistent++
		}
	}
	if consistent == 0 {
		t.Error("no straight-line steps observed; network geometry suspicious")
	}
}

func TestTravelerMakesProgressTowardDest(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(17))
	reached := 0
	for trial := 0; trial < 20; trial++ {
		tr := NewTraveler(net, rng, 2.0)
		dest := tr.Dest
		for step := 0; step < 5000; step++ {
			tr.Step(net, rng)
			if tr.From == dest || tr.Dest != dest {
				reached++
				break
			}
		}
	}
	if reached < 15 {
		t.Errorf("only %d/20 travelers reached a destination; greedy routing is broken", reached)
	}
}

func TestNextHopAvoidsUTurn(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		from := net.RandomNode(rng)
		if net.Degree(from) < 2 {
			continue
		}
		prev := net.adj[from][0].to
		dst := net.RandomNode(rng)
		if hop := net.NextHop(from, prev, dst, rng); hop == prev {
			t.Fatalf("NextHop made a U-turn from %d back to %d", from, prev)
		}
	}
}

func TestDistributionIsSkewed(t *testing.T) {
	// After warm-up, travelers must concentrate: the densest 10% of grid
	// cells should hold well over 10% of objects.
	net := testNet(t)
	rng := rand.New(rand.NewSource(23))
	const n = 600
	trs := make([]Traveler, n)
	for i := range trs {
		trs[i] = NewTraveler(net, rng, 1.0+rng.Float64())
	}
	for step := 0; step < 800; step++ {
		for i := range trs {
			trs[i].Step(net, rng)
		}
	}
	const g = 10
	var cells [g * g]int
	area := net.Area()
	for i := range trs {
		p := trs[i].Pos(net)
		cx := int((p.X - area.MinX) / area.Width() * g)
		cy := int((p.Y - area.MinY) / area.Height() * g)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		cells[cy*g+cx]++
	}
	counts := cells[:]
	for i := 1; i < len(counts); i++ { // insertion sort, descending
		for j := i; j > 0 && counts[j] > counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	top := 0
	for i := 0; i < g*g/10; i++ {
		top += counts[i]
	}
	if float64(top) < 0.25*n {
		t.Errorf("top-10%% cells hold %d/%d objects; distribution not skewed enough", top, n)
	}
}
