package roadnet

import (
	"container/heap"
	"math/rand"
)

// Router provides shortest-travel-time next hops toward the network's hub
// nodes, precomputed with one Dijkstra pass per hub. Travelers routed this
// way concentrate on the fastest corridors (freeways), which sharpens the
// skew of the object distribution compared to greedy geometric routing.
type Router struct {
	net *Network
	// nextHop[h][v] is the neighbor of v on a shortest path to hub h
	// (v itself when v == hub or unreachable).
	nextHop map[NodeID][]NodeID
}

// NewRouter precomputes routes to every hub.
func NewRouter(net *Network) *Router {
	r := &Router{net: net, nextHop: make(map[NodeID][]NodeID, len(net.hubs))}
	for _, h := range net.hubs {
		r.nextHop[h] = dijkstraTree(net, h)
	}
	return r
}

// Toward returns the next hop from v on a shortest path to dst. For non-hub
// destinations (or when v has already arrived) it falls back to the greedy
// geometric hop.
func (r *Router) Toward(v, prev, dst NodeID, rng *rand.Rand) NodeID {
	if hops, ok := r.nextHop[dst]; ok {
		if next := hops[v]; next != v {
			return next
		}
		return v
	}
	// Non-hub destination: greedy fallback (the common case is hub travel,
	// so this stays rare).
	return r.net.NextHop(v, prev, dst, rng)
}

// pqItem is one entry of the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// dijkstraTree computes, for every node, its next hop toward src along a
// minimum-travel-time path (edge weight = length / class speed factor).
// Because the graph is undirected, a shortest-path tree rooted at src gives
// next hops toward src by recording the parent relationship.
func dijkstraTree(net *Network, src NodeID) []NodeID {
	n := net.NumNodes()
	dist := make([]float64, n)
	next := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = -1 // unvisited
		next[i] = NodeID(i)
	}
	q := &pq{{node: src, dist: 0}}
	dist[src] = 0
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for _, he := range net.adj[v] {
			w := he.to
			length := net.nodes[w].Sub(net.nodes[v]).Norm()
			t := length / he.class.SpeedFactor()
			nd := dist[v] + t
			if dist[w] < 0 || nd < dist[w] {
				dist[w] = nd
				next[w] = v // moving to v is one step closer to src
				heap.Push(q, pqItem{node: w, dist: nd})
			}
		}
	}
	return next
}
