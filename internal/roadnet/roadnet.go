// Package roadnet builds synthetic metropolitan road networks and moves
// travelers along them.
//
// The paper evaluates PDR queries on objects moving over the Chicago
// metropolitan road network. That dataset is not available here, so this
// package substitutes the closest synthetic equivalent: a metro-style
// network with an avenue grid, radial freeways meeting at the city center,
// and a ring road, plus a small set of high-attraction hub nodes. Objects
// routed through such a network produce the same qualitative behaviour that
// matters for dense-region queries — highly skewed, corridor- and
// hub-concentrated object distributions — which is what the paper's
// experiments exercise.
package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"pdr/internal/geom"
)

// NodeID indexes a network node.
type NodeID int32

// Class is the road class of an edge; it scales travel speed.
type Class uint8

const (
	// Street is a low-speed local road.
	Street Class = iota
	// Avenue is a mid-speed arterial road.
	Avenue
	// Freeway is a high-speed limited-access road.
	Freeway
)

// SpeedFactor returns the fraction of an object's free-flow speed attainable
// on this road class.
func (c Class) SpeedFactor() float64 {
	switch c {
	case Freeway:
		return 1.0
	case Avenue:
		return 0.65
	default:
		return 0.4
	}
}

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Freeway:
		return "freeway"
	case Avenue:
		return "avenue"
	default:
		return "street"
	}
}

// halfEdge is one direction of an undirected edge.
type halfEdge struct {
	to    NodeID
	class Class
}

// Network is an undirected road network embedded in the plane.
type Network struct {
	nodes []geom.Point
	adj   [][]halfEdge
	hubs  []NodeID  // high-attraction destinations
	hubW  []float64 // cumulative hub weights for sampling
	area  geom.Rect
}

// Config parameterizes network synthesis.
type Config struct {
	// Area is the bounding region of the network (the paper's L x L plane).
	Area geom.Rect
	// GridN is the number of grid lines per axis (GridN x GridN nodes).
	GridN int
	// AvenueEvery promotes every k-th grid line to Avenue class.
	AvenueEvery int
	// Hubs is the number of high-attraction destination nodes (the city
	// center is always a hub).
	Hubs int
	// Seed drives all randomness in synthesis.
	Seed int64
}

// DefaultConfig returns the configuration used by the experiment harness: a
// 32x32 grid over the area with avenues every 4th line, 8 radial freeways, a
// ring road, and 6 hubs.
func DefaultConfig(area geom.Rect) Config {
	return Config{Area: area, GridN: 32, AvenueEvery: 4, Hubs: 6, Seed: 1}
}

// New synthesizes a metro network from cfg.
func New(cfg Config) (*Network, error) {
	if cfg.GridN < 3 {
		return nil, fmt.Errorf("roadnet: GridN must be >= 3, got %d", cfg.GridN)
	}
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("roadnet: empty area %v", cfg.Area)
	}
	if cfg.AvenueEvery <= 0 {
		cfg.AvenueEvery = 4
	}
	n := cfg.GridN
	net := &Network{
		nodes: make([]geom.Point, n*n),
		adj:   make([][]halfEdge, n*n),
		area:  cfg.Area,
	}
	dx := cfg.Area.Width() / float64(n-1)
	dy := cfg.Area.Height() / float64(n-1)
	id := func(i, j int) NodeID { return NodeID(i*n + j) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			net.nodes[id(i, j)] = geom.Point{
				X: cfg.Area.MinX + float64(i)*dx,
				Y: cfg.Area.MinY + float64(j)*dy,
			}
		}
	}

	classOf := func(line int) Class {
		if line%cfg.AvenueEvery == 0 {
			return Avenue
		}
		return Street
	}
	// Grid edges.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				net.connect(id(i, j), id(i+1, j), classOf(j))
			}
			if j+1 < n {
				net.connect(id(i, j), id(i, j+1), classOf(i))
			}
		}
	}

	c := n / 2
	// Radial freeways: promote the 4 axis corridors through the center and
	// add the 4 diagonals as new freeway edges.
	for k := 0; k < n-1; k++ {
		net.promote(id(k, c), id(k+1, c), Freeway)
		net.promote(id(c, k), id(c, k+1), Freeway)
	}
	for k := 0; k+1 < n; k++ {
		net.connect(id(k, k), id(k+1, k+1), Freeway)
		net.connect(id(k, n-1-k), id(k+1, n-2-k), Freeway)
	}
	// Ring road at one third of the radius.
	r := n / 3
	lo, hi := c-r, c+r
	if lo >= 0 && hi < n {
		for k := lo; k < hi; k++ {
			net.promote(id(k, lo), id(k+1, lo), Freeway)
			net.promote(id(k, hi), id(k+1, hi), Freeway)
			net.promote(id(lo, k), id(lo, k+1), Freeway)
			net.promote(id(hi, k), id(hi, k+1), Freeway)
		}
	}

	// Hubs: the center plus cfg.Hubs-1 random nodes biased toward the ring.
	rng := rand.New(rand.NewSource(cfg.Seed))
	net.hubs = append(net.hubs, id(c, c))
	for len(net.hubs) < cfg.Hubs {
		i := lo + rng.Intn(2*r+1)
		j := lo + rng.Intn(2*r+1)
		net.hubs = append(net.hubs, id(i, j))
	}
	// Zipf-ish hub weights: hub k has weight 1/(k+1).
	net.hubW = make([]float64, len(net.hubs))
	var cum float64
	for k := range net.hubs {
		cum += 1 / float64(k+1)
		net.hubW[k] = cum
	}
	return net, nil
}

func (net *Network) connect(a, b NodeID, c Class) {
	net.adj[a] = append(net.adj[a], halfEdge{b, c})
	net.adj[b] = append(net.adj[b], halfEdge{a, c})
}

// promote raises the class of the existing edge a-b to at least c; if the
// edge does not exist it is created.
func (net *Network) promote(a, b NodeID, c Class) {
	found := false
	for i := range net.adj[a] {
		if net.adj[a][i].to == b {
			found = true
			if net.adj[a][i].class < c {
				net.adj[a][i].class = c
			}
		}
	}
	for i := range net.adj[b] {
		if net.adj[b][i].to == a && net.adj[b][i].class < c {
			net.adj[b][i].class = c
		}
	}
	if !found {
		net.connect(a, b, c)
	}
}

// NumNodes returns the number of nodes in the network.
func (net *Network) NumNodes() int { return len(net.nodes) }

// NodePos returns the location of node v.
func (net *Network) NodePos(v NodeID) geom.Point { return net.nodes[v] }

// Area returns the bounding region of the network.
func (net *Network) Area() geom.Rect { return net.area }

// Degree returns the number of edges incident to v.
func (net *Network) Degree(v NodeID) int { return len(net.adj[v]) }

// RandomNode samples a node uniformly.
func (net *Network) RandomNode(rng *rand.Rand) NodeID {
	return NodeID(rng.Intn(len(net.nodes)))
}

// SampleHub samples a hub node with Zipf-skewed weights; this is the source
// of the skewed object distributions the paper's evaluation relies on.
func (net *Network) SampleHub(rng *rand.Rand) NodeID {
	u := rng.Float64() * net.hubW[len(net.hubW)-1]
	for k, w := range net.hubW {
		if u <= w {
			return net.hubs[k]
		}
	}
	return net.hubs[len(net.hubs)-1]
}

// NextHop returns the neighbor of from that greedily reduces Euclidean
// distance to dst, preferring faster road classes on near-ties. prev is the
// node the traveler just came from and is avoided unless it is the only
// option (no immediate U-turns).
func (net *Network) NextHop(from, prev, dst NodeID, rng *rand.Rand) NodeID {
	target := net.nodes[dst]
	best := NodeID(-1)
	bestScore := math.Inf(1)
	for _, he := range net.adj[from] {
		if he.to == prev && len(net.adj[from]) > 1 {
			continue
		}
		d := net.nodes[he.to].Sub(target).Norm()
		// Faster classes get a discount so travelers prefer corridors; a
		// small random jitter breaks ties and diversifies routes.
		score := d * (1.15 - 0.15*he.class.SpeedFactor()) * (1 + 0.05*rng.Float64())
		if score < bestScore {
			bestScore = score
			best = he.to
		}
	}
	if best < 0 { // isolated node; stay put
		return from
	}
	return best
}

// EdgeClass returns the class of edge a-b, or Street if the edge does not
// exist.
func (net *Network) EdgeClass(a, b NodeID) Class {
	for _, he := range net.adj[a] {
		if he.to == b {
			return he.class
		}
	}
	return Street
}

// Traveler is an object walking the network toward a destination hub.
type Traveler struct {
	From, To  NodeID  // current edge endpoints (moving From -> To)
	Dest      NodeID  // destination node
	Progress  float64 // distance covered along the current edge
	FreeSpeed float64 // free-flow speed (distance per tick)
	// Route, when non-nil, follows precomputed shortest-travel-time paths
	// to hub destinations instead of greedy geometric hops.
	Route *Router
}

// NewTraveler places a traveler at a uniformly random node heading to a
// hub-weighted destination, using greedy geometric routing.
func NewTraveler(net *Network, rng *rand.Rand, freeSpeed float64) Traveler {
	from := net.RandomNode(rng)
	dest := net.SampleHub(rng)
	to := net.NextHop(from, -1, dest, rng)
	return Traveler{From: from, To: to, Dest: dest, FreeSpeed: freeSpeed}
}

// NewRoutedTraveler places a traveler that follows shortest-travel-time
// paths computed by router.
func NewRoutedTraveler(net *Network, router *Router, rng *rand.Rand, freeSpeed float64) Traveler {
	from := net.RandomNode(rng)
	dest := net.SampleHub(rng)
	to := router.Toward(from, -1, dest, rng)
	if to == from {
		to = net.NextHop(from, -1, dest, rng)
	}
	return Traveler{From: from, To: to, Dest: dest, FreeSpeed: freeSpeed, Route: router}
}

// Pos returns the traveler's current location.
func (tr *Traveler) Pos(net *Network) geom.Point {
	a, b := net.nodes[tr.From], net.nodes[tr.To]
	d := b.Sub(a)
	length := d.Norm()
	if length == 0 {
		return a
	}
	f := tr.Progress / length
	if f > 1 {
		f = 1
	}
	return a.Add(d.Scale(f))
}

// Vel returns the traveler's current velocity vector (direction along the
// current edge scaled by the class-adjusted speed).
func (tr *Traveler) Vel(net *Network) geom.Vec {
	a, b := net.nodes[tr.From], net.nodes[tr.To]
	d := b.Sub(a)
	length := d.Norm()
	if length == 0 {
		return geom.Vec{}
	}
	speed := tr.FreeSpeed * net.EdgeClass(tr.From, tr.To).SpeedFactor()
	return d.Scale(speed / length)
}

// Step advances the traveler by one tick and reports whether its velocity
// vector changed (i.e. it turned at a node or reached its destination and
// picked a new one). A velocity change is what forces a location update in
// the workload generator.
func (tr *Traveler) Step(net *Network, rng *rand.Rand) (turned bool) {
	speed := tr.FreeSpeed * net.EdgeClass(tr.From, tr.To).SpeedFactor()
	remaining := speed
	for remaining > 0 {
		a, b := net.nodes[tr.From], net.nodes[tr.To]
		length := b.Sub(a).Norm()
		if length == 0 {
			// Degenerate edge; hop immediately.
			tr.advanceNode(net, rng)
			turned = true
			continue
		}
		left := length - tr.Progress
		if remaining < left {
			tr.Progress += remaining
			return turned
		}
		remaining -= left
		tr.advanceNode(net, rng)
		turned = true
		// Speed may differ on the new edge; recompute for the residual.
		speed = tr.FreeSpeed * net.EdgeClass(tr.From, tr.To).SpeedFactor()
		if speed <= 0 {
			return turned
		}
	}
	return turned
}

// advanceNode moves the traveler onto the next edge toward its destination,
// re-sampling the destination when reached.
func (tr *Traveler) advanceNode(net *Network, rng *rand.Rand) {
	arrived := tr.To
	if arrived == tr.Dest {
		// Dwell is not modelled; pick a fresh hub-weighted destination (or
		// occasionally a uniform one, so the periphery is not deserted).
		if rng.Float64() < 0.25 {
			tr.Dest = net.RandomNode(rng)
		} else {
			tr.Dest = net.SampleHub(rng)
		}
	}
	var next NodeID
	if tr.Route != nil {
		next = tr.Route.Toward(arrived, tr.From, tr.Dest, rng)
	} else {
		next = net.NextHop(arrived, tr.From, tr.Dest, rng)
	}
	if next == arrived {
		// Degenerate routing answer (destination equals the current node);
		// take any geometric hop so the walk cannot stall.
		next = net.NextHop(arrived, tr.From, tr.Dest, rng)
	}
	tr.From, tr.To = arrived, next
	tr.Progress = 0
}
