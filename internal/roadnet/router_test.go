package roadnet

import (
	"math/rand"
	"testing"
)

func TestRouterReachesHubs(t *testing.T) {
	net := testNet(t)
	router := NewRouter(net)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		v := net.RandomNode(rng)
		hub := net.SampleHub(rng)
		steps := 0
		prev := NodeID(-1)
		for v != hub {
			next := router.Toward(v, prev, hub, rng)
			if next == v {
				t.Fatalf("trial %d: router stalled at %d toward hub %d", trial, v, hub)
			}
			prev, v = v, next
			steps++
			if steps > net.NumNodes() {
				t.Fatalf("trial %d: no progress toward hub %d after %d steps", trial, hub, steps)
			}
		}
	}
}

func TestRouterShorterOrEqualTravelTime(t *testing.T) {
	// Shortest-path routing must never take longer (in travel time) than
	// greedy routing to the same hub.
	net := testNet(t)
	router := NewRouter(net)
	rng := rand.New(rand.NewSource(2))

	travelTime := func(route func(v, prev NodeID) NodeID, src, dst NodeID) float64 {
		v, prev := src, NodeID(-1)
		total := 0.0
		for v != dst {
			next := route(v, prev)
			if next == v {
				return -1
			}
			length := net.NodePos(next).Sub(net.NodePos(v)).Norm()
			total += length / net.EdgeClass(v, next).SpeedFactor()
			prev, v = v, next
			if total > 1e9 {
				return -1
			}
		}
		return total
	}

	worse := 0
	for trial := 0; trial < 25; trial++ {
		src := net.RandomNode(rng)
		hub := net.SampleHub(rng)
		if src == hub {
			continue
		}
		tRouted := travelTime(func(v, prev NodeID) NodeID {
			return router.Toward(v, prev, hub, rng)
		}, src, hub)
		tGreedy := travelTime(func(v, prev NodeID) NodeID {
			return net.NextHop(v, prev, hub, rng)
		}, src, hub)
		if tRouted < 0 {
			t.Fatalf("trial %d: routed walk failed", trial)
		}
		if tGreedy >= 0 && tRouted > tGreedy*1.0001 {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("shortest-path routing was slower than greedy on %d/25 trials", worse)
	}
}

func TestRoutedTravelerWalks(t *testing.T) {
	net := testNet(t)
	router := NewRouter(net)
	rng := rand.New(rand.NewSource(3))
	tr := NewRoutedTraveler(net, router, rng, 1.5)
	for step := 0; step < 2000; step++ {
		p := tr.Pos(net)
		if !net.Area().ContainsClosed(p) {
			t.Fatalf("step %d: routed traveler left the area at %v", step, p)
		}
		tr.Step(net, rng)
	}
}

func TestRoutedTravelersConcentrateOnCorridors(t *testing.T) {
	// Shortest-time routing prefers freeways; after warm-up, routed
	// travelers should sit on freeway edges more often than greedy ones.
	net := testNet(t)
	router := NewRouter(net)
	onFreeway := func(routed bool, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		const n = 300
		trs := make([]Traveler, n)
		for i := range trs {
			if routed {
				trs[i] = NewRoutedTraveler(net, router, rng, 1.0)
			} else {
				trs[i] = NewTraveler(net, rng, 1.0)
			}
		}
		for step := 0; step < 400; step++ {
			for i := range trs {
				trs[i].Step(net, rng)
			}
		}
		count := 0
		for i := range trs {
			if net.EdgeClass(trs[i].From, trs[i].To) == Freeway {
				count++
			}
		}
		return float64(count) / n
	}
	routed := onFreeway(true, 4)
	greedy := onFreeway(false, 4)
	t.Logf("freeway occupancy: routed=%.2f greedy=%.2f", routed, greedy)
	if routed <= greedy {
		t.Errorf("routed travelers on freeways (%.2f) not above greedy (%.2f)", routed, greedy)
	}
}
