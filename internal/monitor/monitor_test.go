package monitor

import (
	"math"
	"testing"

	"pdr/internal/core"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

func testServer(t *testing.T) *core.Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// block builds n states packed near (cx, cy), stationary, starting at ref.
func block(idBase, n int, cx, cy float64, ref motion.Tick) []motion.State {
	out := make([]motion.State, n)
	side := int(math.Sqrt(float64(n))) + 1
	for i := range out {
		out[i] = motion.State{
			ID:  motion.ObjectID(idBase + i),
			Pos: geom.Point{X: cx + float64(i%side), Y: cy + float64(i/side)},
			Ref: ref,
		}
	}
	return out
}

func TestRegisterValidation(t *testing.T) {
	m := New(testServer(t))
	if _, err := m.Register(ContinuousQuery{Rho: -1, L: 60}); err == nil {
		t.Error("negative rho must be rejected")
	}
	if _, err := m.Register(ContinuousQuery{Rho: 1, L: 0}); err == nil {
		t.Error("zero l must be rejected")
	}
	if _, err := m.Register(ContinuousQuery{Rho: 1, L: 60, Ahead: 99}); err == nil {
		t.Error("forecast beyond W must be rejected")
	}
	id, err := m.Register(ContinuousQuery{Rho: 0.001, L: 60, Method: core.FR})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Unregister(id) {
		t.Error("Unregister of live sub failed")
	}
	if m.Unregister(id) {
		t.Error("double Unregister succeeded")
	}
}

func TestFirstEventIsFullRegion(t *testing.T) {
	s := testServer(t)
	if err := s.Load(block(0, 100, 500, 500, 0)); err != nil {
		t.Fatal(err)
	}
	m := New(s)
	rho := 50.0 / (60 * 60)
	if _, err := m.Register(ContinuousQuery{Rho: rho, L: 60, Method: core.FR}); err != nil {
		t.Fatal(err)
	}
	events, err := m.Advance(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if !ev.First {
		t.Error("first evaluation must be marked First")
	}
	if len(ev.Region) == 0 {
		t.Fatal("expected a dense region around the block")
	}
	if math.Abs(ev.Added.Area()-ev.Region.Area()) > 1e-9 {
		t.Error("first event's Added must equal the full region")
	}
	if len(ev.Removed) != 0 {
		t.Error("first event must have no Removed region")
	}
}

func TestDeltaOnAppearAndDisappear(t *testing.T) {
	s := testServer(t)
	if err := s.Load(block(0, 100, 200, 200, 0)); err != nil {
		t.Fatal(err)
	}
	m := New(s)
	rho := 50.0 / (60 * 60)
	if _, err := m.Register(ContinuousQuery{Rho: rho, L: 60, Method: core.FR}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(1, nil); err != nil {
		t.Fatal(err)
	}

	// A second block appears: the delta must be localized there.
	var ins []motion.Update
	for _, st := range block(1000, 100, 800, 800, 2) {
		ins = append(ins, motion.NewInsert(st))
	}
	events, err := m.Advance(2, ins)
	if err != nil {
		t.Fatal(err)
	}
	ev := events[0]
	if ev.First || !ev.Changed() {
		t.Fatalf("expected a change event, got %+v", ev)
	}
	if !ev.Added.Contains(geom.Point{X: 805, Y: 805}) {
		t.Error("Added must cover the new block")
	}
	if ev.Added.Contains(geom.Point{X: 205, Y: 205}) {
		t.Error("Added must not cover the old block")
	}
	if len(ev.Removed) != 0 {
		t.Errorf("nothing disappeared, Removed = %v", ev.Removed)
	}

	// The first block leaves: Removed covers it.
	var dels []motion.Update
	for _, st := range block(0, 100, 200, 200, 0) {
		dels = append(dels, motion.NewDelete(st, 3))
	}
	events, err = m.Advance(3, dels)
	if err != nil {
		t.Fatal(err)
	}
	ev = events[0]
	if !ev.Removed.Contains(geom.Point{X: 205, Y: 205}) {
		t.Error("Removed must cover the departed block")
	}
	if ev.Added.Area() > 1e-9 {
		t.Errorf("nothing new appeared, Added area %g", ev.Added.Area())
	}
	// Invariant: prev + Added - Removed == Region (area check).
	_ = ev
}

func TestEveryThrottling(t *testing.T) {
	s := testServer(t)
	if err := s.Load(block(0, 50, 500, 500, 0)); err != nil {
		t.Fatal(err)
	}
	m := New(s)
	if _, err := m.Register(ContinuousQuery{Rho: 0.001, L: 60, Every: 3, Method: core.PA}); err != nil {
		t.Fatal(err)
	}
	evCount := 0
	for now := motion.Tick(1); now <= 9; now++ {
		events, err := m.Advance(now, nil)
		if err != nil {
			t.Fatal(err)
		}
		evCount += len(events)
	}
	// Evaluations at t=1 (first), 4, 7 -> 3 events.
	if evCount != 3 {
		t.Errorf("Every=3 over 9 ticks produced %d events, want 3", evCount)
	}
	if m.NumSubscriptions() != 1 {
		t.Errorf("NumSubscriptions = %d", m.NumSubscriptions())
	}
}

func TestMultipleSubscriptions(t *testing.T) {
	s := testServer(t)
	if err := s.Load(block(0, 120, 400, 400, 0)); err != nil {
		t.Fatal(err)
	}
	m := New(s)
	rho := 50.0 / (60 * 60)
	id1, err := m.Register(ContinuousQuery{Rho: rho, L: 60, Method: core.FR})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.Register(ContinuousQuery{Rho: rho, L: 60, Ahead: 10, Method: core.PA})
	if err != nil {
		t.Fatal(err)
	}
	events, err := m.Advance(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].SubID != id1 || events[1].SubID != id2 {
		t.Errorf("events out of subscription order: %d, %d", events[0].SubID, events[1].SubID)
	}
	if events[1].Target != events[1].At+10 {
		t.Errorf("forecast target %d, want %d", events[1].Target, events[1].At+10)
	}
}

// TestSubscriptionsRideResultCache: when the server has a result cache,
// identical standing queries share one evaluation per tick — the second
// subscription's re-evaluation is a cache hit, and the next tick's epoch
// bump forces exactly one fresh evaluation again.
func TestSubscriptionsRideResultCache(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	cfg.CacheBytes = 16 << 20
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(block(0, 100, 500, 500, 0)); err != nil {
		t.Fatal(err)
	}
	m := New(s)
	rho := 50.0 / (60 * 60)
	cq := ContinuousQuery{Rho: rho, L: 60, Method: core.FR}
	if _, err := m.Register(cq); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(cq); err != nil {
		t.Fatal(err)
	}
	for tick := motion.Tick(1); tick <= 3; tick++ {
		events, err := m.Advance(tick, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 2 {
			t.Fatalf("tick %d: %d events, want 2", tick, len(events))
		}
		if !regionsSame(events[0].Region, events[1].Region) {
			t.Errorf("tick %d: identical subscriptions answered differently", tick)
		}
		st := s.CacheStats()
		// Advance ticks (epoch bump) then evaluates both subs: one miss,
		// one reuse, every tick.
		if st.Misses != int64(tick) {
			t.Errorf("tick %d: %d evaluations, want %d (one per tick)", tick, st.Misses, tick)
		}
		if reused := st.Hits + st.Shared; reused != int64(tick) {
			t.Errorf("tick %d: %d reuses, want %d", tick, reused, tick)
		}
	}
}

func regionsSame(a, b geom.Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
