// Package monitor runs standing (continuous) PDR queries over the engine:
// a registered query is re-evaluated as server time advances, and
// subscribers receive the *changes* — regions that became dense and regions
// that stopped being dense — rather than full answers. This is the
// continuous-query layer the paper's traffic-management motivation implies
// (watch for congestion forming, alert when it appears or dissolves).
package monitor

import (
	"fmt"

	"pdr/internal/core"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/stopwatch"
	"pdr/internal/telemetry"
)

// ContinuousQuery is a standing PDR query: every Every ticks the monitor
// answers (Rho, L, now+Ahead) with Method and diffs it against the previous
// answer.
type ContinuousQuery struct {
	Rho    float64
	L      float64
	Ahead  motion.Tick // forecast distance (0 = current time)
	Every  motion.Tick // re-evaluation period (1 = every tick)
	Method core.Method
}

// Event is one change notification.
type Event struct {
	// SubID identifies the subscription.
	SubID int
	// At is the evaluation time (server now); Target = At + Ahead is the
	// forecast timestamp the region refers to.
	At, Target motion.Tick
	// Region is the full current answer.
	Region geom.Region
	// Added covers points that are dense now but were not in the previous
	// evaluation; Removed covers the opposite.
	Added, Removed geom.Region
	// First marks the initial evaluation (Added is the whole region).
	First bool
}

// Changed reports whether the event carries any change.
func (e Event) Changed() bool { return len(e.Added) > 0 || len(e.Removed) > 0 }

type sub struct {
	id      int
	q       ContinuousQuery
	lastRun motion.Tick
	ran     bool
	prev    geom.Region
}

// Engine is the slice of the PDR engine the monitor drives: clock/update
// ingestion and traced snapshot evaluation. Both core.Server and the
// sharded engine (internal/shard) satisfy it, so standing queries work
// unchanged over either.
type Engine interface {
	Tick(now motion.Tick, updates []motion.Update) error
	Config() core.Config
	SnapshotTraced(q core.Query, m core.Method, sp *telemetry.Span) (*core.Result, error)
}

// Monitor evaluates standing queries against a server. It is not safe for
// concurrent use (same discipline as the engine).
type Monitor struct {
	srv    Engine
	nextID int
	subs   map[int]*sub
	met    *Metrics // nil unless SetMetrics was called
}

// New creates a monitor over srv.
func New(srv Engine) *Monitor {
	return &Monitor{srv: srv, subs: make(map[int]*sub)}
}

// Metrics is the monitor's instrument bundle: live subscription count,
// events emitted, and standing-query evaluation latency.
type Metrics struct {
	subs   *telemetry.Gauge
	events *telemetry.Counter
	eval   *telemetry.Histogram
}

// NewMetrics registers the monitor instruments on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		subs:   reg.Gauge("pdr_monitor_subscriptions", "Active standing PDR queries."),
		events: reg.Counter("pdr_monitor_events_total", "Change events emitted to subscribers."),
		eval: reg.Histogram("pdr_monitor_eval_seconds",
			"Per-subscription standing-query evaluation latency.", nil),
	}
}

// SetMetrics attaches an instrument bundle; the subscription gauge is
// seeded with the current count so late attachment stays accurate.
func (m *Monitor) SetMetrics(met *Metrics) {
	m.met = met
	if met != nil {
		met.subs.Set(float64(len(m.subs)))
	}
}

// Register adds a standing query and returns its subscription id.
func (m *Monitor) Register(q ContinuousQuery) (int, error) {
	if q.Rho < 0 || q.L <= 0 {
		return 0, fmt.Errorf("monitor: bad query parameters rho=%g l=%g", q.Rho, q.L)
	}
	if q.Ahead < 0 || q.Ahead > m.srv.Config().W {
		return 0, fmt.Errorf("monitor: forecast distance %d outside [0, W=%d]", q.Ahead, m.srv.Config().W)
	}
	if q.Every <= 0 {
		q.Every = 1
	}
	m.nextID++
	m.subs[m.nextID] = &sub{id: m.nextID, q: q}
	if m.met != nil {
		m.met.subs.Set(float64(len(m.subs)))
	}
	return m.nextID, nil
}

// Unregister removes a subscription, reporting whether it existed.
func (m *Monitor) Unregister(id int) bool {
	if _, ok := m.subs[id]; !ok {
		return false
	}
	delete(m.subs, id)
	if m.met != nil {
		m.met.subs.Set(float64(len(m.subs)))
	}
	return true
}

// NumSubscriptions returns the number of active standing queries.
func (m *Monitor) NumSubscriptions() int { return len(m.subs) }

// Advance forwards the tick to the server, then re-evaluates every due
// standing query and returns the resulting events in subscription order.
func (m *Monitor) Advance(now motion.Tick, updates []motion.Update) ([]Event, error) {
	return m.AdvanceTraced(now, updates, nil)
}

// AdvanceTraced is Advance recording the tick and the per-subscription
// re-evaluations as a span subtree of sp, so a traced /v1/updates request
// shows exactly which standing query made it slow. A nil sp traces
// nothing and allocates nothing.
func (m *Monitor) AdvanceTraced(now motion.Tick, updates []motion.Update, sp *telemetry.Span) ([]Event, error) {
	tsp := sp.Child("tick")
	tsp.SetAttrInt("updates", int64(len(updates)))
	err := m.srv.Tick(now, updates)
	tsp.End()
	if err != nil {
		return nil, err
	}
	msp := sp.Child("monitor")
	msp.SetAttrInt("subscriptions", int64(len(m.subs)))
	var events []Event
	for id := 1; id <= m.nextID; id++ {
		s, ok := m.subs[id]
		if !ok {
			continue
		}
		if s.ran && now-s.lastRun < s.q.Every {
			continue
		}
		esp := msp.Child("subscription")
		esp.SetAttrInt("sub", int64(id))
		ev, err := m.evaluate(s, now, esp)
		esp.End()
		if err != nil {
			msp.End()
			return events, err
		}
		events = append(events, ev)
		if m.met != nil {
			m.met.events.Inc()
		}
	}
	msp.End()
	return events, nil
}

func (m *Monitor) evaluate(s *sub, now motion.Tick, sp *telemetry.Span) (Event, error) {
	target := now + s.q.Ahead
	sw := stopwatch.Start()
	res, err := m.srv.SnapshotTraced(core.Query{Rho: s.q.Rho, L: s.q.L, At: target}, s.q.Method, sp)
	if err != nil {
		return Event{}, err
	}
	ev := Event{
		SubID: s.id, At: now, Target: target,
		Region: res.Region,
		First:  !s.ran,
	}
	if s.ran {
		ev.Added = geom.Subtract(res.Region, s.prev)
		ev.Removed = geom.Subtract(s.prev, res.Region)
	} else {
		ev.Added = res.Region
	}
	s.prev = res.Region
	s.lastRun = now
	s.ran = true
	sp.SetAttrBool("changed", ev.Changed())
	// The evaluation cost a subscriber pays is the snapshot plus the diff.
	if m.met != nil {
		m.met.eval.Observe(sw.Elapsed().Seconds())
	}
	return ev, nil
}
