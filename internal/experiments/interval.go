package experiments

import (
	"io"
	"time"

	"pdr/internal/core"
	"pdr/internal/motion"
)

// IntervalRow is one window-width point of the interval-query extension
// study (paper Definition 5; not part of the paper's evaluation).
type IntervalRow struct {
	Window  int
	PATotal time.Duration
	DHTotal time.Duration
	// AreaGrowthPct is the interval answer's area relative to the first
	// snapshot's area (how much the union smears as the window widens).
	AreaGrowthPct float64
}

// ExtIntervalCost measures interval PDR queries (the union over [now,
// now+w]) for increasing window widths with the two cheap methods. Both
// scale linearly in the window width by construction; the union area grows
// monotonically. FR behaves identically per snapshot (see Fig 10a for its
// per-snapshot cost) and is omitted here to keep the sweep fast.
func (r *Runner) ExtIntervalCost(widths []int) ([]IntervalRow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	e, err := r.Env(l)
	if err != nil {
		return nil, err
	}
	rho := RelRho(e.S.NumObjects(), 3, e.S.Config().Area)
	q := core.Query{Rho: rho, L: l, At: e.S.Now()}

	base, err := e.S.Snapshot(q, core.PA)
	if err != nil {
		return nil, err
	}
	baseArea := base.Region.Area()

	var rows []IntervalRow
	for _, w := range widths {
		until := e.S.Now() + motion.Tick(w)
		pa, err := e.S.Interval(q, until, core.PA)
		if err != nil {
			return nil, err
		}
		dh, err := e.S.Interval(q, until, core.DHOptimistic)
		if err != nil {
			return nil, err
		}
		row := IntervalRow{Window: w, PATotal: pa.Total(), DHTotal: dh.Total()}
		if baseArea > 0 {
			row.AreaGrowthPct = 100 * (pa.Region.Area() - baseArea) / baseArea
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintInterval renders the extension study rows.
func PrintInterval(w io.Writer, rows []IntervalRow) error {
	r := newReport(w)
	r.text("window\tPA total\tDH total\tarea growth %")
	for _, row := range rows {
		r.linef("%d\t%s\t%s\t%+.1f\n", row.Window, fmtDur(row.PATotal), fmtDur(row.DHTotal), row.AreaGrowthPct)
	}
	return r.flush()
}
