package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"pdr/internal/core"
	"pdr/internal/geom"
	"pdr/internal/viz"
)

// Fig7SVG renders the paper's Fig. 7 as SVG files — the object snapshot
// (7a) and the dense regions found by FR (7b) and PA (7c) — into dir, and
// returns the written paths.
func (r *Runner) Fig7SVG(dir string) ([]string, error) {
	n := r.P.N / 10
	if n < 1000 {
		n = r.P.N
	}
	l := r.P.Ls[len(r.P.Ls)-1]
	e, err := r.envAt(l, n)
	if err != nil {
		return nil, err
	}
	area := e.S.Config().Area
	rho := RelRho(e.S.NumObjects(), 3, area)
	qt := e.S.Now()

	var points []geom.Point
	for _, st := range e.S.Index().All() {
		p := st.PositionAt(qt)
		if area.Contains(p) {
			points = append(points, p)
		}
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	write := func(name, title string, region geom.Region, withPoints bool) error {
		scene := &viz.Scene{Area: area, Width: 700, Title: title, Region: region}
		if withPoints {
			scene.Points = points
		}
		if len(region) > 0 {
			scene.Rings = region.Outline()
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := scene.WriteSVG(f); err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}

	if err := write("fig7a_objects.svg", fmt.Sprintf("Fig 7a: %d objects at t=%d", len(points), qt), nil, true); err != nil {
		return nil, err
	}
	fr, err := e.S.Snapshot(core.Query{Rho: rho, L: l, At: qt}, core.FR)
	if err != nil {
		return nil, err
	}
	if err := write("fig7b_fr.svg", "Fig 7b: dense regions (FR, exact)", fr.Region, false); err != nil {
		return nil, err
	}
	paRes, err := e.S.Snapshot(core.Query{Rho: rho, L: l, At: qt}, core.PA)
	if err != nil {
		return nil, err
	}
	if err := write("fig7c_pa.svg", "Fig 7c: dense regions (PA, approximate)", paRes.Region, false); err != nil {
		return nil, err
	}
	return paths, nil
}
