package experiments

import (
	"fmt"
	"time"

	"pdr/internal/core"
	"pdr/internal/pa"
)

// AblationRow is one measurement of a design-choice ablation.
type AblationRow struct {
	Name    string
	Variant string
	Metric  string
	Value   string
}

// AblationBranchBound compares the paper's branch-and-bound dense-region
// extraction against the "trivial approach" (Sec. 6.3): evaluating the
// density at every cell of an md x md grid.
func (r *Runner) AblationBranchBound() ([]AblationRow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	e, err := r.Env(l)
	if err != nil {
		return nil, err
	}
	rho := RelRho(e.S.NumObjects(), 3, e.S.Config().Area)
	qt := e.S.Now()

	timeIt := func(f func() error) (time.Duration, error) {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	surf := e.S.Surface()
	bbTime, err := timeIt(func() error { _, err := surf.DenseRegion(qt, rho); return err })
	if err != nil {
		return nil, err
	}
	gridTime, err := timeIt(func() error { _, err := surf.DenseRegionGrid(qt, rho); return err })
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Name: "extraction", Variant: "branch-and-bound", Metric: "query CPU", Value: fmtDur(bbTime)},
		{Name: "extraction", Variant: "md-grid scan", Metric: "query CPU", Value: fmtDur(gridTime)},
	}, nil
}

// AblationLocalPolynomials compares a single global polynomial against the
// g x g local grid (paper Sec. 6.4): skewed distributions need local
// surfaces for acceptable error.
func (r *Runner) AblationLocalPolynomials() ([]AblationRow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	e, err := r.Env(l)
	if err != nil {
		return nil, err
	}
	cfg := e.S.Config()
	rho := RelRho(e.S.NumObjects(), 3, cfg.Area)
	qt := e.S.Now()
	exact, err := e.S.Snapshot(core.Query{Rho: rho, L: l, At: qt}, core.FR)
	if err != nil {
		return nil, err
	}
	exArea := exact.Region.Area()

	var rows []AblationRow
	for _, g := range []int{1, cfg.PAGrid} {
		surf, err := pa.New(pa.Config{Area: cfg.Area, G: g, Degree: cfg.PADegree, Horizon: e.S.Horizon(), L: l, MD: cfg.PAMD})
		if err != nil {
			return nil, err
		}
		surf.Advance(e.S.Now())
		for _, st := range e.S.Index().All() {
			surf.Insert(st)
		}
		region, err := surf.DenseRegion(qt, rho)
		if err != nil {
			return nil, err
		}
		variant := fmt.Sprintf("g=%d", g)
		if g == 1 {
			variant = "single global polynomial"
		}
		errPct := 0.0
		if exArea > 0 {
			errPct = 100 * (region.DifferenceArea(exact.Region) + exact.Region.DifferenceArea(region)) / exArea
		}
		rows = append(rows, AblationRow{
			Name: "surfaces", Variant: variant,
			Metric: "total error %", Value: fmt.Sprintf("%.2f", errPct),
		})
	}
	return rows, nil
}

// AblationIndex compares the two refinement access methods — TPR-tree and
// paged uniform grid — on the same FR query workload under the same buffer
// budget, reporting I/O and CPU per query.
func (r *Runner) AblationIndex() ([]AblationRow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	var rows []AblationRow
	for _, kind := range []core.IndexKind{core.IndexTPR, core.IndexGrid, core.IndexBx} {
		p := r.P
		cfg := ServerConfig(p)
		cfg.L = l
		cfg.Index = kind
		// A tight buffer makes the access pattern visible: ~10% of the
		// leaf-page working set.
		cfg.BufferPages = p.N / 80 / 10
		if cfg.BufferPages < 8 {
			cfg.BufferPages = 8
		}
		e, err := Build(p, cfg)
		if err != nil {
			return nil, err
		}
		e.S.Pool().Drop()
		avg, _, err := e.runPoint(3, l, core.FR)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			AblationRow{Name: "index", Variant: string(kind), Metric: "FR IOs/query", Value: fmt.Sprintf("%d", avg.IOs)},
			AblationRow{Name: "index", Variant: string(kind), Metric: "FR CPU/query", Value: fmtDur(avg.CPU)},
		)
	}
	return rows, nil
}

// AblationFilter quantifies the value of the filtering step for FR: how
// many cells the filter settles without refinement, and the refinement
// volume left.
func (r *Runner) AblationFilter() ([]AblationRow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	e, err := r.Env(l)
	if err != nil {
		return nil, err
	}
	rho := RelRho(e.S.NumObjects(), 3, e.S.Config().Area)
	res, err := e.S.Snapshot(core.Query{Rho: rho, L: l, At: e.S.Now()}, core.FR)
	if err != nil {
		return nil, err
	}
	total := res.Accepted + res.Rejected + res.Candidates
	return []AblationRow{
		{Name: "filter", Variant: "accepted cells", Metric: "count", Value: fmt.Sprintf("%d", res.Accepted)},
		{Name: "filter", Variant: "rejected cells", Metric: "count", Value: fmt.Sprintf("%d", res.Rejected)},
		{Name: "filter", Variant: "candidate cells", Metric: "count", Value: fmt.Sprintf("%d", res.Candidates)},
		{Name: "filter", Variant: "settled without refinement", Metric: "percent",
			Value: fmt.Sprintf("%.2f", 100*float64(res.Accepted+res.Rejected)/float64(total))},
		{Name: "filter", Variant: "objects retrieved in refinement", Metric: "count",
			Value: fmt.Sprintf("%d", res.ObjectsRetrieved)},
	}, nil
}

// AblationMergeCandidates measures the candidate-window merging optimization
// (an engineering extension beyond the paper's per-cell refinement): same
// exact answers, fewer duplicate index retrievals.
func (r *Runner) AblationMergeCandidates() ([]AblationRow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	var rows []AblationRow
	for _, merged := range []bool{false, true} {
		cfg := ServerConfig(r.P)
		cfg.L = l
		cfg.MergeCandidates = merged
		e, err := Build(r.P, cfg)
		if err != nil {
			return nil, err
		}
		avg, _, err := e.runPoint(3, l, core.FR)
		if err != nil {
			return nil, err
		}
		variant := "per-cell refinement (paper)"
		if merged {
			variant = "merged candidate windows"
		}
		rows = append(rows,
			AblationRow{Name: "refine", Variant: variant, Metric: "objects retrieved/query", Value: fmt.Sprintf("%d", avg.Objects)},
			AblationRow{Name: "refine", Variant: variant, Metric: "FR CPU/query", Value: fmtDur(avg.CPU)},
		)
	}
	return rows, nil
}
