package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"pdr/internal/core"
	"pdr/internal/motion"
	"pdr/internal/stopwatch"
)

// ParallelPoint is the measurement at one worker-pool size.
type ParallelPoint struct {
	// Workers is the core.Config.Workers setting under test.
	Workers int `json:"workers"`
	// WallNanos is the best-of-Trials wall-clock time for one query.
	WallNanos int64 `json:"wallNanos"`
	// Speedup is the sequential (workers=1) wall time divided by this
	// point's wall time.
	Speedup float64 `json:"speedup"`
}

// ParallelBench is one recorded parallel-scaling baseline: the same query
// answered by the same engine configuration at increasing worker-pool
// sizes. The host facts (NumCPU, GOMAXPROCS) are part of the record — a
// speedup curve is meaningless without them, and on a single-core host the
// curve is legitimately flat.
type ParallelBench struct {
	// Kind is "interval" (per-timestamp snapshot fan-out) or "snapshot"
	// (candidate-window refinement fan-out).
	Kind string `json:"kind"`
	// NumCPU and GOMAXPROCS describe the host the baseline was taken on.
	NumCPU     int `json:"numCPU"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workload facts.
	N      int     `json:"n"`
	Seed   int64   `json:"seed"`
	L      float64 `json:"l"`
	Varrho float64 `json:"varrho"`
	// Window is the interval width in ticks (0 for snapshot benches).
	Window int `json:"window,omitempty"`
	// Trials is how many times each point ran; WallNanos keeps the best.
	Trials int `json:"trials"`
	// Points are ordered by worker count; Points[0] is the sequential
	// baseline the speedups are relative to.
	Points []ParallelPoint `json:"points"`
}

// ParallelBenchParams configures a scaling run.
type ParallelBenchParams struct {
	// Workers lists the pool sizes to measure; 1 is prepended if absent
	// (the speedup baseline).
	Workers []int
	// Window is the interval query width in ticks.
	Window int
	// Trials per point; the best wall time is kept to damp scheduler noise.
	Trials int
}

// DefaultParallelBenchParams matches the recorded BENCH_*.json baselines.
func DefaultParallelBenchParams() ParallelBenchParams {
	return ParallelBenchParams{Workers: []int{1, 2, 4, 8}, Window: 8, Trials: 3}
}

// ParallelInterval measures interval-query wall time against worker-pool
// size. Each pool size gets a freshly built, identically seeded server, so
// buffer-pool warmth cannot favor later points.
func (r *Runner) ParallelInterval(bp ParallelBenchParams) (*ParallelBench, error) {
	return r.parallelBench("interval", bp)
}

// ParallelSnapshot measures FR snapshot wall time (the refinement fan-out)
// against worker-pool size.
func (r *Runner) ParallelSnapshot(bp ParallelBenchParams) (*ParallelBench, error) {
	bp.Window = 0
	return r.parallelBench("snapshot", bp)
}

func (r *Runner) parallelBench(kind string, bp ParallelBenchParams) (*ParallelBench, error) {
	if bp.Trials <= 0 {
		bp.Trials = 1
	}
	workers := bp.Workers
	if len(workers) == 0 || workers[0] != 1 {
		workers = append([]int{1}, workers...)
	}
	const varrho = 3
	l := r.P.Ls[len(r.P.Ls)-1]
	out := &ParallelBench{
		Kind: kind, NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		N: r.P.N, Seed: r.P.Seed, L: l, Varrho: varrho,
		Window: bp.Window, Trials: bp.Trials,
	}
	for _, w := range workers {
		cfg := ServerConfig(r.P)
		cfg.Workers = w
		env, err := Build(r.P, cfg)
		if err != nil {
			return nil, err
		}
		rho := RelRho(env.S.NumObjects(), varrho, env.S.Config().Area)
		q := core.Query{Rho: rho, L: l, At: env.S.Now()}
		best := int64(0)
		for t := 0; t < bp.Trials; t++ {
			sw := stopwatch.Start()
			if kind == "interval" {
				_, err = env.S.Interval(q, q.At+motion.Tick(bp.Window), core.FR)
			} else {
				_, err = env.S.Snapshot(q, core.FR)
			}
			if err != nil {
				return nil, err
			}
			if ns := sw.Elapsed().Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
		}
		out.Points = append(out.Points, ParallelPoint{Workers: w, WallNanos: best})
	}
	seq := out.Points[0].WallNanos
	for i := range out.Points {
		if out.Points[i].WallNanos > 0 {
			out.Points[i].Speedup = float64(seq) / float64(out.Points[i].WallNanos)
		}
	}
	return out, nil
}

// WriteJSON records the baseline as indented JSON (the BENCH_*.json files
// checked into the repository root).
func (b *ParallelBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// PrintParallel renders a scaling run as a table.
func PrintParallel(w io.Writer, b *ParallelBench) error {
	r := newReport(w)
	r.linef("%s scaling (n=%d, l=%g, varrho=%g, window=%d) on NumCPU=%d GOMAXPROCS=%d\n",
		b.Kind, b.N, b.L, b.Varrho, b.Window, b.NumCPU, b.GOMAXPROCS)
	r.text("workers\twall\tspeedup")
	for _, p := range b.Points {
		r.linef("%d\t%s\t%.2fx\n", p.Workers, fmtNanos(p.WallNanos), p.Speedup)
	}
	return r.flush()
}

func fmtNanos(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
}
