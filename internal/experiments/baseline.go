package experiments

import (
	"fmt"
	"io"

	"pdr/internal/baselines"
	"pdr/internal/core"
	"pdr/internal/geom"
)

// BaselineRow quantifies one prior-art method against the exact PDR answer.
type BaselineRow struct {
	Method string
	// CoveragePct is the share of the true dense area the method reports.
	CoveragePct float64
	// ExcessPct is the share of the method's answer that is not actually
	// dense (violates the local-density guarantee).
	ExcessPct float64
	// Note carries method-specific findings (ambiguity, center checks).
	Note string
}

// BaselineComparison puts numbers on the paper's Sec. 2 criticisms over a
// real workload: the dense-cell method's answer loss, EDQ's reporting
// ambiguity, and the missing local-density guarantees of both, all measured
// against the exact PDR region.
func (r *Runner) BaselineComparison() ([]BaselineRow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	e, err := r.Env(l)
	if err != nil {
		return nil, err
	}
	area := e.S.Config().Area
	rho := RelRho(e.S.NumObjects(), 3, area)
	qt := e.S.Now()

	exact, err := e.S.Snapshot(core.Query{Rho: rho, L: l, At: qt}, core.FR)
	if err != nil {
		return nil, err
	}
	exactArea := exact.Region.Area()
	if exactArea == 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline comparison (empty exact region)")
	}

	// Predicted in-area object positions at qt, shared by both baselines.
	var points []geom.Point
	for _, st := range e.S.Index().All() {
		p := st.PositionAt(qt)
		if area.Contains(p) {
			points = append(points, p)
		}
	}

	var rows []BaselineRow

	// Dense-cell method with cell edge = l (its natural configuration).
	m := int(area.Width() / l)
	dc := baselines.DenseCells(points, area, m, rho)
	rows = append(rows, BaselineRow{
		Method:      fmt.Sprintf("dense-cell (m=%d)", m),
		CoveragePct: 100 * dc.IntersectionArea(exact.Region) / exactArea,
		ExcessPct:   pct(dc.DifferenceArea(exact.Region), dc.Area()),
		Note:        fmt.Sprintf("%d cells reported", len(dc)),
	})

	// EDQ under both scan orders.
	ltr := baselines.EDQ(points, area, l, rho, baselines.ScanLeftToRight)
	rtl := baselines.EDQ(points, area, l, rho, baselines.ScanRightToLeft)
	ltrRegion := baselines.Region(ltr)
	rtlRegion := baselines.Region(rtl)
	disagree := ltrRegion.DifferenceArea(rtlRegion) + rtlRegion.DifferenceArea(ltrRegion)
	centersInPDR := 0
	for _, sq := range append(append([]baselines.EDQSquare{}, ltr...), rtl...) {
		if exact.Region.Contains(sq.Center) {
			centersInPDR++
		}
	}
	total := len(ltr) + len(rtl)
	note := fmt.Sprintf("order disagreement area %.0f; %d/%d centers rho-dense under PDR",
		disagree, centersInPDR, total)
	rows = append(rows, BaselineRow{
		Method:      "EDQ (left-to-right)",
		CoveragePct: 100 * ltrRegion.IntersectionArea(exact.Region) / exactArea,
		ExcessPct:   pct(ltrRegion.DifferenceArea(exact.Region), ltrRegion.Area()),
		Note:        note,
	})
	rows = append(rows, BaselineRow{
		Method:      "EDQ (right-to-left)",
		CoveragePct: 100 * rtlRegion.IntersectionArea(exact.Region) / exactArea,
		ExcessPct:   pct(rtlRegion.DifferenceArea(exact.Region), rtlRegion.Area()),
		Note:        fmt.Sprintf("%d squares reported", len(rtl)),
	})

	// PDR itself, for reference.
	rows = append(rows, BaselineRow{
		Method: "PDR (FR)", CoveragePct: 100, ExcessPct: 0,
		Note: fmt.Sprintf("%d rects, area %.0f", len(exact.Region), exactArea),
	})
	return rows, nil
}

func pct(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * num / den
}

// PrintBaselines renders baseline-comparison rows.
func PrintBaselines(w io.Writer, rows []BaselineRow) error {
	r := newReport(w)
	r.text("method\tcoverage%\texcess%\tnote")
	for _, row := range rows {
		r.linef("%s\t%.1f\t%.1f\t%s\n", row.Method, row.CoveragePct, row.ExcessPct, row.Note)
	}
	return r.flush()
}
