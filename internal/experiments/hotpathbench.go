package experiments

import (
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"pdr/internal/cheb"
	"pdr/internal/core"
	"pdr/internal/dh"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/sweep"
)

// HotpathPoint is one kernel measurement: the best-of-Trials wall time per
// operation plus the allocator counters of that best trial.
type HotpathPoint struct {
	// Kernel names the measured code path (cheb-eval, dh-filter, ...).
	Kernel string `json:"kernel"`
	// WallNanos is ns/op of the best trial.
	WallNanos int64 `json:"wallNanos"`
	// BytesPerOp and AllocsPerOp are B/op and allocs/op of the same trial.
	BytesPerOp  int64 `json:"bytesPerOp"`
	AllocsPerOp int64 `json:"allocsPerOp"`
}

// HotpathBench is one recorded single-core hot-path baseline: ns/op, B/op,
// and allocs/op for the query kernels the paper's cost model is made of
// (Chebyshev evaluation, DH filtering, sweep refinement) plus the end-to-end
// snapshot/interval paths they compose into. Before, when present, is the
// same kernel list measured prior to the zero-allocation rewrites, so the
// file carries its own delta.
type HotpathBench struct {
	Kind string `json:"kind"`
	// NumCPU and GOMAXPROCS describe the host the baseline was taken on.
	NumCPU     int `json:"numCPU"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workload facts.
	N      int     `json:"n"`
	Seed   int64   `json:"seed"`
	L      float64 `json:"l"`
	Varrho float64 `json:"varrho"`
	// Window is the interval width (ticks) of the interval-fr kernel.
	Window int `json:"window"`
	// Trials is how many times each kernel ran; each point keeps the best.
	Trials int            `json:"trials"`
	Points []HotpathPoint `json:"points"`
	// Before is carried forward from a previously recorded file (see
	// MergeBefore): the pre-optimization numbers this run is measured
	// against.
	Before []HotpathPoint `json:"before,omitempty"`
}

// HotpathBenchParams configures a hot-path kernel run.
type HotpathBenchParams struct {
	// Trials per kernel; the best wall time is kept to damp scheduler noise.
	Trials int
	// Window is the interval-fr query width in ticks.
	Window int
}

// DefaultHotpathBenchParams matches the recorded BENCH_hotpath.json baseline.
func DefaultHotpathBenchParams() HotpathBenchParams {
	return HotpathBenchParams{Trials: 3, Window: 8}
}

// HotpathBench measures the query kernels in steady state. The end-to-end
// paths run on a single worker with the result cache disabled, so every
// iteration pays the full evaluation — the numbers are per-core evaluation
// cost, not cache or fan-out behaviour (BENCH_cache.json and
// BENCH_interval.json record those).
func (r *Runner) HotpathBench(bp HotpathBenchParams) (*HotpathBench, error) {
	if bp.Trials <= 0 {
		bp.Trials = 1
	}
	const varrho = 3
	l := r.P.Ls[len(r.P.Ls)-1]
	out := &HotpathBench{
		Kind: "hotpath", NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		N: r.P.N, Seed: r.P.Seed, L: l, Varrho: varrho,
		Window: bp.Window, Trials: bp.Trials,
	}

	// --- Isolated kernels (fixtures mirror the engine's defaults). ---

	// Chebyshev series of the production degree, populated by Lemma-4 box
	// deltas so the coefficients are dense and realistic.
	series, err := cheb.NewSeries2D(5)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.P.Seed))
	for i := 0; i < 256; i++ {
		x := rng.Float64()*1.9 - 0.95
		y := rng.Float64()*1.9 - 0.95
		series.AddBoxDelta(x, y, x+0.04, y+0.04, 1)
	}
	out.add("cheb-eval", bp.Trials, func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += series.Eval(0.3, -0.7)
		}
		sinkF64 = sink
	})
	out.add("cheb-bounds", bp.Trials, func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			lo, hi := series.Bounds(-0.5, -0.25, 0.5, 0.25)
			sink += lo + hi
		}
		sinkF64 = sink
	})
	out.add("cheb-addbox", bp.Trials, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			series.AddBoxDelta(-0.2, -0.2, 0.2, 0.2, 1)
			series.AddBoxDelta(-0.2, -0.2, 0.2, 0.2, -1)
		}
	})

	// DH filter over a steady-state histogram of the workload's density.
	hist, err := dh.New(dh.Config{Area: geom.NewRect(0, 0, 1000, 1000), M: 100, Horizon: 90})
	if err != nil {
		return nil, err
	}
	hist.Advance(0)
	for i := 0; i < r.P.N; i++ {
		hist.Insert(motion.State{
			ID:  motion.ObjectID(i + 1),
			Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Ref: 0,
		})
	}
	dhRho := RelRho(r.P.N, varrho, geom.NewRect(0, 0, 1000, 1000))
	out.add("dh-filter", bp.Trials, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fr, err := hist.Filter(motion.Tick(i%91), dhRho, 30)
			if err != nil {
				b.Fatal(err)
			}
			fr.Release()
		}
	})

	// Sweep refinement of one candidate window with a realistic point load.
	cell := geom.NewRect(0, 0, 100, 100)
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64()*110 - 5, Y: rng.Float64()*110 - 5}
	}
	out.add("sweep-refine", bp.Trials, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep.DenseRects(pts, cell, 8.0/100.0, 10)
		}
	})

	// --- End-to-end paths: one worker, no result cache. ---
	cfg := ServerConfig(r.P)
	cfg.Workers = 1
	cfg.CacheBytes = 0
	env, err := Build(r.P, cfg)
	if err != nil {
		return nil, err
	}
	rho := RelRho(env.S.NumObjects(), varrho, env.S.Config().Area)
	q := core.Query{Rho: rho, L: l, At: env.S.Now()}
	out.add("snapshot-fr", bp.Trials, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.S.Snapshot(q, core.FR); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.add("snapshot-pa", bp.Trials, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.S.Snapshot(q, core.PA); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.add("interval-fr", bp.Trials, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.S.Interval(q, q.At+motion.Tick(bp.Window), core.FR); err != nil {
				b.Fatal(err)
			}
		}
	})
	return out, nil
}

// sinkF64 defeats dead-code elimination of pure kernels.
var sinkF64 float64

// add runs one kernel Trials times via testing.Benchmark and records the
// fastest trial's per-op counters.
func (b *HotpathBench) add(kernel string, trials int, fn func(b *testing.B)) {
	var best testing.BenchmarkResult
	for t := 0; t < trials; t++ {
		res := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			fn(tb)
		})
		if t == 0 || res.NsPerOp() < best.NsPerOp() {
			best = res
		}
	}
	b.Points = append(b.Points, HotpathPoint{
		Kernel:      kernel,
		WallNanos:   best.NsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
		AllocsPerOp: best.AllocsPerOp(),
	})
}

// MergeBefore adopts the pre-optimization numbers from a previously recorded
// baseline: prior's own Before is preserved when present (the original
// pre-rewrite measurements survive re-recording), otherwise prior's Points
// become this run's Before.
func (b *HotpathBench) MergeBefore(prior *HotpathBench) {
	if prior == nil {
		return
	}
	if len(prior.Before) > 0 {
		b.Before = prior.Before
	} else {
		b.Before = prior.Points
	}
}

// ReadHotpathJSON parses a previously recorded BENCH_hotpath.json.
func ReadHotpathJSON(rd io.Reader) (*HotpathBench, error) {
	var b HotpathBench
	if err := json.NewDecoder(rd).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}

// WriteJSON records the baseline as indented JSON (the BENCH_*.json files
// checked into the repository root).
func (b *HotpathBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// PrintHotpath renders a kernel run as a table, with the before/after delta
// when the baseline carries one.
func PrintHotpath(w io.Writer, b *HotpathBench) error {
	r := newReport(w)
	r.linef("hot-path kernels (n=%d, l=%g, varrho=%g, window=%d) on NumCPU=%d GOMAXPROCS=%d\n",
		b.N, b.L, b.Varrho, b.Window, b.NumCPU, b.GOMAXPROCS)
	before := make(map[string]HotpathPoint, len(b.Before))
	for _, p := range b.Before {
		before[p.Kernel] = p
	}
	if len(before) > 0 {
		r.text("kernel\tns/op\tB/op\tallocs/op\tvs before")
	} else {
		r.text("kernel\tns/op\tB/op\tallocs/op")
	}
	for _, p := range b.Points {
		if prev, ok := before[p.Kernel]; ok && p.WallNanos > 0 {
			r.linef("%s\t%d\t%d\t%d\t%.2fx (%d allocs)\n",
				p.Kernel, p.WallNanos, p.BytesPerOp, p.AllocsPerOp,
				float64(prev.WallNanos)/float64(p.WallNanos), prev.AllocsPerOp)
		} else {
			r.linef("%s\t%d\t%d\t%d\n", p.Kernel, p.WallNanos, p.BytesPerOp, p.AllocsPerOp)
		}
	}
	return r.flush()
}
