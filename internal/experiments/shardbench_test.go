package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestShardBenchSmoke(t *testing.T) {
	r := testRunner()
	bp := ShardBenchParams{
		Shards: []int{2, 4}, Window: 2, Trials: 1,
		MixedWriters: 2, MixedWrites: 20, MixedReaders: 2, MixedReads: 3,
	}
	b, err := r.ShardBench(bp)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Points) != 3 {
		t.Fatalf("got %d points, want unsharded + 2", len(b.Points))
	}
	if b.Points[0].Shards != 0 {
		t.Fatalf("first point shards=%d, want the unsharded baseline", b.Points[0].Shards)
	}
	for _, p := range b.Points {
		if p.SnapshotNanos <= 0 || p.IntervalNanos <= 0 || p.MixedNanos <= 0 {
			t.Errorf("shards=%d: wall times %d/%d/%d, want all > 0",
				p.Shards, p.SnapshotNanos, p.IntervalNanos, p.MixedNanos)
		}
		if p.SnapshotSpeedup <= 0 || p.IntervalSpeedup <= 0 || p.MixedSpeedup <= 0 {
			t.Errorf("shards=%d: speedups missing", p.Shards)
		}
	}
	if b.NumCPU <= 0 || b.GOMAXPROCS <= 0 {
		t.Error("host facts missing from the record")
	}

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round ShardBench
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("recorded JSON does not round-trip: %v", err)
	}
	if round.Kind != "shard" || len(round.Points) != len(b.Points) {
		t.Fatalf("round-trip mismatch: %+v", round)
	}
	if err := PrintShard(&buf, b); err != nil {
		t.Fatal(err)
	}
}
