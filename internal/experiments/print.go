package experiments

import "io"

// PrintFig7 renders Fig. 7 rows.
func PrintFig7(w io.Writer, rows []Fig7Row) error {
	r := newReport(w)
	r.text("method\trects\tarea\tr_fp%\tr_fn%")
	for _, row := range rows {
		r.linef("%s\t%d\t%.1f\t%.2f\t%.2f\n", row.Method, row.Rects, row.Area, row.RfpPct, row.RfnPct)
	}
	return r.flush()
}

// PrintFig8Accuracy renders Fig. 8(a)/8(b) rows.
func PrintFig8Accuracy(w io.Writer, rows []AccuracyRow) error {
	r := newReport(w)
	r.text("l\tvarrho\tPA r_fp%\tPA r_fn%\topt-DH r_fp%\tpess-DH r_fn%")
	for _, row := range rows {
		r.linef("%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			row.L, row.Varrho, row.PAfpPct, row.PAfnPct, row.DHOptPct, row.DHPessPct)
	}
	return r.flush()
}

// PrintFig8Memory renders Fig. 8(c)/8(d) rows.
func PrintFig8Memory(w io.Writer, rows []MemoryRow) error {
	r := newReport(w)
	r.text("method\tconfig\tmemory MB\tr_fp%\tr_fn%")
	for _, row := range rows {
		r.linef("%s\t%s\t%.2f\t%.2f\t%.2f\n", row.Method, row.Config, row.MemoryMB, row.RfpPct, row.RfnPct)
	}
	return r.flush()
}

// PrintFig9a renders Fig. 9(a) rows.
func PrintFig9a(w io.Writer, rows []QueryCPURow) error {
	r := newReport(w)
	r.text("l\tvarrho\tPA CPU\tDH CPU")
	for _, row := range rows {
		r.linef("%.0f\t%.0f\t%s\t%s\n", row.L, row.Varrho, fmtDur(row.PACPU), fmtDur(row.DHCPU))
	}
	return r.flush()
}

// PrintFig9b renders Fig. 9(b) rows.
func PrintFig9b(w io.Writer, rows []BuildCPURow) error {
	r := newReport(w)
	r.text("method\tCPU per location update")
	for _, row := range rows {
		r.linef("%s\t%v\n", row.Method, row.PerUpdate)
	}
	return r.flush()
}

// PrintFig10a renders Fig. 10(a) rows.
func PrintFig10a(w io.Writer, rows []QueryCostRow) error {
	r := newReport(w)
	r.text("l\tvarrho\tPA total\tFR total\tFR IOs")
	for _, row := range rows {
		r.linef("%.0f\t%.0f\t%s\t%s\t%d\n", row.L, row.Varrho, fmtDur(row.PATotal), fmtDur(row.FRTotal), row.FRIOs)
	}
	return r.flush()
}

// PrintFig10b renders Fig. 10(b) rows.
func PrintFig10b(w io.Writer, rows []ScaleRow) error {
	r := newReport(w)
	r.text("N\tPA total\tFR total")
	for _, row := range rows {
		r.linef("%d\t%s\t%s\n", row.N, fmtDur(row.PATotal), fmtDur(row.FRTotal))
	}
	return r.flush()
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, rows []AblationRow) error {
	r := newReport(w)
	r.text("ablation\tvariant\tmetric\tvalue")
	for _, row := range rows {
		r.linef("%s\t%s\t%s\t%s\n", row.Name, row.Variant, row.Metric, row.Value)
	}
	return r.flush()
}
