package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// PrintFig7 renders Fig. 7 rows.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\trects\tarea\tr_fp%\tr_fn%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2f\t%.2f\n", r.Method, r.Rects, r.Area, r.RfpPct, r.RfnPct)
	}
	tw.Flush()
}

// PrintFig8Accuracy renders Fig. 8(a)/8(b) rows.
func PrintFig8Accuracy(w io.Writer, rows []AccuracyRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "l\tvarrho\tPA r_fp%\tPA r_fn%\topt-DH r_fp%\tpess-DH r_fn%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.L, r.Varrho, r.PAfpPct, r.PAfnPct, r.DHOptPct, r.DHPessPct)
	}
	tw.Flush()
}

// PrintFig8Memory renders Fig. 8(c)/8(d) rows.
func PrintFig8Memory(w io.Writer, rows []MemoryRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tconfig\tmemory MB\tr_fp%\tr_fn%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\n", r.Method, r.Config, r.MemoryMB, r.RfpPct, r.RfnPct)
	}
	tw.Flush()
}

// PrintFig9a renders Fig. 9(a) rows.
func PrintFig9a(w io.Writer, rows []QueryCPURow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "l\tvarrho\tPA CPU\tDH CPU")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f\t%.0f\t%s\t%s\n", r.L, r.Varrho, fmtDur(r.PACPU), fmtDur(r.DHCPU))
	}
	tw.Flush()
}

// PrintFig9b renders Fig. 9(b) rows.
func PrintFig9b(w io.Writer, rows []BuildCPURow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tCPU per location update")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\n", r.Method, r.PerUpdate)
	}
	tw.Flush()
}

// PrintFig10a renders Fig. 10(a) rows.
func PrintFig10a(w io.Writer, rows []QueryCostRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "l\tvarrho\tPA total\tFR total\tFR IOs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f\t%.0f\t%s\t%s\t%d\n", r.L, r.Varrho, fmtDur(r.PATotal), fmtDur(r.FRTotal), r.FRIOs)
	}
	tw.Flush()
}

// PrintFig10b renders Fig. 10(b) rows.
func PrintFig10b(w io.Writer, rows []ScaleRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\tPA total\tFR total")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\n", r.N, fmtDur(r.PATotal), fmtDur(r.FRTotal))
	}
	tw.Flush()
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, rows []AblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ablation\tvariant\tmetric\tvalue")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Name, r.Variant, r.Metric, r.Value)
	}
	tw.Flush()
}
