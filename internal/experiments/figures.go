package experiments

import (
	"fmt"
	"io"
	"time"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/dh"
	"pdr/internal/motion"
	"pdr/internal/pa"
)

// Runner executes the paper's experiments, caching one loaded server per
// neighborhood edge l (the PA surfaces are built for a fixed l, so each l
// needs its own server).
type Runner struct {
	P    Params
	envs map[envKey]*Env
}

type envKey struct {
	l float64
	n int
}

// NewRunner creates a runner for the given scale.
func NewRunner(p Params) *Runner {
	return &Runner{P: p, envs: make(map[envKey]*Env)}
}

// Env returns the cached environment for edge l at the runner's default N.
func (r *Runner) Env(l float64) (*Env, error) {
	return r.envAt(l, r.P.N)
}

func (r *Runner) envAt(l float64, n int) (*Env, error) {
	key := envKey{l, n}
	if e, ok := r.envs[key]; ok {
		return e, nil
	}
	p := r.P
	p.N = n
	cfg := ServerConfig(p)
	cfg.L = l
	e, err := Build(p, cfg)
	if err != nil {
		return nil, err
	}
	r.envs[key] = e
	return e, nil
}

// ---------------------------------------------------------------- Table 1

// Table1 renders the experimental setup (paper Table 1) as rendered rows.
func (r *Runner) Table1(w io.Writer) error {
	cfg := ServerConfig(r.P)
	rep := newReport(w)
	rep.text("Parameter\tValue")
	rep.linef("Page size\t%d B\n", 4096)
	rep.linef("Random disk access time\t%v\n", cfg.IOCharge)
	rep.linef("Maximum update interval (U)\t%d\n", cfg.U)
	rep.linef("Prediction window length (W)\t%d\n", cfg.W)
	rep.linef("Edge length of l-square (l)\t%v\n", r.P.Ls)
	rep.linef("Number of objects\t%d\n", r.P.N)
	rep.linef("Relative density threshold (varrho)\t%v\n", r.P.Varrhos)
	rep.linef("Density histogram cells (m x m)\t%d\n", cfg.HistM*cfg.HistM)
	rep.linef("Num. polynomials (g x g)\t%d\n", cfg.PAGrid*cfg.PAGrid)
	rep.linef("Degree of polynomial (k)\t%d\n", cfg.PADegree)
	rep.linef("Grid for polynomial evaluation (md x md)\t%d x %d\n", cfg.PAMD, cfg.PAMD)
	return rep.flush()
}

// ---------------------------------------------------------------- Fig 7

// Fig7Row summarizes one method's answer on the example snapshot.
type Fig7Row struct {
	Method string
	Rects  int
	Area   float64
	RfpPct float64 // vs FR
	RfnPct float64
}

// Fig7 reproduces the paper's example (Fig. 7): dense regions identified by
// FR and PA on a CH10K-scale snapshot, showing arbitrary shapes/sizes and
// the close match between the two methods.
func (r *Runner) Fig7() ([]Fig7Row, error) {
	n := r.P.N / 10
	if n < 1000 {
		n = r.P.N
	}
	l := r.P.Ls[len(r.P.Ls)-1]
	e, err := r.envAt(l, n)
	if err != nil {
		return nil, err
	}
	rho := RelRho(e.S.NumObjects(), 3, e.S.Config().Area)
	q := core.Query{Rho: rho, L: l, At: e.S.Now()}
	fr, err := e.S.Snapshot(q, core.FR)
	if err != nil {
		return nil, err
	}
	paRes, err := e.S.Snapshot(q, core.PA)
	if err != nil {
		return nil, err
	}
	exactArea := fr.Region.Area()
	rows := []Fig7Row{{Method: "FR (exact)", Rects: len(fr.Region), Area: exactArea}}
	fp := paRes.Region.DifferenceArea(fr.Region)
	fn := fr.Region.DifferenceArea(paRes.Region)
	row := Fig7Row{Method: "PA (approx)", Rects: len(paRes.Region), Area: paRes.Region.Area()}
	if exactArea > 0 {
		row.RfpPct = 100 * fp / exactArea
		row.RfnPct = 100 * fn / exactArea
	}
	rows = append(rows, row)
	return rows, nil
}

// ---------------------------------------------------------------- Fig 8a/8b

// AccuracyRow is one (l, varrho) accuracy point: PA vs the DH baselines,
// both measured against the exact FR answer.
type AccuracyRow struct {
	L, Varrho float64
	PAfpPct   float64 // PA false-positive ratio, percent
	PAfnPct   float64
	DHOptPct  float64 // optimistic DH false-positive ratio, percent
	DHPessPct float64 // pessimistic DH false-negative ratio, percent
}

// Fig8Accuracy reproduces Figs. 8(a) and 8(b): error ratios of PA and the
// DH baselines as functions of varrho and l. Optimistic DH has r_fn = 0 by
// construction and pessimistic DH has r_fp = 0, so each contributes the one
// ratio the paper plots.
func (r *Runner) Fig8Accuracy() ([]AccuracyRow, error) {
	var rows []AccuracyRow
	for _, l := range r.P.Ls {
		e, err := r.Env(l)
		if err != nil {
			return nil, err
		}
		for _, varrho := range r.P.Varrhos {
			row, err := e.accuracyPoint(varrho, l)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 8c/8d

// MemoryRow is one memory-accuracy trade-off point (Figs. 8c and 8d).
type MemoryRow struct {
	Method   string
	Config   string
	MemoryMB float64
	RfpPct   float64 // optimistic DH / PA false positives
	RfnPct   float64 // pessimistic DH / PA false negatives
}

// Fig8Memory reproduces Figs. 8(c) and 8(d): error ratio against memory
// budget, varying the histogram resolution for DH and the polynomial count
// and degree for PA, at fixed l and varrho=3.
func (r *Runner) Fig8Memory() ([]MemoryRow, error) {
	const varrho = 3
	l := r.P.Ls[len(r.P.Ls)-1]
	truthEnv, err := r.Env(l)
	if err != nil {
		return nil, err
	}
	rho := RelRho(truthEnv.S.NumObjects(), varrho, truthEnv.S.Config().Area)
	times := truthEnv.queryTimes()

	// Exact answers once.
	exact := make(map[motion.Tick]core.Result)
	for _, qt := range times {
		res, err := truthEnv.S.Snapshot(core.Query{Rho: rho, L: l, At: qt}, core.FR)
		if err != nil {
			return nil, err
		}
		exact[qt] = *res
	}

	var rows []MemoryRow
	// DH sweep: histogram resolutions (respecting lc <= l/2).
	minM := int(2*1000/l) + 1
	for _, m := range []int{minM, 70, 100, 140, 200} {
		if m < minM {
			continue
		}
		row, err := r.dhMemoryPoint(truthEnv, exact, m, rho, l)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	// PA sweep: polynomial grids and degrees.
	for _, gc := range []struct{ g, k int }{{5, 3}, {10, 3}, {10, 5}, {20, 5}} {
		row, err := r.paMemoryPoint(truthEnv, exact, gc.g, gc.k, rho, l)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// dhMemoryPoint rebuilds a histogram at resolution m over the environment's
// live objects and measures optimistic/pessimistic error.
func (r *Runner) dhMemoryPoint(e *Env, exact map[motion.Tick]core.Result, m int, rho, l float64) (MemoryRow, error) {
	cfg := e.S.Config()
	hist, err := dh.New(dh.Config{Area: cfg.Area, M: m, Horizon: e.S.Horizon()})
	if err != nil {
		return MemoryRow{}, err
	}
	hist.Advance(e.S.Now())
	for _, st := range e.S.Index().All() {
		hist.Insert(st)
	}
	row := MemoryRow{Method: "DH", Config: fmt.Sprintf("m=%d", m), MemoryMB: float64(hist.MemoryBytes()) / (1 << 20)}
	n := 0
	for qt, ex := range exact {
		fres, err := hist.Filter(qt, rho, l)
		if err != nil {
			return MemoryRow{}, err
		}
		opt := fres.OptimisticRegion()
		pess := fres.PessimisticRegion()
		fres.Release()
		exArea := ex.Region.Area()
		if exArea == 0 {
			continue
		}
		row.RfpPct += 100 * opt.DifferenceArea(ex.Region) / exArea
		row.RfnPct += 100 * ex.Region.DifferenceArea(pess) / exArea
		n++
	}
	if n > 0 {
		row.RfpPct /= float64(n)
		row.RfnPct /= float64(n)
	}
	return row, nil
}

// paMemoryPoint rebuilds PA surfaces with grid g and degree k over the
// environment's live objects and measures both error ratios.
func (r *Runner) paMemoryPoint(e *Env, exact map[motion.Tick]core.Result, g, k int, rho, l float64) (MemoryRow, error) {
	cfg := e.S.Config()
	surf, err := pa.New(pa.Config{Area: cfg.Area, G: g, Degree: k, Horizon: e.S.Horizon(), L: l, MD: cfg.PAMD})
	if err != nil {
		return MemoryRow{}, err
	}
	surf.Advance(e.S.Now())
	for _, st := range e.S.Index().All() {
		surf.Insert(st)
	}
	row := MemoryRow{Method: "PA", Config: fmt.Sprintf("g=%d k=%d", g, k), MemoryMB: float64(surf.MemoryBytes()) / (1 << 20)}
	n := 0
	for qt, ex := range exact {
		region, err := surf.DenseRegion(qt, rho)
		if err != nil {
			return MemoryRow{}, err
		}
		exArea := ex.Region.Area()
		if exArea == 0 {
			continue
		}
		row.RfpPct += 100 * region.DifferenceArea(ex.Region) / exArea
		row.RfnPct += 100 * ex.Region.DifferenceArea(region) / exArea
		n++
	}
	if n > 0 {
		row.RfpPct /= float64(n)
		row.RfnPct /= float64(n)
	}
	return row, nil
}

// ---------------------------------------------------------------- Fig 9a

// QueryCPURow is one (l, varrho) query-CPU point for PA and DH.
type QueryCPURow struct {
	L, Varrho float64
	PACPU     time.Duration
	DHCPU     time.Duration
}

// Fig9aQueryCPU reproduces Fig. 9(a): query CPU of PA versus DH as varrho
// grows. The DH cost is flat (every cell is classified regardless of the
// threshold) while PA's branch-and-bound prunes better at higher varrho.
func (r *Runner) Fig9aQueryCPU() ([]QueryCPURow, error) {
	var rows []QueryCPURow
	for _, l := range r.P.Ls {
		e, err := r.Env(l)
		if err != nil {
			return nil, err
		}
		for _, varrho := range r.P.Varrhos {
			paAvg, _, err := e.runPoint(varrho, l, core.PA)
			if err != nil {
				return nil, err
			}
			dhAvg, _, err := e.runPoint(varrho, l, core.DHOptimistic)
			if err != nil {
				return nil, err
			}
			rows = append(rows, QueryCPURow{L: l, Varrho: varrho, PACPU: paAvg.CPU, DHCPU: dhAvg.CPU})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 9b

// BuildCPURow reports maintenance cost per location update.
type BuildCPURow struct {
	Method    string
	PerUpdate time.Duration
}

// Fig9bBuildCPU reproduces Fig. 9(b): CPU to maintain the density histogram
// versus the polynomial coefficients per location update. PA is roughly an
// order of magnitude costlier (it computes arccos/sin per overlapped cell
// and timestamp).
func (r *Runner) Fig9bBuildCPU() ([]BuildCPURow, error) {
	l := r.P.Ls[len(r.P.Ls)-1]
	cfg := ServerConfig(r.P)
	cfg.L = l
	n := r.P.N
	if n > 20000 {
		n = 20000 // maintenance cost is per update; a modest stream suffices
	}
	gcfg := datagen.DefaultConfig(n)
	gcfg.Seed = r.P.Seed
	g, err := datagen.New(gcfg)
	if err != nil {
		return nil, err
	}
	hist, err := dh.New(dh.Config{Area: cfg.Area, M: cfg.HistM, Horizon: cfg.U + cfg.W})
	if err != nil {
		return nil, err
	}
	surf, err := pa.New(pa.Config{Area: cfg.Area, G: cfg.PAGrid, Degree: cfg.PADegree, Horizon: cfg.U + cfg.W, L: l, MD: cfg.PAMD})
	if err != nil {
		return nil, err
	}
	startTick := g.Now() + 1
	hist.Advance(startTick)
	surf.Advance(startTick)
	// Record a realistic update stream (the structures being measured are
	// fed the same records, so both see identical work).
	var stream []motion.Update
	for len(stream) < 4000 {
		stream = append(stream, g.Advance()...)
	}
	timePer := func(apply func(motion.Update)) time.Duration {
		start := time.Now()
		for _, u := range stream {
			apply(u)
		}
		return time.Since(start) / time.Duration(len(stream))
	}
	return []BuildCPURow{
		{Method: "DH", PerUpdate: timePer(hist.Apply)},
		{Method: "PA", PerUpdate: timePer(surf.Apply)},
	}, nil
}

// ---------------------------------------------------------------- Fig 10a

// QueryCostRow is one (l, varrho) total-cost point for PA and FR.
type QueryCostRow struct {
	L, Varrho float64
	PATotal   time.Duration
	FRTotal   time.Duration
	FRIOs     int64
}

// Fig10aQueryCost reproduces Fig. 10(a): total query cost (CPU plus charged
// I/O) of PA versus exact FR as varrho varies.
func (r *Runner) Fig10aQueryCost() ([]QueryCostRow, error) {
	var rows []QueryCostRow
	for _, l := range r.P.Ls {
		e, err := r.Env(l)
		if err != nil {
			return nil, err
		}
		for _, varrho := range r.P.Varrhos {
			// Cold-ish cache per point for honest I/O counts.
			e.S.Pool().Drop()
			frAvg, _, err := e.runPoint(varrho, l, core.FR)
			if err != nil {
				return nil, err
			}
			paAvg, _, err := e.runPoint(varrho, l, core.PA)
			if err != nil {
				return nil, err
			}
			rows = append(rows, QueryCostRow{
				L: l, Varrho: varrho,
				PATotal: paAvg.Total, FRTotal: frAvg.Total, FRIOs: frAvg.IOs,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 10b

// ScaleRow is one dataset-size point of Fig. 10(b).
type ScaleRow struct {
	N       int
	PATotal time.Duration
	FRTotal time.Duration
}

// Fig10bScalability reproduces Fig. 10(b): query cost versus dataset size
// at l fixed and varrho = 3. FR grows with N; PA stays nearly flat because
// polynomial evaluation depends only on the coefficient count.
func (r *Runner) Fig10bScalability(sizes []int) ([]ScaleRow, error) {
	const varrho = 3
	l := r.P.Ls[0]
	var rows []ScaleRow
	for _, n := range sizes {
		e, err := r.envAt(l, n)
		if err != nil {
			return nil, err
		}
		e.S.Pool().Drop()
		frAvg, _, err := e.runPoint(varrho, l, core.FR)
		if err != nil {
			return nil, err
		}
		paAvg, _, err := e.runPoint(varrho, l, core.PA)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{N: n, PATotal: paAvg.Total, FRTotal: frAvg.Total})
	}
	return rows, nil
}
