package experiments

import (
	"encoding/json"
	"io"
	"runtime"

	"pdr/internal/core"
	"pdr/internal/motion"
	"pdr/internal/stopwatch"
)

// CachePoint is one measured cache workload.
type CachePoint struct {
	// Name identifies the workload: snapshot-cold, snapshot-warm,
	// interval-cold, interval-slide (window slid by one tick over a primed
	// cache), or interval-warm (fully cached repeat).
	Name string `json:"name"`
	// WallNanos is the best-of-Trials wall-clock time for one query.
	WallNanos int64 `json:"wallNanos"`
	// IOs is the physical page-access charge of the measured query; warm
	// hits must charge zero.
	IOs int64 `json:"ios"`
	// Hits and Misses are the cache-counter deltas across the measured
	// query (from the last trial).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Speedup is the matching cold point's wall time divided by this one's
	// (1.0 for the cold points themselves).
	Speedup float64 `json:"speedup"`
}

// CacheBench is one recorded result-cache baseline: cold, warm, and
// sliding-window workloads on the same server. Host facts ride along — the
// absolute numbers are host-dependent, the cold/warm ratio is the claim.
type CacheBench struct {
	NumCPU     int `json:"numCPU"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workload facts.
	N      int     `json:"n"`
	Seed   int64   `json:"seed"`
	L      float64 `json:"l"`
	Varrho float64 `json:"varrho"`
	// Window is the interval width in ticks.
	Window int `json:"window"`
	// CacheBytes is the configured cache budget.
	CacheBytes int64 `json:"cacheBytes"`
	// Trials is how many times each point ran; WallNanos keeps the best.
	Trials int          `json:"trials"`
	Points []CachePoint `json:"points"`
}

// CacheBenchParams configures a cache run.
type CacheBenchParams struct {
	// Window is the interval query width in ticks.
	Window int
	// Trials per point; the best wall time is kept to damp scheduler noise.
	Trials int
	// CacheBytes is the cache budget under test.
	CacheBytes int64
}

// DefaultCacheBenchParams matches the recorded BENCH_cache.json baseline.
func DefaultCacheBenchParams() CacheBenchParams {
	return CacheBenchParams{Window: 8, Trials: 3, CacheBytes: 64 << 20}
}

// CacheBench measures the result cache: cold FR snapshots and intervals
// against their warm (fully cached) and sliding-window counterparts on one
// server. Cold trials invalidate via an empty Load — an epoch bump with no
// state change — so every cold measurement re-evaluates while the engine
// state stays identical across trials.
func (r *Runner) CacheBench(bp CacheBenchParams) (*CacheBench, error) {
	if bp.Trials <= 0 {
		bp.Trials = 1
	}
	if bp.Window <= 0 {
		bp.Window = 8
	}
	if bp.CacheBytes <= 0 {
		bp.CacheBytes = 64 << 20
	}
	const varrho = 3
	l := r.P.Ls[len(r.P.Ls)-1]
	cfg := ServerConfig(r.P)
	cfg.CacheBytes = bp.CacheBytes
	env, err := Build(r.P, cfg)
	if err != nil {
		return nil, err
	}
	s := env.S
	rho := RelRho(s.NumObjects(), varrho, s.Config().Area)
	q := core.Query{Rho: rho, L: l, At: s.Now()}
	out := &CacheBench{
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		N: r.P.N, Seed: r.P.Seed, L: l, Varrho: varrho,
		Window: bp.Window, CacheBytes: bp.CacheBytes, Trials: bp.Trials,
	}

	// measure runs one trial of a workload: setup primes or invalidates,
	// query is the measured call.
	measure := func(name string, setup func() error, query func() (*core.Result, error)) error {
		var best CachePoint
		for t := 0; t < bp.Trials; t++ {
			if setup != nil {
				if err := setup(); err != nil {
					return err
				}
			}
			before := s.CacheStats()
			sw := stopwatch.Start()
			res, err := query()
			ns := sw.Elapsed().Nanoseconds()
			if err != nil {
				return err
			}
			after := s.CacheStats()
			if t == 0 || ns < best.WallNanos {
				best = CachePoint{
					Name: name, WallNanos: ns, IOs: res.IOs,
					Hits:   after.Hits + after.Shared - before.Hits - before.Shared,
					Misses: after.Misses - before.Misses,
				}
			}
		}
		out.Points = append(out.Points, best)
		return nil
	}
	invalidate := func() error { return s.Load(nil) }
	snapshot := func() (*core.Result, error) { return s.Snapshot(q, core.FR) }
	interval := func(at motion.Tick) func() (*core.Result, error) {
		return func() (*core.Result, error) {
			sub := q
			sub.At = at
			return s.Interval(sub, at+motion.Tick(bp.Window), core.FR)
		}
	}

	if err := measure("snapshot-cold", invalidate, snapshot); err != nil {
		return nil, err
	}
	// Warm: the cold point's last trial left the key resident.
	if err := measure("snapshot-warm", nil, snapshot); err != nil {
		return nil, err
	}
	if err := measure("interval-cold", invalidate, interval(q.At)); err != nil {
		return nil, err
	}
	// Slide: prime [at, at+w], measure [at+1, at+w+1] — one new timestamp.
	prime := func() error {
		if err := invalidate(); err != nil {
			return err
		}
		_, err := interval(q.At)()
		return err
	}
	if err := measure("interval-slide", prime, interval(q.At+1)); err != nil {
		return nil, err
	}
	// Warm: the slide left [at+1, at+w+1] fully resident.
	if err := measure("interval-warm", nil, interval(q.At+1)); err != nil {
		return nil, err
	}

	cold := map[string]int64{}
	for _, p := range out.Points {
		if p.Name == "snapshot-cold" || p.Name == "interval-cold" {
			cold[p.Name] = p.WallNanos
		}
	}
	for i := range out.Points {
		base := cold["interval-cold"]
		if out.Points[i].Name == "snapshot-cold" || out.Points[i].Name == "snapshot-warm" {
			base = cold["snapshot-cold"]
		}
		if out.Points[i].WallNanos > 0 {
			out.Points[i].Speedup = float64(base) / float64(out.Points[i].WallNanos)
		}
	}
	return out, nil
}

// WriteJSON records the baseline as indented JSON (the BENCH_cache.json
// file checked into the repository root).
func (b *CacheBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// PrintCache renders a cache run as a table.
func PrintCache(w io.Writer, b *CacheBench) error {
	r := newReport(w)
	r.linef("result cache (n=%d, l=%g, varrho=%g, window=%d, budget=%dMB) on NumCPU=%d GOMAXPROCS=%d\n",
		b.N, b.L, b.Varrho, b.Window, b.CacheBytes>>20, b.NumCPU, b.GOMAXPROCS)
	r.text("workload\twall\tios\thits\tmisses\tspeedup")
	for _, p := range b.Points {
		r.linef("%s\t%s\t%d\t%d\t%d\t%.1fx\n",
			p.Name, fmtNanos(p.WallNanos), p.IOs, p.Hits, p.Misses, p.Speedup)
	}
	return r.flush()
}
