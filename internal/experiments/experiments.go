// Package experiments regenerates every table and figure of the PDR paper's
// evaluation (Sec. 7). Each experiment is a function returning typed rows;
// cmd/pdrbench and the repository-root benchmarks print them. Absolute
// numbers depend on the host; the reproduction targets are the paper's
// shapes: who wins, by roughly what factor, and where behaviour crosses
// over (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"time"

	"pdr/internal/accuracy"
	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Params scales an experiment run. The zero value is not valid; use
// DefaultParams (paper-like, minutes of runtime) or TestParams (seconds).
type Params struct {
	// N is the object count (the paper's CH10K/CH100K/CH500K vary this).
	N int
	// WarmTicks advances the world before measuring so the update
	// structures are in steady state.
	WarmTicks int
	// QueriesPerPoint is the query workload size per parameter setting;
	// results are averaged.
	QueriesPerPoint int
	// Seed drives workload generation.
	Seed int64
	// Varrhos are the relative density thresholds (paper: 1..5).
	Varrhos []float64
	// Ls are the neighborhood edges (paper: 30, 60).
	Ls []float64
}

// DefaultParams returns a paper-like configuration scaled to a single-core
// container (CH100K analogue).
func DefaultParams() Params {
	return Params{
		N:               100000,
		WarmTicks:       20,
		QueriesPerPoint: 5,
		Seed:            1,
		Varrhos:         []float64{1, 2, 3, 4, 5},
		Ls:              []float64{30, 60},
	}
}

// TestParams returns a configuration small enough for unit tests and
// go test -bench runs.
func TestParams() Params {
	return Params{
		N:               8000,
		WarmTicks:       5,
		QueriesPerPoint: 2,
		Seed:            1,
		Varrhos:         []float64{1, 3, 5},
		Ls:              []float64{60},
	}
}

// RelRho converts the paper's relative threshold varrho to an absolute
// density: rho = N * varrho / area (the paper's area is 10^6 square miles).
func RelRho(n int, varrho float64, area geom.Rect) float64 {
	return float64(n) * varrho / area.Area()
}

// Env is a loaded server plus its workload generator.
type Env struct {
	S *core.Server
	G *datagen.Generator
	P Params
}

// ServerConfig returns the default server configuration used by the
// experiments; l=60 surfaces so both FR and PA can answer l=60 queries, and
// a histogram fine enough for l=30 FR queries.
func ServerConfig(p Params) core.Config {
	cfg := core.DefaultConfig()
	cfg.L = 60
	cfg.HistM = 100 // lc=10: supports l >= 20
	return cfg
}

// Build creates a server over a fresh workload and warms it with update
// traffic.
func Build(p Params, cfg core.Config) (*Env, error) {
	gcfg := datagen.DefaultConfig(p.N)
	gcfg.Seed = p.Seed
	g, err := datagen.New(gcfg)
	if err != nil {
		return nil, err
	}
	s, err := core.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Load(g.InitialStates()); err != nil {
		return nil, err
	}
	for i := 0; i < p.WarmTicks; i++ {
		ups := g.Advance()
		if err := s.Tick(g.Now(), ups); err != nil {
			return nil, err
		}
	}
	return &Env{S: s, G: g, P: p}, nil
}

// queryTimes returns the deterministic query timestamps for one parameter
// point: spread over the prediction window [now, now+W].
func (e *Env) queryTimes() []motion.Tick {
	now := e.S.Now()
	w := e.S.Config().W
	out := make([]motion.Tick, e.P.QueriesPerPoint)
	for i := range out {
		out[i] = now + motion.Tick(int64(i)*int64(w)/int64(len(out)+1))
	}
	return out
}

// runPoint runs the query workload for one (varrho, l) point with one
// method and returns the averaged result plus the answers.
func (e *Env) runPoint(varrho, l float64, m core.Method) (avg ResultAvg, regions []geom.Region, err error) {
	rho := RelRho(e.S.NumObjects(), varrho, e.S.Config().Area)
	times := e.queryTimes()
	for _, qt := range times {
		r, err := e.S.Snapshot(core.Query{Rho: rho, L: l, At: qt}, m)
		if err != nil {
			return ResultAvg{}, nil, err
		}
		avg.CPU += r.CPU
		avg.IOs += r.IOs
		avg.Total += r.Total()
		avg.Candidates += r.Candidates
		avg.Objects += r.ObjectsRetrieved
		regions = append(regions, r.Region)
	}
	n := time.Duration(len(times))
	avg.CPU /= n
	avg.Total /= n
	avg.IOs /= int64(len(times))
	avg.Candidates /= len(times)
	avg.Objects /= len(times)
	return avg, regions, nil
}

// ResultAvg is a per-query average of costs.
type ResultAvg struct {
	CPU        time.Duration
	Total      time.Duration
	IOs        int64
	Candidates int
	Objects    int
}

// accuracyPoint measures PA and the DH baselines against one shared exact
// FR answer per query, for one (varrho, l) parameter point.
func (e *Env) accuracyPoint(varrho, l float64) (AccuracyRow, error) {
	rho := RelRho(e.S.NumObjects(), varrho, e.S.Config().Area)
	times := e.queryTimes()
	row := AccuracyRow{L: l, Varrho: varrho}
	for _, qt := range times {
		q := core.Query{Rho: rho, L: l, At: qt}
		exact, err := e.S.Snapshot(q, core.FR)
		if err != nil {
			return row, err
		}
		measure := func(m core.Method) (float64, float64, error) {
			res, err := e.S.Snapshot(q, m)
			if err != nil {
				return 0, 0, err
			}
			fp, fn := accuracy.Ratios(exact.Region, res.Region)
			return fp, fn, nil
		}
		paFP, paFN, err := measure(core.PA)
		if err != nil {
			return row, err
		}
		optFP, _, err := measure(core.DHOptimistic)
		if err != nil {
			return row, err
		}
		_, pessFN, err := measure(core.DHPessimistic)
		if err != nil {
			return row, err
		}
		row.PAfpPct += 100 * paFP
		row.PAfnPct += 100 * paFN
		row.DHOptPct += 100 * optFP
		row.DHPessPct += 100 * pessFN
	}
	n := float64(len(times))
	row.PAfpPct /= n
	row.PAfnPct /= n
	row.DHOptPct /= n
	row.DHPessPct /= n
	return row, nil
}

// fmtDur renders a duration with ms precision for tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
