package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/shard"
	"pdr/internal/stopwatch"
)

// shardBenchEngine is the slice of the engine surface the shard study
// drives; *core.Server (the unsharded baseline) and *shard.Engine both
// satisfy it.
type shardBenchEngine interface {
	Load(states []motion.State) error
	Tick(now motion.Tick, updates []motion.Update) error
	Apply(u motion.Update) error
	Snapshot(q core.Query, m core.Method) (*core.Result, error)
	Interval(q core.Query, until motion.Tick, m core.Method) (*core.Result, error)
	Now() motion.Tick
	NumObjects() int
	Config() core.Config
}

var (
	_ shardBenchEngine = (*core.Server)(nil)
	_ shardBenchEngine = (*shard.Engine)(nil)
)

// ShardPoint is the measurement at one shard count. Shards=0 is the
// unsharded core.Server the speedups are relative to; Shards>=2 is the
// space-partitioned engine at that width.
type ShardPoint struct {
	Shards int `json:"shards"`
	// SnapshotNanos and IntervalNanos are best-of-Trials wall times for one
	// FR snapshot / one FR interval query.
	SnapshotNanos int64 `json:"snapshotNanos"`
	IntervalNanos int64 `json:"intervalNanos"`
	// MixedNanos is the best-of-Trials wall time for the mixed workload:
	// concurrent snapshot readers racing apply writers (see ShardBench
	// MixedReads/MixedWriters fields).
	MixedNanos int64 `json:"mixedNanos"`
	// Speedups are the unsharded point's wall time over this point's.
	SnapshotSpeedup float64 `json:"snapshotSpeedup"`
	IntervalSpeedup float64 `json:"intervalSpeedup"`
	MixedSpeedup    float64 `json:"mixedSpeedup"`
}

// ShardBench is one recorded sharding study: identical workload and queries
// against the unsharded engine and against N-shard engines. As with the
// other BENCH baselines the host facts are part of the record — shard
// scaling is contention relief, so on a single-core host the mixed curve is
// legitimately flat.
type ShardBench struct {
	Kind       string `json:"kind"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workload facts.
	N      int     `json:"n"`
	Seed   int64   `json:"seed"`
	L      float64 `json:"l"`
	Varrho float64 `json:"varrho"`
	Window int     `json:"window"`
	Trials int     `json:"trials"`
	// Mixed-workload shape: MixedWriters goroutines each apply
	// MixedWrites insert+delete pairs while MixedReaders goroutines each
	// run MixedReads snapshots.
	MixedWriters int `json:"mixedWriters"`
	MixedWrites  int `json:"mixedWrites"`
	MixedReaders int `json:"mixedReaders"`
	MixedReads   int `json:"mixedReads"`
	// Points are ordered by shard count; Points[0] (Shards=0) is the
	// unsharded baseline.
	Points []ShardPoint `json:"points"`
}

// ShardBenchParams configures a sharding study.
type ShardBenchParams struct {
	// Shards lists the shard widths to measure (the unsharded baseline is
	// always run first and is not listed).
	Shards []int
	// Window is the interval query width in ticks.
	Window int
	// Trials per point; the best wall time is kept to damp scheduler noise.
	Trials int
	// Mixed-workload shape; zero values take the defaults.
	MixedWriters, MixedWrites, MixedReaders, MixedReads int
}

// DefaultShardBenchParams matches the recorded BENCH_shard.json baseline.
func DefaultShardBenchParams() ShardBenchParams {
	return ShardBenchParams{
		Shards: []int{2, 4, 8}, Window: 8, Trials: 3,
		MixedWriters: 4, MixedWrites: 200, MixedReaders: 4, MixedReads: 20,
	}
}

// buildSharded mirrors Build for a shard.Engine.
func buildSharded(p Params, cfg core.Config, shards int) (shardBenchEngine, *datagen.Generator, error) {
	gcfg := datagen.DefaultConfig(p.N)
	gcfg.Seed = p.Seed
	g, err := datagen.New(gcfg)
	if err != nil {
		return nil, nil, err
	}
	var e shardBenchEngine
	if shards <= 0 {
		s, err := core.NewServer(cfg)
		if err != nil {
			return nil, nil, err
		}
		e = s
	} else {
		s, err := shard.New(cfg, shards)
		if err != nil {
			return nil, nil, err
		}
		e = s
	}
	if err := e.Load(g.InitialStates()); err != nil {
		return nil, nil, err
	}
	for i := 0; i < p.WarmTicks; i++ {
		ups := g.Advance()
		if err := e.Tick(g.Now(), ups); err != nil {
			return nil, nil, err
		}
	}
	return e, g, nil
}

// ShardBench measures query and mixed read/write wall time against shard
// count. Each point gets a freshly built, identically seeded engine, so
// buffer-pool warmth cannot favor later points.
func (r *Runner) ShardBench(bp ShardBenchParams) (*ShardBench, error) {
	if bp.Trials <= 0 {
		bp.Trials = 1
	}
	d := DefaultShardBenchParams()
	if bp.MixedWriters <= 0 {
		bp.MixedWriters = d.MixedWriters
	}
	if bp.MixedWrites <= 0 {
		bp.MixedWrites = d.MixedWrites
	}
	if bp.MixedReaders <= 0 {
		bp.MixedReaders = d.MixedReaders
	}
	if bp.MixedReads <= 0 {
		bp.MixedReads = d.MixedReads
	}
	const varrho = 3
	l := r.P.Ls[len(r.P.Ls)-1]
	out := &ShardBench{
		Kind: "shard", NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		N: r.P.N, Seed: r.P.Seed, L: l, Varrho: varrho,
		Window: bp.Window, Trials: bp.Trials,
		MixedWriters: bp.MixedWriters, MixedWrites: bp.MixedWrites,
		MixedReaders: bp.MixedReaders, MixedReads: bp.MixedReads,
	}
	for _, n := range append([]int{0}, bp.Shards...) {
		pt, err := r.shardPoint(n, l, varrho, bp)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, pt)
	}
	base := out.Points[0]
	for i := range out.Points {
		p := &out.Points[i]
		if p.SnapshotNanos > 0 {
			p.SnapshotSpeedup = float64(base.SnapshotNanos) / float64(p.SnapshotNanos)
		}
		if p.IntervalNanos > 0 {
			p.IntervalSpeedup = float64(base.IntervalNanos) / float64(p.IntervalNanos)
		}
		if p.MixedNanos > 0 {
			p.MixedSpeedup = float64(base.MixedNanos) / float64(p.MixedNanos)
		}
	}
	return out, nil
}

func (r *Runner) shardPoint(shards int, l, varrho float64, bp ShardBenchParams) (ShardPoint, error) {
	pt := ShardPoint{Shards: shards}
	for t := 0; t < bp.Trials; t++ {
		e, _, err := buildSharded(r.P, ServerConfig(r.P), shards)
		if err != nil {
			return pt, err
		}
		rho := RelRho(e.NumObjects(), varrho, e.Config().Area)
		q := core.Query{Rho: rho, L: l, At: e.Now()}

		sw := stopwatch.Start()
		if _, err := e.Snapshot(q, core.FR); err != nil {
			return pt, err
		}
		keepBest(&pt.SnapshotNanos, sw.Elapsed().Nanoseconds())

		sw = stopwatch.Start()
		if _, err := e.Interval(q, q.At+motion.Tick(bp.Window), core.FR); err != nil {
			return pt, err
		}
		keepBest(&pt.IntervalNanos, sw.Elapsed().Nanoseconds())

		ns, err := runMixed(e, q, bp)
		if err != nil {
			return pt, err
		}
		keepBest(&pt.MixedNanos, ns)
	}
	return pt, nil
}

func keepBest(dst *int64, ns int64) {
	if *dst == 0 || ns < *dst {
		*dst = ns
	}
}

// runMixed races apply writers against snapshot readers on one engine and
// returns the wall time for the whole batch to finish. Writers insert and
// delete fresh objects (the population is unchanged afterwards); readers
// answer FR snapshots spread over the prediction window. This is the
// contention regime shard-local write locks exist for: on the unsharded
// engine every write excludes every read.
func runMixed(e shardBenchEngine, q core.Query, bp ShardBenchParams) (int64, error) {
	area := e.Config().Area
	now := e.Now()
	var wg sync.WaitGroup
	errc := make(chan error, bp.MixedWriters+bp.MixedReaders)
	sw := stopwatch.Start()
	for w := 0; w < bp.MixedWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-writer positions: a lattice walk across the
			// plane, disjoint IDs far above the workload's.
			for i := 0; i < bp.MixedWrites; i++ {
				st := motion.State{
					ID: motion.ObjectID(1<<40 + w*bp.MixedWrites + i),
					Pos: geom.Point{
						X: area.MinX + float64((w*bp.MixedWrites+i)%97)/97*area.Width(),
						Y: area.MinY + float64((w*bp.MixedWrites+i)%89)/89*area.Height(),
					},
					Vel: geom.Vec{X: float64(i%7) - 3, Y: float64(i%5) - 2},
					Ref: now,
				}
				if err := e.Apply(motion.NewInsert(st)); err != nil {
					errc <- err
					return
				}
				if err := e.Apply(motion.NewDelete(st, now)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < bp.MixedReaders; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			w := e.Config().W
			for i := 0; i < bp.MixedReads; i++ {
				rq := q
				rq.At = now + motion.Tick(int64(rd+i)%int64(w))
				if _, err := e.Snapshot(rq, core.FR); err != nil {
					errc <- err
					return
				}
			}
		}(rd)
	}
	wg.Wait()
	ns := sw.Elapsed().Nanoseconds()
	close(errc)
	for err := range errc {
		return 0, err
	}
	return ns, nil
}

// WriteJSON records the study as indented JSON (BENCH_shard.json).
func (b *ShardBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// PrintShard renders a sharding study as a table.
func PrintShard(w io.Writer, b *ShardBench) error {
	r := newReport(w)
	r.linef("shard scaling (n=%d, l=%g, varrho=%g, window=%d, mixed %dx%d writes vs %dx%d reads) on NumCPU=%d GOMAXPROCS=%d\n",
		b.N, b.L, b.Varrho, b.Window, b.MixedWriters, b.MixedWrites, b.MixedReaders, b.MixedReads, b.NumCPU, b.GOMAXPROCS)
	r.text("shards\tsnapshot\tinterval\tmixed\tsnap-x\tint-x\tmixed-x")
	for _, p := range b.Points {
		label := "unsharded"
		if p.Shards > 0 {
			label = fmt.Sprintf("%d", p.Shards)
		}
		r.linef("%s\t%s\t%s\t%s\t%.2fx\t%.2fx\t%.2fx\n", label,
			fmtNanos(p.SnapshotNanos), fmtNanos(p.IntervalNanos), fmtNanos(p.MixedNanos),
			p.SnapshotSpeedup, p.IntervalSpeedup, p.MixedSpeedup)
	}
	return r.flush()
}
