package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCacheBenchSmoke(t *testing.T) {
	r := testRunner()
	bp := CacheBenchParams{Window: 3, Trials: 1, CacheBytes: 16 << 20}
	b, err := r.CacheBench(bp)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"snapshot-cold", "snapshot-warm", "interval-cold", "interval-slide", "interval-warm"}
	if len(b.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(b.Points), len(want))
	}
	byName := map[string]CachePoint{}
	for i, p := range b.Points {
		if p.Name != want[i] {
			t.Errorf("point %d = %q, want %q", i, p.Name, want[i])
		}
		if p.WallNanos <= 0 {
			t.Errorf("%s: wall %d, want > 0", p.Name, p.WallNanos)
		}
		byName[p.Name] = p
	}
	// The warm paths must be fully served from cache: zero IOs, zero misses.
	for _, name := range []string{"snapshot-warm", "interval-warm"} {
		p := byName[name]
		if p.IOs != 0 || p.Misses != 0 {
			t.Errorf("%s: ios=%d misses=%d, want both 0", name, p.IOs, p.Misses)
		}
		if p.Hits == 0 {
			t.Errorf("%s: no cache hits recorded", name)
		}
	}
	// The slid window recomputes exactly the one new timestamp.
	if p := byName["interval-slide"]; p.Misses != 1 || p.Hits != int64(bp.Window) {
		t.Errorf("interval-slide: hits=%d misses=%d, want %d/1", p.Hits, p.Misses, bp.Window)
	}
	// Cold points evaluate everything.
	if p := byName["interval-cold"]; p.Misses != int64(bp.Window)+1 {
		t.Errorf("interval-cold: misses=%d, want %d", p.Misses, bp.Window+1)
	}
	if b.NumCPU <= 0 || b.GOMAXPROCS <= 0 {
		t.Error("host facts missing from the record")
	}

	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round CacheBench
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("recorded JSON does not round-trip: %v", err)
	}
	if len(round.Points) != len(b.Points) {
		t.Errorf("round-trip lost points: %d vs %d", len(round.Points), len(b.Points))
	}

	var tbl bytes.Buffer
	if err := PrintCache(&tbl, b); err != nil {
		t.Fatal(err)
	}
	for _, name := range want {
		if !strings.Contains(tbl.String(), name) {
			t.Errorf("table missing workload %q", name)
		}
	}
}
