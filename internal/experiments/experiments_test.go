package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"pdr/internal/geom"
)

func testRunner() *Runner {
	p := TestParams()
	p.N = 4000
	p.QueriesPerPoint = 1
	p.WarmTicks = 2
	return NewRunner(p)
}

func TestRelRho(t *testing.T) {
	area := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	if got := RelRho(500000, 1, area); got != 0.5 {
		t.Errorf("RelRho(500K, 1) = %g, want 0.5 (paper: rho in [0.5, 2.5] for CH500K)", got)
	}
	if got := RelRho(500000, 5, area); got != 2.5 {
		t.Errorf("RelRho(500K, 5) = %g, want 2.5", got)
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner().Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Page size", "update interval", "polynomial"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7(t *testing.T) {
	rows, err := testRunner().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Fig7 returned %d rows, want 2", len(rows))
	}
	if rows[0].Method != "FR (exact)" || rows[1].Method != "PA (approx)" {
		t.Errorf("unexpected methods: %+v", rows)
	}
	var buf bytes.Buffer
	if err := PrintFig7(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FR") {
		t.Error("PrintFig7 output malformed")
	}
}

func TestFig8AccuracyShapes(t *testing.T) {
	r := testRunner()
	rows, err := r.Fig8Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(r.P.Ls)*len(r.P.Varrhos) {
		t.Fatalf("got %d rows, want %d", len(rows), len(r.P.Ls)*len(r.P.Varrhos))
	}
	// Shape check (the paper's headline): PA error well below raw DH error
	// on average.
	var paErr, dhErr float64
	for _, row := range rows {
		paErr += row.PAfpPct + row.PAfnPct
		dhErr += row.DHOptPct + row.DHPessPct
	}
	if paErr >= dhErr {
		t.Errorf("expected PA total error (%.1f) below DH total error (%.1f)", paErr, dhErr)
	}
	var buf bytes.Buffer
	if err := PrintFig8Accuracy(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(buf.String(), "\n")) < len(rows) {
		t.Error("PrintFig8Accuracy output malformed")
	}
}

func TestFig8Memory(t *testing.T) {
	rows, err := testRunner().Fig8Memory()
	if err != nil {
		t.Fatal(err)
	}
	var dhN, paN int
	for _, row := range rows {
		switch row.Method {
		case "DH":
			dhN++
		case "PA":
			paN++
		}
		if row.MemoryMB <= 0 {
			t.Errorf("row %+v has non-positive memory", row)
		}
	}
	if dhN < 2 || paN < 2 {
		t.Fatalf("memory sweep too small: DH=%d PA=%d", dhN, paN)
	}
	var buf bytes.Buffer
	if err := PrintFig8Memory(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "memory MB") {
		t.Error("PrintFig8Memory output malformed")
	}
}

func TestFig9a(t *testing.T) {
	r := testRunner()
	rows, err := r.Fig9aQueryCPU()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(r.P.Ls)*len(r.P.Varrhos) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.PACPU <= 0 || row.DHCPU <= 0 {
			t.Errorf("non-positive CPU in %+v", row)
		}
	}
	var buf bytes.Buffer
	if err := PrintFig9a(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PA CPU") {
		t.Error("PrintFig9a output malformed")
	}
}

func TestFig9b(t *testing.T) {
	r := testRunner()
	rows, err := r.Fig9bBuildCPU()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	var dhPer, paPer float64
	for _, row := range rows {
		if row.PerUpdate <= 0 {
			t.Errorf("non-positive per-update cost: %+v", row)
		}
		switch row.Method {
		case "DH":
			dhPer = float64(row.PerUpdate)
		case "PA":
			paPer = float64(row.PerUpdate)
		}
	}
	// Paper shape: PA maintenance is substantially costlier than DH.
	if paPer <= dhPer {
		t.Errorf("expected PA per-update (%v) > DH per-update (%v)", paPer, dhPer)
	}
	var buf bytes.Buffer
	if err := PrintFig9b(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "update") {
		t.Error("PrintFig9b output malformed")
	}
}

func TestFig10a(t *testing.T) {
	r := testRunner()
	rows, err := r.Fig10aQueryCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Paper shape: FR total cost above PA total cost (FR pays index I/O
	// plus plane sweeps).
	var pa, fr float64
	for _, row := range rows {
		pa += float64(row.PATotal)
		fr += float64(row.FRTotal)
	}
	if fr <= pa {
		t.Errorf("expected FR total (%v) > PA total (%v)", fr, pa)
	}
	var buf bytes.Buffer
	if err := PrintFig10a(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FR total") {
		t.Error("PrintFig10a output malformed")
	}
}

func TestFig10b(t *testing.T) {
	r := testRunner()
	rows, err := r.Fig10bScalability([]int{2000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	var buf bytes.Buffer
	if err := PrintFig10b(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PA total") {
		t.Error("PrintFig10b output malformed")
	}
}

func TestAblations(t *testing.T) {
	r := testRunner()
	bb, err := r.AblationBranchBound()
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) != 2 {
		t.Fatalf("AblationBranchBound rows = %d", len(bb))
	}
	lp, err := r.AblationLocalPolynomials()
	if err != nil {
		t.Fatal(err)
	}
	if len(lp) != 2 {
		t.Fatalf("AblationLocalPolynomials rows = %d", len(lp))
	}
	fl, err := r.AblationFilter()
	if err != nil {
		t.Fatal(err)
	}
	if len(fl) != 5 {
		t.Fatalf("AblationFilter rows = %d", len(fl))
	}
	ix, err := r.AblationIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(ix) != 6 {
		t.Fatalf("AblationIndex rows = %d", len(ix))
	}
	mg, err := r.AblationMergeCandidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(mg) != 4 {
		t.Fatalf("AblationMergeCandidates rows = %d", len(mg))
	}
	var buf bytes.Buffer
	if err := PrintAblation(&buf, append(append(append(append(bb, lp...), fl...), ix...), mg...)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ablation") {
		t.Error("PrintAblation output malformed")
	}
}

func TestBaselineComparison(t *testing.T) {
	rows, err := testRunner().BaselineComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	var pdrRow, dcRow *BaselineRow
	for i := range rows {
		switch {
		case rows[i].Method == "PDR (FR)":
			pdrRow = &rows[i]
		case strings.HasPrefix(rows[i].Method, "dense-cell"):
			dcRow = &rows[i]
		}
		if rows[i].CoveragePct < 0 || rows[i].CoveragePct > 100.0001 {
			t.Errorf("%s coverage %g out of range", rows[i].Method, rows[i].CoveragePct)
		}
	}
	if pdrRow == nil || dcRow == nil {
		t.Fatal("missing PDR or dense-cell rows")
	}
	if pdrRow.CoveragePct != 100 || pdrRow.ExcessPct != 0 {
		t.Errorf("PDR row must be perfect: %+v", pdrRow)
	}
	// The paper's answer-loss claim: the dense-cell method misses part of
	// the true dense area.
	if dcRow.CoveragePct >= 100 {
		t.Errorf("dense-cell coverage %g%% — expected answer loss (<100%%)", dcRow.CoveragePct)
	}
	var buf bytes.Buffer
	if err := PrintBaselines(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coverage%") {
		t.Error("PrintBaselines output malformed")
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVFig8Accuracy(&buf, []AccuracyRow{{L: 30, Varrho: 1, PAfpPct: 2.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "l,varrho,") || !strings.Contains(buf.String(), "30,1,2.5") {
		t.Errorf("CSVFig8Accuracy output:\n%s", buf.String())
	}
	buf.Reset()
	if err := CSVFig8Memory(&buf, []MemoryRow{{Method: "PA", Config: "g=10 k=5", MemoryMB: 1.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PA,g=10 k=5,1.5") {
		t.Errorf("CSVFig8Memory output:\n%s", buf.String())
	}
	buf.Reset()
	if err := CSVFig9a(&buf, []QueryCPURow{{L: 60, Varrho: 3, PACPU: 2 * time.Millisecond, DHCPU: time.Millisecond}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "60,3,2000,1000") {
		t.Errorf("CSVFig9a output:\n%s", buf.String())
	}
	buf.Reset()
	if err := CSVFig10a(&buf, []QueryCostRow{{L: 30, Varrho: 2, PATotal: time.Millisecond, FRTotal: 2 * time.Millisecond, FRIOs: 7}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "30,2,1000,2000,7") {
		t.Errorf("CSVFig10a output:\n%s", buf.String())
	}
	buf.Reset()
	if err := CSVFig10b(&buf, []ScaleRow{{N: 10000, PATotal: time.Millisecond, FRTotal: time.Second}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10000,1000,1000000") {
		t.Errorf("CSVFig10b output:\n%s", buf.String())
	}
}

func TestExtIntervalCost(t *testing.T) {
	rows, err := testRunner().ExtIntervalCost([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Cost and union area grow (weakly) with the window.
	for i := 1; i < len(rows); i++ {
		if rows[i].PATotal < rows[i-1].PATotal/2 {
			t.Errorf("PA interval cost shrank sharply: %v -> %v", rows[i-1].PATotal, rows[i].PATotal)
		}
		if rows[i].AreaGrowthPct+1e-9 < rows[i-1].AreaGrowthPct {
			t.Errorf("union area shrank with a wider window: %+v", rows)
		}
	}
	var buf bytes.Buffer
	if err := PrintInterval(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "window") {
		t.Error("PrintInterval output malformed")
	}
}

func TestFig7SVG(t *testing.T) {
	dir := t.TempDir()
	paths, err := testRunner().Fig7SVG(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d SVGs, want 3", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s does not start with <svg", p)
		}
	}
}
