package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"time"
)

// CSVFig8Accuracy writes Fig. 8(a)/8(b) rows as CSV.
func CSVFig8Accuracy(w io.Writer, rows []AccuracyRow) error {
	out := [][]string{{"l", "varrho", "pa_rfp_pct", "pa_rfn_pct", "dhopt_rfp_pct", "dhpess_rfn_pct"}}
	for _, r := range rows {
		out = append(out, []string{
			f(r.L), f(r.Varrho), f(r.PAfpPct), f(r.PAfnPct), f(r.DHOptPct), f(r.DHPessPct),
		})
	}
	return csv.NewWriter(w).WriteAll(out)
}

// CSVFig8Memory writes Fig. 8(c)/8(d) rows as CSV.
func CSVFig8Memory(w io.Writer, rows []MemoryRow) error {
	out := [][]string{{"method", "config", "memory_mb", "rfp_pct", "rfn_pct"}}
	for _, r := range rows {
		out = append(out, []string{r.Method, r.Config, f(r.MemoryMB), f(r.RfpPct), f(r.RfnPct)})
	}
	return csv.NewWriter(w).WriteAll(out)
}

// CSVFig9a writes Fig. 9(a) rows as CSV (microseconds).
func CSVFig9a(w io.Writer, rows []QueryCPURow) error {
	out := [][]string{{"l", "varrho", "pa_cpu_us", "dh_cpu_us"}}
	for _, r := range rows {
		out = append(out, []string{f(r.L), f(r.Varrho), us(r.PACPU), us(r.DHCPU)})
	}
	return csv.NewWriter(w).WriteAll(out)
}

// CSVFig10a writes Fig. 10(a) rows as CSV (microseconds).
func CSVFig10a(w io.Writer, rows []QueryCostRow) error {
	out := [][]string{{"l", "varrho", "pa_total_us", "fr_total_us", "fr_ios"}}
	for _, r := range rows {
		out = append(out, []string{f(r.L), f(r.Varrho), us(r.PATotal), us(r.FRTotal), fmt.Sprint(r.FRIOs)})
	}
	return csv.NewWriter(w).WriteAll(out)
}

// CSVFig10b writes Fig. 10(b) rows as CSV (microseconds).
func CSVFig10b(w io.Writer, rows []ScaleRow) error {
	out := [][]string{{"n", "pa_total_us", "fr_total_us"}}
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.N), us(r.PATotal), us(r.FRTotal)})
	}
	return csv.NewWriter(w).WriteAll(out)
}

func f(v float64) string        { return fmt.Sprintf("%g", v) }
func us(d time.Duration) string { return fmt.Sprint(d.Microseconds()) }
