package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// report is a sticky-error tabwriter for the Print* render helpers: every
// write funnels through it, the first failure is remembered, and flush
// surfaces it once at the end — so a full disk or closed pipe turns into
// an error instead of a silently truncated table.
type report struct {
	tw  *tabwriter.Writer
	err error
}

func newReport(w io.Writer) *report {
	return &report{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

// text writes s verbatim plus a newline (no format expansion — header rows
// contain literal % signs).
func (r *report) text(s string) {
	if r.err == nil {
		_, r.err = fmt.Fprintln(r.tw, s)
	}
}

// linef writes one formatted row.
func (r *report) linef(format string, args ...any) {
	if r.err == nil {
		_, r.err = fmt.Fprintf(r.tw, format, args...)
	}
}

// flush aligns and emits the table, returning the first error seen.
func (r *report) flush() error {
	if r.err == nil {
		r.err = r.tw.Flush()
	}
	return r.err
}
