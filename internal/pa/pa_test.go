package pa

import (
	"math"
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

func area1000() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func newSurface(t *testing.T, g, k int, h motion.Tick, l float64) *Surface {
	t.Helper()
	s, err := New(Config{Area: area1000(), G: g, Degree: k, Horizon: h, L: l, MD: 128})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Area: area1000()},
		{Area: area1000(), G: 4},
		{Area: area1000(), G: 4, Degree: 5},
		{Area: area1000(), G: 4, Degree: 5, L: -1},
		{Area: area1000(), G: 4, Degree: 5, Horizon: -1, L: 30},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

// exactDensity is the true point density for a set of states.
func exactDensity(states []motion.State, qt motion.Tick, p geom.Point, l float64) float64 {
	n := 0
	for _, s := range states {
		q := s.PositionAt(qt)
		if q.X > p.X-l/2 && q.X <= p.X+l/2 && q.Y > p.Y-l/2 && q.Y <= p.Y+l/2 {
			n++
		}
	}
	return float64(n) / (l * l)
}

func clusterStates(rng *rand.Rand, n int, cx, cy, spread float64) []motion.State {
	states := make([]motion.State, n)
	for i := range states {
		states[i] = motion.State{
			ID:  motion.ObjectID(i),
			Pos: geom.Point{X: cx + rng.NormFloat64()*spread, Y: cy + rng.NormFloat64()*spread},
			Ref: 0,
		}
	}
	return states
}

func TestDensityApproximatesCluster(t *testing.T) {
	// 200 objects clustered at (500, 500): the approximated density near
	// the center must be clearly higher than far away, and in the right
	// ballpark of the exact density.
	s := newSurface(t, 10, 5, 0, 60)
	rng := rand.New(rand.NewSource(1))
	states := clusterStates(rng, 200, 500, 500, 25)
	s.Advance(0)
	for _, st := range states {
		s.Insert(st)
	}
	center := geom.Point{X: 500, Y: 500}
	far := geom.Point{X: 100, Y: 900}
	dc := s.Density(0, center)
	df := s.Density(0, far)
	ec := exactDensity(states, 0, center, 60)
	if dc < 3*math.Abs(df)+1e-12 {
		t.Errorf("center density %g not clearly above far density %g", dc, df)
	}
	if dc < 0.3*ec || dc > 3*ec {
		t.Errorf("center density %g too far from exact %g", dc, ec)
	}
}

func TestInsertDeleteRestoresZero(t *testing.T) {
	s := newSurface(t, 4, 4, 10, 30)
	s.Advance(0)
	st := motion.State{ID: 1, Pos: geom.Point{X: 400, Y: 600}, Vel: geom.Vec{X: 1, Y: -0.5}, Ref: 0}
	s.Insert(st)
	s.Delete(st, 0)
	for _, qt := range []motion.Tick{0, 5, 10} {
		for _, p := range []geom.Point{{X: 400, Y: 600}, {X: 405, Y: 597}, {X: 100, Y: 100}} {
			if d := s.Density(qt, p); d != 0 {
				t.Fatalf("density %g at %v t=%d after insert+delete, want exact 0", d, p, qt)
			}
		}
	}
}

func TestMovingObjectDensityFollows(t *testing.T) {
	// An object moving right: at later timestamps the density bump must be
	// at the predicted position, not the original one.
	s := newSurface(t, 10, 5, 50, 40)
	s.Advance(0)
	st := motion.State{ID: 1, Pos: geom.Point{X: 200, Y: 500}, Vel: geom.Vec{X: 10, Y: 0}, Ref: 0}
	// Insert many copies to make the bump strong.
	for i := 0; i < 50; i++ {
		st.ID = motion.ObjectID(i)
		s.Insert(st)
	}
	at := s.Density(50, geom.Point{X: 700, Y: 500}) // 200 + 10*50
	behind := s.Density(50, geom.Point{X: 200, Y: 500})
	if at < 2*math.Abs(behind) {
		t.Errorf("density did not follow the object: at=%g behind=%g", at, behind)
	}
}

func TestAdvanceRotation(t *testing.T) {
	s := newSurface(t, 4, 3, 5, 30)
	s.Advance(0)
	st := motion.State{ID: 1, Pos: geom.Point{X: 500, Y: 500}, Ref: 0}
	s.Insert(st)
	if d := s.Density(5, geom.Point{X: 500, Y: 500}); d == 0 {
		t.Fatal("density at horizon must be nonzero after insert")
	}
	s.Advance(3)
	if d := s.Density(4, geom.Point{X: 500, Y: 500}); d == 0 {
		t.Error("retained timestamp lost its surface")
	}
	if d := s.Density(7, geom.Point{X: 500, Y: 500}); d != 0 {
		t.Errorf("fresh slot must be zero, got %g", d)
	}
	if d := s.Density(2, geom.Point{X: 500, Y: 500}); d != 0 {
		t.Errorf("out-of-window density must be zero, got %g", d)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := newSurface(t, 10, 5, 90, 30)
	want := 91 * 100 * 21 * 8
	if got := s.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestDenseRegionFindsCluster(t *testing.T) {
	s := newSurface(t, 10, 5, 0, 60)
	rng := rand.New(rand.NewSource(2))
	states := clusterStates(rng, 300, 500, 500, 20)
	s.Advance(0)
	for _, st := range states {
		s.Insert(st)
	}
	rho := 0.5 * exactDensity(states, 0, geom.Point{X: 500, Y: 500}, 60)
	region, err := s.DenseRegion(0, rho)
	if err != nil {
		t.Fatal(err)
	}
	if len(region) == 0 {
		t.Fatal("expected a dense region around the cluster")
	}
	if !region.Contains(geom.Point{X: 500, Y: 500}) {
		t.Error("dense region must contain the cluster center")
	}
	if region.Contains(geom.Point{X: 100, Y: 900}) {
		t.Error("dense region must not contain the empty corner")
	}
	// Every reported rect stays within the area.
	for _, r := range region {
		if !area1000().ContainsRect(r) {
			t.Errorf("region rect %v outside area", r)
		}
	}
}

func TestDenseRegionMatchesGridScan(t *testing.T) {
	// Branch-and-bound and the trivial grid scan must agree almost
	// everywhere (both decide sub-floor boxes by center evaluation, but
	// B&B can settle whole boxes early via sound bounds — those decisions
	// are consistent with any center evaluation inside).
	s := newSurface(t, 5, 5, 0, 80)
	rng := rand.New(rand.NewSource(3))
	s.Advance(0)
	for _, st := range clusterStates(rng, 150, 300, 700, 40) {
		s.Insert(st)
	}
	for _, st := range clusterStates(rng, 100, 700, 300, 60) {
		s.Insert(st)
	}
	rho := 0.6 * s.Density(0, geom.Point{X: 300, Y: 700})
	bb, err := s.DenseRegion(0, rho)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := s.DenseRegionGrid(0, rho)
	if err != nil {
		t.Fatal(err)
	}
	ba, ga := bb.Area(), grid.Area()
	if ga == 0 {
		t.Fatal("grid scan found nothing; test degenerate")
	}
	if math.Abs(ba-ga) > 0.05*ga {
		t.Errorf("branch-and-bound area %g vs grid area %g differ by more than 5%%", ba, ga)
	}
}

func TestDenseRegionValidation(t *testing.T) {
	s := newSurface(t, 4, 3, 5, 30)
	s.Advance(0)
	if _, err := s.DenseRegion(99, 1); err == nil {
		t.Error("out-of-window timestamp must be rejected")
	}
	if _, err := s.DenseRegion(0, -1); err == nil {
		t.Error("negative rho must be rejected")
	}
	if _, err := s.DenseRegionGrid(99, 1); err == nil {
		t.Error("grid scan out-of-window timestamp must be rejected")
	}
}

func TestAccuracyImprovesWithDegreeAndCells(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	states := clusterStates(rng, 400, 350, 350, 80)
	l := 60.0

	rms := func(g, k int) float64 {
		s, err := New(Config{Area: area1000(), G: g, Degree: k, Horizon: 0, L: l, MD: 128})
		if err != nil {
			t.Fatal(err)
		}
		s.Advance(0)
		for _, st := range states {
			s.Insert(st)
		}
		var sum float64
		const samples = 400
		r := rand.New(rand.NewSource(99))
		for i := 0; i < samples; i++ {
			p := geom.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
			d := s.Density(0, p) - exactDensity(states, 0, p, l)
			sum += d * d
		}
		return math.Sqrt(sum / samples)
	}

	coarse := rms(2, 2)
	fine := rms(12, 5)
	if fine >= coarse {
		t.Errorf("finer approximation must reduce RMS error: coarse=%g fine=%g", coarse, fine)
	}
}

func TestContours(t *testing.T) {
	s := newSurface(t, 8, 5, 0, 60)
	rng := rand.New(rand.NewSource(5))
	states := clusterStates(rng, 300, 500, 500, 30)
	s.Advance(0)
	for _, st := range states {
		s.Insert(st)
	}
	level := 0.5 * s.Density(0, geom.Point{X: 500, Y: 500})
	segs, err := s.Contours(0, level, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("expected contour segments around the cluster")
	}
	// All segment endpoints inside the area, and near the level set:
	// density at segment midpoints should be close to the level.
	var worst float64
	for _, sg := range segs {
		for _, p := range []geom.Point{sg.A, sg.B} {
			if !area1000().ContainsClosed(p) {
				t.Fatalf("contour point %v outside area", p)
			}
		}
		mid := geom.Point{X: (sg.A.X + sg.B.X) / 2, Y: (sg.A.Y + sg.B.Y) / 2}
		if d := math.Abs(s.Density(0, mid) - level); d > worst {
			worst = d
		}
	}
	if worst > level {
		t.Errorf("contour deviates from level by %g (level %g)", worst, level)
	}
	if _, err := s.Contours(99, level, 64); err == nil {
		t.Error("out-of-window contour timestamp must be rejected")
	}
	if _, err := s.Contours(0, level, 1); err == nil {
		t.Error("resolution < 2 must be rejected")
	}
}

func BenchmarkInsert(b *testing.B) {
	s, err := New(Config{Area: area1000(), G: 10, Degree: 5, Horizon: 90, L: 30, MD: 128})
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(motion.State{
			ID:  motion.ObjectID(i),
			Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Vel: geom.Vec{X: 1, Y: 1},
			Ref: 0,
		})
	}
}

func BenchmarkDenseRegion(b *testing.B) {
	s, err := New(Config{Area: area1000(), G: 10, Degree: 5, Horizon: 0, L: 60, MD: 256})
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(0)
	rng := rand.New(rand.NewSource(1))
	for _, st := range clusterStates(rng, 500, 500, 500, 100) {
		s.Insert(st)
	}
	rho := 0.5 * s.Density(0, geom.Point{X: 500, Y: 500})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.DenseRegion(0, rho); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAdvanceFarJumpClearsEverything(t *testing.T) {
	s := newSurface(t, 4, 3, 5, 30)
	s.Advance(0)
	s.Insert(motion.State{ID: 1, Pos: geom.Point{X: 500, Y: 500}, Ref: 0})
	s.Advance(100)
	for qt := motion.Tick(100); qt <= 105; qt++ {
		if d := s.Density(qt, geom.Point{X: 500, Y: 500}); d != 0 {
			t.Fatalf("density at t=%d is %g after far jump, want 0", qt, d)
		}
	}
}

func TestApplyDispatch(t *testing.T) {
	s := newSurface(t, 4, 3, 5, 30)
	s.Advance(0)
	st := motion.State{ID: 1, Pos: geom.Point{X: 500, Y: 500}, Ref: 0}
	s.Apply(motion.NewInsert(st))
	if d := s.Density(0, geom.Point{X: 500, Y: 500}); d == 0 {
		t.Fatal("Apply(insert) had no effect")
	}
	s.Apply(motion.NewDelete(st, 0))
	if d := s.Density(0, geom.Point{X: 500, Y: 500}); d != 0 {
		t.Fatalf("Apply(delete) left density %g", d)
	}
}

func TestDenseRegionInMatchesClippedGlobal(t *testing.T) {
	s := newSurface(t, 8, 5, 0, 60)
	rng := rand.New(rand.NewSource(6))
	s.Advance(0)
	for _, st := range clusterStates(rng, 300, 450, 550, 60) {
		s.Insert(st)
	}
	rho := 0.5 * s.Density(0, geom.Point{X: 450, Y: 550})
	global, err := s.DenseRegion(0, rho)
	if err != nil {
		t.Fatal(err)
	}
	viewport := geom.Rect{MinX: 300, MinY: 400, MaxX: 600, MaxY: 700}
	clipped, err := s.DenseRegionIn(0, rho, viewport)
	if err != nil {
		t.Fatal(err)
	}
	// The clipped search subdivides from different initial boxes, so
	// boundary cells can decide differently at the resolution floor; areas
	// must agree within a small tolerance.
	want := global.Clip(viewport)
	if d := math.Abs(clipped.Area() - want.Area()); d > 0.02*(1+want.Area()) {
		t.Fatalf("viewport area %g, want ~clipped global %g", clipped.Area(), want.Area())
	}
	for _, r := range clipped {
		if !viewport.ContainsRect(r) {
			t.Fatalf("viewport result %v escapes viewport", r)
		}
	}
	// Degenerate viewports.
	if g, err := s.DenseRegionIn(0, rho, geom.Rect{}); err != nil || g != nil {
		t.Errorf("empty viewport: %v, %v", g, err)
	}
	if _, err := s.DenseRegionIn(99, rho, viewport); err == nil {
		t.Error("out-of-window timestamp must be rejected")
	}
	if _, err := s.DenseRegionIn(0, -1, viewport); err == nil {
		t.Error("negative rho must be rejected")
	}
}
