// Package pa implements the PDR paper's approximation method (Sec. 6): the
// point-density function over the plane is maintained, for every timestamp
// in the horizon, as a grid of local two-dimensional Chebyshev series. A
// location update adjusts the coefficients of the overlapped surfaces in
// closed form (Lemma 4) — no object data is consulted at query time — and a
// PDR query extracts the region where the approximated density meets the
// threshold by branch-and-bound over the series' interval bounds
// (Sec. 6.3), falling back to center evaluation below the resolution floor.
//
// Unlike the exact filtering-refinement method, the approximation assumes
// the neighborhood edge l is fixed in advance (paper Sec. 6).
package pa

import (
	"fmt"

	"pdr/internal/cheb"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Config parameterizes a density surface.
type Config struct {
	// Area is the indexed plane.
	Area geom.Rect
	// G is the per-axis count of local polynomials (G x G cells; the paper
	// uses a single global polynomial or 100-1600 local ones).
	G int
	// Degree is the total degree k of each Chebyshev series (paper: 3-5).
	Degree int
	// Horizon is H = U + W in ticks.
	Horizon motion.Tick
	// L is the fixed neighborhood edge length the surface is built for.
	L float64
	// MD is the per-axis resolution floor of query evaluation: recursion
	// stops and evaluates centers once a box is smaller than Area/MD
	// (paper's m_d x m_d evaluation grid).
	MD int
}

// Surface maintains the per-timestamp Chebyshev density approximations.
type Surface struct {
	cfg    Config
	cellW  float64
	cellH  float64
	base   motion.Tick
	filled bool
	// slots[t mod (H+1)][gy*G+gx] is the series for polynomial cell
	// (gx, gy) at absolute time t.
	slots [][]*cheb.Series2D
}

// New creates an all-zero surface.
func New(cfg Config) (*Surface, error) {
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("pa: empty area")
	}
	if cfg.G < 1 {
		return nil, fmt.Errorf("pa: G must be >= 1, got %d", cfg.G)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("pa: degree must be >= 1, got %d", cfg.Degree)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("pa: negative horizon %d", cfg.Horizon)
	}
	if cfg.L <= 0 {
		return nil, fmt.Errorf("pa: L must be positive, got %g", cfg.L)
	}
	if cfg.MD < cfg.G {
		cfg.MD = cfg.G * 8 // sensible default: 8x8 floor per polynomial cell
	}
	s := &Surface{
		cfg:   cfg,
		cellW: cfg.Area.Width() / float64(cfg.G),
		cellH: cfg.Area.Height() / float64(cfg.G),
		slots: make([][]*cheb.Series2D, cfg.Horizon+1),
	}
	for t := range s.slots {
		s.slots[t] = make([]*cheb.Series2D, cfg.G*cfg.G)
		for c := range s.slots[t] {
			series, err := cheb.NewSeries2D(cfg.Degree)
			if err != nil {
				return nil, err
			}
			s.slots[t][c] = series
		}
	}
	return s, nil
}

// L returns the fixed neighborhood edge the surface approximates.
func (s *Surface) L() float64 { return s.cfg.L }

// Horizon returns H.
func (s *Surface) Horizon() motion.Tick { return s.cfg.Horizon }

// Now returns the first maintained timestamp.
func (s *Surface) Now() motion.Tick { return s.base }

// MemoryBytes returns the coefficient storage footprint: the paper's
// H * g^2 * (k+1)(k+2)/2 doubles.
func (s *Surface) MemoryBytes() int {
	return len(s.slots) * s.cfg.G * s.cfg.G * cheb.NumCoeffs(s.cfg.Degree) * 8
}

func (s *Surface) slot(t motion.Tick) []*cheb.Series2D {
	n := motion.Tick(len(s.slots))
	return s.slots[((t%n)+n)%n]
}

// Advance moves the maintained window to [now, now+H], zeroing surfaces
// that rotate in. It never moves backwards.
func (s *Surface) Advance(now motion.Tick) {
	if !s.filled {
		s.base = now
		s.filled = true
		return
	}
	if now <= s.base {
		return
	}
	from, to := s.base+s.cfg.Horizon+1, now+s.cfg.Horizon
	if to-from >= motion.Tick(len(s.slots)) {
		from = to - motion.Tick(len(s.slots)) + 1
	}
	for t := from; t <= to; t++ {
		for _, series := range s.slot(t) {
			series.Reset()
		}
	}
	s.base = now
}

// cellRect returns the world rectangle of polynomial cell (gx, gy).
func (s *Surface) cellRect(gx, gy int) geom.Rect {
	return geom.NewRect(
		s.cfg.Area.MinX+float64(gx)*s.cellW,
		s.cfg.Area.MinY+float64(gy)*s.cellH,
		s.cfg.Area.MinX+float64(gx+1)*s.cellW,
		s.cfg.Area.MinY+float64(gy+1)*s.cellH,
	)
}

// cellOf returns the polynomial cell containing p, clamped to the grid.
func (s *Surface) cellOf(p geom.Point) (int, int) {
	gx := int((p.X - s.cfg.Area.MinX) / s.cellW)
	gy := int((p.Y - s.cfg.Area.MinY) / s.cellH)
	return clampInt(gx, 0, s.cfg.G-1), clampInt(gy, 0, s.cfg.G-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Insert adds the movement's density contribution (1/l^2 over the l-square
// around each predicted position) to every maintained timestamp in
// [s.Ref, s.Ref+H].
func (s *Surface) Insert(st motion.State) {
	s.apply(st, st.Ref, 1/(s.cfg.L*s.cfg.L))
}

// Delete removes a stale movement's remaining contribution from [at,
// st.Ref+H].
func (s *Surface) Delete(st motion.State, at motion.Tick) {
	s.applyFrom(st, at, -1/(s.cfg.L*s.cfg.L))
}

// Apply dispatches an update record.
func (s *Surface) Apply(u motion.Update) {
	switch u.Kind {
	case motion.Insert:
		s.Insert(u.State)
	case motion.Delete:
		s.Delete(u.State, u.At)
	}
}

func (s *Surface) apply(st motion.State, from motion.Tick, delta float64) {
	if !s.filled {
		s.base = from
		s.filled = true
	}
	s.applyFrom(st, from, delta)
}

func (s *Surface) applyFrom(st motion.State, from motion.Tick, delta float64) {
	lo, hi := from, st.Ref+s.cfg.Horizon
	if lo < s.base {
		lo = s.base
	}
	if hi > s.base+s.cfg.Horizon {
		hi = s.base + s.cfg.Horizon
	}
	for t := lo; t <= hi; t++ {
		p := st.PositionAt(t)
		// Objects predicted outside the monitored area do not exist at that
		// timestamp (same contract as the density histogram, so all query
		// methods see identical populations).
		if !s.cfg.Area.Contains(p) {
			continue
		}
		box := geom.RectFromCenter(p, s.cfg.L)
		s.addBox(t, box, delta)
	}
}

// addBox distributes value over the box into every overlapped polynomial
// cell's series, in the cell's normalized [-1, 1]^2 coordinates.
func (s *Surface) addBox(t motion.Tick, box geom.Rect, value float64) {
	gx1, gy1 := s.cellOf(geom.Point{X: box.MinX, Y: box.MinY})
	gx2, gy2 := s.cellOf(geom.Point{X: box.MaxX, Y: box.MaxY})
	slot := s.slot(t)
	for gx := gx1; gx <= gx2; gx++ {
		for gy := gy1; gy <= gy2; gy++ {
			cell := s.cellRect(gx, gy)
			ov := cell.Intersect(box)
			if ov.IsEmpty() {
				continue
			}
			x1 := s.normX(ov.MinX, cell)
			x2 := s.normX(ov.MaxX, cell)
			y1 := s.normY(ov.MinY, cell)
			y2 := s.normY(ov.MaxY, cell)
			slot[gy*s.cfg.G+gx].AddBoxDelta(x1, y1, x2, y2, value)
		}
	}
}

func (s *Surface) normX(x float64, cell geom.Rect) float64 {
	return 2*(x-cell.MinX)/cell.Width() - 1
}

func (s *Surface) normY(y float64, cell geom.Rect) float64 {
	return 2*(y-cell.MinY)/cell.Height() - 1
}

// Density returns the approximated point density at p and time t. Out-of-
// window timestamps yield zero.
func (s *Surface) Density(t motion.Tick, p geom.Point) float64 {
	if t < s.base || t > s.base+s.cfg.Horizon {
		return 0
	}
	gx, gy := s.cellOf(p)
	cell := s.cellRect(gx, gy)
	return s.slot(t)[gy*s.cfg.G+gx].Eval(s.normX(p.X, cell), s.normY(p.Y, cell))
}
