package pa

import (
	"fmt"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// ContourSegment is one line segment of a density iso-line.
type ContourSegment struct {
	A, B geom.Point
}

// Contours extracts iso-lines of the approximated density at timestamp qt
// for the given level, using marching squares over a res x res sampling of
// the Chebyshev surface. The paper cites explicit contour lines of the
// density distribution as a distinctive capability of the approximation
// method (Sec. 6).
func (s *Surface) Contours(qt motion.Tick, level float64, res int) ([]ContourSegment, error) {
	if qt < s.base || qt > s.base+s.cfg.Horizon {
		return nil, fmt.Errorf("pa: timestamp %d outside window [%d, %d]", qt, s.base, s.base+s.cfg.Horizon)
	}
	if res < 2 {
		return nil, fmt.Errorf("pa: contour resolution must be >= 2, got %d", res)
	}
	area := s.cfg.Area
	dx := area.Width() / float64(res)
	dy := area.Height() / float64(res)

	// Sample densities at the (res+1)^2 grid corners.
	vals := make([]float64, (res+1)*(res+1))
	for j := 0; j <= res; j++ {
		for i := 0; i <= res; i++ {
			p := geom.Point{X: area.MinX + float64(i)*dx, Y: area.MinY + float64(j)*dy}
			vals[j*(res+1)+i] = s.Density(qt, p)
		}
	}

	// interp returns the point on the edge between two corners where the
	// density crosses the level.
	interp := func(pa geom.Point, va float64, pb geom.Point, vb float64) geom.Point {
		d := vb - va
		t := 0.5
		if d != 0 {
			t = (level - va) / d
		}
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return geom.Point{X: pa.X + t*(pb.X-pa.X), Y: pa.Y + t*(pb.Y-pa.Y)}
	}

	var segs []ContourSegment
	for j := 0; j < res; j++ {
		for i := 0; i < res; i++ {
			// Corners: 0=bottom-left, 1=bottom-right, 2=top-right, 3=top-left.
			p0 := geom.Point{X: area.MinX + float64(i)*dx, Y: area.MinY + float64(j)*dy}
			p1 := geom.Point{X: p0.X + dx, Y: p0.Y}
			p2 := geom.Point{X: p0.X + dx, Y: p0.Y + dy}
			p3 := geom.Point{X: p0.X, Y: p0.Y + dy}
			v0 := vals[j*(res+1)+i]
			v1 := vals[j*(res+1)+i+1]
			v2 := vals[(j+1)*(res+1)+i+1]
			v3 := vals[(j+1)*(res+1)+i]

			idx := 0
			if v0 >= level {
				idx |= 1
			}
			if v1 >= level {
				idx |= 2
			}
			if v2 >= level {
				idx |= 4
			}
			if v3 >= level {
				idx |= 8
			}
			if idx == 0 || idx == 15 {
				continue
			}
			// Crossing points on the four edges (bottom, right, top, left).
			bottom := interp(p0, v0, p1, v1)
			right := interp(p1, v1, p2, v2)
			top := interp(p3, v3, p2, v2)
			left := interp(p0, v0, p3, v3)

			emit := func(a, b geom.Point) {
				segs = append(segs, ContourSegment{A: a, B: b})
			}
			switch idx {
			case 1, 14:
				emit(left, bottom)
			case 2, 13:
				emit(bottom, right)
			case 3, 12:
				emit(left, right)
			case 4, 11:
				emit(right, top)
			case 6, 9:
				emit(bottom, top)
			case 7, 8:
				emit(left, top)
			case 5: // saddle: two segments
				emit(left, bottom)
				emit(right, top)
			case 10: // saddle
				emit(bottom, right)
				emit(left, top)
			}
		}
	}
	return segs, nil
}
