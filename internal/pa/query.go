package pa

import (
	"fmt"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// DenseRegion returns the region where the approximated density at
// timestamp qt is at least rho, extracted per polynomial cell by
// branch-and-bound over the Chebyshev interval bounds (paper Sec. 6.3):
// boxes whose lower bound reaches rho are wholly dense, boxes whose upper
// bound misses rho are discarded, and boxes smaller than the MD resolution
// floor are decided by their center density.
//
// pdr:hot — PA query root for the hotpath analyzer family (docs/LINT.md).
func (s *Surface) DenseRegion(qt motion.Tick, rho float64) (geom.Region, error) {
	if qt < s.base || qt > s.base+s.cfg.Horizon {
		return nil, fmt.Errorf("pa: timestamp %d outside window [%d, %d]", qt, s.base, s.base+s.cfg.Horizon)
	}
	if rho < 0 {
		return nil, fmt.Errorf("pa: negative threshold %g", rho)
	}
	// Resolution floor in normalized units: a polynomial cell spans 2.0 and
	// Area/MD world units correspond to 2*G/MD.
	floor := 2 * float64(s.cfg.G) / float64(s.cfg.MD)
	slot := s.slot(qt)
	var out geom.Region
	for gy := 0; gy < s.cfg.G; gy++ {
		for gx := 0; gx < s.cfg.G; gx++ {
			cell := s.cellRect(gx, gy)
			series := slot[gy*s.cfg.G+gx]
			s.branch(series, cell, -1, -1, 1, 1, rho, floor, &out)
		}
	}
	// out is built fresh per call, so the union coalesces in place.
	return geom.CoalesceInPlace(out), nil
}

// branch recursively classifies the normalized box [x1,x2]x[y1,y2] of one
// polynomial cell.
func (s *Surface) branch(series seriesEval, cell geom.Rect, x1, y1, x2, y2, rho, floor float64, out *geom.Region) {
	lo, hi := series.Bounds(x1, y1, x2, y2)
	if hi < rho {
		return
	}
	if lo >= rho {
		out.Add(s.denorm(cell, x1, y1, x2, y2))
		return
	}
	if x2-x1 <= floor && y2-y1 <= floor {
		cx, cy := (x1+x2)/2, (y1+y2)/2
		if series.Eval(cx, cy) >= rho {
			out.Add(s.denorm(cell, x1, y1, x2, y2))
		}
		return
	}
	mx, my := (x1+x2)/2, (y1+y2)/2
	s.branch(series, cell, x1, y1, mx, my, rho, floor, out)
	s.branch(series, cell, mx, y1, x2, my, rho, floor, out)
	s.branch(series, cell, x1, my, mx, y2, rho, floor, out)
	s.branch(series, cell, mx, my, x2, y2, rho, floor, out)
}

// seriesEval is the slice of the Chebyshev series API the query needs;
// declared as an interface so ablation variants can wrap instrumentation
// around it.
type seriesEval interface {
	Eval(x, y float64) float64
	Bounds(x1, y1, x2, y2 float64) (lo, hi float64)
}

// denorm maps a normalized box of cell back to world coordinates.
func (s *Surface) denorm(cell geom.Rect, x1, y1, x2, y2 float64) geom.Rect {
	return geom.NewRect(
		cell.MinX+(x1+1)/2*cell.Width(),
		cell.MinY+(y1+1)/2*cell.Height(),
		cell.MinX+(x2+1)/2*cell.Width(),
		cell.MinY+(y2+1)/2*cell.Height(),
	)
}

// DenseRegionIn answers the dense-region query restricted to a viewport —
// the common dashboard interaction ("what is dense in the part of the map I
// am looking at"). Only the polynomial cells overlapping the viewport are
// explored, and branch-and-bound starts from the clipped boxes, so cost
// scales with the viewport rather than the plane.
//
// pdr:hot — PA query root for the hotpath analyzer family (docs/LINT.md).
func (s *Surface) DenseRegionIn(qt motion.Tick, rho float64, viewport geom.Rect) (geom.Region, error) {
	if qt < s.base || qt > s.base+s.cfg.Horizon {
		return nil, fmt.Errorf("pa: timestamp %d outside window [%d, %d]", qt, s.base, s.base+s.cfg.Horizon)
	}
	if rho < 0 {
		return nil, fmt.Errorf("pa: negative threshold %g", rho)
	}
	w := viewport.Intersect(s.cfg.Area)
	if w.IsEmpty() {
		return nil, nil
	}
	floor := 2 * float64(s.cfg.G) / float64(s.cfg.MD)
	slot := s.slot(qt)
	var out geom.Region
	for gy := 0; gy < s.cfg.G; gy++ {
		for gx := 0; gx < s.cfg.G; gx++ {
			cell := s.cellRect(gx, gy)
			ov := cell.Intersect(w)
			if ov.IsEmpty() {
				continue
			}
			series := slot[gy*s.cfg.G+gx]
			s.branch(series, cell,
				s.normX(ov.MinX, cell), s.normY(ov.MinY, cell),
				s.normX(ov.MaxX, cell), s.normY(ov.MaxY, cell),
				rho, floor, &out)
		}
	}
	return geom.CoalesceInPlace(out), nil
}

// DenseRegionGrid evaluates the density at the centers of an MD x MD grid
// and returns the dense cells. This is the paper's "trivial approach"
// (Sec. 6.3) kept as an ablation baseline for the branch-and-bound
// extraction.
func (s *Surface) DenseRegionGrid(qt motion.Tick, rho float64) (geom.Region, error) {
	if qt < s.base || qt > s.base+s.cfg.Horizon {
		return nil, fmt.Errorf("pa: timestamp %d outside window [%d, %d]", qt, s.base, s.base+s.cfg.Horizon)
	}
	md := s.cfg.MD
	w := s.cfg.Area.Width() / float64(md)
	h := s.cfg.Area.Height() / float64(md)
	var out geom.Region
	for j := 0; j < md; j++ {
		for i := 0; i < md; i++ {
			cx := s.cfg.Area.MinX + (float64(i)+0.5)*w
			cy := s.cfg.Area.MinY + (float64(j)+0.5)*h
			if s.Density(qt, geom.Point{X: cx, Y: cy}) >= rho {
				out.Add(geom.NewRect(
					s.cfg.Area.MinX+float64(i)*w,
					s.cfg.Area.MinY+float64(j)*h,
					s.cfg.Area.MinX+float64(i+1)*w,
					s.cfg.Area.MinY+float64(j+1)*h,
				))
			}
		}
	}
	return geom.CoalesceInPlace(out), nil
}
