// Package baselines re-implements the two prior dense-region query
// definitions the PDR paper argues against (Sec. 2), so their failure modes
// — answer loss, ambiguity, fixed shapes, missing local-density guarantees —
// and the paper's superset claim (Sec. 3.1) can be demonstrated and tested
// directly.
//
//   - Dense-cell queries (Hadjieleftheriou et al., SSTD 2003 [4]): partition
//     the space into a fixed grid and report cells whose region density
//     (count/area) reaches the threshold. Dense regions straddling cell
//     borders are lost entirely (Fig. 1a).
//
//   - Effective Density Queries (Jensen et al., ICDE 2006 [7]): report a set
//     of NON-overlapping dense l x l squares. Which maximal set is reported
//     depends on the scan strategy, so equally valid answers differ
//     (Fig. 1b).
package baselines

import (
	"sort"

	"pdr/internal/geom"
)

// DenseCells answers a dense-cell query: the area is partitioned into an
// m x m grid and every cell whose region density count/area >= rho is
// reported. Objects outside the area are ignored.
func DenseCells(points []geom.Point, area geom.Rect, m int, rho float64) geom.Region {
	if m < 1 || area.IsEmpty() {
		return nil
	}
	w := area.Width() / float64(m)
	h := area.Height() / float64(m)
	counts := make([]int, m*m)
	for _, p := range points {
		if !area.Contains(p) {
			continue
		}
		i := int((p.X - area.MinX) / w)
		j := int((p.Y - area.MinY) / h)
		if i >= m {
			i = m - 1
		}
		if j >= m {
			j = m - 1
		}
		counts[i*m+j]++
	}
	cellArea := w * h
	var out geom.Region
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if float64(counts[i*m+j])/cellArea >= rho {
				out.Add(geom.NewRect(
					area.MinX+float64(i)*w,
					area.MinY+float64(j)*h,
					area.MinX+float64(i+1)*w,
					area.MinY+float64(j+1)*h,
				))
			}
		}
	}
	return out
}

// ScanOrder selects the greedy scan strategy of the EDQ reporting step. The
// EDQ definition admits multiple maximal non-overlapping answers; different
// orders surface the ambiguity the PDR paper criticizes.
type ScanOrder int

const (
	// ScanLeftToRight considers candidate squares by ascending X.
	ScanLeftToRight ScanOrder = iota
	// ScanRightToLeft considers candidate squares by descending X.
	ScanRightToLeft
)

// EDQSquare is one reported effective-density square with its object count.
type EDQSquare struct {
	Center geom.Point
	Rect   geom.Rect
	Count  int
}

// EDQ answers an effective density query: a maximal set of non-overlapping
// l x l squares each containing at least rho*l^2 objects. Candidate squares
// are the l-square neighborhoods centered at object locations (the densest
// anchors available), greedily accepted in the given scan order. The result
// is a valid EDQ answer; different orders generally give different, equally
// valid answers.
func EDQ(points []geom.Point, area geom.Rect, l, rho float64, order ScanOrder) []EDQSquare {
	if l <= 0 || area.IsEmpty() {
		return nil
	}
	threshold := rho * l * l
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if order == ScanRightToLeft {
			return points[idx[a]].X > points[idx[b]].X
		}
		return points[idx[a]].X < points[idx[b]].X
	})

	var out []EDQSquare
	for _, i := range idx {
		c := points[i]
		if !area.Contains(c) {
			continue
		}
		// The candidate square is c's l-square neighborhood (right/top
		// closed), represented by its dual half-open rectangle.
		count := 0
		for _, q := range points {
			if q.X > c.X-l/2 && q.X <= c.X+l/2 && q.Y > c.Y-l/2 && q.Y <= c.Y+l/2 {
				count++
			}
		}
		if float64(count) < threshold {
			continue
		}
		r := geom.RectFromCenter(c, l)
		overlaps := false
		for _, s := range out {
			if s.Rect.Intersects(r) {
				overlaps = true
				break
			}
		}
		if !overlaps {
			out = append(out, EDQSquare{Center: c, Rect: r, Count: count})
		}
	}
	return out
}

// Region returns the union of the reported squares as a region.
func Region(squares []EDQSquare) geom.Region {
	out := make(geom.Region, 0, len(squares))
	for _, s := range squares {
		out.Add(s.Rect)
	}
	return out
}
