package baselines

import (
	"math"
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/sweep"
)

func area10() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10} }

// TestAnswerLossFigure1a reproduces the paper's Fig. 1(a): four objects in a
// unit square straddling four grid cells. No grid cell is dense, so the
// dense-cell method reports nothing — answer loss — while the PDR answer is
// non-empty and contains the straddling square's center.
func TestAnswerLossFigure1a(t *testing.T) {
	// Grid of unit cells; objects clustered around the corner (5, 5).
	points := []geom.Point{
		{X: 4.8, Y: 4.8}, {X: 5.2, Y: 4.8}, {X: 4.8, Y: 5.2}, {X: 5.2, Y: 5.2},
	}
	rho := 4.0 // 4 objects per unit square

	dc := DenseCells(points, area10(), 10, rho)
	if len(dc) != 0 {
		t.Fatalf("dense-cell method unexpectedly found %v; Fig 1a requires answer loss", dc)
	}

	pdr := sweep.DenseRects(points, area10(), rho, 1)
	if len(pdr) == 0 {
		t.Fatal("PDR must find the straddling dense square")
	}
	if !pdr.Contains(geom.Point{X: 5, Y: 5}) {
		t.Error("PDR answer must contain the center of the straddling square")
	}
}

// TestAmbiguityFigure1b reproduces Fig. 1(b): two overlapping dense squares;
// EDQ picks one depending on scan order, PDR reports both centers.
func TestAmbiguityFigure1b(t *testing.T) {
	// Two clusters of 4, close enough that their l-squares overlap.
	l := 2.0
	left := []geom.Point{{X: 4.0, Y: 5.0}, {X: 4.2, Y: 5.2}, {X: 4.4, Y: 4.8}, {X: 4.2, Y: 4.9}}
	right := []geom.Point{{X: 5.4, Y: 5.1}, {X: 5.6, Y: 5.0}, {X: 5.8, Y: 4.9}, {X: 5.6, Y: 5.2}}
	points := append(append([]geom.Point{}, left...), right...)
	rho := 4.0 / (l * l)

	ltr := EDQ(points, area10(), l, rho, ScanLeftToRight)
	rtl := EDQ(points, area10(), l, rho, ScanRightToLeft)
	if len(ltr) == 0 || len(rtl) == 0 {
		t.Fatal("EDQ must find at least one dense square in each order")
	}
	if ltr[0].Center == rtl[0].Center {
		t.Errorf("expected order-dependent EDQ answers, both start at %v", ltr[0].Center)
	}

	// PDR reports every rho-dense point: both EDQ anchor centers included.
	pdr := sweep.DenseRects(points, area10(), rho, l)
	for _, sq := range append(append([]EDQSquare{}, ltr...), rtl...) {
		if !pdr.Contains(sq.Center) {
			t.Errorf("PDR answer missing EDQ center %v", sq.Center)
		}
	}
}

// TestPDRSupersetOfDenseCells checks the paper's generality claim (Sec. 3.1)
// on random data: the center of every dense cell is rho-dense under PDR with
// l equal to the cell edge.
func TestPDRSupersetOfDenseCells(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		var points []geom.Point
		for c := 0; c < 4; c++ {
			cx, cy := rng.Float64()*10, rng.Float64()*10
			for k := 0; k < 20; k++ {
				points = append(points, geom.Point{X: cx + rng.NormFloat64(), Y: cy + rng.NormFloat64()})
			}
		}
		const m = 10
		l := 1.0 // cell edge
		rho := 5.0
		cells := DenseCells(points, area10(), m, rho)
		if len(cells) == 0 {
			continue
		}
		pdr := sweep.DenseRects(points, area10(), rho, l)
		for _, cell := range cells {
			if !pdr.Contains(cell.Center()) {
				t.Fatalf("trial %d: dense cell center %v not in PDR answer", trial, cell.Center())
			}
		}
	}
}

// TestPDRSupersetOfEDQ: every EDQ square center is rho-dense under PDR.
func TestPDRSupersetOfEDQ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		var points []geom.Point
		for c := 0; c < 3; c++ {
			cx, cy := 2+rng.Float64()*6, 2+rng.Float64()*6
			for k := 0; k < 15; k++ {
				points = append(points, geom.Point{X: cx + rng.NormFloat64()*0.5, Y: cy + rng.NormFloat64()*0.5})
			}
		}
		l := 1.5
		rho := 6 / (l * l)
		pdr := sweep.DenseRects(points, area10(), rho, l)
		for _, order := range []ScanOrder{ScanLeftToRight, ScanRightToLeft} {
			for _, sq := range EDQ(points, area10(), l, rho, order) {
				if !pdr.Contains(sq.Center) {
					t.Fatalf("trial %d order %d: EDQ center %v not in PDR answer", trial, order, sq.Center)
				}
			}
		}
	}
}

// TestLocalDensityFigure1c reproduces Fig. 1(c): a region-dense square whose
// corner is locally empty. The dense-cell method reports the whole cell; PDR
// excludes the empty corner.
func TestLocalDensityFigure1c(t *testing.T) {
	// 12 objects packed into the left half of cell [4,5)x[4,5); the right
	// part is empty.
	var points []geom.Point
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 12; k++ {
		points = append(points, geom.Point{X: 4.0 + rng.Float64()*0.3, Y: 4.0 + rng.Float64()})
	}
	rho := 10.0 // cell has 12 objects/unit -> region-dense

	dc := DenseCells(points, area10(), 10, rho)
	corner := geom.Point{X: 4.95, Y: 4.95}
	if !dc.Contains(corner) {
		t.Fatal("dense-cell method must report the whole cell, including the sparse corner")
	}
	pdr := sweep.DenseRects(points, area10(), rho, 1)
	if pdr.Contains(corner) {
		t.Error("PDR must exclude the locally sparse corner (local density guarantee)")
	}
}

func TestEDQNonOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points := make([]geom.Point, 200)
	for i := range points {
		points[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	sqs := EDQ(points, area10(), 1.5, 2.0/(1.5*1.5), ScanLeftToRight)
	for i := range sqs {
		for j := i + 1; j < len(sqs); j++ {
			if sqs[i].Rect.Intersects(sqs[j].Rect) {
				t.Fatalf("EDQ squares %d and %d overlap: %v vs %v", i, j, sqs[i].Rect, sqs[j].Rect)
			}
		}
	}
	got, want := Region(sqs).Area(), float64(len(sqs))*1.5*1.5
	if len(sqs) > 0 && math.Abs(got-want) > 1e-9*want {
		t.Errorf("Region area %g, want %g (non-overlapping squares)", got, want)
	}
}

func TestDenseCellsDegenerate(t *testing.T) {
	if got := DenseCells(nil, geom.Rect{}, 4, 1); got != nil {
		t.Errorf("empty area: got %v", got)
	}
	if got := DenseCells([]geom.Point{{X: 1, Y: 1}}, area10(), 0, 1); got != nil {
		t.Errorf("m=0: got %v", got)
	}
	if got := EDQ(nil, area10(), 0, 1, ScanLeftToRight); got != nil {
		t.Errorf("l=0: got %v", got)
	}
	// Out-of-area points are ignored.
	pts := []geom.Point{{X: -5, Y: -5}, {X: 15, Y: 15}}
	if got := DenseCells(pts, area10(), 2, 0.0001); len(got) != 0 {
		t.Errorf("out-of-area points counted: %v", got)
	}
}
