package tracestore

import (
	"sync"
	"testing"
	"time"

	"pdr/internal/telemetry"
)

// rec builds a minimal completed record; id doubles as insertion order.
func rec(id uint64, d time.Duration) *Record {
	tr := telemetry.NewTrace("/v1/query")
	tr.End()
	return &Record{
		ID: telemetry.TraceID(id), Route: "/v1/query", Method: "GET",
		URL: "/v1/query?l=30", Status: 200, Duration: d, Root: tr.Root(),
	}
}

func ids(recs []*Record) []telemetry.TraceID {
	out := make([]telemetry.TraceID, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

// TestEvictionOrder pins the two-tier retention contract: the ring keeps
// the most recent N, the reservoir keeps the slowest K even after the
// ring has rotated them out, and only records referenced by neither tier
// are dropped.
func TestEvictionOrder(t *testing.T) {
	s := New(4, 2)
	// Two early slow traces, then eight fast ones that rotate them out of
	// the ring. The reservoir must still hold them at the end.
	durations := []time.Duration{100, 90, 1, 2, 3, 4, 5, 6, 7, 8}
	for i, d := range durations {
		s.Add(rec(uint64(i+1), d*time.Millisecond))
	}

	// Ring: the last four adds, newest first.
	got := ids(s.Recent(10))
	want := []telemetry.TraceID{10, 9, 8, 7}
	if len(got) != len(want) {
		t.Fatalf("Recent = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Recent = %v, want %v", got, want)
		}
	}

	// Reservoir: the two slowest ever seen, slowest first, despite both
	// having left the ring long ago.
	got = ids(s.Slowest(10))
	want = []telemetry.TraceID{1, 2}
	if len(got) != len(want) {
		t.Fatalf("Slowest = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slowest = %v, want %v", got, want)
		}
	}

	// Resolvable: ring ∪ reservoir; everything else evicted.
	for _, id := range []uint64{1, 2, 7, 8, 9, 10} {
		if s.Get(telemetry.TraceID(id)) == nil {
			t.Errorf("trace %d should be resolvable", id)
		}
	}
	for _, id := range []uint64{3, 4, 5, 6} {
		if s.Get(telemetry.TraceID(id)) != nil {
			t.Errorf("trace %d should have been evicted", id)
		}
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	if s.Evictions() != 4 {
		t.Errorf("Evictions = %d, want 4", s.Evictions())
	}
}

// TestReservoirKeepsSlowestUnderChurn drives a long mixed workload and
// verifies the reservoir converges on exactly the K slowest traces.
func TestReservoirKeepsSlowestUnderChurn(t *testing.T) {
	const k = 8
	s := New(2, k)
	// Durations 1..200ms in a scrambled but deterministic order.
	for i := 1; i <= 200; i++ {
		d := time.Duration((i*73)%200+1) * time.Millisecond
		s.Add(rec(uint64(i), d))
	}
	slow := s.Slowest(k)
	if len(slow) != k {
		t.Fatalf("Slowest returned %d, want %d", len(slow), k)
	}
	for i, r := range slow {
		want := time.Duration(200-i) * time.Millisecond
		if r.Duration != want {
			t.Errorf("slowest[%d] = %v, want %v", i, r.Duration, want)
		}
	}
}

func TestMetricsMirror(t *testing.T) {
	regy := telemetry.NewRegistry()
	s := New(2, 1)
	s.SetMetrics(NewMetrics(regy))
	for i := 1; i <= 5; i++ {
		s.Add(rec(uint64(i), time.Duration(6-i)*time.Millisecond))
	}
	// Ring holds {4,5}; reservoir holds {1} (slowest, 5ms): 2 evicted.
	if got := s.Evictions(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	if got := s.Len(); got != 3 {
		t.Errorf("len = %d, want 3", got)
	}
}

// TestStoreRaceStress is the satellite's -race gate: concurrent Adds
// (query load) against concurrent reads of every accessor, the pattern
// the /debug/traces handlers create in production. Run with -race by
// scripts/check.sh.
func TestStoreRaceStress(t *testing.T) {
	s := New(32, 8)
	const writers, readers, iters = 4, 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := uint64(w*iters + i + 1)
				s.Add(rec(id, time.Duration(id%97)*time.Millisecond))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if rc := s.Get(telemetry.TraceID(uint64(i + 1))); rc != nil {
					_ = rc.Root.CountSpans() // render a retained tree
				}
				for _, rc := range s.Recent(16) {
					_ = rc.Duration
				}
				for _, rc := range s.Slowest(8) {
					_ = rc.Duration
				}
				_ = s.Len()
				_ = s.Evictions()
			}
		}(r)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("store empty after stress")
	}
	if got := len(s.Recent(64)); got != 32 {
		t.Errorf("ring holds %d, want 32", got)
	}
	if got := len(s.Slowest(64)); got != 8 {
		t.Errorf("reservoir holds %d, want 8", got)
	}
}
