// Package tracestore holds completed request traces in bounded memory so
// a slow-query log line or an X-Pdr-Trace-Id response header can be
// resolved to its full span tree after the fact (GET /debug/traces/{id}).
//
// Retention is two-tier and bounded on both tiers: a fixed-capacity ring
// of the most recent traces (the "what is the server doing right now"
// view) plus a fixed-capacity reservoir that always keeps the slowest
// traces seen since startup (the "what should I be worried about" view —
// exactly the traces a recency ring would have rotated out by the time
// anyone looks). A trace stays resolvable while either tier references
// it; eviction from both drops it for good and bumps the eviction
// counter. All methods are safe for concurrent use.
package tracestore

import (
	"slices"
	"sync"
	"time"

	"pdr/internal/telemetry"
)

// Record is one stored trace with its request envelope.
type Record struct {
	ID       telemetry.TraceID
	Time     time.Time // wall-clock anchor; span offsets are relative to it
	Route    string
	Method   string // HTTP method
	URL      string
	Status   int
	Duration time.Duration
	Root     *telemetry.Span
}

// Metrics is the store's instrument bundle.
type Metrics struct {
	entries   *telemetry.Gauge
	evictions *telemetry.Counter
}

// NewMetrics registers the store instruments on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		entries:   reg.Gauge("pdr_trace_store_entries", "Traces currently resolvable in the store."),
		evictions: reg.Counter("pdr_trace_evicted_total", "Traces dropped from both the ring and the slow reservoir."),
	}
}

// entry wraps a record with its retention bookkeeping.
type entry struct {
	rec    *Record
	inRing bool
	inSlow bool
}

// Store is the bounded in-memory trace store.
type Store struct {
	mu sync.Mutex
	// ring holds the most recent traces; guarded by mu.
	ring []*entry
	next int
	// slow is a min-heap on Duration holding the slowest traces seen;
	// guarded by mu. The heap minimum is the eviction candidate, so the
	// reservoir always keeps the slowest.
	slow []*entry
	// byID resolves trace IDs while a record is retained; guarded by mu.
	byID map[telemetry.TraceID]*entry

	ringCap, slowCap int
	evictions        int64
	met              *Metrics // nil until SetMetrics; mirror only
}

// New builds a store keeping the ringCap most recent and the slowCap
// slowest traces. Capacities below 1 are raised to 1 — a Store always
// retains something; disable tracing at the sampler, not here.
func New(ringCap, slowCap int) *Store {
	if ringCap < 1 {
		ringCap = 1
	}
	if slowCap < 1 {
		slowCap = 1
	}
	return &Store{
		ring:    make([]*entry, 0, ringCap),
		slow:    make([]*entry, 0, slowCap),
		byID:    make(map[telemetry.TraceID]*entry, ringCap+slowCap),
		ringCap: ringCap,
		slowCap: slowCap,
	}
}

// SetMetrics attaches an instrument bundle (seeded with current state).
func (s *Store) SetMetrics(met *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = met
	if met != nil {
		met.entries.Set(float64(len(s.byID)))
	}
}

// Add retains rec. The record and its span tree must be complete —
// readers may render them concurrently from other goroutines.
func (s *Store) Add(rec *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &entry{rec: rec, inRing: true}
	if len(s.ring) < s.ringCap {
		s.ring = append(s.ring, e)
	} else {
		old := s.ring[s.next]
		old.inRing = false
		s.ring[s.next] = e
		s.maybeDropLocked(old)
	}
	s.next = (s.next + 1) % s.ringCap
	s.byID[rec.ID] = e

	if len(s.slow) < s.slowCap {
		e.inSlow = true
		s.slow = append(s.slow, e)
		s.siftUpLocked(len(s.slow) - 1)
	} else if rec.Duration > s.slow[0].rec.Duration {
		fastest := s.slow[0]
		fastest.inSlow = false
		e.inSlow = true
		s.slow[0] = e
		s.siftDownLocked(0)
		s.maybeDropLocked(fastest)
	}
	if s.met != nil {
		s.met.entries.Set(float64(len(s.byID)))
	}
}

// maybeDropLocked forgets a record once neither tier references it.
func (s *Store) maybeDropLocked(e *entry) {
	if e.inRing || e.inSlow {
		return
	}
	delete(s.byID, e.rec.ID)
	s.evictions++
	if s.met != nil {
		s.met.evictions.Inc()
	}
}

// siftUpLocked restores the min-heap property upward from i.
func (s *Store) siftUpLocked(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.slow[parent].rec.Duration <= s.slow[i].rec.Duration {
			return
		}
		s.slow[parent], s.slow[i] = s.slow[i], s.slow[parent]
		i = parent
	}
}

// siftDownLocked restores the min-heap property downward from i.
func (s *Store) siftDownLocked(i int) {
	n := len(s.slow)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && s.slow[l].rec.Duration < s.slow[min].rec.Duration {
			min = l
		}
		if r < n && s.slow[r].rec.Duration < s.slow[min].rec.Duration {
			min = r
		}
		if min == i {
			return
		}
		s.slow[i], s.slow[min] = s.slow[min], s.slow[i]
		i = min
	}
}

// Get resolves a trace ID, nil when unknown or already evicted.
func (s *Store) Get(id telemetry.TraceID) *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return nil
	}
	return e.rec
}

// Recent returns up to max records, newest first.
func (s *Store) Recent(max int) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	if max < n {
		n = max
	}
	if n <= 0 {
		return nil
	}
	out := make([]*Record, 0, n)
	// next-1 is the newest slot; walk backwards with wrap-around.
	for i := 0; i < n; i++ {
		idx := (s.next - 1 - i + len(s.ring)) % len(s.ring)
		out = append(out, s.ring[idx].rec)
	}
	return out
}

// Slowest returns up to max records, slowest first.
func (s *Store) Slowest(max int) []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.slow)
	if max < n {
		n = max
	}
	if n <= 0 {
		return nil
	}
	all := make([]*Record, 0, len(s.slow))
	for _, e := range s.slow {
		all = append(all, e.rec)
	}
	slices.SortFunc(all, func(a, b *Record) int {
		switch {
		case a.Duration > b.Duration:
			return -1
		case a.Duration < b.Duration:
			return 1
		default:
			return 0
		}
	})
	return all[:n]
}

// Len returns the number of resolvable traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Evictions returns the number of traces dropped from both tiers.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}
