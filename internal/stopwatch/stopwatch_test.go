package stopwatch

import (
	"testing"
	"time"
)

func TestElapsedIsMonotonic(t *testing.T) {
	sw := Start()
	time.Sleep(time.Millisecond)
	first := sw.Elapsed()
	if first <= 0 {
		t.Fatalf("Elapsed() = %v, want > 0", first)
	}
	if second := sw.Elapsed(); second < first {
		t.Fatalf("Elapsed() went backwards: %v then %v", first, second)
	}
}
