// Package stopwatch is the approved wall-clock metering wrapper for the
// simulation-time packages. pdrvet's wallclock analyzer forbids time.Now
// in internal/core, internal/history and the index substrates, where every
// timestamp must be a motion.Tick flowing through parameters; measuring
// CPU cost is the one legitimate wall-clock use there, and funneling it
// through this package keeps the two notions of time impossible to mix up
// (a stopwatch yields a Duration, never a timestamp).
package stopwatch

import "time"

// Stopwatch marks a start instant.
type Stopwatch struct {
	start time.Time
}

// Start begins timing.
func Start() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall-clock time since Start.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
