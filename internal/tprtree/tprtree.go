// Package tprtree implements a time-parameterized R-tree (TPR-tree,
// Saltenis et al., SIGMOD 2000) over a paged buffer pool. It indexes the
// predicted linear trajectories of moving objects and answers timestamp
// range queries ("all objects inside rectangle R at future time qt"), which
// is exactly the access path the PDR paper's refinement step needs.
//
// Every entry stores a time-parameterized bounding rectangle (tpbr): position
// bounds that are tight at the entry's reference time plus velocity bounds,
// so the rectangle [lo + vlo*(t-ref), hi + vhi*(t-ref)] conservatively
// bounds the subtree at any t >= ref. Inserts choose subtrees by minimal
// enlargement of the area integrated over the tree's horizon window
// [now, now+H], and splits minimize the same integral, following the
// TPR-tree's "integrated area" optimization.
package tprtree

import (
	"fmt"
	"math"
	"sort"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
)

// entry is either a leaf entry (an object's exact trajectory: lo==hi,
// vlo==vhi, child==0) or an internal entry (a child page and the tpbr of its
// subtree).
type entry struct {
	child    storage.PageID
	obj      motion.ObjectID
	ref      motion.Tick
	lo, hi   [2]float64
	vlo, vhi [2]float64
}

const (
	headerBytes        = 24
	internalEntryBytes = 8 + 8 + 8*8 // child + ref + 4 position and 4 velocity bounds
	leafEntryBytes     = 8 + 8 + 4*8 // obj + ref + position + velocity
)

func leafEntry(s motion.State) entry {
	return entry{
		obj: s.ID,
		ref: s.Ref,
		lo:  [2]float64{s.Pos.X, s.Pos.Y},
		hi:  [2]float64{s.Pos.X, s.Pos.Y},
		vlo: [2]float64{s.Vel.X, s.Vel.Y},
		vhi: [2]float64{s.Vel.X, s.Vel.Y},
	}
}

func (e entry) state() motion.State {
	return motion.State{
		ID:  e.obj,
		Ref: e.ref,
		Pos: geom.Point{X: e.lo[0], Y: e.lo[1]},
		Vel: geom.Vec{X: e.vlo[0], Y: e.vlo[1]},
	}
}

// loAt and hiAt evaluate the tpbr bounds at time t (valid for t >= e.ref;
// exact at all t for leaf entries).
func (e entry) loAt(d int, t motion.Tick) float64 { return e.lo[d] + e.vlo[d]*float64(t-e.ref) }
func (e entry) hiAt(d int, t motion.Tick) float64 { return e.hi[d] + e.vhi[d]*float64(t-e.ref) }

// rebase returns e re-anchored at reference time rc >= e.ref. The position
// bounds are evaluated at rc; velocity bounds are unchanged.
func (e entry) rebase(rc motion.Tick) entry {
	if rc == e.ref {
		return e
	}
	out := e
	out.ref = rc
	for d := 0; d < 2; d++ {
		out.lo[d] = e.loAt(d, rc)
		out.hi[d] = e.hiAt(d, rc)
	}
	return out
}

// combine returns the tpbr union of a and b anchored at rc (rc must be >=
// both reference times for the result to be conservative).
func combine(a, b entry, rc motion.Tick) entry {
	a, b = a.rebase(rc), b.rebase(rc)
	out := entry{ref: rc}
	for d := 0; d < 2; d++ {
		out.lo[d] = math.Min(a.lo[d], b.lo[d])
		out.hi[d] = math.Max(a.hi[d], b.hi[d])
		out.vlo[d] = math.Min(a.vlo[d], b.vlo[d])
		out.vhi[d] = math.Max(a.vhi[d], b.vhi[d])
	}
	return out
}

// combineAll unions a non-empty entry slice at anchor rc.
func combineAll(es []entry, rc motion.Tick) entry {
	out := es[0].rebase(rc)
	for _, e := range es[1:] {
		out = combine(out, e, rc)
	}
	return out
}

// integArea returns the integral over [t1, t2] of the area of e's tpbr.
// Width along dimension d at time t is (hi-lo) + (vhi-vlo)*(t-ref), so the
// area is a quadratic in t with an analytic integral.
func (e entry) integArea(t1, t2 motion.Tick) float64 {
	if t2 < t1 {
		return 0
	}
	s0 := float64(t1 - e.ref)
	T := float64(t2 - t1)
	a := (e.hi[0] - e.lo[0]) + (e.vhi[0]-e.vlo[0])*s0
	b := e.vhi[0] - e.vlo[0]
	c := (e.hi[1] - e.lo[1]) + (e.vhi[1]-e.vlo[1])*s0
	d := e.vhi[1] - e.vlo[1]
	if T == 0 {
		return a * c
	}
	return a*c*T + (a*d+b*c)*T*T/2 + b*d*T*T*T/3
}

// intersectsAt reports whether e's tpbr at time t overlaps r, treating both
// as closed sets (conservative for index descent).
func (e entry) intersectsAt(r geom.Rect, t motion.Tick) bool {
	return e.loAt(0, t) <= r.MaxX && e.hiAt(0, t) >= r.MinX &&
		e.loAt(1, t) <= r.MaxY && e.hiAt(1, t) >= r.MinY
}

// storagePageID is a local alias to keep signatures compact.
type storagePageID = storage.PageID

// node is one tree page.
type node struct {
	leaf    bool
	entries []entry
}

// Tree is a TPR-tree. It is not safe for concurrent use.
type Tree struct {
	pool    *storage.Pool
	root    storage.PageID
	height  int // 1 = root is a leaf
	horizon motion.Tick
	now     motion.Tick
	size    int

	fanLeaf, fanInt int
	minLeaf, minInt int
}

// Config parameterizes tree construction.
type Config struct {
	// Pool is the buffer pool backing the tree's pages. Required.
	Pool *storage.Pool
	// Horizon is the time-integration window H = U + W used by insertion
	// and split optimization.
	Horizon motion.Tick
	// PageSize in bytes determines the node fan-out; 0 means the paper's
	// 4 KB.
	PageSize int
}

// New creates an empty TPR-tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("tprtree: nil pool")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("tprtree: horizon must be positive, got %d", cfg.Horizon)
	}
	ps := cfg.PageSize
	if ps == 0 {
		ps = storage.DefaultPageSize
	}
	fanLeaf := (ps - headerBytes) / leafEntryBytes
	fanInt := (ps - headerBytes) / internalEntryBytes
	if fanLeaf < 4 || fanInt < 4 {
		return nil, fmt.Errorf("tprtree: page size %d too small", ps)
	}
	t := &Tree{
		pool:    cfg.Pool,
		horizon: cfg.Horizon,
		height:  1,
		fanLeaf: fanLeaf,
		fanInt:  fanInt,
		minLeaf: max(2, fanLeaf*2/5),
		minInt:  max(2, fanInt*2/5),
	}
	t.root = t.newNode(&node{leaf: true})
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (t *Tree) newNode(n *node) storage.PageID {
	id := t.pool.Alloc()
	t.mustWrite(id, n)
	return id
}

func (t *Tree) readNode(id storage.PageID) *node {
	v, err := t.pool.Read(id)
	if err != nil {
		panic("tprtree: " + err.Error()) // structural corruption; unrecoverable
	}
	return v.(*node)
}

func (t *Tree) mustWrite(id storage.PageID, n *node) {
	if err := t.pool.Write(id, n); err != nil {
		panic("tprtree: " + err.Error())
	}
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Now returns the tree's current time anchor.
func (t *Tree) Now() motion.Tick { return t.now }

// SetNow advances the tree's notion of current time; insertion and split
// optimization integrate over [now, now+Horizon]. SetNow never moves time
// backwards.
func (t *Tree) SetNow(now motion.Tick) {
	if now > t.now {
		t.now = now
	}
}

func (t *Tree) fan(leaf bool) int {
	if leaf {
		return t.fanLeaf
	}
	return t.fanInt
}

func (t *Tree) min(leaf bool) int {
	if leaf {
		return t.minLeaf
	}
	return t.minInt
}

// Insert indexes the movement s.
func (t *Tree) Insert(s motion.State) {
	t.insertEntry(leafEntry(s))
	t.size++
}

func (t *Tree) insertEntry(e entry) {
	bound, split := t.insertAt(t.root, e)
	if split != nil {
		// Root split: grow the tree.
		oldRoot := bound
		oldRoot.child = t.root
		newRoot := &node{leaf: false, entries: []entry{oldRoot, *split}}
		t.root = t.newNode(newRoot)
		t.height++
	}
}

// insertAt descends to a leaf, inserts e, and returns the (tight, re-anchored
// at t.now) bound of the visited node plus an optional new sibling from a
// split.
func (t *Tree) insertAt(pid storage.PageID, e entry) (bound entry, split *entry) {
	n := t.readNode(pid)
	if n.leaf {
		n.entries = append(n.entries, e)
	} else {
		best := t.chooseSubtree(n, e)
		childBound, childSplit := t.insertAt(n.entries[best].child, e)
		childBound.child = n.entries[best].child
		n.entries[best] = childBound
		if childSplit != nil {
			n.entries = append(n.entries, *childSplit)
		}
	}
	if len(n.entries) > t.fan(n.leaf) {
		sibling := t.split(n)
		sibBound := combineAll(sibling.entries, t.now)
		sibBound.child = t.newNode(sibling)
		t.mustWrite(pid, n)
		b := combineAll(n.entries, t.now)
		b.child = pid
		return b, &sibBound
	}
	t.mustWrite(pid, n)
	b := combineAll(n.entries, t.now)
	b.child = pid
	return b, nil
}

// chooseSubtree picks the child of n whose horizon-integrated area grows
// least when enlarged to cover e, breaking ties by least integrated area.
func (t *Tree) chooseSubtree(n *node, e entry) int {
	t1, t2 := t.now, t.now+t.horizon
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range n.entries {
		area := c.integArea(t1, t2)
		enl := combine(c, e, t.now).integArea(t1, t2) - area
		// lint:ignore floateq exact tie-break between identically-computed
		// enlargements; an epsilon would only blur the heuristic.
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// split divides the overflowing node n in place, returning the new sibling.
// Candidate orderings are (axis x {position-at-now, velocity-low}); for each
// ordering every legal distribution is scored by the sum of the two groups'
// horizon-integrated areas, and the global minimum wins.
func (t *Tree) split(n *node) *node {
	es := n.entries
	minFill := t.min(n.leaf)
	t1, t2 := t.now, t.now+t.horizon

	type ordering struct {
		key func(entry) float64
	}
	var orderings []ordering
	for d := 0; d < 2; d++ {
		d := d
		orderings = append(orderings,
			ordering{key: func(e entry) float64 { return e.loAt(d, t.now) }},
			ordering{key: func(e entry) float64 { return e.vlo[d] }},
		)
	}

	bestCost := math.Inf(1)
	var bestLeft, bestRight []entry
	buf := make([]entry, len(es))
	for _, ord := range orderings {
		copy(buf, es)
		sortEntries(buf, ord.key)
		// Prefix and suffix combined bounds for O(n) distribution scoring.
		prefix := make([]entry, len(buf))
		suffix := make([]entry, len(buf))
		prefix[0] = buf[0].rebase(t.now)
		for i := 1; i < len(buf); i++ {
			prefix[i] = combine(prefix[i-1], buf[i], t.now)
		}
		suffix[len(buf)-1] = buf[len(buf)-1].rebase(t.now)
		for i := len(buf) - 2; i >= 0; i-- {
			suffix[i] = combine(suffix[i+1], buf[i], t.now)
		}
		for k := minFill; k <= len(buf)-minFill; k++ {
			cost := prefix[k-1].integArea(t1, t2) + suffix[k].integArea(t1, t2)
			if cost < bestCost {
				bestCost = cost
				bestLeft = append(bestLeft[:0], buf[:k]...)
				bestRight = append(bestRight[:0], buf[k:]...)
			}
		}
	}
	n.entries = append([]entry(nil), bestLeft...)
	return &node{leaf: n.leaf, entries: append([]entry(nil), bestRight...)}
}

func sortEntries(es []entry, key func(entry) float64) {
	sort.Slice(es, func(i, j int) bool { return key(es[i]) < key(es[j]) })
}
