package tprtree

import (
	"math/rand"
	"sort"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

func TestKNNMatchesLinearScan(t *testing.T) {
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(31))
	const n = 3000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		tr.Insert(states[i])
	}
	for trial := 0; trial < 25; trial++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		qt := motion.Tick(rng.Intn(90))
		k := 1 + rng.Intn(20)

		got := tr.KNN(p, qt, k)
		if len(got) != k {
			t.Fatalf("trial %d: got %d neighbors, want %d", trial, len(got), k)
		}
		// Oracle: sort all distances.
		dists := make([]float64, n)
		for i, s := range states {
			dists[i] = s.PositionAt(qt).Sub(p).Norm()
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if i > 0 && nb.Dist < got[i-1].Dist {
				t.Fatalf("trial %d: results not sorted at %d", trial, i)
			}
			if d := nb.Dist - dists[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %g, want %g", trial, i, nb.Dist, dists[i])
			}
			// The reported distance matches the state's actual position.
			if got := nb.State.PositionAt(qt).Sub(p).Norm(); got != nb.Dist {
				t.Fatalf("trial %d: reported dist %g != recomputed %g", trial, nb.Dist, got)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := newTestTree(t)
	if got := tr.KNN(geom.Point{X: 1, Y: 1}, 0, 5); got != nil {
		t.Errorf("empty tree KNN = %v", got)
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 10; i++ {
		tr.Insert(randomState(rng, i, 0))
	}
	if got := tr.KNN(geom.Point{X: 1, Y: 1}, 0, 0); got != nil {
		t.Errorf("k=0 KNN = %v", got)
	}
	// k larger than the population returns everything.
	got := tr.KNN(geom.Point{X: 500, Y: 500}, 30, 50)
	if len(got) != 10 {
		t.Errorf("k>n returned %d, want 10", len(got))
	}
}

func TestKNNFutureTimestamp(t *testing.T) {
	// Two objects: one near now but racing away, one far but approaching.
	// At a future timestamp the approacher must win.
	tr := newTestTree(t)
	away := motion.State{ID: 1, Pos: geom.Point{X: 510, Y: 500}, Vel: geom.Vec{X: 5, Y: 0}, Ref: 0}
	toward := motion.State{ID: 2, Pos: geom.Point{X: 900, Y: 500}, Vel: geom.Vec{X: -5, Y: 0}, Ref: 0}
	tr.Insert(away)
	tr.Insert(toward)
	p := geom.Point{X: 500, Y: 500}
	if nb := tr.KNN(p, 0, 1); nb[0].State.ID != 1 {
		t.Errorf("at t=0 nearest should be object 1, got %d", nb[0].State.ID)
	}
	if nb := tr.KNN(p, 60, 1); nb[0].State.ID != 2 {
		t.Errorf("at t=60 nearest should be the approaching object 2, got %d", nb[0].State.ID)
	}
}

func BenchmarkKNN10(b *testing.B) {
	tr, _ := benchTree(b, 20000)
	rng := rand.New(rand.NewSource(33))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		tr.KNN(p, motion.Tick(rng.Intn(90)), 10)
	}
}
