package tprtree

import (
	"container/heap"
	"math"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Neighbor is one k-nearest-neighbors result.
type Neighbor struct {
	State motion.State
	// Dist is the Euclidean distance from the query point at the query
	// timestamp.
	Dist float64
}

// KNN returns the k objects whose predicted positions at qt are closest to
// p, ordered by ascending distance — the canonical TPR-tree query the
// paper's related work targets (Saltenis et al. support exactly this
// predictive NN workload). It runs a best-first search over the
// time-parameterized bounding rectangles evaluated at qt.
func (t *Tree) KNN(p geom.Point, qt motion.Tick, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &knnQueue{}
	heap.Push(pq, knnItem{page: t.root, isNode: true, dist: 0})
	var out []Neighbor
	for pq.Len() > 0 {
		it := heap.Pop(pq).(knnItem)
		if len(out) == k && it.dist > out[len(out)-1].Dist {
			break // everything left is farther than the current k-th
		}
		if !it.isNode {
			out = insertNeighbor(out, Neighbor{State: it.state, Dist: it.dist}, k)
			continue
		}
		n := t.readNode(it.page)
		for _, e := range n.entries {
			if n.leaf {
				q := e.state().PositionAt(qt)
				d := q.Sub(p).Norm()
				heap.Push(pq, knnItem{state: e.state(), dist: d})
			} else {
				heap.Push(pq, knnItem{page: e.child, isNode: true, dist: e.minDistAt(p, qt)})
			}
		}
	}
	return out
}

// insertNeighbor keeps out sorted ascending with at most k entries.
func insertNeighbor(out []Neighbor, nb Neighbor, k int) []Neighbor {
	i := len(out)
	for i > 0 && out[i-1].Dist > nb.Dist {
		i--
	}
	out = append(out, Neighbor{})
	copy(out[i+1:], out[i:])
	out[i] = nb
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// minDistAt returns the minimum distance from p to e's bounding rectangle
// evaluated at time t (zero when p is inside).
func (e entry) minDistAt(p geom.Point, t motion.Tick) float64 {
	dx := axisDist(p.X, e.loAt(0, t), e.hiAt(0, t))
	dy := axisDist(p.Y, e.loAt(1, t), e.hiAt(1, t))
	return math.Hypot(dx, dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// knnItem is a best-first queue entry: either a node page or a concrete
// object with its exact distance.
type knnItem struct {
	page   storagePageID
	state  motion.State
	isNode bool
	dist   float64
}

type knnQueue []knnItem

func (q knnQueue) Len() int           { return len(q) }
func (q knnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x any)        { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
