package tprtree

import (
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
)

func TestBulkLoadValidTree(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 5000} {
		tr := newTestTree(t)
		rng := rand.New(rand.NewSource(int64(n)))
		states := make([]motion.State, n)
		for i := range states {
			states[i] = randomState(rng, i, 0)
		}
		if err := tr.BulkLoad(states); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if n > 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(1))
	tr.Insert(randomState(rng, 0, 0))
	if err := tr.BulkLoad([]motion.State{randomState(rng, 1, 0)}); err == nil {
		t.Error("BulkLoad on a non-empty tree must fail")
	}
}

func TestBulkLoadQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 3000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
	}
	bulk := newTestTree(t)
	if err := bulk.BulkLoad(states); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		qt := motion.Tick(rng.Intn(90))
		r := geom.Rect{MinX: rng.Float64() * 800, MinY: rng.Float64() * 800}
		r.MaxX = r.MinX + 30 + rng.Float64()*150
		r.MaxY = r.MinY + 30 + rng.Float64()*150
		want := 0
		for _, s := range states {
			if r.ContainsClosed(s.PositionAt(qt)) {
				want++
			}
		}
		if got := len(bulk.RangeQuery(r, qt)); got != want {
			t.Fatalf("trial %d: bulk tree found %d, want %d", trial, got, want)
		}
	}
}

func TestBulkLoadThenUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
	}
	tr := newTestTree(t)
	if err := tr.BulkLoad(states); err != nil {
		t.Fatal(err)
	}
	// Delete + reinsert a third of the objects; the tree must stay valid.
	for _, i := range rng.Perm(n)[:n/3] {
		if !tr.Delete(states[i]) {
			t.Fatalf("Delete(%d) after bulk load failed", states[i].ID)
		}
		states[i] = randomState(rng, i, 5)
		tr.Insert(states[i])
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadFewerPagesThanIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 5000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
	}
	poolBulk := storage.NewPool(0)
	bulk, _ := New(Config{Pool: poolBulk, Horizon: 90})
	if err := bulk.BulkLoad(states); err != nil {
		t.Fatal(err)
	}
	poolInc := storage.NewPool(0)
	inc, _ := New(Config{Pool: poolInc, Horizon: 90})
	for _, s := range states {
		inc.Insert(s)
	}
	// Bulk loading targets 70% fill (headroom for later inserts), so page
	// counts should be comparable to incremental loading, not wildly worse.
	if float64(poolBulk.NumPages()) > 1.25*float64(poolInc.NumPages()) {
		t.Errorf("bulk load used %d pages, incremental %d — packing far worse than expected",
			poolBulk.NumPages(), poolInc.NumPages())
	}
}

func BenchmarkBulkLoad10K(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	states := make([]motion.State, 10000)
	for i := range states {
		states[i] = randomState(rng, i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, _ := New(Config{Pool: storage.NewPool(0), Horizon: 90})
		if err := tr.BulkLoad(states); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalLoad10K(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	states := make([]motion.State, 10000)
	for i := range states {
		states[i] = randomState(rng, i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, _ := New(Config{Pool: storage.NewPool(0), Horizon: 90})
		for _, s := range states {
			tr.Insert(s)
		}
	}
}
