package tprtree

import (
	"fmt"
	"math"

	"pdr/internal/motion"
)

// bulkFill is the target node occupancy of bulk loading, leaving headroom
// for subsequent inserts before splits cascade.
const bulkFill = 0.7

// BulkLoad builds the tree from scratch over the given movements using
// Sort-Tile-Recursive packing (leaves tiled by position at the tree's
// current time): vastly faster than one-at-a-time insertion for the initial
// dataset load, producing a well-clustered tree. The tree must be empty.
func (t *Tree) BulkLoad(states []motion.State) error {
	if t.size > 0 {
		return fmt.Errorf("tprtree: BulkLoad requires an empty tree (size %d)", t.size)
	}
	if len(states) == 0 {
		return nil
	}
	entries := make([]entry, len(states))
	for i, s := range states {
		entries[i] = leafEntry(s)
	}
	t.pool.Free(t.root) // drop the empty leaf from New

	level := t.packLevel(entries, true)
	height := 1
	for len(level) > 1 {
		level = t.packLevel(level, false)
		height++
	}
	t.root = level[0].child
	t.height = height
	t.size = len(states)
	return nil
}

// packLevel tiles entries into nodes of one level and returns the bound
// entries describing the new nodes.
func (t *Tree) packLevel(entries []entry, leaf bool) []entry {
	fill := int(float64(t.fan(leaf)) * bulkFill)
	if fill < t.min(leaf) {
		fill = t.min(leaf)
	}
	n := len(entries)
	nodes := (n + fill - 1) / fill
	if nodes == 1 {
		return []entry{t.packNode(entries, leaf)}
	}
	slabs := int(math.Ceil(math.Sqrt(float64(nodes))))
	perSlab := (n + slabs - 1) / slabs

	sortEntries(entries, func(e entry) float64 { return e.loAt(0, t.now) })
	var out []entry
	for s := 0; s < n; s += perSlab {
		hi := s + perSlab
		if hi > n {
			hi = n
		}
		slab := entries[s:hi]
		sortEntries(slab, func(e entry) float64 { return e.loAt(1, t.now) })
		for o := 0; o < len(slab); o += fill {
			end := o + fill
			if end > len(slab) {
				end = len(slab)
			}
			group := slab[o:end]
			// Avoid creating an underfull trailing node: borrow from the
			// previous group by splitting the remainder evenly.
			if len(group) < t.min(leaf) && len(out) > 0 && o > 0 {
				// Re-pack the last two groups as one balanced pair.
				prevStart := o - fill
				merged := slab[prevStart:end]
				half := len(merged) / 2
				out = out[:len(out)-1]
				out = append(out, t.packNode(merged[:half], leaf), t.packNode(merged[half:], leaf))
				continue
			}
			out = append(out, t.packNode(group, leaf))
		}
	}
	return out
}

// packNode materializes one node from entries and returns its bound entry.
func (t *Tree) packNode(entries []entry, leaf bool) entry {
	n := &node{leaf: leaf, entries: append([]entry(nil), entries...)}
	id := t.newNode(n)
	b := combineAll(n.entries, t.now)
	b.child = id
	return b
}
