package tprtree

import (
	"math"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Search visits every indexed movement whose predicted position at time qt
// lies inside r (closed containment; callers needing the paper's half-open
// neighborhood semantics filter exactly on top of this conservative result).
// fn returning false stops the search.
func (t *Tree) Search(r geom.Rect, qt motion.Tick, fn func(motion.State) bool) {
	t.search(t.root, r, qt, fn)
}

func (t *Tree) search(pid storagePageID, r geom.Rect, qt motion.Tick, fn func(motion.State) bool) bool {
	n := t.readNode(pid)
	for _, e := range n.entries {
		if !e.intersectsAt(r, qt) {
			continue
		}
		if n.leaf {
			p := e.state().PositionAt(qt)
			if r.ContainsClosed(p) {
				if !fn(e.state()) {
					return false
				}
			}
		} else if !t.search(e.child, r, qt, fn) {
			return false
		}
	}
	return true
}

// RangeQuery returns all movements whose predicted position at qt lies in r
// (closed containment).
func (t *Tree) RangeQuery(r geom.Rect, qt motion.Tick) []motion.State {
	var out []motion.State
	t.Search(r, qt, func(s motion.State) bool {
		out = append(out, s)
		return true
	})
	return out
}

// All returns every indexed movement (test and diagnostics helper).
func (t *Tree) All() []motion.State {
	var out []motion.State
	t.walkLeaves(t.root, func(e entry) {
		out = append(out, e.state())
	})
	return out
}

func (t *Tree) walkLeaves(pid storagePageID, fn func(entry)) {
	n := t.readNode(pid)
	for _, e := range n.entries {
		if n.leaf {
			fn(e)
		} else {
			t.walkLeaves(e.child, fn)
		}
	}
}

// deleteEps is the tolerance used when matching a stale movement during
// Delete; tpbr re-anchoring accumulates tiny floating-point drift.
const deleteEps = 1e-6

// Delete removes the movement s (as previously inserted) from the index.
// It reports whether the movement was found.
func (t *Tree) Delete(s motion.State) bool {
	target := leafEntry(s)
	found, bound, underflow, orphans := t.deleteRec(t.root, target)
	if !found {
		return false
	}
	t.size--
	_ = bound
	root := t.readNode(t.root)
	if underflow && !root.leaf && len(root.entries) == 1 {
		// Shrink the tree: promote the only child.
		old := t.root
		t.root = root.entries[0].child
		t.pool.Free(old)
		t.height--
	}
	// Reinsert the leaf entries orphaned by condensed nodes.
	for _, e := range orphans {
		t.insertEntry(e)
	}
	return true
}

// deleteRec searches for target beneath pid. On success it returns the
// recomputed bound of pid's subtree, whether pid underflowed (root is exempt
// from minimum fill but still reports emptiness via underflow at caller),
// and any orphaned leaf entries from condensed descendants.
func (t *Tree) deleteRec(pid storagePageID, target entry) (found bool, bound entry, underflow bool, orphans []entry) {
	n := t.readNode(pid)
	if n.leaf {
		for i, e := range n.entries {
			if e.obj == target.obj && e.ref == target.ref && entryClose(e, target) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				t.mustWrite(pid, n)
				return true, t.boundOf(n, pid), len(n.entries) < t.minLeaf, nil
			}
		}
		return false, entry{}, false, nil
	}
	for i, c := range n.entries {
		if !c.mayContain(target, t.now) {
			continue
		}
		f, childBound, childUnder, childOrphans := t.deleteRec(c.child, target)
		if !f {
			continue
		}
		orphans = childOrphans
		if childUnder {
			// Condense: drop the child, orphan its remaining leaf entries.
			orphans = append(orphans, t.collectLeafEntries(c.child)...)
			t.freeSubtree(c.child)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			childBound.child = c.child
			n.entries[i] = childBound
		}
		t.mustWrite(pid, n)
		if len(n.entries) == 0 {
			return true, entry{ref: t.now}, true, orphans
		}
		return true, t.boundOf(n, pid), len(n.entries) < t.minInt, orphans
	}
	return false, entry{}, false, nil
}

func (t *Tree) boundOf(n *node, pid storagePageID) entry {
	if len(n.entries) == 0 {
		return entry{ref: t.now, child: pid}
	}
	b := combineAll(n.entries, t.now)
	b.child = pid
	return b
}

func (t *Tree) collectLeafEntries(pid storagePageID) []entry {
	var out []entry
	t.walkLeaves(pid, func(e entry) { out = append(out, e) })
	return out
}

func (t *Tree) freeSubtree(pid storagePageID) {
	n := t.readNode(pid)
	if !n.leaf {
		for _, e := range n.entries {
			t.freeSubtree(e.child)
		}
	}
	t.pool.Free(pid)
}

// entryClose reports whether two leaf entries describe the same movement up
// to floating-point tolerance.
func entryClose(a, b entry) bool {
	for d := 0; d < 2; d++ {
		if math.Abs(a.lo[d]-b.lo[d]) > deleteEps || math.Abs(a.vlo[d]-b.vlo[d]) > deleteEps {
			return false
		}
	}
	return true
}

// mayContain reports whether internal entry c could bound leaf entry e:
// position containment at the anchor time and velocity containment, with
// tolerance.
func (c entry) mayContain(e entry, now motion.Tick) bool {
	rc := now
	if e.ref > rc {
		rc = e.ref
	}
	if c.ref > rc {
		rc = c.ref
	}
	for d := 0; d < 2; d++ {
		p := e.loAt(d, rc)
		if p < c.loAt(d, rc)-deleteEps || p > c.hiAt(d, rc)+deleteEps {
			return false
		}
		if e.vlo[d] < c.vlo[d]-deleteEps || e.vhi[d] > c.vhi[d]+deleteEps {
			return false
		}
	}
	return true
}
