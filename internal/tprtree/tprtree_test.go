package tprtree

import (
	"math/rand"
	"sort"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
)

func newTestTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(Config{Pool: storage.NewPool(0), Horizon: 90})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomState(rng *rand.Rand, id int, ref motion.Tick) motion.State {
	return motion.State{
		ID:  motion.ObjectID(id),
		Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
		Vel: geom.Vec{X: rng.Float64()*3 - 1.5, Y: rng.Float64()*3 - 1.5},
		Ref: ref,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Horizon: 10}); err == nil {
		t.Error("nil pool must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0)}); err == nil {
		t.Error("zero horizon must be rejected")
	}
	if _, err := New(Config{Pool: storage.NewPool(0), Horizon: 10, PageSize: 64}); err == nil {
		t.Error("tiny page size must be rejected")
	}
}

func TestInsertAndSearchExhaustive(t *testing.T) {
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		tr.Insert(states[i])
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("expected multi-level tree for %d objects, height = %d", n, tr.Height())
	}

	for _, qt := range []motion.Tick{0, 30, 90} {
		for trial := 0; trial < 30; trial++ {
			r := geom.Rect{
				MinX: rng.Float64() * 900, MinY: rng.Float64() * 900,
			}
			r.MaxX = r.MinX + 20 + rng.Float64()*150
			r.MaxY = r.MinY + 20 + rng.Float64()*150
			got := tr.RangeQuery(r, qt)
			want := 0
			for _, s := range states {
				if r.ContainsClosed(s.PositionAt(qt)) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("qt=%d trial %d: RangeQuery found %d, want %d", qt, trial, len(got), want)
			}
			for _, s := range got {
				if !r.ContainsClosed(s.PositionAt(qt)) {
					t.Fatalf("qt=%d: false positive %v", qt, s)
				}
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		tr.Insert(randomState(rng, i, 0))
	}
	visits := 0
	tr.Search(geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, 0, func(motion.State) bool {
		visits++
		return visits < 10
	})
	if visits != 10 {
		t.Errorf("early stop visited %d, want 10", visits)
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(3))
	const n = 1200
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		tr.Insert(states[i])
	}
	// Delete a random half.
	perm := rng.Perm(n)
	deleted := map[motion.ObjectID]bool{}
	for _, i := range perm[:n/2] {
		if !tr.Delete(states[i]) {
			t.Fatalf("Delete(%d) not found", states[i].ID)
		}
		deleted[states[i].ID] = true
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleting again must fail.
	if tr.Delete(states[perm[0]]) {
		t.Error("double delete succeeded")
	}
	// Remaining objects must all be findable.
	all := tr.All()
	if len(all) != n/2 {
		t.Fatalf("All = %d entries, want %d", len(all), n/2)
	}
	for _, s := range all {
		if deleted[s.ID] {
			t.Fatalf("deleted object %d still present", s.ID)
		}
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(4))
	const n = 600
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		tr.Insert(states[i])
	}
	for _, i := range rng.Perm(n) {
		if !tr.Delete(states[i]) {
			t.Fatalf("Delete(%d) failed", states[i].ID)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all, want 0", tr.Len())
	}
	if got := tr.RangeQuery(geom.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, 0); len(got) != 0 {
		t.Fatalf("empty tree returned %d results", len(got))
	}
}

func TestUpdateWorkload(t *testing.T) {
	// Interleaved deletes+inserts with advancing time, as the PDR server
	// produces them; validate invariants and query correctness throughout.
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(5))
	const n = 800
	cur := make([]motion.State, n)
	for i := range cur {
		cur[i] = randomState(rng, i, 0)
		tr.Insert(cur[i])
	}
	for now := motion.Tick(1); now <= 40; now++ {
		tr.SetNow(now)
		for k := 0; k < 60; k++ {
			i := rng.Intn(n)
			if !tr.Delete(cur[i]) {
				t.Fatalf("now=%d: Delete(%d) failed", now, cur[i].ID)
			}
			cur[i] = randomState(rng, i, now)
			tr.Insert(cur[i])
		}
		if now%10 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("now=%d: %v", now, err)
			}
			qt := now + motion.Tick(rng.Intn(90))
			r := geom.Rect{MinX: 200, MinY: 200, MaxX: 600, MaxY: 600}
			got := tr.RangeQuery(r, qt)
			want := 0
			for _, s := range cur {
				if r.ContainsClosed(s.PositionAt(qt)) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("now=%d qt=%d: got %d, want %d", now, qt, len(got), want)
			}
		}
	}
}

func TestQuickTreeMatchesLinearScan(t *testing.T) {
	// Randomized end-to-end equivalence against a linear scan oracle.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := newTestTree(t)
		n := 100 + rng.Intn(400)
		states := make([]motion.State, n)
		for i := range states {
			states[i] = randomState(rng, i, motion.Tick(rng.Intn(5)))
			tr.Insert(states[i])
		}
		qt := motion.Tick(5 + rng.Intn(85))
		r := geom.Rect{MinX: rng.Float64() * 800, MinY: rng.Float64() * 800}
		r.MaxX = r.MinX + rng.Float64()*300
		r.MaxY = r.MinY + rng.Float64()*300

		var wantIDs, gotIDs []int
		for _, s := range states {
			if r.ContainsClosed(s.PositionAt(qt)) {
				wantIDs = append(wantIDs, int(s.ID))
			}
		}
		for _, s := range tr.RangeQuery(r, qt) {
			gotIDs = append(gotIDs, int(s.ID))
		}
		sort.Ints(wantIDs)
		sort.Ints(gotIDs)
		if len(wantIDs) != len(gotIDs) {
			t.Fatalf("seed %d: got %d ids, want %d", seed, len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if wantIDs[i] != gotIDs[i] {
				t.Fatalf("seed %d: id mismatch at %d: %d vs %d", seed, i, gotIDs[i], wantIDs[i])
			}
		}
	}
}

func TestBufferAccounting(t *testing.T) {
	pool := storage.NewPool(4) // tiny buffer to force eviction traffic
	tr, err := New(Config{Pool: pool, Horizon: 90})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		tr.Insert(randomState(rng, i, 0))
	}
	pool.ResetStats()
	tr.RangeQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 200, MaxY: 200}, 30)
	st := pool.Stats()
	if st.Reads == 0 {
		t.Error("query over a cold tiny buffer must incur physical reads")
	}
	// Tree must remain correct under heavy eviction.
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d, want 3000", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetNowMonotone(t *testing.T) {
	tr := newTestTree(t)
	tr.SetNow(10)
	tr.SetNow(5) // must not move backwards
	if tr.Now() != 10 {
		t.Errorf("Now = %d, want 10", tr.Now())
	}
}

func TestIntegArea(t *testing.T) {
	// A static unit square has integrated area T over [0, T].
	e := entry{hi: [2]float64{1, 1}}
	if got := e.integArea(0, 10); got != 10 {
		t.Errorf("static integArea = %g, want 10", got)
	}
	// A degenerate point growing at dv=1 in both dims: area(t) = t^2,
	// integral over [0,T] = T^3/3.
	g := entry{vhi: [2]float64{1, 1}}
	if got, want := g.integArea(0, 3), 9.0; got != want {
		t.Errorf("growing integArea = %g, want %g", got, want)
	}
	if got := e.integArea(5, 4); got != 0 {
		t.Errorf("reversed interval integArea = %g, want 0", got)
	}
	if got := e.integArea(5, 5); got != 1 {
		t.Errorf("instant integArea = %g, want area 1", got)
	}
}

func TestHeightShrinksOnMassDeletion(t *testing.T) {
	tr := newTestTree(t)
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		tr.Insert(states[i])
	}
	peak := tr.Height()
	if peak < 2 {
		t.Fatalf("expected multi-level tree, height %d", peak)
	}
	for _, i := range rng.Perm(n)[:n-10] {
		if !tr.Delete(states[i]) {
			t.Fatalf("Delete(%d) failed", states[i].ID)
		}
	}
	if tr.Height() >= peak {
		t.Errorf("height did not shrink: %d -> %d with 10 objects left", peak, tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPageAccountingAfterChurn(t *testing.T) {
	pool := storage.NewPool(0)
	tr, err := New(Config{Pool: pool, Horizon: 90})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	states := make([]motion.State, 2000)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		tr.Insert(states[i])
	}
	for _, i := range rng.Perm(2000) {
		if !tr.Delete(states[i]) {
			t.Fatalf("Delete(%d) failed", states[i].ID)
		}
	}
	// Only the root page should remain allocated.
	if pool.NumPages() != 1 {
		t.Errorf("%d pages allocated after deleting everything, want 1 (root)", pool.NumPages())
	}
}
