package tprtree

import (
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/storage"
)

func benchTree(b *testing.B, n int) (*Tree, []motion.State) {
	b.Helper()
	tr, err := New(Config{Pool: storage.NewPool(0), Horizon: 90})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	states := make([]motion.State, n)
	for i := range states {
		states[i] = randomState(rng, i, 0)
		tr.Insert(states[i])
	}
	return tr, states
}

func BenchmarkInsert(b *testing.B) {
	tr, _ := benchTree(b, 10000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(randomState(rng, 10000+i, 0))
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	tr, _ := benchTree(b, 20000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := geom.Rect{MinX: rng.Float64() * 900, MinY: rng.Float64() * 900}
		r.MaxX = r.MinX + 80
		r.MaxY = r.MinY + 80
		tr.RangeQuery(r, motion.Tick(rng.Intn(90)))
	}
}

func BenchmarkDeleteInsertCycle(b *testing.B) {
	tr, states := benchTree(b, 10000)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(states))
		if !tr.Delete(states[j]) {
			b.Fatalf("delete %d failed", states[j].ID)
		}
		states[j] = randomState(rng, j, 0)
		tr.Insert(states[j])
	}
}
