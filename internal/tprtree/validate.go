package tprtree

import (
	"fmt"

	"pdr/internal/motion"
)

// Validate checks the structural invariants of the tree and returns the
// first violation found. It is intended for tests and debugging; it reads
// every page (and therefore perturbs buffer statistics).
//
// Invariants checked:
//  1. every leaf is at the same depth (t.height);
//  2. every non-root node holds between min and max entries;
//  3. every internal entry's tpbr bounds all movements beneath it at every
//     sampled time in [now, now+Horizon];
//  4. the recorded size matches the number of leaf entries.
func (t *Tree) Validate() error {
	count, err := t.validateNode(t.root, 1, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("tprtree: size %d, found %d leaf entries", t.size, count)
	}
	return nil
}

func (t *Tree) validateNode(pid storagePageID, depth int, isRoot bool) (int, error) {
	n := t.readNode(pid)
	if n.leaf && depth != t.height {
		return 0, fmt.Errorf("tprtree: leaf at depth %d, height %d", depth, t.height)
	}
	if !n.leaf && depth >= t.height {
		return 0, fmt.Errorf("tprtree: internal node at depth %d >= height %d", depth, t.height)
	}
	if !isRoot && len(n.entries) < t.min(n.leaf) {
		return 0, fmt.Errorf("tprtree: node %d underfull: %d < %d", pid, len(n.entries), t.min(n.leaf))
	}
	if len(n.entries) > t.fan(n.leaf) {
		return 0, fmt.Errorf("tprtree: node %d overfull: %d > %d", pid, len(n.entries), t.fan(n.leaf))
	}
	if n.leaf {
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		if err := t.validateCoverage(e); err != nil {
			return 0, err
		}
		c, err := t.validateNode(e.child, depth+1, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// validateCoverage checks that internal entry e bounds every leaf movement
// beneath it over sampled horizon timestamps.
func (t *Tree) validateCoverage(e entry) error {
	samples := []motion.Tick{t.now, t.now + t.horizon/2, t.now + t.horizon}
	var err error
	t.walkLeaves(e.child, func(le entry) {
		if err != nil {
			return
		}
		for _, ts := range samples {
			for d := 0; d < 2; d++ {
				p := le.loAt(d, ts)
				if p < e.loAt(d, ts)-1e-6 || p > e.hiAt(d, ts)+1e-6 {
					err = fmt.Errorf("tprtree: object %d at t=%d dim %d pos %g outside bound [%g, %g]",
						le.obj, ts, d, p, e.loAt(d, ts), e.hiAt(d, ts))
					return
				}
			}
		}
	})
	return err
}
