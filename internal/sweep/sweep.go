// Package sweep implements the refinement step of the PDR paper's exact
// filtering-refinement method (Sec. 5.3): a plane-sweep over the objects
// retrieved for a candidate cell that outputs every pointwise-dense
// rectangle inside the cell.
//
// The sweep follows Algorithms 2 and 3 of the paper. An l-band (width l)
// sweeps along the X dimension; its center-line stopping events are the
// points where the band's left or right edge touches an object. Between
// consecutive events the set of objects in the band — and therefore the
// density of every point with that X coordinate (Lemma 1) — is constant.
// Whenever the band holds at least ceil(rho*l^2) objects, an l-square sweeps
// the band along Y (Lemma 2), emitting half-open dense rectangles
// [xi, xi+1) x [yj, yj+1).
//
// Half-open semantics: an object q is inside the l-square neighborhood of p
// iff p.x - l/2 < q.x <= p.x + l/2 (same in y), so the band at center x
// contains q iff x is in [q.x - l/2, q.x + l/2): the object enters when the
// band's right edge reaches it and leaves when the left edge reaches it.
//
// Allocation model: one candidate cell needs ~10 scratch slices (event
// coordinates, enter/exit orderings, band membership) whose sizes depend
// only on the retrieved point count. A query refines hundreds of cells and
// the parallel engine refines cells from many queries at once, so the
// scratch lives in a sync.Pool of per-worker sweeper structs: each
// DenseRects call checks one out, grows its buffers as needed, and returns
// it — steady-state refinement allocates only the output region.
package sweep

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"sync"

	"pdr/internal/geom"
)

// sweeper holds the reusable scratch buffers of one plane-sweep worker. The
// zero value is ready to use; buffers grow to the high-water mark of the
// cells a worker has refined and are reused across calls.
type sweeper struct {
	// X-dimension band sweep (Algorithm 2).
	enterX, exitX   []float64
	events          []float64
	byEnter, byExit []int
	active          []bool
	members         []geom.Point

	// Y-dimension square sweep (Algorithm 3).
	enterY, exitY     []float64
	yEvents           []float64
	yByEnter, yByExit []int
	segs              []segment
}

// sweepers pools sweeper scratch across goroutines; see the package comment.
var sweepers = sync.Pool{New: func() any { return new(sweeper) }}

// DenseRects returns the union of all rho-dense rectangles whose points lie
// inside the half-open window cell, given the locations (at query time) of
// every object whose l-square influence can reach the cell — i.e. all
// objects inside cell.Grow(l/2). The result is exact. DenseRects is safe
// for concurrent use; concurrent calls draw scratch from a shared pool.
//
// pdr:hot — refinement root for the hotpath analyzer family (docs/LINT.md).
func DenseRects(points []geom.Point, cell geom.Rect, rho, l float64) geom.Region {
	if cell.IsEmpty() || l <= 0 {
		return nil
	}
	// Integer object-count threshold: |L| >= rho*l^2.
	threshold := int(math.Ceil(rho * l * l))
	if threshold <= 0 {
		// Everything is dense, including empty space.
		return geom.Region{cell}
	}
	if len(points) < threshold {
		return nil
	}
	sw := sweepers.Get().(*sweeper)
	out := sw.denseRects(points, cell, threshold, l/2)
	sweepers.Put(sw)
	return out
}

func (sw *sweeper) denseRects(points []geom.Point, cell geom.Rect, threshold int, half float64) geom.Region {
	n := len(points)
	sw.enterX = growF64(sw.enterX, n)
	sw.exitX = growF64(sw.exitX, n)
	enterX, exitX := sw.enterX, sw.exitX
	for i, p := range points {
		enterX[i] = p.X - half
		exitX[i] = p.X + half
	}
	// Event coordinates: the window edges plus every enter/exit inside.
	events := append(growF64(sw.events, 2*n+2)[:0], cell.MinX, cell.MaxX)
	for i := 0; i < n; i++ {
		if enterX[i] > cell.MinX && enterX[i] < cell.MaxX {
			events = append(events, enterX[i])
		}
		if exitX[i] > cell.MinX && exitX[i] < cell.MaxX {
			events = append(events, exitX[i])
		}
	}
	sort.Float64s(events)
	// Retain the full scratch before dedup clips the result's capacity.
	sw.events = events
	events = dedup(events)

	// Enter/exit orderings for incremental band maintenance.
	sw.byEnter = sortedIndexInto(sw.byEnter, enterX)
	sw.byExit = sortedIndexInto(sw.byExit, exitX)
	byEnter, byExit := sw.byEnter, sw.byExit

	sw.active = growBool(sw.active, n)
	active := sw.active
	for i := range active[:n] {
		active[i] = false
	}
	activeCount := 0
	pa, pb := 0, 0
	// Initialize the band at the window's left edge.
	for pa < n && enterX[byEnter[pa]] <= cell.MinX {
		i := byEnter[pa]
		if exitX[i] > cell.MinX {
			active[i] = true
			activeCount++
		}
		pa++
	}
	for pb < n && exitX[byExit[pb]] <= cell.MinX {
		pb++
	}

	var out geom.Region
	members := sw.members[:0]
	for ei := 0; ei+1 < len(events); ei++ {
		x := events[ei]
		if ei > 0 {
			// Advance the band to center x: objects whose exit coordinate
			// has been reached leave; objects whose enter coordinate has
			// been reached join.
			for pb < n && exitX[byExit[pb]] <= x {
				i := byExit[pb]
				if active[i] {
					active[i] = false
					activeCount--
				}
				pb++
			}
			for pa < n && enterX[byEnter[pa]] <= x {
				i := byEnter[pa]
				if exitX[i] > x && !active[i] {
					active[i] = true
					activeCount++
				}
				pa++
			}
		}
		if activeCount < threshold {
			continue
		}
		members = members[:0]
		for i := 0; i < n; i++ {
			if active[i] {
				members = append(members, points[i])
			}
		}
		for _, seg := range sw.sweepY(members, cell.MinY, cell.MaxY, threshold, half) {
			out.Add(geom.NewRect(x, seg.lo, events[ei+1], seg.hi))
		}
	}
	sw.members = members
	// out is built fresh per call, so the union coalesces in place.
	return geom.CoalesceInPlace(out)
}

// segment is a half-open dense Y interval [lo, hi).
type segment struct{ lo, hi float64 }

// sweepY runs the Y-dimension l-square sweep (paper Algorithm 3) over the
// band members, returning maximal dense segments within [yb, yt). The
// returned slice is the sweeper's scratch — valid until the next sweepY.
func (sw *sweeper) sweepY(members []geom.Point, yb, yt float64, threshold int, half float64) []segment {
	n := len(members)
	if n < threshold {
		return nil
	}
	sw.enterY = growF64(sw.enterY, n)
	sw.exitY = growF64(sw.exitY, n)
	enterY, exitY := sw.enterY, sw.exitY
	for i, p := range members {
		enterY[i] = p.Y - half
		exitY[i] = p.Y + half
	}
	events := append(growF64(sw.yEvents, 2*n+2)[:0], yb, yt)
	for i := 0; i < n; i++ {
		if enterY[i] > yb && enterY[i] < yt {
			events = append(events, enterY[i])
		}
		if exitY[i] > yb && exitY[i] < yt {
			events = append(events, exitY[i])
		}
	}
	sort.Float64s(events)
	// Retain the full scratch before dedup clips the result's capacity.
	sw.yEvents = events
	events = dedup(events)

	sw.yByEnter = sortedIndexInto(sw.yByEnter, enterY[:n])
	sw.yByExit = sortedIndexInto(sw.yByExit, exitY[:n])
	byEnter, byExit := sw.yByEnter, sw.yByExit
	count := 0
	pa, pb := 0, 0
	for pa < n && enterY[byEnter[pa]] <= yb {
		if exitY[byEnter[pa]] > yb {
			count++
		}
		pa++
	}
	for pb < n && exitY[byExit[pb]] <= yb {
		pb++
	}

	segs := sw.segs[:0]
	for ei := 0; ei+1 < len(events); ei++ {
		y := events[ei]
		if ei > 0 {
			for pb < n && exitY[byExit[pb]] <= y {
				count--
				pb++
			}
			for pa < n && enterY[byEnter[pa]] <= y {
				// Every enter processed here has enterY == y exactly (earlier
				// enters were consumed at their own events), so its exit
				// coordinate enterY+l lies strictly beyond y.
				count++
				pa++
			}
		}
		if count >= threshold {
			next := events[ei+1]
			// lint:ignore floateq run extension: hi was assigned this exact
			// event coordinate, so bit equality is the contiguity test.
			if len(segs) > 0 && segs[len(segs)-1].hi == y {
				segs[len(segs)-1].hi = next // extend a contiguous dense run
			} else {
				segs = append(segs, segment{y, next})
			}
		}
	}
	sw.segs = segs
	return segs
}

// dedup compacts sorted s in place, dropping equal neighbors. The result's
// capacity is clipped to its length: it aliases s's backing array (which the
// sweeper retains as scratch), so an append by any caller must reallocate
// rather than silently clobber the retained buffer.
func dedup(s []float64) []float64 {
	out := s[:0]
	for i, v := range s {
		// lint:ignore floateq dedup of sorted coordinates removes only
		// bit-identical neighbors; epsilon would merge distinct cell edges.
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out[:len(out):len(out)]
}

// growF64 returns buf resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growBool is growF64 for bool scratch.
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// sortedIndexInto fills idx (reusing its capacity) with the indices of vals
// in ascending value order.
func sortedIndexInto(idx []int, vals []float64) []int {
	if cap(idx) < len(vals) {
		idx = make([]int, len(vals))
	}
	idx = idx[:len(vals)]
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(vals[a], vals[b]) })
	return idx
}
