package sweep

import (
	"encoding/binary"
	"math"
	"testing"

	"pdr/internal/geom"
)

// FuzzDenseRectsMatchesOracle drives the plane sweep with fuzz-derived
// point sets and cross-checks the full answer region against the
// coordinate-compression oracle. Run with `go test -fuzz=FuzzDenseRects`;
// under plain `go test` the seed corpus executes as regression tests.
func FuzzDenseRectsMatchesOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 128, 127, 3, 9, 27, 81, 243})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		// Derive a deterministic scenario from the fuzz bytes: each pair of
		// bytes is one point in [0, 64); the first byte also sets l and the
		// threshold.
		l := 2 + float64(data[0]%16)
		thresholdObjects := 1 + int(data[1]%4)
		rho := float64(thresholdObjects) / (l * l)
		var points []geom.Point
		for i := 2; i+3 < len(data) && len(points) < 48; i += 4 {
			x := float64(binary.LittleEndian.Uint16(data[i:])) / 1024
			y := float64(binary.LittleEndian.Uint16(data[i+2:])) / 1024
			points = append(points, geom.Point{X: x, Y: y})
		}
		cell := geom.Rect{MinX: 8, MinY: 8, MaxX: 56, MaxY: 56}

		got := DenseRects(points, cell, rho, l)
		want := naiveDense(points, cell, rho, l)
		ga, wa := got.Area(), want.Area()
		if math.Abs(ga-wa) > 1e-6*(1+wa) {
			t.Fatalf("area mismatch: sweep %g, oracle %g (l=%g thr=%d, %d points)",
				ga, wa, l, thresholdObjects, len(points))
		}
		if d := got.DifferenceArea(want); d > 1e-6 {
			t.Fatalf("sweep \\ oracle = %g", d)
		}
		if d := want.DifferenceArea(got); d > 1e-6 {
			t.Fatalf("oracle \\ sweep = %g", d)
		}
		// Output sanity: all rects inside the cell.
		for _, r := range got {
			if !cell.ContainsRect(r) {
				t.Fatalf("rect %v escapes cell %v", r, cell)
			}
		}
	})
}
